/// Weak scaling (extension experiment, not in the paper): samples per
/// node held constant while the machine grows — the complement of
/// Fig. 9's strong scaling. Flat curves mean the design absorbs growth;
/// rising tails expose the collective costs.

#include "bench_common.hpp"

using namespace swhkm;
using core::Level;
using core::ProblemShape;

int main() {
  bench::banner("Weak scaling (extension)",
                "n = 10,000 samples/node, d=4096, k=2000; nodes swept; "
                "metric: one-iteration time (flat = perfect)");

  util::Table table({"nodes", "n", "Level2 s/iter", "Level3 s/iter",
                     "L2 vs 2-node", "L3 vs 2-node"});
  double l2_base = 0;
  double l3_base = 0;
  for (std::size_t nodes : {2, 4, 8, 16, 32, 64, 128, 256}) {
    const simarch::MachineConfig machine =
        simarch::MachineConfig::sw26010(nodes);
    const ProblemShape shape{10000ull * nodes, 2000, 4096};
    const auto l2 = bench::model_best(Level::kLevel2, shape, machine);
    const auto l3 = bench::model_best(Level::kLevel3, shape, machine);
    if (nodes == 2) {
      l2_base = l2.value_or(0);
      l3_base = l3.value_or(0);
    }
    auto ratio = [](double base, const std::optional<double>& now) {
      if (!now || base <= 0) {
        return std::string("-");
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3fx", *now / base);
      return std::string(buf);
    };
    table.new_row()
        .add(std::uint64_t{nodes})
        .add(std::uint64_t{10000ull * nodes})
        .add(bench::cell_or_na(l2))
        .add(bench::cell_or_na(l3))
        .add(ratio(l2_base, l2))
        .add(ratio(l3_base, l3));
  }
  bench::emit(table, "weak_scaling");

  std::cout << "Expected: near-flat ratios (per-node work is constant);\n"
               "the slow upward drift is the growing update AllReduce and\n"
               "supernode crossings — the costs Fig. 7's boundary effects\n"
               "come from.\n";
  return 0;
}
