/// Baseline family comparison — the single-node foils to the paper's
/// distributed design: Lloyd vs the exact accelerated variants (Hamerly
/// [the paper's ref 18], Elkan, Yinyang [its Table III CPU comparator])
/// vs mini-batch. Reports wall-clock per iteration, distance-computation
/// savings, and solution quality on the Table II surrogates.
///
/// The point this table makes for the paper: even the best serial pruner
/// only removes a constant factor — the memory walls (Table I) and the
/// n*k*d lower bound remain, which is why the nkd partition matters.

#include "bench_common.hpp"

#include "core/elkan.hpp"
#include "core/hamerly.hpp"
#include "core/minibatch.hpp"
#include "core/yinyang.hpp"

using namespace swhkm;
using core::AccelStats;
using core::KmeansConfig;
using core::KmeansResult;

int main() {
  bench::banner("Baselines — exact accelerated and approximate k-means",
                "single-node comparators: per-iteration wall time, pruning "
                "savings, objective");

  struct Workload {
    const char* name;
    data::Benchmark bench;
    std::size_t n;
    std::size_t k;
  };
  const Workload workloads[] = {
      {"kegg-like", data::Benchmark::kKeggNetwork, 4000, 32},
      {"census-like", data::Benchmark::kUsCensus1990, 4000, 24},
      {"ilsvrc-like", data::Benchmark::kIlsvrc2012, 1500, 16},
  };

  util::Table table({"workload", "algorithm", "iters", "wall ms/iter",
                     "distance savings", "objective O(C)",
                     "same result as Lloyd?"});
  for (const Workload& w : workloads) {
    const data::Dataset ds =
        data::make_benchmark_surrogate(w.bench, w.n, 768, 7);
    KmeansConfig config;
    config.k = w.k;
    config.max_iterations = 20;
    config.init = core::InitMethod::kPlusPlus;
    config.seed = 5;

    util::Stopwatch lloyd_watch;
    const KmeansResult lloyd = core::lloyd_serial(ds, config);
    const double lloyd_ms =
        lloyd_watch.milliseconds() / static_cast<double>(lloyd.iterations);
    table.new_row()
        .add(w.name)
        .add("lloyd")
        .add(std::uint64_t{lloyd.iterations})
        .add(lloyd_ms, 3)
        .add("0%")
        .add(lloyd.inertia, 4)
        .add("(reference)");

    struct Exact {
      const char* name;
      KmeansResult (*run)(const data::Dataset&, const KmeansConfig&,
                          AccelStats*);
    };
    const Exact exact_family[] = {
        {"hamerly", &core::hamerly_serial},
        {"elkan", &core::elkan_serial},
        {"yinyang", &core::yinyang_serial},
    };
    for (const Exact& algo : exact_family) {
      AccelStats stats;
      util::Stopwatch watch;
      const KmeansResult result = algo.run(ds, config, &stats);
      const double ms =
          watch.milliseconds() / static_cast<double>(result.iterations);
      char savings[32];
      std::snprintf(savings, sizeof(savings), "%.1f%%",
                    100.0 * stats.savings());
      const bool same = core::assignment_agreement(result.assignments,
                                                   lloyd.assignments) == 1.0;
      table.new_row()
          .add(w.name)
          .add(algo.name)
          .add(std::uint64_t{result.iterations})
          .add(ms, 3)
          .add(savings)
          .add(result.inertia, 4)
          .add(same ? "yes (exact)" : "NO — BUG");
    }

    core::MiniBatchConfig mb;
    mb.k = w.k;
    mb.batch_size = 256;
    mb.iterations = 60;
    mb.init = core::InitMethod::kPlusPlus;
    mb.seed = 5;
    util::Stopwatch mb_watch;
    const KmeansResult approx = core::minibatch_kmeans(ds, mb);
    table.new_row()
        .add(w.name)
        .add("mini-batch (b=256)")
        .add(std::uint64_t{approx.iterations})
        .add(mb_watch.milliseconds() / static_cast<double>(approx.iterations),
             3)
        .add("-")
        .add(approx.inertia, 4)
        .add("approximate");
  }
  bench::emit(table, "baselines");

  std::cout << "Every exact variant must report 'yes (exact)' — they are\n"
               "drop-in Lloyd replacements. The savings column is why they\n"
               "exist; the objective column shows what mini-batch trades.\n";
  return 0;
}
