/// Figure 5 — Level 3 (nkd partition) on the ILSVRC2012 surrogate:
/// k in {128..2048} crossed with d in {3072, 12288, 196608}
/// (32x32x3, 64x64x3, 256x256x3 pixel features), n = 1,265,723.
///
/// The paper does not pin the node count per point; we report the Level 3
/// experiment machine (4,096 nodes) alongside 128 nodes so both scaling
/// regimes are visible.

#include "bench_common.hpp"

using namespace swhkm;
using core::Level;
using core::ProblemShape;

int main() {
  bench::banner("Figure 5 — Level 3: dataflow, centroid and dimension "
                "partition",
                "ILSVRC2012, n=1,265,723, k in {128..2048} x d in {3072, "
                "12288, 196608}; metric: one-iteration time");

  constexpr std::uint64_t kN = 1265723;
  const std::uint64_t ks[] = {128, 256, 512, 1024, 2048};
  const std::uint64_t ds[] = {3072, 12288, 196608};

  util::Table table({"d", "k", "128 nodes s/iter", "4096 nodes s/iter",
                     "m'_group (4096)", "resident (4096)"});
  const simarch::MachineConfig m128 = simarch::MachineConfig::sw26010(128);
  const simarch::MachineConfig m4096 = simarch::MachineConfig::sw26010(4096);
  for (std::uint64_t d : ds) {
    for (std::uint64_t k : ks) {
      const ProblemShape shape{kN, k, d};
      const auto small = core::best_plan_for_level(Level::kLevel3, shape, m128);
      const auto large =
          core::best_plan_for_level(Level::kLevel3, shape, m4096);
      table.new_row()
          .add(std::uint64_t{d})
          .add(std::uint64_t{k})
          .add(small ? bench::cell_or_na(small->predicted_s()) : "n/a")
          .add(large ? bench::cell_or_na(large->predicted_s()) : "n/a")
          .add(large ? std::to_string(large->plan.mprime_group) : "-")
          .add(large ? (large->plan.ldm.resident ? "yes" : "streamed") : "-");
    }
  }
  bench::emit(table, "fig5_level3");

  // Functional cross-check at laptop scale: same nkd mechanics, tiny shape.
  const auto tiny = simarch::MachineConfig::tiny(2, 4, 16384);
  const data::Dataset surrogate = data::make_ilsvrc_like(512, 8, 3);
  const double t = bench::functional_iteration_seconds(Level::kLevel3,
                                                       surrogate, 16, tiny);
  std::cout << "functional cross-check (n=512, d=192, k=16, tiny machine): "
            << util::format_seconds(t) << " simulated/iteration\n";

  std::cout
      << "Expected shape: time grows ~linearly in k at fixed d and scales\n"
         "with d; every (k, d) cell here is far beyond what Level 1/2 can\n"
         "hold, which is the figure's point.\n";
  return 0;
}
