/// Microbenchmarks (google-benchmark) for the hot kernels of the
/// functional engines: the distance scan, dimension-sliced partials,
/// accumulator updates, the thread-backed collectives, and dataset
/// generation throughput. These measure *host* wall-clock (the engines'
/// real cost when used as a library), not simulated Sunway time.

#include <benchmark/benchmark.h>

#include "core/engine_util.hpp"
#include "core/lloyd.hpp"
#include "data/synthetic.hpp"
#include "swmpi/collectives.hpp"
#include "swmpi/runtime.hpp"
#include "util/rng.hpp"

namespace {

using namespace swhkm;

void BM_DistanceScan(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const std::size_t d = static_cast<std::size_t>(state.range(1));
  const data::Dataset ds = data::make_uniform(64, d, 1);
  util::Matrix centroids(k, d, 0.5f);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto result =
        core::detail::nearest_in_slice(ds.sample(i % 64), centroids, 0, k);
    benchmark::DoNotOptimize(result);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * d));
}
BENCHMARK(BM_DistanceScan)
    ->Args({8, 64})
    ->Args({64, 64})
    ->Args({8, 4096})
    ->Args({256, 256});

void BM_PartialDistance(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const data::Dataset ds = data::make_uniform(4, d, 2);
  util::Matrix centroid(1, d, 0.25f);
  for (auto _ : state) {
    const double partial = core::detail::partial_squared_distance(
        ds.sample(0), centroid.row(0), d / 4, d / 2);
    benchmark::DoNotOptimize(partial);
  }
}
BENCHMARK(BM_PartialDistance)->Arg(256)->Arg(4096)->Arg(65536);

void BM_AccumulatorAdd(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const data::Dataset ds = data::make_uniform(16, d, 3);
  core::detail::UpdateAccumulator acc(8, d);
  std::size_t i = 0;
  for (auto _ : state) {
    acc.add_sample(static_cast<std::uint32_t>(i % 8), ds.sample(i % 16));
    ++i;
  }
}
BENCHMARK(BM_AccumulatorAdd)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SerialLloydIteration(benchmark::State& state) {
  const data::Dataset ds = data::make_uniform(
      static_cast<std::size_t>(state.range(0)), 16, 4);
  core::KmeansConfig config;
  config.k = 8;
  config.max_iterations = 1;
  config.tolerance = -1;
  for (auto _ : state) {
    const auto result = core::lloyd_serial(ds, config);
    benchmark::DoNotOptimize(result.inertia);
  }
}
BENCHMARK(BM_SerialLloydIteration)->Arg(1000)->Arg(10000);

void BM_SwmpiAllreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const std::size_t elems = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    swmpi::run_spmd(ranks, [&](swmpi::Comm& comm) {
      std::vector<double> buf(elems, comm.rank() * 1.0);
      swmpi::allreduce_sum(comm, std::span<double>(buf));
      benchmark::DoNotOptimize(buf[0]);
    });
  }
}
BENCHMARK(BM_SwmpiAllreduce)->Args({2, 1024})->Args({4, 1024})->Args({8, 64});

void BM_SwmpiBarrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    swmpi::run_spmd(ranks, [](swmpi::Comm& comm) {
      for (int round = 0; round < 16; ++round) {
        swmpi::barrier(comm);
      }
    });
  }
}
BENCHMARK(BM_SwmpiBarrier)->Arg(2)->Arg(8);

void BM_BlobGeneration(benchmark::State& state) {
  for (auto _ : state) {
    const data::Dataset ds =
        data::make_blobs(static_cast<std::size_t>(state.range(0)), 32, 8, 9);
    benchmark::DoNotOptimize(ds.samples().data());
  }
}
BENCHMARK(BM_BlobGeneration)->Arg(1000)->Arg(10000);

void BM_Xoshiro(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_Xoshiro);

}  // namespace
