#pragma once

/// Shared plumbing for the figure/table reproduction binaries.
///
/// Every bench prints (a) what the paper's experiment was, (b) the series
/// our model/engines regenerate, and (c) writes the same rows to
/// bench_results/<name>.csv for plotting. Paper-scale shapes run through
/// the calibrated performance model; where the shape fits a laptop, the
/// bench also runs the functional engine on a surrogate dataset and
/// reports the simulated time it accumulated, as a cross-check that model
/// and engine agree on the mechanics.

#include <cstdio>
#include <ctime>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>

#if defined(_WIN32)
#include <winsock2.h>
#else
#include <unistd.h>
#endif

#include "core/hkmeans.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "util/units.hpp"

namespace swhkm::bench {

inline void banner(const std::string& id, const std::string& paper_setup) {
  std::cout << "==============================================================="
               "=\n"
            << id << "\n"
            << "paper setup: " << paper_setup << "\n"
            << "==============================================================="
               "=\n";
}

/// Run provenance, stamped into every BENCH_*.json as a "meta" object so
/// archived artifacts are self-describing: the commit the binary was built
/// from (SWHKM_GIT_SHA, baked in at configure time; "unknown" outside a
/// git checkout), the UTC timestamp of the run, and the host that ran it.
/// Call inside an open JSON object.
inline void emit_run_metadata(util::JsonWriter& w) {
  w.key("meta").begin_object();
#ifdef SWHKM_GIT_SHA
  w.kv("git_sha", SWHKM_GIT_SHA);
#else
  w.kv("git_sha", "unknown");
#endif
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char stamp[32] = "unknown";
  (void)std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &tm);
  w.kv("utc_date", stamp);
  char host[256] = {};
  if (gethostname(host, sizeof(host) - 1) != 0 || host[0] == '\0') {
    std::snprintf(host, sizeof(host), "unknown");
  }
  w.kv("host", host);
  w.end_object();
}

/// Write `table` to bench_results/<name>.csv next to the binary's CWD and
/// print it.
inline void emit(const util::Table& table, const std::string& name) {
  std::cout << table.to_text();
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (!ec) {
    table.write_csv("bench_results/" + name + ".csv");
    std::cout << "(csv: bench_results/" << name << ".csv)\n";
  }
  std::cout << std::endl;
}

/// Modelled per-iteration seconds for the best plan of `level`, or nullopt
/// when infeasible (benches print "n/a" for those points, mirroring the
/// paper's truncated curves).
inline std::optional<double> model_best(core::Level level,
                                        const core::ProblemShape& shape,
                                        const simarch::MachineConfig& machine) {
  const auto choice = core::best_plan_for_level(level, shape, machine);
  if (!choice) {
    return std::nullopt;
  }
  return choice->predicted_s();
}

inline std::string cell_or_na(const std::optional<double>& seconds) {
  if (!seconds) {
    return "n/a";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", *seconds);
  return buf;
}

/// Functional cross-check: run the engine on a scaled-down surrogate with
/// the same structure, returning the engine-accumulated simulated seconds
/// of one iteration.
inline double functional_iteration_seconds(core::Level level,
                                           const data::Dataset& ds,
                                           std::size_t k,
                                           const simarch::MachineConfig& mc) {
  core::KmeansConfig config;
  config.k = k;
  config.max_iterations = 1;
  config.tolerance = -1;  // exactly one full iteration
  const core::KmeansResult result = core::run_level(level, ds, config, mc);
  return result.last_iteration_cost.total_s();
}

}  // namespace swhkm::bench
