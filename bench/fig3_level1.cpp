/// Figure 3 — Level 1 (dataflow partition) on the three UCI benchmarks,
/// one-iteration completion time over the number of centroids k, on one
/// SW26010 processor (4 CGs, 256 CPEs).
///
/// Paper reading: all three curves grow linearly in k; US Census tops out
/// near 0.1 s at k=64, Road Network near 0.1 s at k=1024, Kegg near 0.01 s
/// at k=256.

#include "bench_common.hpp"

using namespace swhkm;
using core::Level;
using core::ProblemShape;

namespace {

struct Series {
  const char* name;
  data::Benchmark benchmark;
  std::uint64_t n;
  std::uint64_t d;
  std::uint64_t ks[5];
};

}  // namespace

int main() {
  bench::banner("Figure 3 — Level 1: dataflow partition",
                "UCI datasets at original n and d, k swept, 1 SW26010 "
                "processor (256 CPEs); metric: one-iteration time");

  const Series series[] = {
      {"US Census 1990", data::Benchmark::kUsCensus1990, 2458285, 68,
       {4, 8, 16, 32, 64}},
      {"Road Network", data::Benchmark::kRoadNetwork, 434874, 4,
       {64, 128, 256, 512, 1024}},
      {"Kegg Network", data::Benchmark::kKeggNetwork, 65554, 28,
       {16, 32, 64, 128, 256}},
  };
  const simarch::MachineConfig machine = simarch::MachineConfig::sw26010(1);

  util::Table table({"dataset", "n", "d", "k", "model s/iter",
                     "functional s/iter (scaled n)", "paper trend"});
  for (const Series& s : series) {
    // Functional cross-check at n scaled to laptop size: the engine runs
    // the real clustering on a surrogate with the benchmark's d, charging
    // simulated time; scaling back up by n ratio should land near the
    // model (linear dataflow partition).
    const std::size_t scaled_n = 4096;
    const data::Dataset surrogate =
        data::make_benchmark_surrogate(s.benchmark, scaled_n, s.d, 7);
    for (std::uint64_t k : s.ks) {
      const ProblemShape shape{s.n, k, s.d};
      const auto model = bench::model_best(Level::kLevel1, shape, machine);
      std::string functional = "n/a";
      if (k <= scaled_n) {
        // Run on a tiny machine with the same CPE count ratio kept simple:
        // one CG of 4 CPEs; report engine simulated seconds scaled by the
        // sample and CPE ratios.
        const auto tiny = simarch::MachineConfig::tiny(1, 4, 64 * 1024);
        const core::ProblemShape tiny_shape{surrogate.n(), k, surrogate.d()};
        if (core::check_level(Level::kLevel1, tiny_shape, tiny).ok) {
          const double t = bench::functional_iteration_seconds(
              Level::kLevel1, surrogate, k, tiny);
          const double scale =
              (double(s.n) / double(surrogate.n())) *
              (double(tiny.total_cpes()) / double(machine.total_cpes()));
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.6f", t * scale);
          functional = buf;
        }
      }
      table.new_row()
          .add(s.name)
          .add(std::uint64_t{s.n})
          .add(std::uint64_t{s.d})
          .add(std::uint64_t{k})
          .add(bench::cell_or_na(model))
          .add(functional)
          .add("linear in k");
    }
  }
  bench::emit(table, "fig3_level1");

  std::cout << "Expected shape: one-iteration time grows linearly with k on\n"
               "all three datasets (paper Fig. 3). Compare the model column\n"
               "ratios within each dataset block.\n";
  return 0;
}
