/// Figure 4 — Level 2 (dataflow + centroid partition) on the three UCI
/// benchmarks with large k, up to 256 SW26010 processors.
///
/// Paper reading: linear growth in k up to 100,000 centroids (Road), 4,096
/// (Census) and 8,192 (Kegg) — the nk-partition removes Level 1's k wall.

#include "bench_common.hpp"

using namespace swhkm;
using core::Level;
using core::ProblemShape;

int main() {
  bench::banner("Figure 4 — Level 2: dataflow and centroids partition",
                "UCI datasets, large k swept, 256 SW26010 processors "
                "(65,536 CPEs); metric: one-iteration time");

  struct Series {
    const char* name;
    std::uint64_t n;
    std::uint64_t d;
    std::uint64_t ks[5];
  };
  const Series series[] = {
      {"US Census 1990", 2458285, 68, {256, 512, 1024, 2048, 4096}},
      {"Road Network", 434874, 4, {6250, 12500, 25000, 50000, 100000}},
      {"Kegg Network", 65554, 28, {512, 1024, 2048, 4096, 8192}},
  };
  const simarch::MachineConfig machine = simarch::MachineConfig::sw26010(256);

  util::Table table({"dataset", "k", "m_group", "resident", "model s/iter",
                     "Level1 feasible?"});
  for (const Series& s : series) {
    for (std::uint64_t k : s.ks) {
      const ProblemShape shape{s.n, k, s.d};
      const auto choice =
          core::best_plan_for_level(Level::kLevel2, shape, machine);
      const bool l1 = core::check_level(Level::kLevel1, shape, machine).ok;
      table.new_row()
          .add(s.name)
          .add(std::uint64_t{k})
          .add(choice ? std::to_string(choice->plan.m_group) : "-")
          .add(choice ? (choice->plan.ldm.resident ? "yes" : "streamed") : "-")
          .add(choice ? bench::cell_or_na(choice->predicted_s()) : "n/a")
          .add(l1 ? "yes" : "no (k too large: C1)");
    }
  }
  bench::emit(table, "fig4_level2");

  std::cout
      << "Expected shape: linear growth in k on each dataset, and every\n"
         "k value here is beyond Level 1's C1 wall (the last column) —\n"
         "the nk-partition is what makes these shapes runnable at all.\n";
  return 0;
}
