/// Table III — execution-time comparison with other architectures at the
/// five published workloads. The "paper" columns are the published
/// numbers (theirs and their Sunway measurements); the "model" column is
/// our simulated Sunway at the same node counts — the calibration anchor
/// for the whole performance model.

#include "bench_common.hpp"

using namespace swhkm;

int main() {
  bench::banner("Table III — execution time comparison with other "
                "architectures",
                "five published workloads; per-iteration seconds");

  struct Row {
    const char* approach;
    const char* hardware;
    std::uint64_t n, k, d;
    std::size_t nodes;
    double other_arch_s;
    double paper_sunway_s;
  };
  const Row rows[] = {
      {"Rossbach et al", "10x K20M + 20x Xeon E5-2620", 1000000000, 120, 40,
       128, 49.4, 0.468635},
      {"Bhimani et al", "NVIDIA Tesla K20M", 1400000, 240, 5, 4, 1.77,
       0.025336},
      {"Jin et al", "NVIDIA Tesla K20c", 140000, 500, 90, 1, 5.407, 0.110191},
      {"Li et al", "Xilinx ZC706 FPGA", 2100000, 4, 4, 1, 0.0085, 0.002839},
      {"Ding et al", "Intel i7-3770K", 2458285, 10000, 68, 16, 75.976,
       2.424517},
  };

  util::Table table({"workload", "other arch s/iter", "paper Sunway s/iter",
                     "model Sunway s/iter", "model/paper", "paper speedup",
                     "model speedup", "level picked"});
  for (const Row& row : rows) {
    const simarch::MachineConfig machine =
        simarch::MachineConfig::sw26010(row.nodes);
    const auto choice = core::auto_plan({row.n, row.k, row.d}, machine);
    const double model_s = choice ? choice->predicted_s() : -1;
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2f", model_s / row.paper_sunway_s);
    char paper_speedup[32];
    std::snprintf(paper_speedup, sizeof(paper_speedup), "%.0fx",
                  row.other_arch_s / row.paper_sunway_s);
    char model_speedup[32];
    std::snprintf(model_speedup, sizeof(model_speedup), "%.0fx",
                  model_s > 0 ? row.other_arch_s / model_s : 0.0);
    table.new_row()
        .add(row.approach)
        .add(row.other_arch_s, 6)
        .add(row.paper_sunway_s, 6)
        .add(model_s, 6)
        .add(ratio)
        .add(paper_speedup)
        .add(model_speedup)
        .add(choice ? core::level_name(choice->plan.level) : "-");
  }
  bench::emit(table, "table3_arch_compare");

  std::cout
      << "Expected: model/paper within ~2x on every row (the model was\n"
         "calibrated against this table's aggregate, not per-row), and the\n"
         "speedup ordering over other architectures preserved:\n"
         "heterogeneous cluster ~100x, GPUs 50-70x, FPGA ~3x, CPU ~30x.\n";
  return 0;
}
