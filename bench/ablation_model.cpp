/// Ablation studies of the design choices DESIGN.md calls out:
///   1. register-communication vs DMA-path intra-CG AllReduce (the paper
///      quotes 3-4x for this bottleneck);
///   2. the paper's closed-form T_read/T_comm algebra vs the mechanistic
///      model, at the Fig. 7 operating points;
///   3. CG-group placement within vs across supernodes.

#include "bench_common.hpp"

#include "simarch/regcomm.hpp"
#include "simarch/topology.hpp"

using namespace swhkm;
using core::Level;
using core::Placement;
using core::ProblemShape;

int main() {
  bench::banner("Ablations", "design-choice studies from DESIGN.md");

  // 1. register communication vs DMA for the intra-CG AllReduce.
  {
    const simarch::MachineConfig machine = simarch::MachineConfig::sw26010(1);
    simarch::CostTally tally;
    simarch::RegComm reg(machine, tally);
    util::Table table({"payload", "regcomm allreduce s", "DMA-path s",
                       "speedup"});
    for (std::size_t bytes : {1024ul, 16384ul, 262144ul, 4194304ul}) {
      const double reg_s = reg.allreduce_time(bytes, 64);
      // DMA path (best case, slice-parallel reduce-scatter + allgather
      // through main memory): every byte crosses the CG's DMA channel
      // four times — contribution out, slice in, reduced slice out,
      // result in.
      const double dma_s = 4.0 * bytes / machine.dma_bandwidth +
                           2 * 64 * machine.dma_latency;
      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.1fx", dma_s / reg_s);
      table.new_row()
          .add(util::format_bytes(bytes))
          .add(reg_s, 9)
          .add(dma_s, 9)
          .add(speedup);
    }
    bench::emit(table, "ablation_regcomm_vs_dma");
    std::cout << "Paper claims 3-4x for the AllReduce bottleneck via\n"
                 "register communication; large payloads should land in\n"
                 "that band (small ones higher, being latency-bound).\n\n";
  }

  // 2. paper closed forms vs mechanistic model.
  {
    const simarch::MachineConfig machine =
        simarch::MachineConfig::sw26010(128);
    util::Table table({"level", "d", "paper T_read+T_comm s",
                       "mechanistic model s"});
    for (std::uint64_t d : {512ull, 2048ull, 4096ull}) {
      const ProblemShape shape{1265723, 2000, d};
      for (Level level : {Level::kLevel2, Level::kLevel3}) {
        if (!core::check_level(level, shape, machine).ok) {
          continue;
        }
        const auto plan = core::make_plan(level, shape, machine);
        const auto closed = core::paper_formula_times(plan, machine);
        const auto mech = core::model_iteration(plan, machine);
        table.new_row()
            .add(core::level_name(level))
            .add(std::uint64_t{d})
            .add(closed.total_s(), 6)
            .add(mech.total_s(), 6);
      }
    }
    bench::emit(table, "ablation_paper_formulas");
    std::cout << "The paper's T_comm for L2/L3 multiplies the AllReduce by\n"
                 "n/m (a per-sample term), which overestimates update\n"
                 "traffic by orders of magnitude; the mechanistic model\n"
                 "charges it once per iteration. This table quantifies the\n"
                 "gap (see EXPERIMENTS.md discussion).\n\n";
  }

  // 3. placement: packed into supernodes vs scattered. Two regimes: the
  // planner-chosen headline plans (where streaming dominates and placement
  // barely matters — itself a finding), and forced large m'_group plans
  // whose per-sample combine is latency-bound and feels every boundary.
  {
    util::Table table({"shape", "nodes", "m'_group", "packed s/iter",
                       "scattered s/iter", "penalty"});
    auto add_row = [&](const char* label, const ProblemShape& shape,
                       std::size_t nodes, std::size_t forced_p) {
      const simarch::MachineConfig machine =
          simarch::MachineConfig::sw26010(nodes);
      if (forced_p != 0 &&
          !core::check_level(Level::kLevel3, shape, machine, 0, forced_p)
               .ok) {
        return;
      }
      const auto plan =
          forced_p != 0
              ? core::make_plan(Level::kLevel3, shape, machine, 0, forced_p)
              : core::best_plan_for_level(Level::kLevel3, shape, machine)
                    ->plan;
      const double packed_s =
          core::model_iteration(plan, machine, Placement::kPacked).total_s();
      const double scattered_s =
          core::model_iteration(plan, machine, Placement::kScattered)
              .total_s();
      char penalty[32];
      std::snprintf(penalty, sizeof(penalty), "%.2fx",
                    scattered_s / packed_s);
      table.new_row()
          .add(label)
          .add(std::uint64_t{nodes})
          .add(std::uint64_t{plan.mprime_group})
          .add(packed_s, 6)
          .add(scattered_s, 6)
          .add(penalty);
    };
    const ProblemShape headline{1265723, 2000, 196608};
    add_row("headline (planner p)", headline, 512, 0);
    add_row("headline (planner p)", headline, 4096, 0);
    // Combine-bound: modest d so streaming is cheap, large forced p so
    // every sample pays a wide network argmin.
    const ProblemShape combine_bound{1265723, 2000, 4096};
    add_row("combine-bound p=64", combine_bound, 128, 64);
    add_row("combine-bound p=128", combine_bound, 512, 128);
    bench::emit(table, "ablation_placement");
    std::cout << "The paper: 'make a CG group located within a super-node\n"
                 "if possible'. The penalty column is what ignoring that\n"
                 "advice costs under our topology model.\n\n";
  }

  // 4. sensitivity of the headline conclusions to the two calibration
  // knobs: the claims must be robust, not artefacts of the chosen values.
  {
    util::Table table({"efficiency", "row overhead (cycles)",
                       "Fig6b headline s/iter (<18?)",
                       "Fig7 crossover d (L3 first win)"});
    for (double eff : {0.03, 0.05, 0.08}) {
      for (double overhead : {48.0, 96.0, 192.0}) {
        simarch::MachineConfig mc = simarch::MachineConfig::sw26010(4096);
        mc.compute_efficiency = eff;
        mc.row_overhead_cycles = overhead;
        const auto headline = core::best_plan_for_level(
            Level::kLevel3, ProblemShape{1265723, 2000, 196608}, mc);
        simarch::MachineConfig mc128 = simarch::MachineConfig::sw26010(128);
        mc128.compute_efficiency = eff;
        mc128.row_overhead_cycles = overhead;
        std::uint64_t crossover = 0;
        for (std::uint64_t d = 512; d <= 4096; d += 512) {
          const ProblemShape shape{1265723, 2000, d};
          const auto l2 = core::best_plan_for_level(Level::kLevel2, shape,
                                                    mc128);
          const auto l3 = core::best_plan_for_level(Level::kLevel3, shape,
                                                    mc128);
          if (l2 && l3 && l3->predicted_s() < l2->predicted_s()) {
            crossover = d;
            break;
          }
        }
        char headline_cell[48];
        std::snprintf(headline_cell, sizeof(headline_cell), "%.2f (%s)",
                      headline ? headline->predicted_s() : -1.0,
                      headline && headline->predicted_s() < 18 ? "yes"
                                                               : "NO");
        table.new_row()
            .add(eff, 2)
            .add(overhead, 0)
            .add(headline_cell)
            .add(crossover == 0 ? "none <= 4096"
                                : std::to_string(crossover));
      }
    }
    bench::emit(table, "ablation_sensitivity");
    std::cout << "Robustness: the <18 s headline and the existence of a\n"
                 "low-thousands crossover must hold across a 2-4x band of\n"
                 "both calibration knobs, or the reproduction would be a\n"
                 "fit artefact.\n";
  }
  return 0;
}
