/// Figure 9 — Level 2 vs Level 3 over machine size:
/// nodes swept 2..256 with d = 4,096, k = 2,000, n = 1,265,723 fixed.
///
/// Paper reading: Level 3 outperforms at every node count; both scale
/// down roughly linearly; the gap narrows (relatively) as nodes grow.

#include "bench_common.hpp"

using namespace swhkm;
using core::Level;
using core::ProblemShape;

int main() {
  bench::banner("Figure 9 — L2 vs L3 over node count",
                "nodes in 2..256, d=4096, k=2000, n=1,265,723; metric: "
                "one-iteration time");

  constexpr std::uint64_t kN = 1265723;
  const ProblemShape shape{kN, 2000, 4096};

  util::Table table({"nodes", "Level2 s/iter", "Level3 s/iter",
                     "L2 speedup vs 2 nodes", "L3 speedup vs 2 nodes"});
  double l2_base = 0;
  double l3_base = 0;
  for (std::size_t nodes : {2, 4, 8, 16, 32, 64, 128, 256}) {
    const simarch::MachineConfig machine =
        simarch::MachineConfig::sw26010(nodes);
    const auto l2 = bench::model_best(Level::kLevel2, shape, machine);
    const auto l3 = bench::model_best(Level::kLevel3, shape, machine);
    if (nodes == 2) {
      l2_base = l2.value_or(0);
      l3_base = l3.value_or(0);
    }
    auto speedup = [](double base, const std::optional<double>& now) {
      if (!now || base <= 0) {
        return std::string("-");
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2fx", base / *now);
      return std::string(buf);
    };
    table.new_row()
        .add(std::uint64_t{nodes})
        .add(bench::cell_or_na(l2))
        .add(bench::cell_or_na(l3))
        .add(speedup(l2_base, l2))
        .add(speedup(l3_base, l3));
  }
  bench::emit(table, "fig9_node_compare");

  // Functional strong-scaling cross-check at laptop scale: the engine's
  // simulated time must also drop when the (tiny) machine doubles.
  const data::Dataset surrogate = data::make_ilsvrc_like(512, 8, 3);
  util::Table functional({"tiny nodes", "engine simulated s/iter"});
  for (std::size_t nodes : {1, 2, 4}) {
    const auto tiny = simarch::MachineConfig::tiny(nodes, 4, 16384);
    const double t = bench::functional_iteration_seconds(Level::kLevel3,
                                                         surrogate, 8, tiny);
    functional.new_row().add(std::uint64_t{nodes}).add(t, 8);
  }
  bench::emit(functional, "fig9_functional_scaling");

  std::cout << "Expected shape: both curves fall ~linearly with nodes,\n"
               "Level 3 below Level 2 everywhere (paper Fig. 9).\n";
  return 0;
}
