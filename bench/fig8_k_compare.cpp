/// Figure 8 — Level 2 vs Level 3 over centroid count:
/// k swept 256..131072, d = 4,096, n = 1,265,723, 128 nodes.
///
/// Paper reading: at this d, Level 3 always wins and the gap widens with
/// k; Level 2 climbs toward ~200 s at k = 131,072.
///
/// Also sweeps m'_group at one operating point — the replication-factor
/// ablation DESIGN.md calls out.

#include "bench_common.hpp"

using namespace swhkm;
using core::Level;
using core::ProblemShape;

int main() {
  bench::banner("Figure 8 — L2 vs L3 over k",
                "k in 256..131072, d=4096, n=1,265,723, 128 nodes; metric: "
                "one-iteration time");

  const simarch::MachineConfig machine = simarch::MachineConfig::sw26010(128);
  constexpr std::uint64_t kN = 1265723;
  constexpr std::uint64_t kD = 4096;

  util::Table table({"k", "Level2 s/iter", "Level3 s/iter", "L2/L3 ratio"});
  for (std::uint64_t k :
       {256ull, 512ull, 1024ull, 2048ull, 4096ull, 8192ull, 16384ull,
        32768ull, 65536ull, 131072ull}) {
    const ProblemShape shape{kN, k, kD};
    const auto l2 = bench::model_best(Level::kLevel2, shape, machine);
    const auto l3 = bench::model_best(Level::kLevel3, shape, machine);
    std::string ratio = "-";
    if (l2 && l3 && *l3 > 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2fx", *l2 / *l3);
      ratio = buf;
    }
    table.new_row()
        .add(std::uint64_t{k})
        .add(bench::cell_or_na(l2))
        .add(bench::cell_or_na(l3))
        .add(ratio);
  }
  bench::emit(table, "fig8_k_compare");

  // Ablation: the m'_group knob at k=8192 — how the centroid replication
  // factor trades per-sample combine latency against slice residency.
  util::Table ablation(
      {"m'_group (k=8192)", "model s/iter", "resident", "k_local"});
  for (std::size_t p : core::candidate_mprime_groups(machine)) {
    if (!core::check_level(Level::kLevel3, {kN, 8192, kD}, machine, 0, p).ok) {
      continue;
    }
    const auto plan =
        core::make_plan(Level::kLevel3, {kN, 8192, kD}, machine, 0, p);
    const double t = core::model_iteration(plan, machine).total_s();
    ablation.new_row()
        .add(std::uint64_t{p})
        .add(t, 6)
        .add(plan.ldm.resident ? "yes" : "streamed")
        .add(std::uint64_t{plan.k_local});
  }
  bench::emit(ablation, "fig8_mprime_ablation");

  std::cout << "Expected shape: Level 3 wins at every k (d=4096 sits right\n"
               "of the Fig. 7 crossover) and the absolute gap widens with "
               "k.\n";
  return 0;
}
