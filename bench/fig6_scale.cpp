/// Figure 6 — Level 3 at extreme scale, two sweeps:
///   (a) centroids: d = 3,072 fixed, 128 nodes, k up to 160,000
///   (b) nodes:     d = 196,608, k = 2,000 fixed, 256 -> 4,096 nodes
/// including the paper's headline: < 18 s/iteration at 4,096 nodes
/// (1,064,496 cores).

#include "bench_common.hpp"

using namespace swhkm;
using core::Level;
using core::ProblemShape;

int main() {
  bench::banner("Figure 6 — Level 3 large-scale on centroids and nodes",
                "(a) k sweep at d=3072 on 128 nodes; (b) node sweep at "
                "d=196608, k=2000; metric: one-iteration time");

  constexpr std::uint64_t kN = 1265723;

  {
    const simarch::MachineConfig machine =
        simarch::MachineConfig::sw26010(128);
    util::Table table(
        {"k (d=3072, 128 nodes)", "model s/iter", "m'_group", "resident"});
    for (std::uint64_t k :
         {2000ull, 5000ull, 10000ull, 20000ull, 40000ull, 80000ull,
          160000ull}) {
      const auto choice = core::best_plan_for_level(
          Level::kLevel3, ProblemShape{kN, k, 3072}, machine);
      table.new_row()
          .add(std::uint64_t{k})
          .add(choice ? bench::cell_or_na(choice->predicted_s()) : "n/a")
          .add(choice ? std::to_string(choice->plan.mprime_group) : "-")
          .add(choice ? (choice->plan.ldm.resident ? "yes" : "streamed")
                      : "-");
    }
    bench::emit(table, "fig6a_centroid_scale");
  }

  {
    util::Table table({"nodes (d=196608, k=2000)", "cores", "model s/iter",
                       "headline (<18 s at 4096)"});
    double at_4096 = 0;
    for (std::size_t nodes : {256, 512, 1024, 2048, 4096}) {
      const simarch::MachineConfig machine =
          simarch::MachineConfig::sw26010(nodes);
      const auto choice = core::best_plan_for_level(
          Level::kLevel3, ProblemShape{kN, 2000, 196608}, machine);
      const double seconds = choice ? choice->predicted_s() : -1;
      if (nodes == 4096) {
        at_4096 = seconds;
      }
      table.new_row()
          .add(std::uint64_t{nodes})
          .add(util::format_count(nodes * 260))  // 256 CPEs + 4 MPEs
          .add(bench::cell_or_na(choice ? std::optional<double>(seconds)
                                        : std::nullopt))
          .add(nodes == 4096 ? (seconds < 18.0 ? "PASS" : "FAIL") : "");
    }
    bench::emit(table, "fig6b_node_scale");
    std::cout << "Headline check: " << at_4096
              << " s/iteration at 4096 nodes (paper: < 18 s) -> "
              << (at_4096 > 0 && at_4096 < 18.0 ? "PASS" : "FAIL") << "\n";
  }

  std::cout << "Expected shape: (a) grows ~linearly in k without hitting a\n"
               "memory wall; (b) halves roughly with each node doubling.\n";
  return 0;
}
