/// Wall-clock (NOT simulated) microbenchmark of the batched assign phase.
///
/// The paper's nkd partition keeps communication off the per-sample
/// critical path of the *simulated* machine; this bench tracks whether the
/// host implementation honours the same principle. It runs the Level 3
/// assign phase of an (n=8192, k=256, d=128) workload on a 4-CG group two
/// ways over the real swmpi runtime:
///
///   per-sample — one allreduce_minloc of a single MinLoc per sample, the
///                pre-batching engine structure (kept here as the
///                reference implementation so the win stays measurable);
///   batched    — the shipped structure: score a 256-sample tile into a
///                MinLoc buffer, then one vector-shaped allreduce_minloc
///                per tile.
///
/// Both produce bit-identical winners (verified); only the number of
/// thread-level barriers differs.
///
/// It also times the centroid-update phase of the same workload two ways:
///
///   root-serialized — the pre-sharding structure: two flat reduces of the
///                     full k x d sums and counts to rank 0, rank 0 applies
///                     the whole update alone, scalar bcast of the shift;
///   sharded         — the shipped reduce_and_update: one fused
///                     reduce_scatter, every rank applying its own shard of
///                     rows in parallel, allgather + stats allreduce.
///
/// Both variants pay one accumulator-sized copy per round (the old path's
/// reduce scratch vs the new path's payload packing) and produce
/// bit-identical centroids (verified). Results go to BENCH_wallclock.json
/// in the working directory so subsequent PRs can track the trajectory.
///
/// Third experiment — the bound gate. A full Lloyd run to convergence on
/// the same (n=8192, k=256, d=128, 4-CG) cell, assign phase two ways:
///
///   ungated — every sample sweeps its k-slice every iteration, one
///             16-byte-record MinLoc collective per tile (the pre-gate
///             engine structure);
///   gated   — Hamerly bounds gate every sample before it enters a tile;
///             survivors sweep and ride a *compacted* 24-byte MinLoc2
///             collective (runner-up distance keeps the lower bound exact
///             under the nk slice), fully-pruned tiles skip the collective
///             outright.
///
/// Per-iteration assign wall-clock, prune rate and collective payload go
/// to the JSON + wallclock_gated_assign.csv; the run asserts both variants
/// and serial Lloyd converge to bit-identical centroids. `--smoke` runs
/// only this experiment on a tiny cell (CI-sized, a few hundred ms).
///
/// `--faults` is a separate CI-sized cell for the fault story: each engine
/// level runs once clean and once under the RecoveryDriver with a
/// deterministic mid-run crash injected (rank 1 dies entering the update
/// phase of iteration 5, past the first checkpoint boundary so the reload
/// path is exercised). Time-to-recover and the recovery report go to
/// BENCH_faults.json; the cell fails if the recovered run is not
/// bit-identical to the clean one.
///
/// `--sdc` drills the silent-data-corruption defense instead of fail-stop:
/// every engine level takes four deterministic exponent-bit flips (centroid
/// snapshot, GEMM tile scratch, update-accumulator sums, update-accumulator
/// counts) and the transport CRC takes a transient and a persistent wire
/// corruption on a collective workload. The gates: every injection is
/// detected, detection is handled by a localized in-memory leg retry (no
/// checkpoint rollback), every drilled run lands bit-identical to the clean
/// defense-off run, a corruption-free defense-on run is bit-identical too
/// (centroid_max_abs_diff == 0.0), and the defense's modeled overhead stays
/// bounded. Results go to BENCH_sdc.json; `--smoke` embeds the same cell in
/// BENCH_wallclock.json.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/engine_common.hpp"
#include "core/engine_util.hpp"
#include "core/lloyd.hpp"
#include "core/metrics.hpp"
#include "core/planner.hpp"
#include "swmpi/collectives.hpp"
#include "swmpi/fault.hpp"
#include "swmpi/mailbox.hpp"
#include "swmpi/runtime.hpp"
#include "telemetry/export.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"

namespace swhkm {
namespace {

constexpr std::size_t kN = 8192;
constexpr std::size_t kK = 256;
constexpr std::size_t kD = 128;
constexpr std::size_t kGroupCgs = 4;  // one Level 3 flow unit of 4 CGs

struct AssignTiming {
  double seconds = 0;
  std::vector<std::uint32_t> winners;
};

/// One assign phase over `group_cgs` ranks, per-sample collectives.
AssignTiming assign_per_sample(const data::Dataset& ds,
                               const util::Matrix& centroids,
                               std::size_t k_local) {
  AssignTiming out;
  out.winners.assign(ds.n(), 0);
  util::Stopwatch clock;
  swmpi::run_spmd(static_cast<int>(kGroupCgs), [&](swmpi::Comm& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    const std::size_t j_begin = std::min(rank * k_local, kK);
    const std::size_t j_end = std::min(kK, j_begin + k_local);
    for (std::size_t i = 0; i < ds.n(); ++i) {
      swmpi::MinLoc mine{std::numeric_limits<double>::max(),
                         std::numeric_limits<std::uint64_t>::max()};
      if (j_begin < j_end) {
        const auto [dist, j] = core::detail::nearest_in_slice(
            ds.sample(i), centroids, j_begin, j_end);
        mine = {dist, j};
      }
      swmpi::allreduce_minloc(comm, std::span<swmpi::MinLoc>(&mine, 1));
      if (rank == 0) {
        out.winners[i] = static_cast<std::uint32_t>(mine.index);
      }
    }
  });
  out.seconds = clock.seconds();
  return out;
}

/// Same phase, one batched collective per kAssignTileSamples-sample tile.
AssignTiming assign_batched(const data::Dataset& ds,
                            const util::Matrix& centroids,
                            std::size_t k_local) {
  AssignTiming out;
  out.winners.assign(ds.n(), 0);
  util::Stopwatch clock;
  swmpi::run_spmd(static_cast<int>(kGroupCgs), [&](swmpi::Comm& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    const std::size_t j_begin = std::min(rank * k_local, kK);
    const std::size_t j_end = std::min(kK, j_begin + k_local);
    std::vector<swmpi::MinLoc> tile(core::detail::kAssignTileSamples);
    for (std::size_t t0 = 0; t0 < ds.n();
         t0 += core::detail::kAssignTileSamples) {
      const std::size_t t1 =
          std::min(ds.n(), t0 + core::detail::kAssignTileSamples);
      const std::span<swmpi::MinLoc> scores(tile.data(), t1 - t0);
      core::detail::clear_scores(scores);
      if (j_begin < j_end) {
        core::detail::score_tile(ds, t0, t1, centroids, j_begin, j_end,
                                 scores);
      }
      swmpi::allreduce_minloc(comm, scores);
      if (rank == 0) {
        for (std::size_t i = t0; i < t1; ++i) {
          out.winners[i] = static_cast<std::uint32_t>(scores[i - t0].index);
        }
      }
    }
  });
  out.seconds = clock.seconds();
  return out;
}

/// Per-rank update-phase inputs: each of the 4 CGs accumulates its block of
/// samples under the (deterministic) full-scan winners. Built once; the
/// timed variants only read them.
std::vector<core::detail::UpdateAccumulator> build_accumulators(
    const data::Dataset& ds, const util::Matrix& centroids) {
  std::vector<core::detail::UpdateAccumulator> accs(
      kGroupCgs, core::detail::UpdateAccumulator(kK, kD));
  for (std::size_t r = 0; r < kGroupCgs; ++r) {
    const auto [begin, end] =
        core::detail::block_range(ds.n(), kGroupCgs, r);
    for (std::size_t i = begin; i < end; ++i) {
      const auto [dist, j] =
          core::detail::nearest_in_slice(ds.sample(i), centroids, 0, kK);
      (void)dist;
      accs[r].add_sample(j, ds.sample(i));
    }
  }
  return accs;
}

/// `reps` rounds of the pre-sharding update: two flat reduces to rank 0,
/// root-only apply, scalar bcast. Applying the same accumulator is
/// idempotent (rows land on sums/counts means every round), so the work per
/// round is identical while centroids stay comparable across variants.
double update_root_serialized(
    const std::vector<core::detail::UpdateAccumulator>& accs,
    util::Matrix& centroids, int reps) {
  util::Stopwatch clock;
  swmpi::run_spmd(static_cast<int>(kGroupCgs), [&](swmpi::Comm& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    std::vector<double> sums;
    std::vector<double> counts;
    for (int rep = 0; rep < reps; ++rep) {
      sums = accs[rank].sums;  // the reduce destroys its input partials
      counts = accs[rank].counts;
      swmpi::reduce(comm, 0, std::span<double>(sums.data(), sums.size()),
                    swmpi::ops::Plus{});
      swmpi::reduce(comm, 0,
                    std::span<double>(counts.data(), counts.size()),
                    swmpi::ops::Plus{});
      double shift = 0;
      if (comm.rank() == 0) {
        shift = core::detail::apply_update(centroids, sums, counts).shift;
      }
      swmpi::bcast(comm, 0, std::span<double>(&shift, 1));
    }
  });
  return clock.seconds();
}

/// `reps` rounds of the shipped sharded update. reduce_and_update only
/// reads the accumulator (the shared-partials fold is zero-copy), so no
/// per-round scratch copy exists to pay — the root path's defensive copy
/// above is inherent to its destructive reduce, and its absence here is
/// part of the measured win.
double update_sharded(
    const std::vector<core::detail::UpdateAccumulator>& accs,
    util::Matrix& centroids, int reps) {
  util::Stopwatch clock;
  swmpi::run_spmd(static_cast<int>(kGroupCgs), [&](swmpi::Comm& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    for (int rep = 0; rep < reps; ++rep) {
      (void)core::detail::reduce_and_update(comm, centroids, accs[rank]);
    }
  });
  return clock.seconds();
}

/// One converging Lloyd run over the 4-rank swmpi runtime with the Level 3
/// nk slicing (each rank owns a contiguous k-slice, winners resolved by a
/// per-tile collective), assign phase gated or not.
struct ConvergeTrace {
  std::vector<double> assign_s;            ///< per-iteration assign wall
  std::vector<double> prune_rate;          ///< gated fraction per iteration
  std::vector<std::uint64_t> collective_bytes;  ///< minloc payload crossing
  std::vector<std::uint32_t> assignments;
  util::Matrix centroids;
  std::size_t iterations = 0;
};

ConvergeTrace run_converging_assign(const data::Dataset& ds,
                                    const util::Matrix& init, std::size_t k,
                                    std::size_t group_cgs, bool gate,
                                    std::size_t max_iters, double tolerance) {
  ConvergeTrace out;
  out.centroids = init;
  const std::size_t n = ds.n();
  const std::size_t k_local = (k + group_cgs - 1) / group_cgs;
  constexpr std::size_t kTile = core::detail::kAssignTileSamples;
  std::vector<std::uint32_t> winners(n, 0);
  swmpi::run_spmd(static_cast<int>(group_cgs), [&](swmpi::Comm& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    const std::size_t j_begin = std::min(rank * k_local, k);
    const std::size_t j_end = std::min(k, j_begin + k_local);
    std::vector<std::uint32_t> local_assign(n, 0);
    std::vector<double> upper;
    std::vector<double> lower;
    std::vector<double> drift;
    std::vector<double> safe;
    std::vector<std::uint32_t> ids;
    if (gate) {
      upper.assign(n, 0.0);
      lower.assign(n, 0.0);
      drift.assign(k, 0.0);
      ids.reserve(kTile);
    }
    std::vector<swmpi::MinLoc> tile1(kTile);
    std::vector<swmpi::MinLoc2> tile2(kTile);
    core::detail::UpdateAccumulator acc(k, ds.d());
    for (std::size_t iter = 0; iter < max_iters; ++iter) {
      // Sync so rank 0's stopwatch brackets only the assign phase.
      double sync = 0;
      swmpi::allreduce_sum(comm, std::span<double>(&sync, 1));
      util::Stopwatch clock;
      const bool gating = gate && iter > 0;
      core::detail::DriftDigest digest;
      if (gating) {
        digest = core::detail::drift_digest(drift);
        core::detail::compute_safe_radii(out.centroids, safe);
      }
      std::uint64_t unresolved = 0;
      for (std::size_t t0 = 0; t0 < n; t0 += kTile) {
        const std::size_t t1 = std::min(n, t0 + kTile);
        if (!gate) {
          const std::span<swmpi::MinLoc> scores(tile1.data(), t1 - t0);
          core::detail::clear_scores(scores);
          if (j_begin < j_end) {
            core::detail::score_tile(ds, t0, t1, out.centroids, j_begin,
                                     j_end, scores);
          }
          swmpi::allreduce_minloc(comm, scores);
          for (std::size_t i = t0; i < t1; ++i) {
            local_assign[i] =
                static_cast<std::uint32_t>(scores[i - t0].index);
          }
          unresolved += t1 - t0;
          continue;
        }
        if (!gating) {
          // Iteration 0 with the gate on: full sweep, MinLoc2 so the
          // runner-up distance seeds the lower bound.
          const std::span<swmpi::MinLoc2> scores(tile2.data(), t1 - t0);
          core::detail::clear_scores(scores);
          if (j_begin < j_end) {
            core::detail::score_tile(ds, t0, t1, out.centroids, j_begin,
                                     j_end, scores);
          }
          swmpi::allreduce_minloc2(comm, scores);
          for (std::size_t i = t0; i < t1; ++i) {
            const swmpi::MinLoc2& rec = scores[i - t0];
            local_assign[i] = static_cast<std::uint32_t>(rec.index);
            core::detail::refresh_bounds(rec, upper[i], lower[i]);
          }
          unresolved += t1 - t0;
          continue;
        }
        // Gate inputs are globally replicated, so every rank builds the
        // identical compaction and a fully-pruned tile skips its
        // collective on all ranks at once (Level 3 structure: no tighten —
        // see gate_tile).
        ids.clear();
        core::detail::gate_tile(ds, out.centroids, t0, t1, local_assign,
                                drift, digest, safe, upper, lower,
                                /*tighten=*/false, ids);
        if (!ids.empty()) {
          const std::span<swmpi::MinLoc2> scores(tile2.data(), ids.size());
          core::detail::clear_scores(scores);
          if (j_begin < j_end) {
            core::detail::score_tile_ids(
                ds, std::span<const std::uint32_t>(ids.data(), ids.size()),
                out.centroids, j_begin, j_end, scores);
          }
          swmpi::allreduce_minloc2(comm, scores);
          for (std::size_t t = 0; t < ids.size(); ++t) {
            const std::size_t i = ids[t];
            const swmpi::MinLoc2& rec = scores[t];
            local_assign[i] = static_cast<std::uint32_t>(rec.index);
            core::detail::refresh_bounds(rec, upper[i], lower[i]);
          }
        }
        unresolved += ids.size();
      }
      swmpi::allreduce_sum(comm, std::span<double>(&sync, 1));
      if (rank == 0) {
        out.assign_s.push_back(clock.seconds());
        out.prune_rate.push_back(static_cast<double>(n - unresolved) /
                                 static_cast<double>(n));
        out.collective_bytes.push_back(
            unresolved *
            (gate ? sizeof(swmpi::MinLoc2) : sizeof(swmpi::MinLoc)) *
            (group_cgs - 1));
        out.iterations = iter + 1;
      }
      acc.reset();
      const auto [b_begin, b_end] =
          core::detail::block_range(n, group_cgs, rank);
      for (std::size_t i = b_begin; i < b_end; ++i) {
        acc.add_sample(local_assign[i], ds.sample(i));
      }
      const core::detail::UpdateOutcome outcome =
          core::detail::reduce_and_update(
              comm, out.centroids, acc,
              gate ? std::span<double>(drift.data(), drift.size())
                   : std::span<double>{});
      if (outcome.shift <= tolerance) {
        break;
      }
    }
    if (rank == 0) {
      winners = local_assign;
    }
  });
  out.assignments = std::move(winners);
  return out;
}

struct GatedSection {
  ConvergeTrace gated;
  ConvergeTrace ungated;
  double tail_speedup = 0;  ///< assign wall ratio, iterations >= kTailStart
  bool identical = false;   ///< both variants + serial Lloyd bit-identical
};

constexpr std::size_t kTailStart = 2;  // "after the first few iterations"

GatedSection run_gated_section(std::size_t n, std::size_t k, std::size_t d,
                               std::size_t group_cgs,
                               std::size_t max_iters) {
  // Clusterable data (what the gate is for): more true modes than k and a
  // moderate separation keep Lloyd walking for a while before it settles.
  const data::Dataset ds = data::make_blobs(n, d, k + k / 8, 7177,
                                            /*separation=*/4.0);
  core::KmeansConfig config;
  config.k = k;
  config.max_iterations = max_iters;
  config.tolerance = 0;
  config.init = core::InitMethod::kFirstK;
  const util::Matrix init = core::init_centroids(ds, config);

  GatedSection out;
  (void)run_converging_assign(ds, init, k, group_cgs, true, 2, 0);  // warm-up
  out.gated =
      run_converging_assign(ds, init, k, group_cgs, true, max_iters, 0);
  out.ungated =
      run_converging_assign(ds, init, k, group_cgs, false, max_iters, 0);
  const core::KmeansResult serial = core::lloyd_serial_from(ds, config, init);

  out.identical =
      out.gated.iterations == out.ungated.iterations &&
      out.gated.assignments == out.ungated.assignments &&
      out.gated.assignments == serial.assignments &&
      std::memcmp(out.gated.centroids.data(), out.ungated.centroids.data(),
                  k * d * sizeof(float)) == 0 &&
      std::memcmp(out.gated.centroids.data(), serial.centroids.data(),
                  k * d * sizeof(float)) == 0;

  double gated_tail = 0;
  double ungated_tail = 0;
  for (std::size_t it = kTailStart; it < out.gated.iterations; ++it) {
    gated_tail += out.gated.assign_s[it];
    ungated_tail += out.ungated.assign_s[it];
  }
  out.tail_speedup = gated_tail > 0 ? ungated_tail / gated_tail : 0;
  return out;
}

void emit_gated(const GatedSection& g, util::JsonWriter& w) {
  util::Table table({"iter", "ungated_assign_s", "gated_assign_s",
                     "prune_rate", "ungated_bytes", "gated_bytes"});
  for (std::size_t it = 0; it < g.gated.iterations; ++it) {
    table.new_row()
        .add(static_cast<std::uint64_t>(it))
        .add(g.ungated.assign_s[it], 6)
        .add(g.gated.assign_s[it], 6)
        .add(g.gated.prune_rate[it], 4)
        .add(g.ungated.collective_bytes[it])
        .add(g.gated.collective_bytes[it]);
  }
  bench::emit(table, "wallclock_gated_assign");

  const auto dump = [&w](const char* key, const auto& values) {
    w.key(key).begin_array();
    for (const auto& v : values) {
      w.value(v);
    }
    w.end_array();
  };
  w.key("gated_assign").begin_object();
  w.kv("iterations", static_cast<std::uint64_t>(g.gated.iterations));
  w.kv("bit_identical_to_serial_lloyd", g.identical);
  dump("ungated_assign_s", g.ungated.assign_s);
  dump("gated_assign_s", g.gated.assign_s);
  dump("prune_rate", g.gated.prune_rate);
  dump("ungated_collective_bytes", g.ungated.collective_bytes);
  dump("gated_collective_bytes", g.gated.collective_bytes);
  w.kv("tail_start_iteration", static_cast<std::uint64_t>(kTailStart));
  w.kv("assign_tail_speedup", g.tail_speedup);
  w.end_object();
  std::printf("gated assign tail speedup (iters >= %zu): %.2fx, "
              "final prune rate %.3f, bit-identical: %s\n",
              kTailStart, g.tail_speedup,
              g.gated.prune_rate.empty() ? 0.0 : g.gated.prune_rate.back(),
              g.identical ? "yes" : "NO");
}

/// One fault cell: run `level` clean, then again under the RecoveryDriver
/// with a deterministic crash (rank 1, update phase of global iteration 5 —
/// one past the second checkpoint boundary at cadence 4, so the retry goes
/// through the reload path rather than a from-scratch restart).
struct FaultCell {
  double clean_wall_s = 0;
  double faulted_wall_s = 0;
  core::RecoveryReport report;
  bool identical = false;
  std::size_t postmortem_ranks = 0;  ///< rings captured at the first fault
  /// The flight-recorder postmortem names every participant: the host ring
  /// plus one ring per core group that ran, each with recorded events.
  bool postmortem_complete = false;
};

FaultCell run_fault_cell(core::Level level, const data::Dataset& ds,
                         const simarch::MachineConfig& machine) {
  core::KmeansConfig config;
  config.k = 8;
  config.max_iterations = 10;
  config.tolerance = -1;  // fixed-iteration run: both variants do 10 rounds
  config.init = core::InitMethod::kFirstK;
  config.checkpoint_every = 4;

  FaultCell cell;
  util::Stopwatch clean_clock;
  const core::KmeansResult clean =
      core::HierarchicalKmeans(machine).fit_level(level, ds, config);
  cell.clean_wall_s = clean_clock.seconds();

  swmpi::FaultPlan plan;
  plan.crash(/*rank=*/1, /*iteration=*/5, swmpi::FaultSite::kUpdate);
  config.fault_plan = &plan;
  // Telemetry armed on the faulted side only: report_faults.json gets the
  // full metrics + fault story, and the clean-vs-recovered bit-identity
  // check below doubles as a telemetry-on/off identity check through the
  // recovery path.
  telemetry::Telemetry session;
  config.telemetry = &session;
  core::RecoveryOptions options;
  options.checkpoint_path = "BENCH_faults.ckpt";
  // Every level overwrites the same artifact; the one left behind (the
  // last level's) is what CI validates and uploads.
  options.report_path = "report_faults.json";
  core::RecoveryDriver driver(machine, options);
  util::Stopwatch faulted_clock;
  const core::KmeansResult recovered = driver.run(level, ds, config);
  cell.faulted_wall_s = faulted_clock.seconds();
  cell.report = driver.report();
  std::remove(options.checkpoint_path.c_str());

  // The crash must have left a complete postmortem: one flight-recorder
  // snapshot per rank that ran (every core group plus the host ring), each
  // with its last events intact — the report_faults.json forensics story.
  if (!driver.postmortems().empty()) {
    const telemetry::FaultPostmortem& pm = driver.postmortems().front();
    cell.postmortem_ranks = pm.ranks.size();
    bool host_seen = false;
    std::size_t worker_rings = 0;
    bool all_have_events = true;
    for (const telemetry::FlightSnapshot& snap : pm.ranks) {
      all_have_events = all_have_events && !snap.events.empty();
      if (snap.rank == telemetry::MetricsRegistry::kHostRank) {
        host_seen = true;
      } else {
        ++worker_rings;
      }
    }
    cell.postmortem_complete =
        all_have_events && host_seen &&
        worker_rings >= cell.report.final_cgs;
  }

  cell.identical =
      clean.iterations == recovered.iterations &&
      clean.assignments == recovered.assignments &&
      std::memcmp(clean.centroids.data(), recovered.centroids.data(),
                  config.k * ds.d() * sizeof(float)) == 0;
  return cell;
}

int run_faults() {
  bench::banner("wallclock_engines --faults",
                "CI-sized recovery check: every engine level, clean vs "
                "crash-injected RecoveryDriver run (n=2048, k=8, d=6, 4 CGs)");
  const data::Dataset ds = data::make_blobs(2048, 6, 10, 4242);
  const simarch::MachineConfig machine =
      simarch::MachineConfig::tiny(2, 4, 8192);

  constexpr core::Level kLevels[] = {core::Level::kLevel1,
                                     core::Level::kLevel2,
                                     core::Level::kLevel3};
  util::Table table({"level", "clean_wall_s", "faulted_wall_s",
                     "time_to_recover_s", "retries", "resumed_from_ckpt",
                     "postmortem_ranks", "bit_identical"});
  std::ofstream json("BENCH_faults.json");
  util::JsonWriter w(json);
  w.begin_object();
  bench::emit_run_metadata(w);
  w.key("workload").begin_object();
  w.kv("n", std::uint64_t{2048});
  w.kv("k", std::uint64_t{8});
  w.kv("d", std::uint64_t{6});
  w.kv("cgs", static_cast<std::uint64_t>(machine.num_cgs()));
  w.end_object();
  w.kv("fault", "crash rank 1, update phase, iteration 5");
  w.kv("checkpoint_every", std::uint64_t{4});
  w.kv("report", "report_faults.json");
  w.key("levels").begin_array();
  bool all_identical = true;
  bool all_postmortems = true;
  for (std::size_t li = 0; li < 3; ++li) {
    const core::Level level = kLevels[li];
    const FaultCell cell = run_fault_cell(level, ds, machine);
    all_identical = all_identical && cell.identical;
    all_postmortems = all_postmortems && cell.postmortem_complete;
    table.new_row()
        .add(core::level_name(level))
        .add(cell.clean_wall_s, 6)
        .add(cell.faulted_wall_s, 6)
        .add(cell.report.recover_wall_s, 6)
        .add(static_cast<std::uint64_t>(cell.report.retries))
        .add(cell.report.resumed_from_checkpoint ? "yes" : "no")
        .add(static_cast<std::uint64_t>(cell.postmortem_ranks))
        .add(cell.identical ? "yes" : "NO");
    w.begin_object();
    w.kv("level", static_cast<std::int64_t>(level));
    w.kv("clean_wall_s", cell.clean_wall_s);
    w.kv("faulted_wall_s", cell.faulted_wall_s);
    w.kv("time_to_recover_s", cell.report.recover_wall_s);
    w.kv("faults", static_cast<std::uint64_t>(cell.report.faults));
    w.kv("retries", static_cast<std::uint64_t>(cell.report.retries));
    w.kv("replans", static_cast<std::uint64_t>(cell.report.replans));
    w.kv("resumed_from_checkpoint", cell.report.resumed_from_checkpoint);
    w.kv("final_cgs", static_cast<std::uint64_t>(cell.report.final_cgs));
    w.kv("postmortem_ranks",
         static_cast<std::uint64_t>(cell.postmortem_ranks));
    w.kv("postmortem_complete", cell.postmortem_complete);
    w.kv("bit_identical_to_clean_run", cell.identical);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  json << "\n";
  bench::emit(table, "wallclock_faults");
  std::printf("(json: BENCH_faults.json, report_faults.json)\n");
  if (!all_identical) {
    std::fprintf(stderr,
                 "FATAL: a recovered run diverged from its clean run\n");
    return 1;
  }
  if (!all_postmortems) {
    std::fprintf(stderr,
                 "FATAL: a fault left an incomplete flight-recorder "
                 "postmortem (missing ranks or empty rings)\n");
    return 1;
  }
  return 0;
}

/// The SDC-defense drill matrix (see the file comment, `--sdc`). One cell
/// aggregates every drill: injections scheduled vs detections raised, the
/// recovery shape (localized in-memory retries vs checkpoint rollbacks),
/// bit-identity of every drilled run against the clean defense-off run, and
/// the modeled cost of arming the defense on a corruption-free run.
struct SdcCell {
  struct PerLevel {
    core::Level level = core::Level::kLevel1;
    std::size_t injections = 0;
    std::size_t detected = 0;
    std::size_t localized_retries = 0;
    std::size_t rollbacks = 0;
    std::uint64_t abft_recomputed = 0;  ///< GEMM panels repaired in place
    bool bit_identical = true;
    double clean_max_abs_diff = 0;  ///< defense-on vs off, no faults
  };
  std::vector<PerLevel> levels;
  std::size_t injections = 0;
  std::size_t detected = 0;
  double detection_rate = 0;
  std::size_t localized_retries = 0;
  std::size_t rollbacks = 0;  ///< checkpoint rollbacks across drills (want 0)
  std::uint64_t abft_recomputed = 0;
  std::uint64_t transient_crc_fails = 0;
  std::uint64_t transient_retransmits = 0;
  bool persistent_escalated = false;  ///< CorruptMessageError was raised
  bool all_bit_identical = true;
  double clean_max_abs_diff = 0;  ///< max over levels (want exactly 0.0)
  double modeled_off_s = 0;       ///< Level 3 clean modeled time, defense off
  double modeled_on_s = 0;        ///< ... and with sdc_checks armed
  double overhead_frac = 0;       ///< modeled cost of the armed defense
};

SdcCell run_sdc_cell() {
  const data::Dataset ds = data::make_blobs(2048, 6, 10, 4242);
  const simarch::MachineConfig machine =
      simarch::MachineConfig::tiny(2, 4, 8192);
  core::KmeansConfig base;
  base.k = 8;
  base.max_iterations = 10;
  base.tolerance = -1;  // fixed-iteration run: every variant does 10 rounds
  base.init = core::InitMethod::kFirstK;
  base.checkpoint_every = 4;
  // Ungated, so every iteration builds GEMM panels and the tile-scratch
  // flip always has a panel to land in on every level.
  base.gate_assign = false;
  // An exponent-bit flip: high-magnitude corruption that every detector is
  // guaranteed to see. (Sub-tolerance mantissa flips can be legitimately
  // absorbed by the ABFT tau margin — see DESIGN.md §13.)
  constexpr std::uint64_t kMask = 1ull << 62;
  // Global iteration 5 sits inside the second checkpoint leg (cadence 4),
  // so a localized retry — not a rollback — is the expected recovery.
  constexpr std::uint64_t kFlipIter = 5;
  const std::size_t sums_bytes = base.k * ds.d() * sizeof(double);

  SdcCell cell;
  const auto identical = [&](const core::KmeansResult& a,
                             const core::KmeansResult& b) {
    return a.iterations == b.iterations && a.assignments == b.assignments &&
           std::memcmp(a.centroids.data(), b.centroids.data(),
                       base.k * ds.d() * sizeof(float)) == 0;
  };
  // One drill under the RecoveryDriver: the armed flip must be detected
  // (driver classifies the fault as SDC) and recovered by re-running the
  // leg from the in-memory centroids — no checkpoint reload.
  const auto driver_drill = [&](core::Level level, swmpi::FaultPlan& plan,
                                const core::KmeansResult& ref,
                                SdcCell::PerLevel& out) {
    core::KmeansConfig config = base;
    config.sdc_checks = true;
    config.fault_plan = &plan;
    core::RecoveryOptions options;
    options.checkpoint_path = "BENCH_sdc.ckpt";
    core::RecoveryDriver driver(machine, options);
    const core::KmeansResult got = driver.run(level, ds, config);
    const core::RecoveryReport& rep = driver.report();
    out.injections += 1;
    if (rep.sdc_detections > 0) {
      out.detected += 1;
    }
    out.localized_retries += rep.localized_retries;
    out.rollbacks += rep.retries;
    out.bit_identical = out.bit_identical && !rep.resumed_from_checkpoint &&
                        identical(ref, got);
    std::remove(options.checkpoint_path.c_str());
  };

  constexpr core::Level kLevels[] = {core::Level::kLevel1,
                                     core::Level::kLevel2,
                                     core::Level::kLevel3};
  for (const core::Level level : kLevels) {
    SdcCell::PerLevel out;
    out.level = level;
    // Defense-off reference: the bits every drill must reproduce.
    const core::KmeansResult ref =
        core::HierarchicalKmeans(machine).fit_level(level, ds, base);
    // Corruption-free defense-on run: arming the detectors must not move a
    // single bit, and its modeled cost is the price of the defense.
    core::KmeansConfig armed_config = base;
    armed_config.sdc_checks = true;
    const core::KmeansResult armed =
        core::HierarchicalKmeans(machine).fit_level(level, ds, armed_config);
    out.clean_max_abs_diff =
        core::centroid_max_abs_diff(ref.centroids, armed.centroids);
    out.bit_identical = identical(ref, armed) && out.clean_max_abs_diff == 0.0;
    if (level == core::Level::kLevel3) {
      cell.modeled_off_s = ref.cost.total_s();
      cell.modeled_on_s = armed.cost.total_s();
    }

    // Snapshot flip -> the post-barrier CRC scrub catches it.
    {
      swmpi::FaultPlan plan;
      plan.flip_memory(0, kFlipIter, swmpi::MemorySite::kSnapshot, 0, kMask);
      driver_drill(level, plan, ref, out);
    }
    // Accumulator sums flip -> the pre-reduce accumulator CRC catches it.
    {
      swmpi::FaultPlan plan;
      plan.flip_memory(1, kFlipIter, swmpi::MemorySite::kUpdateAccum, 0,
                       kMask);
      driver_drill(level, plan, ref, out);
    }
    // Accumulator counts flip (offset past the sums array) -> the counts
    // CRC deliberately excludes it; the global counts-conservation guard
    // (sum == n) in reduce_and_update catches it instead.
    {
      swmpi::FaultPlan plan;
      plan.flip_memory(1, kFlipIter, swmpi::MemorySite::kUpdateAccum,
                       sums_bytes, kMask);
      driver_drill(level, plan, ref, out);
    }
    // Tile-scratch flip -> ABFT checksum columns detect it and repair the
    // panel in place by recompute; no throw, no driver needed, and the run
    // still lands on the reference bits.
    {
      swmpi::FaultPlan plan;
      plan.flip_memory(0, kFlipIter, swmpi::MemorySite::kTileScratch, 0,
                       kMask);
      core::KmeansConfig faulty = base;
      faulty.sdc_checks = true;
      faulty.fault_plan = &plan;
      const core::KmeansResult got =
          core::HierarchicalKmeans(machine).fit_level(level, ds, faulty);
      std::uint64_t recomputed = 0;
      for (const auto& it : got.history) {
        recomputed += it.sdc_recomputed;
      }
      out.injections += 1;
      if (recomputed > 0) {
        out.detected += 1;
      }
      out.abft_recomputed += recomputed;
      out.bit_identical = out.bit_identical && identical(ref, got);
    }

    cell.injections += out.injections;
    cell.detected += out.detected;
    cell.localized_retries += out.localized_retries;
    cell.rollbacks += out.rollbacks;
    cell.abft_recomputed += out.abft_recomputed;
    cell.all_bit_identical = cell.all_bit_identical && out.bit_identical;
    cell.clean_max_abs_diff =
        std::max(cell.clean_max_abs_diff, out.clean_max_abs_diff);
    cell.levels.push_back(out);
  }

  // Transport drills. Engine traffic includes zero-byte barrier tokens,
  // which genuinely cannot carry corruption (an empty CRC body stays
  // valid), so the wire drills target payload-bearing collective sends
  // where an armed corruption always lands on real bytes.
  const auto collective_run = [&](swmpi::FaultPlan* plan,
                                  telemetry::MetricsRegistry* reg) {
    std::vector<double> out(4, 0);
    swmpi::run_spmd(
        4,
        [&](swmpi::Comm& comm) {
          std::vector<double> v(8);
          for (int round = 0; round < 4; ++round) {
            for (std::size_t j = 0; j < v.size(); ++j) {
              v[j] = static_cast<double>(comm.rank() + 1) * (round + 1) +
                     static_cast<double>(j);
            }
            swmpi::allreduce_sum(comm, std::span<double>(v));
          }
          if (comm.rank() == 0) {
            std::copy(v.begin(), v.begin() + 4, out.begin());
          }
        },
        plan, reg);
    return out;
  };
  const std::vector<double> clean_collective = collective_run(nullptr, nullptr);
  // Transient wire corruption: the frame CRC fails on the receiver, the
  // NACK/resend handshake fetches the retained clean copy, and the run
  // completes on the clean values — detection with silent healing.
  {
    swmpi::FaultPlan plan;
    plan.corrupt_send(/*rank=*/1, /*nth_send=*/2, kMask, /*offset=*/0,
                      /*persistent=*/false);
    telemetry::MetricsRegistry reg;
    const std::vector<double> got = collective_run(&plan, &reg);
    const telemetry::MetricsSnapshot snap = reg.merged();
    cell.transient_crc_fails = snap.counter_or_zero("swmpi.recv.crc_fail");
    cell.transient_retransmits = snap.counter_or_zero("swmpi.send.retransmit");
    cell.injections += 1;
    if (cell.transient_crc_fails > 0 && got == clean_collective) {
      cell.detected += 1;
    }
    cell.all_bit_identical =
        cell.all_bit_identical && got == clean_collective;
  }
  // Persistent corruption (a bad source buffer): every resend is equally
  // corrupt, so after the bounded retransmit budget the transport escalates
  // with sender/sequence attribution instead of recovering silently.
  {
    swmpi::FaultPlan plan;
    plan.corrupt_send(/*rank=*/1, /*nth_send=*/2, kMask, /*offset=*/0,
                      /*persistent=*/true);
    cell.injections += 1;
    try {
      (void)collective_run(&plan, nullptr);
    } catch (const CorruptMessageError&) {
      cell.persistent_escalated = true;
      cell.detected += 1;
    }
  }

  cell.detection_rate =
      cell.injections == 0
          ? 0.0
          : static_cast<double>(cell.detected) /
                static_cast<double>(cell.injections);
  cell.overhead_frac = cell.modeled_off_s > 0
                           ? cell.modeled_on_s / cell.modeled_off_s - 1.0
                           : 0.0;
  return cell;
}

void emit_sdc(const SdcCell& s, util::JsonWriter& w) {
  w.key("sdc").begin_object();
  w.kv("injections", static_cast<std::uint64_t>(s.injections));
  w.kv("detected", static_cast<std::uint64_t>(s.detected));
  w.kv("detection_rate", s.detection_rate);
  w.kv("localized_retries", static_cast<std::uint64_t>(s.localized_retries));
  w.kv("checkpoint_rollbacks", static_cast<std::uint64_t>(s.rollbacks));
  w.kv("abft_recomputed_panels", s.abft_recomputed);
  w.kv("transient_crc_fails", s.transient_crc_fails);
  w.kv("transient_retransmits", s.transient_retransmits);
  w.kv("persistent_escalated", s.persistent_escalated);
  w.kv("all_bit_identical_to_defense_off", s.all_bit_identical);
  w.kv("clean_centroid_max_abs_diff", s.clean_max_abs_diff);
  w.kv("modeled_defense_off_s", s.modeled_off_s);
  w.kv("modeled_defense_on_s", s.modeled_on_s);
  w.kv("modeled_overhead_frac", s.overhead_frac);
  w.key("levels").begin_array();
  for (const auto& pl : s.levels) {
    w.begin_object();
    w.kv("level", std::string_view(core::level_name(pl.level)));
    w.kv("injections", static_cast<std::uint64_t>(pl.injections));
    w.kv("detected", static_cast<std::uint64_t>(pl.detected));
    w.kv("localized_retries",
         static_cast<std::uint64_t>(pl.localized_retries));
    w.kv("checkpoint_rollbacks", static_cast<std::uint64_t>(pl.rollbacks));
    w.kv("abft_recomputed_panels", pl.abft_recomputed);
    w.kv("bit_identical_to_defense_off", pl.bit_identical);
    w.kv("clean_centroid_max_abs_diff", pl.clean_max_abs_diff);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

int check_sdc_cell(const SdcCell& s) {
  if (s.detection_rate != 1.0) {
    std::fprintf(stderr,
                 "FATAL: an injected corruption went undetected (%zu/%zu "
                 "drills caught)\n",
                 s.detected, s.injections);
    return 1;
  }
  if (s.rollbacks != 0) {
    std::fprintf(stderr,
                 "FATAL: SDC drills burned %zu checkpoint rollback(s) — "
                 "detection should recover with a localized in-memory "
                 "retry\n",
                 s.rollbacks);
    return 1;
  }
  if (s.localized_retries == 0) {
    std::fprintf(stderr,
                 "FATAL: no drill engaged the localized recovery path\n");
    return 1;
  }
  if (!s.all_bit_identical) {
    std::fprintf(stderr,
                 "FATAL: a drilled run diverged from the clean defense-off "
                 "run\n");
    return 1;
  }
  if (s.clean_max_abs_diff != 0.0) {
    std::fprintf(stderr,
                 "FATAL: arming the defense moved a corruption-free run "
                 "(centroid_max_abs_diff %.17g)\n",
                 s.clean_max_abs_diff);
    return 1;
  }
  if (!(s.overhead_frac > 0.0 && s.overhead_frac < 0.15)) {
    // Zero means the scrub/ABFT charges stopped landing in the cost model;
    // above the bound means the defense got too expensive to always arm.
    std::fprintf(stderr,
                 "FATAL: modeled defense overhead %.4f out of bounds "
                 "(need 0 < frac < 0.15)\n",
                 s.overhead_frac);
    return 1;
  }
  return 0;
}

int run_sdc() {
  bench::banner("wallclock_engines --sdc",
                "CI-sized SDC-defense drill matrix: deterministic bit flips "
                "and wire corruption vs the layered detectors "
                "(n=2048, k=8, d=6)");
  const SdcCell cell = run_sdc_cell();
  util::Table table({"cell", "injections", "detected", "localized_retries",
                     "rollbacks", "bit_identical"});
  for (const auto& pl : cell.levels) {
    table.new_row()
        .add(core::level_name(pl.level))
        .add(static_cast<std::uint64_t>(pl.injections))
        .add(static_cast<std::uint64_t>(pl.detected))
        .add(static_cast<std::uint64_t>(pl.localized_retries))
        .add(static_cast<std::uint64_t>(pl.rollbacks))
        .add(pl.bit_identical ? "yes" : "NO");
  }
  table.new_row()
      .add("transport")
      .add(std::uint64_t{2})
      .add(static_cast<std::uint64_t>(
          (cell.transient_crc_fails > 0 ? 1 : 0) +
          (cell.persistent_escalated ? 1 : 0)))
      .add(std::uint64_t{0})
      .add(std::uint64_t{0})
      .add("yes");
  {
    std::ofstream json("BENCH_sdc.json");
    util::JsonWriter w(json);
    w.begin_object();
    bench::emit_run_metadata(w);
    w.key("workload").begin_object();
    w.kv("n", std::uint64_t{2048});
    w.kv("k", std::uint64_t{8});
    w.kv("d", std::uint64_t{6});
    w.end_object();
    emit_sdc(cell, w);
    w.end_object();
    json << "\n";
  }
  bench::emit(table, "wallclock_sdc");
  std::printf("sdc detection: %zu/%zu (rate %.2f), localized retries %zu, "
              "rollbacks %zu, abft-repaired panels %llu, modeled defense "
              "overhead %.2f%%\n",
              cell.detected, cell.injections, cell.detection_rate,
              cell.localized_retries, cell.rollbacks,
              static_cast<unsigned long long>(cell.abft_recomputed),
              cell.overhead_frac * 100.0);
  std::printf("(json: BENCH_sdc.json)\n");
  return check_sdc_cell(cell);
}

/// A/B telemetry cell: the same Level 3 run with the telemetry session off
/// and on (metrics + wall spans + simulated trace), best-of-3 wall clock
/// each way. On the instrumented side the final repetition's session is
/// exported as the observability artifact pair (trace.json, report.json).
struct TelemetryCell {
  double plain_s = 0;
  double instrumented_s = 0;
  double overhead_frac = 0;
  bool identical = false;   ///< results bit-identical, telemetry on vs off
  bool reconciled = false;  ///< report metrics agree with iteration history
  bool flight_identical = false;  ///< flight recorder on vs off, same session
  /// Cross-check of the two independent timing paths: per iteration,
  /// max |Σ critical-path phase attributions − history simulated_s| and
  /// |Σ attributions − critical_s|. Exact-zero by construction (same
  /// doubles, same max, same sum order); gated at 1e-9.
  double attribution_max_abs_err = 0;
  telemetry::CriticalPathReport critical_path;
};

TelemetryCell run_telemetry_cell() {
  // Big enough that compute dominates thread spawn and clock reads — the
  // overhead fraction means something; still well under a second for CI.
  const data::Dataset ds = data::make_blobs(8192, 64, 40, 515);
  const simarch::MachineConfig machine =
      simarch::MachineConfig::tiny(2, 4, 8192);
  core::KmeansConfig config;
  config.k = 64;
  config.max_iterations = 10;
  config.tolerance = -1;
  config.init = core::InitMethod::kFirstK;
  // Best-of-5 per side: the minimum of a handful of interleaved runs is
  // the scheduler-noise-free estimate on a shared CI host.
  constexpr int kReps = 5;

  TelemetryCell cell;
  (void)core::run_level(core::Level::kLevel3, ds, config, machine);  // warm-up
  core::KmeansResult plain;
  // Interleave the A and B repetitions so cache/thermal drift over the
  // measurement hits both sides equally; keep the best of each.
  for (int rep = 0; rep < kReps; ++rep) {
    util::Stopwatch plain_clock;
    core::KmeansResult r =
        core::run_level(core::Level::kLevel3, ds, config, machine);
    const double plain_s = plain_clock.seconds();
    if (rep == 0 || plain_s < cell.plain_s) {
      cell.plain_s = plain_s;
    }
    plain = std::move(r);

    telemetry::Telemetry session;
    simarch::Trace trace;
    core::KmeansConfig instrumented_config = config;
    instrumented_config.telemetry = &session;
    instrumented_config.trace = &trace;
    util::Stopwatch clock;
    const core::KmeansResult instrumented = core::run_level(
        core::Level::kLevel3, ds, instrumented_config, machine);
    const double s = clock.seconds();
    if (rep == 0 || s < cell.instrumented_s) {
      cell.instrumented_s = s;
    }
    if (rep + 1 < kReps) {
      continue;
    }
    // Last repetition: check identity and export the artifacts.
    cell.identical =
        plain.iterations == instrumented.iterations &&
        plain.assignments == instrumented.assignments &&
        std::memcmp(plain.centroids.data(), instrumented.centroids.data(),
                    plain.centroids.size() * sizeof(float)) == 0;

    // Flight-recorder-specific identity: the plain side above has no
    // telemetry at all; this run keeps the session but disarms only the
    // rings, so a recorder-induced divergence can't hide behind the
    // coarser on/off check.
    {
      telemetry::TelemetryConfig no_flight;
      no_flight.flight = false;
      telemetry::Telemetry off_session(no_flight);
      core::KmeansConfig off_config = config;
      off_config.telemetry = &off_session;
      const core::KmeansResult off = core::run_level(
          core::Level::kLevel3, ds, off_config, machine);
      cell.flight_identical =
          off.iterations == instrumented.iterations &&
          off.assignments == instrumented.assignments &&
          std::memcmp(off.centroids.data(), instrumented.centroids.data(),
                      off.centroids.size() * sizeof(float)) == 0;
    }

    // Critical-path attribution over the instrumented run's trace, plus
    // the acceptance cross-check: each iteration's phase attributions must
    // sum to both the analyzer's critical_s and the engine-recorded
    // simulated_s (two independent code paths to the same number).
    cell.critical_path = telemetry::analyze_critical_path(trace);
    const auto& cp_iters = cell.critical_path.iterations;
    for (std::size_t i = 0;
         i < cp_iters.size() && i < instrumented.history.size(); ++i) {
      double phase_sum = 0;
      for (std::size_t p = 0; p < simarch::kPhaseCount; ++p) {
        phase_sum += cp_iters[i].phase_s[p];
      }
      const double vs_history =
          std::fabs(phase_sum - instrumented.history[i].simulated_s);
      const double vs_critical = std::fabs(phase_sum - cp_iters[i].critical_s);
      cell.attribution_max_abs_err = std::max(
          {cell.attribution_max_abs_err, vs_history, vs_critical});
    }

    telemetry::RunReport report;
    report.run_id = "smoke-level3";
    report.shape = core::ProblemShape{ds.n(), config.k, ds.d()};
    report.level = core::Level::kLevel3;
    report.config = config;
    report.machine_summary = machine.summary();
    if (const auto choice = core::best_plan_for_level(
            core::Level::kLevel3, report.shape, machine)) {
      report.plan_summary = choice->plan.describe();
    }
    report.set_result(instrumented);
    report.metrics = session.metrics().merged();
    report.has_critical_path = true;
    report.critical_path = cell.critical_path;
    cell.reconciled = telemetry::reconciles(report);

    std::ofstream report_out("report.json");
    report.write_json(report_out);
    std::ofstream trace_out("trace.json");
    telemetry::write_chrome_trace(trace_out, &trace, &session.spans(), {},
                                  &cell.critical_path);
  }
  cell.overhead_frac =
      cell.plain_s > 0 ? (cell.instrumented_s - cell.plain_s) / cell.plain_s
                       : 0;
  return cell;
}

/// A/B mailbox cell: the same Level 3 run two ways — the legacy
/// mutex/condvar mailboxes with the strictly sequential tile loop vs the
/// lock-free SPSC rings with the double-buffered tile pipeline.
///
/// The headline number is the modeled iteration clock (the paper's
/// metric): what share of `last_iteration_cost.total_s()` the ranks spend
/// in per-tile combine traffic (`net_comm_s`). The shape forces a sliced
/// plan (m'_group = 4) so every tile's MinLoc2 combine is a real 4-way
/// allreduce; the pipeline issues tile t's combine under tile t+1's
/// distance sweep, so the ring side's modeled stall share must drop well
/// below the strictly sequential mutex side's. Deterministic — the model
/// does not see host scheduling.
///
/// Host-observed stall (Σ swmpi.recv.stall_s across ranks / aggregate
/// rank-seconds, i.e. elapsed wall seconds x rank count, best of N) rides
/// along as a secondary signal. The stall sum spans every rank thread, so
/// dividing by one host wall clock would let the share exceed 1.0 whenever
/// more than one rank blocks at once; rank-seconds is the denominator that
/// makes it a true utilisation fraction. On shared or single-core CI hosts
/// the rank threads oversubscribe the machine and every blocking
/// collective waits on the scheduler regardless of the transport, so the
/// host numbers are informational only — same caveat as the other
/// wall-clock cells. Both runs must stay bit-identical.
struct MailboxCell {
  double mutex_stall_share = 0;  ///< modeled net share, sequential mutex side
  double ring_stall_share = 0;   ///< modeled net share, pipelined ring side
  double improvement = 0;        ///< mutex share / ring share
  double host_mutex_stall_share = 0;
  double host_ring_stall_share = 0;
  bool identical = false;
};

MailboxCell run_mailbox_cell() {
  // High-d shape on purpose: the MinLoc2 combine carries 24 bytes per
  // sample regardless of d, while the sweep compute window that hides it
  // grows with d*k — so the overlap's effect on the modeled iteration
  // clock is visible instead of being rounded away by update-phase
  // traffic.
  const data::Dataset ds = data::make_blobs(4096, 256, 8, 515);
  const simarch::MachineConfig machine =
      simarch::MachineConfig::tiny(2, 4, 8192);
  constexpr std::size_t kMprimeGroup = 4;
  core::KmeansConfig config;
  config.k = 96;
  config.max_iterations = 6;
  config.tolerance = -1;
  config.init = core::InitMethod::kFirstK;
  config.gate_assign = false;
  // Pin the chain kernel: this cell isolates mailbox transport + tile
  // pipelining, so the sweep that hides the combine must stay the one the
  // ring/pipeline baseline was calibrated against. The GEMM sweep is ~4x
  // faster, which (correctly) shrinks the overlap window and the stall
  // share contrast — that trade-off is the gemm_assign cell's story.
  config.gemm_assign = false;
  // Small tiles so each rank runs a deep tile pipeline (64 tiles) rather
  // than a handful of wide ones.
  config.tile_samples = 64;
  constexpr int kReps = 2;

  struct Side {
    swmpi::MailboxMode mode = swmpi::MailboxMode::kSpscRings;
    bool pipeline = true;
    double stall_share = 0;
    double host_stall_share = 0;
    core::KmeansResult result;
  };
  Side mutex_side;
  mutex_side.mode = swmpi::MailboxMode::kMutexQueue;
  mutex_side.pipeline = false;
  Side ring_side;

  for (Side* side : {&mutex_side, &ring_side}) {
    swmpi::set_default_mailbox_mode(side->mode);
    config.pipeline_tiles = side->pipeline;
    // Best-of-N host share: the minimum is the scheduler-noise-free
    // estimate of how much stall is structural rather than preemption.
    for (int rep = 0; rep < kReps; ++rep) {
      telemetry::Telemetry session;
      core::KmeansConfig run_config = config;
      run_config.telemetry = &session;
      util::Stopwatch clock;
      core::KmeansResult r = core::run_level(core::Level::kLevel3, ds,
                                             run_config, machine, 0,
                                             kMprimeGroup);
      const double wall_s = clock.seconds();
      const auto snap = session.metrics().merged();
      double stall_s = 0;
      if (const auto it = snap.histograms.find("swmpi.recv.stall_s");
          it != snap.histograms.end()) {
        stall_s = it->second.sum;
      }
      // Aggregate rank-seconds denominator: stall_s sums over all rank
      // threads, so the share is per-rank-time, not per-wall-time.
      const double rank_seconds =
          wall_s * static_cast<double>(machine.num_cgs());
      double share = rank_seconds > 0 ? stall_s / rank_seconds : 0;
      if (share > 1.0) {
        std::cerr << "wallclock_engines: host stall share " << share
                  << " > 1.0 (scheduler preemption inflated the stall "
                     "clocks); clamping\n";
        share = 1.0;
      }
      if (rep == 0 || share < side->host_stall_share) {
        side->host_stall_share = share;
      }
      const simarch::CostTally& cost = r.last_iteration_cost;
      side->stall_share =
          cost.total_s() > 0 ? cost.net_comm_s / cost.total_s() : 0;
      side->result = std::move(r);
    }
  }
  swmpi::set_default_mailbox_mode(swmpi::MailboxMode::kSpscRings);
  config.pipeline_tiles = true;

  MailboxCell cell;
  cell.mutex_stall_share = mutex_side.stall_share;
  cell.ring_stall_share = ring_side.stall_share;
  cell.host_mutex_stall_share = mutex_side.host_stall_share;
  cell.host_ring_stall_share = ring_side.host_stall_share;
  // Floor the denominator: a fully-hidden combine models zero net stall.
  cell.improvement =
      mutex_side.stall_share / std::max(ring_side.stall_share, 1e-12);
  cell.identical =
      mutex_side.result.iterations == ring_side.result.iterations &&
      mutex_side.result.assignments == ring_side.result.assignments &&
      std::memcmp(mutex_side.result.centroids.data(),
                  ring_side.result.centroids.data(),
                  mutex_side.result.centroids.size() * sizeof(float)) == 0;
  return cell;
}

/// GEMM + s-step cell (modeled, deterministic): the Level 3 engine on the
/// simulated machine, compared along the two axes this kernel moves.
///
///   FLOP rate — the same fixed-iteration ungated run with the
///     GEMM-formulated sweep vs the multi-chain kernel: modeled
///     assign-phase flops per modeled compute second. The flop *count* is
///     identical (the GEMM path adds only the small norm-cache refresh);
///     the sustained-efficiency and per-row-overhead parameters move, so
///     the rate must improve.
///   Collective rounds — the same ungated run at sstep_tiles 1 vs 4. Every
///     span launches on an ungated fixed-iteration run, so the
///     assign-phase round count (net_rounds minus the two update-phase
///     rounds per iteration) must drop by exactly the fold factor.
///
/// Bit-identity rides along: GEMM engine runs (gated and ungated, s-step
/// on) to convergence vs serial Lloyd, with the centroid max-abs-diff
/// required to be exactly 0.0.
struct GemmCell {
  double gemm_flop_rate = 0;   ///< modeled flops / modeled compute_s
  double chain_flop_rate = 0;
  double flop_rate_gain = 0;
  std::uint64_t assign_rounds_s1 = 0;
  std::uint64_t assign_rounds_s4 = 0;
  double round_cut = 0;             ///< s1 rounds / s4 rounds
  double centroid_max_abs_diff = 0;
  bool identical = false;
};

GemmCell run_gemm_cell() {
  const data::Dataset ds = data::make_blobs(2048, 16, 12, 616);
  const simarch::MachineConfig machine =
      simarch::MachineConfig::tiny(2, 4, 8192);
  // Force the 4-way sliced plan so every span's combine is a real
  // group-wide collective with countable rounds.
  constexpr std::size_t kMprime = 4;
  core::KmeansConfig config;
  config.k = 24;
  config.max_iterations = 6;
  config.tolerance = -1;  // fixed-iteration: round counts compare cleanly
  config.init = core::InitMethod::kFirstK;
  // Ungated so every span launches its combine — the round ratio is then
  // the pure s-step factor, not a function of which tiles happened to be
  // fully pruned at each fold width.
  config.gate_assign = false;
  config.tile_samples = 64;

  GemmCell cell;
  core::KmeansConfig s1 = config;
  s1.sstep_tiles = 1;
  const core::KmeansResult r1 =
      core::run_level(core::Level::kLevel3, ds, s1, machine, 0, kMprime);
  core::KmeansConfig s4 = config;
  s4.sstep_tiles = 4;
  const core::KmeansResult r4 =
      core::run_level(core::Level::kLevel3, ds, s4, machine, 0, kMprime);
  core::KmeansConfig chain = config;
  chain.gemm_assign = false;
  const core::KmeansResult rc =
      core::run_level(core::Level::kLevel3, ds, chain, machine, 0, kMprime);

  const auto assign_rounds = [](const core::KmeansResult& r) {
    // Each iteration charges exactly two update-phase rounds
    // (reduce_scatter + allgather); the rest are assign combines.
    return r.cost.net_rounds - 2 * static_cast<std::uint64_t>(r.iterations);
  };
  cell.assign_rounds_s1 = assign_rounds(r1);
  cell.assign_rounds_s4 = assign_rounds(r4);
  cell.round_cut = cell.assign_rounds_s4 > 0
                       ? static_cast<double>(cell.assign_rounds_s1) /
                             static_cast<double>(cell.assign_rounds_s4)
                       : 0;
  cell.gemm_flop_rate =
      r1.cost.compute_s > 0
          ? static_cast<double>(r1.cost.flops) / r1.cost.compute_s
          : 0;
  cell.chain_flop_rate =
      rc.cost.compute_s > 0
          ? static_cast<double>(rc.cost.flops) / rc.cost.compute_s
          : 0;
  cell.flop_rate_gain = cell.chain_flop_rate > 0
                            ? cell.gemm_flop_rate / cell.chain_flop_rate
                            : 0;

  // Bit-identity to convergence, s-step engaged both gated and ungated.
  core::KmeansConfig conv = config;
  conv.max_iterations = 30;
  conv.tolerance = 0;
  conv.sstep_tiles = 2;
  const core::KmeansResult ungated =
      core::run_level(core::Level::kLevel3, ds, conv, machine, 0, kMprime);
  conv.gate_assign = true;
  const core::KmeansResult gated =
      core::run_level(core::Level::kLevel3, ds, conv, machine, 0, kMprime);
  const core::KmeansResult serial = core::lloyd_serial(ds, conv);
  double max_diff = 0;
  for (std::size_t i = 0; i < serial.centroids.size(); ++i) {
    max_diff = std::max(
        max_diff, std::abs(static_cast<double>(gated.centroids.data()[i]) -
                           static_cast<double>(serial.centroids.data()[i])));
    max_diff = std::max(
        max_diff, std::abs(static_cast<double>(ungated.centroids.data()[i]) -
                           static_cast<double>(serial.centroids.data()[i])));
  }
  cell.centroid_max_abs_diff = max_diff;
  cell.identical = gated.iterations == serial.iterations &&
                   ungated.iterations == serial.iterations &&
                   gated.assignments == serial.assignments &&
                   ungated.assignments == serial.assignments &&
                   max_diff == 0.0;
  return cell;
}

void emit_gemm(const GemmCell& c, util::JsonWriter& w) {
  w.key("gemm_assign").begin_object();
  w.kv("modeled_flop_rate_gemm", c.gemm_flop_rate);
  w.kv("modeled_flop_rate_multichain", c.chain_flop_rate);
  w.kv("flop_rate_gain", c.flop_rate_gain);
  w.kv("assign_rounds_sstep1", c.assign_rounds_s1);
  w.kv("assign_rounds_sstep4", c.assign_rounds_s4);
  w.kv("round_cut", c.round_cut);
  w.kv("centroid_max_abs_diff", c.centroid_max_abs_diff);
  w.kv("bit_identical_to_serial_lloyd", c.identical);
  w.end_object();
  std::printf("gemm assign: modeled flop rate %.3g vs %.3g flop/s (%.2fx), "
              "assign rounds %llu -> %llu at sstep=4 (%.1fx cut), "
              "centroid_max_abs_diff %g, bit-identical: %s\n",
              c.gemm_flop_rate, c.chain_flop_rate, c.flop_rate_gain,
              static_cast<unsigned long long>(c.assign_rounds_s1),
              static_cast<unsigned long long>(c.assign_rounds_s4),
              c.round_cut, c.centroid_max_abs_diff,
              c.identical ? "yes" : "NO");
}

/// Shared modeled-quantity gate for run() and run_smoke(): the GEMM cell
/// is fully deterministic, so any miss is a real kernel / cost-model /
/// s-step regression, never bench noise.
int check_gemm_cell(const GemmCell& gemm) {
  if (!gemm.identical) {
    std::fprintf(stderr,
                 "FATAL: gemm assign diverged from serial Lloyd "
                 "(centroid_max_abs_diff=%g)\n",
                 gemm.centroid_max_abs_diff);
    return 1;
  }
  if (gemm.round_cut < 4.0) {
    std::fprintf(stderr,
                 "FATAL: s-step deferred reduction cut assign rounds only "
                 "%.2fx at sstep=4 (need >= 4x)\n",
                 gemm.round_cut);
    return 1;
  }
  if (gemm.flop_rate_gain <= 1.0) {
    std::fprintf(stderr,
                 "FATAL: gemm sweep's modeled FLOP rate did not improve "
                 "(%.2fx vs multi-chain)\n",
                 gemm.flop_rate_gain);
    return 1;
  }
  return 0;
}

/// Hierarchical-collective cell (modeled + engine A/B, deterministic).
///
/// Modeled side, at paper scale: the fig7 workload's Level 3 plan on
/// sw26010(512) — two supernodes, so the flat recursive-doubling
/// collectives push every rank's payload through the central switch at
/// the supernode-crossing stages. The same iteration modeled through the
/// two-level schedule must cut the supernode-crossing bytes at least 2x.
/// A crossover table (payload -> chosen inter algorithm + modeled
/// seconds for tree / rs+ag / flat) records where the size-adaptive
/// selection flips.
///
/// Engine side, at test scale: tiny(8, 4, 8192) is 16 CGs over two
/// 8-rank supernode groups, so the runtime schedule really runs its
/// inter-supernode stage (pointer-publish intra fold, leader exchange,
/// fan-out) through every collective of a full Level 3 run — gated, GEMM,
/// s-step spans draining through the hierarchical SplitAllreduce. The
/// run must be bit-identical to the flat-schedule run and to serial
/// Lloyd, and its charged crossing bytes must be nonzero (the inter
/// stage was actually priced).
struct HierCell {
  std::size_t crossover_bytes = 0;      ///< machine-derived threshold
  std::uint64_t flat_crossing = 0;      ///< modeled, per fig7 iteration
  std::uint64_t hier_crossing = 0;
  double crossing_cut = 0;              ///< flat / hier
  struct Row {
    std::size_t payload_bytes = 0;
    const char* algo = "";
    double tree_s = 0;
    double rsag_s = 0;
    double flat_s = 0;
  };
  std::vector<Row> table;
  double hier_net_s = 0;   ///< engine run, modeled collective seconds
  double flat_net_s = 0;
  std::uint64_t engine_crossing = 0;  ///< hier engine run, history sum
  double centroid_max_abs_diff = 0;
  bool identical = false;
};

HierCell run_hier_cell() {
  HierCell cell;

  // --- modeled side: fig7 workload on two supernodes ---
  const simarch::MachineConfig mc512 = simarch::MachineConfig::sw26010(512);
  cell.crossover_bytes = mc512.collective_crossover_bytes();
  const core::ProblemShape shape{1265723, 2000, 196608};
  const core::PartitionPlan plan =
      core::make_plan(core::Level::kLevel3, shape, mc512, 0, 16);
  const simarch::CostTally hier_t = core::model_iteration(
      plan, mc512, core::Placement::kPacked, /*hier_collectives=*/true);
  const simarch::CostTally flat_t = core::model_iteration(
      plan, mc512, core::Placement::kPacked, /*hier_collectives=*/false);
  cell.flat_crossing = flat_t.net_crossing_bytes;
  cell.hier_crossing = hier_t.net_crossing_bytes;
  cell.crossing_cut =
      cell.hier_crossing > 0
          ? static_cast<double>(cell.flat_crossing) /
                static_cast<double>(cell.hier_crossing)
          : 0;

  // Crossover table: what the size-adaptive selection picks per payload,
  // with both inter algorithms priced (crossover 0 forces rs+ag,
  // SIZE_MAX forces the tree) and the flat whole-world charge alongside.
  const simarch::Topology topo(mc512);
  const std::size_t cgs = mc512.num_cgs();
  for (const std::size_t bytes :
       {std::size_t{72}, std::size_t{1} << 10, std::size_t{1} << 14,
        std::size_t{1} << 17, std::size_t{1} << 18, std::size_t{1} << 20,
        std::size_t{1} << 23}) {
    HierCell::Row row;
    row.payload_bytes = bytes;
    const simarch::CollectiveCharge chosen =
        topo.hier_allreduce_charge(bytes, 0, cgs, cell.crossover_bytes);
    row.algo = simarch::to_string(chosen.algo);
    row.tree_s = topo.hier_allreduce_charge(bytes, 0, cgs,
                                            static_cast<std::size_t>(-1))
                     .seconds;
    row.rsag_s = topo.hier_allreduce_charge(bytes, 0, cgs, 0).seconds;
    row.flat_s = topo.allreduce_time(bytes, 0, cgs);
    cell.table.push_back(row);
  }

  // --- engine side: two supernode groups at runtime ---
  const data::Dataset ds = data::make_blobs(2048, 16, 12, 717);
  const simarch::MachineConfig machine =
      simarch::MachineConfig::tiny(8, 4, 8192);  // 16 CGs, 2 supernodes
  constexpr std::size_t kMprime = 4;
  core::KmeansConfig config;
  config.k = 24;
  config.max_iterations = 30;
  config.tolerance = 0;
  config.init = core::InitMethod::kFirstK;
  config.sstep_tiles = 2;  // spans drain through the hier SplitAllreduce
  config.tile_samples = 64;

  config.hier_collectives = true;
  const core::KmeansResult hier_run =
      core::run_level(core::Level::kLevel3, ds, config, machine, 0, kMprime);
  config.hier_collectives = false;
  const core::KmeansResult flat_run =
      core::run_level(core::Level::kLevel3, ds, config, machine, 0, kMprime);
  const core::KmeansResult serial = core::lloyd_serial(ds, config);

  cell.hier_net_s = hier_run.cost.net_comm_s;
  cell.flat_net_s = flat_run.cost.net_comm_s;
  for (const core::IterationStats& it : hier_run.history) {
    cell.engine_crossing += it.net_crossing_bytes;
  }
  double max_diff = 0;
  for (std::size_t i = 0; i < serial.centroids.size(); ++i) {
    max_diff = std::max(
        max_diff, std::abs(static_cast<double>(hier_run.centroids.data()[i]) -
                           static_cast<double>(serial.centroids.data()[i])));
    max_diff = std::max(
        max_diff, std::abs(static_cast<double>(flat_run.centroids.data()[i]) -
                           static_cast<double>(serial.centroids.data()[i])));
  }
  cell.centroid_max_abs_diff = max_diff;
  cell.identical =
      hier_run.iterations == serial.iterations &&
      flat_run.iterations == serial.iterations &&
      hier_run.assignments == serial.assignments &&
      flat_run.assignments == serial.assignments &&
      std::memcmp(hier_run.centroids.data(), flat_run.centroids.data(),
                  hier_run.centroids.size() * sizeof(float)) == 0 &&
      max_diff == 0.0;
  return cell;
}

void emit_hier(const HierCell& c, util::JsonWriter& w) {
  w.key("hier_collectives").begin_object();
  w.kv("crossover_bytes", static_cast<std::uint64_t>(c.crossover_bytes));
  w.kv("fig7_flat_crossing_bytes", c.flat_crossing);
  w.kv("fig7_hier_crossing_bytes", c.hier_crossing);
  w.kv("crossing_cut", c.crossing_cut);
  w.key("crossover_table").begin_array();
  for (const HierCell::Row& row : c.table) {
    w.begin_object();
    w.kv("payload_bytes", static_cast<std::uint64_t>(row.payload_bytes));
    w.kv("algo", row.algo);
    w.kv("tree_s", row.tree_s);
    w.kv("rsag_s", row.rsag_s);
    w.kv("flat_s", row.flat_s);
    w.end_object();
  }
  w.end_array();
  w.kv("engine_hier_net_comm_s", c.hier_net_s);
  w.kv("engine_flat_net_comm_s", c.flat_net_s);
  w.kv("engine_hier_crossing_bytes", c.engine_crossing);
  w.kv("centroid_max_abs_diff", c.centroid_max_abs_diff);
  w.kv("bit_identical_to_flat_and_serial", c.identical);
  w.end_object();
  std::printf(
      "hier collectives: crossover %zu B, fig7 crossing %llu -> %llu B "
      "(%.1fx cut); engine net_comm %.3gs vs flat %.3gs, crossing %llu B, "
      "bit-identical: %s\n",
      c.crossover_bytes, static_cast<unsigned long long>(c.flat_crossing),
      static_cast<unsigned long long>(c.hier_crossing), c.crossing_cut,
      c.hier_net_s, c.flat_net_s,
      static_cast<unsigned long long>(c.engine_crossing),
      c.identical ? "yes" : "NO");
}

/// Shared exit gate: all modeled/bit-identity quantities, deterministic.
int check_hier_cell(const HierCell& c) {
  if (!c.identical) {
    std::fprintf(stderr,
                 "FATAL: hierarchical-collective run diverged from the flat "
                 "schedule / serial Lloyd (centroid_max_abs_diff=%g)\n",
                 c.centroid_max_abs_diff);
    return 1;
  }
  if (c.crossing_cut < 2.0) {
    std::fprintf(stderr,
                 "FATAL: hierarchical schedule cut modeled supernode-crossing "
                 "bytes only %.2fx on the fig7 workload (need >= 2x)\n",
                 c.crossing_cut);
    return 1;
  }
  if (c.engine_crossing == 0) {
    std::fprintf(stderr,
                 "FATAL: engine run on a two-supernode machine charged zero "
                 "supernode-crossing bytes\n");
    return 1;
  }
  return 0;
}

int run_smoke() {
  bench::banner("wallclock_engines --smoke",
                "CI-sized bound-gate check: gated vs ungated assign to "
                "convergence (n=1024, k=16, d=8, 4-CG group)");
  const GatedSection g = run_gated_section(1024, 16, 8, kGroupCgs, 40);
  const TelemetryCell tel = run_telemetry_cell();
  const MailboxCell mbox = run_mailbox_cell();
  const GemmCell gemm = run_gemm_cell();
  const HierCell hier = run_hier_cell();
  const SdcCell sdc = run_sdc_cell();
  {
    std::ofstream json("BENCH_wallclock.json");
    util::JsonWriter w(json);
    w.begin_object();
    w.kv("smoke", true);
    bench::emit_run_metadata(w);
    w.key("workload").begin_object();
    w.kv("n", std::uint64_t{1024});
    w.kv("k", std::uint64_t{16});
    w.kv("d", std::uint64_t{8});
    w.kv("group_cgs", static_cast<std::uint64_t>(kGroupCgs));
    w.end_object();
    emit_gated(g, w);
    emit_sdc(sdc, w);
    w.key("telemetry").begin_object();
    w.kv("plain_s", tel.plain_s);
    w.kv("instrumented_s", tel.instrumented_s);
    w.kv("overhead_frac", tel.overhead_frac);
    w.kv("bit_identical", tel.identical);
    w.kv("metrics_reconcile_with_history", tel.reconciled);
    w.kv("trace", "trace.json");
    w.kv("report", "report.json");
    w.end_object();
    w.key("critical_path").begin_object();
    w.kv("iterations",
         static_cast<std::uint64_t>(tel.critical_path.iterations.size()));
    w.kv("total_critical_s", tel.critical_path.total_critical_s);
    w.kv("total_blame_s", tel.critical_path.total_blame_s);
    w.kv("attribution_max_abs_err", tel.attribution_max_abs_err);
    w.kv("flight_bit_identical", tel.flight_identical);
    w.key("stragglers").begin_array();
    for (const auto& s : tel.critical_path.stragglers) {
      w.begin_object();
      w.kv("cg", static_cast<std::uint64_t>(s.cg));
      w.kv("gated_iterations",
           static_cast<std::uint64_t>(s.gated_iterations));
      w.kv("blame_s", s.blame_s);
      w.kv("share", s.share);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    w.key("mailbox").begin_object();
    w.kv("mutex_stall_share", mbox.mutex_stall_share);
    w.kv("ring_stall_share", mbox.ring_stall_share);
    w.kv("stall_share_improvement", mbox.improvement);
    w.kv("host_observed_mutex_stall_share", mbox.host_mutex_stall_share);
    w.kv("host_observed_ring_stall_share", mbox.host_ring_stall_share);
    w.kv("bit_identical", mbox.identical);
    w.end_object();
    emit_gemm(gemm, w);
    emit_hier(hier, w);
    w.end_object();
    json << "\n";
  }
  std::printf("telemetry overhead: %.2f%% (plain %.6fs, instrumented %.6fs), "
              "bit-identical: %s, metrics reconcile: %s\n",
              tel.overhead_frac * 100.0, tel.plain_s, tel.instrumented_s,
              tel.identical ? "yes" : "NO", tel.reconciled ? "yes" : "NO");
  if (!tel.critical_path.stragglers.empty()) {
    const auto& top = tel.critical_path.stragglers.front();
    std::printf("critical path: %zu iterations, %.6fs critical, top "
                "straggler cg %u (gated %u iters, blame %.6fs = %.1f%% "
                "share), attribution err %.3g, flight on/off identical: %s\n",
                tel.critical_path.iterations.size(),
                tel.critical_path.total_critical_s, top.cg,
                top.gated_iterations, top.blame_s, top.share * 100.0,
                tel.attribution_max_abs_err,
                tel.flight_identical ? "yes" : "NO");
  }
  std::printf("mailbox stall share of modeled iteration: mutex %.2f%%, "
              "rings %.2f%% (%.1fx cut); host-observed: mutex %.2f%%, "
              "rings %.2f%%; bit-identical: %s\n",
              mbox.mutex_stall_share * 100.0, mbox.ring_stall_share * 100.0,
              mbox.improvement, mbox.host_mutex_stall_share * 100.0,
              mbox.host_ring_stall_share * 100.0,
              mbox.identical ? "yes" : "NO");
  std::printf("sdc defense: %zu/%zu injections detected, %zu localized "
              "retries, %zu rollbacks, modeled overhead %.2f%%\n",
              sdc.detected, sdc.injections, sdc.localized_retries,
              sdc.rollbacks, sdc.overhead_frac * 100.0);
  std::printf("(artifacts: BENCH_wallclock.json, trace.json, report.json)\n");
  if (!g.identical) {
    std::fprintf(stderr,
                 "FATAL: gated assign diverged from ungated/serial Lloyd\n");
    return 1;
  }
  if (!mbox.identical) {
    std::fprintf(stderr,
                 "FATAL: mutex-mailbox and ring-mailbox runs diverged\n");
    return 1;
  }
  if (mbox.improvement < 2.0) {
    // The modeled shares are deterministic, so this is a real regression
    // in the tile pipeline or the cost model, not bench noise.
    std::fprintf(stderr,
                 "FATAL: pipelined ring mailbox cut modeled stall share only "
                 "%.2fx (need >= 2x)\n",
                 mbox.improvement);
    return 1;
  }
  if (!tel.identical) {
    std::fprintf(stderr,
                 "FATAL: telemetry changed the result of the run\n");
    return 1;
  }
  if (!tel.reconciled) {
    std::fprintf(stderr,
                 "FATAL: telemetry counters disagree with the iteration "
                 "history\n");
    return 1;
  }
  if (!tel.flight_identical) {
    std::fprintf(stderr,
                 "FATAL: the flight recorder changed the result of the run\n");
    return 1;
  }
  if (tel.critical_path.iterations.empty() ||
      tel.critical_path.stragglers.empty()) {
    std::fprintf(stderr,
                 "FATAL: critical-path analysis produced no iterations or "
                 "straggler rows\n");
    return 1;
  }
  if (tel.attribution_max_abs_err > 1e-9) {
    std::fprintf(stderr,
                 "FATAL: critical-path phase attributions disagree with the "
                 "modeled iteration times (max err %.3g > 1e-9)\n",
                 tel.attribution_max_abs_err);
    return 1;
  }
  if (const int rc = check_gemm_cell(gemm); rc != 0) {
    return rc;
  }
  if (const int rc = check_sdc_cell(sdc); rc != 0) {
    return rc;
  }
  return check_hier_cell(hier);
}

int run() {
  bench::banner("wallclock_engines",
                "host wall-clock of the Level 3 assign phase, per-sample vs "
                "batched collectives (n=8192, k=256, d=128, 4-CG group)");

  const data::Dataset ds = data::make_uniform(kN, kD, 2024);
  core::KmeansConfig config;
  config.k = kK;
  config.max_iterations = 1;
  config.tolerance = -1;
  config.init = core::InitMethod::kFirstK;
  const util::Matrix centroids = core::init_centroids(ds, config);
  const std::size_t k_local = (kK + kGroupCgs - 1) / kGroupCgs;

  // Warm-up pass so thread creation and page faults hit neither timing.
  (void)assign_batched(ds, centroids, k_local);

  // Best-of-N: the minimum is the run least disturbed by scheduler noise,
  // which matters on shared/oversubscribed hosts. Winners are identical
  // across repetitions (deterministic), so any repetition's copy serves.
  constexpr int kReps = 3;
  AssignTiming batched = assign_batched(ds, centroids, k_local);
  AssignTiming per_sample = assign_per_sample(ds, centroids, k_local);
  for (int rep = 1; rep < kReps; ++rep) {
    batched.seconds =
        std::min(batched.seconds, assign_batched(ds, centroids, k_local).seconds);
    per_sample.seconds = std::min(per_sample.seconds,
                                  assign_per_sample(ds, centroids, k_local).seconds);
  }
  if (per_sample.winners != batched.winners) {
    std::fprintf(stderr,
                 "FATAL: batched assign diverged from per-sample assign\n");
    return 1;
  }
  const double speedup = per_sample.seconds / batched.seconds;

  // Update phase, both ways, from the same per-rank accumulators. One
  // round is ~100us, so each measurement runs kUpdateReps rounds
  // back-to-back (idempotent — see update_root_serialized).
  constexpr int kUpdateReps = 200;
  const std::vector<core::detail::UpdateAccumulator> accs =
      build_accumulators(ds, centroids);
  util::Matrix root_centroids = centroids;
  util::Matrix sharded_centroids = centroids;
  {
    util::Matrix warm = centroids;
    (void)update_sharded(accs, warm, 3);
  }
  double root_seconds =
      update_root_serialized(accs, root_centroids, kUpdateReps);
  double sharded_seconds =
      update_sharded(accs, sharded_centroids, kUpdateReps);
  for (int rep = 1; rep < kReps; ++rep) {
    util::Matrix rc = centroids;
    util::Matrix sc = centroids;
    root_seconds =
        std::min(root_seconds, update_root_serialized(accs, rc, kUpdateReps));
    sharded_seconds =
        std::min(sharded_seconds, update_sharded(accs, sc, kUpdateReps));
  }
  if (std::memcmp(root_centroids.data(), sharded_centroids.data(),
                  kK * kD * sizeof(float)) != 0) {
    std::fprintf(stderr,
                 "FATAL: sharded update diverged from root-serialized "
                 "update\n");
    return 1;
  }
  const double update_speedup = root_seconds / sharded_seconds;

  // Full engine iteration (assign + update + cost model) on a 4-CG
  // Level 3 machine, for the end-to-end trajectory.
  const simarch::MachineConfig machine =
      simarch::MachineConfig::tiny(2, 8, 16384);
  util::Stopwatch engine_clock;
  const core::KmeansResult engine = core::run_level(
      core::Level::kLevel3, ds, config, machine, 0, kGroupCgs);
  const double engine_seconds = engine_clock.seconds();

  // Bound gate: converging gated-vs-ungated comparison on the same cell.
  const GatedSection gate = run_gated_section(kN, kK, kD, kGroupCgs, 60);

  util::Table table({"phase", "wall_s", "collectives", "speedup"});
  const std::size_t tiles =
      (kN + core::detail::kAssignTileSamples - 1) /
      core::detail::kAssignTileSamples;
  table.new_row()
      .add("assign_per_sample")
      .add(per_sample.seconds, 6)
      .add(static_cast<std::uint64_t>(kN))
      .add(1.0, 2);
  table.new_row()
      .add("assign_batched")
      .add(batched.seconds, 6)
      .add(static_cast<std::uint64_t>(tiles))
      .add(speedup, 2);
  table.new_row()
      .add("update_root_serialized")
      .add(root_seconds, 6)
      .add(static_cast<std::uint64_t>(3 * kUpdateReps))
      .add(1.0, 2);
  table.new_row()
      .add("update_sharded")
      .add(sharded_seconds, 6)
      // partials allgather + stats allreduce per round
      .add(static_cast<std::uint64_t>(2 * kUpdateReps))
      .add(update_speedup, 2);
  double gated_total = 0;
  double ungated_total = 0;
  std::uint64_t gated_bytes = 0;
  std::uint64_t ungated_bytes = 0;
  for (std::size_t it = 0; it < gate.gated.iterations; ++it) {
    gated_total += gate.gated.assign_s[it];
    ungated_total += gate.ungated.assign_s[it];
    gated_bytes += gate.gated.collective_bytes[it];
    ungated_bytes += gate.ungated.collective_bytes[it];
  }
  table.new_row()
      .add("assign_ungated_converge")
      .add(ungated_total, 6)
      .add(ungated_bytes)
      .add(1.0, 2);
  table.new_row()
      .add("assign_gated_converge")
      .add(gated_total, 6)
      .add(gated_bytes)
      .add(gate.tail_speedup, 2);
  bench::emit(table, "wallclock_engines");

  const MailboxCell mbox = run_mailbox_cell();
  const GemmCell gemm = run_gemm_cell();
  const HierCell hier = run_hier_cell();

  std::ofstream json("BENCH_wallclock.json");
  util::JsonWriter w(json);
  w.begin_object();
  bench::emit_run_metadata(w);
  w.key("workload").begin_object();
  w.kv("n", static_cast<std::uint64_t>(kN));
  w.kv("k", static_cast<std::uint64_t>(kK));
  w.kv("d", static_cast<std::uint64_t>(kD));
  w.kv("group_cgs", static_cast<std::uint64_t>(kGroupCgs));
  w.end_object();
  w.kv("tile_samples",
       static_cast<std::uint64_t>(core::detail::kAssignTileSamples));
  w.kv("assign_per_sample_s", per_sample.seconds);
  w.kv("assign_batched_s", batched.seconds);
  w.kv("assign_speedup", speedup);
  w.kv("update_reps", static_cast<std::uint64_t>(kUpdateReps));
  w.kv("update_root_serialized_s", root_seconds);
  w.kv("update_sharded_s", sharded_seconds);
  w.kv("update_speedup", update_speedup);
  w.kv("level3_engine_iteration_s", engine_seconds);
  w.kv("simulated_iteration_s", engine.last_iteration_cost.total_s());
  emit_gated(gate, w);
  w.key("mailbox").begin_object();
  w.kv("mutex_stall_share", mbox.mutex_stall_share);
  w.kv("ring_stall_share", mbox.ring_stall_share);
  w.kv("stall_share_improvement", mbox.improvement);
  w.kv("host_observed_mutex_stall_share", mbox.host_mutex_stall_share);
  w.kv("host_observed_ring_stall_share", mbox.host_ring_stall_share);
  w.kv("bit_identical", mbox.identical);
  w.end_object();
  emit_gemm(gemm, w);
  emit_hier(hier, w);
  w.end_object();
  json << "\n";
  std::printf("assign speedup (per-sample / batched): %.2fx\n", speedup);
  std::printf("update speedup (root-serialized / sharded): %.2fx\n",
              update_speedup);
  std::printf("mailbox stall share of modeled iteration: mutex %.2f%%, "
              "rings %.2f%% (%.1fx cut), bit-identical: %s\n",
              mbox.mutex_stall_share * 100.0, mbox.ring_stall_share * 100.0,
              mbox.improvement, mbox.identical ? "yes" : "NO");
  std::printf("(json: BENCH_wallclock.json)\n");
  if (!gate.identical) {
    std::fprintf(stderr,
                 "FATAL: gated assign diverged from ungated/serial Lloyd\n");
    return 1;
  }
  if (!mbox.identical) {
    std::fprintf(stderr,
                 "FATAL: mutex-mailbox and ring-mailbox runs diverged\n");
    return 1;
  }
  if (const int rc = check_gemm_cell(gemm); rc != 0) {
    return rc;
  }
  if (const int rc = check_hier_cell(hier); rc != 0) {
    return rc;
  }
  // Exit gates ride on modeled quantities and bit-identity only. The
  // wall-clock ratios above (assign/update speedups, gated tail speedup)
  // depend on host load and core count — on an oversubscribed CI machine
  // the rank threads time-share one core and any ratio can land anywhere —
  // so they are reported for trend-tracking but never fail the bench.
  std::printf("wall-clock ratios are informational; exit gates on modeled "
              "quantities and bit-identity only\n");
  return mbox.improvement >= 2.0 ? 0 : 2;
}

}  // namespace
}  // namespace swhkm

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      return swhkm::run_smoke();
    }
    if (std::string(argv[i]) == "--faults") {
      return swhkm::run_faults();
    }
    if (std::string(argv[i]) == "--sdc") {
      return swhkm::run_sdc();
    }
  }
  return swhkm::run();
}
