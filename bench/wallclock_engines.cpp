/// Wall-clock (NOT simulated) microbenchmark of the batched assign phase.
///
/// The paper's nkd partition keeps communication off the per-sample
/// critical path of the *simulated* machine; this bench tracks whether the
/// host implementation honours the same principle. It runs the Level 3
/// assign phase of an (n=8192, k=256, d=128) workload on a 4-CG group two
/// ways over the real swmpi runtime:
///
///   per-sample — one allreduce_minloc of a single MinLoc per sample, the
///                pre-batching engine structure (kept here as the
///                reference implementation so the win stays measurable);
///   batched    — the shipped structure: score a 256-sample tile into a
///                MinLoc buffer, then one vector-shaped allreduce_minloc
///                per tile.
///
/// Both produce bit-identical winners (verified); only the number of
/// thread-level barriers differs.
///
/// It also times the centroid-update phase of the same workload two ways:
///
///   root-serialized — the pre-sharding structure: two flat reduces of the
///                     full k x d sums and counts to rank 0, rank 0 applies
///                     the whole update alone, scalar bcast of the shift;
///   sharded         — the shipped reduce_and_update: one fused
///                     reduce_scatter, every rank applying its own shard of
///                     rows in parallel, allgather + stats allreduce.
///
/// Both variants pay one accumulator-sized copy per round (the old path's
/// reduce scratch vs the new path's payload packing) and produce
/// bit-identical centroids (verified). Results go to BENCH_wallclock.json
/// in the working directory so subsequent PRs can track the trajectory.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "core/engine_common.hpp"
#include "core/engine_util.hpp"
#include "swmpi/collectives.hpp"
#include "swmpi/runtime.hpp"

namespace swhkm {
namespace {

constexpr std::size_t kN = 8192;
constexpr std::size_t kK = 256;
constexpr std::size_t kD = 128;
constexpr std::size_t kGroupCgs = 4;  // one Level 3 flow unit of 4 CGs

struct AssignTiming {
  double seconds = 0;
  std::vector<std::uint32_t> winners;
};

/// One assign phase over `group_cgs` ranks, per-sample collectives.
AssignTiming assign_per_sample(const data::Dataset& ds,
                               const util::Matrix& centroids,
                               std::size_t k_local) {
  AssignTiming out;
  out.winners.assign(ds.n(), 0);
  util::Stopwatch clock;
  swmpi::run_spmd(static_cast<int>(kGroupCgs), [&](swmpi::Comm& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    const std::size_t j_begin = std::min(rank * k_local, kK);
    const std::size_t j_end = std::min(kK, j_begin + k_local);
    for (std::size_t i = 0; i < ds.n(); ++i) {
      swmpi::MinLoc mine{std::numeric_limits<double>::max(),
                         std::numeric_limits<std::uint64_t>::max()};
      if (j_begin < j_end) {
        const auto [dist, j] = core::detail::nearest_in_slice(
            ds.sample(i), centroids, j_begin, j_end);
        mine = {dist, j};
      }
      swmpi::allreduce_minloc(comm, std::span<swmpi::MinLoc>(&mine, 1));
      if (rank == 0) {
        out.winners[i] = static_cast<std::uint32_t>(mine.index);
      }
    }
  });
  out.seconds = clock.seconds();
  return out;
}

/// Same phase, one batched collective per kAssignTileSamples-sample tile.
AssignTiming assign_batched(const data::Dataset& ds,
                            const util::Matrix& centroids,
                            std::size_t k_local) {
  AssignTiming out;
  out.winners.assign(ds.n(), 0);
  util::Stopwatch clock;
  swmpi::run_spmd(static_cast<int>(kGroupCgs), [&](swmpi::Comm& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    const std::size_t j_begin = std::min(rank * k_local, kK);
    const std::size_t j_end = std::min(kK, j_begin + k_local);
    std::vector<swmpi::MinLoc> tile(core::detail::kAssignTileSamples);
    for (std::size_t t0 = 0; t0 < ds.n();
         t0 += core::detail::kAssignTileSamples) {
      const std::size_t t1 =
          std::min(ds.n(), t0 + core::detail::kAssignTileSamples);
      const std::span<swmpi::MinLoc> scores(tile.data(), t1 - t0);
      core::detail::clear_scores(scores);
      if (j_begin < j_end) {
        core::detail::score_tile(ds, t0, t1, centroids, j_begin, j_end,
                                 scores);
      }
      swmpi::allreduce_minloc(comm, scores);
      if (rank == 0) {
        for (std::size_t i = t0; i < t1; ++i) {
          out.winners[i] = static_cast<std::uint32_t>(scores[i - t0].index);
        }
      }
    }
  });
  out.seconds = clock.seconds();
  return out;
}

/// Per-rank update-phase inputs: each of the 4 CGs accumulates its block of
/// samples under the (deterministic) full-scan winners. Built once; the
/// timed variants only read them.
std::vector<core::detail::UpdateAccumulator> build_accumulators(
    const data::Dataset& ds, const util::Matrix& centroids) {
  std::vector<core::detail::UpdateAccumulator> accs(
      kGroupCgs, core::detail::UpdateAccumulator(kK, kD));
  for (std::size_t r = 0; r < kGroupCgs; ++r) {
    const auto [begin, end] =
        core::detail::block_range(ds.n(), kGroupCgs, r);
    for (std::size_t i = begin; i < end; ++i) {
      const auto [dist, j] =
          core::detail::nearest_in_slice(ds.sample(i), centroids, 0, kK);
      (void)dist;
      accs[r].add_sample(j, ds.sample(i));
    }
  }
  return accs;
}

/// `reps` rounds of the pre-sharding update: two flat reduces to rank 0,
/// root-only apply, scalar bcast. Applying the same accumulator is
/// idempotent (rows land on sums/counts means every round), so the work per
/// round is identical while centroids stay comparable across variants.
double update_root_serialized(
    const std::vector<core::detail::UpdateAccumulator>& accs,
    util::Matrix& centroids, int reps) {
  util::Stopwatch clock;
  swmpi::run_spmd(static_cast<int>(kGroupCgs), [&](swmpi::Comm& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    std::vector<double> sums;
    std::vector<double> counts;
    for (int rep = 0; rep < reps; ++rep) {
      sums = accs[rank].sums;  // the reduce destroys its input partials
      counts = accs[rank].counts;
      swmpi::reduce(comm, 0, std::span<double>(sums.data(), sums.size()),
                    swmpi::ops::Plus{});
      swmpi::reduce(comm, 0,
                    std::span<double>(counts.data(), counts.size()),
                    swmpi::ops::Plus{});
      double shift = 0;
      if (comm.rank() == 0) {
        shift = core::detail::apply_update(centroids, sums, counts).shift;
      }
      swmpi::bcast(comm, 0, std::span<double>(&shift, 1));
    }
  });
  return clock.seconds();
}

/// `reps` rounds of the shipped sharded update. reduce_and_update only
/// reads the accumulator (the shared-partials fold is zero-copy), so no
/// per-round scratch copy exists to pay — the root path's defensive copy
/// above is inherent to its destructive reduce, and its absence here is
/// part of the measured win.
double update_sharded(
    const std::vector<core::detail::UpdateAccumulator>& accs,
    util::Matrix& centroids, int reps) {
  util::Stopwatch clock;
  swmpi::run_spmd(static_cast<int>(kGroupCgs), [&](swmpi::Comm& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    for (int rep = 0; rep < reps; ++rep) {
      (void)core::detail::reduce_and_update(comm, centroids, accs[rank]);
    }
  });
  return clock.seconds();
}

int run() {
  bench::banner("wallclock_engines",
                "host wall-clock of the Level 3 assign phase, per-sample vs "
                "batched collectives (n=8192, k=256, d=128, 4-CG group)");

  const data::Dataset ds = data::make_uniform(kN, kD, 2024);
  core::KmeansConfig config;
  config.k = kK;
  config.max_iterations = 1;
  config.tolerance = -1;
  config.init = core::InitMethod::kFirstK;
  const util::Matrix centroids = core::init_centroids(ds, config);
  const std::size_t k_local = (kK + kGroupCgs - 1) / kGroupCgs;

  // Warm-up pass so thread creation and page faults hit neither timing.
  (void)assign_batched(ds, centroids, k_local);

  // Best-of-N: the minimum is the run least disturbed by scheduler noise,
  // which matters on shared/oversubscribed hosts. Winners are identical
  // across repetitions (deterministic), so any repetition's copy serves.
  constexpr int kReps = 3;
  AssignTiming batched = assign_batched(ds, centroids, k_local);
  AssignTiming per_sample = assign_per_sample(ds, centroids, k_local);
  for (int rep = 1; rep < kReps; ++rep) {
    batched.seconds =
        std::min(batched.seconds, assign_batched(ds, centroids, k_local).seconds);
    per_sample.seconds = std::min(per_sample.seconds,
                                  assign_per_sample(ds, centroids, k_local).seconds);
  }
  if (per_sample.winners != batched.winners) {
    std::fprintf(stderr,
                 "FATAL: batched assign diverged from per-sample assign\n");
    return 1;
  }
  const double speedup = per_sample.seconds / batched.seconds;

  // Update phase, both ways, from the same per-rank accumulators. One
  // round is ~100us, so each measurement runs kUpdateReps rounds
  // back-to-back (idempotent — see update_root_serialized).
  constexpr int kUpdateReps = 200;
  const std::vector<core::detail::UpdateAccumulator> accs =
      build_accumulators(ds, centroids);
  util::Matrix root_centroids = centroids;
  util::Matrix sharded_centroids = centroids;
  {
    util::Matrix warm = centroids;
    (void)update_sharded(accs, warm, 3);
  }
  double root_seconds =
      update_root_serialized(accs, root_centroids, kUpdateReps);
  double sharded_seconds =
      update_sharded(accs, sharded_centroids, kUpdateReps);
  for (int rep = 1; rep < kReps; ++rep) {
    util::Matrix rc = centroids;
    util::Matrix sc = centroids;
    root_seconds =
        std::min(root_seconds, update_root_serialized(accs, rc, kUpdateReps));
    sharded_seconds =
        std::min(sharded_seconds, update_sharded(accs, sc, kUpdateReps));
  }
  if (std::memcmp(root_centroids.data(), sharded_centroids.data(),
                  kK * kD * sizeof(float)) != 0) {
    std::fprintf(stderr,
                 "FATAL: sharded update diverged from root-serialized "
                 "update\n");
    return 1;
  }
  const double update_speedup = root_seconds / sharded_seconds;

  // Full engine iteration (assign + update + cost model) on a 4-CG
  // Level 3 machine, for the end-to-end trajectory.
  const simarch::MachineConfig machine =
      simarch::MachineConfig::tiny(2, 8, 16384);
  util::Stopwatch engine_clock;
  const core::KmeansResult engine = core::run_level(
      core::Level::kLevel3, ds, config, machine, 0, kGroupCgs);
  const double engine_seconds = engine_clock.seconds();

  util::Table table({"phase", "wall_s", "collectives", "speedup"});
  const std::size_t tiles =
      (kN + core::detail::kAssignTileSamples - 1) /
      core::detail::kAssignTileSamples;
  table.new_row()
      .add("assign_per_sample")
      .add(per_sample.seconds, 6)
      .add(static_cast<std::uint64_t>(kN))
      .add(1.0, 2);
  table.new_row()
      .add("assign_batched")
      .add(batched.seconds, 6)
      .add(static_cast<std::uint64_t>(tiles))
      .add(speedup, 2);
  table.new_row()
      .add("update_root_serialized")
      .add(root_seconds, 6)
      .add(static_cast<std::uint64_t>(3 * kUpdateReps))
      .add(1.0, 2);
  table.new_row()
      .add("update_sharded")
      .add(sharded_seconds, 6)
      // partials allgather + stats allreduce per round
      .add(static_cast<std::uint64_t>(2 * kUpdateReps))
      .add(update_speedup, 2);
  bench::emit(table, "wallclock_engines");

  std::ofstream json("BENCH_wallclock.json");
  json << "{\n"
       << "  \"workload\": {\"n\": " << kN << ", \"k\": " << kK
       << ", \"d\": " << kD << ", \"group_cgs\": " << kGroupCgs << "},\n"
       << "  \"tile_samples\": " << core::detail::kAssignTileSamples << ",\n"
       << "  \"assign_per_sample_s\": " << per_sample.seconds << ",\n"
       << "  \"assign_batched_s\": " << batched.seconds << ",\n"
       << "  \"assign_speedup\": " << speedup << ",\n"
       << "  \"update_reps\": " << kUpdateReps << ",\n"
       << "  \"update_root_serialized_s\": " << root_seconds << ",\n"
       << "  \"update_sharded_s\": " << sharded_seconds << ",\n"
       << "  \"update_speedup\": " << update_speedup << ",\n"
       << "  \"level3_engine_iteration_s\": " << engine_seconds << ",\n"
       << "  \"simulated_iteration_s\": "
       << engine.last_iteration_cost.total_s() << "\n"
       << "}\n";
  std::printf("assign speedup (per-sample / batched): %.2fx\n", speedup);
  std::printf("update speedup (root-serialized / sharded): %.2fx\n",
              update_speedup);
  std::printf("(json: BENCH_wallclock.json)\n");
  return speedup >= 5.0 && update_speedup > 1.0 ? 0 : 2;
}

}  // namespace
}  // namespace swhkm

int main() { return swhkm::run(); }
