/// Figure 7 — Level 2 vs Level 3 over dimensionality:
/// d swept 512..8192, k = 2,000, n = 1,265,723, 128 nodes.
///
/// Paper reading: Level 2 wins at small d; Level 3 overtakes for all
/// d > 2560; Level 2 cannot run above d = 4096 (memory); Level 2's curve
/// has two non-monotonic steps the paper attributes to communication
/// boundaries (our model produces analogous steps from centroid-tile
/// quantisation — see EXPERIMENTS.md).
///
/// Also runs the placement ablation: CG groups packed into supernodes
/// (the paper's advice) vs scattered across them.
///
/// Second sweep, same shape at 512 nodes (two supernodes): the
/// hierarchical-collective schedule vs the flat one. The flat collectives
/// push every rank's payload through the central switch at the
/// supernode-crossing stages — the traffic behind the paper's Fig. 7 step
/// jumps; the two-level schedule's crossing bytes per iteration and the
/// resulting jump at the boundary are what this table tracks.

#include "bench_common.hpp"

using namespace swhkm;
using core::Level;
using core::Placement;
using core::ProblemShape;

int main() {
  bench::banner("Figure 7 — L2 vs L3 over d",
                "d in 512..8192, k=2000, n=1,265,723, 128 nodes; metric: "
                "one-iteration time");

  const simarch::MachineConfig machine = simarch::MachineConfig::sw26010(128);
  constexpr std::uint64_t kN = 1265723;
  constexpr std::uint64_t kK = 2000;

  util::Table table({"d", "Level2 s/iter", "Level3 s/iter", "winner",
                     "L3 scattered-placement s/iter"});
  std::uint64_t crossover = 0;
  bool l2_was_winning = false;
  for (std::uint64_t d :
       {512ull, 1024ull, 1536ull, 2048ull, 2560ull, 3072ull, 3584ull,
        4096ull, 4608ull, 5120ull, 5632ull, 6144ull, 6656ull, 7168ull,
        7680ull, 8192ull}) {
    const ProblemShape shape{kN, kK, d};
    const auto l2 = bench::model_best(Level::kLevel2, shape, machine);
    const auto l3 = bench::model_best(Level::kLevel3, shape, machine);
    const auto l3_scattered =
        core::best_plan_for_level(Level::kLevel3, shape, machine,
                                  Placement::kScattered);
    std::string winner = "-";
    if (l2 && l3) {
      winner = *l2 < *l3 ? "Level 2" : "Level 3";
      if (*l2 < *l3) {
        l2_was_winning = true;
      } else if (l2_was_winning && crossover == 0) {
        crossover = d;
      }
    } else if (l3) {
      winner = "Level 3 (L2 infeasible)";
    }
    table.new_row()
        .add(std::uint64_t{d})
        .add(bench::cell_or_na(l2))
        .add(bench::cell_or_na(l3))
        .add(winner)
        .add(l3_scattered
                 ? bench::cell_or_na(l3_scattered->predicted_s())
                 : "n/a");
  }
  bench::emit(table, "fig7_dim_compare");

  std::cout << "Crossover: Level 3 overtakes Level 2 at d = " << crossover
            << " (paper: 2560; same low-thousands band expected).\n"
            << "Level 2 infeasible for d > 4096 (paper: the same wall).\n\n";

  // Supernode-boundary sweep: the same shape on 512 nodes (two
  // supernodes), the best Level 3 plan priced through the flat schedule
  // and the hierarchical one. The crossing columns are the modeled bytes
  // through the central switch per iteration — the hierarchical schedule
  // must cut them, shrinking the boundary jump the flat schedule pays.
  const simarch::MachineConfig mc512 = simarch::MachineConfig::sw26010(512);
  util::Table hier_table({"d", "L3 flat s/iter", "L3 hier s/iter",
                          "flat crossing MB", "hier crossing MB",
                          "crossing cut"});
  for (std::uint64_t d : {512ull, 2048ull, 4096ull, 8192ull, 196608ull}) {
    const ProblemShape shape{kN, kK, d};
    const auto choice =
        core::best_plan_for_level(Level::kLevel3, shape, mc512);
    if (!choice) {
      continue;
    }
    const simarch::CostTally flat = core::model_iteration(
        choice->plan, mc512, Placement::kPacked, /*hier_collectives=*/false);
    const simarch::CostTally hier = core::model_iteration(
        choice->plan, mc512, Placement::kPacked, /*hier_collectives=*/true);
    hier_table.new_row()
        .add(std::uint64_t{d})
        .add(flat.total_s(), 6)
        .add(hier.total_s(), 6)
        .add(static_cast<double>(flat.net_crossing_bytes) / 1e6, 2)
        .add(static_cast<double>(hier.net_crossing_bytes) / 1e6, 2)
        .add(hier.net_crossing_bytes > 0
                 ? static_cast<double>(flat.net_crossing_bytes) /
                       static_cast<double>(hier.net_crossing_bytes)
                 : 0.0,
             1);
  }
  bench::emit(hier_table, "fig7_hier_crossing");
  return 0;
}
