/// Table I — capability matrix: the (n, k, d) envelope of prior parallel
/// k-means systems versus this design, plus Table II (the benchmark
/// workloads) and the per-level capability of our implementation computed
/// from the constraint algebra rather than transcribed.

#include "bench_common.hpp"

using namespace swhkm;
using core::Level;

int main() {
  bench::banner("Table I — parallel k-means implementations",
                "published capability envelopes; our rows are computed "
                "from the constraint algebra on the paper's machines");

  util::Table prior({"approach", "hardware", "n", "k", "d"});
  prior.new_row().add("Bohm et al").add("multi-core").add("1e7").add("40").add(
      "20");
  prior.new_row()
      .add("Hadian & Shahrivari")
      .add("multi-core")
      .add("1e9")
      .add("100")
      .add("68");
  prior.new_row()
      .add("Zechner & Granitzer")
      .add("GPU (CUDA)")
      .add("1e6")
      .add("128")
      .add("200");
  prior.new_row().add("Li et al").add("GPU (CUDA)").add("1e7").add("512").add(
      "160");
  prior.new_row().add("Haut et al").add("cloud").add("1e8").add("8").add("58");
  prior.new_row().add("Cui et al").add("Hadoop").add("1e5").add("100").add("9");
  prior.new_row()
      .add("Kumar et al")
      .add("Jaguar (MPI)")
      .add("1e10")
      .add("1000")
      .add("30");
  prior.new_row()
      .add("Cai et al")
      .add("Gordon (parallel R)")
      .add("1e6")
      .add("8")
      .add("8");
  prior.new_row()
      .add("Bender et al")
      .add("Trinity (OpenMP)")
      .add("370")
      .add("18")
      .add("140,256");
  prior.new_row()
      .add("this design")
      .add("Sunway (DMA/MPI, simulated)")
      .add("1e6")
      .add("160,000")
      .add("196,608");
  bench::emit(prior, "table1_prior_art");

  // Computed capability of each level on the paper's machine setups.
  util::Table ours({"level", "machine", "max k (at d=68)",
                    "max d (at k=2000)", "limiting constraint"});
  struct Row {
    Level level;
    std::size_t nodes;
    const char* limit;
  };
  const Row rows[] = {
      {Level::kLevel1, 1, "C1: d(1+2k)+k <= LDM"},
      {Level::kLevel2, 256, "C2' (sample per CPE) + 4d <= LDM wall"},
      {Level::kLevel3, 4096, "C2''/C3'' + node DDR"},
  };
  for (const Row& row : rows) {
    const simarch::MachineConfig machine =
        simarch::MachineConfig::sw26010(row.nodes);
    ours.new_row()
        .add(core::level_name(row.level))
        .add(std::to_string(row.nodes) + " node(s)")
        .add(util::format_count(core::max_k_for_level(row.level, 68, machine)))
        .add(util::format_count(
            core::max_d_for_level(row.level, 2000, machine)))
        .add(row.limit);
  }
  bench::emit(ours, "table1_our_levels");

  // Table II: the benchmark workloads and which level the planner picks.
  util::Table workloads(
      {"benchmark (Table II)", "n", "k", "d", "planner pick (4096 nodes)",
       "predicted s/iter"});
  for (const data::DatasetInfo& info : data::paper_benchmarks()) {
    const simarch::MachineConfig machine =
        simarch::MachineConfig::sw26010(4096);
    const auto choice = core::auto_plan({info.n, info.k, info.d}, machine);
    workloads.new_row()
        .add(info.name)
        .add(util::format_count(info.n))
        .add(util::format_count(info.k))
        .add(util::format_count(info.d))
        .add(choice ? core::level_name(choice->plan.level) : "infeasible")
        .add(choice ? bench::cell_or_na(choice->predicted_s()) : "n/a");
  }
  bench::emit(workloads, "table2_workloads");

  std::cout
      << "Expected: Level 3's computed envelope covers k=160,000 and\n"
         "d=196,608 simultaneously — no prior row in Table I does both.\n";
  return 0;
}
