#include <gtest/gtest.h>

#include "core/level2.hpp"
#include "core/lloyd.hpp"
#include "core/metrics.hpp"
#include "core/parallel_init.hpp"
#include "core/partition.hpp"
#include "data/synthetic.hpp"
#include "util/error.hpp"

namespace swhkm::core {
namespace {

TEST(ParallelInit, ProducesKRowsOfD) {
  const data::Dataset ds = data::make_blobs(400, 6, 4, 3);
  ParallelInitConfig config;
  config.k = 4;
  config.ranks = 3;
  const util::Matrix centroids = parallel_init(ds, config);
  EXPECT_EQ(centroids.rows(), 4u);
  EXPECT_EQ(centroids.cols(), 6u);
}

TEST(ParallelInit, CentroidsAreActualSamples) {
  const data::Dataset ds = data::make_uniform(200, 3, 7);
  ParallelInitConfig config;
  config.k = 5;
  config.ranks = 2;
  const util::Matrix centroids = parallel_init(ds, config);
  for (std::size_t j = 0; j < 5; ++j) {
    bool found = false;
    for (std::size_t i = 0; i < ds.n() && !found; ++i) {
      found = std::equal(centroids.row(j).begin(), centroids.row(j).end(),
                         ds.sample(i).begin());
    }
    EXPECT_TRUE(found) << "centroid " << j << " is not a sample";
  }
}

TEST(ParallelInit, DeterministicForSeedAndRanks) {
  const data::Dataset ds = data::make_blobs(300, 5, 3, 9);
  ParallelInitConfig config;
  config.k = 3;
  config.ranks = 4;
  config.seed = 42;
  const util::Matrix a = parallel_init(ds, config);
  const util::Matrix b = parallel_init(ds, config);
  EXPECT_EQ(centroid_max_abs_diff(a, b), 0.0);
}

TEST(ParallelInit, SeedChangesResult) {
  const data::Dataset ds = data::make_uniform(300, 5, 9);
  ParallelInitConfig config;
  config.k = 6;
  config.ranks = 2;
  config.seed = 1;
  const util::Matrix a = parallel_init(ds, config);
  config.seed = 2;
  const util::Matrix b = parallel_init(ds, config);
  EXPECT_GT(centroid_max_abs_diff(a, b), 0.0);
}

TEST(ParallelInit, SeedsLandInDistinctBlobs) {
  // 4 far-apart tight blobs: k-means|| must seed one centroid per blob
  // (this is exactly where naive random init often collapses).
  const data::Dataset ds = data::make_blobs(800, 8, 4, 21, 200.0, 0.05);
  ParallelInitConfig config;
  config.k = 4;
  config.ranks = 4;
  config.rounds = 4;
  const util::Matrix centroids = parallel_init(ds, config);
  // All pairwise distances must be blob-scale, not noise-scale.
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = a + 1; b < 4; ++b) {
      double dist = 0;
      for (std::size_t u = 0; u < 8; ++u) {
        const double diff = centroids.at(a, u) - centroids.at(b, u);
        dist += diff * diff;
      }
      EXPECT_GT(dist, 100.0) << "centroids " << a << "," << b << " collide";
    }
  }
}

TEST(ParallelInit, ImprovesLloydOverFirstKInit) {
  // Lloyd from k-means|| seeding must reach an objective no worse than
  // from the degenerate first-k init on clustered data.
  const data::Dataset ds = data::make_blobs(600, 6, 6, 77);
  ParallelInitConfig pconfig;
  pconfig.k = 6;
  pconfig.ranks = 3;
  const util::Matrix seeded = parallel_init(ds, pconfig);

  KmeansConfig config;
  config.k = 6;
  config.max_iterations = 30;
  const double with_parallel =
      lloyd_serial_from(ds, config, seeded).inertia;
  config.init = InitMethod::kFirstK;
  const double with_firstk = lloyd_serial(ds, config).inertia;
  EXPECT_LE(with_parallel, with_firstk * 1.05 + 1e-9);
}

TEST(ParallelInit, SingleRankWorks) {
  const data::Dataset ds = data::make_uniform(100, 4, 5);
  ParallelInitConfig config;
  config.k = 3;
  config.ranks = 1;
  const util::Matrix centroids = parallel_init(ds, config);
  EXPECT_EQ(centroids.rows(), 3u);
}

TEST(ParallelInit, KEqualsOne) {
  const data::Dataset ds = data::make_uniform(50, 2, 1);
  ParallelInitConfig config;
  config.k = 1;
  config.ranks = 2;
  EXPECT_EQ(parallel_init(ds, config).rows(), 1u);
}

TEST(ParallelInit, ZeroRoundsPadsFromData) {
  // With no oversampling rounds there is only the initial candidate;
  // the implementation must pad to k with real samples, not zeros.
  const data::Dataset ds = data::make_uniform(60, 3, 11, 5.0f, 6.0f);
  ParallelInitConfig config;
  config.k = 4;
  config.ranks = 2;
  config.rounds = 0;
  const util::Matrix centroids = parallel_init(ds, config);
  EXPECT_EQ(centroids.rows(), 4u);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_GE(centroids.at(j, 0), 5.0f);  // inside the data range
    EXPECT_LT(centroids.at(j, 0), 6.0f);
  }
}

TEST(ParallelInit, RejectsBadConfig) {
  const data::Dataset ds = data::make_uniform(10, 2, 1);
  ParallelInitConfig config;
  config.k = 0;
  EXPECT_THROW(parallel_init(ds, config), swhkm::InvalidArgument);
  config.k = 20;  // > n
  EXPECT_THROW(parallel_init(ds, config), swhkm::InvalidArgument);
  config.k = 2;
  config.ranks = 0;
  EXPECT_THROW(parallel_init(ds, config), swhkm::InvalidArgument);
}

TEST(ParallelInit, FeedsEnginesAsCustomStart) {
  // End-to-end: k-means|| seeding -> Level 2 engine via run_plan_from.
  const data::Dataset ds = data::make_blobs(300, 8, 4, 5);
  ParallelInitConfig pconfig;
  pconfig.k = 4;
  pconfig.ranks = 2;
  util::Matrix seeded = parallel_init(ds, pconfig);

  const auto machine = simarch::MachineConfig::tiny(2, 4, 8192);
  KmeansConfig config;
  config.k = 4;
  config.max_iterations = 20;
  const ProblemShape shape{ds.n(), 4, ds.d()};
  const PartitionPlan plan = make_plan(Level::kLevel2, shape, machine);
  const KmeansResult engine =
      run_level2(ds, config, machine, plan, seeded);
  const KmeansResult serial = lloyd_serial_from(ds, config, seeded);
  EXPECT_EQ(assignment_agreement(engine.assignments, serial.assignments),
            1.0);
}

}  // namespace
}  // namespace swhkm::core
