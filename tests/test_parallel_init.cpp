#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/level2.hpp"
#include "core/lloyd.hpp"
#include "core/metrics.hpp"
#include "core/parallel_init.hpp"
#include "core/partition.hpp"
#include "data/synthetic.hpp"
#include "swmpi/collectives.hpp"
#include "swmpi/runtime.hpp"
#include "util/error.hpp"

namespace swhkm::core {
namespace {

TEST(ParallelInit, ProducesKRowsOfD) {
  const data::Dataset ds = data::make_blobs(400, 6, 4, 3);
  ParallelInitConfig config;
  config.k = 4;
  config.ranks = 3;
  const util::Matrix centroids = parallel_init(ds, config);
  EXPECT_EQ(centroids.rows(), 4u);
  EXPECT_EQ(centroids.cols(), 6u);
}

TEST(ParallelInit, CentroidsAreActualSamples) {
  const data::Dataset ds = data::make_uniform(200, 3, 7);
  ParallelInitConfig config;
  config.k = 5;
  config.ranks = 2;
  const util::Matrix centroids = parallel_init(ds, config);
  for (std::size_t j = 0; j < 5; ++j) {
    bool found = false;
    for (std::size_t i = 0; i < ds.n() && !found; ++i) {
      found = std::equal(centroids.row(j).begin(), centroids.row(j).end(),
                         ds.sample(i).begin());
    }
    EXPECT_TRUE(found) << "centroid " << j << " is not a sample";
  }
}

TEST(ParallelInit, DeterministicForSeedAndRanks) {
  const data::Dataset ds = data::make_blobs(300, 5, 3, 9);
  ParallelInitConfig config;
  config.k = 3;
  config.ranks = 4;
  config.seed = 42;
  const util::Matrix a = parallel_init(ds, config);
  const util::Matrix b = parallel_init(ds, config);
  EXPECT_EQ(centroid_max_abs_diff(a, b), 0.0);
}

TEST(ParallelInit, SeedChangesResult) {
  const data::Dataset ds = data::make_uniform(300, 5, 9);
  ParallelInitConfig config;
  config.k = 6;
  config.ranks = 2;
  config.seed = 1;
  const util::Matrix a = parallel_init(ds, config);
  config.seed = 2;
  const util::Matrix b = parallel_init(ds, config);
  EXPECT_GT(centroid_max_abs_diff(a, b), 0.0);
}

TEST(ParallelInit, SeedsLandInDistinctBlobs) {
  // 4 far-apart tight blobs: k-means|| must seed one centroid per blob
  // (this is exactly where naive random init often collapses).
  const data::Dataset ds = data::make_blobs(800, 8, 4, 21, 200.0, 0.05);
  ParallelInitConfig config;
  config.k = 4;
  config.ranks = 4;
  config.rounds = 4;
  const util::Matrix centroids = parallel_init(ds, config);
  // All pairwise distances must be blob-scale, not noise-scale.
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = a + 1; b < 4; ++b) {
      double dist = 0;
      for (std::size_t u = 0; u < 8; ++u) {
        const double diff = centroids.at(a, u) - centroids.at(b, u);
        dist += diff * diff;
      }
      EXPECT_GT(dist, 100.0) << "centroids " << a << "," << b << " collide";
    }
  }
}

TEST(ParallelInit, ImprovesLloydOverFirstKInit) {
  // Lloyd from k-means|| seeding must reach an objective no worse than
  // from the degenerate first-k init on clustered data.
  const data::Dataset ds = data::make_blobs(600, 6, 6, 77);
  ParallelInitConfig pconfig;
  pconfig.k = 6;
  pconfig.ranks = 3;
  const util::Matrix seeded = parallel_init(ds, pconfig);

  KmeansConfig config;
  config.k = 6;
  config.max_iterations = 30;
  const double with_parallel =
      lloyd_serial_from(ds, config, seeded).inertia;
  config.init = InitMethod::kFirstK;
  const double with_firstk = lloyd_serial(ds, config).inertia;
  EXPECT_LE(with_parallel, with_firstk * 1.05 + 1e-9);
}

TEST(ParallelInit, SingleRankWorks) {
  const data::Dataset ds = data::make_uniform(100, 4, 5);
  ParallelInitConfig config;
  config.k = 3;
  config.ranks = 1;
  const util::Matrix centroids = parallel_init(ds, config);
  EXPECT_EQ(centroids.rows(), 3u);
}

TEST(ParallelInit, KEqualsOne) {
  const data::Dataset ds = data::make_uniform(50, 2, 1);
  ParallelInitConfig config;
  config.k = 1;
  config.ranks = 2;
  EXPECT_EQ(parallel_init(ds, config).rows(), 1u);
}

TEST(ParallelInit, ZeroRoundsPadsFromData) {
  // With no oversampling rounds there is only the initial candidate;
  // the implementation must pad to k with real samples, not zeros.
  const data::Dataset ds = data::make_uniform(60, 3, 11, 5.0f, 6.0f);
  ParallelInitConfig config;
  config.k = 4;
  config.ranks = 2;
  config.rounds = 0;
  const util::Matrix centroids = parallel_init(ds, config);
  EXPECT_EQ(centroids.rows(), 4u);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_GE(centroids.at(j, 0), 5.0f);  // inside the data range
    EXPECT_LT(centroids.at(j, 0), 6.0f);
  }
}

TEST(ParallelInit, RejectsBadConfig) {
  const data::Dataset ds = data::make_uniform(10, 2, 1);
  ParallelInitConfig config;
  config.k = 0;
  EXPECT_THROW(parallel_init(ds, config), swhkm::InvalidArgument);
  config.k = 20;  // > n
  EXPECT_THROW(parallel_init(ds, config), swhkm::InvalidArgument);
  config.k = 2;
  config.ranks = 0;
  EXPECT_THROW(parallel_init(ds, config), swhkm::InvalidArgument);
}

TEST(WeightedPlusPlus, NeverPicksZeroWeightCandidateOnScanExhaustion) {
  // Two 1e308 weights overflow the total to +inf, so target = u * inf is
  // +inf (or NaN at u == 0) and the weighted scan deterministically
  // exhausts without ever reaching <= 0 — the exact FP-edge the fallback
  // guards. The old fallback picked index m-1, a zero-weight candidate no
  // sample maps to; the fix must land on positive-weight rows only.
  util::Matrix candidates(4, 2);
  for (std::size_t c = 0; c < 4; ++c) {
    candidates.at(c, 0) = static_cast<float>(c);
    candidates.at(c, 1) = static_cast<float>(c * c);
  }
  const std::vector<double> weights{1e308, 1e308, 0.0, 0.0};
  const util::Matrix picked =
      detail::weighted_plus_plus(candidates, weights, 2, 7);
  for (std::size_t j = 0; j < 2; ++j) {
    const bool is_row0 = std::equal(picked.row(j).begin(),
                                    picked.row(j).end(),
                                    candidates.row(0).begin());
    const bool is_row1 = std::equal(picked.row(j).begin(),
                                    picked.row(j).end(),
                                    candidates.row(1).begin());
    EXPECT_TRUE(is_row0 || is_row1)
        << "centroid " << j << " is a zero-weight candidate";
  }
}

TEST(WeightedPlusPlus, MatchesPlainScanOnRegularWeights) {
  // On non-degenerate weights the zero-weight skip must be a no-op: the
  // scan picks the same candidate a plain cumulative scan would.
  util::Matrix candidates(6, 3);
  for (std::size_t c = 0; c < 6; ++c) {
    for (std::size_t u = 0; u < 3; ++u) {
      candidates.at(c, u) = static_cast<float>((c * 5 + u * 3) % 7);
    }
  }
  const std::vector<double> weights{3.0, 1.0, 4.0, 1.0, 5.0, 9.0};
  const util::Matrix a =
      detail::weighted_plus_plus(candidates, weights, 3, 11);
  const util::Matrix b =
      detail::weighted_plus_plus(candidates, weights, 3, 11);
  EXPECT_EQ(centroid_max_abs_diff(a, b), 0.0);
  for (std::size_t j = 0; j < 3; ++j) {
    bool found = false;
    for (std::size_t c = 0; c < 6 && !found; ++c) {
      found = std::equal(a.row(j).begin(), a.row(j).end(),
                         candidates.row(c).begin());
    }
    EXPECT_TRUE(found) << "centroid " << j << " is not a candidate";
  }
}

class CandidateExchangeTest : public ::testing::TestWithParam<int> {};

TEST_P(CandidateExchangeTest, AllgathervMatchesOldTagDance) {
  // Property test of the k-means|| candidate exchange rewrite: the
  // allgatherv must deliver exactly the candidate sequence the old
  // O(picks x ranks) point-to-point tag dance produced, for ragged
  // (including empty) pick lists.
  const int size = GetParam();
  swmpi::run_spmd(size, [&](swmpi::Comm& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    std::vector<std::uint64_t> picked((rank * 3 + 1) % 5);
    for (std::size_t i = 0; i < picked.size(); ++i) {
      picked[i] = rank * 1000 + i * 17;
    }

    // The seed's exchange, verbatim: per-rank counts, then a tag per
    // source rank fanning every pick out point-to-point.
    std::vector<std::uint64_t> old_order;
    const std::vector<int> counts =
        swmpi::allgather(comm, static_cast<int>(picked.size()));
    for (int r = 0; r < comm.size(); ++r) {
      const int tag = comm.next_collective_tag();
      if (comm.rank() == r) {
        for (std::uint64_t i : picked) {
          for (int q = 0; q < comm.size(); ++q) {
            if (q != r) {
              comm.send_value<std::uint64_t>(q, tag, i);
            }
          }
          old_order.push_back(i);
        }
      } else {
        for (int c = 0; c < counts[static_cast<std::size_t>(r)]; ++c) {
          old_order.push_back(comm.recv_value<std::uint64_t>(r, tag));
        }
      }
    }

    const std::vector<std::uint64_t> new_order = swmpi::allgatherv(
        comm, std::span<const std::uint64_t>(picked.data(), picked.size()));
    EXPECT_EQ(new_order, old_order) << "size=" << size << " rank=" << rank;
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CandidateExchangeTest,
                         ::testing::Values(1, 2, 3, 4, 7));

TEST(ParallelInit, FeedsEnginesAsCustomStart) {
  // End-to-end: k-means|| seeding -> Level 2 engine via run_plan_from.
  const data::Dataset ds = data::make_blobs(300, 8, 4, 5);
  ParallelInitConfig pconfig;
  pconfig.k = 4;
  pconfig.ranks = 2;
  util::Matrix seeded = parallel_init(ds, pconfig);

  const auto machine = simarch::MachineConfig::tiny(2, 4, 8192);
  KmeansConfig config;
  config.k = 4;
  config.max_iterations = 20;
  const ProblemShape shape{ds.n(), 4, ds.d()};
  const PartitionPlan plan = make_plan(Level::kLevel2, shape, machine);
  const KmeansResult engine =
      run_level2(ds, config, machine, plan, seeded);
  const KmeansResult serial = lloyd_serial_from(ds, config, seeded);
  EXPECT_EQ(assignment_agreement(engine.assignments, serial.assignments),
            1.0);
}

}  // namespace
}  // namespace swhkm::core
