#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstring>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/hkmeans.hpp"
#include "simarch/trace.hpp"
#include "swmpi/collectives.hpp"
#include "swmpi/runtime.hpp"
#include "telemetry/export.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace swhkm {
namespace {

/// Minimal recursive-descent JSON validator — enough to prove the
/// artifacts are syntactically well-formed without an external parser.
class MiniJson {
 public:
  explicit MiniJson(std::string_view s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) {
      return false;
    }
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\r' ||
            s_[pos_] == '\t')) {
      ++pos_;
    }
  }
  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool value() {
    skip_ws();
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }
  bool object() {
    ++pos_;
    skip_ws();
    if (eat('}')) {
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) {
        return false;
      }
      skip_ws();
      if (!eat(':') || !value()) {
        return false;
      }
      skip_ws();
      if (eat('}')) {
        return true;
      }
      if (!eat(',')) {
        return false;
      }
    }
  }
  bool array() {
    ++pos_;
    skip_ws();
    if (eat(']')) {
      return true;
    }
    while (true) {
      if (!value()) {
        return false;
      }
      skip_ws();
      if (eat(']')) {
        return true;
      }
      if (!eat(',')) {
        return false;
      }
    }
  }
  bool string() {
    if (!eat('"')) {
      return false;
    }
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) {
          return false;
        }
        ++pos_;
      } else if (c == '"') {
        return true;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      }
    }
    return false;
  }
  bool literal(const char* word) {
    const std::string_view w(word);
    if (s_.substr(pos_, w.size()) != w) {
      return false;
    }
    pos_ += w.size();
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    eat('-');
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

std::string snapshot_json(const telemetry::MetricsSnapshot& snap) {
  std::ostringstream out;
  util::JsonWriter w(out);
  snap.write_json(w);
  return out.str();
}

TEST(MiniJsonSelfTest, AcceptsValidRejectsBroken) {
  EXPECT_TRUE(MiniJson(R"({"a":[1,2.5,-3e4],"b":{"c":"x\"y"},"d":null})")
                  .valid());
  EXPECT_FALSE(MiniJson(R"({"a":1,})").valid());
  EXPECT_FALSE(MiniJson(R"({"a" 1})").valid());
  EXPECT_FALSE(MiniJson("{\"a\":\"\n\"}").valid());  // raw newline in string
}

TEST(Metrics, CountersGaugesHistogramsMergeAcrossShards) {
  telemetry::MetricsRegistry reg;
  reg.shard(0).counter("work").add(3);
  reg.shard(1).counter("work").add(4);
  reg.shard(0).gauge("depth").set(2);
  reg.shard(1).gauge("depth").set(7);
  reg.shard(1).gauge("depth").set(1);  // last=1, max stays 7
  reg.shard(0).histogram("h").observe(2.0);
  reg.shard(1).histogram("h").observe(2.0);
  reg.shard(1).histogram("h").observe(1024.0);

  const auto snap = reg.merged();
  EXPECT_EQ(snap.counter_or_zero("work"), 7u);
  EXPECT_EQ(snap.counter_or_zero("missing"), 0u);
  ASSERT_TRUE(snap.gauges.count("depth"));
  EXPECT_EQ(snap.gauges.at("depth").max, 7);
  EXPECT_EQ(snap.gauges.at("depth").last, 1);
  ASSERT_TRUE(snap.histograms.count("h"));
  const auto& h = snap.histograms.at("h");
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 2.0 + 2.0 + 1024.0);
  ASSERT_EQ(h.buckets.size(), 2u);  // two distinct power-of-two buckets
  EXPECT_EQ(h.buckets[0].second, 2u);
  EXPECT_EQ(h.buckets[1].second, 1u);
  EXPECT_LT(h.buckets[0].first, h.buckets[1].first);
}

TEST(Metrics, CollectiveLedgersFlattenIntoNamedCounters) {
  telemetry::MetricsRegistry reg;
  auto& stats = reg.shard(2).collective(telemetry::CollectiveKind::kAllreduce);
  stats.calls.add(5);
  stats.bytes.add(640);
  stats.wall_s.observe(0.001);

  const auto snap = reg.merged();
  EXPECT_EQ(snap.counter_or_zero("swmpi.allreduce.calls"), 5u);
  EXPECT_EQ(snap.counter_or_zero("swmpi.allreduce.bytes"), 640u);
  ASSERT_TRUE(snap.histograms.count("swmpi.allreduce.wall_s"));
  EXPECT_EQ(snap.histograms.at("swmpi.allreduce.wall_s").count, 1u);
  // Kinds that never fired leave no keys behind.
  EXPECT_EQ(snap.counters.count("swmpi.bcast.calls"), 0u);
}

TEST(Metrics, GaugeMergeKeepsNegativeMaximaAndSkipsNeverSetShards) {
  // Regression: the merge used to fold shard maxima through a
  // zero-initialized accumulator, so an all-negative gauge came out with
  // max == 0, and a shard that merely *touched* a gauge (hot paths cache
  // the reference before ever recording) dragged the merged max up to 0.
  telemetry::MetricsRegistry reg;
  reg.shard(0).gauge("depth").set(-5);
  (void)reg.shard(1).gauge("depth");  // touched, never set
  const auto snap = reg.merged();
  ASSERT_TRUE(snap.gauges.count("depth"));
  EXPECT_EQ(snap.gauges.at("depth").last, -5);
  EXPECT_EQ(snap.gauges.at("depth").max, -5);
  EXPECT_EQ(snap.gauges.at("depth").sets, 1u);

  // Multi-shard negative fold: the max is the largest *recorded* value.
  reg.shard(2).gauge("depth").set(-9);
  const auto snap2 = reg.merged();
  EXPECT_EQ(snap2.gauges.at("depth").max, -5);
  EXPECT_EQ(snap2.gauges.at("depth").last, -9);  // highest-rank setter
  EXPECT_EQ(snap2.gauges.at("depth").sets, 2u);

  // A gauge never set anywhere leaves no key behind at all.
  telemetry::MetricsRegistry untouched;
  (void)untouched.shard(0).gauge("idle");
  EXPECT_EQ(untouched.merged().gauges.count("idle"), 0u);
}

TEST(Metrics, MergedSnapshotIsByteIdenticalUnderAdversarialInterleavings) {
  // Property: merged() is a pure function of each shard's final state —
  // the wall-clock interleaving of shard writers must never leak into the
  // snapshot. Every round scrambles thread start order and injects
  // yields mid-stream; the merged JSON (counters, negative-valued gauges,
  // histograms — every serialized byte) must equal the serial reference.
  constexpr int kShards = 6;
  constexpr int kOps = 500;
  auto record = [](telemetry::MetricsShard& shard, int rank, bool yield) {
    auto& ctr = shard.counter("ops");
    auto& gauge = shard.gauge("watermark");
    auto& hist = shard.histogram("lat");
    for (int i = 0; i < kOps; ++i) {
      ctr.add(static_cast<std::uint64_t>(rank % 3) + 1);
      gauge.set((i * 7 + rank) % 11 - 5);  // sweeps negatives too
      hist.observe(static_cast<double>((i % 4) + 1));
      if (yield && i % 64 == 0) {
        std::this_thread::yield();
      }
    }
    gauge.set(rank - 3);  // deterministic per-shard final value
  };

  telemetry::MetricsRegistry serial;
  for (int r = 0; r < kShards; ++r) {
    record(serial.shard(r), r, false);
  }
  const std::string want = snapshot_json(serial.merged());

  for (int round = 0; round < 5; ++round) {
    telemetry::MetricsRegistry reg;
    for (int r = 0; r < kShards; ++r) {
      reg.shard(r);  // create up front; threads only record
    }
    std::vector<std::thread> workers;
    for (int r = 0; r < kShards; ++r) {
      // gcd(5, kShards) == 1, so this visits every rank in scrambled order.
      const int rank = (r * 5 + round) % kShards;
      workers.emplace_back(
          [&reg, &record, rank] { record(reg.shard(rank), rank, true); });
    }
    for (auto& t : workers) {
      t.join();
    }
    EXPECT_EQ(snapshot_json(reg.merged()), want) << "round " << round;
  }
}

TEST(Metrics, MergeIsDeterministicUnderConcurrentRecording) {
  // Integer observations only: counter adds and histogram bucket counts
  // commute exactly, so the merged snapshot must be byte-identical no
  // matter how the recording threads interleave.
  constexpr int kShards = 8;
  constexpr int kOps = 2000;
  auto record = [](telemetry::MetricsShard& shard, int rank) {
    auto& ctr = shard.counter("work");
    auto& hist = shard.histogram("sizes");
    for (int i = 0; i < kOps; ++i) {
      ctr.add(static_cast<std::uint64_t>(rank) + 1);
      hist.observe(static_cast<double>((i % 5) + 1));
    }
  };

  telemetry::MetricsRegistry serial;
  for (int r = 0; r < kShards; ++r) {
    record(serial.shard(r), r);
  }

  telemetry::MetricsRegistry threaded;
  for (int r = 0; r < kShards; ++r) {
    threaded.shard(r);  // create up front; threads only record
  }
  std::vector<std::thread> workers;
  for (int r = kShards - 1; r >= 0; --r) {  // scrambled start order
    workers.emplace_back(
        [&threaded, &record, r] { record(threaded.shard(r), r); });
  }
  for (auto& t : workers) {
    t.join();
  }

  EXPECT_EQ(snapshot_json(serial.merged()), snapshot_json(threaded.merged()));
  EXPECT_EQ(threaded.merged().counter_or_zero("work"),
            static_cast<std::uint64_t>(kOps) * (kShards * (kShards + 1) / 2));
}

TEST(Telemetry, ScopedSpanRecordsAndNullSessionIsFree) {
  telemetry::Telemetry session;
  {
    telemetry::ScopedSpan span(&session, "assign", 3, 17);
  }
  {
    telemetry::ScopedSpan span(nullptr, "assign", 0, 0);  // must be a no-op
  }
  const auto spans = session.spans().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "assign");
  EXPECT_EQ(spans[0].rank, 3u);
  EXPECT_EQ(spans[0].iteration, 17u);
  EXPECT_GE(spans[0].duration_us, 0.0);

  telemetry::TelemetryConfig quiet;
  quiet.wall_spans = false;
  telemetry::Telemetry muted(quiet);
  {
    telemetry::ScopedSpan span(&muted, "assign", 0, 0);
  }
  EXPECT_EQ(muted.spans().size(), 0u);
}

TEST(Telemetry, SwmpiRuntimeTicksCollectiveAndMailboxCounters) {
  constexpr int kRanks = 4;
  telemetry::MetricsRegistry reg;
  swmpi::run_spmd(
      kRanks,
      [](swmpi::Comm& comm) {
        int v = comm.rank() + 1;
        swmpi::allreduce_sum(comm, std::span<int>(&v, 1));
        swmpi::barrier(comm);
      },
      nullptr, &reg);

  const auto snap = reg.merged();
  EXPECT_EQ(snap.counter_or_zero("swmpi.allreduce.calls"),
            static_cast<std::uint64_t>(kRanks));
  EXPECT_EQ(snap.counter_or_zero("swmpi.allreduce.bytes"),
            static_cast<std::uint64_t>(kRanks) * sizeof(int));
  // Composite collectives tick their building blocks too.
  EXPECT_EQ(snap.counter_or_zero("swmpi.reduce.calls"),
            static_cast<std::uint64_t>(kRanks));
  EXPECT_EQ(snap.counter_or_zero("swmpi.bcast.calls"),
            static_cast<std::uint64_t>(kRanks));
  EXPECT_EQ(snap.counter_or_zero("swmpi.barrier.calls"),
            static_cast<std::uint64_t>(kRanks));
  ASSERT_TRUE(snap.histograms.count("swmpi.allreduce.wall_s"));
  EXPECT_EQ(snap.histograms.at("swmpi.allreduce.wall_s").count,
            static_cast<std::uint64_t>(kRanks));
  // The tree moved real messages: point-to-point and mailbox metrics.
  EXPECT_GT(snap.counter_or_zero("swmpi.send.calls"), 0u);
  EXPECT_GT(snap.counter_or_zero("swmpi.send.bytes"), 0u);
  ASSERT_TRUE(snap.histograms.count("swmpi.recv.stall_s"));
  EXPECT_GT(snap.histograms.at("swmpi.recv.stall_s").count, 0u);
  EXPECT_TRUE(snap.gauges.count("swmpi.recv.queue_depth"));
}

TEST(Telemetry, WatchdogPathStallAndDropLandInTheRegistry) {
  // A blackholed send must show up as swmpi.send.dropped (never as a
  // delivered send), and the receiver's full watchdog wait must still be
  // observed into swmpi.recv.stall_s before the WatchdogTimeout surfaces —
  // the stall ledger used to lose exactly those worst-case samples.
  constexpr auto kWatchdog = std::chrono::milliseconds(60);
  telemetry::MetricsRegistry reg;
  swmpi::FaultPlan plan;
  plan.drop_send(/*rank=*/1, /*nth_send=*/0).watchdog(kWatchdog);
  bool timed_out = false;
  try {
    swmpi::run_spmd(
        2,
        [&](swmpi::Comm& world) {
          if (world.rank() == 1) {
            world.send_value<int>(0, 3, 42);
          } else {
            (void)world.recv_value<int>(1, 3);
          }
        },
        &plan, &reg);
  } catch (const WatchdogTimeout&) {
    timed_out = true;
  }
  EXPECT_TRUE(timed_out);

  const auto snap = reg.merged();
  EXPECT_EQ(snap.counter_or_zero("swmpi.send.dropped"), 1u);
  // The only send in the run was blackholed: the delivered-traffic ledger
  // must stay empty.
  EXPECT_EQ(snap.counter_or_zero("swmpi.send.calls"), 0u);
  EXPECT_EQ(snap.counter_or_zero("swmpi.send.bytes"), 0u);
  ASSERT_TRUE(snap.histograms.count("swmpi.recv.stall_s"));
  const auto& stall = snap.histograms.at("swmpi.recv.stall_s");
  EXPECT_GE(stall.count, 1u);
  // The watchdog-path sample carries (at least) the full timeout.
  EXPECT_GE(stall.sum, 0.9 * std::chrono::duration<double>(kWatchdog).count());
}

TEST(Telemetry, ChromeTraceIsWellFormedAndCarriesAllTimelines) {
  simarch::Trace sim;
  simarch::CostTally tally;
  tally.compute_s = 0.25;
  tally.net_comm_s = 0.05;
  sim.record_iteration(0, 0, 0.0, tally);
  sim.record_iteration(1, 0, 0.0, tally);
  sim.record_fault(0, "injected: net fault", 1.5);

  telemetry::SpanSink wall;
  wall.record("assign", 0, 0, 10.0, 100.0);
  wall.record("update", 0, 0, 110.0, 40.0);

  const auto faults = sim.fault_markers();
  std::ostringstream out;
  telemetry::write_chrome_trace(out, &sim, &wall, faults);
  const std::string json = out.str();

  EXPECT_TRUE(MiniJson(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("simulated machine"), std::string::npos);
  EXPECT_NE(json.find("wall clock"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);  // fault instant
  EXPECT_NE(json.find("injected: net fault"), std::string::npos);
  EXPECT_NE(json.find("\"assign\""), std::string::npos);

  // Null sources still produce a loadable trace.
  std::ostringstream empty;
  telemetry::write_chrome_trace(empty, nullptr, nullptr);
  EXPECT_TRUE(MiniJson(empty.str()).valid()) << empty.str();
}

TEST(Telemetry, RunReportIsWellFormedAndReconciles) {
  const auto machine = simarch::MachineConfig::tiny(2, 4, 8192);
  const data::Dataset ds = data::make_blobs(200, 8, 4, 11);
  core::KmeansConfig config;
  config.k = 4;
  config.max_iterations = 3;
  config.tolerance = -1;
  simarch::Trace trace;
  telemetry::Telemetry session;
  config.trace = &trace;
  config.telemetry = &session;
  const core::KmeansResult result =
      core::run_level(core::Level::kLevel3, ds, config, machine);

  telemetry::RunReport report;
  report.run_id = "test-level3";
  report.shape = core::ProblemShape{ds.n(), config.k, ds.d()};
  report.level = core::Level::kLevel3;
  report.config = config;
  report.machine_summary = machine.summary();
  report.plan_summary = "test plan";
  report.set_result(result);
  report.metrics = session.metrics().merged();

  // The engines kept two independent ledgers of simulated traffic — the
  // per-iteration history and the telemetry counters. They must agree.
  EXPECT_GT(report.metrics.counter_or_zero("sim.net_bytes"), 0u);
  EXPECT_TRUE(telemetry::reconciles(report));

  // Engine instrumentation left its marks.
  EXPECT_GT(report.metrics.counter_or_zero("engine.gate.swept_samples") +
                report.metrics.counter_or_zero("engine.gate.pruned_samples"),
            0u);
  EXPECT_GT(session.spans().size(), 0u);

  std::ostringstream out;
  report.write_json(out);
  const std::string json = out.str();
  EXPECT_TRUE(MiniJson(json).valid()) << json.substr(0, 400);
  for (const char* key :
       {"\"run_id\"", "\"workload\"", "\"config\"", "\"outcome\"",
        "\"history\"", "\"metrics\"", "\"machine\"", "\"plan\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }

  // A tampered ledger must fail the cross-check.
  telemetry::RunReport broken = report;
  broken.metrics.counters["sim.net_bytes"] += 1;
  EXPECT_FALSE(telemetry::reconciles(broken));
}

TEST(Telemetry, ResultsAreBitIdenticalWithTelemetryOnAndOff) {
  const auto machine = simarch::MachineConfig::tiny(2, 4, 8192);
  const data::Dataset ds = data::make_blobs(240, 10, 5, 23);
  for (core::Level level : {core::Level::kLevel1, core::Level::kLevel2,
                            core::Level::kLevel3}) {
    core::KmeansConfig off;
    off.k = 5;
    off.max_iterations = 4;
    off.tolerance = -1;
    const core::KmeansResult plain = core::run_level(level, ds, off, machine);

    core::KmeansConfig on = off;
    simarch::Trace trace;
    telemetry::Telemetry session;
    on.trace = &trace;
    on.telemetry = &session;
    const core::KmeansResult instrumented =
        core::run_level(level, ds, on, machine);

    ASSERT_EQ(plain.centroids.rows(), instrumented.centroids.rows());
    ASSERT_EQ(plain.centroids.cols(), instrumented.centroids.cols());
    EXPECT_EQ(std::memcmp(plain.centroids.data(),
                          instrumented.centroids.data(),
                          plain.centroids.size() * sizeof(float)),
              0)
        << core::level_name(level);
    EXPECT_EQ(plain.assignments, instrumented.assignments)
        << core::level_name(level);
    EXPECT_EQ(plain.iterations, instrumented.iterations);
    EXPECT_EQ(plain.inertia, instrumented.inertia) << core::level_name(level);
  }
}

TEST(Json, WriterEmitsStableStructure) {
  std::ostringstream out;
  util::JsonWriter w(out, 0);  // compact
  w.begin_object();
  w.kv("n", std::uint64_t{1024});
  w.kv("label", "he said \"hi\"\n");
  w.kv("ok", true);
  w.key("xs").begin_array().value(0.25).value(-3).end_array();
  w.key("nothing").null();
  w.end_object();
  const std::string json = out.str();
  EXPECT_TRUE(MiniJson(json).valid()) << json;
  EXPECT_EQ(json,
            "{\"n\":1024,\"label\":\"he said \\\"hi\\\"\\n\",\"ok\":true,"
            "\"xs\":[0.25,-3],\"nothing\":null}");
}

TEST(Json, FormatDoubleRoundTripsAndHandlesNonFinite) {
  for (double v : {1.0000001234567, 1234.5678901234567, 0.1, -0.0, 1e-300}) {
    EXPECT_EQ(std::stod(util::format_double(v)), v);
  }
  EXPECT_EQ(util::format_double(std::nan("")), "null");
  EXPECT_EQ(util::format_double(INFINITY), "null");
}

TEST(Json, EscapeCoversQuotesBackslashesAndControls) {
  EXPECT_EQ(util::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(util::json_escape("x\n\t"), "x\\n\\t");
  EXPECT_EQ(util::json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Log, RenderTextIncludesContextWhenPresent) {
  util::LogContext ctx;
  ctx.component = "level1";
  ctx.rank = 2;
  ctx.iteration = 7;
  EXPECT_EQ(util::render_log_text(util::LogLevel::kWarn, ctx, "boom"),
            "[swhkm WARN  level1 rank=2 iter=7] boom");
  EXPECT_EQ(util::render_log_text(util::LogLevel::kInfo, util::LogContext{},
                                  "hello"),
            "[swhkm INFO ] hello");
}

TEST(Log, RenderJsonIsWellFormedAndEscaped) {
  util::LogContext ctx;
  ctx.component = "recovery";
  ctx.iteration = 3;
  const std::string line = util::render_log_json(
      util::LogLevel::kWarn, ctx, "bad \"state\"\nrecovered");
  EXPECT_TRUE(MiniJson(line).valid()) << line;
  EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(line.find("\"component\":\"recovery\""), std::string::npos);
  EXPECT_NE(line.find("\"iteration\":3"), std::string::npos);
  EXPECT_EQ(line.find("\"rank\""), std::string::npos);  // rank omitted
}

}  // namespace
}  // namespace swhkm
