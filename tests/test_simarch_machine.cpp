#include <gtest/gtest.h>

#include "simarch/machine_config.hpp"
#include "util/error.hpp"

namespace swhkm::simarch {
namespace {

TEST(MachineConfig, DefaultIsValidSw26010Node) {
  MachineConfig config;
  config.validate();
  EXPECT_EQ(config.cpes_per_cg, 64u);
  EXPECT_EQ(config.cgs_per_node, 4u);
  EXPECT_EQ(config.ldm_bytes, 64u * 1024u);
  EXPECT_EQ(config.ldm_elems(), 16384u);  // the paper's LDM element count
}

TEST(MachineConfig, Sw26010Factories) {
  for (std::size_t nodes : {1ul, 256ul, 4096ul}) {
    const MachineConfig config = MachineConfig::sw26010(nodes);
    EXPECT_EQ(config.nodes, nodes);
    EXPECT_EQ(config.num_cgs(), nodes * 4);
    EXPECT_EQ(config.total_cpes(), nodes * 256);
  }
}

TEST(MachineConfig, PaperExperimentCoreCounts) {
  // Level 1 setup: one processor = 256 CPEs in 4 CGs.
  EXPECT_EQ(MachineConfig::sw26010(1).total_cpes(), 256u);
  // Level 2 setup: 256 processors = 65,536 CPEs in 1,024 CGs.
  EXPECT_EQ(MachineConfig::sw26010(256).total_cpes(), 65536u);
  EXPECT_EQ(MachineConfig::sw26010(256).num_cgs(), 1024u);
  // Level 3 setup: 4,096 processors = 16,384 CGs.
  EXPECT_EQ(MachineConfig::sw26010(4096).num_cgs(), 16384u);
}

TEST(MachineConfig, TinyIsConsistent) {
  const MachineConfig config = MachineConfig::tiny(2, 4, 4096);
  config.validate();
  EXPECT_EQ(config.cpes_per_cg, 4u);
  EXPECT_EQ(config.mesh_rows * config.mesh_cols, 4u);
  EXPECT_EQ(config.num_cgs(), 4u);  // 2 nodes x 2 CGs
}

TEST(MachineConfig, TinyMeshCoversOddCounts) {
  const MachineConfig config = MachineConfig::tiny(1, 6, 4096);
  EXPECT_EQ(config.mesh_rows * config.mesh_cols, 6u);
}

TEST(MachineConfig, ValidateRejectsBadMesh) {
  MachineConfig config;
  config.mesh_rows = 7;  // 7*8 != 64
  EXPECT_THROW(config.validate(), swhkm::InvalidArgument);
}

TEST(MachineConfig, ValidateRejectsZeroBandwidth) {
  MachineConfig config;
  config.dma_bandwidth = 0;
  EXPECT_THROW(config.validate(), swhkm::InvalidArgument);
}

TEST(MachineConfig, ValidateRejectsBadEfficiency) {
  MachineConfig config;
  config.compute_efficiency = 0.0;
  EXPECT_THROW(config.validate(), swhkm::InvalidArgument);
  config.compute_efficiency = 1.5;
  EXPECT_THROW(config.validate(), swhkm::InvalidArgument);
}

TEST(MachineConfig, ValidateRejectsFractionalElements) {
  MachineConfig config;
  config.ldm_bytes = 65537;  // not divisible by elem_bytes
  EXPECT_THROW(config.validate(), swhkm::InvalidArgument);
}

TEST(MachineConfig, SupernodeCount) {
  EXPECT_EQ(MachineConfig::sw26010(1).num_supernodes(), 1u);
  EXPECT_EQ(MachineConfig::sw26010(256).num_supernodes(), 1u);
  EXPECT_EQ(MachineConfig::sw26010(257).num_supernodes(), 2u);
  EXPECT_EQ(MachineConfig::sw26010(4096).num_supernodes(), 16u);
}

TEST(MachineConfig, AssignRowSecondsDecomposes) {
  MachineConfig config;
  const double wide = config.assign_row_seconds(4096);
  const double narrow = config.assign_row_seconds(8);
  EXPECT_GT(wide, narrow);
  // The fixed overhead dominates narrow rows: per-element cost is far
  // higher at d_local=8 than at d=4096.
  EXPECT_GT(narrow / 8.0, wide / 4096.0 * 2.0);
  // And the pure-arithmetic part matches flops/rate.
  const double overhead = config.row_overhead_cycles / config.cpe_clock_hz;
  EXPECT_NEAR(wide - overhead,
              2.0 * 4096 / (config.cpe_flops() * config.compute_efficiency),
              1e-12);
}

TEST(MachineConfig, SummaryMentionsShape) {
  const std::string s = MachineConfig::sw26010(128).summary();
  EXPECT_NE(s.find("128 node"), std::string::npos);
  EXPECT_NE(s.find("64.00 KiB"), std::string::npos);
}

}  // namespace
}  // namespace swhkm::simarch
