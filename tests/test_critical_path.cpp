#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/hkmeans.hpp"
#include "core/recovery.hpp"
#include "simarch/trace.hpp"
#include "swmpi/fault.hpp"
#include "telemetry/critical_path.hpp"
#include "telemetry/export.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"

namespace swhkm {
namespace {

using telemetry::FlightEventKind;

std::chrono::steady_clock::time_point epoch() {
  return std::chrono::steady_clock::now();
}

TEST(FlightRing, RetainsLatestEventsOldestFirstAfterWraparound) {
  telemetry::FlightRing ring(4, epoch());
  EXPECT_EQ(ring.capacity(), 4u);
  for (std::uint32_t i = 0; i < 10; ++i) {
    ring.record(FlightEventKind::kTileStart, /*iteration=*/i, /*op=*/7,
                /*a=*/i, /*b=*/i + 1);
  }
  EXPECT_EQ(ring.total(), 10u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);  // ring dropped the first six
  for (std::size_t j = 0; j < events.size(); ++j) {
    const auto& e = events[j];
    EXPECT_EQ(e.kind, FlightEventKind::kTileStart);
    EXPECT_EQ(e.iteration, 6u + j);  // oldest retained first
    EXPECT_EQ(e.op, 7u);
    EXPECT_EQ(e.a, 6u + j);
    EXPECT_EQ(e.b, 7u + j);
    EXPECT_EQ(e.sim_s, -1.0);  // site had no modeled clock
  }
  // Timestamps are monotone along the retained window.
  for (std::size_t j = 1; j < events.size(); ++j) {
    EXPECT_LE(events[j - 1].wall_us, events[j].wall_us);
  }
}

TEST(FlightRing, PartialFillAndBackdatedRecords) {
  telemetry::FlightRing ring(8, epoch());
  ring.record(FlightEventKind::kIterationStart, 3, 0, 0, 0, /*sim_s=*/1.5);
  // A park is only learned about at wake time: record_at back-dates it.
  ring.record_at(/*wall_us=*/-250.0, FlightEventKind::kMailboxPark, 3,
                 /*op=*/0, /*a=*/42);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kIterationStart);
  EXPECT_EQ(events[0].sim_s, 1.5);
  EXPECT_EQ(events[1].kind, FlightEventKind::kMailboxPark);
  EXPECT_EQ(events[1].wall_us, -250.0);
  EXPECT_EQ(events[1].a, 42u);

  // Zero capacity degrades to a one-slot ring instead of dividing by zero.
  telemetry::FlightRing tiny(0, epoch());
  tiny.record(FlightEventKind::kFault, 1);
  tiny.record(FlightEventKind::kFault, 2);
  ASSERT_EQ(tiny.snapshot().size(), 1u);
  EXPECT_EQ(tiny.snapshot()[0].iteration, 2u);
}

TEST(FlightRecorder, RegistryArmsExistingAndFutureShards) {
  telemetry::MetricsRegistry reg;
  auto& early = reg.shard(0);
  EXPECT_EQ(early.flight(), nullptr);  // unarmed registry: no rings
  EXPECT_FALSE(reg.flight_armed());
  EXPECT_TRUE(reg.flight_snapshots().empty());

  reg.arm_flight(16, epoch());
  EXPECT_TRUE(reg.flight_armed());
  ASSERT_NE(early.flight(), nullptr);  // existing shard got a ring
  auto& late = reg.shard(2);
  ASSERT_NE(late.flight(), nullptr);  // and shards born after arming do too

  early.flight()->record(FlightEventKind::kIterationStart, 0);
  late.flight()->record(FlightEventKind::kIterationEnd, 0);
  reg.host_shard().flight()->record(FlightEventKind::kCheckpointLeg, 0);

  const auto snaps = reg.flight_snapshots();
  ASSERT_EQ(snaps.size(), 3u);
  // Ascending rank order, host ring (rank -1) first.
  EXPECT_EQ(snaps[0].rank, telemetry::MetricsRegistry::kHostRank);
  EXPECT_EQ(snaps[1].rank, 0);
  EXPECT_EQ(snaps[2].rank, 2);
  for (const auto& s : snaps) {
    EXPECT_EQ(s.total, 1u);
    ASSERT_EQ(s.events.size(), 1u);
  }
}

TEST(CriticalPath, CraftedTraceNamesGatingRankAndSplitsPhases) {
  // Two core groups, two iterations, hand-written tallies. cg 1 is the
  // compute straggler in iteration 0; cg 0 gates iteration 1 via net time.
  simarch::CostTally cg0_it0;
  cg0_it0.compute_s = 0.20;
  cg0_it0.net_comm_s = 0.05;
  simarch::CostTally cg1_it0;
  cg1_it0.compute_s = 0.30;
  cg1_it0.net_comm_s = 0.01;
  simarch::CostTally cg0_it1;
  cg0_it1.compute_s = 0.10;
  cg0_it1.net_comm_s = 0.30;
  simarch::CostTally cg1_it1;
  cg1_it1.compute_s = 0.10;
  cg1_it1.net_comm_s = 0.02;

  simarch::Trace trace;
  trace.record_iteration(0, 0, 0.0, cg0_it0);
  trace.record_iteration(1, 0, 0.0, cg1_it0);
  trace.record_iteration(0, 1, cg0_it0.total_s(), cg0_it1);
  trace.record_iteration(1, 1, cg1_it0.total_s(), cg1_it1);

  const auto cp = telemetry::analyze_critical_path(trace);
  ASSERT_EQ(cp.iterations.size(), 2u);

  const auto& it0 = cp.iterations[0];
  EXPECT_EQ(it0.iteration, 0u);
  EXPECT_EQ(it0.gating_cg, 1u);  // 0.31 > 0.25
  EXPECT_EQ(it0.critical_s, 0.30 + 0.05);  // per-phase maxima
  EXPECT_EQ(it0.gating_rank_s, cg1_it0.total_s());
  const double mean0 = (cg0_it0.total_s() + cg1_it0.total_s()) / 2;
  EXPECT_EQ(it0.mean_rank_s, mean0);
  EXPECT_EQ(it0.blame_s, cg1_it0.total_s() - mean0);
  EXPECT_EQ(it0.phase_s[static_cast<int>(simarch::Phase::kCompute)], 0.30);
  EXPECT_EQ(it0.phase_cg[static_cast<int>(simarch::Phase::kCompute)], 1u);
  EXPECT_EQ(it0.phase_s[static_cast<int>(simarch::Phase::kNetComm)], 0.05);
  EXPECT_EQ(it0.phase_cg[static_cast<int>(simarch::Phase::kNetComm)], 0u);

  const auto& it1 = cp.iterations[1];
  EXPECT_EQ(it1.gating_cg, 0u);  // 0.40 > 0.12
  EXPECT_EQ(it1.critical_s, 0.10 + 0.30);
  const double mean1 = (cg0_it1.total_s() + cg1_it1.total_s()) / 2;
  EXPECT_EQ(it1.blame_s, cg0_it1.total_s() - mean1);

  // Per-iteration attributions sum to critical_s exactly.
  for (const auto& it : cp.iterations) {
    double sum = 0;
    for (int p = 0; p < simarch::kPhaseCount; ++p) {
      sum += it.phase_s[p];
    }
    EXPECT_EQ(sum, it.critical_s);
  }

  // Blame table: each cg gated one iteration; cg 0 carries more blame.
  EXPECT_EQ(cp.total_critical_s, it0.critical_s + it1.critical_s);
  ASSERT_EQ(cp.stragglers.size(), 2u);
  EXPECT_EQ(cp.stragglers[0].cg, 0u);
  EXPECT_EQ(cp.stragglers[0].gated_iterations, 1u);
  EXPECT_EQ(cp.stragglers[0].blame_s, it1.blame_s);
  EXPECT_EQ(cp.stragglers[1].cg, 1u);
  EXPECT_EQ(cp.stragglers[1].blame_s, it0.blame_s);
  const double share_sum =
      cp.stragglers[0].share + cp.stragglers[1].share;
  EXPECT_NEAR(share_sum, 1.0, 1e-12);
}

TEST(CriticalPath, ReplayedIterationsUseTheLatestRecordingOnly) {
  // Recovery replays re-record an iteration; the analyzer must describe
  // the attempt that committed (the latest start), not the first try.
  simarch::CostTally first;
  first.compute_s = 0.5;
  simarch::CostTally retry;
  retry.compute_s = 0.2;

  simarch::Trace trace;
  trace.record_iteration(0, 0, 0.0, first);
  trace.record_iteration(0, 0, 1.0, retry);  // later start wins
  const auto cp = telemetry::analyze_critical_path(trace);
  ASSERT_EQ(cp.iterations.size(), 1u);
  EXPECT_DOUBLE_EQ(cp.iterations[0].critical_s, 0.2);
}

TEST(CriticalPath, EngineRunAttributionMatchesIterationHistoryExactly) {
  // The acceptance identity: the analyzer's per-iteration critical_s,
  // reconstructed from the Trace alone, equals the engine-recorded
  // IterationStats::simulated_s bit-for-bit — same doubles, same max,
  // same summation order as combine_tallies + CostTally::total_s().
  const auto machine = simarch::MachineConfig::tiny(2, 4, 8192);
  const data::Dataset ds = data::make_blobs(256, 8, 4, 33);
  for (core::Level level : {core::Level::kLevel1, core::Level::kLevel2,
                            core::Level::kLevel3}) {
    core::KmeansConfig config;
    config.k = 4;
    config.max_iterations = 5;
    config.tolerance = -1;
    simarch::Trace trace;
    telemetry::Telemetry session;
    config.trace = &trace;
    config.telemetry = &session;
    const core::KmeansResult result =
        core::run_level(level, ds, config, machine);

    const auto cp = telemetry::analyze_critical_path(trace);
    ASSERT_EQ(cp.iterations.size(), result.history.size())
        << core::level_name(level);
    for (std::size_t i = 0; i < cp.iterations.size(); ++i) {
      EXPECT_EQ(cp.iterations[i].critical_s, result.history[i].simulated_s)
          << core::level_name(level) << " iteration " << i;
      double phase_sum = 0;
      for (int p = 0; p < simarch::kPhaseCount; ++p) {
        phase_sum += cp.iterations[i].phase_s[p];
      }
      EXPECT_EQ(phase_sum, cp.iterations[i].critical_s)
          << core::level_name(level) << " iteration " << i;
      // The history's phase split is the same decomposition.
      const auto& h = result.history[i];
      EXPECT_EQ(cp.iterations[i]
                    .phase_s[static_cast<int>(simarch::Phase::kCompute)],
                h.compute_s);
      EXPECT_EQ(cp.iterations[i]
                    .phase_s[static_cast<int>(simarch::Phase::kNetComm)],
                h.net_comm_s);
      EXPECT_EQ(h.sample_read_s + h.centroid_stream_s + h.compute_s +
                    h.mesh_comm_s + h.net_comm_s + h.update_s,
                h.simulated_s);
    }
    // The engine ranks recorded iteration edges into their rings.
    bool any_iteration_edge = false;
    for (const auto& snap : session.metrics().flight_snapshots()) {
      for (const auto& e : snap.events) {
        any_iteration_edge =
            any_iteration_edge ||
            e.kind == FlightEventKind::kIterationStart ||
            e.kind == FlightEventKind::kIterationEnd;
      }
    }
    EXPECT_TRUE(any_iteration_edge) << core::level_name(level);
  }
}

TEST(FlightRecorder, ResultsAreBitIdenticalWithRecorderOnAndOff) {
  const auto machine = simarch::MachineConfig::tiny(2, 4, 8192);
  const data::Dataset ds = data::make_blobs(240, 10, 5, 23);
  for (core::Level level : {core::Level::kLevel1, core::Level::kLevel2,
                            core::Level::kLevel3}) {
    core::KmeansConfig base;
    base.k = 5;
    base.max_iterations = 4;
    base.tolerance = -1;

    telemetry::TelemetryConfig no_flight;
    no_flight.flight = false;
    telemetry::Telemetry off_session(no_flight);
    core::KmeansConfig off = base;
    off.telemetry = &off_session;
    const core::KmeansResult plain = core::run_level(level, ds, off, machine);

    telemetry::Telemetry on_session;  // flight on by default
    core::KmeansConfig on = base;
    on.telemetry = &on_session;
    const core::KmeansResult recorded =
        core::run_level(level, ds, on, machine);

    EXPECT_EQ(std::memcmp(plain.centroids.data(), recorded.centroids.data(),
                          plain.centroids.size() * sizeof(float)),
              0)
        << core::level_name(level);
    EXPECT_EQ(plain.assignments, recorded.assignments)
        << core::level_name(level);
    EXPECT_EQ(plain.iterations, recorded.iterations);
    EXPECT_EQ(plain.inertia, recorded.inertia) << core::level_name(level);
    // And the recorder actually recorded.
    EXPECT_FALSE(on_session.metrics().flight_snapshots().empty());
    EXPECT_TRUE(off_session.metrics().flight_snapshots().empty());
  }
}

TEST(FlightRecorder, FaultDrillCapturesEveryRankInThePostmortem) {
  const auto machine = simarch::MachineConfig::tiny(2, 4, 8192);
  const data::Dataset ds = data::make_blobs(512, 6, 4, 77);
  core::KmeansConfig config;
  config.k = 4;
  config.max_iterations = 8;
  config.tolerance = -1;
  config.checkpoint_every = 4;
  swmpi::FaultPlan plan;
  plan.crash(/*rank=*/1, /*iteration=*/5, swmpi::FaultSite::kUpdate);
  config.fault_plan = &plan;
  telemetry::Telemetry session;
  config.telemetry = &session;

  core::RecoveryOptions options;
  options.checkpoint_path = "test_critical_path.ckpt";
  core::RecoveryDriver driver(machine, options);
  const core::KmeansResult result =
      driver.run(core::Level::kLevel3, ds, config);
  std::remove(options.checkpoint_path.c_str());
  EXPECT_EQ(result.iterations, 8u);

  ASSERT_FALSE(driver.postmortems().empty());
  const telemetry::FaultPostmortem& pm = driver.postmortems().front();
  EXPECT_EQ(pm.iteration, 4u);  // the leg that died started after ckpt 4
  EXPECT_FALSE(pm.what.empty());

  // Every rank that ran is in the postmortem — the host ring plus one
  // ring per core group — and none of them is empty.
  ASSERT_GE(pm.ranks.size(), 2u);
  bool host_seen = false;
  std::size_t workers = 0;
  for (const auto& snap : pm.ranks) {
    EXPECT_FALSE(snap.events.empty()) << "rank " << snap.rank;
    EXPECT_GE(snap.total, snap.events.size());
    if (snap.rank == telemetry::MetricsRegistry::kHostRank) {
      host_seen = true;
    } else {
      ++workers;
    }
  }
  EXPECT_TRUE(host_seen);
  EXPECT_EQ(workers, driver.report().final_cgs);

  // The crashed rank's ring ends mid-flight — its last retained events
  // include the doomed iteration's start.
  bool rank1_saw_iteration_5 = false;
  for (const auto& snap : pm.ranks) {
    if (snap.rank != 1) {
      continue;
    }
    for (const auto& e : snap.events) {
      rank1_saw_iteration_5 =
          rank1_saw_iteration_5 ||
          (e.kind == FlightEventKind::kIterationStart && e.iteration == 5);
    }
  }
  EXPECT_TRUE(rank1_saw_iteration_5);

  // The postmortem lands in the report JSON as the flight_recorder
  // section, one entry per caught fault with every rank's events.
  telemetry::RunReport report;
  report.run_id = "fault-drill";
  report.set_result(result);
  report.has_recovery = true;
  report.recovery = driver.report();
  report.postmortems = driver.postmortems();
  report.metrics = session.metrics().merged();
  std::ostringstream out;
  report.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"flight_recorder\""), std::string::npos);
  EXPECT_NE(json.find("\"iteration_start\""), std::string::npos);
  EXPECT_NE(json.find("\"total_events\""), std::string::npos);
  EXPECT_NE(json.find("\"rank\": -1"), std::string::npos);  // host ring
}

TEST(CriticalPath, ReportAndTraceCarryCriticalPathSections) {
  const auto machine = simarch::MachineConfig::tiny(2, 4, 8192);
  const data::Dataset ds = data::make_blobs(256, 8, 4, 99);
  core::KmeansConfig config;
  config.k = 4;
  config.max_iterations = 4;
  config.tolerance = -1;
  simarch::Trace trace;
  telemetry::Telemetry session;
  config.trace = &trace;
  config.telemetry = &session;
  const core::KmeansResult result =
      core::run_level(core::Level::kLevel3, ds, config, machine);

  telemetry::RunReport report;
  report.run_id = "cp-sections";
  report.set_result(result);
  report.metrics = session.metrics().merged();
  report.has_critical_path = true;
  report.critical_path = telemetry::analyze_critical_path(trace);
  ASSERT_FALSE(report.critical_path.iterations.empty());

  std::ostringstream report_out;
  report.write_json(report_out);
  const std::string report_json = report_out.str();
  for (const char* key :
       {"\"critical_path\"", "\"gating_cg\"", "\"stragglers\"", "\"blame_s\"",
        "\"phases\"", "\"net_crossing_bytes\""}) {
    EXPECT_NE(report_json.find(key), std::string::npos) << key;
  }

  // The exporter draws the path as flow events between gating tracks.
  std::ostringstream trace_out;
  telemetry::write_chrome_trace(trace_out, &trace, &session.spans(), {},
                                &report.critical_path);
  const std::string trace_json = trace_out.str();
  EXPECT_NE(trace_json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"bp\": \"e\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"critical_path\""), std::string::npos);

  // Without the report the exporter draws no arrows.
  std::ostringstream bare;
  telemetry::write_chrome_trace(bare, &trace, &session.spans());
  EXPECT_EQ(bare.str().find("\"ph\": \"s\""), std::string::npos);
}

}  // namespace
}  // namespace swhkm
