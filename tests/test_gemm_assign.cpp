#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "core/engine_util.hpp"
#include "core/hkmeans.hpp"

namespace swhkm::core {
namespace {

using detail::TileScore;
using detail::TileScore2;
using simarch::MachineConfig;

/// Full-precision norm vector for a centroid matrix — what the engines'
/// CentroidNormCache holds after a refresh.
std::vector<double> norms_of(const util::Matrix& centroids) {
  std::vector<double> norms(centroids.rows());
  for (std::size_t j = 0; j < centroids.rows(); ++j) {
    norms[j] = detail::row_squared_norm(centroids.row(j));
  }
  return norms;
}

/// The GEMM sweep promises byte-identical records, so nothing weaker than
/// field-exact equality (including the runner-up slot) is acceptable.
template <typename Rec>
void expect_records_equal(std::span<const Rec> got, std::span<const Rec> ref,
                          const std::string& label) {
  ASSERT_EQ(got.size(), ref.size()) << label;
  for (std::size_t t = 0; t < got.size(); ++t) {
    EXPECT_EQ(got[t].value, ref[t].value) << label << " sample " << t;
    EXPECT_EQ(got[t].index, ref[t].index) << label << " sample " << t;
    if constexpr (detail::HasSecond<Rec>) {
      EXPECT_EQ(got[t].second, ref[t].second) << label << " sample " << t;
    }
  }
}

/// Run both kernels over one (dataset, centroids, slice) instance for one
/// record width and compare bit for bit.
template <typename Rec>
void check_kernel(const data::Dataset& ds, const util::Matrix& centroids,
                  std::size_t j_begin, std::size_t j_end,
                  const std::string& label) {
  const std::vector<double> norms = norms_of(centroids);
  std::vector<Rec> ref(ds.n());
  std::vector<Rec> got(ds.n());
  detail::clear_scores(std::span<Rec>(ref));
  detail::clear_scores(std::span<Rec>(got));
  detail::score_tile(ds, 0, ds.n(), centroids, j_begin, j_end,
                     std::span<Rec>(ref));
  detail::score_tile_gemm(ds, 0, ds.n(), centroids,
                          std::span<const double>(norms), j_begin, j_end,
                          std::span<Rec>(got));
  expect_records_equal(std::span<const Rec>(got), std::span<const Rec>(ref),
                       label);

  // Compacted variant: a strided survivor subset, same contract.
  std::vector<std::uint32_t> ids;
  for (std::size_t i = 0; i < ds.n(); i += 3) {
    ids.push_back(static_cast<std::uint32_t>(i));
  }
  std::vector<Rec> ref_ids(ids.size());
  std::vector<Rec> got_ids(ids.size());
  detail::clear_scores(std::span<Rec>(ref_ids));
  detail::clear_scores(std::span<Rec>(got_ids));
  detail::score_tile_ids(ds, std::span<const std::uint32_t>(ids), centroids,
                         j_begin, j_end, std::span<Rec>(ref_ids));
  detail::score_tile_ids_gemm(ds, std::span<const std::uint32_t>(ids),
                              centroids, std::span<const double>(norms),
                              j_begin, j_end, std::span<Rec>(got_ids));
  expect_records_equal(std::span<const Rec>(got_ids),
                       std::span<const Rec>(ref_ids), label + " ids");
}

TEST(GemmKernel, BitIdenticalAcrossShapesSlicesAndRecordWidths) {
  // Ragged everything: d values that misalign every vector width, tile
  // counts that leave partial centroid blocks, and slice ranges that start
  // mid-block. Magnitude spread (1e-3 .. 1e3) makes the norms dominate some
  // rows and vanish in others, stressing the tau screen from both sides.
  std::mt19937 rng(0xC0FFEE);
  for (const std::size_t d : {1u, 7u, 13u, 16u}) {
    for (const std::size_t k : {1u, 5u, 17u, 33u}) {
      std::uniform_real_distribution<float> unit(-1.0f, 1.0f);
      std::uniform_int_distribution<int> mag(-3, 3);
      const std::size_t n = 37;
      std::vector<float> xs(n * d);
      for (float& v : xs) {
        v = unit(rng) * std::pow(10.0f, static_cast<float>(mag(rng)));
      }
      std::vector<float> cs(k * d);
      for (float& v : cs) {
        v = unit(rng) * std::pow(10.0f, static_cast<float>(mag(rng)));
      }
      const data::Dataset ds("rand", util::Matrix::from_vector(n, d, xs));
      const util::Matrix centroids = util::Matrix::from_vector(k, d, cs);
      const std::string label =
          "d=" + std::to_string(d) + " k=" + std::to_string(k);
      check_kernel<TileScore>(ds, centroids, 0, k, label + " full");
      check_kernel<TileScore2>(ds, centroids, 0, k, label + " full2");
      if (k > 2) {
        // Partial slice (Level 3's per-rank centroid range).
        check_kernel<TileScore>(ds, centroids, 1, k - 1, label + " slice");
        check_kernel<TileScore2>(ds, centroids, 1, k - 1, label + " slice2");
      }
    }
  }
}

TEST(GemmKernel, CoincidentCentroidsOverflowCandidateListExactly) {
  // 12 coincident centroids (> kGemmCandidates = 8) plus two distinct ones:
  // every sample sees at least 12 centroids tied within tau, so the
  // candidate list overflows and the kernel must fall back to the exact
  // full-slice sweep — preserving the left-to-right tie-break onto the
  // *first* coincident index.
  const std::size_t d = 4;
  const std::size_t k = 14;
  std::vector<float> cs(k * d, 0.0f);
  for (std::size_t u = 0; u < d; ++u) {
    cs[12 * d + u] = 5.0f;   // centroid 12 off to one side
    cs[13 * d + u] = -3.0f;  // centroid 13 off to the other
  }
  const util::Matrix centroids = util::Matrix::from_vector(k, d, cs);
  const std::size_t n = 24;
  std::vector<float> xs(n * d);
  std::mt19937 rng(99);
  std::uniform_real_distribution<float> unit(-4.0f, 6.0f);
  for (float& v : xs) {
    v = unit(rng);
  }
  // A few samples exactly on the coincident pile: distance exactly 0 twelve
  // times over.
  for (std::size_t u = 0; u < d; ++u) {
    xs[0 * d + u] = 0.0f;
    xs[1 * d + u] = 0.0f;
  }
  const data::Dataset ds("pile", util::Matrix::from_vector(n, d, xs));
  check_kernel<TileScore>(ds, centroids, 0, k, "overflow");
  check_kernel<TileScore2>(ds, centroids, 0, k, "overflow2");
  // The winner for the on-pile samples must be index 0 (serial tie-break).
  const std::vector<double> norms = norms_of(centroids);
  std::vector<TileScore2> recs(n);
  detail::clear_scores(std::span<TileScore2>(recs));
  detail::score_tile_gemm(ds, 0, ds.n(), centroids,
                          std::span<const double>(norms), 0, k,
                          std::span<TileScore2>(recs));
  EXPECT_EQ(recs[0].value, 0.0);
  EXPECT_EQ(recs[0].index, 0u);
  EXPECT_EQ(recs[0].second, 0.0);  // eleven more coincident at distance 0
}

TEST(GemmKernel, NormCacheRefreshTracksDriftExactly) {
  // The invalidation contract: drift[j] == 0 implies the stored row's bits
  // are unchanged, so the cached norm stays bit-exact; drift[j] > 0 rows
  // are the only ones recomputed.
  const std::size_t k = 5;
  const std::size_t d = 3;
  std::vector<float> cs = {1.f, 2.f, 3.f,  0.5f, 0.5f, 0.5f, -1.f, 4.f, 0.f,
                           2.f, 2.f, 2.f,  7.f,  -2.f, 1.f};
  util::Matrix centroids = util::Matrix::from_vector(k, d, cs);
  detail::CentroidNormCache cache;
  EXPECT_EQ(cache.refresh_full(centroids), k);
  const std::vector<double> before = cache.norms;

  // Move rows 1 and 3; rows 0, 2, 4 keep their bits.
  centroids.at(1, 0) = 9.0f;
  centroids.at(3, 2) = -6.0f;
  std::vector<double> drift(k, 0.0);
  drift[1] = 0.25;
  drift[3] = 1.5;
  EXPECT_EQ(cache.refresh_from_drift(centroids, drift), 2u);
  EXPECT_EQ(cache.norms[0], before[0]);
  EXPECT_EQ(cache.norms[2], before[2]);
  EXPECT_EQ(cache.norms[4], before[4]);
  EXPECT_EQ(cache.norms[1], detail::row_squared_norm(centroids.row(1)));
  EXPECT_EQ(cache.norms[3], detail::row_squared_norm(centroids.row(3)));

  // Cold cache or shape change falls back to a full recompute.
  cache.invalidate();
  EXPECT_EQ(cache.refresh_from_drift(centroids, drift), k);
  EXPECT_EQ(cache.refresh_from_drift(centroids, std::span<const double>()),
            k);
}

TEST(GemmKernel, DriftDigestAuditsSingletonAndTies) {
  // k == 1: there is no "other centroid", so the excluded max must be 0 —
  // a lower bound never retreats on a one-centroid run.
  {
    const std::vector<double> drift{3.5};
    const detail::DriftDigest digest = detail::drift_digest(drift);
    EXPECT_EQ(digest.max1, 3.5);
    EXPECT_EQ(digest.max2, 0.0);
    EXPECT_EQ(digest.argmax, 0u);
    EXPECT_EQ(detail::drift_excluding(digest, 0), 0.0);
  }
  // All-zero drift (converged iteration, or k == 1 with a fixed centroid).
  {
    const std::vector<double> drift{0.0, 0.0};
    const detail::DriftDigest digest = detail::drift_digest(drift);
    EXPECT_EQ(digest.max1, 0.0);
    EXPECT_EQ(digest.max2, 0.0);
    EXPECT_EQ(detail::drift_excluding(digest, 0), 0.0);
    EXPECT_EQ(detail::drift_excluding(digest, 1), 0.0);
  }
  // Tied maximum: the duplicate must survive into max2 so excluding either
  // argmax still sees the full tied drift — coincident centroids moving in
  // lockstep must not weaken anyone's lower-bound retreat.
  {
    const std::vector<double> drift{2.0, 5.0, 5.0, 1.0};
    const detail::DriftDigest digest = detail::drift_digest(drift);
    EXPECT_EQ(digest.max1, 5.0);
    EXPECT_EQ(digest.max2, 5.0);
    EXPECT_EQ(digest.argmax, 1u);
    EXPECT_EQ(detail::drift_excluding(digest, 1), 5.0);
    EXPECT_EQ(detail::drift_excluding(digest, 2), 5.0);
    EXPECT_EQ(detail::drift_excluding(digest, 0), 5.0);
  }
}

/// Bit-for-bit equality against the serial baseline (same contract as
/// test_gated_assign's helper).
void expect_bit_identical(const KmeansResult& got, const KmeansResult& ref,
                          const std::string& label) {
  ASSERT_EQ(got.iterations, ref.iterations) << label;
  EXPECT_EQ(got.assignments, ref.assignments) << label;
  ASSERT_EQ(got.centroids.size(), ref.centroids.size()) << label;
  EXPECT_EQ(std::memcmp(got.centroids.data(), ref.centroids.data(),
                        got.centroids.size() * sizeof(float)),
            0)
      << label;
}

class GemmEngineTest : public ::testing::TestWithParam<Level> {};

TEST_P(GemmEngineTest, BitIdenticalToSerialAcrossGateAndSstep) {
  // The acceptance matrix: each engine level, gate on and off, s-step fold
  // factors 1/2/4 (a Level 3 knob the other levels must ignore), all
  // landing byte-identical to serial Lloyd. d = 13 keeps every panel
  // unaligned; k = 17 leaves a one-row partial centroid block; tile 48
  // leaves a ragged final tile per rank.
  const Level level = GetParam();
  const data::Dataset ds = data::make_blobs(420, 13, 6, 77);
  KmeansConfig config;
  config.k = 17;
  config.max_iterations = 14;
  const KmeansResult ref = lloyd_serial(ds, config);
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  for (const bool gate : {false, true}) {
    for (const std::size_t sstep : {1u, 2u, 4u}) {
      KmeansConfig cfg = config;
      cfg.gate_assign = gate;
      cfg.sstep_tiles = sstep;
      cfg.tile_samples = 48;
      const std::size_t mprime = level == Level::kLevel3 ? 2 : 0;
      const KmeansResult got = run_level(level, ds, cfg, machine, 0, mprime);
      expect_bit_identical(got, ref,
                           std::string(level_name(level)) +
                               (gate ? " gated" : " ungated") + " sstep=" +
                               std::to_string(sstep));
    }
  }
}

TEST_P(GemmEngineTest, GemmOffAndOnAgreeOnCoincidentSeeds) {
  // Satellite regression: two coincident centroids that drift apart. The
  // first two samples are identical, so kFirstK seeds centroid 0 and 1 on
  // the same bits; every tie goes left, cluster 1 starts empty and holds
  // position (zero drift — its cached norm must stay bit-exact across
  // iterations) while cluster 0's mean walks away; once samples near the
  // old seed are closer to the parked centroid than to the drifted one,
  // cluster 1 fills and both move. GEMM on, GEMM off, and serial must
  // track this trajectory bit for bit.
  const std::size_t d = 2;
  std::vector<float> xs;
  auto push = [&](float a, float b) {
    xs.push_back(a);
    xs.push_back(b);
  };
  push(0.f, 0.f);
  push(0.f, 0.f);  // duplicate seed -> coincident centroids 0 and 1
  for (int i = 0; i < 14; ++i) {
    push(0.1f * static_cast<float>(i % 4), 0.1f * static_cast<float>(i % 3));
  }
  for (int i = 0; i < 16; ++i) {
    push(10.f + 0.2f * static_cast<float>(i % 5),
         10.f - 0.2f * static_cast<float>(i % 4));
  }
  const data::Dataset ds("drift-apart",
                         util::Matrix::from_vector(xs.size() / d, d, xs));
  KmeansConfig config;
  config.k = 2;
  config.max_iterations = 10;
  config.gate_assign = true;
  const KmeansResult ref = lloyd_serial(ds, config);
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  KmeansConfig gemm_cfg = config;
  gemm_cfg.gemm_assign = true;
  KmeansConfig chain_cfg = config;
  chain_cfg.gemm_assign = false;
  const std::size_t mprime = GetParam() == Level::kLevel3 ? 2 : 0;
  const KmeansResult gemm_run =
      run_level(GetParam(), ds, gemm_cfg, machine, 0, mprime);
  const KmeansResult chain_run =
      run_level(GetParam(), ds, chain_cfg, machine, 0, mprime);
  expect_bit_identical(gemm_run, ref, "gemm");
  expect_bit_identical(chain_run, ref, "chain");
  // The trajectory must actually exercise the regression: cluster 1 ends
  // up non-empty even though it started coincident and empty.
  EXPECT_EQ(ref.empty_clusters, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllLevels, GemmEngineTest,
                         ::testing::Values(Level::kLevel1, Level::kLevel2,
                                           Level::kLevel3),
                         [](const auto& info) {
                           return std::string("Level") +
                                  std::to_string(static_cast<int>(info.param));
                         });

TEST(GemmEngine, SstepCutsCollectiveRoundsByTheFoldFactor) {
  // Fixed-iteration ungated Level 3 runs: per iteration the assign phase
  // posts one combine per span, so s = 4 must cut assign-phase rounds by
  // exactly 4 while staying byte-identical. tiny(2, 4) has 8 CGs; p = 2
  // makes 4 slice groups of 256 samples each -> 4 tiles of 64 per
  // iteration, folding into exactly 1 span at s = 4.
  const data::Dataset ds = data::make_blobs(1024, 8, 4, 31);
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  KmeansConfig base;
  base.k = 6;
  base.max_iterations = 5;
  base.tolerance = -1;  // fixed length
  base.gate_assign = false;
  base.tile_samples = 64;
  KmeansConfig s1 = base;
  s1.sstep_tiles = 1;
  KmeansConfig s4 = base;
  s4.sstep_tiles = 4;
  const KmeansResult r1 = run_level(Level::kLevel3, ds, s1, machine, 0, 2);
  const KmeansResult r4 = run_level(Level::kLevel3, ds, s4, machine, 0, 2);
  expect_bit_identical(r4, r1, "sstep4 vs sstep1");
  ASSERT_EQ(r1.history.size(), r4.history.size());
  for (std::size_t t = 0; t < r1.history.size(); ++t) {
    // Each iteration: 2 update rounds + assign rounds; the assign part
    // folds by exactly 4 (256 samples/rank / 64 per tile = 4 tiles).
    const std::uint64_t assign1 = r1.history[t].net_rounds - 2;
    const std::uint64_t assign4 = r4.history[t].net_rounds - 2;
    EXPECT_EQ(assign1, 4u * assign4) << "iteration " << t;
    EXPECT_GT(assign4, 0u) << "iteration " << t;
  }
}

}  // namespace
}  // namespace swhkm::core
