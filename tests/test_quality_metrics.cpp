#include <gtest/gtest.h>

#include "core/lloyd.hpp"
#include "core/metrics.hpp"
#include "data/synthetic.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace swhkm::core {
namespace {

// ------------------------------------------------------------------- ARI

TEST(Ari, IdenticalPartitionsScoreOne) {
  const std::vector<std::uint32_t> labels{0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(labels, labels), 1.0);
}

TEST(Ari, RelabelledPartitionStillScoresOne) {
  const std::vector<std::uint32_t> a{0, 0, 1, 1, 2, 2};
  const std::vector<std::uint32_t> b{2, 2, 0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, b), 1.0);
}

TEST(Ari, IndependentPartitionsScoreNearZero) {
  // Labels assigned independently of each other.
  util::Xoshiro256 rng(5);
  std::vector<std::uint32_t> a(4000);
  std::vector<std::uint32_t> b(4000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::uint32_t>(rng.below(4));
    b[i] = static_cast<std::uint32_t>(rng.below(4));
  }
  EXPECT_NEAR(adjusted_rand_index(a, b), 0.0, 0.05);
}

TEST(Ari, PartialOverlapBetweenZeroAndOne) {
  const std::vector<std::uint32_t> a{0, 0, 0, 1, 1, 1};
  const std::vector<std::uint32_t> b{0, 0, 1, 1, 1, 1};
  const double score = adjusted_rand_index(a, b);
  EXPECT_GT(score, 0.0);
  EXPECT_LT(score, 1.0);
}

TEST(Ari, MismatchedLengthsRejected) {
  EXPECT_THROW(adjusted_rand_index({0}, {0, 1}), swhkm::InvalidArgument);
}

TEST(Ari, KmeansOnBlobsRecoversTruth) {
  const data::Dataset ds = data::make_blobs(600, 8, 4, 13);
  std::vector<std::uint32_t> truth(ds.n());
  for (std::size_t i = 0; i < ds.n(); ++i) {
    truth[i] = static_cast<std::uint32_t>(i % 4);
  }
  KmeansConfig config;
  config.k = 4;
  config.max_iterations = 30;
  const KmeansResult result = lloyd_serial(ds, config);
  EXPECT_GT(adjusted_rand_index(result.assignments, truth), 0.99);
}

// ------------------------------------------------------------- silhouette

TEST(Silhouette, SeparatedBlobsScoreHigh) {
  const data::Dataset ds = data::make_blobs(300, 6, 3, 21);
  KmeansConfig config;
  config.k = 3;
  config.max_iterations = 20;
  const KmeansResult result = lloyd_serial(ds, config);
  EXPECT_GT(silhouette_sampled(ds, result.assignments, 3), 0.7);
}

TEST(Silhouette, RandomLabelsScoreNearZeroOrBelow) {
  const data::Dataset ds = data::make_uniform(300, 6, 3);
  util::Xoshiro256 rng(9);
  std::vector<std::uint32_t> random_labels(ds.n());
  for (auto& label : random_labels) {
    label = static_cast<std::uint32_t>(rng.below(3));
  }
  EXPECT_LT(silhouette_sampled(ds, random_labels, 3), 0.1);
}

TEST(Silhouette, DeterministicForSeed) {
  const data::Dataset ds = data::make_blobs(400, 5, 3, 2);
  KmeansConfig config;
  config.k = 3;
  const KmeansResult result = lloyd_serial(ds, config);
  const double a = silhouette_sampled(ds, result.assignments, 3, 128, 7);
  const double b = silhouette_sampled(ds, result.assignments, 3, 128, 7);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Silhouette, NeedsTwoClusters) {
  const data::Dataset ds = data::make_uniform(10, 2, 1);
  EXPECT_THROW(
      silhouette_sampled(ds, std::vector<std::uint32_t>(10, 0), 1),
      swhkm::InvalidArgument);
}

// --------------------------------------------------------- Davies-Bouldin

TEST(DaviesBouldin, TightClustersScoreLow) {
  const data::Dataset tight = data::make_blobs(300, 6, 3, 5, 50.0, 0.1);
  const data::Dataset loose = data::make_blobs(300, 6, 3, 5, 50.0, 5.0);
  KmeansConfig config;
  config.k = 3;
  config.max_iterations = 20;
  const KmeansResult rt = lloyd_serial(tight, config);
  const KmeansResult rl = lloyd_serial(loose, config);
  const double db_tight = davies_bouldin(tight, rt.centroids, rt.assignments);
  const double db_loose = davies_bouldin(loose, rl.centroids, rl.assignments);
  EXPECT_LT(db_tight, db_loose);
  EXPECT_GT(db_tight, 0.0);
}

TEST(DaviesBouldin, NeedsTwoClusters) {
  const data::Dataset ds = data::make_uniform(10, 2, 1);
  util::Matrix centroids(1, 2);
  EXPECT_THROW(
      davies_bouldin(ds, centroids, std::vector<std::uint32_t>(10, 0)),
      swhkm::InvalidArgument);
}

TEST(DaviesBouldin, EmptyClustersIgnored) {
  const data::Dataset ds = data::make_blobs(100, 4, 2, 8);
  KmeansConfig config;
  config.k = 2;
  const KmeansResult result = lloyd_serial(ds, config);
  // Add a phantom third centroid nothing is assigned to.
  util::Matrix padded(3, 4);
  for (std::size_t j = 0; j < 2; ++j) {
    for (std::size_t u = 0; u < 4; ++u) {
      padded.at(j, u) = result.centroids.at(j, u);
    }
  }
  padded.at(2, 0) = 1e6f;
  const double with_phantom = davies_bouldin(ds, padded, result.assignments);
  const double without =
      davies_bouldin(ds, result.centroids, result.assignments);
  EXPECT_NEAR(with_phantom, without, 1e-9);
}

}  // namespace
}  // namespace swhkm::core
