#include <gtest/gtest.h>

#include "simarch/topology.hpp"
#include "util/error.hpp"

namespace swhkm::simarch {
namespace {

TEST(Topology, CgToNodeMapping) {
  const MachineConfig config = MachineConfig::sw26010(4);
  const Topology topo(config);
  EXPECT_EQ(topo.node_of_cg(0), 0u);
  EXPECT_EQ(topo.node_of_cg(3), 0u);
  EXPECT_EQ(topo.node_of_cg(4), 1u);
  EXPECT_EQ(topo.node_of_cg(15), 3u);
}

TEST(Topology, SupernodeMapping) {
  const MachineConfig config = MachineConfig::sw26010(512);
  const Topology topo(config);
  EXPECT_EQ(topo.supernode_of_node(0), 0u);
  EXPECT_EQ(topo.supernode_of_node(255), 0u);
  EXPECT_EQ(topo.supernode_of_node(256), 1u);
  // CG 1024 sits on node 256, the second supernode.
  EXPECT_EQ(topo.supernode_of_cg(1024), 1u);
  EXPECT_TRUE(topo.same_supernode(0, 1023));
  EXPECT_FALSE(topo.same_supernode(1023, 1024));
}

TEST(Topology, SelfMessageIsFree) {
  const MachineConfig config = MachineConfig::sw26010(2);
  const Topology topo(config);
  EXPECT_EQ(topo.message_time(1 << 20, 3, 3), 0.0);
}

TEST(Topology, MessageTiersOrdered) {
  const MachineConfig config = MachineConfig::sw26010(512);
  const Topology topo(config);
  const std::size_t bytes = 1 << 20;
  const double same_node = topo.message_time(bytes, 0, 1);
  const double same_supernode = topo.message_time(bytes, 0, 4);
  const double cross_supernode = topo.message_time(bytes, 0, 1024);
  EXPECT_LT(same_node, same_supernode);
  EXPECT_LT(same_supernode, cross_supernode);
}

TEST(Topology, AllreduceTrivialCases) {
  const MachineConfig config = MachineConfig::sw26010(2);
  const Topology topo(config);
  EXPECT_EQ(topo.allreduce_time(1024, 0, 0), 0.0);
  EXPECT_EQ(topo.allreduce_time(1024, 0, 1), 0.0);
}

TEST(Topology, AllreduceGrowsWithBytes) {
  const MachineConfig config = MachineConfig::sw26010(16);
  const Topology topo(config);
  EXPECT_LT(topo.allreduce_time(1024, 0, 64), topo.allreduce_time(1 << 24, 0, 64));
}

TEST(Topology, AllreduceGrowsWithLogOfRanks) {
  const MachineConfig config = MachineConfig::sw26010(64);
  const Topology topo(config);
  const double t4 = topo.allreduce_time(1 << 16, 0, 4);
  const double t64 = topo.allreduce_time(1 << 16, 0, 64);
  EXPECT_LT(t4, t64);
  // log2(64)/log2(4) = 3, but stage costs differ by tier; stay within 8x.
  EXPECT_LT(t64, 8 * t4);
}

TEST(Topology, NonPowerOfTwoPaysFoldStage) {
  const MachineConfig config = MachineConfig::sw26010(16);
  const Topology topo(config);
  EXPECT_GT(topo.allreduce_time(1 << 16, 0, 48),
            topo.allreduce_time(1 << 16, 0, 32));
}

TEST(Topology, RangeBeyondMachineThrows) {
  const MachineConfig config = MachineConfig::sw26010(1);
  const Topology topo(config);
  EXPECT_THROW(topo.allreduce_time(16, 0, 5), swhkm::InvalidArgument);
}

TEST(Topology, PackedRangeBeatsScatteredSet) {
  // The paper's placement advice: a CG group inside one supernode
  // communicates faster than one striped across supernodes.
  const MachineConfig config = MachineConfig::sw26010(512);
  const Topology topo(config);
  const double packed = topo.allreduce_time(1 << 20, 0, 16);
  std::vector<std::size_t> scattered;
  for (std::size_t i = 0; i < 16; ++i) {
    scattered.push_back(i * 128);  // stride across both supernodes
  }
  EXPECT_LT(packed, topo.allreduce_time(1 << 20, scattered));
}

TEST(Topology, StridedOverloadMatchesContiguous) {
  const MachineConfig config = MachineConfig::sw26010(8);
  const Topology topo(config);
  std::vector<std::size_t> contiguous{4, 5, 6, 7};
  EXPECT_DOUBLE_EQ(topo.allreduce_time(4096, 4, 4),
                   topo.allreduce_time(4096, contiguous));
}

TEST(Topology, BroadcastCheaperThanAllreduce) {
  const MachineConfig config = MachineConfig::sw26010(32);
  const Topology topo(config);
  EXPECT_LE(topo.broadcast_time(1 << 20, 0, 128),
            topo.allreduce_time(1 << 20, 0, 128));
}

TEST(Topology, MinCombineIsLatencyBound) {
  const MachineConfig config = MachineConfig::sw26010(512);
  const Topology topo(config);
  const double t = topo.min_combine_time(0, 16);
  // 16 bytes over 4 stages: essentially stage latencies only.
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 1e-3);
}

TEST(Topology, SupernodeCrossingRaisesGroupCombine) {
  // A 16-CG group fully inside supernode 0 vs one straddling the boundary.
  const MachineConfig config = MachineConfig::sw26010(512);
  const Topology topo(config);
  const double inside = topo.allreduce_time(16, 0, 16);
  const double straddling = topo.allreduce_time(16, 1016, 16);
  EXPECT_GT(straddling, inside);
}

TEST(Topology, HierChargeDegeneratesToFlatInsideOneSupernode) {
  // 128 nodes = half a supernode: the hierarchical schedule has no inter
  // stage, so its charge must equal the flat model EXACTLY — seconds and
  // all — with zero crossing bytes. This is what keeps every perf-model
  // regression at <= 256 nodes byte-stable.
  const MachineConfig config = MachineConfig::sw26010(128);
  const Topology topo(config);
  const std::size_t xover = config.collective_crossover_bytes();
  for (const std::size_t bytes : {std::size_t{16}, std::size_t{1} << 20}) {
    const CollectiveCharge c =
        topo.hier_allreduce_charge(bytes, 0, config.num_cgs(), xover);
    EXPECT_EQ(c.seconds, topo.allreduce_time(bytes, 0, config.num_cgs()));
    EXPECT_EQ(c.crossing_bytes, 0u);
    EXPECT_EQ(c.algo, CollectiveAlgo::kFlat);
  }
}

TEST(Topology, HierCutsCrossingBytesVsFlat) {
  // 512 nodes = two supernodes. The hierarchical allreduce crosses
  // 2*(S-1)*bytes total; the flat recursive pattern puts every rank's
  // payload through the boundary at its supernode-crossing stages.
  const MachineConfig config = MachineConfig::sw26010(512);
  const Topology topo(config);
  const std::size_t bytes = 1 << 16;
  const CollectiveCharge hier = topo.hier_allreduce_charge(
      bytes, 0, config.num_cgs(), config.collective_crossover_bytes());
  const std::uint64_t flat =
      topo.flat_allreduce_crossing_bytes(bytes, 0, config.num_cgs());
  EXPECT_GT(hier.crossing_bytes, 0u);
  EXPECT_GT(flat, 0u);
  // The issue's acceptance bar is a >= 2x cut; the model clears it with
  // room (the flat pattern pays per crossing stage, the hierarchy once).
  EXPECT_GE(flat, 2 * hier.crossing_bytes);
  EXPECT_GT(hier.intra_rounds, 0u);
  EXPECT_GT(hier.inter_rounds, 0u);
}

TEST(Topology, HierAlgoFlipsAtCrossover) {
  const MachineConfig config = MachineConfig::sw26010(512);
  const Topology topo(config);
  const std::size_t xover = config.collective_crossover_bytes();
  EXPECT_GT(xover, 0u);
  const CollectiveCharge small =
      topo.hier_allreduce_charge(64, 0, config.num_cgs(), xover);
  const CollectiveCharge large =
      topo.hier_allreduce_charge(xover * 2, 0, config.num_cgs(), xover);
  EXPECT_EQ(small.algo, CollectiveAlgo::kBinomialTree);
  EXPECT_EQ(large.algo, CollectiveAlgo::kReduceScatterAllgather);
}

}  // namespace
}  // namespace swhkm::simarch
