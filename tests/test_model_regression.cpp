#include <gtest/gtest.h>

#include "core/planner.hpp"

namespace swhkm::core {
namespace {

using simarch::MachineConfig;

/// Golden pins for the calibrated model at the paper's anchor points.
/// These are NOT paper values — they are this model's current outputs,
/// pinned (at 10% tolerance) so that future edits to the cost model or
/// the planner cannot silently drift the figure reproductions recorded in
/// EXPERIMENTS.md. If a deliberate model change trips these, re-run the
/// benches, re-verify EXPERIMENTS.md's claims, and update the pins.
struct Pin {
  Level level;
  std::uint64_t n, k, d;
  std::size_t nodes;
  double expected_s;
};

class ModelRegression : public ::testing::TestWithParam<Pin> {};

TEST_P(ModelRegression, StaysOnCalibration) {
  const Pin& pin = GetParam();
  const MachineConfig machine = MachineConfig::sw26010(pin.nodes);
  const auto choice =
      best_plan_for_level(pin.level, {pin.n, pin.k, pin.d}, machine);
  ASSERT_TRUE(choice.has_value());
  EXPECT_NEAR(choice->predicted_s(), pin.expected_s, 0.10 * pin.expected_s);
}

INSTANTIATE_TEST_SUITE_P(
    Anchors, ModelRegression,
    ::testing::Values(
        // Fig. 3: Census, k=64, 1 node.
        Pin{Level::kLevel1, 2458285, 64, 68, 1, 0.191987},
        // Fig. 4: Road, k=100000, 256 nodes.
        Pin{Level::kLevel2, 434874, 100000, 4, 256, 0.054815},
        // Fig. 7 anchor points (crossover band).
        Pin{Level::kLevel2, 1265723, 2000, 1536, 128, 0.750809},
        Pin{Level::kLevel3, 1265723, 2000, 1536, 128, 0.752558},
        Pin{Level::kLevel2, 1265723, 2000, 4096, 128, 3.669849},
        Pin{Level::kLevel3, 1265723, 2000, 4096, 128, 1.473814},
        // Fig. 8 end point.
        Pin{Level::kLevel2, 1265723, 131072, 4096, 128, 239.120710},
        Pin{Level::kLevel3, 1265723, 131072, 4096, 128, 97.546467},
        // Fig. 6b headline.
        Pin{Level::kLevel3, 1265723, 2000, 196608, 4096, 5.589171},
        // Table III: Jin et al row.
        Pin{Level::kLevel2, 140000, 500, 90, 1, 0.107581}),
    [](const auto& info) {
      return "L" + std::to_string(static_cast<int>(info.param.level)) + "n" +
             std::to_string(info.param.nodes) + "k" +
             std::to_string(info.param.k) + "d" +
             std::to_string(info.param.d);
    });

}  // namespace
}  // namespace swhkm::core
