#include <gtest/gtest.h>

#include "core/lloyd.hpp"
#include "core/metrics.hpp"
#include "core/yinyang.hpp"
#include "data/synthetic.hpp"

namespace swhkm::core {
namespace {

/// Yinyang's contract: same trajectory as Lloyd (on continuous data, where
/// exact distance ties have probability zero).
void expect_lloyd_identical(const data::Dataset& ds,
                            const KmeansConfig& config) {
  const KmeansResult lloyd = lloyd_serial(ds, config);
  YinyangStats stats;
  const KmeansResult yy = yinyang_serial(ds, config, &stats);
  EXPECT_EQ(yy.iterations, lloyd.iterations);
  EXPECT_EQ(yy.converged, lloyd.converged);
  EXPECT_EQ(assignment_agreement(yy.assignments, lloyd.assignments), 1.0);
  EXPECT_LT(centroid_max_abs_diff(yy.centroids, lloyd.centroids), 1e-5);
  EXPECT_NEAR(yy.inertia, lloyd.inertia, 1e-6 * (1 + lloyd.inertia));
}

TEST(Yinyang, MatchesLloydOnBlobs) {
  const data::Dataset ds = data::make_blobs(500, 10, 6, 42);
  KmeansConfig config;
  config.k = 6;
  config.max_iterations = 25;
  expect_lloyd_identical(ds, config);
}

TEST(Yinyang, MatchesLloydOnUniformNoise) {
  const data::Dataset ds = data::make_uniform(400, 8, 17);
  KmeansConfig config;
  config.k = 20;
  config.max_iterations = 15;
  config.init = InitMethod::kRandom;
  config.seed = 3;
  expect_lloyd_identical(ds, config);
}

TEST(Yinyang, MatchesLloydWithManyGroups) {
  // k = 64 -> t = 6 groups: the group filter does real work.
  const data::Dataset ds = data::make_uniform(600, 6, 23);
  KmeansConfig config;
  config.k = 64;
  config.max_iterations = 12;
  config.init = InitMethod::kRandom;
  expect_lloyd_identical(ds, config);
}

TEST(Yinyang, MatchesLloydOnSurrogates) {
  for (data::Benchmark bench :
       {data::Benchmark::kKeggNetwork, data::Benchmark::kRoadNetwork,
        data::Benchmark::kUsCensus1990}) {
    const data::Dataset ds = data::make_benchmark_surrogate(bench, 300, 96, 5);
    KmeansConfig config;
    config.k = 12;
    config.max_iterations = 10;
    config.init = InitMethod::kRandom;
    expect_lloyd_identical(ds, config);
  }
}

TEST(Yinyang, SkipsEverythingAfterBlobsConverge) {
  // Well-separated blobs converge on the second iteration, whose work the
  // bounds must filter out entirely: exactly the first pass is paid.
  const data::Dataset ds = data::make_blobs(2000, 16, 10, 7);
  KmeansConfig config;
  config.k = 10;
  config.max_iterations = 30;
  YinyangStats stats;
  const KmeansResult result = yinyang_serial(ds, config, &stats);
  ASSERT_TRUE(result.converged);
  ASSERT_GT(result.iterations, 1u);
  const std::uint64_t first_pass = 2000ull * 10;
  EXPECT_EQ(stats.distance_computations, first_pass);
  EXPECT_GE(stats.savings(), 0.5);
}

TEST(Yinyang, SavesSubstantiallyOnSlowConvergence) {
  // Uniform noise converges slowly; across many iterations the filters
  // must still skip a large fraction of Lloyd's distance evaluations.
  const data::Dataset ds = data::make_uniform(1500, 10, 3);
  KmeansConfig config;
  config.k = 40;
  config.max_iterations = 25;
  config.init = InitMethod::kRandom;
  YinyangStats stats;
  const KmeansResult result = yinyang_serial(ds, config, &stats);
  ASSERT_GT(result.iterations, 5u);
  EXPECT_GT(stats.savings(), 0.3);
}

TEST(Yinyang, StatsCountFirstIterationFully) {
  const data::Dataset ds = data::make_uniform(100, 4, 1);
  KmeansConfig config;
  config.k = 8;
  config.max_iterations = 1;
  config.tolerance = -1;
  YinyangStats stats;
  yinyang_serial(ds, config, &stats);
  EXPECT_EQ(stats.distance_computations, 100u * 8u);
  EXPECT_EQ(stats.lloyd_equivalent, 100u * 8u);
  EXPECT_DOUBLE_EQ(stats.savings(), 0.0);
}

TEST(Yinyang, SmallKFallsBackToSingleGroup) {
  // k < 10 -> t = 1: pure global filter, still exact.
  const data::Dataset ds = data::make_blobs(200, 5, 3, 9);
  KmeansConfig config;
  config.k = 3;
  config.max_iterations = 20;
  expect_lloyd_identical(ds, config);
}

TEST(Yinyang, ExplicitStartMatchesLloydFrom) {
  const data::Dataset ds = data::make_uniform(150, 6, 31);
  KmeansConfig config;
  config.k = 9;
  config.max_iterations = 8;
  util::Matrix start(9, 6, 0.5f);
  for (std::size_t j = 0; j < 9; ++j) {
    start.at(j, 0) = static_cast<float>(j) * 0.1f;
  }
  const KmeansResult lloyd = lloyd_serial_from(ds, config, start);
  const KmeansResult yy = yinyang_serial_from(ds, config, start);
  EXPECT_EQ(assignment_agreement(yy.assignments, lloyd.assignments), 1.0);
}

TEST(Yinyang, HistoryMirrorsLloyd) {
  const data::Dataset ds = data::make_blobs(200, 6, 4, 3);
  KmeansConfig config;
  config.k = 4;
  config.max_iterations = 10;
  const KmeansResult lloyd = lloyd_serial(ds, config);
  const KmeansResult yy = yinyang_serial(ds, config);
  ASSERT_EQ(yy.history.size(), lloyd.history.size());
  for (std::size_t i = 0; i < yy.history.size(); ++i) {
    EXPECT_NEAR(yy.history[i].max_centroid_shift,
                lloyd.history[i].max_centroid_shift, 1e-9);
  }
}

}  // namespace
}  // namespace swhkm::core
