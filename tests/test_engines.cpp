#include <gtest/gtest.h>

#include "core/hkmeans.hpp"
#include "util/error.hpp"

namespace swhkm::core {
namespace {

using simarch::MachineConfig;

/// Run `level` and serial Lloyd from the same init and demand identical
/// trajectories (assignments exact, centroids to FP-accumulation slop).
void expect_matches_serial(Level level, const data::Dataset& ds,
                           const KmeansConfig& config,
                           const MachineConfig& machine) {
  const KmeansResult ref = lloyd_serial(ds, config);
  const KmeansResult got = run_level(level, ds, config, machine);
  EXPECT_EQ(got.iterations, ref.iterations) << level_name(level);
  EXPECT_EQ(got.converged, ref.converged) << level_name(level);
  EXPECT_EQ(assignment_agreement(got.assignments, ref.assignments), 1.0)
      << level_name(level);
  EXPECT_LT(centroid_max_abs_diff(got.centroids, ref.centroids), 1e-4)
      << level_name(level);
  EXPECT_NEAR(got.inertia, ref.inertia, 1e-6 * (1.0 + ref.inertia))
      << level_name(level);
}

class EngineLevelTest : public ::testing::TestWithParam<Level> {};

TEST_P(EngineLevelTest, MatchesSerialOnBlobs) {
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  const data::Dataset ds = data::make_blobs(400, 12, 5, 42);
  KmeansConfig config;
  config.k = 5;
  config.max_iterations = 15;
  expect_matches_serial(GetParam(), ds, config, machine);
}

TEST_P(EngineLevelTest, MatchesSerialOnUniformNoise) {
  // Uniform noise exercises many near-tie argmin decisions.
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  const data::Dataset ds = data::make_uniform(300, 6, 7);
  KmeansConfig config;
  config.k = 8;
  config.max_iterations = 8;
  config.init = InitMethod::kRandom;
  config.seed = 3;
  expect_matches_serial(GetParam(), ds, config, machine);
}

TEST_P(EngineLevelTest, MatchesSerialWithKmeansPlusPlus) {
  const MachineConfig machine = MachineConfig::tiny(1, 4, 8192);
  const data::Dataset ds = data::make_blobs(120, 4, 3, 5);
  KmeansConfig config;
  config.k = 3;
  config.init = InitMethod::kPlusPlus;
  config.max_iterations = 10;
  expect_matches_serial(GetParam(), ds, config, machine);
}

TEST_P(EngineLevelTest, KEqualsOne) {
  const MachineConfig machine = MachineConfig::tiny(1, 2, 8192);
  const data::Dataset ds = data::make_uniform(50, 3, 2);
  KmeansConfig config;
  config.k = 1;
  config.max_iterations = 4;
  expect_matches_serial(GetParam(), ds, config, machine);
}

TEST_P(EngineLevelTest, FewerSamplesThanWorkers) {
  // 2 nodes x 2 CGs x 4 CPEs = 16 CPEs but only 5 samples: some flow units
  // stay idle and the result must still be exact.
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  const data::Dataset ds = data::make_uniform(5, 3, 8);
  KmeansConfig config;
  config.k = 2;
  config.max_iterations = 6;
  expect_matches_serial(GetParam(), ds, config, machine);
}

TEST_P(EngineLevelTest, SingleDimension) {
  const MachineConfig machine = MachineConfig::tiny(1, 4, 8192);
  const data::Dataset ds = data::make_uniform(64, 1, 13);
  KmeansConfig config;
  config.k = 3;
  config.max_iterations = 10;
  expect_matches_serial(GetParam(), ds, config, machine);
}

TEST_P(EngineLevelTest, NonDividingShapes) {
  // n, k, d all prime: block ranges and slices are ragged everywhere.
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  const data::Dataset ds = data::make_uniform(97, 13, 3);
  KmeansConfig config;
  config.k = 7;
  config.max_iterations = 7;
  expect_matches_serial(GetParam(), ds, config, machine);
}

TEST_P(EngineLevelTest, ChargesSimulatedTime) {
  const MachineConfig machine = MachineConfig::tiny(1, 4, 8192);
  const data::Dataset ds = data::make_blobs(100, 8, 2, 3);
  KmeansConfig config;
  config.k = 2;
  config.max_iterations = 3;
  config.tolerance = -1;  // force all 3 iterations
  const KmeansResult result = run_level(GetParam(), ds, config, machine);
  EXPECT_GT(result.cost.total_s(), 0.0);
  EXPECT_GT(result.last_iteration_cost.total_s(), 0.0);
  EXPECT_GT(result.cost.compute_s, 0.0);
  EXPECT_GT(result.cost.dma_bytes, 0u);
  // Total across 3 identical-shape iterations ≈ 3x the last one.
  EXPECT_NEAR(result.cost.total_s(),
              3 * result.last_iteration_cost.total_s(),
              0.5 * result.cost.total_s());
  // Every engine moves at least the dataset once per iteration.
  EXPECT_GE(result.cost.dma_bytes,
            3 * ds.n() * ds.d() * machine.elem_bytes);
}

TEST_P(EngineLevelTest, PipelineOnAndOffAreBitIdentical) {
  // The double-buffered tile pipeline is an execution-order change only:
  // trajectories must match the sequential loop bit for bit, and the
  // overlap ledger must record what the shortened critical path saved.
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  const data::Dataset ds = data::make_blobs(300, 10, 4, 11);
  KmeansConfig config;
  config.k = 4;
  config.max_iterations = 10;
  config.tile_samples = 8;  // force several tiles per worker at every level
  for (const bool gate : {false, true}) {
    config.gate_assign = gate;
    config.pipeline_tiles = true;
    const KmeansResult piped = run_level(GetParam(), ds, config, machine);
    config.pipeline_tiles = false;
    const KmeansResult plain = run_level(GetParam(), ds, config, machine);
    EXPECT_EQ(piped.iterations, plain.iterations);
    EXPECT_EQ(assignment_agreement(piped.assignments, plain.assignments),
              1.0);
    EXPECT_EQ(centroid_max_abs_diff(piped.centroids, plain.centroids), 0.0);
    // The sequential model hides nothing; the pipelined one hides tile
    // traffic and is never slower.
    EXPECT_EQ(plain.cost.overlapped_dma_s + plain.cost.overlapped_net_s, 0.0);
    EXPECT_GT(piped.cost.overlapped_dma_s + piped.cost.overlapped_net_s, 0.0);
    EXPECT_LT(piped.cost.total_s(), plain.cost.total_s());
    // Hidden seconds reconcile with the modelled saving. Per rank the
    // ledger is exact; across ranks combine_tallies takes per-field maxima
    // (critical path), and since the GEMM sweep shrank the overlap window
    // below some ranks' tile DMA the hidden share varies by rank — the
    // field-wise max then decomposes only to ppm, not to the last bit.
    EXPECT_NEAR(plain.cost.total_s() - piped.cost.total_s(),
                piped.cost.overlapped_dma_s + piped.cost.overlapped_net_s,
                1e-6 * plain.cost.total_s());
  }
}

TEST_P(EngineLevelTest, FlopAccountingMatches2nkd) {
  const MachineConfig machine = MachineConfig::tiny(1, 4, 8192);
  const data::Dataset ds = data::make_uniform(60, 4, 5);
  KmeansConfig config;
  config.k = 3;
  config.max_iterations = 1;
  config.tolerance = -1;
  const KmeansResult result = run_level(GetParam(), ds, config, machine);
  // Level 3 counts per-slice work; every level must land on 2nkd total.
  EXPECT_EQ(result.cost.flops, 2ull * 60 * 3 * 4);
}

TEST_P(EngineLevelTest, WrongPlanLevelRejected) {
  const MachineConfig machine = MachineConfig::tiny(1, 4, 8192);
  const data::Dataset ds = data::make_uniform(32, 2, 4);
  KmeansConfig config;
  config.k = 2;
  const ProblemShape shape{32, 2, 2};
  const Level other = GetParam() == Level::kLevel1 ? Level::kLevel2
                                                   : Level::kLevel1;
  const PartitionPlan plan = make_plan(other, shape, machine);
  util::Matrix centroids(2, 2);
  switch (GetParam()) {
    case Level::kLevel1:
      EXPECT_THROW(
          run_level1(ds, config, machine, plan, std::move(centroids)),
          swhkm::InvalidArgument);
      break;
    case Level::kLevel2:
      EXPECT_THROW(
          run_level2(ds, config, machine, plan, std::move(centroids)),
          swhkm::InvalidArgument);
      break;
    case Level::kLevel3:
      EXPECT_THROW(
          run_level3(ds, config, machine, plan, std::move(centroids)),
          swhkm::InvalidArgument);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllLevels, EngineLevelTest,
                         ::testing::Values(Level::kLevel1, Level::kLevel2,
                                           Level::kLevel3),
                         [](const auto& info) {
                           return std::string("Level") +
                                  std::to_string(static_cast<int>(info.param));
                         });

// ------------------------------------------------- level-specific shapes

TEST(Level2, ExplicitGroupSizesAllAgree) {
  const MachineConfig machine = MachineConfig::tiny(1, 8, 16384);
  const data::Dataset ds = data::make_blobs(160, 6, 4, 9);
  KmeansConfig config;
  config.k = 4;
  config.max_iterations = 8;
  const KmeansResult ref = lloyd_serial(ds, config);
  for (std::size_t g : {1ul, 2ul, 4ul, 8ul}) {
    const KmeansResult got = run_level(Level::kLevel2, ds, config, machine, g);
    EXPECT_EQ(assignment_agreement(got.assignments, ref.assignments), 1.0)
        << "m_group=" << g;
  }
}

TEST(Level3, ExplicitCgGroupSizesAllAgree) {
  const MachineConfig machine = MachineConfig::tiny(2, 4, 16384);  // 4 CGs
  const data::Dataset ds = data::make_blobs(160, 6, 4, 9);
  KmeansConfig config;
  config.k = 4;
  config.max_iterations = 8;
  const KmeansResult ref = lloyd_serial(ds, config);
  for (std::size_t p : {1ul, 2ul, 4ul}) {
    const KmeansResult got =
        run_level(Level::kLevel3, ds, config, machine, 0, p);
    EXPECT_EQ(assignment_agreement(got.assignments, ref.assignments), 1.0)
        << "m'_group=" << p;
  }
}

TEST(Level3, KSmallerThanGroupLeavesIdleSliceHolders) {
  // k=2 over m'_group=4 CGs: two CGs hold empty slices and must not
  // disturb the argmin.
  const MachineConfig machine = MachineConfig::tiny(2, 4, 16384);
  const data::Dataset ds = data::make_blobs(80, 4, 2, 21);
  KmeansConfig config;
  config.k = 2;
  config.max_iterations = 6;
  const KmeansResult ref = lloyd_serial(ds, config);
  const KmeansResult got = run_level(Level::kLevel3, ds, config, machine, 0, 4);
  EXPECT_EQ(assignment_agreement(got.assignments, ref.assignments), 1.0);
}

TEST(Level1, LdmOverflowCaughtByEngine) {
  // A plan hand-built for a larger LDM must be rejected by the engine's
  // allocator when run against the real machine.
  MachineConfig machine = MachineConfig::tiny(1, 2, 64 * 1024);
  const ProblemShape shape{64, 50, 40};
  PartitionPlan plan = make_plan(Level::kLevel1, shape, machine);
  machine.ldm_bytes = 4096;  // shrink after planning
  const data::Dataset ds = data::make_uniform(64, 40, 3);
  KmeansConfig config;
  config.k = 50;
  util::Matrix centroids(50, 40);
  EXPECT_THROW(run_level1(ds, config, machine, plan, std::move(centroids)),
               swhkm::CapacityError);
}

TEST(Engines, Level2StreamsWhenSliceDoesNotFit) {
  // Tiny LDM forces the streamed layout; result must stay exact.
  const MachineConfig machine = MachineConfig::tiny(1, 4, 2048);
  const data::Dataset ds = data::make_blobs(100, 16, 4, 13);
  KmeansConfig config;
  config.k = 24;
  config.max_iterations = 5;
  const ProblemShape shape{100, 24, 16};
  const PartitionPlan plan = make_plan(Level::kLevel2, shape, machine);
  EXPECT_FALSE(plan.ldm.resident);
  expect_matches_serial(Level::kLevel2, ds, config, machine);
}

TEST(Engines, CostTalliesScaleWithMachineShrink) {
  // Same problem on 1 vs 4 nodes: per-iteration simulated time must drop.
  const data::Dataset ds = data::make_blobs(800, 8, 4, 31);
  KmeansConfig config;
  config.k = 4;
  config.max_iterations = 2;
  config.tolerance = -1;
  // Ungated: the bound gate prunes this workload to zero distance work by
  // the second iteration (compute_s == 0 on both machines), which is
  // covered by the gated-assign tests; this one pins the sweep scaling.
  config.gate_assign = false;
  const KmeansResult small =
      run_level(Level::kLevel1, ds, config, MachineConfig::tiny(1, 4, 8192));
  const KmeansResult large =
      run_level(Level::kLevel1, ds, config, MachineConfig::tiny(4, 4, 8192));
  EXPECT_GT(small.last_iteration_cost.compute_s,
            large.last_iteration_cost.compute_s);
}

}  // namespace
}  // namespace swhkm::core
