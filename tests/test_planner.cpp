#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "util/error.hpp"

namespace swhkm::core {
namespace {

using simarch::MachineConfig;

TEST(Planner, PicksAFeasibleLevel) {
  const MachineConfig machine = MachineConfig::sw26010(16);
  const auto choice = auto_plan({100000, 500, 64}, machine);
  ASSERT_TRUE(choice.has_value());
  EXPECT_TRUE(check_level(choice->plan.level, choice->plan.shape, machine,
                          choice->plan.m_group, choice->plan.mprime_group)
                  .ok);
}

TEST(Planner, AutoPlanIsBestAcrossLevels) {
  const MachineConfig machine = MachineConfig::sw26010(128);
  const ProblemShape shape{1265723, 2000, 1024};
  const auto best = auto_plan(shape, machine);
  ASSERT_TRUE(best.has_value());
  for (Level level : {Level::kLevel1, Level::kLevel2, Level::kLevel3}) {
    const auto per_level = best_plan_for_level(level, shape, machine);
    if (per_level) {
      EXPECT_LE(best->predicted_s(), per_level->predicted_s() * 1.0000001);
    }
  }
}

TEST(Planner, SmallDPrefersLowerLevel) {
  // At Fig. 7's left end Level 2 (or 1) must be chosen over Level 3.
  const MachineConfig machine = MachineConfig::sw26010(128);
  const auto choice = auto_plan({1265723, 2000, 512}, machine);
  ASSERT_TRUE(choice.has_value());
  EXPECT_NE(choice->plan.level, Level::kLevel3);
}

TEST(Planner, HugeDRequiresLevel3) {
  const MachineConfig machine = MachineConfig::sw26010(4096);
  const auto choice = auto_plan({1265723, 2000, 196608}, machine);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->plan.level, Level::kLevel3);
}

TEST(Planner, TinyProblemUsesLevel1) {
  const MachineConfig machine = MachineConfig::sw26010(1);
  const auto choice = auto_plan({65554, 16, 28}, machine);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->plan.level, Level::kLevel1);
}

TEST(Planner, ImpossibleShapeYieldsNothing) {
  const MachineConfig machine = MachineConfig::sw26010(1);
  // d beyond even Level 3's 64*LDM ceiling.
  EXPECT_FALSE(auto_plan({1000, 2, 1000000}, machine).has_value());
}

TEST(Planner, GroupSweepBeatsDefaultGroup) {
  // The sweep must never do worse than the naive smallest-feasible choice.
  const MachineConfig machine = MachineConfig::sw26010(128);
  const ProblemShape shape{1265723, 8192, 4096};
  const auto swept = best_plan_for_level(Level::kLevel3, shape, machine);
  ASSERT_TRUE(swept.has_value());
  const PartitionPlan naive = make_plan(Level::kLevel3, shape, machine);
  const double naive_s = model_iteration(naive, machine).total_s();
  EXPECT_LE(swept->predicted_s(), naive_s * 1.0000001);
}

TEST(Planner, ReportMentionsEveryLevel) {
  const MachineConfig machine = MachineConfig::sw26010(8);
  const std::string report = feasibility_report({100000, 1000, 64}, machine);
  EXPECT_NE(report.find("Level 1"), std::string::npos);
  EXPECT_NE(report.find("Level 2"), std::string::npos);
  EXPECT_NE(report.find("Level 3"), std::string::npos);
  EXPECT_NE(report.find("planner picks"), std::string::npos);
}

TEST(Planner, ReportExplainsInfeasibility) {
  const MachineConfig machine = MachineConfig::sw26010(1);
  const std::string report = feasibility_report({1000, 100000, 4096}, machine);
  EXPECT_NE(report.find("infeasible"), std::string::npos);
}

TEST(Planner, PredictionsSaneForPaperSetups) {
  // Every Table II benchmark must be plannable on the paper's largest
  // configuration except where even Level 3 would not fit.
  const MachineConfig machine = MachineConfig::sw26010(4096);
  EXPECT_TRUE(auto_plan({65554, 256, 28}, machine).has_value());
  EXPECT_TRUE(auto_plan({434874, 10000, 4}, machine).has_value());
  EXPECT_TRUE(auto_plan({2458285, 10000, 68}, machine).has_value());
  EXPECT_TRUE(auto_plan({1265723, 160000, 196608}, machine).has_value());
}

}  // namespace
}  // namespace swhkm::core
