#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>

#include "data/image.hpp"
#include "util/error.hpp"

namespace swhkm::data {
namespace {

TEST(Image, PixelAccess) {
  Image img(4, 3);
  EXPECT_EQ(img.width(), 4u);
  EXPECT_EQ(img.height(), 3u);
  img.set_pixel(2, 1, 10, 20, 30);
  const std::uint8_t* p = img.pixel(2, 1);
  EXPECT_EQ(p[0], 10);
  EXPECT_EQ(p[1], 20);
  EXPECT_EQ(p[2], 30);
}

TEST(Image, PpmRoundtrip) {
  Image img(5, 4);
  for (std::size_t y = 0; y < 4; ++y) {
    for (std::size_t x = 0; x < 5; ++x) {
      img.set_pixel(x, y, static_cast<std::uint8_t>(x * 50),
                    static_cast<std::uint8_t>(y * 60), 7);
    }
  }
  const std::string path = ::testing::TempDir() + "/swhkm_img.ppm";
  save_ppm(img, path);
  const Image back = load_ppm(path);
  EXPECT_EQ(back.width(), 5u);
  EXPECT_EQ(back.height(), 4u);
  EXPECT_EQ(back.raw(), img.raw());
}

TEST(Image, SaveEmptyRejected) {
  EXPECT_THROW(save_ppm(Image(), "/tmp/nope.ppm"), swhkm::InvalidArgument);
}

TEST(Image, LoadRejectsNonPpm) {
  const std::string path = ::testing::TempDir() + "/swhkm_not.ppm";
  std::ofstream(path) << "JPEG??";
  EXPECT_THROW(load_ppm(path), swhkm::InvalidArgument);
}

TEST(Palette, SevenDistinctClassColours) {
  const auto palette = land_cover_palette();
  std::set<std::uint32_t> unique;
  for (const auto& c : palette) {
    unique.insert((c[0] << 16) | (c[1] << 8) | c[2]);
  }
  EXPECT_EQ(unique.size(), 7u);
}

TEST(Scene, DeterministicForSeed) {
  const Image a = make_land_cover_scene(64, 48, 5);
  const Image b = make_land_cover_scene(64, 48, 5);
  EXPECT_EQ(a.raw(), b.raw());
  const Image c = make_land_cover_scene(64, 48, 6);
  EXPECT_NE(a.raw(), c.raw());
}

TEST(Scene, HasSpatialStructure) {
  // A scene is not iid noise: neighbouring pixels are usually similar.
  const Image img = make_land_cover_scene(128, 128, 9);
  std::size_t similar = 0;
  std::size_t total = 0;
  for (std::size_t y = 0; y < 127; ++y) {
    for (std::size_t x = 0; x < 127; x += 7) {
      const std::uint8_t* a = img.pixel(x, y);
      const std::uint8_t* b = img.pixel(x + 1, y);
      const int diff = std::abs(int(a[0]) - b[0]) + std::abs(int(a[1]) - b[1]) +
                       std::abs(int(a[2]) - b[2]);
      similar += diff < 120 ? 1 : 0;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(similar) / total, 0.9);
}

TEST(Patches, GridArithmetic) {
  const Image img = make_land_cover_scene(32, 24, 1);
  const Dataset patches = extract_patches(img, 8, 8);
  EXPECT_EQ(patches.n(), 4u * 3u);       // (32-8)/8+1 x (24-8)/8+1
  EXPECT_EQ(patches.d(), 8u * 8u * 3u);  // = 192
}

TEST(Patches, OverlappingStride) {
  const Image img = make_land_cover_scene(16, 16, 1);
  const Dataset patches = extract_patches(img, 8, 4);
  EXPECT_EQ(patches.n(), 3u * 3u);
}

TEST(Patches, ContentMatchesPixels) {
  Image img(8, 8);
  img.set_pixel(0, 0, 200, 100, 50);
  const Dataset patches = extract_patches(img, 4, 4);
  EXPECT_EQ(patches.sample(0)[0], 200.0f);
  EXPECT_EQ(patches.sample(0)[1], 100.0f);
  EXPECT_EQ(patches.sample(0)[2], 50.0f);
}

TEST(Patches, PatchLargerThanImageRejected) {
  Image img(4, 4);
  EXPECT_THROW(extract_patches(img, 8, 1), swhkm::InvalidArgument);
}

TEST(Patches, PaperShape4096IsSide37Ish) {
  // The paper's d=4096 on 2k x 2k scenes: with RGB patches that's a
  // ~37x37 window (37*37*3 = 4107 ≈ 4096); our API exposes the side
  // directly, so verify the arithmetic holds for a realistic side.
  const Image img = make_land_cover_scene(128, 128, 4);
  const Dataset patches = extract_patches(img, 37, 37);
  EXPECT_EQ(patches.d(), 4107u);
}

TEST(RenderLabels, PaintsClassColours) {
  const std::size_t side = 4;
  const std::size_t stride = 4;
  std::vector<std::uint32_t> labels{0, 4, 3, 6};  // 2x2 patch grid
  const Image img = render_patch_labels(8, 8, side, stride, labels, 7);
  const auto palette = land_cover_palette();
  EXPECT_EQ(img.pixel(0, 0)[0], palette[0][0]);
  EXPECT_EQ(img.pixel(7, 0)[2], palette[4][2]);  // water patch, blue channel
  EXPECT_EQ(img.pixel(0, 7)[1], palette[3][1]);  // forest patch, green
}

TEST(RenderLabels, WrongCountRejected) {
  std::vector<std::uint32_t> labels{0};
  EXPECT_THROW(render_patch_labels(8, 8, 4, 4, labels, 7),
               swhkm::InvalidArgument);
}

TEST(RenderLabels, OutOfRangeLabelRejected) {
  std::vector<std::uint32_t> labels{9, 0, 0, 0};
  EXPECT_THROW(render_patch_labels(8, 8, 4, 4, labels, 7),
               swhkm::InvalidArgument);
}

}  // namespace
}  // namespace swhkm::data
