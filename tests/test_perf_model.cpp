#include <gtest/gtest.h>

#include "core/partition.hpp"
#include "core/perf_model.hpp"
#include "core/planner.hpp"

namespace swhkm::core {
namespace {

using simarch::CostTally;
using simarch::MachineConfig;

CostTally model_for(Level level, const ProblemShape& shape,
                    const MachineConfig& machine, std::size_t g = 0,
                    std::size_t p = 0) {
  return model_iteration(make_plan(level, shape, machine, g, p), machine);
}

TEST(PerfModel, AllComponentsNonNegative) {
  const MachineConfig machine = MachineConfig::sw26010(16);
  const CostTally t = model_for(Level::kLevel2, {100000, 1000, 64}, machine);
  EXPECT_GE(t.sample_read_s, 0.0);
  EXPECT_GE(t.centroid_stream_s, 0.0);
  EXPECT_GT(t.compute_s, 0.0);
  EXPECT_GE(t.mesh_comm_s, 0.0);
  EXPECT_GE(t.net_comm_s, 0.0);
  EXPECT_GT(t.total_s(), 0.0);
}

TEST(PerfModel, FlopCountIsExactly2nkd) {
  const MachineConfig machine = MachineConfig::sw26010(4);
  const ProblemShape shape{12345, 17, 29};
  for (Level level : {Level::kLevel1, Level::kLevel2, Level::kLevel3}) {
    if (!check_level(level, shape, machine).ok) {
      continue;
    }
    const CostTally t = model_for(level, shape, machine);
    EXPECT_EQ(t.flops, 2ull * 12345 * 17 * 29) << level_name(level);
  }
}

TEST(PerfModel, SdcDefenseOverheadIsSmallAndAdditive) {
  const MachineConfig machine = MachineConfig::sw26010(16);
  const ProblemShape shape{100000, 1000, 64};
  for (Level level : {Level::kLevel1, Level::kLevel2, Level::kLevel3}) {
    if (!check_level(level, shape, machine).ok) {
      continue;
    }
    const PartitionPlan plan = make_plan(level, shape, machine);
    const CostTally base = model_iteration(plan, machine);
    const CostTally sdc = sdc_defense_overhead(plan, machine);
    // The armed defense always costs something (checksum chains, scrubs,
    // one extra network round) but must stay a small fraction of the
    // iteration — the always-on-defense argument of DESIGN.md section 13.
    EXPECT_GT(sdc.total_s(), 0.0) << level_name(level);
    EXPECT_LT(sdc.total_s(), base.total_s() * 0.20) << level_name(level);
    EXPECT_EQ(sdc.net_rounds, 1u) << level_name(level);
    EXPECT_GT(sdc.net_bytes, 0u) << level_name(level);
    // model_iteration itself never includes the defense: calling it twice
    // with the same plan stays byte-stable regardless of sdc arming.
    EXPECT_EQ(base.total_s(), model_iteration(plan, machine).total_s())
        << level_name(level);
  }
}

TEST(PerfModel, MoreNodesNeverSlowerLevel3) {
  const ProblemShape shape{1265723, 2000, 196608};
  double prev = 1e300;
  for (std::size_t nodes : {256, 512, 1024, 2048, 4096}) {
    const MachineConfig machine = MachineConfig::sw26010(nodes);
    const auto choice = best_plan_for_level(Level::kLevel3, shape, machine);
    ASSERT_TRUE(choice.has_value()) << nodes;
    EXPECT_LT(choice->predicted_s(), prev) << nodes;
    prev = choice->predicted_s();
  }
}

TEST(PerfModel, HeadlineUnder18Seconds) {
  // The paper's flagship number: <18 s/iteration at d=196608, k=2000 on
  // 4096 nodes (1,064,496 cores).
  const MachineConfig machine = MachineConfig::sw26010(4096);
  const auto choice =
      best_plan_for_level(Level::kLevel3, {1265723, 2000, 196608}, machine);
  ASSERT_TRUE(choice.has_value());
  EXPECT_LT(choice->predicted_s(), 18.0);
  EXPECT_GT(choice->predicted_s(), 0.5);  // and not absurdly fast
}

TEST(PerfModel, Fig7CrossoverExists) {
  // Level 2 wins at small d, Level 3 wins at large d, crossing in the
  // paper's 1.5k-3k band (they report 2560).
  const MachineConfig machine = MachineConfig::sw26010(128);
  auto l2 = [&](std::uint64_t d) {
    return best_plan_for_level(Level::kLevel2, {1265723, 2000, d}, machine)
        ->predicted_s();
  };
  auto l3 = [&](std::uint64_t d) {
    return best_plan_for_level(Level::kLevel3, {1265723, 2000, d}, machine)
        ->predicted_s();
  };
  EXPECT_LT(l2(512), l3(512));
  EXPECT_GT(l2(3072), l3(3072));
}

TEST(PerfModel, Fig8Level3AlwaysWinsAt4096Dims) {
  // "Since the number of d is fixed at 4096, the Level 3 approach actually
  // always outperforms Level 2, with the gap increasing as k increases."
  const MachineConfig machine = MachineConfig::sw26010(128);
  double prev_gap = 0;
  for (std::uint64_t k : {1024ull, 4096ull, 16384ull, 65536ull}) {
    const ProblemShape shape{1265723, k, 4096};
    const double l2 =
        best_plan_for_level(Level::kLevel2, shape, machine)->predicted_s();
    const double l3 =
        best_plan_for_level(Level::kLevel3, shape, machine)->predicted_s();
    EXPECT_GT(l2, l3) << "k=" << k;
    EXPECT_GT(l2 - l3, prev_gap) << "k=" << k;
    prev_gap = l2 - l3;
  }
}

TEST(PerfModel, Fig9Level3WinsAtEveryNodeCount) {
  const ProblemShape shape{1265723, 2000, 4096};
  for (std::size_t nodes : {2, 8, 32, 128, 256}) {
    const MachineConfig machine = MachineConfig::sw26010(nodes);
    const auto l2 = best_plan_for_level(Level::kLevel2, shape, machine);
    const auto l3 = best_plan_for_level(Level::kLevel3, shape, machine);
    ASSERT_TRUE(l2 && l3) << nodes;
    EXPECT_GT(l2->predicted_s(), l3->predicted_s()) << nodes;
  }
}

TEST(PerfModel, Level1LinearInK) {
  // Fig. 3's visual: one-iteration time grows linearly with k. Check the
  // second difference is small relative to the slope.
  const MachineConfig machine = MachineConfig::sw26010(1);
  const std::uint64_t n = 2458285;
  const std::uint64_t d = 68;
  const double t16 = model_for(Level::kLevel1, {n, 16, d}, machine).total_s();
  const double t32 = model_for(Level::kLevel1, {n, 32, d}, machine).total_s();
  const double t64 = model_for(Level::kLevel1, {n, 64, d}, machine).total_s();
  const double slope1 = t32 - t16;
  const double slope2 = (t64 - t32) / 2.0;
  EXPECT_NEAR(slope2, slope1, 0.2 * slope1);
}

TEST(PerfModel, Level2StreamingDominatedByKd) {
  // Level 2's streamed centroid traffic scales with k*d — doubling k at
  // fixed d should roughly double the centroid_stream component.
  const MachineConfig machine = MachineConfig::sw26010(128);
  const CostTally a = model_for(Level::kLevel2, {1265723, 8192, 4096}, machine);
  const CostTally b =
      model_for(Level::kLevel2, {1265723, 16384, 4096}, machine);
  EXPECT_GT(b.centroid_stream_s, 1.8 * a.centroid_stream_s);
  EXPECT_LT(b.centroid_stream_s, 2.2 * a.centroid_stream_s);
}

TEST(PerfModel, PackedPlacementBeatsScattered) {
  // The paper: "we should make a CG group located within a super-node if
  // possible". Scattering a group across supernodes must not be faster.
  const MachineConfig machine = MachineConfig::sw26010(512);
  const PartitionPlan plan =
      make_plan(Level::kLevel3, {1265723, 2000, 196608}, machine, 0, 16);
  const double packed =
      model_iteration(plan, machine, Placement::kPacked).total_s();
  const double scattered =
      model_iteration(plan, machine, Placement::kScattered).total_s();
  EXPECT_LE(packed, scattered);
}

TEST(PerfModel, MismatchedMachineRejected) {
  const MachineConfig m8 = MachineConfig::sw26010(8);
  const MachineConfig m16 = MachineConfig::sw26010(16);
  const PartitionPlan plan = make_plan(Level::kLevel1, {1000, 4, 8}, m8);
  EXPECT_THROW(model_iteration(plan, m16), swhkm::InvalidArgument);
}

TEST(PaperFormulas, Level1MatchesClosedForm) {
  const MachineConfig machine = MachineConfig::sw26010(1);
  const ProblemShape shape{65554, 100, 28};
  const PartitionPlan plan = make_plan(Level::kLevel1, shape, machine);
  const PaperFormulaTimes t = paper_formula_times(plan, machine);
  const double m = 256.0;
  const double expected_read =
      (65554.0 * 28 / m + 100.0 * 28) * 4 / machine.dma_bandwidth;
  EXPECT_NEAR(t.t_read_s, expected_read, expected_read * 1e-9);
  EXPECT_GT(t.t_comm_s, 0.0);
}

TEST(PaperFormulas, AllLevelsProducePositiveTimes) {
  const MachineConfig machine = MachineConfig::sw26010(128);
  const ProblemShape s1{65554, 100, 28};
  const ProblemShape s2{434874, 10000, 4};
  const ProblemShape s3{1265723, 2000, 196608};
  EXPECT_GT(paper_formula_times(make_plan(Level::kLevel1, s1, machine), machine)
                .total_s(),
            0.0);
  EXPECT_GT(paper_formula_times(make_plan(Level::kLevel2, s2, machine), machine)
                .total_s(),
            0.0);
  EXPECT_GT(paper_formula_times(make_plan(Level::kLevel3, s3, machine), machine)
                .total_s(),
            0.0);
}

TEST(PerfModel, TableIIIWithinTwoXOfPaper) {
  // Cross-architecture rows the paper reports for Sunway (Table III).
  // The model should land within 2x of each published per-iteration time —
  // it was calibrated on the aggregate, not per-row.
  struct Row {
    std::uint64_t n, k, d;
    std::size_t nodes;
    double paper_s;
  };
  const Row rows[] = {
      {1000000000, 120, 40, 128, 0.468635}, {1400000, 240, 5, 4, 0.025336},
      {140000, 500, 90, 1, 0.110191},       {2100000, 4, 4, 1, 0.002839},
      {2458285, 10000, 68, 16, 2.424517},
  };
  for (const Row& row : rows) {
    const MachineConfig machine = MachineConfig::sw26010(row.nodes);
    const auto choice = auto_plan({row.n, row.k, row.d}, machine);
    ASSERT_TRUE(choice.has_value());
    EXPECT_LT(choice->predicted_s(), 2.0 * row.paper_s)
        << "n=" << row.n << " k=" << row.k;
    EXPECT_GT(choice->predicted_s(), row.paper_s / 6.0)
        << "n=" << row.n << " k=" << row.k;
  }
}

}  // namespace
}  // namespace swhkm::core
