#include <gtest/gtest.h>

#include <cmath>

#include "core/hkmeans.hpp"
#include "util/error.hpp"

namespace swhkm::core {
namespace {

using simarch::MachineConfig;

TEST(Facade, FitAutoPlansAndClusters) {
  const HierarchicalKmeans km(MachineConfig::tiny(2, 4, 8192));
  const data::Dataset ds = data::make_blobs(300, 10, 4, 77);
  KmeansConfig config;
  config.k = 4;
  config.max_iterations = 20;
  const KmeansResult result = km.fit(ds, config);
  EXPECT_TRUE(result.converged);
  const auto sizes = cluster_sizes(result.assignments, 4);
  for (std::size_t s : sizes) {
    EXPECT_EQ(s, 75u);  // balanced blobs recovered
  }
  EXPECT_GT(result.cost.total_s(), 0.0);
}

TEST(Facade, FitMatchesSerialTrajectory) {
  const HierarchicalKmeans km(MachineConfig::tiny(2, 4, 8192));
  const data::Dataset ds = data::make_uniform(220, 5, 9);
  KmeansConfig config;
  config.k = 6;
  config.max_iterations = 10;
  const KmeansResult serial = lloyd_serial(ds, config);
  const KmeansResult parallel = km.fit(ds, config);
  EXPECT_EQ(assignment_agreement(serial.assignments, parallel.assignments),
            1.0);
}

TEST(Facade, FitLevelForcesLevel) {
  const HierarchicalKmeans km(MachineConfig::tiny(2, 4, 8192));
  const data::Dataset ds = data::make_blobs(100, 6, 2, 5);
  KmeansConfig config;
  config.k = 2;
  config.max_iterations = 10;
  for (Level level : {Level::kLevel1, Level::kLevel2, Level::kLevel3}) {
    const KmeansResult result = km.fit_level(level, ds, config);
    EXPECT_TRUE(result.converged) << level_name(level);
  }
}

TEST(Facade, InfeasibleFitThrows) {
  const HierarchicalKmeans km(MachineConfig::tiny(1, 2, 1024));
  const data::Dataset ds = data::make_uniform(100, 3000, 1);
  KmeansConfig config;
  config.k = 50;
  EXPECT_THROW(km.fit(ds, config), InfeasibleError);
}

TEST(Facade, PlanExposesPrediction) {
  const HierarchicalKmeans km(MachineConfig::sw26010(4096));
  const auto choice = km.plan({1265723, 2000, 196608});
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->plan.level, Level::kLevel3);
  EXPECT_LT(choice->predicted_s(), 18.0);
}

TEST(Facade, InvalidMachineRejectedAtConstruction) {
  MachineConfig machine;
  machine.cpes_per_cg = 0;
  EXPECT_THROW(HierarchicalKmeans{machine}, swhkm::InvalidArgument);
}

TEST(Integration, DatasetRoundtripThroughDiskThenCluster) {
  const data::Dataset original = data::make_blobs(120, 6, 3, 42);
  const std::string path = ::testing::TempDir() + "/swhkm_integration.bin";
  data::save_binary(original, path);
  const data::Dataset loaded = data::load_binary(path);

  const HierarchicalKmeans km(MachineConfig::tiny(1, 4, 8192));
  KmeansConfig config;
  config.k = 3;
  config.max_iterations = 15;
  const KmeansResult a = km.fit(original, config);
  const KmeansResult b = km.fit(loaded, config);
  EXPECT_EQ(a.assignments, b.assignments);
}

TEST(Integration, LandCoverPipelineSegmentsScene) {
  // The Fig. 10 application end-to-end at laptop scale: scene -> patches
  // -> k-means(7) -> label raster.
  const data::Image scene = data::make_land_cover_scene(96, 96, 2018);
  const data::Dataset patches = data::extract_patches(scene, 8, 8);
  ASSERT_EQ(patches.n(), 144u);

  const HierarchicalKmeans km(MachineConfig::tiny(2, 4, 16384));
  KmeansConfig config;
  config.k = 7;
  config.max_iterations = 12;
  config.init = InitMethod::kPlusPlus;
  config.seed = 3;
  const KmeansResult result = km.fit(patches, config);

  // Sanity: more than one class is used and the raster renders.
  const auto sizes = cluster_sizes(result.assignments, 7);
  int used = 0;
  for (std::size_t s : sizes) {
    used += s > 0 ? 1 : 0;
  }
  EXPECT_GE(used, 3);
  const data::Image raster = data::render_patch_labels(
      96, 96, 8, 8, result.assignments, 7);
  EXPECT_EQ(raster.width(), 96u);

  // Spatial coherence: a scene with contiguous regions should yield many
  // same-label patch neighbours.
  std::size_t same = 0;
  for (std::size_t i = 0; i + 1 < 144; ++i) {
    same += result.assignments[i] == result.assignments[i + 1] ? 1 : 0;
  }
  EXPECT_GT(same, 30u);
}

TEST(Integration, PaperBenchmarkSurrogatesClusterOnTinyMachine) {
  const HierarchicalKmeans km(MachineConfig::tiny(2, 4, 32768));
  for (data::Benchmark bench :
       {data::Benchmark::kKeggNetwork, data::Benchmark::kRoadNetwork,
        data::Benchmark::kUsCensus1990, data::Benchmark::kIlsvrc2012}) {
    const data::Dataset ds = data::make_benchmark_surrogate(bench, 200, 192, 4);
    KmeansConfig config;
    config.k = 8;
    config.max_iterations = 5;
    config.init = InitMethod::kRandom;
    const KmeansResult result = km.fit(ds, config);
    EXPECT_EQ(result.assignments.size(), ds.n()) << ds.name();
    EXPECT_TRUE(std::isfinite(result.inertia)) << ds.name();
  }
}

TEST(Integration, SimulatedCostTracksProblemSize) {
  // Doubling n roughly doubles the dominant per-iteration component.
  const HierarchicalKmeans km(MachineConfig::tiny(1, 4, 8192));
  KmeansConfig config;
  config.k = 4;
  config.max_iterations = 1;
  config.tolerance = -1;
  const data::Dataset small = data::make_uniform(200, 8, 5);
  const data::Dataset big = data::make_uniform(400, 8, 5);
  const double t_small = km.fit(small, config).last_iteration_cost.total_s();
  const double t_big = km.fit(big, config).last_iteration_cost.total_s();
  EXPECT_GT(t_big, 1.5 * t_small);
  EXPECT_LT(t_big, 3.0 * t_small);
}

}  // namespace
}  // namespace swhkm::core
