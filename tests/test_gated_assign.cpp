#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "core/hkmeans.hpp"
#include "simarch/trace.hpp"
#include "swmpi/collectives.hpp"
#include "util/error.hpp"

namespace swhkm::core {
namespace {

using simarch::MachineConfig;

/// Bit-for-bit equality: assignments exact and every centroid float
/// identical. The gate only ever *skips* evaluations, so nothing weaker
/// than memcmp is acceptable here.
void expect_bit_identical(const KmeansResult& got, const KmeansResult& ref,
                          const char* label) {
  ASSERT_EQ(got.iterations, ref.iterations) << label;
  EXPECT_EQ(got.assignments, ref.assignments) << label;
  ASSERT_EQ(got.centroids.size(), ref.centroids.size()) << label;
  EXPECT_EQ(std::memcmp(got.centroids.data(), ref.centroids.data(),
                        got.centroids.size() * sizeof(float)),
            0)
      << label;
}

class GatedLevelTest : public ::testing::TestWithParam<Level> {};

TEST_P(GatedLevelTest, PruneRateZeroOnFirstIterationPositiveLater) {
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  const data::Dataset ds = data::make_blobs(400, 12, 5, 42);
  KmeansConfig config;
  config.k = 5;
  config.max_iterations = 15;
  const KmeansResult result = run_level(GetParam(), ds, config, machine);
  ASSERT_FALSE(result.history.empty());
  // Iteration 0 has no bounds yet: every sample sweeps, by construction.
  EXPECT_EQ(result.history[0].prune_rate, 0.0);
  double best_rate = 0;
  for (const IterationStats& it : result.history) {
    EXPECT_GE(it.prune_rate, 0.0);
    EXPECT_LE(it.prune_rate, 1.0);
    best_rate = std::max(best_rate, it.prune_rate);
  }
  // Well-separated blobs converge geometrically; the gate must bite.
  EXPECT_GT(best_rate, 0.5);
  // And the ledger must agree with the gate: savings only come from
  // skipped sweeps.
  EXPECT_GT(result.accel.savings(), 0.0);
  EXPECT_LE(result.accel.distance_computations, result.accel.lloyd_equivalent);
}

TEST_P(GatedLevelTest, BitIdenticalToSerialOnCoincidentTiedPoints) {
  // Adversarial workload: only 6 distinct points, each repeated 32 times,
  // with k = 9 > 6 distinct values. kFirstK seeding then produces
  // *coincident* centroids (exact distance ties on every duplicate), and
  // the run keeps empty clusters alive. The gate's strict upper < lower
  // test must leave every tie-break to the same left-to-right argmin the
  // serial scan uses.
  const std::size_t reps = 32;
  const std::size_t distinct = 6;
  const std::size_t d = 3;
  std::vector<float> values;
  values.reserve(reps * distinct * d);
  for (std::size_t r = 0; r < reps; ++r) {
    for (std::size_t q = 0; q < distinct; ++q) {
      for (std::size_t u = 0; u < d; ++u) {
        values.push_back(static_cast<float>((q * (u + 1)) % distinct));
      }
    }
  }
  const data::Dataset ds(
      "ties", util::Matrix::from_vector(reps * distinct, d, values));
  KmeansConfig config;
  config.k = 9;
  config.max_iterations = 12;
  config.gate_assign = true;
  const KmeansResult ref = lloyd_serial(ds, config);
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  const KmeansResult got = run_level(GetParam(), ds, config, machine);
  expect_bit_identical(got, ref, level_name(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllLevels, GatedLevelTest,
                         ::testing::Values(Level::kLevel1, Level::kLevel2,
                                           Level::kLevel3),
                         [](const auto& info) {
                           return std::string("Level") +
                                  std::to_string(static_cast<int>(info.param));
                         });

TEST(GatedAssign, BoundsResetAcrossCheckpointRestore) {
  // Interrupt a gated engine run at iteration 3, checkpoint, restore, and
  // finish with a fresh engine. The restored leg must re-seed its bounds
  // from a full sweep (stale bounds would mis-gate against the restored
  // centroids) and land bit-identical to the uninterrupted run.
  const data::Dataset ds = data::make_blobs(360, 10, 4, 17);
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  KmeansConfig config;
  config.k = 4;
  config.max_iterations = 9;
  config.tolerance = -1;  // fixed-length legs
  const KmeansResult full = run_level(Level::kLevel1, ds, config, machine);

  KmeansConfig first_leg = config;
  first_leg.max_iterations = 3;
  const KmeansResult part = run_level(Level::kLevel1, ds, first_leg, machine);
  const std::string path = ::testing::TempDir() + "/swhkm_gated_ckpt.bin";
  save_checkpoint(part, path);
  const KmeansResult restored = load_checkpoint(path);

  // Engine restart from the restored centroids.
  KmeansConfig second_leg = config;
  second_leg.max_iterations = config.max_iterations - restored.iterations;
  const PartitionPlan plan = make_plan(
      Level::kLevel1, ProblemShape{ds.n(), config.k, ds.d()}, machine);
  const KmeansResult engine_resumed =
      run_level1(ds, second_leg, machine, plan, restored.centroids);
  ASSERT_EQ(engine_resumed.iterations, second_leg.max_iterations);
  EXPECT_EQ(engine_resumed.assignments, full.assignments);
  EXPECT_EQ(std::memcmp(engine_resumed.centroids.data(),
                        full.centroids.data(),
                        full.centroids.size() * sizeof(float)),
            0);

  // Serial resume_lloyd from the same checkpoint agrees too — the engines
  // and the serial baseline share one trajectory.
  const KmeansResult serial_resumed = resume_lloyd(ds, config, restored);
  ASSERT_EQ(serial_resumed.iterations, full.iterations);
  EXPECT_EQ(serial_resumed.assignments, full.assignments);
  EXPECT_EQ(std::memcmp(serial_resumed.centroids.data(),
                        full.centroids.data(),
                        full.centroids.size() * sizeof(float)),
            0);
}

TEST(GatedAssign, EngineDistancesAtMostSerialHamerly) {
  // The engine gate skips a sample at zero cost; serial Hamerly pays an
  // upper-bound tightening distance for every sample that fails its first
  // check. On a workload that keeps moving, the engine's ledger must not
  // exceed the serial accelerated baseline's.
  const data::Dataset ds = data::make_uniform(600, 8, 11);
  KmeansConfig config;
  config.k = 12;
  config.max_iterations = 12;
  AccelStats hamerly_stats;
  const KmeansResult ref = hamerly_serial(ds, config, &hamerly_stats);
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  const KmeansResult got = run_level(Level::kLevel1, ds, config, machine);
  ASSERT_EQ(got.iterations, ref.iterations);
  EXPECT_EQ(got.accel.lloyd_equivalent, hamerly_stats.lloyd_equivalent);
  EXPECT_LE(got.accel.distance_computations,
            hamerly_stats.distance_computations);
}

TEST(GatedAssign, Level3ChargesCompactedCollectiveVolumes) {
  // Trace-level check of the cost model: the Level 3 argmin collective is
  // charged per *unresolved* sample at 24 bytes across the slice group.
  // The per-iteration accumulator/publish charges are constant, so the
  // net-byte drop from iteration 0 must equal exactly
  // pruned * 24 * (p - 1) * p (every one of the group's p ranks skips the
  // record exchange with its p-1 peers).
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  const std::size_t p = 2;
  const data::Dataset ds = data::make_blobs(300, 8, 4, 23);
  KmeansConfig config;
  config.k = 4;
  config.max_iterations = 8;
  config.tolerance = -1;
  simarch::Trace gated_trace;
  config.trace = &gated_trace;
  const KmeansResult gated = run_level(Level::kLevel3, ds, config, machine,
                                       0, p);
  KmeansConfig ungated_config = config;
  simarch::Trace ungated_trace;
  ungated_config.trace = &ungated_trace;
  ungated_config.gate_assign = false;
  const KmeansResult ungated =
      run_level(Level::kLevel3, ds, ungated_config, machine, 0, p);
  ASSERT_EQ(gated.iterations, ungated.iterations);
  ASSERT_GT(gated.history.size(), 1u);

  double total_rate = 0;
  for (std::size_t t = 1; t < gated.history.size(); ++t) {
    const IterationStats& it = gated.history[t];
    const auto pruned = static_cast<std::uint64_t>(
        std::llround(it.prune_rate * static_cast<double>(ds.n())));
    EXPECT_EQ(gated.history[0].net_bytes - it.net_bytes,
              pruned * sizeof(swmpi::MinLoc2) * (p - 1) * p)
        << "iteration " << t;
    // DMA shrinks with the gate too (resolved samples stream once, into
    // their owner, instead of into every rank of the group).
    if (pruned > 0) {
      EXPECT_LT(it.dma_bytes, gated.history[0].dma_bytes)
          << "iteration " << t;
    }
    total_rate += it.prune_rate;
  }
  ASSERT_GT(total_rate, 0.0) << "workload never pruned; test is vacuous";

  // Iteration 0 sweeps everything, so its DMA matches the ungated engine
  // bit for bit; the collective payload is 8 bytes/sample wider (MinLoc2).
  EXPECT_EQ(gated.history[0].dma_bytes, ungated.history[0].dma_bytes);

  // And the simulated timeline agrees: across the run the gated engine
  // spends strictly less simulated time in the network phase.
  const std::vector<double> gated_phases = gated_trace.phase_totals();
  const std::vector<double> ungated_phases = ungated_trace.phase_totals();
  const auto net = static_cast<std::size_t>(simarch::Phase::kNetComm);
  const auto read = static_cast<std::size_t>(simarch::Phase::kSampleRead);
  EXPECT_LT(gated_phases[read], ungated_phases[read]);
  // Gated records are wider on iteration 0 but compaction wins overall.
  EXPECT_LT(gated_phases[net], ungated_phases[net]);
}

TEST(GatedAssign, ResolveTileSamplesValidatesAgainstLdm) {
  // tiny(1, 4, 2048): 4 CPEs x 2 KiB LDM = 8192 bytes of aggregate
  // scratchpad; with the GEMM sweep off, a 24-byte record caps the tile at
  // 341 samples.
  const MachineConfig machine = MachineConfig::tiny(1, 4, 2048);
  const PartitionPlan plan =
      make_plan(Level::kLevel1, ProblemShape{256, 2, 4}, machine);
  EXPECT_EQ(resolve_tile_samples(256, plan, machine, 1, false), 256u);
  EXPECT_EQ(resolve_tile_samples(341, plan, machine, 1, false), 341u);
  EXPECT_THROW(resolve_tile_samples(342, plan, machine, 1, false),
               InfeasibleError);
  EXPECT_THROW(resolve_tile_samples(0, plan, machine), InfeasibleError);

  // The GEMM sweep's per-sample candidate scratch (60 bytes) + the
  // k_local-double norm cache ride on top: 84 bytes/sample + 16 caps the
  // default-config tile at 97 samples on the same machine.
  EXPECT_EQ(resolve_tile_samples(97, plan, machine), 97u);
  EXPECT_THROW(resolve_tile_samples(98, plan, machine), InfeasibleError);

  // s-step folding multiplies the live record footprint on Level 3 only
  // (the other levels retire each tile's records on the register bus).
  const MachineConfig l3_machine = MachineConfig::tiny(2, 4, 2048);
  const PartitionPlan l3_plan =
      make_plan(Level::kLevel3, ProblemShape{256, 4, 4}, l3_machine, 0, 2);
  EXPECT_EQ(resolve_tile_samples(85, l3_plan, l3_machine, 4, false), 85u);
  EXPECT_THROW(resolve_tile_samples(86, l3_plan, l3_machine, 4, false),
               InfeasibleError);
  EXPECT_EQ(resolve_tile_samples(341, plan, machine, 4, false), 341u);
  EXPECT_THROW(resolve_tile_samples(64, plan, machine, 0, false),
               InfeasibleError);

  // The engines reject through the same path.
  const data::Dataset ds = data::make_blobs(64, 4, 2, 9);
  KmeansConfig config;
  config.k = 2;
  config.max_iterations = 2;
  config.tile_samples = 100000;
  EXPECT_THROW(run_level(Level::kLevel1, ds, config, machine),
               InfeasibleError);
}

TEST(GatedAssign, MinLoc2CombineMatchesSerialTopTwo) {
  // The top-two combine is pure selection, so any fold shape must agree
  // with a serial left-to-right scan — including duplicate distances and
  // index tie-breaks.
  const std::vector<std::pair<double, std::uint64_t>> cases[] = {
      {{3.0, 0}, {1.0, 1}, {2.0, 2}, {1.0, 3}},
      {{5.0, 4}, {5.0, 1}, {5.0, 2}},
      {{2.5, 7}, {0.5, 3}, {0.5, 0}, {9.0, 1}, {0.25, 6}},
      {{1.0, 0}},
  };
  for (const auto& entries : cases) {
    // Reference: the combine is a pure function of the candidate multiset —
    // winner is the lexicographic (value, index) minimum (value ties
    // resolve toward the smaller centroid index, like an ascending-j
    // scan), second is the second-smallest value counting multiplicity.
    std::vector<std::pair<double, std::uint64_t>> sorted(entries);
    std::sort(sorted.begin(), sorted.end());
    swhkm::swmpi::MinLoc2 ref{sorted[0].first, sorted[0].second,
                              sorted.size() > 1
                                  ? sorted[1].first
                                  : std::numeric_limits<double>::max()};
    // Every left-to-right fold of singleton records, plus a two-half tree
    // fold, must match.
    swhkm::swmpi::CombineMinLoc2 combine;
    auto make = [](const std::pair<double, std::uint64_t>& e) {
      return swhkm::swmpi::MinLoc2{e.first, e.second,
                                   std::numeric_limits<double>::max()};
    };
    swhkm::swmpi::MinLoc2 left = make(entries[0]);
    for (std::size_t i = 1; i < entries.size(); ++i) {
      combine(left, make(entries[i]));
    }
    EXPECT_EQ(left.value, ref.value);
    EXPECT_EQ(left.index, ref.index);
    EXPECT_EQ(left.second, ref.second);

    const std::size_t mid = entries.size() / 2;
    if (mid > 0 && mid < entries.size()) {
      swhkm::swmpi::MinLoc2 a = make(entries[0]);
      for (std::size_t i = 1; i < mid; ++i) {
        combine(a, make(entries[i]));
      }
      swhkm::swmpi::MinLoc2 b = make(entries[mid]);
      for (std::size_t i = mid + 1; i < entries.size(); ++i) {
        combine(b, make(entries[i]));
      }
      combine(a, b);
      EXPECT_EQ(a.value, ref.value);
      EXPECT_EQ(a.index, ref.index);
      EXPECT_EQ(a.second, ref.second);
    }
  }
}

}  // namespace
}  // namespace swhkm::core
