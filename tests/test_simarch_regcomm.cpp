#include <gtest/gtest.h>

#include <vector>

#include "simarch/regcomm.hpp"

namespace swhkm::simarch {
namespace {

class RegCommTest : public ::testing::Test {
 protected:
  MachineConfig config_;
  CostTally tally_;
};

TEST_F(RegCommTest, AllreduceSumCombinesBuffers) {
  RegComm reg(config_, tally_);
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{10, 20, 30};
  std::vector<double> c{100, 200, 300};
  std::vector<std::span<double>> bufs{std::span(a), std::span(b),
                                      std::span(c)};
  reg.allreduce_sum(bufs);
  const std::vector<double> expected{111, 222, 333};
  EXPECT_EQ(a, expected);
  EXPECT_EQ(b, expected);
  EXPECT_EQ(c, expected);
}

TEST_F(RegCommTest, AllreduceSumSingleBufferIsNoop) {
  RegComm reg(config_, tally_);
  std::vector<double> a{1, 2};
  std::vector<std::span<double>> bufs{std::span(a)};
  reg.allreduce_sum(bufs);
  EXPECT_EQ(a, (std::vector<double>{1, 2}));
  EXPECT_EQ(tally_.mesh_comm_s, 0.0);
}

TEST_F(RegCommTest, AllreduceSumChargesTimeAndBytes) {
  RegComm reg(config_, tally_);
  std::vector<double> a{1};
  std::vector<double> b{2};
  std::vector<std::span<double>> bufs{std::span(a), std::span(b)};
  reg.allreduce_sum(bufs);
  EXPECT_GT(tally_.mesh_comm_s, 0.0);
  EXPECT_EQ(tally_.reg_bytes, sizeof(double));
}

TEST_F(RegCommTest, MinPairPicksSmallestValue) {
  RegComm reg(config_, tally_);
  std::vector<std::pair<double, std::uint64_t>> contributions{
      {3.0, 1}, {1.0, 2}, {2.0, 3}};
  const auto best = reg.allreduce_min_pair(contributions);
  EXPECT_DOUBLE_EQ(best.first, 1.0);
  EXPECT_EQ(best.second, 2u);
}

TEST_F(RegCommTest, MinPairBreaksTiesTowardLowerIndex) {
  RegComm reg(config_, tally_);
  std::vector<std::pair<double, std::uint64_t>> contributions{
      {1.0, 7}, {1.0, 3}, {1.0, 9}};
  EXPECT_EQ(reg.allreduce_min_pair(contributions).second, 3u);
}

TEST_F(RegCommTest, AllreduceTimeGrowsWithPayload) {
  RegComm reg(config_, tally_);
  EXPECT_LT(reg.allreduce_time(64, 64), reg.allreduce_time(1 << 20, 64));
}

TEST_F(RegCommTest, AllreduceTimeGrowsWithParticipants) {
  RegComm reg(config_, tally_);
  EXPECT_LT(reg.allreduce_time(1024, 2), reg.allreduce_time(1024, 64));
  EXPECT_EQ(reg.allreduce_time(1024, 1), 0.0);
}

TEST_F(RegCommTest, FullMeshUsesFourteenHops) {
  // 8x8 mesh: 7 row hops + 7 column hops, reduce + broadcast.
  RegComm reg(config_, tally_);
  const double t = reg.allreduce_time(0, 64);
  EXPECT_NEAR(t, 2 * 14 * config_.reg_hop_latency, 1e-15);
}

TEST_F(RegCommTest, BroadcastIsHalfAnAllreduce) {
  RegComm reg(config_, tally_);
  EXPECT_NEAR(reg.broadcast_time(4096, 64) * 2, reg.allreduce_time(4096, 64),
              1e-12);
}

TEST_F(RegCommTest, AccountBroadcastCharges) {
  RegComm reg(config_, tally_);
  reg.account_broadcast(512, 8);
  EXPECT_GT(tally_.mesh_comm_s, 0.0);
  EXPECT_EQ(tally_.reg_bytes, 512u * 7);
}

TEST_F(RegCommTest, AccountAllreduceMultipliesTimes) {
  RegComm reg(config_, tally_);
  reg.account_allreduce(16, 8, 1);
  const double one = tally_.mesh_comm_s;
  reg.account_allreduce(16, 8, 9);
  EXPECT_NEAR(tally_.mesh_comm_s, 10 * one, 1e-12);
}

TEST_F(RegCommTest, AccountAllreduceSingleParticipantFree) {
  RegComm reg(config_, tally_);
  reg.account_allreduce(1 << 20, 1, 1000);
  EXPECT_EQ(tally_.mesh_comm_s, 0.0);
}

TEST_F(RegCommTest, PaperClaimRegisterCommBeatsDma) {
  // The paper quotes a 3-4x advantage of register communication over the
  // DMA path for the intra-CG AllReduce. Check the bandwidths embody that.
  EXPECT_GT(config_.reg_bandwidth, config_.dma_bandwidth);
  RegComm reg(config_, tally_);
  const std::size_t bytes = 1 << 20;
  const double reg_time = reg.allreduce_time(bytes, 64);
  const double dma_equiv =
      2.0 * static_cast<double>(bytes) / config_.dma_bandwidth +
      2 * config_.dma_latency;
  EXPECT_LT(reg_time, dma_equiv);
}

}  // namespace
}  // namespace swhkm::simarch
