#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/hkmeans.hpp"
#include "simarch/trace.hpp"
#include "swmpi/fault.hpp"
#include "swmpi/runtime.hpp"
#include "util/error.hpp"
#include "util/fileio.hpp"

namespace swhkm {
namespace {

using core::KmeansConfig;
using core::KmeansResult;
using core::Level;
using core::RecoveryDriver;
using core::RecoveryOptions;
using simarch::MachineConfig;

std::string unique_ckpt(const std::string& tag) {
  return ::testing::TempDir() + "/swhkm_fault_" + tag + ".ckpt";
}

// ------------------------------------------------------------ swmpi layer

TEST(FaultPlanInject, CrashSurfacesAsInjectedFault) {
  swmpi::FaultPlan plan;
  plan.crash(/*rank=*/1, /*iteration=*/3, swmpi::FaultSite::kUpdate);
  EXPECT_THROW(
      swmpi::run_spmd(
          2,
          [&](swmpi::Comm& world) {
            for (std::uint64_t iter = 0; iter < 5; ++iter) {
              world.fault_point(swmpi::FaultSite::kUpdate, iter);
            }
          },
          &plan),
      swmpi::InjectedFault);
  EXPECT_EQ(plan.fired_crashes(), 1u);
}

TEST(FaultPlanInject, OneShotCrashStaysDisarmedOnRetry) {
  swmpi::FaultPlan plan;
  plan.crash(0, 0, swmpi::FaultSite::kAssign);
  EXPECT_THROW(swmpi::run_spmd(
                   1,
                   [&](swmpi::Comm& world) {
                     world.fault_point(swmpi::FaultSite::kAssign, 0);
                   },
                   &plan),
               swmpi::InjectedFault);
  // Same coordinates again: the event already fired, the retry sails
  // through — the semantics the RecoveryDriver's retry loop depends on.
  EXPECT_NO_THROW(swmpi::run_spmd(
      1,
      [&](swmpi::Comm& world) {
        world.fault_point(swmpi::FaultSite::kAssign, 0);
      },
      &plan));
  EXPECT_EQ(plan.fired_crashes(), 1u);
}

TEST(FaultPlanSend, CorruptionIsDeterministicAndOneShot) {
  constexpr std::uint64_t kMask = 0x00000000000000FFull;
  auto run_once = [&] {
    swmpi::FaultPlan plan;
    plan.corrupt_send(/*rank=*/1, /*nth_send=*/1, kMask);
    std::vector<double> received(3, 0.0);
    swmpi::run_spmd(
        2,
        [&](swmpi::Comm& world) {
          if (world.rank() == 1) {
            for (int m = 0; m < 3; ++m) {
              world.send_value<double>(0, 7, 1.5 * (m + 1));
            }
          } else {
            for (int m = 0; m < 3; ++m) {
              received[static_cast<std::size_t>(m)] =
                  world.recv_value<double>(1, 7);
            }
          }
        },
        &plan);
    EXPECT_EQ(plan.fired_corruptions(), 1u);
    return received;
  };
  const std::vector<double> first = run_once();
  const std::vector<double> second = run_once();
  // Byte-for-byte reproducible outcome.
  EXPECT_EQ(std::memcmp(first.data(), second.data(), 3 * sizeof(double)), 0);
  // The frame CRC (computed over the clean payload before the injection
  // hook mutates it) catches the transient corruption on dequeue and the
  // bounded retransmit delivers the retained clean bits: every message
  // arrives intact even though the injection deterministically fired.
  EXPECT_EQ(first[0], 1.5);
  EXPECT_EQ(first[1], 3.0);
  EXPECT_EQ(first[2], 4.5);
}

TEST(FaultPlanSend, DroppedMessageTripsTheWatchdog) {
  swmpi::FaultPlan plan;
  plan.drop_send(/*rank=*/1, /*nth_send=*/0)
      .watchdog(std::chrono::milliseconds(100));
  try {
    swmpi::run_spmd(
        2,
        [&](swmpi::Comm& world) {
          if (world.rank() == 1) {
            world.send_value<int>(0, 3, 42);
          } else {
            (void)world.recv_value<int>(1, 3);
          }
        },
        &plan);
    FAIL() << "stalled recv did not time out";
  } catch (const WatchdogTimeout& timeout) {
    EXPECT_NE(std::string(timeout.what()).find("waited longer"),
              std::string::npos);
  }
  EXPECT_EQ(plan.fired_drops(), 1u);
}

// ---------------------------------------------- mailbox abort regressions

TEST(SwmpiAbort, PeerDeathWhileBlockedNeverDeadlocks) {
  // The classic lost-wakeup shape: three ranks parked in recv while the
  // fourth dies. Looped because the bug class is a race; run under TSan in
  // CI. A deadlock here turns into the 300 s test timeout.
  for (int round = 0; round < 50; ++round) {
    EXPECT_THROW(swmpi::run_spmd(4,
                                 [&](swmpi::Comm& world) {
                                   if (world.rank() == 0) {
                                     throw std::runtime_error("boom");
                                   }
                                   (void)world.recv_bytes(0, 1);
                                 }),
                 std::runtime_error);
  }
}

TEST(SwmpiAbort, SplitRacingAbortNeverDeadlocks) {
  // Rank 0 dies while the others are splitting or already blocked inside
  // the sub-communicator — the abort sweep must reach sub-worlds created
  // before, during, and after the abort (World::aborted closes the
  // register-after-snapshot window).
  for (int round = 0; round < 50; ++round) {
    EXPECT_THROW(
        swmpi::run_spmd(4,
                        [&](swmpi::Comm& world) {
                          if (world.rank() == 0) {
                            throw std::runtime_error("boom");
                          }
                          swmpi::Comm sub = world.split(0, world.rank());
                          (void)sub.recv_bytes(swmpi::kAnySource, 5);
                        }),
        std::runtime_error);
  }
}

// ------------------------------------------------------- atomic file I/O

TEST(AtomicWrite, ThrowingBodyLeavesTargetAndDirectoryClean) {
  const std::string dir = ::testing::TempDir() + "/swhkm_atomic_dir";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/target.txt";
  util::write_file_atomic(path, std::ios::openmode{},
                          [](std::ofstream& file) { file << "first"; });
  EXPECT_THROW(util::write_file_atomic(
                   path, std::ios::openmode{},
                   [](std::ofstream&) { throw Error("writer died"); }),
               Error);
  std::ifstream in(path);
  std::string contents;
  std::getline(in, contents);
  EXPECT_EQ(contents, "first");  // old file intact
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp."),
              std::string::npos)
        << "stale temp file: " << entry.path();
  }
}

// -------------------------------------------------------- recovery driver

KmeansConfig small_config() {
  KmeansConfig config;
  config.k = 4;
  config.max_iterations = 6;
  config.tolerance = -1;  // run all 6 iterations, no early convergence
  config.checkpoint_every = 2;
  return config;
}

class FaultMatrixTest : public ::testing::TestWithParam<Level> {};

TEST_P(FaultMatrixTest, CrashOfAnyRankAtAnySiteRecoversBitIdentically) {
  // The acceptance matrix: crash rank 0 (the collectives' fold owner),
  // rank 1 (a shard owner), and the last rank (a plain worker) at each of
  // the three iteration boundaries, for this level. Crashing at global
  // iteration 2 — the first iteration of the second leg — also exercises
  // the checkpoint reload path. Every recovered run must land on exactly
  // the bits of the uninterrupted run.
  const Level level = GetParam();
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  const data::Dataset ds = data::make_blobs(160, 6, 4, 11);
  const KmeansConfig config = small_config();
  const KmeansResult ref =
      core::HierarchicalKmeans(machine).fit_level(level, ds, config);
  ASSERT_EQ(ref.iterations, 6u);

  const int last = static_cast<int>(machine.num_cgs()) - 1;
  int case_id = 0;
  for (swmpi::FaultSite site :
       {swmpi::FaultSite::kAssign, swmpi::FaultSite::kUpdate,
        swmpi::FaultSite::kCollective}) {
    for (int rank : {0, 1, last}) {
      SCOPED_TRACE(std::string("site=") + swmpi::fault_site_name(site) +
                   " rank=" + std::to_string(rank));
      swmpi::FaultPlan plan;
      plan.crash(rank, /*iteration=*/2, site);
      KmeansConfig faulty = config;
      faulty.fault_plan = &plan;
      RecoveryOptions options;
      options.checkpoint_path = unique_ckpt(
          "matrix_" + std::string(core::level_name(level)) + "_" +
          std::to_string(case_id++));
      RecoveryDriver driver(machine, options);
      const KmeansResult got = driver.run(level, ds, faulty);

      EXPECT_EQ(plan.fired_crashes(), 1u);
      EXPECT_EQ(got.iterations, ref.iterations);
      EXPECT_EQ(got.assignments, ref.assignments);
      EXPECT_EQ(core::centroid_max_abs_diff(got.centroids, ref.centroids),
                0.0);
      EXPECT_DOUBLE_EQ(got.inertia, ref.inertia);

      const core::RecoveryReport& report = driver.report();
      EXPECT_EQ(report.faults, 1u);
      EXPECT_EQ(report.retries, 1u);
      EXPECT_TRUE(report.resumed_from_checkpoint);
      EXPECT_FALSE(report.degraded);
      EXPECT_EQ(report.final_cgs, machine.num_cgs());
      ASSERT_EQ(report.events.size(), 1u);
      EXPECT_EQ(report.events[0].iteration, 2u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllLevels, FaultMatrixTest,
                         ::testing::Values(Level::kLevel1, Level::kLevel2,
                                           Level::kLevel3),
                         [](const auto& info) {
                           return "Level" +
                                  std::to_string(static_cast<int>(info.param));
                         });

TEST(RecoveryDriver, CrashBeforeFirstCheckpointRestartsFromScratch) {
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  const data::Dataset ds = data::make_blobs(160, 6, 4, 11);
  const KmeansConfig config = small_config();
  const KmeansResult ref =
      core::HierarchicalKmeans(machine).fit_level(Level::kLevel1, ds, config);

  swmpi::FaultPlan plan;
  plan.crash(2, /*iteration=*/0, swmpi::FaultSite::kAssign);
  KmeansConfig faulty = config;
  faulty.fault_plan = &plan;
  RecoveryOptions options;
  options.checkpoint_path = unique_ckpt("first_leg");
  RecoveryDriver driver(machine, options);
  const KmeansResult got = driver.run(Level::kLevel1, ds, faulty);

  EXPECT_EQ(got.assignments, ref.assignments);
  EXPECT_EQ(core::centroid_max_abs_diff(got.centroids, ref.centroids), 0.0);
  EXPECT_FALSE(driver.report().resumed_from_checkpoint);
  EXPECT_EQ(driver.report().retries, 1u);
}

TEST(RecoveryDriver, StallRecoveredThroughWatchdog) {
  // Blackhole the first message rank 1 ever sends; some peer stalls until
  // the watchdog converts the silence into a WatchdogTimeout. The drop is
  // one-shot, so the driver's retry completes — bit-identically.
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  const data::Dataset ds = data::make_blobs(160, 6, 4, 11);
  const KmeansConfig config = small_config();
  const KmeansResult ref =
      core::HierarchicalKmeans(machine).fit_level(Level::kLevel1, ds, config);

  swmpi::FaultPlan plan;
  plan.drop_send(1, 0).watchdog(std::chrono::milliseconds(1500));
  KmeansConfig faulty = config;
  faulty.fault_plan = &plan;
  RecoveryOptions options;
  options.checkpoint_path = unique_ckpt("watchdog");
  RecoveryDriver driver(machine, options);
  const KmeansResult got = driver.run(Level::kLevel1, ds, faulty);

  EXPECT_EQ(plan.fired_drops(), 1u);
  EXPECT_EQ(got.assignments, ref.assignments);
  EXPECT_EQ(core::centroid_max_abs_diff(got.centroids, ref.centroids), 0.0);
  EXPECT_EQ(driver.report().faults, 1u);
}

TEST(RecoveryDriver, PermanentFaultDegradesToSmallerTopology) {
  // Rank 3 dies at iteration 0 every time it exists (fires = -1): the
  // 4-CG topology is permanently toxic. With retries exhausted the driver
  // sheds a node, re-plans on 2 CGs — where rank 3 no longer exists — and
  // finishes. The engines are topology-invariant bit-identical, so the
  // degraded run must match a clean run at the final topology exactly.
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  const data::Dataset ds = data::make_blobs(160, 6, 4, 11);
  const KmeansConfig config = small_config();

  swmpi::FaultPlan plan;
  plan.crash(3, /*iteration=*/0, swmpi::FaultSite::kAssign, /*fires=*/-1);
  KmeansConfig faulty = config;
  faulty.fault_plan = &plan;
  RecoveryOptions options;
  options.checkpoint_path = unique_ckpt("degrade");
  options.max_retries = 0;  // degrade on the first failure
  RecoveryDriver driver(machine, options);
  const KmeansResult got = driver.run(Level::kLevel1, ds, faulty);

  const core::RecoveryReport& report = driver.report();
  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.replans, 1u);
  EXPECT_EQ(report.final_cgs, 2u);
  EXPECT_EQ(driver.machine().num_cgs(), 2u);

  const MachineConfig shrunk = MachineConfig::tiny(1, 4, 8192);
  const KmeansResult ref =
      core::HierarchicalKmeans(shrunk).fit_level(Level::kLevel1, ds, config);
  EXPECT_EQ(got.iterations, ref.iterations);
  EXPECT_EQ(got.assignments, ref.assignments);
  EXPECT_EQ(core::centroid_max_abs_diff(got.centroids, ref.centroids), 0.0);
}

TEST(RecoveryDriver, ExhaustedRetriesWithoutDegradationRethrow) {
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  const data::Dataset ds = data::make_blobs(160, 6, 4, 11);
  swmpi::FaultPlan plan;
  plan.crash(0, 0, swmpi::FaultSite::kAssign, /*fires=*/-1);
  KmeansConfig faulty = small_config();
  faulty.fault_plan = &plan;
  RecoveryOptions options;
  options.checkpoint_path = unique_ckpt("give_up");
  options.max_retries = 1;
  options.allow_degradation = false;
  RecoveryDriver driver(machine, options);
  EXPECT_THROW(driver.run(Level::kLevel1, ds, faulty), swmpi::InjectedFault);
  EXPECT_EQ(driver.report().faults, 2u);  // first try + one retry
}

TEST(RecoveryDriver, StatsAndTraceCarryTheFaultStory) {
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  const data::Dataset ds = data::make_blobs(160, 6, 4, 11);
  simarch::Trace trace;
  swmpi::FaultPlan plan;
  plan.crash(1, /*iteration=*/2, swmpi::FaultSite::kUpdate);
  KmeansConfig faulty = small_config();
  faulty.fault_plan = &plan;
  faulty.trace = &trace;
  RecoveryOptions options;
  options.checkpoint_path = unique_ckpt("stats");
  RecoveryDriver driver(machine, options);
  const KmeansResult got = driver.run(Level::kLevel1, ds, faulty);

  // The first iteration of the recovered leg carries the retry count and
  // the wall-clock recovery latency; every other iteration is clean.
  ASSERT_EQ(got.history.size(), 6u);
  EXPECT_EQ(got.history[2].retries, 1u);
  EXPECT_GT(got.history[2].recover_s, 0.0);
  for (std::size_t i = 0; i < got.history.size(); ++i) {
    if (i != 2) {
      EXPECT_EQ(got.history[i].retries, 0u) << i;
      EXPECT_EQ(got.history[i].recover_s, 0.0) << i;
    }
  }
  const auto markers = trace.fault_markers();
  ASSERT_EQ(markers.size(), 1u);
  EXPECT_EQ(markers[0].iteration, 2u);
  EXPECT_GT(markers[0].wall_s, 0.0);
  EXPECT_NE(markers[0].what.find("injected fault"), std::string::npos);
  // The trace's simulated timeline only holds the iterations that landed:
  // global iteration numbering, no duplicates from the failed attempt...
  // the failed attempt's partial rows are indistinguishable by design (the
  // engine records before the collective), so just check the driver's
  // report agrees with the markers.
  EXPECT_EQ(driver.report().faults, markers.size());
  EXPECT_DOUBLE_EQ(driver.report().events[0].wall_s, markers[0].wall_s);
}

}  // namespace
}  // namespace swhkm
