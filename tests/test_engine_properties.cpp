#include <gtest/gtest.h>

#include <tuple>

#include "core/hkmeans.hpp"
#include "util/rng.hpp"

namespace swhkm::core {
namespace {

using simarch::MachineConfig;

/// Property sweep: for every (machine shape, problem shape, seed) cell,
/// every feasible level must reproduce serial Lloyd exactly — assignments
/// bit-equal, centroids within accumulation-order slop — while respecting
/// its LDM budget (enforced by the engines' allocator, so a violation
/// throws and fails the test).
struct Cell {
  std::size_t nodes;
  std::size_t cpes_per_cg;
  std::size_t ldm_bytes;
  std::size_t n;
  std::size_t k;
  std::size_t d;
  std::uint64_t seed;
};

std::string cell_name(const ::testing::TestParamInfo<Cell>& info) {
  const Cell& c = info.param;
  return "nodes" + std::to_string(c.nodes) + "cpe" +
         std::to_string(c.cpes_per_cg) + "ldm" + std::to_string(c.ldm_bytes) +
         "n" + std::to_string(c.n) + "k" + std::to_string(c.k) + "d" +
         std::to_string(c.d) + "s" + std::to_string(c.seed);
}

class ParitySweep : public ::testing::TestWithParam<Cell> {};

TEST_P(ParitySweep, EveryFeasibleLevelMatchesSerial) {
  const Cell& cell = GetParam();
  const MachineConfig machine =
      MachineConfig::tiny(cell.nodes, cell.cpes_per_cg, cell.ldm_bytes);
  const data::Dataset ds = data::make_uniform(cell.n, cell.d, cell.seed);
  KmeansConfig config;
  config.k = cell.k;
  config.max_iterations = 6;
  config.init = InitMethod::kRandom;
  config.seed = cell.seed * 7 + 1;

  const KmeansResult ref = lloyd_serial(ds, config);
  const ProblemShape shape{cell.n, cell.k, cell.d};
  int levels_run = 0;
  for (Level level : {Level::kLevel1, Level::kLevel2, Level::kLevel3}) {
    if (!check_level(level, shape, machine).ok) {
      continue;
    }
    ++levels_run;
    const KmeansResult got = run_level(level, ds, config, machine);
    EXPECT_EQ(assignment_agreement(got.assignments, ref.assignments), 1.0)
        << level_name(level);
    EXPECT_EQ(got.iterations, ref.iterations) << level_name(level);
    EXPECT_LT(centroid_max_abs_diff(got.centroids, ref.centroids), 1e-3)
        << level_name(level);
  }
  EXPECT_GE(levels_run, 1) << "cell ran no level at all";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ParitySweep,
    ::testing::Values(
        // machine variations
        Cell{1, 1, 8192, 120, 4, 6, 1},   // single-CPE CGs
        Cell{1, 4, 8192, 120, 4, 6, 2},
        Cell{3, 4, 8192, 120, 4, 6, 3},   // odd node count
        Cell{1, 8, 8192, 120, 4, 6, 4},
        Cell{2, 2, 4096, 120, 4, 6, 5},   // small LDM
        // problem shape variations
        Cell{2, 4, 8192, 17, 2, 3, 6},    // tiny n
        Cell{2, 4, 8192, 256, 16, 4, 7},  // k saturates small LDM
        Cell{2, 4, 8192, 200, 3, 33, 8},  // d not divisible by CPEs
        Cell{2, 4, 8192, 199, 7, 13, 9},  // all primes
        Cell{2, 4, 8192, 64, 64, 2, 10},  // k == n
        Cell{1, 4, 32768, 150, 5, 80, 11},  // large-ish d, roomy LDM
        Cell{2, 4, 2048, 100, 20, 10, 12},  // forces streamed layouts
        Cell{4, 2, 8192, 333, 9, 5, 13},
        Cell{2, 6, 8192, 150, 11, 9, 14},   // non-power-of-two mesh
        Cell{2, 4, 8192, 500, 2, 2, 15}),
    cell_name);

/// Determinism: running the same engine twice gives bit-identical output
/// even though rank scheduling differs run to run.
class DeterminismSweep : public ::testing::TestWithParam<Level> {};

TEST_P(DeterminismSweep, RepeatRunsIdentical) {
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  const data::Dataset ds = data::make_uniform(150, 8, 77);
  KmeansConfig config;
  config.k = 6;
  config.max_iterations = 5;
  const KmeansResult a = run_level(GetParam(), ds, config, machine);
  const KmeansResult b = run_level(GetParam(), ds, config, machine);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(centroid_max_abs_diff(a.centroids, b.centroids), 0.0);
  EXPECT_EQ(a.iterations, b.iterations);
}

INSTANTIATE_TEST_SUITE_P(AllLevels, DeterminismSweep,
                         ::testing::Values(Level::kLevel1, Level::kLevel2,
                                           Level::kLevel3),
                         [](const auto& info) {
                           return std::string("Level") +
                                  std::to_string(static_cast<int>(info.param));
                         });

/// Cross-slice tie-breaking: centroids at -1 and +1 (seeded from rows 0
/// and 1 via kFirstK) land in *different* slices for m_group=2 /
/// m'_group=2, and every sample at 0 is exactly equidistant to both — the
/// slice argmin combine (MinLoc ordering for Level 3's batched
/// allreduce) must resolve each tie to the smaller global index, like the
/// serial left-to-right scan.
TEST(SliceTieBreak, EqualDistanceAcrossSlicesResolvesToLowerIndex) {
  util::Matrix m(34, 1);
  m.at(0, 0) = -1.0f;
  m.at(1, 0) = 1.0f;  // rows 2..33 stay at exactly 0
  const data::Dataset ds("cross_slice_ties", std::move(m));
  KmeansConfig config;
  config.k = 2;
  config.max_iterations = 1;
  config.tolerance = -1;
  config.init = InitMethod::kFirstK;
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  const KmeansResult ref = lloyd_serial(ds, config);

  // Level 2, two CPEs per slice group: centroid 0 in slice 0, 1 in slice 1.
  const KmeansResult l2 =
      run_level(Level::kLevel2, ds, config, machine, 2);
  EXPECT_EQ(l2.assignments, ref.assignments);
  // Level 3, two CGs per slice group: the tie crosses the group comm.
  const KmeansResult l3 =
      run_level(Level::kLevel3, ds, config, machine, 0, 2);
  EXPECT_EQ(l3.assignments, ref.assignments);
  for (std::size_t i = 2; i < ds.n(); ++i) {
    EXPECT_EQ(l3.assignments[i], 0u) << "tie at sample " << i
                                     << " broke toward the larger index";
  }
}

/// Ragged slices: k smaller than the slice-group size leaves some ranks
/// holding an empty centroid slice — they must contribute the neutral
/// MinLoc (and nothing to the accumulator) without perturbing results.
TEST(RaggedSlices, EmptySliceRanksAreHarmless) {
  const data::Dataset ds = data::make_uniform(120, 3, 21);
  KmeansConfig config;
  config.k = 2;
  config.max_iterations = 6;
  config.init = InitMethod::kRandom;
  config.seed = 9;
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  const KmeansResult ref = lloyd_serial(ds, config);
  const ProblemShape shape{ds.n(), config.k, ds.d()};

  // Level 3 with m'_group = 4 > k = 2: slices 2 and 3 own no centroids.
  ASSERT_TRUE(check_level(Level::kLevel3, shape, machine, 0, 4).ok);
  const KmeansResult l3 =
      run_level(Level::kLevel3, ds, config, machine, 0, 4);
  EXPECT_EQ(l3.assignments, ref.assignments);
  EXPECT_EQ(l3.iterations, ref.iterations);
  EXPECT_LT(centroid_max_abs_diff(l3.centroids, ref.centroids), 1e-4);

  // Level 2 with m_group = 4 > k = 2: CPE slices 2 and 3 are empty.
  ASSERT_TRUE(check_level(Level::kLevel2, shape, machine, 4).ok);
  const KmeansResult l2 =
      run_level(Level::kLevel2, ds, config, machine, 4);
  EXPECT_EQ(l2.assignments, ref.assignments);
  EXPECT_EQ(l2.iterations, ref.iterations);
}

/// Feasibility properties over random shapes: check_level's verdict and
/// make_plan must agree, and plans must respect their machine.
TEST(FeasibilityProperty, CheckAndMakeAgree) {
  util::Xoshiro256 rng(2024);
  const MachineConfig machine = MachineConfig::tiny(2, 4, 4096);
  for (int trial = 0; trial < 200; ++trial) {
    const ProblemShape shape{1 + rng.below(500), 1 + rng.below(64),
                             1 + rng.below(600)};
    for (Level level : {Level::kLevel1, Level::kLevel2, Level::kLevel3}) {
      const Feasibility verdict = check_level(level, shape, machine);
      if (verdict.ok) {
        const PartitionPlan plan = make_plan(level, shape, machine);
        EXPECT_LE(plan.ldm.total_elems, machine.ldm_elems());
        EXPECT_GE(plan.num_flow_units, 1u);
        EXPECT_GE(plan.k_local, 1u);
        EXPECT_GE(plan.d_local, 1u);
      } else {
        EXPECT_THROW(make_plan(level, shape, machine), InfeasibleError);
        EXPECT_FALSE(verdict.reason.empty());
      }
    }
  }
}

/// Model property over random shapes: modelled iteration time is positive
/// and finite for every feasible plan.
TEST(ModelProperty, FiniteAndPositiveEverywhere) {
  util::Xoshiro256 rng(555);
  const MachineConfig machine = MachineConfig::sw26010(8);
  for (int trial = 0; trial < 100; ++trial) {
    const ProblemShape shape{1 + rng.below(3000000), 1 + rng.below(100000),
                             1 + rng.below(300000)};
    const auto choice = auto_plan(shape, machine);
    if (!choice) {
      continue;
    }
    EXPECT_GT(choice->predicted_s(), 0.0);
    EXPECT_TRUE(std::isfinite(choice->predicted_s()));
  }
}

}  // namespace
}  // namespace swhkm::core
