#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <tuple>

#include "swmpi/collectives.hpp"
#include "swmpi/mailbox.hpp"
#include "swmpi/runtime.hpp"
#include "swmpi/spsc_ring.hpp"
#include "util/error.hpp"

namespace swhkm::swmpi {
namespace {

class ExtraCollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(ExtraCollectiveTest, GatherCollectsAtRoot) {
  const int size = GetParam();
  for (int root = 0; root < size; ++root) {
    run_spmd(size, [&](Comm& comm) {
      const std::vector<int> got = gather(comm, root, comm.rank() * 10);
      if (comm.rank() == root) {
        ASSERT_EQ(got.size(), static_cast<std::size_t>(size));
        for (int r = 0; r < size; ++r) {
          EXPECT_EQ(got[r], r * 10);
        }
      } else {
        EXPECT_TRUE(got.empty());
      }
    });
  }
}

TEST_P(ExtraCollectiveTest, ScatterDistributesFromRoot) {
  const int size = GetParam();
  run_spmd(size, [&](Comm& comm) {
    std::vector<double> values;
    if (comm.rank() == 0) {
      for (int r = 0; r < size; ++r) {
        values.push_back(r + 0.5);
      }
    }
    const double mine = scatter(comm, 0, std::span<const double>(values));
    EXPECT_DOUBLE_EQ(mine, comm.rank() + 0.5);
  });
}

TEST_P(ExtraCollectiveTest, AlltoallTransposes) {
  const int size = GetParam();
  run_spmd(size, [&](Comm& comm) {
    // Rank r sends r*100 + q to rank q; so it must receive q*100 + r.
    std::vector<int> sendbuf(static_cast<std::size_t>(size));
    for (int q = 0; q < size; ++q) {
      sendbuf[static_cast<std::size_t>(q)] = comm.rank() * 100 + q;
    }
    const std::vector<int> got =
        alltoall(comm, std::span<const int>(sendbuf));
    for (int q = 0; q < size; ++q) {
      EXPECT_EQ(got[static_cast<std::size_t>(q)], q * 100 + comm.rank());
    }
  });
}

TEST_P(ExtraCollectiveTest, ScanComputesPrefixSums) {
  const int size = GetParam();
  run_spmd(size, [&](Comm& comm) {
    const int prefix = scan(comm, comm.rank() + 1, ops::Plus{});
    EXPECT_EQ(prefix, (comm.rank() + 1) * (comm.rank() + 2) / 2);
  });
}

TEST_P(ExtraCollectiveTest, ScanWithMaxIsRunningMax) {
  const int size = GetParam();
  run_spmd(size, [&](Comm& comm) {
    // Contribution |r - 1|: running max is max(1, r-1... ) computed naively.
    const int mine = std::abs(comm.rank() - 1);
    const int prefix = scan(comm, mine, ops::Max{});
    int expected = 0;
    for (int r = 0; r <= comm.rank(); ++r) {
      expected = std::max(expected, std::abs(r - 1));
    }
    EXPECT_EQ(prefix, expected);
  });
}


TEST_P(ExtraCollectiveTest, SendrecvRingRotation) {
  const int size = GetParam();
  run_spmd(size, [&](Comm& comm) {
    const int right = (comm.rank() + 1) % size;
    const int left = (comm.rank() - 1 + size) % size;
    const std::vector<int> payload{comm.rank() * 7};
    const std::vector<int> got =
        sendrecv(comm, right, std::span<const int>(payload), left);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], left * 7);
  });
}

TEST_P(ExtraCollectiveTest, ReduceScatterSumsBlocks) {
  const int size = GetParam();
  const std::size_t block = 3;
  run_spmd(size, [&](Comm& comm) {
    // Rank r contributes value (r+1) to every slot of every block.
    std::vector<std::int64_t> buf(block * static_cast<std::size_t>(size),
                                  comm.rank() + 1);
    const std::vector<std::int64_t> mine = reduce_scatter(
        comm, std::span<const std::int64_t>(buf), block, ops::Plus{});
    ASSERT_EQ(mine.size(), block);
    const std::int64_t expected = size * (size + 1) / 2;
    for (std::int64_t v : mine) {
      EXPECT_EQ(v, expected);
    }
  });
}

TEST_P(ExtraCollectiveTest, ReduceScatterDistinctBlocks) {
  const int size = GetParam();
  run_spmd(size, [&](Comm& comm) {
    // Block b gets contribution (r+1)*(b+1) from rank r; the reduced
    // block handed to rank r must be block r's total.
    std::vector<std::int64_t> buf(static_cast<std::size_t>(size));
    for (int b = 0; b < size; ++b) {
      buf[static_cast<std::size_t>(b)] =
          static_cast<std::int64_t>(comm.rank() + 1) * (b + 1);
    }
    const std::vector<std::int64_t> mine = reduce_scatter(
        comm, std::span<const std::int64_t>(buf), 1, ops::Plus{});
    const std::int64_t rank_sum = size * (size + 1) / 2;
    EXPECT_EQ(mine[0], rank_sum * (comm.rank() + 1));
  });
}

TEST(ExtraCollectives, ReduceScatterWrongSizeRejected) {
  EXPECT_THROW(run_spmd(2,
                        [](Comm& comm) {
                          std::vector<int> buf(3);  // not 2 * block
                          reduce_scatter(comm, std::span<const int>(buf), 2,
                                         ops::Plus{});
                        }),
               swhkm::Error);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExtraCollectiveTest,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(ExtraCollectives, ScatterWrongCountRejected) {
  EXPECT_THROW(run_spmd(3,
                        [](Comm& comm) {
                          std::vector<int> values(2);  // need 3 at root
                          if (comm.rank() == 0) {
                            scatter(comm, 0, std::span<const int>(values));
                          } else {
                            scatter(comm, 0, std::span<const int>());
                          }
                        }),
               swhkm::Error);
}

TEST(ExtraCollectives, AlltoallWrongCountRejected) {
  EXPECT_THROW(run_spmd(2,
                        [](Comm& comm) {
                          std::vector<int> sendbuf(5);
                          alltoall(comm, std::span<const int>(sendbuf));
                        }),
               swhkm::Error);
}

TEST(ExtraCollectives, MixedSequenceStaysInSync) {
  // Interleave old and new collectives; tag sequencing must hold up.
  run_spmd(4, [](Comm& comm) {
    for (int round = 0; round < 5; ++round) {
      const int prefix = scan(comm, 1, ops::Plus{});
      EXPECT_EQ(prefix, comm.rank() + 1);
      std::vector<int> buf{prefix};
      allreduce_sum(comm, std::span<int>(buf));
      EXPECT_EQ(buf[0], 1 + 2 + 3 + 4);
      const std::vector<int> all = gather(comm, round % 4, buf[0]);
      if (comm.rank() == round % 4) {
        EXPECT_EQ(all.size(), 4u);
      }
      barrier(comm);
    }
  });
}

// ---------------------------------------------------------- SPSC ring

TEST(SpscRing, FifoAndWraparound) {
  SpscRing<int> ring(8);
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));
  // Several laps so head/tail wrap past the capacity repeatedly.
  for (int lap = 0; lap < 5; ++lap) {
    for (int i = 0; i < 8; ++i) {
      int v = lap * 8 + i;
      EXPECT_TRUE(ring.try_push(v));
    }
    int overflow = -1;
    EXPECT_FALSE(ring.try_push(overflow));  // full
    EXPECT_EQ(ring.size_approx(), 8u);
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out, lap * 8 + i);
    }
    EXPECT_FALSE(ring.try_pop(out));
  }
}

TEST(SpscRing, ConcurrentProducerConsumerKeepsFifo) {
  // TSan target: one producer, one consumer, a ring small enough that both
  // sides constantly race on the full/empty edges.
  constexpr int kItems = 20000;
  SpscRing<int> ring(16);
  std::thread producer([&] {
    for (int i = 0; i < kItems;) {
      int v = i;
      if (ring.try_push(v)) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });
  int expect = 0;
  int out = -1;
  while (expect < kItems) {
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, expect);
      ++expect;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_FALSE(ring.try_pop(out));
}

// ------------------------------------------------------ mailbox torture

TEST(MailboxTorture, ConcurrentPushTimeoutAbortRounds) {
  // TSan stress for the lock-free mailbox: two senders race a receiver
  // that alternates short watchdog-style timed pops, with an abort landing
  // mid-stream every other round. Quiet rounds must deliver every message;
  // abort rounds must deliver everything already queued and then fault.
  constexpr int kRounds = 60;
  constexpr int kPerSender = 40;  // < lane capacity: senders never block
  for (int round = 0; round < kRounds; ++round) {
    const bool aborting = (round % 2) == 1;
    Mailbox box(4);
    auto sender = [&](int source) {
      for (int m = 0; m < kPerSender; ++m) {
        try {
          box.push({source, 7, {std::byte{static_cast<unsigned char>(m)}}});
        } catch (const RuntimeFault&) {
          return;  // ring filled after an abort — expected, stop sending
        }
        if (m % 8 == source) {
          std::this_thread::yield();
        }
      }
    };
    std::thread s0(sender, 0);
    std::thread s1(sender, 1);
    std::thread aborter;
    if (aborting) {
      aborter = std::thread([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
        box.abort();
      });
    }
    int delivered = 0;
    int dry_spells = 0;
    bool faulted = false;
    Message out;
    while (delivered < 2 * kPerSender) {
      try {
        if (box.pop_matching_for(kAnySource, 7,
                                 std::chrono::milliseconds(2), out)) {
          ++delivered;
          dry_spells = 0;
        } else {
          // A timed-out pop just means a sender got descheduled; only a
          // sustained dry spell (~1s) is a real loss.
          ASSERT_LT(++dry_spells, 500) << "round " << round << " stuck at "
                                       << delivered;
        }
      } catch (const RuntimeFault&) {
        faulted = true;
        break;
      }
    }
    s0.join();
    s1.join();
    if (aborting) {
      aborter.join();
      // Either every message raced in ahead of the abort, or the abort
      // surfaced as a fault — never a silent shortfall.
      EXPECT_TRUE(faulted || delivered == 2 * kPerSender);
    } else {
      EXPECT_EQ(delivered, 2 * kPerSender);
      EXPECT_FALSE(faulted);
    }
  }
}

TEST(MailboxTorture, StashPreservesPerSourceOrderAcrossSources) {
  // Messages drained while hunting for another source's tag park in the
  // receiver stash; per-source FIFO must survive the detour.
  Mailbox box(4);
  std::thread s0([&] {
    for (int m = 0; m < 10; ++m) {
      box.push({0, m, {}});
    }
  });
  std::thread s1([&] {
    for (int m = 0; m < 10; ++m) {
      box.push({1, m, {}});
    }
  });
  s0.join();
  s1.join();
  // Pop source 1 first (stashing source 0's backlog), then source 0.
  for (int m = 0; m < 10; ++m) {
    const Message got = box.pop_matching(1, m);
    EXPECT_EQ(got.source, 1);
  }
  for (int m = 0; m < 10; ++m) {
    const Message got = box.pop_matching(0, m);
    EXPECT_EQ(got.source, 0);
  }
  EXPECT_EQ(box.pending(), 0u);
}

// ---------------------------------------------------- split allreduce

class SplitAllreduceTest : public ::testing::TestWithParam<int> {};

TEST_P(SplitAllreduceTest, MatchesBlockingAllreduceBitForBit) {
  const int size = GetParam();
  run_spmd(size, [&](Comm& comm) {
    for (int round = 0; round < 4; ++round) {
      // Values whose sum association matters in doubles: any reordering
      // of the fold would move the low bits.
      std::vector<double> split_buf(5);
      std::vector<double> block_buf(5);
      for (std::size_t i = 0; i < split_buf.size(); ++i) {
        split_buf[i] = 1.0 / (comm.rank() + 2.0 + static_cast<double>(i)) +
                       round * 0.125;
        block_buf[i] = split_buf[i];
      }
      SplitAllreduce<double, ops::Plus> op;
      op.start(comm, std::span<double>(split_buf), ops::Plus{});
      EXPECT_TRUE(op.active());
      // A full collective runs while the split op is in flight — tag
      // reservation must keep the two from cross-matching.
      allreduce(comm, std::span<double>(block_buf), ops::Plus{});
      op.finish();
      EXPECT_FALSE(op.active());
      for (std::size_t i = 0; i < split_buf.size(); ++i) {
        EXPECT_EQ(split_buf[i], block_buf[i]) << "element " << i;
      }
    }
  });
}

TEST_P(SplitAllreduceTest, TwoOutstandingOpsRetireInOrder) {
  // The engines' pipeline shape: tile t+1's combine starts before tile
  // t's finishes, so two ops are briefly in flight back-to-back.
  const int size = GetParam();
  run_spmd(size, [&](Comm& comm) {
    std::vector<MinLoc> a(3);
    std::vector<MinLoc> b(3);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = {static_cast<double>((comm.rank() + 1) * (i + 1)),
              static_cast<std::uint64_t>(comm.rank())};
      b[i] = {static_cast<double>(size - comm.rank()) + 0.5 * i,
              static_cast<std::uint64_t>(comm.rank())};
    }
    std::vector<MinLoc> a_ref = a;
    std::vector<MinLoc> b_ref = b;
    SplitAllreduce<MinLoc, ops::Min> op_a;
    SplitAllreduce<MinLoc, ops::Min> op_b;
    op_a.start(comm, std::span<MinLoc>(a), ops::Min{});
    op_b.start(comm, std::span<MinLoc>(b), ops::Min{});
    op_a.finish();
    op_b.finish();
    allreduce_minloc(comm, std::span<MinLoc>(a_ref));
    allreduce_minloc(comm, std::span<MinLoc>(b_ref));
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].value, a_ref[i].value);
      EXPECT_EQ(a[i].index, a_ref[i].index);
      EXPECT_EQ(b[i].value, b_ref[i].value);
      EXPECT_EQ(b[i].index, b_ref[i].index);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, SplitAllreduceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8));

// -------------------------------------------------- deferred combine

class DeferredCombineTest : public ::testing::TestWithParam<int> {};

TEST_P(DeferredCombineTest, FoldedSpanMatchesPerTileCombinesBitForBit) {
  // The s-step contract: claiming several tiles' records into one store
  // and launching a single collective must produce exactly the records
  // that per-tile allreduces would — element-wise, in claim order.
  const int size = GetParam();
  run_spmd(size, [&](Comm& comm) {
    const std::size_t tiles[] = {3, 1, 4};
    std::vector<MinLoc2> ref;
    DeferredCombine<MinLoc2, CombineMinLoc2> dc;
    dc.reserve(8);
    dc.reset();
    std::size_t sample = 0;
    for (const std::size_t count : tiles) {
      std::span<MinLoc2> claim = dc.claim(count);
      std::vector<MinLoc2> tile(count);
      for (std::size_t t = 0; t < count; ++t, ++sample) {
        // Rank-dependent values with deliberate cross-rank ties so the
        // index tie-break matters.
        const double v =
            static_cast<double>((comm.rank() + sample) % 2) + 0.25;
        tile[t] = {v, static_cast<std::uint64_t>(comm.rank() * 100 + sample),
                   std::numeric_limits<double>::max()};
        claim[t] = tile[t];
      }
      // Reference: a blocking per-tile combine of the same records.
      allreduce(comm, std::span<MinLoc2>(tile), CombineMinLoc2{});
      ref.insert(ref.end(), tile.begin(), tile.end());
    }
    EXPECT_EQ(dc.size(), 8u);
    EXPECT_FALSE(dc.launched());
    EXPECT_TRUE(dc.launch(comm, CombineMinLoc2{}));
    EXPECT_TRUE(dc.launched());
    dc.finish();
    EXPECT_FALSE(dc.active());
    const std::span<const MinLoc2> got = dc.records();
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].value, ref[i].value) << "record " << i;
      EXPECT_EQ(got[i].index, ref[i].index) << "record " << i;
      EXPECT_EQ(got[i].second, ref[i].second) << "record " << i;
    }

    // reset() recycles the store for the next span.
    dc.reset();
    EXPECT_EQ(dc.size(), 0u);
    EXPECT_FALSE(dc.launched());
  });
}

TEST_P(DeferredCombineTest, EmptySpanSkipsTheCollective) {
  // A fully-gated span claims nothing; launch() must not touch the
  // network (every rank skips symmetrically) and finish() must be a
  // harmless no-op — this is what lets the engines charge zero rounds.
  const int size = GetParam();
  run_spmd(size, [&](Comm& comm) {
    DeferredCombine<MinLoc, ops::Min> dc;
    dc.reset();
    EXPECT_FALSE(dc.launch(comm, ops::Min{}));
    EXPECT_TRUE(dc.launched());
    EXPECT_FALSE(dc.active());
    dc.finish();
    EXPECT_TRUE(dc.records().empty());
    // The comm stays in sync: a normal collective right after agrees.
    std::vector<int> buf{1};
    allreduce_sum(comm, std::span<int>(buf));
    EXPECT_EQ(buf[0], size);
  });
}

TEST(DeferredCombine, ClaimAfterLaunchRejected) {
  run_spmd(1, [](Comm& comm) {
    DeferredCombine<MinLoc, ops::Min> dc;
    dc.reset();
    dc.claim(2);
    dc.launch(comm, ops::Min{});
    EXPECT_THROW(dc.claim(1), swhkm::Error);
    dc.finish();
    dc.reset();  // legal again after finish
    dc.claim(1);
    dc.launch(comm, ops::Min{});
    dc.finish();
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, DeferredCombineTest,
                         ::testing::Values(1, 2, 3, 5, 8));

// ------------------------------- hierarchical schedule property suite

/// Association-sensitive deterministic value: magnitudes spread over ~12
/// binary orders so any change in the FP fold order moves the result bits.
double hier_spread(int rank, std::size_t i) {
  const int e = static_cast<int>(
                    (i * 13 + static_cast<std::size_t>(rank) * 7) % 25) -
                12;
  return std::ldexp(1.0 + 0.001 * static_cast<double>(i) +
                        0.01 * static_cast<double>(rank),
                    e);
}

template <typename T>
std::vector<std::byte> to_bytes(const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::byte> b(v.size() * sizeof(T));
  if (!b.empty()) {
    std::memcpy(b.data(), v.data(), b.size());
  }
  return b;
}

/// Run `body` on `world` ranks under (schedule, spec) and collect each
/// rank's serialized result, so a flat-schedule reference run and a
/// hierarchical run of the same body can be compared bit for bit.
template <typename Fn>
std::vector<std::vector<std::byte>> run_under_schedule(
    int world, CollectiveSchedule sched, const HierarchySpec& spec,
    Fn&& body) {
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(world));
  const ScopedCollectiveSchedule guard(sched, spec);
  run_spmd(world, [&](Comm& comm) {
    out[static_cast<std::size_t>(comm.rank())] = body(comm);
  });
  return out;
}

/// (world size, ranks_per_group selector); selector 0 means "the whole
/// world in one group". Covers non-pow2 worlds, groups that do not divide
/// the world (3), degenerate one-rank groups (the flat pattern expressed
/// hierarchically), and a single all-rank group (no inter stage).
class HierScheduleTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  int world() const { return std::get<0>(GetParam()); }
  HierarchySpec spec(std::size_t crossover_bytes) const {
    const int sel = std::get<1>(GetParam());
    return {sel == 0 ? world() : sel, crossover_bytes};
  }
  /// Compare a flat reference run of `body` against hierarchical runs at
  /// each crossover, so both inter algorithms (binomial tree and
  /// reduce_scatter+allgather) are forced regardless of payload size.
  template <typename Fn>
  void expect_hier_matches_flat(Fn&& body, const char* what) {
    const auto flat =
        run_under_schedule(world(), CollectiveSchedule::kFlat, {}, body);
    for (const std::size_t xover :
         {std::size_t{0}, std::size_t{64},
          std::numeric_limits<std::size_t>::max()}) {
      const auto hier = run_under_schedule(
          world(), CollectiveSchedule::kHierarchical, spec(xover), body);
      EXPECT_EQ(flat, hier)
          << what << " world=" << world() << " rpg="
          << spec(xover).ranks_per_group << " xover=" << xover;
    }
  }
};

TEST_P(HierScheduleTest, AllreduceDoublesMatchesFlatBitForBit) {
  // 3 doubles (24 B) sit below the 64-byte crossover, 16 (128 B) above —
  // one payload per inter algorithm at that spec, and the 0/max extremes
  // force the other algorithm onto each payload too.
  for (const std::size_t len : {std::size_t{3}, std::size_t{16}}) {
    expect_hier_matches_flat(
        [len](Comm& comm) {
          std::vector<double> buf(len);
          for (std::size_t i = 0; i < len; ++i) {
            buf[i] = hier_spread(comm.rank(), i);
          }
          allreduce(comm, std::span<double>(buf), ops::Plus{});
          return to_bytes(buf);
        },
        "allreduce");
  }
}

TEST_P(HierScheduleTest, Minloc2MatchesFlat) {
  expect_hier_matches_flat(
      [](Comm& comm) {
        std::vector<MinLoc2> buf(7);
        for (std::size_t i = 0; i < buf.size(); ++i) {
          // Cross-rank ties on value so the index tie-break and the
          // runner-up tracking both matter.
          buf[i] = {static_cast<double>(
                        (static_cast<std::size_t>(comm.rank()) + i) % 3) +
                        0.25,
                    static_cast<std::uint64_t>(comm.rank()) * 100 + i,
                    std::numeric_limits<double>::max()};
        }
        allreduce_minloc2(comm, std::span<MinLoc2>(buf));
        return to_bytes(buf);
      },
      "minloc2");
}

TEST_P(HierScheduleTest, ReduceScatterRangesMatchesFlat) {
  // 23 elements: ragged block ranges over every world here, empty ranges
  // once the world outgrows the payload.
  expect_hier_matches_flat(
      [](Comm& comm) {
        const std::size_t total = 23;
        std::vector<double> buf(total);
        for (std::size_t i = 0; i < total; ++i) {
          buf[i] = hier_spread(comm.rank(), i);
        }
        std::vector<std::size_t> offsets(
            static_cast<std::size_t>(comm.size()) + 1);
        for (int r = 0; r <= comm.size(); ++r) {
          offsets[static_cast<std::size_t>(r)] =
              static_cast<std::size_t>(r) * total /
              static_cast<std::size_t>(comm.size());
        }
        return to_bytes(reduce_scatter_ranges(
            comm, std::span<const double>(buf.data(), buf.size()),
            std::span<const std::size_t>(offsets.data(), offsets.size()),
            ops::Plus{}));
      },
      "reduce_scatter_ranges");
}

TEST_P(HierScheduleTest, AllgathervMatchesFlat) {
  expect_hier_matches_flat(
      [](Comm& comm) {
        // Ragged contributions with rank-0's (and every 4th) empty.
        const auto rank = static_cast<std::size_t>(comm.rank());
        std::vector<std::uint64_t> mine(rank % 4);
        for (std::size_t i = 0; i < mine.size(); ++i) {
          mine[i] = rank * 1000 + i;
        }
        return to_bytes(allgatherv(
            comm, std::span<const std::uint64_t>(mine.data(), mine.size())));
      },
      "allgatherv");
}

TEST_P(HierScheduleTest, SplitAllreduceMatchesFlat) {
  expect_hier_matches_flat(
      [](Comm& comm) {
        std::vector<double> buf(9);
        for (std::size_t i = 0; i < buf.size(); ++i) {
          buf[i] = hier_spread(comm.rank(), i);
        }
        SplitAllreduce<double, ops::Plus> op;
        op.start(comm, std::span<double>(buf), ops::Plus{});
        op.finish();
        return to_bytes(buf);
      },
      "split_allreduce");
}

TEST_P(HierScheduleTest, DeferredCombineMatchesFlat) {
  expect_hier_matches_flat(
      [](Comm& comm) {
        DeferredCombine<MinLoc2, CombineMinLoc2> dc;
        dc.reserve(6);
        dc.reset();
        std::size_t sample = 0;
        for (const std::size_t count :
             {std::size_t{2}, std::size_t{1}, std::size_t{3}}) {
          std::span<MinLoc2> claim = dc.claim(count);
          for (std::size_t t = 0; t < count; ++t, ++sample) {
            claim[t] = {
                static_cast<double>(
                    (static_cast<std::size_t>(comm.rank()) + sample) % 2) +
                    0.25,
                static_cast<std::uint64_t>(comm.rank()) * 100 + sample,
                std::numeric_limits<double>::max()};
          }
        }
        dc.launch(comm, CombineMinLoc2{});
        dc.finish();
        const std::span<const MinLoc2> got = dc.records();
        return to_bytes(std::vector<MinLoc2>(got.begin(), got.end()));
      },
      "deferred_combine");
}

INSTANTIATE_TEST_SUITE_P(Shapes, HierScheduleTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5, 8,
                                                              16),
                                            ::testing::Values(1, 3, 0)));

TEST(HierSchedule, ScopedGuardInstallsAndRestores) {
  const CollectiveSchedule before = default_collective_schedule();
  const HierarchySpec before_spec = default_hierarchy_spec();
  {
    const ScopedCollectiveSchedule guard(CollectiveSchedule::kHierarchical,
                                         {4, 99});
    EXPECT_EQ(default_collective_schedule(),
              CollectiveSchedule::kHierarchical);
    EXPECT_EQ(default_hierarchy_spec().ranks_per_group, 4);
    EXPECT_EQ(default_hierarchy_spec().crossover_bytes, 99u);
  }
  EXPECT_EQ(default_collective_schedule(), before);
  EXPECT_EQ(default_hierarchy_spec().ranks_per_group,
            before_spec.ranks_per_group);
  EXPECT_EQ(default_hierarchy_spec().crossover_bytes,
            before_spec.crossover_bytes);
}

}  // namespace
}  // namespace swhkm::swmpi
