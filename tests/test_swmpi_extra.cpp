#include <gtest/gtest.h>

#include "swmpi/collectives.hpp"
#include "swmpi/runtime.hpp"
#include "util/error.hpp"

namespace swhkm::swmpi {
namespace {

class ExtraCollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(ExtraCollectiveTest, GatherCollectsAtRoot) {
  const int size = GetParam();
  for (int root = 0; root < size; ++root) {
    run_spmd(size, [&](Comm& comm) {
      const std::vector<int> got = gather(comm, root, comm.rank() * 10);
      if (comm.rank() == root) {
        ASSERT_EQ(got.size(), static_cast<std::size_t>(size));
        for (int r = 0; r < size; ++r) {
          EXPECT_EQ(got[r], r * 10);
        }
      } else {
        EXPECT_TRUE(got.empty());
      }
    });
  }
}

TEST_P(ExtraCollectiveTest, ScatterDistributesFromRoot) {
  const int size = GetParam();
  run_spmd(size, [&](Comm& comm) {
    std::vector<double> values;
    if (comm.rank() == 0) {
      for (int r = 0; r < size; ++r) {
        values.push_back(r + 0.5);
      }
    }
    const double mine = scatter(comm, 0, std::span<const double>(values));
    EXPECT_DOUBLE_EQ(mine, comm.rank() + 0.5);
  });
}

TEST_P(ExtraCollectiveTest, AlltoallTransposes) {
  const int size = GetParam();
  run_spmd(size, [&](Comm& comm) {
    // Rank r sends r*100 + q to rank q; so it must receive q*100 + r.
    std::vector<int> sendbuf(static_cast<std::size_t>(size));
    for (int q = 0; q < size; ++q) {
      sendbuf[static_cast<std::size_t>(q)] = comm.rank() * 100 + q;
    }
    const std::vector<int> got =
        alltoall(comm, std::span<const int>(sendbuf));
    for (int q = 0; q < size; ++q) {
      EXPECT_EQ(got[static_cast<std::size_t>(q)], q * 100 + comm.rank());
    }
  });
}

TEST_P(ExtraCollectiveTest, ScanComputesPrefixSums) {
  const int size = GetParam();
  run_spmd(size, [&](Comm& comm) {
    const int prefix = scan(comm, comm.rank() + 1, ops::Plus{});
    EXPECT_EQ(prefix, (comm.rank() + 1) * (comm.rank() + 2) / 2);
  });
}

TEST_P(ExtraCollectiveTest, ScanWithMaxIsRunningMax) {
  const int size = GetParam();
  run_spmd(size, [&](Comm& comm) {
    // Contribution |r - 1|: running max is max(1, r-1... ) computed naively.
    const int mine = std::abs(comm.rank() - 1);
    const int prefix = scan(comm, mine, ops::Max{});
    int expected = 0;
    for (int r = 0; r <= comm.rank(); ++r) {
      expected = std::max(expected, std::abs(r - 1));
    }
    EXPECT_EQ(prefix, expected);
  });
}


TEST_P(ExtraCollectiveTest, SendrecvRingRotation) {
  const int size = GetParam();
  run_spmd(size, [&](Comm& comm) {
    const int right = (comm.rank() + 1) % size;
    const int left = (comm.rank() - 1 + size) % size;
    const std::vector<int> payload{comm.rank() * 7};
    const std::vector<int> got =
        sendrecv(comm, right, std::span<const int>(payload), left);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], left * 7);
  });
}

TEST_P(ExtraCollectiveTest, ReduceScatterSumsBlocks) {
  const int size = GetParam();
  const std::size_t block = 3;
  run_spmd(size, [&](Comm& comm) {
    // Rank r contributes value (r+1) to every slot of every block.
    std::vector<std::int64_t> buf(block * static_cast<std::size_t>(size),
                                  comm.rank() + 1);
    const std::vector<std::int64_t> mine = reduce_scatter(
        comm, std::span<const std::int64_t>(buf), block, ops::Plus{});
    ASSERT_EQ(mine.size(), block);
    const std::int64_t expected = size * (size + 1) / 2;
    for (std::int64_t v : mine) {
      EXPECT_EQ(v, expected);
    }
  });
}

TEST_P(ExtraCollectiveTest, ReduceScatterDistinctBlocks) {
  const int size = GetParam();
  run_spmd(size, [&](Comm& comm) {
    // Block b gets contribution (r+1)*(b+1) from rank r; the reduced
    // block handed to rank r must be block r's total.
    std::vector<std::int64_t> buf(static_cast<std::size_t>(size));
    for (int b = 0; b < size; ++b) {
      buf[static_cast<std::size_t>(b)] =
          static_cast<std::int64_t>(comm.rank() + 1) * (b + 1);
    }
    const std::vector<std::int64_t> mine = reduce_scatter(
        comm, std::span<const std::int64_t>(buf), 1, ops::Plus{});
    const std::int64_t rank_sum = size * (size + 1) / 2;
    EXPECT_EQ(mine[0], rank_sum * (comm.rank() + 1));
  });
}

TEST(ExtraCollectives, ReduceScatterWrongSizeRejected) {
  EXPECT_THROW(run_spmd(2,
                        [](Comm& comm) {
                          std::vector<int> buf(3);  // not 2 * block
                          reduce_scatter(comm, std::span<const int>(buf), 2,
                                         ops::Plus{});
                        }),
               swhkm::Error);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExtraCollectiveTest,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(ExtraCollectives, ScatterWrongCountRejected) {
  EXPECT_THROW(run_spmd(3,
                        [](Comm& comm) {
                          std::vector<int> values(2);  // need 3 at root
                          if (comm.rank() == 0) {
                            scatter(comm, 0, std::span<const int>(values));
                          } else {
                            scatter(comm, 0, std::span<const int>());
                          }
                        }),
               swhkm::Error);
}

TEST(ExtraCollectives, AlltoallWrongCountRejected) {
  EXPECT_THROW(run_spmd(2,
                        [](Comm& comm) {
                          std::vector<int> sendbuf(5);
                          alltoall(comm, std::span<const int>(sendbuf));
                        }),
               swhkm::Error);
}

TEST(ExtraCollectives, MixedSequenceStaysInSync) {
  // Interleave old and new collectives; tag sequencing must hold up.
  run_spmd(4, [](Comm& comm) {
    for (int round = 0; round < 5; ++round) {
      const int prefix = scan(comm, 1, ops::Plus{});
      EXPECT_EQ(prefix, comm.rank() + 1);
      std::vector<int> buf{prefix};
      allreduce_sum(comm, std::span<int>(buf));
      EXPECT_EQ(buf[0], 1 + 2 + 3 + 4);
      const std::vector<int> all = gather(comm, round % 4, buf[0]);
      if (comm.rank() == round % 4) {
        EXPECT_EQ(all.size(), 4u);
      }
      barrier(comm);
    }
  });
}

}  // namespace
}  // namespace swhkm::swmpi
