#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <iterator>

#include "data/dataset.hpp"
#include "data/io.hpp"
#include "data/synthetic.hpp"
#include "util/error.hpp"

namespace swhkm::data {
namespace {

// ---------------------------------------------------------------- dataset

TEST(Dataset, ShapeAccessors) {
  Dataset ds("x", util::Matrix(5, 3, 1.0f));
  EXPECT_EQ(ds.n(), 5u);
  EXPECT_EQ(ds.d(), 3u);
  EXPECT_EQ(ds.name(), "x");
  EXPECT_FALSE(ds.empty());
}

TEST(Dataset, DimensionMeans) {
  util::Matrix m = util::Matrix::from_vector(2, 2, {1, 3, 3, 5});
  Dataset ds("x", std::move(m));
  const auto means = ds.dimension_means();
  EXPECT_DOUBLE_EQ(means[0], 2.0);
  EXPECT_DOUBLE_EQ(means[1], 4.0);
}

TEST(Dataset, BoundingBox) {
  util::Matrix m = util::Matrix::from_vector(3, 1, {-1, 5, 2});
  Dataset ds("x", std::move(m));
  const auto [lo, hi] = ds.bounding_box();
  EXPECT_EQ(lo[0], -1.0f);
  EXPECT_EQ(hi[0], 5.0f);
}

TEST(Dataset, InfoCarriesShape) {
  Dataset ds("named", util::Matrix(7, 2));
  const DatasetInfo info = ds.info(3);
  EXPECT_EQ(info.name, "named");
  EXPECT_EQ(info.n, 7u);
  EXPECT_EQ(info.d, 2u);
  EXPECT_EQ(info.k, 3u);
  EXPECT_EQ(info.element_count(), 14u);
}

// ------------------------------------------------------------ Table II

TEST(Benchmarks, TableTwoShapes) {
  // These are the paper's Table II rows verbatim.
  const DatasetInfo kegg = benchmark_info(Benchmark::kKeggNetwork);
  EXPECT_EQ(kegg.n, 65554u);
  EXPECT_EQ(kegg.d, 28u);
  EXPECT_EQ(kegg.k, 256u);

  const DatasetInfo road = benchmark_info(Benchmark::kRoadNetwork);
  EXPECT_EQ(road.n, 434874u);
  EXPECT_EQ(road.d, 4u);
  EXPECT_EQ(road.k, 10000u);

  const DatasetInfo census = benchmark_info(Benchmark::kUsCensus1990);
  EXPECT_EQ(census.n, 2458285u);
  EXPECT_EQ(census.d, 68u);
  EXPECT_EQ(census.k, 10000u);

  const DatasetInfo ilsvrc = benchmark_info(Benchmark::kIlsvrc2012);
  EXPECT_EQ(ilsvrc.n, 1265723u);
  EXPECT_EQ(ilsvrc.d, 196608u);
  EXPECT_EQ(ilsvrc.k, 160000u);
  EXPECT_EQ(ilsvrc.d, 256u * 256u * 3u);  // 256x256 RGB patches
}

TEST(Benchmarks, ListsAllFour) {
  EXPECT_EQ(paper_benchmarks().size(), 4u);
}

// --------------------------------------------------------------- blobs

TEST(Blobs, ShapeAndDeterminism) {
  const Dataset a = make_blobs(100, 6, 4, 9);
  EXPECT_EQ(a.n(), 100u);
  EXPECT_EQ(a.d(), 6u);
  const Dataset b = make_blobs(100, 6, 4, 9);
  EXPECT_EQ(a.samples().flat()[17], b.samples().flat()[17]);
}

TEST(Blobs, SeedsChangeData) {
  const Dataset a = make_blobs(50, 3, 2, 1);
  const Dataset b = make_blobs(50, 3, 2, 2);
  int same = 0;
  for (std::size_t i = 0; i < a.samples().size(); ++i) {
    same += a.samples().flat()[i] == b.samples().flat()[i] ? 1 : 0;
  }
  EXPECT_LT(same, 10);
}

TEST(Blobs, ClustersAreSeparated) {
  // With default separation, same-cluster samples are much closer than
  // cross-cluster ones (memberships are round-robin by construction).
  const Dataset ds = make_blobs(60, 8, 3, 7);
  auto dist = [&](std::size_t a, std::size_t b) {
    double s = 0;
    for (std::size_t u = 0; u < ds.d(); ++u) {
      const double diff = ds.sample(a)[u] - ds.sample(b)[u];
      s += diff * diff;
    }
    return s;
  };
  const double within = dist(0, 3);   // both cluster 0
  const double across = dist(0, 1);   // clusters 0 and 1
  EXPECT_LT(within, across);
}

TEST(Blobs, RejectsZeroShapes) {
  EXPECT_THROW(make_blobs(0, 3, 2, 1), swhkm::InvalidArgument);
  EXPECT_THROW(make_blobs(10, 0, 2, 1), swhkm::InvalidArgument);
  EXPECT_THROW(make_blobs(10, 3, 0, 1), swhkm::InvalidArgument);
}

// --------------------------------------------------------------- uniform

TEST(Uniform, RespectsBounds) {
  const Dataset ds = make_uniform(200, 4, 3, -2.0f, 2.0f);
  const auto [lo, hi] = ds.bounding_box();
  for (std::size_t u = 0; u < 4; ++u) {
    EXPECT_GE(lo[u], -2.0f);
    EXPECT_LT(hi[u], 2.0f);
  }
}

TEST(Uniform, RejectsEmptyInterval) {
  EXPECT_THROW(make_uniform(10, 2, 1, 1.0f, 1.0f), swhkm::InvalidArgument);
}

// ------------------------------------------------------------ surrogates

TEST(Surrogates, KeggIsPositiveSkewed) {
  const Dataset ds = make_kegg_like(500, 11);
  EXPECT_EQ(ds.d(), 28u);
  const auto [lo, hi] = ds.bounding_box();
  for (std::size_t u = 0; u < ds.d(); ++u) {
    EXPECT_GT(lo[u], 0.0f);  // reaction features are positive
  }
  // Skew: mean above median-ish value for a log-normal.
  const auto means = ds.dimension_means();
  EXPECT_GT(means[0], 0.5);
}

TEST(Surrogates, RoadLooksLikeJutland) {
  const Dataset ds = make_road_like(1000, 5);
  EXPECT_EQ(ds.d(), 4u);
  const auto [lo, hi] = ds.bounding_box();
  EXPECT_GT(lo[0], 56.0f);  // latitude band
  EXPECT_LT(hi[0], 58.5f);
  EXPECT_GT(lo[1], 7.5f);  // longitude band
  EXPECT_LT(hi[1], 12.0f);
}

TEST(Surrogates, CensusIsSmallCardinalityCodes) {
  const Dataset ds = make_census_like(300, 2);
  EXPECT_EQ(ds.d(), 68u);
  for (std::size_t i = 0; i < ds.n(); ++i) {
    for (std::size_t u = 0; u < ds.d(); ++u) {
      const float v = ds.sample(i)[u];
      EXPECT_EQ(v, std::floor(v));  // integer codes
      EXPECT_GE(v, 0.0f);
      EXPECT_LT(v, 17.0f);
    }
  }
}

TEST(Surrogates, IlsvrcPatchDimsAndRange) {
  const Dataset ds = make_ilsvrc_like(5, 8, 3);
  EXPECT_EQ(ds.d(), 8u * 8u * 3u);
  const auto [lo, hi] = ds.bounding_box();
  for (std::size_t u = 0; u < ds.d(); ++u) {
    EXPECT_GE(lo[u], 0.0f);
    EXPECT_LE(hi[u], 255.0f);
  }
}

TEST(Surrogates, IlsvrcHasSpatialCorrelation) {
  // Neighbouring pixels correlate far more than distant ones — the
  // low-frequency structure the generator promises.
  const Dataset ds = make_ilsvrc_like(64, 16, 7);
  double near = 0;
  double far = 0;
  for (std::size_t i = 0; i < ds.n(); ++i) {
    const auto x = ds.sample(i);
    near += std::abs(x[0] - x[3]);             // adjacent pixel, same row
    far += std::abs(x[0] - x[15 * 16 * 3]);    // opposite corner
  }
  EXPECT_LT(near, far);
}

TEST(Surrogates, BenchmarkSurrogateCapsShape) {
  const Dataset ds =
      make_benchmark_surrogate(Benchmark::kIlsvrc2012, 100, 3072, 1);
  EXPECT_LE(ds.n(), 100u);
  EXPECT_LE(ds.d(), 3072u);
  const Dataset census =
      make_benchmark_surrogate(Benchmark::kUsCensus1990, 50, 1024, 1);
  EXPECT_EQ(census.n(), 50u);
  EXPECT_EQ(census.d(), 68u);
}

// --------------------------------------------------------------------- io

TEST(Io, BinaryRoundtripIsExact) {
  const Dataset ds = make_blobs(40, 7, 3, 21);
  const std::string path = ::testing::TempDir() + "/swhkm_ds.bin";
  save_binary(ds, path);
  const Dataset back = load_binary(path);
  EXPECT_EQ(back.n(), ds.n());
  EXPECT_EQ(back.d(), ds.d());
  for (std::size_t i = 0; i < ds.samples().size(); ++i) {
    EXPECT_EQ(back.samples().flat()[i], ds.samples().flat()[i]);
  }
}

TEST(Io, LoadBinaryRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/swhkm_garbage.bin";
  std::ofstream(path) << "this is not a dataset at all, not even close";
  EXPECT_THROW(load_binary(path), swhkm::InvalidArgument);
}

TEST(Io, LoadBinaryRejectsTruncation) {
  const Dataset ds = make_blobs(10, 4, 2, 1);
  const std::string path = ::testing::TempDir() + "/swhkm_trunc.bin";
  save_binary(ds, path);
  // Chop the file short.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path, std::ios::binary)
      << contents.substr(0, contents.size() / 2);
  EXPECT_THROW(load_binary(path), swhkm::InvalidArgument);
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(load_binary("/nonexistent/nowhere.bin"),
               swhkm::InvalidArgument);
}

TEST(Io, CsvRoundtripPreservesShape) {
  const Dataset ds = make_uniform(12, 3, 5);
  const std::string path = ::testing::TempDir() + "/swhkm_ds.csv";
  save_csv(ds, path);
  const Dataset back = load_csv(path);
  EXPECT_EQ(back.n(), 12u);
  EXPECT_EQ(back.d(), 3u);
  for (std::size_t i = 0; i < ds.samples().size(); ++i) {
    EXPECT_NEAR(back.samples().flat()[i], ds.samples().flat()[i], 1e-4);
  }
}

TEST(Io, CsvRejectsRaggedRows) {
  const std::string path = ::testing::TempDir() + "/swhkm_ragged.csv";
  std::ofstream(path) << "1,2,3\n4,5\n";
  EXPECT_THROW(load_csv(path), swhkm::InvalidArgument);
}

TEST(Io, CsvRejectsNonNumeric) {
  const std::string path = ::testing::TempDir() + "/swhkm_alpha.csv";
  std::ofstream(path) << "1,banana\n";
  EXPECT_THROW(load_csv(path), swhkm::InvalidArgument);
}

TEST(Io, CsvRejectsEmptyFile) {
  const std::string path = ::testing::TempDir() + "/swhkm_empty.csv";
  std::ofstream(path) << "";
  EXPECT_THROW(load_csv(path), swhkm::InvalidArgument);
}

}  // namespace
}  // namespace swhkm::data
