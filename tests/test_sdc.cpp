// Property suite for the layered SDC defense: transport CRC framing,
// fault-injection coordinates across collective shapes and all three
// engine levels, detector coverage (nothing silently absorbed), and the
// bit-identity of detection-triggered recovery.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

#include "core/hkmeans.hpp"
#include "swmpi/collectives.hpp"
#include "swmpi/fault.hpp"
#include "swmpi/runtime.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace swhkm {
namespace {

using core::KmeansConfig;
using core::KmeansResult;
using core::Level;
using core::RecoveryDriver;
using core::RecoveryOptions;
using simarch::MachineConfig;

// A high-magnitude exponent-bit mask: guaranteed past the ABFT tolerance,
// so "100% detection" is a provable claim rather than a probabilistic one
// (see DESIGN.md §13 — sub-tolerance flips are absorbed without changing
// any selector outcome).
constexpr std::uint64_t kExponentMask = 1ull << 62;

std::string unique_ckpt(const std::string& tag) {
  return ::testing::TempDir() + "/swhkm_sdc_" + tag + ".ckpt";
}

KmeansConfig sdc_config() {
  KmeansConfig config;
  config.k = 4;
  config.max_iterations = 6;
  config.tolerance = -1;  // run all 6 iterations, no early convergence
  config.checkpoint_every = 2;
  config.sdc_checks = true;
  return config;
}

// ------------------------------------------------------- transport layer

TEST(SdcTransport, SubEightBytePayloadCorruptionClampsTheXorWindow) {
  // A 4-byte payload with a full 8-byte mask: only the bytes that exist
  // get XORed (ASan guards the rest). The event still fires.
  swmpi::FaultPlan plan;
  plan.corrupt_send(/*rank=*/0, /*nth_send=*/0, ~0ull);
  std::array<std::byte, 4> buf{std::byte{0x01}, std::byte{0x02},
                               std::byte{0x03}, std::byte{0x04}};
  const swmpi::SendVerdict verdict =
      plan.on_send(0, std::span<std::byte>(buf.data(), buf.size()));
  EXPECT_TRUE(verdict.deliver);
  EXPECT_TRUE(verdict.corrupted);
  EXPECT_FALSE(verdict.persistent);
  EXPECT_EQ(buf[0], std::byte{0xFE});
  EXPECT_EQ(buf[1], std::byte{0xFD});
  EXPECT_EQ(buf[2], std::byte{0xFC});
  EXPECT_EQ(buf[3], std::byte{0xFB});
  EXPECT_EQ(plan.fired_corruptions(), 1u);
}

TEST(SdcTransport, CorruptionOffsetPastPayloadEndMutatesNothing) {
  swmpi::FaultPlan plan;
  plan.corrupt_send(/*rank=*/0, /*nth_send=*/0, ~0ull, /*offset=*/64);
  std::array<std::byte, 4> buf{std::byte{0x11}, std::byte{0x22},
                               std::byte{0x33}, std::byte{0x44}};
  const swmpi::SendVerdict verdict =
      plan.on_send(0, std::span<std::byte>(buf.data(), buf.size()));
  EXPECT_TRUE(verdict.corrupted);  // fired, just with an empty window
  EXPECT_EQ(buf[0], std::byte{0x11});
  EXPECT_EQ(buf[3], std::byte{0x44});
  EXPECT_EQ(plan.fired_corruptions(), 1u);
}

TEST(SdcTransport, SubEightByteEndToEndCorruptionIsHealedByTheFrameCrc) {
  // Regression for the sub-8-byte clamp at the wire level: corrupt a
  // 4-byte int in flight; the frame CRC catches it and the retransmit
  // delivers the retained clean bits.
  swmpi::FaultPlan plan;
  plan.corrupt_send(/*rank=*/1, /*nth_send=*/0, ~0ull);
  int received = 0;
  swmpi::run_spmd(
      2,
      [&](swmpi::Comm& world) {
        if (world.rank() == 1) {
          world.send_value<int>(0, 5, 1234);
        } else {
          received = world.recv_value<int>(1, 5);
        }
      },
      &plan);
  EXPECT_EQ(received, 1234);
  EXPECT_EQ(plan.fired_corruptions(), 1u);
}

TEST(SdcTransport, DropWithNoWatchdogIsRejectedAtRunEntry) {
  // An armed drop with no watchdog is an undetectable deadlock — run_spmd
  // fails fast at entry instead of hanging.
  swmpi::FaultPlan plan;
  plan.drop_send(/*rank=*/0, /*nth_send=*/0);
  EXPECT_THROW(swmpi::run_spmd(2, [](swmpi::Comm&) {}, &plan),
               InvalidArgument);
  // The same plan with the watchdog armed enters fine.
  plan.watchdog(std::chrono::milliseconds(200));
  EXPECT_NO_THROW(swmpi::run_spmd(2, [](swmpi::Comm&) {}, &plan));
}

TEST(SdcTransport, TransientCorruptionTicksCrcAndRetransmitCounters) {
  telemetry::MetricsRegistry reg;
  swmpi::FaultPlan plan;
  plan.corrupt_send(/*rank=*/1, /*nth_send=*/0, kExponentMask);
  double received = 0;
  swmpi::run_spmd(
      2,
      [&](swmpi::Comm& world) {
        if (world.rank() == 1) {
          world.send_value<double>(0, 9, 2.5);
        } else {
          received = world.recv_value<double>(1, 9);
        }
      },
      &plan, &reg);
  EXPECT_EQ(received, 2.5);
  const auto snap = reg.merged();
  EXPECT_EQ(snap.counter_or_zero("swmpi.recv.crc_fail"), 1u);
  EXPECT_GE(snap.counter_or_zero("swmpi.send.retransmit"), 1u);
  EXPECT_EQ(snap.counter_or_zero("fault.fired_corruptions"), 1u);
}

TEST(SdcTransport, PersistentCorruptionEscalatesWithAttribution) {
  // A persistent (stuck-at) corruption survives every retransmit: bounded
  // NACK/resend gives up and raises CorruptMessageError naming the sender.
  swmpi::FaultPlan plan;
  plan.corrupt_send(/*rank=*/1, /*nth_send=*/0, kExponentMask, /*offset=*/0,
                    /*persistent=*/true);
  try {
    swmpi::run_spmd(
        2,
        [&](swmpi::Comm& world) {
          if (world.rank() == 1) {
            world.send_value<double>(0, 9, 2.5);
          } else {
            (void)world.recv_value<double>(1, 9);
          }
        },
        &plan);
    FAIL() << "persistent corruption was silently absorbed";
  } catch (const CorruptMessageError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("from rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("seq"), std::string::npos) << what;
  }
}

TEST(SdcTransport, CollectiveShapesNeverSilentlyAbsorbCorruption) {
  // Persistent corruption under every collective shape the engines use
  // must surface as CorruptMessageError — never a silently wrong sum.
  struct Shape {
    const char* name;
    std::function<void(swmpi::Comm&)> body;
  };
  const std::vector<Shape> shapes = {
      {"allreduce",
       [](swmpi::Comm& world) {
         std::uint64_t x = static_cast<std::uint64_t>(world.rank()) + 1;
         swmpi::allreduce_sum(world, std::span<std::uint64_t>(&x, 1));
       }},
      {"allgather",
       [](swmpi::Comm& world) {
         (void)swmpi::allgather(world,
                                static_cast<std::uint64_t>(world.rank()));
       }},
      {"split",
       [](swmpi::Comm& world) {
         swmpi::Comm sub = world.split(world.rank() % 2, world.rank());
         std::uint64_t x = 1;
         swmpi::allreduce_sum(sub, std::span<std::uint64_t>(&x, 1));
       }},
  };
  for (const Shape& shape : shapes) {
    SCOPED_TRACE(shape.name);
    swmpi::FaultPlan plan;
    // Corrupt every send rank 1 makes, persistently, at a byte offset
    // inside the smallest payload the shape moves.
    for (std::uint64_t nth = 0; nth < 8; ++nth) {
      plan.corrupt_send(1, nth, kExponentMask, /*offset=*/0,
                        /*persistent=*/true);
    }
    EXPECT_THROW(swmpi::run_spmd(4, shape.body, &plan), CorruptMessageError);
    EXPECT_GE(plan.fired_corruptions(), 1u);
  }
}

TEST(SdcTransport, TransientCorruptionUnderCollectivesIsBitInvisible) {
  // The healed collective must produce exactly the clean result.
  std::uint64_t clean[4] = {0, 0, 0, 0};
  swmpi::run_spmd(4, [&](swmpi::Comm& world) {
    std::uint64_t x = static_cast<std::uint64_t>(world.rank()) * 3 + 1;
    swmpi::allreduce_sum(world, std::span<std::uint64_t>(&x, 1));
    clean[world.rank()] = x;
  });
  swmpi::FaultPlan plan;
  plan.corrupt_send(2, 0, kExponentMask);
  std::uint64_t healed[4] = {0, 0, 0, 0};
  swmpi::run_spmd(
      4,
      [&](swmpi::Comm& world) {
        std::uint64_t x = static_cast<std::uint64_t>(world.rank()) * 3 + 1;
        swmpi::allreduce_sum(world, std::span<std::uint64_t>(&x, 1));
        healed[world.rank()] = x;
      },
      &plan);
  EXPECT_EQ(plan.fired_corruptions(), 1u);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(healed[r], clean[r]) << "rank " << r;
  }
}

// -------------------------------------------------- engine-level matrix

class SdcEngineMatrix : public ::testing::TestWithParam<Level> {};

TEST_P(SdcEngineMatrix, MemoryFlipsAreDetectedNeverAbsorbed) {
  // Every flip_memory coordinate class, at this engine level, must be
  // *detected* — either by a throwing detector (snapshot CRC, accumulator
  // CRC, counts conservation) or by the in-place ABFT repair. A flip that
  // neither throws nor lands in sdc_recomputed would be a silent wrong
  // answer — the failure mode this PR exists to kill.
  const Level level = GetParam();
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  const data::Dataset ds = data::make_blobs(160, 6, 4, 11);
  KmeansConfig config = sdc_config();
  config.gate_assign = false;  // every iteration builds GEMM panels
  const std::size_t sums_bytes = config.k * ds.d() * sizeof(double);

  struct FlipCase {
    const char* name;
    swmpi::MemorySite site;
    std::size_t offset;
    bool throws;  // detector escalates vs ABFT repairs in place
  };
  const std::vector<FlipCase> cases = {
      {"snapshot", swmpi::MemorySite::kSnapshot, 0, true},
      {"tile_scratch", swmpi::MemorySite::kTileScratch, 0, false},
      {"accum_sums", swmpi::MemorySite::kUpdateAccum, 0, true},
      {"accum_counts", swmpi::MemorySite::kUpdateAccum, sums_bytes, true},
  };
  KmeansConfig clean = config;
  clean.sdc_checks = false;
  const KmeansResult ref =
      core::HierarchicalKmeans(machine).fit_level(level, ds, clean);

  for (const FlipCase& c : cases) {
    SCOPED_TRACE(c.name);
    swmpi::FaultPlan plan;
    plan.flip_memory(/*rank=*/1, /*iteration=*/1, c.site, c.offset,
                     kExponentMask);
    KmeansConfig faulty = config;
    faulty.fault_plan = &plan;
    if (c.throws) {
      EXPECT_THROW(
          core::HierarchicalKmeans(machine).fit_level(level, ds, faulty),
          SilentCorruptionError);
      EXPECT_EQ(plan.fired_flips(), 1u);
    } else {
      // ABFT checksum column: detect, recompute the panel bit-identically,
      // keep going — the run finishes on exactly the clean bits.
      const KmeansResult got =
          core::HierarchicalKmeans(machine).fit_level(level, ds, faulty);
      EXPECT_EQ(plan.fired_flips(), 1u);
      EXPECT_EQ(got.assignments, ref.assignments);
      EXPECT_EQ(core::centroid_max_abs_diff(got.centroids, ref.centroids),
                0.0);
      std::uint64_t recomputed = 0;
      for (const auto& it : got.history) {
        recomputed += it.sdc_recomputed;
      }
      EXPECT_GE(recomputed, 1u);
    }
  }
}

TEST_P(SdcEngineMatrix, LocalizedRecoveryEngagesBeforeCheckpointRollback) {
  // A detected SDC retries just the poisoned leg from the driver's
  // still-valid in-memory centroids: no checkpoint reload, no charge
  // against the fail-stop retry budget — and the recovered run lands on
  // exactly the bits of a defense-disabled clean run.
  const Level level = GetParam();
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  const data::Dataset ds = data::make_blobs(160, 6, 4, 11);
  const KmeansConfig config = sdc_config();
  KmeansConfig clean = config;
  clean.sdc_checks = false;
  const KmeansResult ref =
      core::HierarchicalKmeans(machine).fit_level(level, ds, clean);

  int case_id = 0;
  const std::size_t sums_bytes = config.k * ds.d() * sizeof(double);
  struct FlipCase {
    const char* name;
    swmpi::MemorySite site;
    std::size_t offset;
  };
  for (const FlipCase& c : std::vector<FlipCase>{
           {"snapshot", swmpi::MemorySite::kSnapshot, 0},
           {"accum_sums", swmpi::MemorySite::kUpdateAccum, 0},
           {"accum_counts", swmpi::MemorySite::kUpdateAccum, sums_bytes}}) {
    SCOPED_TRACE(c.name);
    // Iteration 3 sits in the second leg (cadence 2): the flip kills a
    // leg that *does* have a checkpoint behind it, proving the localized
    // path wins over the rollback the driver would otherwise take.
    swmpi::FaultPlan plan;
    plan.flip_memory(/*rank=*/0, /*iteration=*/3, c.site, c.offset,
                     kExponentMask);
    KmeansConfig faulty = config;
    faulty.fault_plan = &plan;
    RecoveryOptions options;
    options.checkpoint_path = unique_ckpt(
        std::string(core::level_name(level)) + "_" + std::to_string(case_id++));
    RecoveryDriver driver(machine, options);
    const KmeansResult got = driver.run(level, ds, faulty);

    EXPECT_EQ(plan.fired_flips(), 1u);
    const core::RecoveryReport& report = driver.report();
    EXPECT_EQ(report.sdc_detections, 1u);
    EXPECT_EQ(report.localized_retries, 1u);
    EXPECT_EQ(report.retries, 0u);  // fail-stop budget untouched
    EXPECT_FALSE(report.resumed_from_checkpoint);
    ASSERT_EQ(report.events.size(), 1u);
    EXPECT_TRUE(report.events[0].sdc);

    EXPECT_EQ(got.iterations, ref.iterations);
    EXPECT_EQ(got.assignments, ref.assignments);
    EXPECT_EQ(core::centroid_max_abs_diff(got.centroids, ref.centroids), 0.0);
    EXPECT_DOUBLE_EQ(got.inertia, ref.inertia);
    // The recovered leg's first iteration carries the localized-retry
    // stamp (global iteration 2 = first iteration of the second leg).
    ASSERT_EQ(got.history.size(), 6u);
    EXPECT_EQ(got.history[2].sdc_retries, 1u);
  }
}

TEST_P(SdcEngineMatrix, DefenseOnCleanRunIsBitIdenticalToDefenseOff) {
  // Arming every detector on a corruption-free run must not move a single
  // bit: the scrubbers only read, the ABFT verify only compares, and the
  // conservation guard only sums a copy.
  const Level level = GetParam();
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  const data::Dataset ds = data::make_blobs(160, 6, 4, 11);
  KmeansConfig off = sdc_config();
  off.sdc_checks = false;
  const KmeansConfig on = sdc_config();
  const KmeansResult ref =
      core::HierarchicalKmeans(machine).fit_level(level, ds, off);
  const KmeansResult got =
      core::HierarchicalKmeans(machine).fit_level(level, ds, on);
  EXPECT_EQ(got.iterations, ref.iterations);
  EXPECT_EQ(got.assignments, ref.assignments);
  EXPECT_EQ(core::centroid_max_abs_diff(got.centroids, ref.centroids), 0.0);
  EXPECT_DOUBLE_EQ(got.inertia, ref.inertia);
}

INSTANTIATE_TEST_SUITE_P(AllLevels, SdcEngineMatrix,
                         ::testing::Values(Level::kLevel1, Level::kLevel2,
                                           Level::kLevel3),
                         [](const auto& info) {
                           return "Level" +
                                  std::to_string(static_cast<int>(info.param));
                         });

// ------------------------------------------------------ telemetry export

TEST(SdcTelemetry, FiredAndDetectionCountersLandInTheMergedSnapshot) {
  const MachineConfig machine = MachineConfig::tiny(2, 4, 8192);
  const data::Dataset ds = data::make_blobs(160, 6, 4, 11);
  telemetry::Telemetry session;
  swmpi::FaultPlan plan;
  plan.flip_memory(/*rank=*/0, /*iteration=*/1, swmpi::MemorySite::kSnapshot,
                   /*offset=*/0, kExponentMask);
  KmeansConfig config = sdc_config();
  config.fault_plan = &plan;
  config.telemetry = &session;
  RecoveryOptions options;
  options.checkpoint_path = unique_ckpt("telemetry");
  RecoveryDriver driver(machine, options);
  (void)driver.run(Level::kLevel1, ds, config);

  const auto snap = session.metrics().merged();
  EXPECT_EQ(snap.counter_or_zero("fault.fired_flips"), 1u);
  // Every rank re-reads the shared snapshot and ticks on the mismatch, but
  // the first thrower aborts peers still draining the scrub barrier — so
  // anywhere from one rank to all of them records the detection.
  EXPECT_GE(snap.counter_or_zero("sdc.snapshot.crc_fail"), 1u);
  EXPECT_LE(snap.counter_or_zero("sdc.snapshot.crc_fail"), machine.num_cgs());
  EXPECT_EQ(snap.counter_or_zero("recovery.sdc_detections"), 1u);
  EXPECT_EQ(snap.counter_or_zero("recovery.localized_retries"), 1u);
}

}  // namespace
}  // namespace swhkm
