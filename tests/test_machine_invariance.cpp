#include <gtest/gtest.h>

#include "core/hkmeans.hpp"

namespace swhkm::core {
namespace {

using simarch::MachineConfig;

/// The library's strongest portability property: the *clustering result*
/// depends only on (data, config) — never on the simulated machine shape,
/// the partition level, or the group sizes. Only the simulated cost may
/// differ. This is what lets a user prototype on 2 tiny nodes and submit
/// the same job to 4096 without re-validating results.
TEST(MachineInvariance, ResultsIdenticalAcrossMachinesAndLevels) {
  const data::Dataset ds = data::make_uniform(240, 9, 13);
  KmeansConfig config;
  config.k = 7;
  config.max_iterations = 9;
  config.init = InitMethod::kRandom;
  config.seed = 4;
  const KmeansResult reference = lloyd_serial(ds, config);

  const MachineConfig machines[] = {
      MachineConfig::tiny(1, 1, 8192),  MachineConfig::tiny(1, 4, 8192),
      MachineConfig::tiny(2, 4, 8192),  MachineConfig::tiny(4, 2, 8192),
      MachineConfig::tiny(3, 6, 16384), MachineConfig::tiny(2, 8, 4096),
  };
  for (const MachineConfig& machine : machines) {
    const ProblemShape shape{ds.n(), config.k, ds.d()};
    for (Level level : {Level::kLevel1, Level::kLevel2, Level::kLevel3}) {
      if (!check_level(level, shape, machine).ok) {
        continue;
      }
      const KmeansResult got = run_level(level, ds, config, machine);
      ASSERT_EQ(got.assignments, reference.assignments)
          << level_name(level) << " on " << machine.summary();
      ASSERT_EQ(got.iterations, reference.iterations)
          << level_name(level) << " on " << machine.summary();
    }
  }
}

TEST(MachineInvariance, GroupSizeNeverChangesResults) {
  const data::Dataset ds = data::make_blobs(180, 8, 4, 3, 8.0, 2.0);
  const MachineConfig machine = MachineConfig::tiny(2, 8, 16384);
  KmeansConfig config;
  config.k = 4;
  config.max_iterations = 12;
  const KmeansResult reference = lloyd_serial(ds, config);
  const ProblemShape shape{ds.n(), 4, ds.d()};

  for (std::size_t g : candidate_m_groups(machine)) {
    if (!check_level(Level::kLevel2, shape, machine, g).ok) {
      continue;
    }
    const KmeansResult got = run_level(Level::kLevel2, ds, config, machine, g);
    ASSERT_EQ(got.assignments, reference.assignments) << "m_group=" << g;
  }
  for (std::size_t p : candidate_mprime_groups(machine)) {
    if (!check_level(Level::kLevel3, shape, machine, 0, p).ok) {
      continue;
    }
    const KmeansResult got =
        run_level(Level::kLevel3, ds, config, machine, 0, p);
    ASSERT_EQ(got.assignments, reference.assignments) << "m'_group=" << p;
  }
}

TEST(MachineInvariance, CostsDifferWhereResultsDoNot) {
  // The flip side: the machine DOES change what the run costs.
  const data::Dataset ds = data::make_uniform(300, 6, 21);
  KmeansConfig config;
  config.k = 5;
  config.max_iterations = 2;
  config.tolerance = -1;
  const KmeansResult small =
      run_level(Level::kLevel1, ds, config, MachineConfig::tiny(1, 2, 8192));
  const KmeansResult large =
      run_level(Level::kLevel1, ds, config, MachineConfig::tiny(4, 8, 8192));
  EXPECT_EQ(small.assignments, large.assignments);
  EXPECT_NE(small.cost.total_s(), large.cost.total_s());
}

/// Scaled-down machine (fewer CPEs per CG than the real 64) vs the full
/// SW26010 shape at a size both can hold: same answer.
TEST(MachineInvariance, TinyAndFullCgShapesAgree) {
  const data::Dataset ds = data::make_blobs(400, 12, 5, 17);
  KmeansConfig config;
  config.k = 5;
  config.max_iterations = 6;
  MachineConfig full = MachineConfig::sw26010(1);
  full.cgs_per_node = 2;  // keep the thread count reasonable for the test
  full.validate();
  const KmeansResult tiny_run =
      run_level(Level::kLevel3, ds, config, MachineConfig::tiny(2, 4, 8192));
  const KmeansResult full_run = run_level(Level::kLevel3, ds, config, full);
  EXPECT_EQ(tiny_run.assignments, full_run.assignments);
}

}  // namespace
}  // namespace swhkm::core
