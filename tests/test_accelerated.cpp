#include <gtest/gtest.h>

#include <cstring>

#include "core/elkan.hpp"
#include "core/hamerly.hpp"
#include "core/lloyd.hpp"
#include "core/metrics.hpp"
#include "core/yinyang.hpp"
#include "data/synthetic.hpp"

namespace swhkm::core {
namespace {

/// The three accelerated exact algorithms behind one signature, so the
/// whole family runs through the same parameterised checks.
using AccelFn = KmeansResult (*)(const data::Dataset&, const KmeansConfig&,
                                 AccelStats*);

struct Algo {
  const char* name;
  AccelFn run;
};

class AccelFamilyTest : public ::testing::TestWithParam<Algo> {};

void expect_identical(const KmeansResult& got, const KmeansResult& ref,
                      const char* name) {
  EXPECT_EQ(got.iterations, ref.iterations) << name;
  EXPECT_EQ(got.converged, ref.converged) << name;
  EXPECT_EQ(assignment_agreement(got.assignments, ref.assignments), 1.0)
      << name;
  EXPECT_LT(centroid_max_abs_diff(got.centroids, ref.centroids), 1e-5)
      << name;
}

TEST_P(AccelFamilyTest, MatchesLloydOnBlobs) {
  const data::Dataset ds = data::make_blobs(500, 10, 6, 42);
  KmeansConfig config;
  config.k = 6;
  config.max_iterations = 25;
  const KmeansResult ref = lloyd_serial(ds, config);
  const KmeansResult got = GetParam().run(ds, config, nullptr);
  expect_identical(got, ref, GetParam().name);
}

TEST_P(AccelFamilyTest, MatchesLloydOnUniform) {
  const data::Dataset ds = data::make_uniform(400, 8, 17);
  KmeansConfig config;
  config.k = 20;
  config.max_iterations = 15;
  config.init = InitMethod::kRandom;
  config.seed = 3;
  const KmeansResult ref = lloyd_serial(ds, config);
  const KmeansResult got = GetParam().run(ds, config, nullptr);
  expect_identical(got, ref, GetParam().name);
}

TEST_P(AccelFamilyTest, MatchesLloydOnSurrogates) {
  for (data::Benchmark bench :
       {data::Benchmark::kKeggNetwork, data::Benchmark::kRoadNetwork,
        data::Benchmark::kUsCensus1990}) {
    const data::Dataset ds = data::make_benchmark_surrogate(bench, 250, 96, 8);
    KmeansConfig config;
    config.k = 10;
    config.max_iterations = 12;
    config.init = InitMethod::kRandom;
    const KmeansResult ref = lloyd_serial(ds, config);
    const KmeansResult got = GetParam().run(ds, config, nullptr);
    expect_identical(got, ref, GetParam().name);
  }
}

TEST_P(AccelFamilyTest, KEqualsOneDegenerates) {
  const data::Dataset ds = data::make_uniform(80, 3, 2);
  KmeansConfig config;
  config.k = 1;
  config.max_iterations = 5;
  const KmeansResult ref = lloyd_serial(ds, config);
  const KmeansResult got = GetParam().run(ds, config, nullptr);
  expect_identical(got, ref, GetParam().name);
}

TEST_P(AccelFamilyTest, SavesDistancesOnConvergedBlobs) {
  const data::Dataset ds = data::make_blobs(1500, 12, 8, 7);
  KmeansConfig config;
  config.k = 8;
  config.max_iterations = 30;
  AccelStats stats;
  const KmeansResult result = GetParam().run(ds, config, &stats);
  ASSERT_TRUE(result.converged) << GetParam().name;
  EXPECT_GT(stats.savings(), 0.3) << GetParam().name;
  EXPECT_LE(stats.distance_computations, stats.lloyd_equivalent)
      << GetParam().name;
}

TEST_P(AccelFamilyTest, FirstIterationIsAlwaysExact) {
  const data::Dataset ds = data::make_uniform(64, 4, 5);
  KmeansConfig config;
  config.k = 8;
  config.max_iterations = 1;
  config.tolerance = -1;
  AccelStats stats;
  GetParam().run(ds, config, &stats);
  EXPECT_EQ(stats.distance_computations, 64u * 8u) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Family, AccelFamilyTest,
    ::testing::Values(Algo{"yinyang", &yinyang_serial},
                      Algo{"elkan", &elkan_serial},
                      Algo{"hamerly", &hamerly_serial}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(AccelComparison, ElkanPrunesAtLeastAsHardAsHamerlyOnBlobs) {
  // Elkan's per-centroid bounds dominate Hamerly's single bound in
  // pruning power (Hamerly wins on constants, which we do not measure).
  const data::Dataset ds = data::make_blobs(1000, 8, 12, 3);
  KmeansConfig config;
  config.k = 12;
  config.max_iterations = 20;
  AccelStats elkan_stats;
  AccelStats hamerly_stats;
  elkan_serial(ds, config, &elkan_stats);
  hamerly_serial(ds, config, &hamerly_stats);
  EXPECT_LE(elkan_stats.distance_computations,
            hamerly_stats.distance_computations);
}

TEST(AccelComparison, HamerlyExclusionTighteningDoesNotRegress) {
  // The Hamerly lower bound subtracts the max drift over centroids *other
  // than* the assigned one (top-two drift digest), not the global max.
  // Pin (a) the trajectory stays Lloyd-identical and (b) the distance
  // count never exceeds the looser global-max variant's 280675 on this
  // reference workload (n=1200, d=16, k=24, seed 33 — slow convergence,
  // so the bound quality actually shows).
  const data::Dataset ds = data::make_uniform(1200, 16, 33);
  KmeansConfig config;
  config.k = 24;
  config.max_iterations = 40;
  AccelStats stats;
  const KmeansResult got = hamerly_serial(ds, config, &stats);
  const KmeansResult ref = lloyd_serial(ds, config);
  ASSERT_EQ(got.iterations, ref.iterations);
  EXPECT_EQ(got.assignments, ref.assignments);
  EXPECT_EQ(std::memcmp(got.centroids.data(), ref.centroids.data(),
                        ref.centroids.size() * sizeof(float)),
            0);
  EXPECT_LE(stats.distance_computations, 280675u);
  EXPECT_GE(stats.savings(), 0.35);
}

TEST(AccelComparison, BoundOverheadAccounted) {
  const data::Dataset ds = data::make_uniform(200, 4, 9);
  KmeansConfig config;
  config.k = 16;
  config.max_iterations = 5;
  config.tolerance = -1;
  AccelStats elkan_stats;
  elkan_serial(ds, config, &elkan_stats);
  // k*(k-1)/2 centroid pairs per iteration.
  EXPECT_EQ(elkan_stats.centroid_distance_computations, 5u * 16 * 15 / 2);
  AccelStats yy_stats;
  yinyang_serial(ds, config, &yy_stats);
  EXPECT_EQ(yy_stats.centroid_distance_computations, 0u);
}

}  // namespace
}  // namespace swhkm::core
