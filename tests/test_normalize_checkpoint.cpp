#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/lloyd.hpp"
#include "core/metrics.hpp"
#include "data/normalize.hpp"
#include "data/synthetic.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace swhkm {
namespace {

// -------------------------------------------------------------- normalize

TEST(MinMax, ScalesIntoUnitBox) {
  data::Dataset ds = data::make_uniform(200, 4, 3, -50.0f, 120.0f);
  data::minmax_scale(ds);
  const auto [lo, hi] = ds.bounding_box();
  for (std::size_t u = 0; u < 4; ++u) {
    EXPECT_NEAR(lo[u], 0.0f, 1e-5);
    EXPECT_NEAR(hi[u], 1.0f, 1e-5);
  }
}

TEST(MinMax, RoundtripsThroughInversion) {
  data::Dataset ds = data::make_uniform(100, 3, 7, 5.0f, 9.0f);
  const data::Dataset original = ds;
  const data::ScalingParams params = data::minmax_scale(ds);
  data::invert_scaling(params, ds.samples());
  for (std::size_t i = 0; i < ds.samples().size(); ++i) {
    EXPECT_NEAR(ds.samples().flat()[i], original.samples().flat()[i], 1e-4);
  }
}

TEST(MinMax, ConstantDimensionMapsToZero) {
  util::Matrix m = util::Matrix::from_vector(3, 2, {5, 1, 5, 2, 5, 3});
  data::Dataset ds("x", std::move(m));
  data::minmax_scale(ds);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ds.sample(i)[0], 0.0f);
  }
}

TEST(ZScore, StandardisesMoments) {
  data::Dataset ds = data::make_blobs(500, 3, 2, 9, 30.0, 2.0);
  data::zscore_scale(ds);
  const auto means = ds.dimension_means();
  for (double m : means) {
    EXPECT_NEAR(m, 0.0, 1e-4);
  }
  // variance ~ 1 per dimension
  double var = 0;
  for (std::size_t i = 0; i < ds.n(); ++i) {
    var += ds.sample(i)[0] * ds.sample(i)[0];
  }
  EXPECT_NEAR(var / static_cast<double>(ds.n()), 1.0, 1e-3);
}

TEST(Scaling, ApplyToQueryMatchesTrainTransform) {
  data::Dataset train = data::make_uniform(50, 2, 1, 0.0f, 10.0f);
  util::Matrix query = train.samples();  // copy before scaling
  const data::ScalingParams params = data::minmax_scale(train);
  data::apply_scaling(params, query);
  for (std::size_t i = 0; i < query.size(); ++i) {
    EXPECT_EQ(query.flat()[i], train.samples().flat()[i]);
  }
}

TEST(Scaling, DimensionMismatchRejected) {
  data::Dataset ds = data::make_uniform(10, 3, 1);
  const data::ScalingParams params = data::minmax_scale(ds);
  util::Matrix wrong(2, 4);
  EXPECT_THROW(data::apply_scaling(params, wrong), InvalidArgument);
}

TEST(Scaling, ScalingChangesClusteringOfMixedUnits) {
  // One dimension in thousands dominates unscaled distances; scaling lets
  // the structured small dimension matter.
  util::Xoshiro256 rng(5);
  util::Matrix m(200, 2);
  for (std::size_t i = 0; i < 200; ++i) {
    m.at(i, 0) = static_cast<float>(rng.uniform(0, 10000));  // noise, huge
    m.at(i, 1) = i < 100 ? 0.0f : 1.0f;                      // true structure
  }
  data::Dataset ds("mixed", std::move(m));
  core::KmeansConfig config;
  config.k = 2;
  config.max_iterations = 20;
  config.init = core::InitMethod::kRandom;
  data::Dataset scaled = ds;
  data::minmax_scale(scaled);
  const auto scaled_result = core::lloyd_serial(scaled, config);
  std::vector<std::uint32_t> truth(200);
  for (std::size_t i = 100; i < 200; ++i) {
    truth[i] = 1;
  }
  EXPECT_GT(core::adjusted_rand_index(scaled_result.assignments, truth),
            0.95);
  const auto raw_result = core::lloyd_serial(ds, config);
  EXPECT_LT(core::adjusted_rand_index(raw_result.assignments, truth), 0.5);
}

// ------------------------------------------------------------- checkpoint

TEST(Checkpoint, RoundtripPreservesState) {
  const data::Dataset ds = data::make_blobs(150, 5, 3, 4);
  core::KmeansConfig config;
  config.k = 3;
  config.max_iterations = 7;
  config.tolerance = -1;
  const core::KmeansResult result = core::lloyd_serial(ds, config);
  const std::string path = ::testing::TempDir() + "/swhkm_ckpt.bin";
  core::save_checkpoint(result, path);
  const core::KmeansResult loaded = core::load_checkpoint(path);
  EXPECT_EQ(loaded.iterations, result.iterations);
  EXPECT_EQ(loaded.converged, result.converged);
  EXPECT_EQ(loaded.assignments, result.assignments);
  EXPECT_DOUBLE_EQ(loaded.inertia, result.inertia);
  EXPECT_EQ(core::centroid_max_abs_diff(loaded.centroids, result.centroids),
            0.0);
}

TEST(Checkpoint, ResumeEqualsUninterruptedRun) {
  const data::Dataset ds = data::make_uniform(300, 4, 6);
  core::KmeansConfig first_leg;
  first_leg.k = 5;
  first_leg.max_iterations = 3;
  first_leg.tolerance = -1;
  const core::KmeansResult partial = core::lloyd_serial(ds, first_leg);

  const std::string path = ::testing::TempDir() + "/swhkm_resume.bin";
  core::save_checkpoint(partial, path);
  const core::KmeansResult restored = core::load_checkpoint(path);

  // max_iterations is the TOTAL budget: resuming a 3-iteration checkpoint
  // with a budget of 7 runs 4 more and lands exactly where an
  // uninterrupted 7-iteration run does.
  core::KmeansConfig second_leg = first_leg;
  second_leg.max_iterations = 7;
  const core::KmeansResult resumed =
      core::resume_lloyd(ds, second_leg, restored);

  core::KmeansConfig straight = first_leg;
  straight.max_iterations = 7;
  const core::KmeansResult uninterrupted = core::lloyd_serial(ds, straight);

  EXPECT_EQ(resumed.iterations, uninterrupted.iterations);
  EXPECT_EQ(core::assignment_agreement(resumed.assignments,
                                       uninterrupted.assignments),
            1.0);
  EXPECT_LT(core::centroid_max_abs_diff(resumed.centroids,
                                        uninterrupted.centroids),
            1e-6);
}

TEST(Checkpoint, ResumeNeverExceedsTotalIterationBudget) {
  // Regression: resume_lloyd used to run a full max_iterations ON TOP of
  // the checkpoint's spent iterations, so a resumed run could burn up to
  // 2x the configured budget.
  const data::Dataset ds = data::make_uniform(200, 3, 9);
  core::KmeansConfig config;
  config.k = 4;
  config.max_iterations = 3;
  config.tolerance = -1;
  const core::KmeansResult partial = core::lloyd_serial(ds, config);
  ASSERT_EQ(partial.iterations, 3u);

  core::KmeansConfig budget = config;
  budget.max_iterations = 5;
  const core::KmeansResult resumed = core::resume_lloyd(ds, budget, partial);
  EXPECT_EQ(resumed.iterations, 5u);
}

TEST(Checkpoint, ResumeWithExhaustedBudgetReturnsCheckpointState) {
  const data::Dataset ds = data::make_uniform(150, 3, 2);
  core::KmeansConfig config;
  config.k = 4;
  config.max_iterations = 4;
  config.tolerance = -1;
  const core::KmeansResult partial = core::lloyd_serial(ds, config);

  // Budget smaller than what the checkpoint already spent: no further
  // iterations, but the result must still be self-consistent (assignments
  // and inertia recomputed against the checkpoint centroids).
  core::KmeansConfig smaller = config;
  smaller.max_iterations = 2;
  const core::KmeansResult resumed =
      core::resume_lloyd(ds, smaller, partial);
  EXPECT_EQ(resumed.iterations, partial.iterations);
  EXPECT_EQ(core::centroid_max_abs_diff(resumed.centroids,
                                        partial.centroids),
            0.0);
  EXPECT_EQ(resumed.assignments,
            core::assign_serial(ds, partial.centroids));
  EXPECT_GT(resumed.inertia, 0.0);
}

TEST(Checkpoint, OverDeclaredHeaderRejected) {
  // A header whose per-array shapes each fit the payload but whose
  // combined size exceeds it must be rejected up front — the old
  // independent checks let it through to the read stage.
  const data::Dataset ds = data::make_uniform(40, 3, 5);
  core::KmeansConfig config;
  config.k = 2;
  const core::KmeansResult result = core::lloyd_serial(ds, config);
  const std::string path = ::testing::TempDir() + "/swhkm_overdecl.bin";
  core::save_checkpoint(result, path);

  // Payload is k*d*4 + n*4 = 24 + 160 = 184 bytes. Rewrite n to claim 46
  // assignment rows (46*4 = 184 <= 184 passes the independent check) so
  // the combined size 24 + 184 = 208 over-declares the file.
  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file);
  const std::uint64_t bogus_n = 46;
  file.seekp(4 + 4 + 8 + 8, std::ios::beg);  // magic, version, k, d
  file.write(reinterpret_cast<const char*>(&bogus_n), sizeof(bogus_n));
  file.close();
  try {
    core::load_checkpoint(path);
    FAIL() << "over-declared checkpoint header was accepted";
  } catch (const InvalidArgument& error) {
    // Must be caught by the shape validation, not surface later as a
    // generic short-read failure.
    EXPECT_NE(std::string(error.what()).find("do not match the file size"),
              std::string::npos)
        << error.what();
  }
}

TEST(Checkpoint, GarbageFileRejected) {
  const std::string path = ::testing::TempDir() + "/swhkm_bad_ckpt.bin";
  std::ofstream(path) << "garbage garbage garbage garbage garbage garbage";
  EXPECT_THROW(core::load_checkpoint(path), InvalidArgument);
}

TEST(Checkpoint, TruncatedFileRejected) {
  const data::Dataset ds = data::make_uniform(40, 3, 1);
  core::KmeansConfig config;
  config.k = 2;
  const core::KmeansResult result = core::lloyd_serial(ds, config);
  const std::string path = ::testing::TempDir() + "/swhkm_trunc_ckpt.bin";
  core::save_checkpoint(result, path);
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path, std::ios::binary)
      << contents.substr(0, contents.size() - 8);
  EXPECT_THROW(core::load_checkpoint(path), InvalidArgument);
}

TEST(Checkpoint, ShapeMismatchOnResumeRejected) {
  const data::Dataset ds = data::make_uniform(40, 3, 1);
  core::KmeansConfig config;
  config.k = 2;
  const core::KmeansResult result = core::lloyd_serial(ds, config);
  core::KmeansConfig other = config;
  other.k = 4;
  EXPECT_THROW(core::resume_lloyd(ds, other, result), InvalidArgument);
  const data::Dataset wider = data::make_uniform(40, 5, 1);
  EXPECT_THROW(core::resume_lloyd(wider, config, result), InvalidArgument);
}

TEST(Checkpoint, EmptyResultRejected) {
  core::KmeansResult empty;
  EXPECT_THROW(core::save_checkpoint(empty, "/tmp/x.bin"), InvalidArgument);
}

// --------------------------------------------- corrupt-checkpoint corpus
//
// Format v2 hardening: every torn or bit-damaged file must surface as the
// typed CorruptCheckpointError — never a crash, a silent wrong load, or an
// untyped failure the RecoveryDriver couldn't tell from a config mistake.

namespace corpus {

std::string save_sample(const std::string& name, std::string* raw) {
  const data::Dataset ds = data::make_blobs(60, 4, 3, 21);
  core::KmeansConfig config;
  config.k = 3;
  config.max_iterations = 5;
  config.tolerance = -1;
  const core::KmeansResult result = core::lloyd_serial(ds, config);
  const std::string path = ::testing::TempDir() + "/" + name;
  core::save_checkpoint(result, path);
  std::ifstream in(path, std::ios::binary);
  raw->assign((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  return path;
}

void rewrite(const std::string& path, const std::string& bytes) {
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace corpus

TEST(CheckpointCorpus, TruncationAtAnyLengthRejected) {
  std::string raw;
  const std::string path = corpus::save_sample("swhkm_corpus_trunc.bin", &raw);
  ASSERT_GT(raw.size(), 57u);
  for (std::size_t keep :
       {std::size_t{0}, std::size_t{1}, std::size_t{4}, std::size_t{20},
        std::size_t{55}, std::size_t{56}, std::size_t{57}, raw.size() - 1}) {
    SCOPED_TRACE("keep=" + std::to_string(keep));
    corpus::rewrite(path, raw.substr(0, keep));
    EXPECT_THROW(core::load_checkpoint(path), CorruptCheckpointError);
  }
  corpus::rewrite(path, raw);
  EXPECT_NO_THROW(core::load_checkpoint(path));
}

TEST(CheckpointCorpus, BitFlipInPayloadFailsTheCrc) {
  std::string raw;
  const std::string path = corpus::save_sample("swhkm_corpus_flip.bin", &raw);
  constexpr std::size_t kHeaderBytes = 56;
  // Every 7th payload byte plus the first and the last — a flip anywhere
  // in the centroids or the assignments must trip the CRC.
  std::vector<std::size_t> offsets{kHeaderBytes, raw.size() - 1};
  for (std::size_t at = kHeaderBytes + 7; at < raw.size(); at += 7) {
    offsets.push_back(at);
  }
  for (std::size_t at : offsets) {
    SCOPED_TRACE("offset=" + std::to_string(at));
    std::string damaged = raw;
    damaged[at] = static_cast<char>(damaged[at] ^ 0x10);
    corpus::rewrite(path, damaged);
    EXPECT_THROW(core::load_checkpoint(path), CorruptCheckpointError);
  }
}

TEST(CheckpointCorpus, DamagedHeaderFieldsRejected) {
  std::string raw;
  const std::string path = corpus::save_sample("swhkm_corpus_hdr.bin", &raw);
  // Protected header regions: magic [0,4), version [4,8), k/d/n shape
  // fields [8,32), payload CRC [44,48).
  std::vector<std::size_t> offsets;
  for (std::size_t at = 0; at < 32; ++at) {
    offsets.push_back(at);
  }
  for (std::size_t at = 44; at < 48; ++at) {
    offsets.push_back(at);
  }
  for (std::size_t at : offsets) {
    SCOPED_TRACE("offset=" + std::to_string(at));
    std::string damaged = raw;
    damaged[at] = static_cast<char>(damaged[at] ^ 0x04);
    corpus::rewrite(path, damaged);
    EXPECT_THROW(core::load_checkpoint(path), CorruptCheckpointError);
  }
}

TEST(CheckpointCorpus, StaleVersionRejected) {
  std::string raw;
  const std::string path = corpus::save_sample("swhkm_corpus_v1.bin", &raw);
  std::string stale = raw;
  const std::uint32_t v1 = 1;  // pre-CRC format: unverifiable, so refused
  std::memcpy(stale.data() + 4, &v1, sizeof(v1));
  corpus::rewrite(path, stale);
  try {
    core::load_checkpoint(path);
    FAIL() << "stale v1 checkpoint was accepted";
  } catch (const CorruptCheckpointError& error) {
    EXPECT_NE(std::string(error.what()).find("version"), std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace swhkm
