#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/engine_common.hpp"
#include "core/engine_util.hpp"
#include "core/hkmeans.hpp"
#include "swmpi/collectives.hpp"
#include "swmpi/runtime.hpp"
#include "util/matrix.hpp"

namespace swhkm::core {
namespace {

/// Association-sensitive deterministic value: magnitudes spread over ~12
/// binary orders so any change in FP summation order shows up in the bits.
double spread_value(std::size_t rank, std::size_t i) {
  const int e = static_cast<int>((i * 13 + rank * 7) % 25) - 12;
  return std::ldexp(1.0 + 0.001 * static_cast<double>(i) +
                        0.01 * static_cast<double>(rank),
                    e);
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// reduce()'s exact association: at step s, rank r (r % 2s == 0) absorbs
/// rank r+s with the lower subtree as the inout operand.
std::vector<double> binomial_fold(std::vector<std::vector<double>> parts) {
  const std::size_t size = parts.size();
  for (std::size_t s = 1; s < size; s <<= 1) {
    for (std::size_t r = 0; r + s < size; r += 2 * s) {
      for (std::size_t i = 0; i < parts[r].size(); ++i) {
        parts[r][i] += parts[r + s][i];
      }
    }
  }
  return parts[0];
}

class ShardedCollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardedCollectiveTest, ReduceScatterRangesMatchesBinomialReduceBits) {
  const int size = GetParam();
  // 23 elements: ragged over every size here; 3 elements: empty ranges
  // once size > 3 (the k < ranks shape).
  for (const std::size_t total : {std::size_t{23}, std::size_t{3}}) {
    swmpi::run_spmd(size, [&](swmpi::Comm& comm) {
      const auto rank = static_cast<std::size_t>(comm.rank());
      std::vector<double> buf(total);
      for (std::size_t i = 0; i < total; ++i) {
        buf[i] = spread_value(rank, i);
      }
      std::vector<std::size_t> offsets(static_cast<std::size_t>(size) + 1, 0);
      for (int r = 0; r < size; ++r) {
        offsets[static_cast<std::size_t>(r) + 1] =
            detail::block_range(total, static_cast<std::size_t>(size),
                                static_cast<std::size_t>(r))
                .second;
      }
      const std::vector<double> mine = swmpi::reduce_scatter_ranges(
          comm, std::span<const double>(buf.data(), buf.size()),
          std::span<const std::size_t>(offsets.data(), offsets.size()),
          swmpi::ops::Plus{});

      // Reference: the binomial reduce-to-root this must be bit-identical
      // to, published with a bcast and sliced to this rank's range.
      std::vector<double> work = buf;
      swmpi::reduce(comm, 0, std::span<double>(work.data(), work.size()),
                    swmpi::ops::Plus{});
      swmpi::bcast(comm, 0, std::span<double>(work.data(), work.size()));
      ASSERT_EQ(mine.size(), offsets[rank + 1] - offsets[rank]);
      for (std::size_t i = 0; i < mine.size(); ++i) {
        EXPECT_EQ(bits(mine[i]), bits(work[offsets[rank] + i]))
            << "size=" << size << " total=" << total << " rank=" << rank
            << " i=" << i;
      }
    });
  }
}

TEST_P(ShardedCollectiveTest, AllgathervConcatenatesInRankOrder) {
  const int size = GetParam();
  swmpi::run_spmd(size, [&](swmpi::Comm& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    // Ragged contributions, rank 0's empty.
    std::vector<std::uint64_t> mine(rank % 4);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      mine[i] = rank * 1000 + i;
    }
    const std::vector<std::uint64_t> all = swmpi::allgatherv(
        comm, std::span<const std::uint64_t>(mine.data(), mine.size()));
    std::vector<std::uint64_t> expected;
    for (std::size_t r = 0; r < static_cast<std::size_t>(size); ++r) {
      for (std::size_t i = 0; i < r % 4; ++i) {
        expected.push_back(r * 1000 + i);
      }
    }
    EXPECT_EQ(all, expected) << "size=" << size << " rank=" << rank;
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, ShardedCollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

/// One (size, k, d) cell: run the sharded reduce_and_update against a
/// serial reference that reproduces the former root-serialized path —
/// binomial fold of the per-rank partials, one full-range apply — and
/// demand bit-identical centroids plus equal shift/empty stats on every
/// rank.
void expect_matches_root_serialized(int size, std::size_t k, std::size_t d) {
  util::Matrix initial(k, d);
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t u = 0; u < d; ++u) {
      initial.at(j, u) = static_cast<float>((j * 31 + u * 7) % 11) - 5.0f;
    }
  }
  // Per-rank partials; cluster j stays empty on every rank when j%3==2.
  std::vector<std::vector<double>> sums_parts(size);
  std::vector<std::vector<double>> counts_parts(size);
  for (int r = 0; r < size; ++r) {
    sums_parts[r].resize(k * d);
    counts_parts[r].resize(k);
    for (std::size_t j = 0; j < k; ++j) {
      if (j % 3 == 2) {
        continue;
      }
      counts_parts[r][j] = static_cast<double>((r + j) % 3 + 1);
      for (std::size_t u = 0; u < d; ++u) {
        sums_parts[r][j * d + u] =
            spread_value(static_cast<std::size_t>(r), j * d + u);
      }
    }
  }
  const std::vector<double> ref_sums = binomial_fold(sums_parts);
  const std::vector<double> ref_counts = binomial_fold(counts_parts);
  util::Matrix ref_centroids = initial;
  const detail::UpdateOutcome ref =
      detail::apply_update(ref_centroids, ref_sums, ref_counts);

  util::Matrix centroids = initial;
  swmpi::run_spmd(size, [&](swmpi::Comm& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    detail::UpdateAccumulator acc(k, d);
    acc.sums = sums_parts[rank];
    acc.counts = counts_parts[rank];
    const detail::UpdateOutcome got =
        detail::reduce_and_update(comm, centroids, acc);
    EXPECT_EQ(bits(got.shift), bits(ref.shift))
        << "size=" << size << " k=" << k << " rank=" << rank;
    EXPECT_EQ(got.empty_clusters, ref.empty_clusters)
        << "size=" << size << " k=" << k << " rank=" << rank;
  });
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t u = 0; u < d; ++u) {
      EXPECT_EQ(std::bit_cast<std::uint32_t>(centroids.at(j, u)),
                std::bit_cast<std::uint32_t>(ref_centroids.at(j, u)))
          << "size=" << size << " k=" << k << " j=" << j << " u=" << u;
    }
  }
}

TEST(ShardedUpdate, RaggedShards) {
  // k not divisible by the rank count.
  expect_matches_root_serialized(3, 10, 4);
  expect_matches_root_serialized(4, 10, 3);
  expect_matches_root_serialized(5, 13, 2);
  expect_matches_root_serialized(8, 13, 3);
}

TEST(ShardedUpdate, FewerClustersThanRanks) {
  expect_matches_root_serialized(5, 3, 4);
  expect_matches_root_serialized(8, 2, 3);
  expect_matches_root_serialized(16, 5, 2);
}

TEST(ShardedUpdate, SingleRankFallThrough) {
  expect_matches_root_serialized(1, 7, 3);
}

/// Integer-valued samples make every accumulator sum exact in double
/// regardless of association, so the engines must match serial Lloyd
/// bit-for-bit — an honest cross-engine determinism check (with real-valued
/// data the bit match additionally leans on the reduce_scatter association
/// proof covered above).
TEST(ShardedUpdate, EnginesMatchSerialLloydBitForBit) {
  const std::size_t n = 97;
  const std::size_t d = 5;
  std::vector<float> values(n * d);
  std::uint64_t state = 12345;
  for (float& v : values) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    v = static_cast<float>((state >> 33) % 17) - 8.0f;
  }
  const data::Dataset ds("int-grid",
                         util::Matrix::from_vector(n, d, std::move(values)));
  KmeansConfig config;
  config.k = 7;
  config.max_iterations = 10;
  const simarch::MachineConfig machine = simarch::MachineConfig::tiny(2, 4,
                                                                      8192);
  const KmeansResult ref = lloyd_serial(ds, config);
  for (const Level level :
       {Level::kLevel1, Level::kLevel2, Level::kLevel3}) {
    const KmeansResult got = run_level(level, ds, config, machine);
    EXPECT_EQ(got.iterations, ref.iterations) << level_name(level);
    EXPECT_EQ(got.assignments, ref.assignments) << level_name(level);
    EXPECT_EQ(got.empty_clusters, ref.empty_clusters) << level_name(level);
    ASSERT_EQ(got.centroids.rows(), ref.centroids.rows());
    for (std::size_t j = 0; j < config.k; ++j) {
      for (std::size_t u = 0; u < d; ++u) {
        EXPECT_EQ(std::bit_cast<std::uint32_t>(got.centroids.at(j, u)),
                  std::bit_cast<std::uint32_t>(ref.centroids.at(j, u)))
            << level_name(level) << " j=" << j << " u=" << u;
      }
    }
  }
}

/// The hierarchical collective schedule across a supernode boundary must
/// not move a bit. tiny(8, 4, ...) spans two supernodes (16 CGs, eight per
/// supernode), so every engine collective runs the two-level path with a
/// live inter-supernode stage. Real-valued samples: unlike the integer
/// grid above, the accumulator sums here are association-sensitive, so
/// this match leans on the schedule's fold-order proof end to end.
TEST(ShardedUpdate, HierCollectivesBitIdenticalAcrossSupernodes) {
  const std::size_t n = 257;
  const std::size_t d = 6;
  std::vector<float> values(n * d);
  std::uint64_t state = 99991;
  for (float& v : values) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    v = static_cast<float>((state >> 33) % 4096) / 256.0f - 8.0f;
  }
  const data::Dataset ds("real-blobs",
                         util::Matrix::from_vector(n, d, std::move(values)));
  KmeansConfig config;
  config.k = 9;
  config.max_iterations = 8;
  const simarch::MachineConfig machine =
      simarch::MachineConfig::tiny(8, 4, 8192);
  ASSERT_GT(machine.num_supernodes(), 1u);
  const KmeansResult ref = lloyd_serial(ds, config);
  for (const Level level :
       {Level::kLevel1, Level::kLevel2, Level::kLevel3}) {
    KmeansConfig hier_cfg = config;
    hier_cfg.hier_collectives = true;
    KmeansConfig flat_cfg = config;
    flat_cfg.hier_collectives = false;
    const KmeansResult hier = run_level(level, ds, hier_cfg, machine);
    const KmeansResult flat = run_level(level, ds, flat_cfg, machine);
    EXPECT_EQ(hier.iterations, ref.iterations) << level_name(level);
    EXPECT_EQ(hier.assignments, ref.assignments) << level_name(level);
    EXPECT_EQ(flat.iterations, hier.iterations) << level_name(level);
    EXPECT_EQ(flat.assignments, hier.assignments) << level_name(level);
    ASSERT_EQ(hier.centroids.rows(), ref.centroids.rows());
    for (std::size_t j = 0; j < config.k; ++j) {
      for (std::size_t u = 0; u < d; ++u) {
        const auto hier_bits =
            std::bit_cast<std::uint32_t>(hier.centroids.at(j, u));
        EXPECT_EQ(hier_bits,
                  std::bit_cast<std::uint32_t>(ref.centroids.at(j, u)))
            << level_name(level) << " vs serial, j=" << j << " u=" << u;
        EXPECT_EQ(hier_bits,
                  std::bit_cast<std::uint32_t>(flat.centroids.at(j, u)))
            << level_name(level) << " vs flat, j=" << j << " u=" << u;
      }
    }
  }
}

/// Duplicate first-k seeds leave the duplicate centroids with no members:
/// serial Lloyd and all three engines must report the same (nonzero)
/// empty-cluster count instead of silently freezing them.
TEST(ShardedUpdate, EmptyClustersReportedConsistently) {
  const std::size_t n = 40;
  const std::size_t d = 2;
  std::vector<float> values(n * d, 0.0f);
  for (std::size_t i = 4; i < n; ++i) {
    values[i * d] = 10.0f + static_cast<float>(i % 3);
    values[i * d + 1] = 10.0f;
  }
  const data::Dataset ds("dup-seeds",
                         util::Matrix::from_vector(n, d, std::move(values)));
  KmeansConfig config;
  config.k = 4;  // first-k init: all four seeds are the same point
  config.max_iterations = 10;
  const simarch::MachineConfig machine = simarch::MachineConfig::tiny(2, 4,
                                                                      8192);
  const KmeansResult ref = lloyd_serial(ds, config);
  EXPECT_GT(ref.empty_clusters, 0u);
  for (const Level level :
       {Level::kLevel1, Level::kLevel2, Level::kLevel3}) {
    const KmeansResult got = run_level(level, ds, config, machine);
    EXPECT_EQ(got.empty_clusters, ref.empty_clusters) << level_name(level);
  }
}

}  // namespace
}  // namespace swhkm::core
