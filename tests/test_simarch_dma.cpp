#include <gtest/gtest.h>

#include <vector>

#include "simarch/dma.hpp"
#include "util/error.hpp"

namespace swhkm::simarch {
namespace {

class DmaTest : public ::testing::Test {
 protected:
  MachineConfig config_;
  CostTally tally_;
};

TEST_F(DmaTest, GetCopiesData) {
  DmaEngine dma(config_, tally_);
  std::vector<float> src{1, 2, 3, 4};
  std::vector<float> dst(4, 0);
  dma.get(dst, src, DmaEngine::Purpose::kSampleRead);
  EXPECT_EQ(dst, src);
}

TEST_F(DmaTest, PutCopiesData) {
  DmaEngine dma(config_, tally_);
  std::vector<float> src{5, 6};
  std::vector<float> dst(2, 0);
  dma.put(dst, src, DmaEngine::Purpose::kWriteback);
  EXPECT_EQ(dst, src);
}

TEST_F(DmaTest, MismatchedExtentsThrow) {
  DmaEngine dma(config_, tally_);
  std::vector<float> src{1, 2, 3};
  std::vector<float> dst(2);
  EXPECT_THROW(dma.get(dst, src, DmaEngine::Purpose::kSampleRead),
               swhkm::InvalidArgument);
}

TEST_F(DmaTest, ChargesSampleReadBucket) {
  DmaEngine dma(config_, tally_);
  dma.account(1024, DmaEngine::Purpose::kSampleRead);
  EXPECT_GT(tally_.sample_read_s, 0.0);
  EXPECT_EQ(tally_.centroid_stream_s, 0.0);
  EXPECT_EQ(tally_.dma_bytes, 1024u);
}

TEST_F(DmaTest, ChargesCentroidStreamBucket) {
  DmaEngine dma(config_, tally_);
  dma.account(2048, DmaEngine::Purpose::kCentroidStream);
  EXPECT_GT(tally_.centroid_stream_s, 0.0);
  EXPECT_EQ(tally_.sample_read_s, 0.0);
}

TEST_F(DmaTest, ChargesWritebackToUpdate) {
  DmaEngine dma(config_, tally_);
  dma.account(100, DmaEngine::Purpose::kWriteback);
  EXPECT_GT(tally_.update_s, 0.0);
}

TEST_F(DmaTest, TransferTimeIsLatencyPlusBandwidth) {
  DmaEngine dma(config_, tally_);
  const double expected =
      config_.dma_latency + 32e9 / config_.dma_bandwidth;  // 32 GB at B
  EXPECT_NEAR(dma.transfer_time(32000000000ull), expected, expected * 1e-9);
  // zero-byte transfer still pays the issue latency
  EXPECT_DOUBLE_EQ(dma.transfer_time(0), config_.dma_latency);
}

TEST_F(DmaTest, TimesAccumulateAcrossTransfers) {
  DmaEngine dma(config_, tally_);
  dma.account(1000, DmaEngine::Purpose::kSampleRead);
  const double after_one = tally_.sample_read_s;
  dma.account(1000, DmaEngine::Purpose::kSampleRead);
  EXPECT_NEAR(tally_.sample_read_s, 2 * after_one, 1e-15);
  EXPECT_EQ(tally_.dma_bytes, 2000u);
}

TEST(CostTally, TotalSumsComponents) {
  CostTally t;
  t.sample_read_s = 1;
  t.centroid_stream_s = 2;
  t.compute_s = 3;
  t.mesh_comm_s = 4;
  t.net_comm_s = 5;
  t.update_s = 6;
  EXPECT_DOUBLE_EQ(t.total_s(), 21.0);
}

TEST(CostTally, PlusEqualsAddsEverything) {
  CostTally a;
  a.compute_s = 1;
  a.dma_bytes = 10;
  CostTally b;
  b.compute_s = 2;
  b.dma_bytes = 20;
  a += b;
  EXPECT_DOUBLE_EQ(a.compute_s, 3.0);
  EXPECT_EQ(a.dma_bytes, 30u);
}

TEST(CostTally, MaxInPlaceTakesCriticalPathAndSumsVolumes) {
  CostTally a;
  a.compute_s = 1;
  a.net_comm_s = 9;
  a.net_bytes = 5;
  CostTally b;
  b.compute_s = 4;
  b.net_comm_s = 2;
  b.net_bytes = 7;
  a.max_in_place(b);
  EXPECT_DOUBLE_EQ(a.compute_s, 4.0);
  EXPECT_DOUBLE_EQ(a.net_comm_s, 9.0);
  EXPECT_EQ(a.net_bytes, 12u);
}

TEST(CostTally, SummaryMentionsTotal) {
  CostTally t;
  t.compute_s = 1.5;
  EXPECT_NE(t.summary().find("total 1.500 s"), std::string::npos);
}

}  // namespace
}  // namespace swhkm::simarch
