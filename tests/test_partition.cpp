#include <gtest/gtest.h>

#include "core/partition.hpp"
#include "util/error.hpp"

namespace swhkm::core {
namespace {

using simarch::MachineConfig;

constexpr std::size_t kLdm = 16384;  // SW26010 LDM in float elements

// ----------------------------------------------------- paper constraints

TEST(PaperConstraints, C1MatchesFormula) {
  // d(1+2k)+k <= LDM: d=100, k=20 -> 100*41+20 = 4120
  EXPECT_TRUE(paper::c1({10, 20, 100}, 4120));
  EXPECT_FALSE(paper::c1({10, 20, 100}, 4119));
}

TEST(PaperConstraints, C2C3Boundaries) {
  EXPECT_TRUE(paper::c2({1, 1, 5461}, kLdm));   // 3*5461+1 = 16384
  EXPECT_FALSE(paper::c2({1, 1, 5462}, kLdm));
  EXPECT_TRUE(paper::c3({1, 5461, 1}, kLdm));
  EXPECT_FALSE(paper::c3({1, 5462, 1}, kLdm));
}

TEST(PaperConstraints, Level2ScalesByGroup) {
  const ProblemShape shape{1, 100000, 4};
  EXPECT_FALSE(paper::c3(shape, kLdm));
  EXPECT_TRUE(paper::c3_l2(shape, kLdm, 64, 64));
  // m_group must stay within the CG
  EXPECT_FALSE(paper::c3_l2(shape, kLdm, 65, 64));
}

TEST(PaperConstraints, Level3HeadlineShapes) {
  // The paper's flagship claim: k=160,000 and d=196,608 simultaneously.
  // C2'' and C3'' hold — but the published C1'' (which counts LDM-resident
  // accumulators) misses its own headline by ~3700x: d(1+2k)+k ~ 6.3e13
  // elements vs 4096 nodes * aggregate LDM ~ 1.7e10. The implementation
  // necessarily keeps centroids/accumulators in node DDR, which is the
  // feasibility rule our planner enforces (and documents in DESIGN.md).
  const ProblemShape shape{1265723, 160000, 196608};
  const MachineConfig machine = MachineConfig::sw26010(4096);
  EXPECT_TRUE(paper::c2_l3(shape, kLdm, 64));
  EXPECT_TRUE(paper::c3_l3(shape, kLdm, 64, 64));
  EXPECT_FALSE(paper::c1_l3(shape, kLdm, machine.total_cpes()));
}

TEST(PaperConstraints, BenderLimitReproduced) {
  // Bender et al's two-level memory interaction constraint confined them
  // to k < 18 at d > 152,917 (Section II). Level 1's C1 shows the same
  // coupling: at d = 152917 with 16384-element LDM nothing fits, and even
  // with Trinity-scale scratchpad the k that fits stays tiny.
  const std::uint64_t d = 152917;
  const std::uint64_t scratch_elems = 4 * 1024 * 1024;  // 16 MiB scratchpad
  std::uint64_t k = 0;
  while (paper::c1({1, k + 1, d}, scratch_elems)) {
    ++k;
  }
  EXPECT_LT(k, 18u);
}

// ----------------------------------------------------- level feasibility

TEST(Feasibility, Level1SmallShapesFit) {
  const MachineConfig machine = MachineConfig::sw26010(1);
  EXPECT_TRUE(check_level(Level::kLevel1, {65554, 256, 28}, machine).ok);
  EXPECT_TRUE(check_level(Level::kLevel1, {2458285, 64, 68}, machine).ok);
}

TEST(Feasibility, Level1LargeKdFails) {
  const MachineConfig machine = MachineConfig::sw26010(1);
  const Feasibility f = check_level(Level::kLevel1, {1000, 2000, 68}, machine);
  EXPECT_FALSE(f.ok);
  EXPECT_NE(f.reason.find("C1"), std::string::npos);
}

TEST(Feasibility, Level1RejectsHugeD) {
  const MachineConfig machine = MachineConfig::sw26010(1);
  const Feasibility f = check_level(Level::kLevel1, {10, 1, 6000}, machine);
  EXPECT_FALSE(f.ok);
  EXPECT_NE(f.reason.find("C2"), std::string::npos);
}

TEST(Feasibility, Level2HandlesLargeK) {
  const MachineConfig machine = MachineConfig::sw26010(256);
  EXPECT_TRUE(check_level(Level::kLevel2, {434874, 100000, 4}, machine).ok);
  EXPECT_TRUE(check_level(Level::kLevel2, {2458285, 10000, 68}, machine).ok);
}

TEST(Feasibility, Level2DimensionWall) {
  // The paper observed Level 2 dying above d = 4096 (Fig. 7). Our layout
  // reproduces the wall exactly: 4d <= 16384.
  const MachineConfig machine = MachineConfig::sw26010(128);
  EXPECT_TRUE(check_level(Level::kLevel2, {1265723, 2000, 4096}, machine).ok);
  EXPECT_FALSE(
      check_level(Level::kLevel2, {1265723, 2000, 4608}, machine).ok);
}

TEST(Feasibility, Level2WholeSampleMustFitCpe) {
  const MachineConfig machine = MachineConfig::sw26010(128);
  const Feasibility f =
      check_level(Level::kLevel2, {1000, 10, 6000}, machine);
  EXPECT_FALSE(f.ok);
  EXPECT_NE(f.reason.find("C2"), std::string::npos);
}

TEST(Feasibility, Level3BreaksTheDimensionWall) {
  const MachineConfig machine = MachineConfig::sw26010(128);
  EXPECT_TRUE(check_level(Level::kLevel3, {1265723, 2000, 4608}, machine).ok);
  EXPECT_TRUE(
      check_level(Level::kLevel3, {1265723, 2000, 196608}, machine).ok);
}

TEST(Feasibility, Level3HeadlineShape) {
  const MachineConfig machine = MachineConfig::sw26010(4096);
  EXPECT_TRUE(
      check_level(Level::kLevel3, {1265723, 160000, 196608}, machine).ok);
}

TEST(Feasibility, Level3Fig8EndPointRuns) {
  // k = 131072 at d = 4096 on 128 nodes — the paper's own Fig. 8 end point
  // (which its published C1'' would reject; see partition.cpp).
  const MachineConfig machine = MachineConfig::sw26010(128);
  EXPECT_TRUE(
      check_level(Level::kLevel3, {1265723, 131072, 4096}, machine).ok);
}

TEST(Feasibility, Level3DimensionCeiling) {
  // C2'': 3d+1 <= 64*LDM caps d at ~349,525; engineering layout caps the
  // streamable d at 64 * (16384/4) = 262,144.
  const MachineConfig machine = MachineConfig::sw26010(4096);
  EXPECT_TRUE(check_level(Level::kLevel3, {1000, 2, 262144}, machine).ok);
  EXPECT_FALSE(check_level(Level::kLevel3, {1000, 2, 400000}, machine).ok);
}

TEST(Feasibility, ZeroShapeRejected) {
  const MachineConfig machine = MachineConfig::sw26010(1);
  EXPECT_FALSE(check_level(Level::kLevel1, {0, 2, 2}, machine).ok);
  EXPECT_FALSE(check_level(Level::kLevel2, {2, 0, 2}, machine).ok);
  EXPECT_FALSE(check_level(Level::kLevel3, {2, 2, 0}, machine).ok);
}

TEST(Feasibility, DdrCapacityGates) {
  // A shape whose centroid matrix alone exceeds node DDR must be rejected
  // even though LDM streaming could handle it.
  MachineConfig machine = MachineConfig::sw26010(16);
  machine.ddr_bytes_per_node = 1ull << 20;  // 1 MiB nodes
  const Feasibility f =
      check_level(Level::kLevel3, {100000, 10000, 4096}, machine);
  EXPECT_FALSE(f.ok);
  EXPECT_NE(f.reason.find("DDR"), std::string::npos);
}

// -------------------------------------------------------------- planning

TEST(MakePlan, Level1PlanShape) {
  const MachineConfig machine = MachineConfig::sw26010(1);
  const PartitionPlan plan = make_plan(Level::kLevel1, {65554, 256, 28}, machine);
  EXPECT_EQ(plan.level, Level::kLevel1);
  EXPECT_EQ(plan.num_flow_units, 256u);  // every CPE a flow unit
  EXPECT_EQ(plan.k_local, 256u);
  EXPECT_EQ(plan.d_local, 28u);
  EXPECT_TRUE(plan.ldm.resident);
}

TEST(MakePlan, Level2AutoGroupIsSmallestFeasible) {
  const MachineConfig machine = MachineConfig::sw26010(256);
  const PartitionPlan plan =
      make_plan(Level::kLevel2, {434874, 100000, 4}, machine);
  EXPECT_EQ(plan.level, Level::kLevel2);
  EXPECT_GE(plan.m_group, 1u);
  EXPECT_LE(plan.m_group, 64u);
  EXPECT_EQ(plan.k_local, (100000 + plan.m_group - 1) / plan.m_group);
  // num_flow_units * m_group covers all CPEs
  EXPECT_EQ(plan.num_flow_units * plan.m_group, machine.total_cpes());
}

TEST(MakePlan, Level2ExplicitGroupRespected) {
  const MachineConfig machine = MachineConfig::sw26010(8);
  const PartitionPlan plan =
      make_plan(Level::kLevel2, {10000, 1024, 64}, machine, 16);
  EXPECT_EQ(plan.m_group, 16u);
  EXPECT_EQ(plan.k_local, 64u);
}

TEST(MakePlan, Level2RejectsNonDivisorGroup) {
  const MachineConfig machine = MachineConfig::sw26010(8);
  EXPECT_THROW(make_plan(Level::kLevel2, {10000, 1024, 64}, machine, 5),
               InfeasibleError);
}

TEST(MakePlan, Level3SplitsDimensions) {
  const MachineConfig machine = MachineConfig::sw26010(128);
  const PartitionPlan plan =
      make_plan(Level::kLevel3, {1265723, 2000, 196608}, machine);
  EXPECT_EQ(plan.d_local, 3072u);  // 196608 / 64
  EXPECT_GE(plan.mprime_group, 1u);
  EXPECT_EQ(plan.num_flow_units * plan.mprime_group, machine.num_cgs());
}

TEST(MakePlan, Level3RoundsUpOddDimensions) {
  const MachineConfig machine = MachineConfig::sw26010(4);
  const PartitionPlan plan = make_plan(Level::kLevel3, {1000, 8, 130}, machine);
  EXPECT_EQ(plan.d_local, 3u);  // ceil(130/64)
}

TEST(MakePlan, InfeasibleThrowsWithConstraintName) {
  const MachineConfig machine = MachineConfig::sw26010(1);
  try {
    make_plan(Level::kLevel1, {1000, 100000, 100}, machine);
    FAIL();
  } catch (const InfeasibleError& e) {
    EXPECT_NE(std::string(e.what()).find("C"), std::string::npos);
  }
}

TEST(MakePlan, DescribeIsInformative) {
  const MachineConfig machine = MachineConfig::sw26010(128);
  const PartitionPlan plan =
      make_plan(Level::kLevel3, {1265723, 2000, 196608}, machine);
  const std::string desc = plan.describe();
  EXPECT_NE(desc.find("Level 3"), std::string::npos);
  EXPECT_NE(desc.find("m'_group"), std::string::npos);
  EXPECT_NE(desc.find("d_local=3072"), std::string::npos);
}

TEST(Candidates, MGroupsAreDivisorsOfCg) {
  const MachineConfig machine = MachineConfig::sw26010(1);
  const auto groups = candidate_m_groups(machine);
  EXPECT_EQ(groups, (std::vector<std::size_t>{1, 2, 4, 8, 16, 32, 64}));
}

TEST(Candidates, MPrimeGroupsDivideCgCount) {
  const MachineConfig machine = MachineConfig::sw26010(2);  // 8 CGs
  const auto groups = candidate_mprime_groups(machine);
  EXPECT_EQ(groups, (std::vector<std::size_t>{1, 2, 4, 8}));
}

// ------------------------------------------------- capability (Table I)

TEST(Capability, MaxKOrdersByLevel) {
  const MachineConfig machine = MachineConfig::sw26010(128);
  const std::uint64_t d = 68;
  const std::uint64_t l1 = max_k_for_level(Level::kLevel1, d, machine);
  const std::uint64_t l2 = max_k_for_level(Level::kLevel2, d, machine);
  const std::uint64_t l3 = max_k_for_level(Level::kLevel3, d, machine);
  EXPECT_LT(l1, l2);
  EXPECT_LE(l2, l3);
  // Our approach's Table I row: k in the 160,000 class must be reachable.
  EXPECT_GE(l3, 160000u);
}

TEST(Capability, MaxDOrdersByLevel) {
  const MachineConfig machine = MachineConfig::sw26010(128);
  const std::uint64_t k = 2000;
  const std::uint64_t l2 = max_d_for_level(Level::kLevel2, k, machine);
  const std::uint64_t l3 = max_d_for_level(Level::kLevel3, k, machine);
  EXPECT_EQ(l2, 4096u);   // the Fig. 7 wall
  EXPECT_GE(l3, 196608u); // the Table I headline dimension
}

TEST(Capability, Level1MaxKdProductBounded) {
  const MachineConfig machine = MachineConfig::sw26010(1);
  const std::uint64_t max_k = max_k_for_level(Level::kLevel1, 68, machine);
  // C1 with d=68: 68*(1+2k)+k <= 16384 => k <= 119
  EXPECT_LE(max_k, 119u);
  EXPECT_GE(max_k, 100u);
}

// --------------------------------------------------------- LDM layouts

TEST(Layout, ResidentPlanFitsLdm) {
  const MachineConfig machine = MachineConfig::sw26010(1);
  const PartitionPlan plan = make_plan(Level::kLevel1, {1000, 10, 100}, machine);
  EXPECT_LE(plan.ldm.total_elems, machine.ldm_elems());
  EXPECT_TRUE(plan.ldm.resident);
}

TEST(Layout, StreamedPlanHasTiles) {
  const MachineConfig machine = MachineConfig::sw26010(128);
  const PartitionPlan plan =
      make_plan(Level::kLevel2, {1265723, 2000, 4096}, machine, 64);
  EXPECT_FALSE(plan.ldm.resident);
  EXPECT_GE(plan.ldm.tile_rows, 1u);
  EXPECT_LE(plan.ldm.total_elems, machine.ldm_elems());
}

TEST(Layout, OurResidencyImpliesPaperC1Prime) {
  // Our per-CPE residency check is strictly tighter than the paper's
  // aggregate C1', so resident Level 2 plans always satisfy the paper.
  const MachineConfig machine = MachineConfig::sw26010(8);
  for (std::uint64_t k : {64ull, 256ull, 1024ull}) {
    for (std::uint64_t d : {16ull, 64ull, 128ull}) {
      const ProblemShape shape{10000, k, d};
      if (!check_level(Level::kLevel2, shape, machine).ok) {
        continue;
      }
      const PartitionPlan plan = make_plan(Level::kLevel2, shape, machine);
      if (plan.ldm.resident) {
        EXPECT_TRUE(paper::c1_l2(shape, machine.ldm_elems(), plan.m_group))
            << "k=" << k << " d=" << d;
      }
    }
  }
}

}  // namespace
}  // namespace swhkm::core
