#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "util/error.hpp"

namespace swhkm::core {
namespace {

data::Dataset two_points() {
  return data::Dataset("two",
                       util::Matrix::from_vector(2, 2, {0, 0, 3, 4}));
}

TEST(Inertia, HandComputed) {
  const data::Dataset ds = two_points();
  util::Matrix centroids = util::Matrix::from_vector(1, 2, {0, 0});
  // distances^2: 0 and 25, mean = 12.5
  EXPECT_DOUBLE_EQ(inertia(ds, centroids, {0, 0}), 12.5);
}

TEST(Inertia, PerfectCentroidsGiveZero) {
  const data::Dataset ds = two_points();
  util::Matrix centroids = util::Matrix::from_vector(2, 2, {0, 0, 3, 4});
  EXPECT_DOUBLE_EQ(inertia(ds, centroids, {0, 1}), 0.0);
}

TEST(Inertia, WrongAssignmentCountRejected) {
  const data::Dataset ds = two_points();
  util::Matrix centroids = util::Matrix::from_vector(1, 2, {0, 0});
  EXPECT_THROW(inertia(ds, centroids, {0}), swhkm::InvalidArgument);
}

TEST(ClusterSizes, Counts) {
  const auto sizes = cluster_sizes({0, 1, 1, 2, 1}, 4);
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 3, 1, 0}));
}

TEST(ClusterSizes, OutOfRangeLabelRejected) {
  EXPECT_THROW(cluster_sizes({5}, 3), swhkm::InvalidArgument);
}

TEST(Agreement, IdenticalIsOne) {
  EXPECT_DOUBLE_EQ(assignment_agreement({1, 2, 3}, {1, 2, 3}), 1.0);
}

TEST(Agreement, DisjointIsZero) {
  EXPECT_DOUBLE_EQ(assignment_agreement({1, 1}, {2, 2}), 0.0);
}

TEST(Agreement, PartialFraction) {
  EXPECT_DOUBLE_EQ(assignment_agreement({1, 2, 3, 4}, {1, 2, 0, 0}), 0.5);
}

TEST(Agreement, EmptyIsVacuouslyOne) {
  EXPECT_DOUBLE_EQ(assignment_agreement({}, {}), 1.0);
}

TEST(Agreement, LengthMismatchRejected) {
  EXPECT_THROW(assignment_agreement({1}, {1, 2}), swhkm::InvalidArgument);
}

TEST(CentroidDiff, MaxAbs) {
  util::Matrix a = util::Matrix::from_vector(1, 3, {1, 2, 3});
  util::Matrix b = util::Matrix::from_vector(1, 3, {1, 5, 2});
  EXPECT_DOUBLE_EQ(centroid_max_abs_diff(a, b), 3.0);
}

TEST(CentroidDiff, ShapeMismatchRejected) {
  util::Matrix a(1, 2);
  util::Matrix b(2, 1);
  EXPECT_THROW(centroid_max_abs_diff(a, b), swhkm::InvalidArgument);
}

}  // namespace
}  // namespace swhkm::core
