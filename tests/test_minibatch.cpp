#include <gtest/gtest.h>

#include "core/lloyd.hpp"
#include "core/metrics.hpp"
#include "core/minibatch.hpp"
#include "data/synthetic.hpp"
#include "util/error.hpp"

namespace swhkm::core {
namespace {

TEST(MiniBatch, RecoversSeparatedBlobs) {
  const data::Dataset ds = data::make_blobs(3000, 8, 5, 11);
  MiniBatchConfig config;
  config.k = 5;
  config.batch_size = 128;
  config.iterations = 200;
  config.init = InitMethod::kPlusPlus;  // spread seeds across the blobs
  config.seed = 3;
  const KmeansResult result = minibatch_kmeans(ds, config);
  // Ground-truth memberships are round-robin (i % 5).
  std::vector<std::uint32_t> truth(ds.n());
  for (std::size_t i = 0; i < ds.n(); ++i) {
    truth[i] = static_cast<std::uint32_t>(i % 5);
  }
  EXPECT_GT(adjusted_rand_index(result.assignments, truth), 0.98);
}

TEST(MiniBatch, InertiaApproachesLloyd) {
  const data::Dataset ds = data::make_blobs(2000, 6, 4, 5);
  KmeansConfig exact_config;
  exact_config.k = 4;
  exact_config.max_iterations = 50;
  exact_config.init = InitMethod::kRandom;
  const double exact = lloyd_serial(ds, exact_config).inertia;

  MiniBatchConfig config;
  config.k = 4;
  config.batch_size = 256;
  config.iterations = 300;
  const double approx = minibatch_kmeans(ds, config).inertia;
  EXPECT_LT(approx, exact * 1.25 + 1e-9);  // within 25% of exact objective
}

TEST(MiniBatch, DeterministicForSeed) {
  const data::Dataset ds = data::make_uniform(500, 5, 9);
  MiniBatchConfig config;
  config.k = 6;
  config.batch_size = 64;
  config.iterations = 50;
  config.seed = 42;
  const KmeansResult a = minibatch_kmeans(ds, config);
  const KmeansResult b = minibatch_kmeans(ds, config);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(centroid_max_abs_diff(a.centroids, b.centroids), 0.0);
}

TEST(MiniBatch, EarlyStopWithTolerance) {
  const data::Dataset ds = data::make_blobs(1000, 4, 3, 2);
  MiniBatchConfig config;
  config.k = 3;
  config.batch_size = 200;
  config.iterations = 500;
  config.tolerance = 0.05;  // per-centre steps shrink as 1/count
  config.patience = 3;
  const KmeansResult result = minibatch_kmeans(ds, config);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations, 500u);
}

TEST(MiniBatch, HistoryHasOneEntryPerIteration) {
  const data::Dataset ds = data::make_uniform(300, 3, 4);
  MiniBatchConfig config;
  config.k = 4;
  config.iterations = 25;
  const KmeansResult result = minibatch_kmeans(ds, config);
  EXPECT_EQ(result.history.size(), result.iterations);
}

TEST(MiniBatch, BatchLargerThanDatasetClamps) {
  const data::Dataset ds = data::make_uniform(50, 3, 7);
  MiniBatchConfig config;
  config.k = 3;
  config.batch_size = 10000;
  config.iterations = 20;
  const KmeansResult result = minibatch_kmeans(ds, config);
  EXPECT_EQ(result.assignments.size(), 50u);
}

TEST(MiniBatch, RejectsBadConfig) {
  const data::Dataset ds = data::make_uniform(10, 2, 1);
  MiniBatchConfig config;
  config.k = 0;
  EXPECT_THROW(minibatch_kmeans(ds, config), swhkm::InvalidArgument);
  config.k = 3;
  config.batch_size = 0;
  EXPECT_THROW(minibatch_kmeans(ds, config), swhkm::InvalidArgument);
  config.batch_size = 8;
  config.k = 11;  // > n
  EXPECT_THROW(minibatch_kmeans(ds, config), swhkm::InvalidArgument);
}

}  // namespace
}  // namespace swhkm::core
