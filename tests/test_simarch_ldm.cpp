#include <gtest/gtest.h>

#include "simarch/ldm.hpp"
#include "util/error.hpp"

namespace swhkm::simarch {
namespace {

TEST(Ldm, StartsEmpty) {
  LdmAllocator ldm(1024);
  EXPECT_EQ(ldm.capacity(), 1024u);
  EXPECT_EQ(ldm.used(), 0u);
  EXPECT_EQ(ldm.remaining(), 1024u);
  EXPECT_EQ(ldm.live_blocks(), 0u);
}

TEST(Ldm, AllocTracksUsage) {
  LdmAllocator ldm(1024);
  ldm.alloc("a", 100);
  ldm.alloc("b", 200);
  EXPECT_EQ(ldm.used(), 300u);
  EXPECT_EQ(ldm.remaining(), 724u);
  EXPECT_EQ(ldm.live_blocks(), 2u);
}

TEST(Ldm, ExactFillIsAllowed) {
  LdmAllocator ldm(256);
  ldm.alloc("all", 256);
  EXPECT_EQ(ldm.remaining(), 0u);
}

TEST(Ldm, OverflowThrowsCapacityError) {
  LdmAllocator ldm(256);
  ldm.alloc("a", 200);
  EXPECT_THROW(ldm.alloc("b", 57), CapacityError);
  // the failed alloc must not corrupt state
  EXPECT_EQ(ldm.used(), 200u);
  EXPECT_EQ(ldm.live_blocks(), 1u);
}

TEST(Ldm, OverflowMessageNamesBlocks) {
  LdmAllocator ldm(256);
  ldm.alloc("sample", 200);
  try {
    ldm.alloc("centroids", 100);
    FAIL();
  } catch (const CapacityError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("centroids"), std::string::npos);
    EXPECT_NE(what.find("sample"), std::string::npos);
  }
}

TEST(Ldm, FreeIsLifo) {
  LdmAllocator ldm(1024);
  ldm.alloc("a", 100);
  ldm.alloc("b", 100);
  EXPECT_THROW(ldm.free("a"), RuntimeFault);
  ldm.free("b");
  ldm.free("a");
  EXPECT_EQ(ldm.used(), 0u);
}

TEST(Ldm, FreeOnEmptyThrows) {
  LdmAllocator ldm(64);
  EXPECT_THROW(ldm.free("ghost"), RuntimeFault);
}

TEST(Ldm, HighWaterPersistsAfterFree) {
  LdmAllocator ldm(1024);
  ldm.alloc("a", 600);
  ldm.free("a");
  ldm.alloc("b", 100);
  EXPECT_EQ(ldm.high_water(), 600u);
  EXPECT_EQ(ldm.used(), 100u);
}

TEST(Ldm, ResetClearsEverythingButCapacity) {
  LdmAllocator ldm(1024);
  ldm.alloc("a", 512);
  ldm.reset();
  EXPECT_EQ(ldm.used(), 0u);
  EXPECT_EQ(ldm.live_blocks(), 0u);
  ldm.alloc("again", 1024);  // full capacity available again
}

TEST(Ldm, ZeroByteAllocationIsFine) {
  LdmAllocator ldm(16);
  ldm.alloc("empty", 0);
  EXPECT_EQ(ldm.live_blocks(), 1u);
  ldm.free("empty");
}

TEST(Ldm, LayoutListsBlocks) {
  LdmAllocator ldm(2048);
  ldm.alloc("sample", 1024);
  const std::string layout = ldm.layout();
  EXPECT_NE(layout.find("sample"), std::string::npos);
  EXPECT_NE(layout.find("1.00 KiB"), std::string::npos);
}

TEST(LdmBlock, RaiiFreesOnScopeExit) {
  LdmAllocator ldm(256);
  {
    LdmBlock block(ldm, "scoped", 128);
    EXPECT_EQ(ldm.used(), 128u);
  }
  EXPECT_EQ(ldm.used(), 0u);
}

TEST(LdmBlock, NestedScopesUnwindInOrder) {
  LdmAllocator ldm(256);
  {
    LdmBlock outer(ldm, "outer", 64);
    {
      LdmBlock inner(ldm, "inner", 64);
      EXPECT_EQ(ldm.used(), 128u);
    }
    EXPECT_EQ(ldm.used(), 64u);
  }
  EXPECT_EQ(ldm.used(), 0u);
}

TEST(Ldm, SixtyFourKiBMatchesSw26010) {
  // The paper's LDM in elements: 64 KiB / 4 B = 16384 — the constant every
  // constraint in Section III is written against.
  LdmAllocator ldm(64 * 1024);
  ldm.alloc("elements", 16384 * 4);
  EXPECT_EQ(ldm.remaining(), 0u);
}

}  // namespace
}  // namespace swhkm::simarch
