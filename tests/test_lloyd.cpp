#include <gtest/gtest.h>

#include <set>

#include "core/init.hpp"
#include "core/lloyd.hpp"
#include "core/metrics.hpp"
#include "data/synthetic.hpp"
#include "util/error.hpp"

namespace swhkm::core {
namespace {

TEST(Init, FirstKTakesLeadingRows) {
  const data::Dataset ds = data::make_blobs(20, 3, 2, 1);
  KmeansConfig config;
  config.k = 3;
  config.init = InitMethod::kFirstK;
  const util::Matrix c = init_centroids(ds, config);
  EXPECT_EQ(c.rows(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t u = 0; u < 3; ++u) {
      EXPECT_EQ(c.at(j, u), ds.sample(j)[u]);
    }
  }
}

TEST(Init, RandomRowsAreDistinctSamples) {
  const data::Dataset ds = data::make_uniform(50, 2, 3);
  KmeansConfig config;
  config.k = 10;
  config.init = InitMethod::kRandom;
  config.seed = 5;
  const util::Matrix c = init_centroids(ds, config);
  // Every centroid is an actual sample, and no duplicates.
  std::set<std::pair<float, float>> seen;
  for (std::size_t j = 0; j < 10; ++j) {
    seen.insert({c.at(j, 0), c.at(j, 1)});
    bool found = false;
    for (std::size_t i = 0; i < ds.n() && !found; ++i) {
      found = ds.sample(i)[0] == c.at(j, 0) && ds.sample(i)[1] == c.at(j, 1);
    }
    EXPECT_TRUE(found) << "centroid " << j << " is not a sample";
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Init, RandomIsSeedDeterministic) {
  const data::Dataset ds = data::make_uniform(50, 2, 3);
  KmeansConfig config;
  config.k = 5;
  config.init = InitMethod::kRandom;
  config.seed = 7;
  const util::Matrix a = init_centroids(ds, config);
  const util::Matrix b = init_centroids(ds, config);
  EXPECT_EQ(centroid_max_abs_diff(a, b), 0.0);
}

TEST(Init, PlusPlusSpreadsSeeds) {
  // On two tight far-apart blobs, k-means++ with k=2 picks one seed from
  // each blob (the D^2 weighting makes the alternative astronomically
  // unlikely).
  const data::Dataset ds = data::make_blobs(100, 2, 2, 11, 100.0, 0.01);
  KmeansConfig config;
  config.k = 2;
  config.init = InitMethod::kPlusPlus;
  config.seed = 3;
  const util::Matrix c = init_centroids(ds, config);
  double gap = 0;
  for (std::size_t u = 0; u < 2; ++u) {
    const double diff = c.at(0, u) - c.at(1, u);
    gap += diff * diff;
  }
  EXPECT_GT(gap, 100.0);
}

TEST(Init, PlusPlusCoincidentPointsSeedDistinctRows) {
  // Regression: with coincident points the D^2 weights go to zero once
  // every position is covered, and the degenerate fallback used to draw
  // *any* row — including already-chosen ones — so k == n could seed the
  // same row twice and skip another. With k == n the seeds must be a
  // permutation of the rows, i.e. the sorted centroid multiset equals the
  // sorted sample multiset (the duplicate row included exactly twice).
  util::Matrix m = util::Matrix::from_vector(4, 2,
                                             {0, 0,    // A
                                              0, 0,    // A again
                                              1, 0,    // B
                                              0, 1});  // C
  const data::Dataset ds("coincident", std::move(m));
  KmeansConfig config;
  config.k = 4;
  config.init = InitMethod::kPlusPlus;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    config.seed = seed;
    const util::Matrix c = init_centroids(ds, config);
    std::multiset<std::pair<float, float>> got;
    std::multiset<std::pair<float, float>> want;
    for (std::size_t j = 0; j < 4; ++j) {
      got.insert({c.at(j, 0), c.at(j, 1)});
      want.insert({ds.sample(j)[0], ds.sample(j)[1]});
    }
    EXPECT_EQ(got, want) << "seed " << seed;
  }
}

TEST(Init, KLargerThanNRejected) {
  const data::Dataset ds = data::make_uniform(5, 2, 1);
  KmeansConfig config;
  config.k = 6;
  EXPECT_THROW(init_centroids(ds, config), swhkm::InvalidArgument);
}

TEST(Lloyd, RecoversWellSeparatedBlobs) {
  const data::Dataset ds = data::make_blobs(300, 8, 3, 42);
  KmeansConfig config;
  config.k = 3;
  config.max_iterations = 50;
  const KmeansResult result = lloyd_serial(ds, config);
  EXPECT_TRUE(result.converged);
  // Round-robin memberships: samples i and i+3 share a cluster.
  for (std::size_t i = 0; i + 3 < ds.n(); i += 17) {
    EXPECT_EQ(result.assignments[i], result.assignments[i + 3]);
  }
  const auto sizes = cluster_sizes(result.assignments, 3);
  for (std::size_t s : sizes) {
    EXPECT_EQ(s, 100u);
  }
}

TEST(Lloyd, AssignMatchesBruteForce) {
  const data::Dataset ds = data::make_uniform(64, 5, 9);
  KmeansConfig config;
  config.k = 7;
  const util::Matrix centroids = init_centroids(ds, config);
  const auto labels = assign_serial(ds, centroids);
  for (std::size_t i = 0; i < ds.n(); ++i) {
    double best = 1e300;
    std::uint32_t best_j = 0;
    for (std::size_t j = 0; j < 7; ++j) {
      double dist = 0;
      for (std::size_t u = 0; u < 5; ++u) {
        const double diff =
            double(ds.sample(i)[u]) - double(centroids.at(j, u));
        dist += diff * diff;
      }
      if (dist < best) {
        best = dist;
        best_j = static_cast<std::uint32_t>(j);
      }
    }
    EXPECT_EQ(labels[i], best_j) << "sample " << i;
  }
}

TEST(Lloyd, InertiaNeverIncreasesAcrossIterations) {
  // Lloyd's algorithm monotonically decreases the objective; check by
  // running 1, 2, 3 ... iterations from the same start.
  const data::Dataset ds = data::make_uniform(200, 4, 17);
  double prev = 1e300;
  for (std::size_t iters = 1; iters <= 6; ++iters) {
    KmeansConfig config;
    config.k = 5;
    config.max_iterations = iters;
    config.tolerance = 0;  // never stop early
    const KmeansResult result = lloyd_serial(ds, config);
    EXPECT_LE(result.inertia, prev + 1e-9) << iters;
    prev = result.inertia;
  }
}

TEST(Lloyd, EmptyClusterKeepsItsCentroid) {
  // Two samples, two centroids, one of which is far away and captures
  // nothing — it must stay put rather than NaN out.
  data::Dataset ds("x", util::Matrix::from_vector(2, 1, {0.0f, 1.0f}));
  KmeansConfig config;
  config.k = 2;
  config.max_iterations = 3;
  util::Matrix centroids = util::Matrix::from_vector(2, 1, {0.5f, 100.0f});
  const KmeansResult result =
      lloyd_serial_from(ds, config, std::move(centroids));
  EXPECT_EQ(result.centroids.at(1, 0), 100.0f);
  EXPECT_EQ(result.assignments[0], 0u);
  EXPECT_EQ(result.assignments[1], 0u);
}

TEST(Lloyd, KEqualsOneAveragesEverything) {
  data::Dataset ds("x", util::Matrix::from_vector(4, 1, {0, 2, 4, 6}));
  KmeansConfig config;
  config.k = 1;
  config.max_iterations = 5;
  const KmeansResult result = lloyd_serial(ds, config);
  EXPECT_FLOAT_EQ(result.centroids.at(0, 0), 3.0f);
  EXPECT_TRUE(result.converged);
}

TEST(Lloyd, KEqualsNPinsEachSample) {
  const data::Dataset ds = data::make_uniform(6, 2, 5);
  KmeansConfig config;
  config.k = 6;
  config.max_iterations = 10;
  const KmeansResult result = lloyd_serial(ds, config);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.inertia, 0.0, 1e-9);
}

TEST(Lloyd, ToleranceZeroRunsToMaxIterations) {
  const data::Dataset ds = data::make_uniform(100, 3, 2);
  KmeansConfig config;
  config.k = 4;
  config.max_iterations = 3;
  config.tolerance = -1.0;  // shift can never be <= -1
  const KmeansResult result = lloyd_serial(ds, config);
  EXPECT_EQ(result.iterations, 3u);
  EXPECT_FALSE(result.converged);
}

TEST(Lloyd, MismatchedStartRejected) {
  const data::Dataset ds = data::make_uniform(10, 3, 1);
  KmeansConfig config;
  config.k = 2;
  EXPECT_THROW(lloyd_serial_from(ds, config, util::Matrix(2, 4)),
               swhkm::InvalidArgument);
  EXPECT_THROW(lloyd_serial_from(ds, config, util::Matrix(3, 3)),
               swhkm::InvalidArgument);
}

TEST(Lloyd, TieBreaksTowardLowerIndex) {
  // A sample exactly between two centroids goes to the lower index.
  data::Dataset ds("x", util::Matrix::from_vector(1, 1, {0.0f}));
  util::Matrix centroids = util::Matrix::from_vector(2, 1, {1.0f, -1.0f});
  const auto labels = assign_serial(ds, centroids);
  EXPECT_EQ(labels[0], 0u);
}

}  // namespace
}  // namespace swhkm::core
