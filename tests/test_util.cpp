#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/units.hpp"

namespace swhkm::util {
namespace {

// ---------------------------------------------------------------- Xoshiro

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a() == b() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Xoshiro256 rng(99);
  double sum = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, BelowStaysBelow) {
  Xoshiro256 rng(3);
  for (std::uint64_t n : {1ull, 2ull, 7ull, 100ull, 1000003ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(n), n);
    }
  }
}

TEST(Rng, BelowZeroIsZero) {
  Xoshiro256 rng(3);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowCoversSmallRange) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.below(5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsAreStandard) {
  Xoshiro256 rng(5);
  double sum = 0;
  double sq = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double z = rng.normal();
    sum += z;
    sq += z * z;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sq / kSamples, 1.0, 0.03);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Xoshiro256 parent(123);
  Xoshiro256 a = parent.split(0);
  Xoshiro256 b = parent.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a() == b() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

// ------------------------------------------------------------------ units

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(0), "0 B");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1024), "1.00 KiB");
  EXPECT_EQ(format_bytes(64 * 1024), "64.00 KiB");
  EXPECT_EQ(format_bytes(3 * kMiB / 2), "1.50 MiB");
  EXPECT_EQ(format_bytes(kGiB), "1.00 GiB");
}

TEST(Units, FormatSeconds) {
  EXPECT_EQ(format_seconds(2.0), "2.000 s");
  EXPECT_EQ(format_seconds(0.0125), "12.500 ms");
  EXPECT_EQ(format_seconds(42e-6), "42.000 us");
  EXPECT_EQ(format_seconds(5e-9), "5.0 ns");
}

TEST(Units, FormatCount) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1064496), "1,064,496");
  EXPECT_EQ(format_count(1234567890), "1,234,567,890");
}

TEST(Units, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
  EXPECT_EQ(ceil_div(196608, 64), 3072u);
}

TEST(Units, RoundUp) {
  EXPECT_EQ(round_up(0, 8), 0u);
  EXPECT_EQ(round_up(1, 8), 8u);
  EXPECT_EQ(round_up(16, 8), 16u);
  EXPECT_EQ(round_up(17, 8), 24u);
}

TEST(Units, FloorPow2) {
  EXPECT_EQ(floor_pow2(1), 1u);
  EXPECT_EQ(floor_pow2(2), 2u);
  EXPECT_EQ(floor_pow2(3), 2u);
  EXPECT_EQ(floor_pow2(64), 64u);
  EXPECT_EQ(floor_pow2(100), 64u);
}

TEST(Units, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(65));
  EXPECT_TRUE(is_pow2(1ull << 40));
}

// ----------------------------------------------------------------- matrix

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, FillConstructor) {
  Matrix m(3, 4, 2.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(m.at(r, c), 2.5f);
    }
  }
}

TEST(Matrix, RowSpanAliasesStorage) {
  Matrix m(2, 3);
  m.row(1)[2] = 9.0f;
  EXPECT_EQ(m.at(1, 2), 9.0f);
  EXPECT_EQ(m.flat()[5], 9.0f);
}

TEST(Matrix, FromVector) {
  Matrix m = Matrix::from_vector(2, 2, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(m.at(0, 1), 2.0f);
  EXPECT_EQ(m.at(1, 0), 3.0f);
}

TEST(Matrix, FromVectorRejectsBadSize) {
  EXPECT_THROW(Matrix::from_vector(2, 2, {1.0f}), InvalidArgument);
}

TEST(Matrix, FillOverwrites) {
  Matrix m(2, 2, 1.0f);
  m.fill(7.0f);
  EXPECT_EQ(m.at(1, 1), 7.0f);
}

// ------------------------------------------------------------------ table

TEST(Table, RequiresHeaders) {
  EXPECT_THROW(Table(std::vector<std::string>{}), InvalidArgument);
}

TEST(Table, CollectsRows) {
  Table t({"a", "b"});
  t.new_row().add("x").add(1);
  t.new_row().add("y").add(2);
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.rows()[1][0], "y");
}

TEST(Table, AddWithoutNewRowStartsOne) {
  Table t({"a"});
  t.add("first");
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, NumericFormatting) {
  Table t({"v"});
  t.new_row().add(3.14159, 2);
  EXPECT_EQ(t.rows()[0][0], "3.14");
  t.new_row().add(std::uint64_t{42});
  EXPECT_EQ(t.rows()[1][0], "42");
}

TEST(Table, TextRenderingAligns) {
  Table t({"name", "v"});
  t.new_row().add("abc").add(1);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("| name | v |"), std::string::npos);
  EXPECT_NE(text.find("| abc  | 1 |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.new_row().add("x,y").add("he said \"hi\"");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.new_row().add("only");
  EXPECT_NE(t.to_csv().find("only,,"), std::string::npos);
}

TEST(Table, WriteCsvRoundtrip) {
  Table t({"h"});
  t.new_row().add("v");
  const std::string path = ::testing::TempDir() + "/swhkm_table.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "h");
}

// -------------------------------------------------------------------- log

TEST(Log, LevelFilters) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(before);
}

TEST(Log, OffSilencesEverything) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kOff);
  log_line(LogLevel::kError, "should not crash");
  set_log_level(before);
}

// -------------------------------------------------------------- stopwatch

TEST(Stopwatch, MeasuresForwardTime) {
  Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + i;
  }
  const double first = sw.seconds();
  const double second = sw.seconds();
  EXPECT_GE(first, 0.0);
  EXPECT_LE(first, second);  // monotone across calls
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch sw;
  sw.reset();
  EXPECT_LT(sw.seconds(), 1.0);
}

// ------------------------------------------------------------------ error

TEST(Error, HierarchyCatchable) {
  EXPECT_THROW(throw CapacityError("x"), Error);
  EXPECT_THROW(throw InfeasibleError("x"), Error);
  EXPECT_THROW(throw InvalidArgument("x"), Error);
  EXPECT_THROW(throw RuntimeFault("x"), Error);
}

TEST(Error, RequireMacroThrowsWithMessage) {
  try {
    SWHKM_REQUIRE(1 == 2, "math broke");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
  }
}

}  // namespace
}  // namespace swhkm::util
