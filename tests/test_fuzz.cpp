#include <gtest/gtest.h>

#include <fstream>

#include "core/checkpoint.hpp"
#include "data/io.hpp"
#include "data/synthetic.hpp"
#include "simarch/ldm.hpp"
#include "simarch/topology.hpp"
#include "swmpi/collectives.hpp"
#include "swmpi/runtime.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace swhkm {
namespace {

/// Random-bytes fuzz of every binary loader: must throw Error (never
/// crash, never return garbage silently).
TEST(Fuzz, LoadersRejectRandomBytes) {
  util::Xoshiro256 rng(2026);
  for (int trial = 0; trial < 50; ++trial) {
    const std::string path =
        ::testing::TempDir() + "/swhkm_fuzz_" + std::to_string(trial);
    std::ofstream out(path, std::ios::binary);
    const std::size_t size = rng.below(512);
    for (std::size_t b = 0; b < size; ++b) {
      const char byte = static_cast<char>(rng.below(256));
      out.write(&byte, 1);
    }
    out.close();
    EXPECT_THROW((void)data::load_binary(path), Error) << trial;
    EXPECT_THROW((void)core::load_checkpoint(path), Error) << trial;
  }
}

/// Header-mutation fuzz: start from a valid file, flip random bytes; the
/// loader must either throw or return a dataset with a coherent shape.
TEST(Fuzz, LoaderSurvivesBitFlips) {
  const data::Dataset ds = data::make_uniform(20, 3, 1);
  const std::string path = ::testing::TempDir() + "/swhkm_flip.bin";
  data::save_binary(ds, path);
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  util::Xoshiro256 rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    std::string mutated = bytes;
    // Flip 1-4 bytes, biased toward the header.
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t pos = rng.below(std::min<std::size_t>(64, mutated.size()));
      mutated[pos] = static_cast<char>(rng.below(256));
    }
    const std::string mpath = ::testing::TempDir() + "/swhkm_flip_mut.bin";
    std::ofstream(mpath, std::ios::binary) << mutated;
    try {
      const data::Dataset loaded = data::load_binary(mpath);
      EXPECT_EQ(loaded.n() * loaded.d(), loaded.samples().size());
    } catch (const Error&) {
      // rejection is the expected common case
    }
  }
}

/// LDM allocator fuzz against a trivial reference model.
TEST(Fuzz, LdmMatchesReferenceModel) {
  util::Xoshiro256 rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t capacity = 64 + rng.below(4096);
    simarch::LdmAllocator ldm(capacity);
    std::vector<std::pair<std::string, std::size_t>> reference;
    std::size_t used = 0;
    for (int op = 0; op < 200; ++op) {
      if (reference.empty() || rng.below(2) == 0) {
        const std::size_t bytes = rng.below(capacity / 2 + 1);
        const std::string name = "b" + std::to_string(op);
        if (used + bytes <= capacity) {
          ldm.alloc(name, bytes);
          reference.emplace_back(name, bytes);
          used += bytes;
        } else {
          EXPECT_THROW(ldm.alloc(name, bytes), CapacityError);
        }
      } else {
        ldm.free(reference.back().first);
        used -= reference.back().second;
        reference.pop_back();
      }
      ASSERT_EQ(ldm.used(), used);
      ASSERT_EQ(ldm.live_blocks(), reference.size());
    }
  }
}

/// Topology fuzz: random rank subsets must always give finite,
/// non-negative, permutation-sensible collective times.
TEST(Fuzz, TopologyTimesAreSane) {
  const simarch::MachineConfig machine = simarch::MachineConfig::sw26010(64);
  const simarch::Topology topo(machine);
  util::Xoshiro256 rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t count = 1 + rng.below(32);
    std::vector<std::size_t> ranks;
    for (std::size_t i = 0; i < count; ++i) {
      ranks.push_back(rng.below(machine.num_cgs()));
    }
    const std::size_t bytes = rng.below(1 << 20);
    const double t = topo.allreduce_time(bytes, ranks);
    EXPECT_TRUE(std::isfinite(t));
    EXPECT_GE(t, 0.0);
    if (count > 1) {
      EXPECT_GT(t, 0.0);
    }
    // More bytes never cheaper on the same ranks.
    EXPECT_LE(t, topo.allreduce_time(bytes + 4096, ranks) + 1e-15);
  }
}

/// Collectives fuzz: random payload sizes and rank counts, allreduce-sum
/// must equal the locally computed total.
TEST(Fuzz, AllreduceSumRandomShapes) {
  util::Xoshiro256 rng(11);
  for (int trial = 0; trial < 12; ++trial) {
    const int ranks = 1 + static_cast<int>(rng.below(6));
    const std::size_t elems = 1 + rng.below(200);
    swmpi::run_spmd(ranks, [&](swmpi::Comm& comm) {
      std::vector<std::int64_t> buf(elems);
      for (std::size_t i = 0; i < elems; ++i) {
        buf[i] = (comm.rank() + 1) * static_cast<std::int64_t>(i + 1);
      }
      swmpi::allreduce_sum(comm, std::span<std::int64_t>(buf));
      const std::int64_t rank_sum =
          static_cast<std::int64_t>(ranks) * (ranks + 1) / 2;
      for (std::size_t i = 0; i < elems; ++i) {
        ASSERT_EQ(buf[i], rank_sum * static_cast<std::int64_t>(i + 1));
      }
    });
  }
}

}  // namespace
}  // namespace swhkm
