#include <gtest/gtest.h>

#include <fstream>

#include "core/init.hpp"
#include "core/lloyd.hpp"
#include "core/metrics.hpp"
#include "core/out_of_core.hpp"
#include "data/io.hpp"
#include "data/synthetic.hpp"
#include "util/error.hpp"

namespace swhkm {
namespace {

std::string write_temp_dataset(const data::Dataset& ds, const char* name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  data::save_binary(ds, path);
  return path;
}

TEST(Reader, HeaderParsesShape) {
  const data::Dataset ds = data::make_uniform(123, 7, 1);
  const std::string path = write_temp_dataset(ds, "ooc_shape.bin");
  const data::BinaryDatasetReader reader(path);
  EXPECT_EQ(reader.n(), 123u);
  EXPECT_EQ(reader.d(), 7u);
}

TEST(Reader, ChunksCoverEveryRowOnce) {
  const data::Dataset ds = data::make_uniform(100, 3, 2);
  const std::string path = write_temp_dataset(ds, "ooc_cover.bin");
  const data::BinaryDatasetReader reader(path);
  for (std::size_t chunk_rows : {1ul, 7ul, 100ul, 1000ul}) {
    std::vector<int> seen(100, 0);
    reader.for_each_chunk(chunk_rows, [&](const util::Matrix& chunk,
                                          std::size_t first) {
      for (std::size_t r = 0; r < chunk.rows(); ++r) {
        ++seen[first + r];
        for (std::size_t u = 0; u < 3; ++u) {
          ASSERT_EQ(chunk.at(r, u), ds.sample(first + r)[u]);
        }
      }
    });
    for (int count : seen) {
      EXPECT_EQ(count, 1) << "chunk_rows=" << chunk_rows;
    }
  }
}

TEST(Reader, ReadRowsMatchesSource) {
  const data::Dataset ds = data::make_blobs(60, 5, 3, 9);
  const std::string path = write_temp_dataset(ds, "ooc_rows.bin");
  const data::BinaryDatasetReader reader(path);
  const util::Matrix rows = reader.read_rows(17, 5);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t u = 0; u < 5; ++u) {
      EXPECT_EQ(rows.at(r, u), ds.sample(17 + r)[u]);
    }
  }
  EXPECT_THROW(reader.read_rows(58, 5), InvalidArgument);
}

TEST(Reader, RejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/ooc_garbage.bin";
  std::ofstream(path) << "not a dataset, definitely not";
  EXPECT_THROW(data::BinaryDatasetReader{path}, InvalidArgument);
}

TEST(OutOfCore, MatchesInMemoryLloydExactly) {
  const data::Dataset ds = data::make_blobs(400, 8, 4, 31);
  const std::string path = write_temp_dataset(ds, "ooc_match.bin");
  const data::BinaryDatasetReader reader(path);
  for (core::InitMethod init :
       {core::InitMethod::kFirstK, core::InitMethod::kRandom,
        core::InitMethod::kPlusPlus}) {
    core::KmeansConfig config;
    config.k = 4;
    config.max_iterations = 15;
    config.init = init;
    config.seed = 7;
    const core::KmeansResult in_memory = core::lloyd_serial(ds, config);
    const core::KmeansResult streamed =
        core::lloyd_out_of_core(reader, config, /*chunk_rows=*/37);
    EXPECT_EQ(streamed.iterations, in_memory.iterations);
    EXPECT_EQ(streamed.assignments, in_memory.assignments);
    EXPECT_EQ(core::centroid_max_abs_diff(streamed.centroids,
                                          in_memory.centroids),
              0.0);
    EXPECT_NEAR(streamed.inertia, in_memory.inertia,
                1e-9 * (1 + in_memory.inertia));
  }
}

TEST(OutOfCore, ChunkSizeInvariant) {
  const data::Dataset ds = data::make_uniform(200, 6, 3);
  const std::string path = write_temp_dataset(ds, "ooc_chunks.bin");
  const data::BinaryDatasetReader reader(path);
  core::KmeansConfig config;
  config.k = 5;
  config.max_iterations = 8;
  const core::KmeansResult a = core::lloyd_out_of_core(reader, config, 1);
  const core::KmeansResult b = core::lloyd_out_of_core(reader, config, 64);
  const core::KmeansResult c = core::lloyd_out_of_core(reader, config, 9999);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(b.assignments, c.assignments);
  EXPECT_EQ(core::centroid_max_abs_diff(a.centroids, c.centroids), 0.0);
}

TEST(OutOfCore, AssignMatchesSerial) {
  const data::Dataset ds = data::make_uniform(150, 4, 5);
  const std::string path = write_temp_dataset(ds, "ooc_assign.bin");
  const data::BinaryDatasetReader reader(path);
  core::KmeansConfig config;
  config.k = 6;
  const util::Matrix centroids = core::init_centroids(ds, config);
  EXPECT_EQ(core::assign_out_of_core(reader, centroids, 13),
            core::assign_serial(ds, centroids));
}

TEST(OutOfCore, DimensionMismatchRejected) {
  const data::Dataset ds = data::make_uniform(20, 4, 1);
  const std::string path = write_temp_dataset(ds, "ooc_mismatch.bin");
  const data::BinaryDatasetReader reader(path);
  EXPECT_THROW(core::assign_out_of_core(reader, util::Matrix(2, 7), 8),
               InvalidArgument);
}

}  // namespace
}  // namespace swhkm
