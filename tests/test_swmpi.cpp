#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <numeric>
#include <thread>

#include "swmpi/collectives.hpp"
#include "swmpi/mailbox.hpp"
#include "swmpi/runtime.hpp"
#include "util/error.hpp"

namespace swhkm::swmpi {
namespace {

// ---------------------------------------------------------------- mailbox

TEST(Mailbox, PushPopMatching) {
  Mailbox box;
  box.push({1, 7, {std::byte{42}}});
  Message out = box.pop_matching(1, 7);
  EXPECT_EQ(out.source, 1);
  EXPECT_EQ(out.tag, 7);
  ASSERT_EQ(out.payload.size(), 1u);
  EXPECT_EQ(out.payload[0], std::byte{42});
}

TEST(Mailbox, AnySourceMatches) {
  Mailbox box;
  box.push({3, 9, {}});
  Message out = box.pop_matching(kAnySource, 9);
  EXPECT_EQ(out.source, 3);
}

TEST(Mailbox, MatchingSkipsNonMatching) {
  Mailbox box;
  box.push({1, 5, {std::byte{1}}});
  box.push({2, 6, {std::byte{2}}});
  Message out = box.pop_matching(2, 6);
  EXPECT_EQ(out.payload[0], std::byte{2});
  EXPECT_EQ(box.pending(), 1u);  // first message still queued
}

TEST(Mailbox, TryPopReturnsFalseWhenEmpty) {
  Mailbox box;
  Message out;
  EXPECT_FALSE(box.try_pop_matching(kAnySource, 0, out));
}

TEST(Mailbox, TryPopFindsMatch) {
  Mailbox box;
  box.push({0, 1, {}});
  Message out;
  EXPECT_TRUE(box.try_pop_matching(0, 1, out));
  EXPECT_EQ(box.pending(), 0u);
}

TEST(Mailbox, BlockingPopWakesOnPush) {
  Mailbox box;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    box.push({0, 3, {std::byte{9}}});
  });
  Message out = box.pop_matching(0, 3);
  EXPECT_EQ(out.payload[0], std::byte{9});
  producer.join();
}

TEST(Mailbox, AbortUnblocksWaiter) {
  Mailbox box;
  std::thread aborter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    box.abort();
  });
  EXPECT_THROW(box.pop_matching(0, 0), RuntimeFault);
  aborter.join();
}

TEST(Mailbox, AbortStillDeliversQueued) {
  Mailbox box;
  box.push({0, 1, {}});
  box.abort();
  EXPECT_NO_THROW(box.pop_matching(0, 1));
  EXPECT_THROW(box.pop_matching(0, 1), RuntimeFault);
}

class MailboxModeTest : public ::testing::TestWithParam<MailboxMode> {};

TEST_P(MailboxModeTest, TimedPopRechecksQueueAfterDeadline) {
  // Regression for the watchdog-timeout race: a push that *completes*
  // before the pop's deadline must be delivered, even when the wakeup
  // races the timeout (the old code returned false straight off the cv
  // timeout without a final queue scan, turning a delivered message into
  // a spurious WatchdogTimeout). The producer lands its push in a jitter
  // window straddling the deadline; whenever it demonstrably beat the
  // deadline, the pop must succeed.
  constexpr int kRounds = 100;
  const auto timeout = std::chrono::milliseconds(4);
  for (int round = 0; round < kRounds; ++round) {
    Mailbox box(4, GetParam());
    box.push({1, 99, {}});  // non-matching noise lengthens the scan
    std::chrono::steady_clock::time_point push_done_at;
    // The pop's internal deadline is taken at or after `entry`, so
    // entry + timeout is a lower bound on it.
    const auto entry = std::chrono::steady_clock::now();
    std::thread producer([&] {
      std::this_thread::sleep_for(
          std::chrono::microseconds(3000 + 20 * round));
      box.push({0, 7, {std::byte{5}}});
      push_done_at = std::chrono::steady_clock::now();
    });
    Message out;
    const bool ok = box.pop_matching_for(0, 7, timeout, out);
    producer.join();
    if (push_done_at < entry + timeout) {
      EXPECT_TRUE(ok) << "round " << round
                      << ": push beat the deadline but pop timed out";
    }
    if (ok) {
      EXPECT_EQ(out.source, 0);
      EXPECT_EQ(out.tag, 7);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, MailboxModeTest,
                         ::testing::Values(MailboxMode::kSpscRings,
                                           MailboxMode::kMutexQueue));

// ------------------------------------------------------------------- comm

TEST(Comm, WorldHasRanksAndSizes) {
  auto comms = Comm::create_world(3);
  ASSERT_EQ(comms.size(), 3u);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(comms[r].rank(), r);
    EXPECT_EQ(comms[r].size(), 3);
  }
}

TEST(Comm, TypedSendRecvRoundtrip) {
  auto comms = Comm::create_world(2);
  const std::vector<double> payload{1.5, 2.5, 3.5};
  comms[0].send<double>(1, 4, payload);
  const std::vector<double> got = comms[1].recv<double>(0, 4);
  EXPECT_EQ(got, payload);
}

TEST(Comm, SendValueRecvValue) {
  auto comms = Comm::create_world(2);
  comms[1].send_value<int>(0, 2, 1234);
  EXPECT_EQ(comms[0].recv_value<int>(1, 2), 1234);
}

TEST(Comm, RejectsOutOfRangeDestination) {
  auto comms = Comm::create_world(2);
  EXPECT_THROW(comms[0].send_value<int>(5, 0, 1), InvalidArgument);
}

TEST(Comm, EmptyCommRejectsUse) {
  Comm comm;
  EXPECT_FALSE(comm.valid());
  EXPECT_THROW(comm.recv_bytes(0, 0), InvalidArgument);
}

// ------------------------------------------------------------- run_spmd

TEST(Runtime, RunsEveryRankOnce) {
  std::atomic<int> mask{0};
  run_spmd(5, [&](Comm& comm) { mask |= 1 << comm.rank(); });
  EXPECT_EQ(mask.load(), 0b11111);
}

TEST(Runtime, SingleRankRunsInline) {
  run_spmd(1, [](Comm& comm) {
    EXPECT_EQ(comm.size(), 1);
    barrier(comm);  // must not deadlock
  });
}

TEST(Runtime, RethrowsRankFailure) {
  EXPECT_THROW(run_spmd(3,
                        [](Comm& comm) {
                          if (comm.rank() == 1) {
                            throw InvalidArgument("rank 1 died");
                          }
                          // other ranks block on a message that never comes;
                          // the abort protocol must wake them.
                          (void)comm.recv_bytes(1, 0);
                        }),
               InvalidArgument);
}

TEST(Runtime, ZeroRanksRejected) {
  EXPECT_THROW(run_spmd(0, [](Comm&) {}), InvalidArgument);
}

// ------------------------------------------------------------ collectives

class CollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveTest, BarrierCompletes) {
  run_spmd(GetParam(), [](Comm& comm) {
    for (int i = 0; i < 3; ++i) {
      barrier(comm);
    }
  });
}

TEST_P(CollectiveTest, BcastFromEveryRoot) {
  const int size = GetParam();
  for (int root = 0; root < size; ++root) {
    run_spmd(size, [&](Comm& comm) {
      std::vector<int> buf(4, comm.rank() == root ? 77 : 0);
      bcast(comm, root, std::span<int>(buf));
      for (int v : buf) {
        EXPECT_EQ(v, 77);
      }
    });
  }
}

TEST_P(CollectiveTest, AllreduceSumMatchesFormula) {
  const int size = GetParam();
  run_spmd(size, [&](Comm& comm) {
    std::vector<std::int64_t> buf{comm.rank() + 1, 10 * (comm.rank() + 1)};
    allreduce_sum(comm, std::span<std::int64_t>(buf));
    const std::int64_t expected = size * (size + 1) / 2;
    EXPECT_EQ(buf[0], expected);
    EXPECT_EQ(buf[1], 10 * expected);
  });
}

TEST_P(CollectiveTest, AllreduceMaxAndMin) {
  const int size = GetParam();
  run_spmd(size, [&](Comm& comm) {
    std::vector<int> lo{comm.rank()};
    allreduce(comm, std::span<int>(lo), ops::Min{});
    EXPECT_EQ(lo[0], 0);
    std::vector<int> hi{comm.rank()};
    allreduce(comm, std::span<int>(hi), ops::Max{});
    EXPECT_EQ(hi[0], size - 1);
  });
}

TEST_P(CollectiveTest, MinlocFindsGlobalWinner) {
  const int size = GetParam();
  run_spmd(size, [&](Comm& comm) {
    // Rank r contributes value |r - 2| so rank 2 (or nearest) wins.
    MinLoc mine{std::abs(comm.rank() - 2) + 0.5,
                static_cast<std::uint64_t>(comm.rank())};
    allreduce_minloc(comm, std::span<MinLoc>(&mine, 1));
    const int expected = size <= 2 ? size - 1 : 2;
    EXPECT_EQ(mine.index, static_cast<std::uint64_t>(expected));
  });
}

TEST_P(CollectiveTest, MinlocTieBreaksTowardLowerIndex) {
  run_spmd(GetParam(), [](Comm& comm) {
    MinLoc mine{1.0, static_cast<std::uint64_t>(comm.rank())};
    allreduce_minloc(comm, std::span<MinLoc>(&mine, 1));
    EXPECT_EQ(mine.index, 0u);
  });
}

TEST_P(CollectiveTest, AllgatherIndexedByRank) {
  const int size = GetParam();
  run_spmd(size, [&](Comm& comm) {
    const std::vector<int> all = allgather(comm, 100 + comm.rank());
    ASSERT_EQ(all.size(), static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r) {
      EXPECT_EQ(all[r], 100 + r);
    }
  });
}

TEST_P(CollectiveTest, ReduceLandsAtRoot) {
  const int size = GetParam();
  run_spmd(size, [&](Comm& comm) {
    std::vector<int> buf{1};
    reduce(comm, 0, std::span<int>(buf), ops::Plus{});
    if (comm.rank() == 0) {
      EXPECT_EQ(buf[0], size);
    }
  });
}

TEST_P(CollectiveTest, ConsecutiveCollectivesDontCrosstalk) {
  const int size = GetParam();
  run_spmd(size, [&](Comm& comm) {
    for (int round = 0; round < 10; ++round) {
      std::vector<int> buf{round};
      allreduce_sum(comm, std::span<int>(buf));
      EXPECT_EQ(buf[0], round * size);
      barrier(comm);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

// ------------------------------------------------------------------ split

TEST(Split, PartitionsByColor) {
  run_spmd(6, [](Comm& comm) {
    const int color = comm.rank() % 2;
    Comm sub = comm.split(color, comm.rank());
    EXPECT_EQ(sub.size(), 3);
    // even ranks 0,2,4 -> sub ranks 0,1,2 ; same for odd
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
  });
}

TEST(Split, KeyControlsOrdering) {
  run_spmd(4, [](Comm& comm) {
    // Reverse the ordering via descending keys.
    Comm sub = comm.split(0, -comm.rank());
    EXPECT_EQ(sub.rank(), comm.size() - 1 - comm.rank());
  });
}

TEST(Split, SubCommunicatorRunsCollectives) {
  run_spmd(8, [](Comm& comm) {
    Comm sub = comm.split(comm.rank() / 4, comm.rank());
    std::vector<int> buf{1};
    allreduce_sum(sub, std::span<int>(buf));
    EXPECT_EQ(buf[0], 4);
    // Parent communicator still works afterwards.
    std::vector<int> whole{1};
    allreduce_sum(comm, std::span<int>(whole));
    EXPECT_EQ(whole[0], 8);
  });
}

TEST(Split, RepeatedSplitsAreIndependent) {
  run_spmd(4, [](Comm& comm) {
    Comm a = comm.split(comm.rank() % 2, comm.rank());
    Comm b = comm.split(comm.rank() % 2, comm.rank());
    std::vector<int> buf{comm.rank()};
    allreduce_sum(a, std::span<int>(buf));
    std::vector<int> buf2{comm.rank()};
    allreduce_sum(b, std::span<int>(buf2));
    EXPECT_EQ(buf[0], buf2[0]);
  });
}

TEST(Split, SingletonColors) {
  run_spmd(3, [](Comm& comm) {
    Comm sub = comm.split(comm.rank(), 0);  // every rank its own colour
    EXPECT_EQ(sub.size(), 1);
    EXPECT_EQ(sub.rank(), 0);
    barrier(sub);
  });
}

// ----------------------------------------------------------- determinism

TEST(Determinism, AllreduceSumBitIdenticalAcrossRuns) {
  // Floating-point allreduce uses a fixed tree, so repeated runs give
  // bit-identical results even with racing thread schedules.
  std::vector<double> first;
  for (int run = 0; run < 3; ++run) {
    std::vector<double> result(1);
    run_spmd(7, [&](Comm& comm) {
      std::vector<double> buf{0.1 * (comm.rank() + 1)};
      allreduce_sum(comm, std::span<double>(buf));
      if (comm.rank() == 0) {
        result[0] = buf[0];
      }
    });
    if (run == 0) {
      first = result;
    } else {
      EXPECT_EQ(std::memcmp(first.data(), result.data(), sizeof(double)), 0);
    }
  }
}

}  // namespace
}  // namespace swhkm::swmpi
