#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/hkmeans.hpp"
#include "simarch/trace.hpp"

namespace swhkm::simarch {
namespace {

CostTally sample_tally() {
  CostTally t;
  t.sample_read_s = 0.1;
  t.compute_s = 0.3;
  t.net_comm_s = 0.05;
  return t;
}

TEST(Trace, RecordsPhasesInOrder) {
  Trace trace;
  trace.record_iteration(0, 0, 0.0, sample_tally());
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 3u);  // zero-duration phases skipped
  EXPECT_EQ(events[0].phase, Phase::kSampleRead);
  EXPECT_DOUBLE_EQ(events[0].start_s, 0.0);
  EXPECT_EQ(events[1].phase, Phase::kCompute);
  EXPECT_DOUBLE_EQ(events[1].start_s, 0.1);
  EXPECT_EQ(events[2].phase, Phase::kNetComm);
  EXPECT_DOUBLE_EQ(events[2].start_s, 0.4);
}

TEST(Trace, MakespanIsLatestEnd) {
  Trace trace;
  trace.record_iteration(0, 0, 0.0, sample_tally());
  trace.record_iteration(1, 0, 0.2, sample_tally());
  EXPECT_DOUBLE_EQ(trace.makespan(), 0.2 + 0.45);
}

TEST(Trace, PhaseTotalsSumAcrossRanks) {
  Trace trace;
  trace.record_iteration(0, 0, 0.0, sample_tally());
  trace.record_iteration(1, 0, 0.0, sample_tally());
  const auto totals = trace.phase_totals();
  EXPECT_DOUBLE_EQ(totals[static_cast<int>(Phase::kCompute)], 0.6);
  EXPECT_DOUBLE_EQ(totals[static_cast<int>(Phase::kUpdate)], 0.0);
}

TEST(Trace, ImbalanceOfUnevenRanks) {
  Trace trace;
  CostTally fast;
  fast.compute_s = 1.0;
  CostTally slow;
  slow.compute_s = 3.0;
  trace.record_iteration(0, 0, 0.0, fast);
  trace.record_iteration(1, 0, 0.0, slow);
  EXPECT_DOUBLE_EQ(trace.imbalance(0), 1.5);  // 3 / mean(2)
  // Both degenerate cases return the "no imbalance observed" identity.
  EXPECT_DOUBLE_EQ(trace.imbalance(9), 1.0);  // unknown iteration
}

TEST(Trace, ImbalanceOfZeroDurationIterationIsIdentity) {
  Trace trace;
  // An all-zero tally records no events (zero-duration phases are
  // skipped), so the iteration is unknown to the trace — same 1.0
  // sentinel as a known iteration whose mean duration is zero.
  trace.record_iteration(0, 0, 0.0, CostTally{});
  EXPECT_EQ(trace.event_count(), 0u);
  EXPECT_DOUBLE_EQ(trace.imbalance(0), 1.0);
}

TEST(Trace, CsvRoundTripsFullPrecision) {
  Trace trace;
  CostTally t;
  // A start/duration pair that 6-significant-digit formatting would alias.
  t.compute_s = 1.0000001234567;
  trace.record_iteration(0, 0, 1234.5678901234567, t);
  const std::string csv = trace.to_csv();
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 1u);
  // The printed fields must parse back to the identical bits.
  const std::size_t header_end = csv.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  const std::string row = csv.substr(header_end + 1);
  std::vector<std::string> fields;
  std::size_t at = 0;
  while (true) {
    const std::size_t comma = row.find(',', at);
    if (comma == std::string::npos) {
      fields.push_back(row.substr(at, row.find('\n', at) - at));
      break;
    }
    fields.push_back(row.substr(at, comma - at));
    at = comma + 1;
  }
  ASSERT_EQ(fields.size(), 5u);
  EXPECT_EQ(std::stod(fields[3]), events[0].start_s);
  EXPECT_EQ(std::stod(fields[4]), events[0].duration_s);
}

TEST(Trace, CsvHasHeaderAndRows) {
  Trace trace;
  trace.record_iteration(2, 1, 0.0, sample_tally());
  const std::string csv = trace.to_csv();
  EXPECT_NE(csv.find("cg,iteration,phase,start_s,duration_s"),
            std::string::npos);
  EXPECT_NE(csv.find("2,1,sample_read"), std::string::npos);
}

TEST(Trace, ClearEmpties) {
  Trace trace;
  trace.record_iteration(0, 0, 0.0, sample_tally());
  trace.clear();
  EXPECT_EQ(trace.event_count(), 0u);
  EXPECT_DOUBLE_EQ(trace.makespan(), 0.0);
}

TEST(Trace, EngineIntegrationProducesTimeline) {
  // Run a real engine with a trace sink: every (rank, iteration) must
  // appear, phases must be non-overlapping per rank, and the makespan
  // must match the engine's accumulated simulated time (bulk-synchronous
  // iteration edges make them equal by construction).
  const auto machine = MachineConfig::tiny(2, 4, 8192);
  const data::Dataset ds = data::make_blobs(200, 8, 4, 11);
  core::KmeansConfig config;
  config.k = 4;
  config.max_iterations = 3;
  config.tolerance = -1;
  Trace trace;
  config.trace = &trace;
  const core::KmeansResult result =
      core::run_level(core::Level::kLevel1, ds, config, machine);

  EXPECT_GT(trace.event_count(), 0u);
  const auto events = trace.events();
  // Every rank appears.
  std::set<std::uint32_t> ranks;
  std::set<std::uint32_t> iterations;
  for (const auto& event : events) {
    ranks.insert(event.cg);
    iterations.insert(event.iteration);
  }
  EXPECT_EQ(ranks.size(), machine.num_cgs());
  EXPECT_EQ(iterations.size(), 3u);
  // Per-rank events are non-overlapping and ordered (events() sorts by
  // (cg, start)).
  for (std::size_t i = 1; i < events.size(); ++i) {
    if (events[i].cg == events[i - 1].cg) {
      EXPECT_GE(events[i].start_s + 1e-12,
                events[i - 1].start_s + events[i - 1].duration_s);
    }
  }
  EXPECT_NEAR(trace.makespan(), result.cost.total_s(),
              1e-9 + 0.01 * result.cost.total_s());
}

TEST(Trace, AllLevelsFeedTheTrace) {
  const auto machine = MachineConfig::tiny(2, 4, 8192);
  const data::Dataset ds = data::make_blobs(120, 6, 3, 5);
  for (core::Level level : {core::Level::kLevel1, core::Level::kLevel2,
                            core::Level::kLevel3}) {
    Trace trace;
    core::KmeansConfig config;
    config.k = 3;
    config.max_iterations = 2;
    config.tolerance = -1;
    config.trace = &trace;
    core::run_level(level, ds, config, machine);
    EXPECT_GT(trace.event_count(), 0u) << core::level_name(level);
    EXPECT_GT(trace.phase_totals()[static_cast<int>(Phase::kCompute)], 0.0)
        << core::level_name(level);
  }
}

}  // namespace
}  // namespace swhkm::simarch
