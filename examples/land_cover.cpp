/// Land-cover classification (the paper's Fig. 10 application): segment a
/// remote-sensing scene into the seven Deep Globe classes with k-means
/// over pixel patches.
///
///   ./land_cover [scene_px] [patch_side] [out_prefix]
///
/// Writes three PPMs: the synthetic scene, the k-means classification,
/// and a side-by-side sheet — the right/middle panels of Fig. 10. (The
/// paper clusters 5,838,480 patches of d=4096 from 2k x 2k Deep Globe
/// imagery on 400 processors; this example runs the same pipeline at a
/// size a laptop materialises, and prints the planner's prediction for
/// the paper-scale shape.)

#include <cstdlib>
#include <iostream>

#include "core/hkmeans.hpp"
#include "util/log.hpp"
#include "util/units.hpp"

using namespace swhkm;

int main(int argc, char** argv) {
  util::set_log_level(util::LogLevel::kInfo);
  const std::size_t scene_px =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 256;
  const std::size_t patch =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;
  const std::string prefix = argc > 3 ? argv[3] : "land_cover";

  std::cout << "Rendering a " << scene_px << "x" << scene_px
            << " synthetic Deep Globe scene...\n";
  const data::Image scene = data::make_land_cover_scene(scene_px, scene_px,
                                                        /*seed=*/2018);
  data::save_ppm(scene, prefix + "_scene.ppm");

  const data::Dataset patches = data::extract_patches(scene, patch, patch);
  std::cout << "Extracted " << patches.n() << " patches of d = "
            << patches.d() << "\n";

  const simarch::MachineConfig machine =
      simarch::MachineConfig::tiny(2, 8, 64 * util::kKiB);
  const core::HierarchicalKmeans km(machine);
  core::KmeansConfig config;
  config.k = 7;  // urban, agriculture, rangeland, forest, water, barren, ?
  config.max_iterations = 40;
  config.init = core::InitMethod::kPlusPlus;
  config.seed = 11;

  const core::KmeansResult result = km.fit(patches, config);
  std::cout << "clustering " << (result.converged ? "converged" : "stopped")
            << " after " << result.iterations
            << " iterations, O(C) = " << result.inertia << "\n"
            << "simulated machine time: "
            << util::format_seconds(result.cost.total_s()) << "\n";

  const data::Image classified = data::render_patch_labels(
      scene_px, scene_px, patch, patch, result.assignments, 7);
  data::save_ppm(classified, prefix + "_classified.ppm");

  // Side-by-side sheet: scene | classification.
  data::Image sheet(scene_px * 2 + 8, scene_px);
  for (std::size_t y = 0; y < scene_px; ++y) {
    for (std::size_t x = 0; x < scene_px; ++x) {
      const std::uint8_t* s = scene.pixel(x, y);
      sheet.set_pixel(x, y, s[0], s[1], s[2]);
      const std::uint8_t* c = classified.pixel(x, y);
      sheet.set_pixel(scene_px + 8 + x, y, c[0], c[1], c[2]);
    }
  }
  data::save_ppm(sheet, prefix + "_sheet.ppm");
  std::cout << "wrote " << prefix << "_scene.ppm, " << prefix
            << "_classified.ppm, " << prefix << "_sheet.ppm\n\n";

  // The paper-scale version of this application.
  const core::ProblemShape paper_shape{5838480, 7, 4096};
  const simarch::MachineConfig paper_machine =
      simarch::MachineConfig::sw26010(400);
  const auto plan = core::auto_plan(paper_shape, paper_machine);
  if (plan) {
    std::cout << "paper-scale shape (n=5,838,480, k=7, d=4096 on 400 "
                 "processors):\n  "
              << plan->plan.describe() << "\n  predicted "
              << util::format_seconds(plan->predicted_s())
              << " per iteration\n";
  }
  return 0;
}
