/// Convergence study: the iteration-history API across the algorithm
/// family — how the centroid shift decays, how the exact accelerated
/// variants ride the identical trajectory while skipping work, and what
/// the simulated machine pays per iteration at each partition level.
///
///   ./convergence_study [n] [k] [d]

#include <cstdlib>
#include <iostream>

#include "core/hkmeans.hpp"
#include "util/csv.hpp"
#include "util/units.hpp"

using namespace swhkm;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3000;
  const std::size_t k = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 12;
  const std::size_t d = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 16;

  const data::Dataset ds = data::make_blobs(n, d, k, 7, 12.0, 2.5);
  core::KmeansConfig config;
  config.k = k;
  config.max_iterations = 40;
  config.init = core::InitMethod::kRandom;
  config.seed = 3;

  // Shift trajectory: Lloyd and the exact accelerated family must agree
  // iteration by iteration.
  core::AccelStats yy_stats;
  core::AccelStats elkan_stats;
  core::AccelStats hamerly_stats;
  const core::KmeansResult lloyd = core::lloyd_serial(ds, config);
  const core::KmeansResult yy = core::yinyang_serial(ds, config, &yy_stats);
  const core::KmeansResult elkan =
      core::elkan_serial(ds, config, &elkan_stats);
  const core::KmeansResult hamerly =
      core::hamerly_serial(ds, config, &hamerly_stats);

  util::Table trajectory({"iter", "lloyd shift", "yinyang shift",
                          "elkan shift", "hamerly shift"});
  for (std::size_t i = 0; i < lloyd.history.size(); ++i) {
    trajectory.new_row()
        .add(std::uint64_t{i + 1})
        .add(lloyd.history[i].max_centroid_shift, 6)
        .add(i < yy.history.size() ? yy.history[i].max_centroid_shift : -1, 6)
        .add(i < elkan.history.size() ? elkan.history[i].max_centroid_shift
                                      : -1,
             6)
        .add(i < hamerly.history.size()
                 ? hamerly.history[i].max_centroid_shift
                 : -1,
             6);
  }
  std::cout << trajectory.to_text();
  std::cout << "pruning savings: yinyang " << yy_stats.savings() * 100
            << "%, elkan " << elkan_stats.savings() * 100 << "%, hamerly "
            << hamerly_stats.savings() * 100 << "%\n\n";

  // Per-iteration simulated machine time by level.
  const auto machine = simarch::MachineConfig::tiny(2, 8, 64 * util::kKiB);
  util::Table sim({"iter", "L1 sim ms", "L2 sim ms", "L3 sim ms"});
  std::vector<core::KmeansResult> engine_runs;
  for (core::Level level : {core::Level::kLevel1, core::Level::kLevel2,
                            core::Level::kLevel3}) {
    engine_runs.push_back(core::run_level(level, ds, config, machine));
  }
  const std::size_t rows = engine_runs[0].history.size();
  for (std::size_t i = 0; i < rows; ++i) {
    sim.new_row().add(std::uint64_t{i + 1});
    for (const auto& run : engine_runs) {
      sim.add(i < run.history.size() ? run.history[i].simulated_s * 1e3 : -1,
              4);
    }
  }
  std::cout << sim.to_text();
  std::cout << "\nAll engines follow Lloyd's trajectory exactly; the columns\n"
               "differ only in what the simulated machine charges per "
               "iteration.\n";
  return 0;
}
