/// cluster_tool — a real command-line front end for the library: load a
/// dataset (CSV or SWKM binary), optionally normalise, cluster with any
/// algorithm in the package, and write assignments, centroids, a
/// checkpoint, and a simulated-time trace.
///
/// Usage:
///   cluster_tool <input.{csv,bin}> --k <K> [options]
///
/// Options:
///   --algo lloyd|yinyang|elkan|hamerly|minibatch|level1|level2|level3|auto
///                        (default: auto — the planner picks the level)
///   --scale none|minmax|zscore      (default: none)
///   --init firstk|random|kmeans++   (default: kmeans++)
///   --iters N                       (default: 50)
///   --seed S                        (default: 1)
///   --nodes N        simulated Sunway nodes for engine runs (default: 2
///                    tiny nodes; engines only)
///   --out PREFIX     write PREFIX.assign.csv, PREFIX.centroids.csv,
///                    PREFIX.ckpt, and (engines) PREFIX.trace.csv
///
/// Demo mode: run with no arguments to cluster a generated dataset.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/hkmeans.hpp"
#include "simarch/trace.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "util/units.hpp"

using namespace swhkm;

namespace {

struct Options {
  std::string input;
  std::string algo = "auto";
  std::string scale = "none";
  std::string init = "kmeans++";
  std::size_t k = 8;
  std::size_t iters = 50;
  std::uint64_t seed = 1;
  std::size_t nodes = 2;
  std::string out_prefix;
};

[[noreturn]] void usage_and_exit() {
  std::cerr << "usage: cluster_tool <input.{csv,bin}> --k K [--algo A] "
               "[--scale S] [--init I] [--iters N] [--seed S] [--nodes N] "
               "[--out PREFIX]\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  int position = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage_and_exit();
      }
      return argv[++i];
    };
    if (arg == "--k") {
      opt.k = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--algo") {
      opt.algo = next();
    } else if (arg == "--scale") {
      opt.scale = next();
    } else if (arg == "--init") {
      opt.init = next();
    } else if (arg == "--iters") {
      opt.iters = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--nodes") {
      opt.nodes = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--out") {
      opt.out_prefix = next();
    } else if (arg == "--help" || arg == "-h") {
      usage_and_exit();
    } else if (position++ == 0) {
      opt.input = arg;
    } else {
      usage_and_exit();
    }
  }
  return opt;
}

core::InitMethod parse_init(const std::string& name) {
  if (name == "firstk") {
    return core::InitMethod::kFirstK;
  }
  if (name == "random") {
    return core::InitMethod::kRandom;
  }
  if (name == "kmeans++") {
    return core::InitMethod::kPlusPlus;
  }
  usage_and_exit();
}

void write_centroids_csv(const util::Matrix& centroids,
                         const std::string& path) {
  std::ofstream out(path);
  for (std::size_t j = 0; j < centroids.rows(); ++j) {
    for (std::size_t u = 0; u < centroids.cols(); ++u) {
      out << (u ? "," : "") << centroids.at(j, u);
    }
    out << "\n";
  }
}

void write_assignments_csv(const std::vector<std::uint32_t>& labels,
                           const std::string& path) {
  std::ofstream out(path);
  out << "sample,cluster\n";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    out << i << "," << labels[i] << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::set_log_level(util::LogLevel::kInfo);
  Options opt = parse(argc, argv);

  data::Dataset dataset;
  if (opt.input.empty()) {
    std::cout << "(demo mode: clustering generated blobs; pass a .csv or "
                 ".bin file to use your own data)\n";
    dataset = data::make_blobs(4000, 24, opt.k, opt.seed);
  } else if (opt.input.size() > 4 &&
             opt.input.substr(opt.input.size() - 4) == ".csv") {
    dataset = data::load_csv(opt.input, opt.input);
  } else {
    dataset = data::load_binary(opt.input);
  }
  std::cout << "dataset: n=" << dataset.n() << ", d=" << dataset.d() << "\n";

  data::ScalingParams scaling;
  if (opt.scale == "minmax") {
    scaling = data::minmax_scale(dataset);
  } else if (opt.scale == "zscore") {
    scaling = data::zscore_scale(dataset);
  } else if (opt.scale != "none") {
    usage_and_exit();
  }

  core::KmeansConfig config;
  config.k = opt.k;
  config.max_iterations = opt.iters;
  config.init = parse_init(opt.init);
  config.seed = opt.seed;
  simarch::Trace trace;

  core::KmeansResult result;
  bool engine_run = false;
  util::Stopwatch watch;
  if (opt.algo == "lloyd") {
    result = core::lloyd_serial(dataset, config);
  } else if (opt.algo == "yinyang") {
    core::AccelStats stats;
    result = core::yinyang_serial(dataset, config, &stats);
    std::cout << "yinyang saved " << stats.savings() * 100
              << "% of distance computations\n";
  } else if (opt.algo == "elkan") {
    core::AccelStats stats;
    result = core::elkan_serial(dataset, config, &stats);
    std::cout << "elkan saved " << stats.savings() * 100
              << "% of distance computations\n";
  } else if (opt.algo == "hamerly") {
    core::AccelStats stats;
    result = core::hamerly_serial(dataset, config, &stats);
    std::cout << "hamerly saved " << stats.savings() * 100
              << "% of distance computations\n";
  } else if (opt.algo == "minibatch") {
    core::MiniBatchConfig mb;
    mb.k = opt.k;
    mb.iterations = opt.iters * 4;
    mb.init = config.init;
    mb.seed = opt.seed;
    result = core::minibatch_kmeans(dataset, mb);
  } else {
    engine_run = true;
    config.trace = &trace;
    const auto machine =
        simarch::MachineConfig::tiny(opt.nodes, 8, 64 * util::kKiB);
    const core::HierarchicalKmeans km(machine);
    if (opt.algo == "auto") {
      result = km.fit(dataset, config);
    } else if (opt.algo == "level1") {
      result = km.fit_level(core::Level::kLevel1, dataset, config);
    } else if (opt.algo == "level2") {
      result = km.fit_level(core::Level::kLevel2, dataset, config);
    } else if (opt.algo == "level3") {
      result = km.fit_level(core::Level::kLevel3, dataset, config);
    } else {
      usage_and_exit();
    }
  }
  const double wall_s = watch.seconds();

  std::cout << (result.converged ? "converged" : "stopped") << " after "
            << result.iterations << " iterations in "
            << util::format_seconds(wall_s) << " wall time\n"
            << "objective O(C): " << result.inertia << "\n";
  if (opt.k >= 2 && dataset.n() >= 10) {
    std::cout << "silhouette (sampled): "
              << core::silhouette_sampled(dataset, result.assignments, opt.k)
              << "\n";
  }
  if (engine_run) {
    std::cout << "simulated machine time: "
              << util::format_seconds(result.cost.total_s()) << " ("
              << result.last_iteration_cost.summary() << ")\n";
  }

  if (!opt.out_prefix.empty()) {
    // Centroids are reported in the caller's raw feature space.
    util::Matrix raw_centroids = result.centroids;
    if (!scaling.empty()) {
      data::invert_scaling(scaling, raw_centroids);
    }
    write_assignments_csv(result.assignments, opt.out_prefix + ".assign.csv");
    write_centroids_csv(raw_centroids, opt.out_prefix + ".centroids.csv");
    core::save_checkpoint(result, opt.out_prefix + ".ckpt");
    std::cout << "wrote " << opt.out_prefix << ".assign.csv, .centroids.csv, "
              << ".ckpt";
    if (engine_run && trace.event_count() > 0) {
      std::ofstream(opt.out_prefix + ".trace.csv") << trace.to_csv();
      std::cout << ", .trace.csv (makespan "
                << util::format_seconds(trace.makespan()) << ", imbalance "
                << trace.imbalance(0) << ")";
    }
    std::cout << "\n";
  }
  return 0;
}
