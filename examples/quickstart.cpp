/// Quickstart: cluster a synthetic dataset with the hierarchical k-means
/// library and inspect what the planner did.
///
///   ./quickstart [n] [k] [d]
///
/// The library runs the real clustering (validated against serial Lloyd)
/// while accounting the time a Sunway TaihuLight would have spent.

#include <cstdlib>
#include <iostream>

#include "core/hkmeans.hpp"
#include "util/log.hpp"
#include "util/units.hpp"

using namespace swhkm;

int main(int argc, char** argv) {
  util::set_log_level(util::LogLevel::kInfo);

  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;
  const std::size_t k = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;
  const std::size_t d = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 32;

  std::cout << "Generating " << n << " samples, " << d << " dims, " << k
            << " true clusters...\n";
  const data::Dataset dataset = data::make_blobs(n, d, k, /*seed=*/2024);

  // A small simulated machine: 2 SW26010-style nodes shrunk to 8 CPEs/CG
  // so every partition level exercises its machinery at laptop scale.
  const simarch::MachineConfig machine = simarch::MachineConfig::tiny(
      /*nodes=*/2, /*cpes_per_cg=*/8, /*ldm_bytes=*/64 * util::kKiB);
  std::cout << "Simulated machine: " << machine.summary() << "\n\n";

  const core::HierarchicalKmeans km(machine);
  core::KmeansConfig config;
  config.k = k;
  config.max_iterations = 50;
  config.init = core::InitMethod::kPlusPlus;
  config.seed = 7;

  // What would each level do?
  std::cout << core::feasibility_report({n, k, d}, machine) << "\n";

  const core::KmeansResult result = km.fit(dataset, config);

  std::cout << "converged: " << (result.converged ? "yes" : "no") << " after "
            << result.iterations << " iterations\n"
            << "objective O(C): " << result.inertia << "\n"
            << "cluster sizes:";
  for (std::size_t size : core::cluster_sizes(result.assignments, k)) {
    std::cout << " " << size;
  }
  std::cout << "\nsimulated machine time: "
            << util::format_seconds(result.cost.total_s()) << " total, "
            << util::format_seconds(result.last_iteration_cost.total_s())
            << " last iteration\n"
            << "  breakdown: " << result.last_iteration_cost.summary()
            << "\n";

  // Cross-check against the serial baseline.
  const core::KmeansResult serial = core::lloyd_serial(dataset, config);
  std::cout << "agreement with serial Lloyd: "
            << core::assignment_agreement(serial.assignments,
                                          result.assignments) *
                   100.0
            << "%\n";
  return 0;
}
