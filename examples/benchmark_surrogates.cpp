/// Benchmark-surrogate tour: materialise laptop-scale versions of the four
/// Table II workloads, cluster each at every feasible partition level, and
/// show the engines agreeing with serial Lloyd while charging simulated
/// Sunway time — the library's validation story in one binary.
///
///   ./benchmark_surrogates [max_n]

#include <cstdlib>
#include <iostream>

#include "core/hkmeans.hpp"
#include "util/csv.hpp"
#include "util/units.hpp"

using namespace swhkm;

int main(int argc, char** argv) {
  const std::size_t max_n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;

  const simarch::MachineConfig machine =
      simarch::MachineConfig::tiny(2, 8, 32 * util::kKiB);
  std::cout << "machine: " << machine.summary() << "\n\n";

  util::Table table({"benchmark", "n", "d", "k", "level", "iters",
                     "agree vs serial", "simulated s/iter"});
  for (data::Benchmark bench :
       {data::Benchmark::kKeggNetwork, data::Benchmark::kRoadNetwork,
        data::Benchmark::kUsCensus1990, data::Benchmark::kIlsvrc2012}) {
    const data::Dataset ds =
        data::make_benchmark_surrogate(bench, max_n, 768, /*seed=*/99);
    core::KmeansConfig config;
    config.k = 12;
    config.max_iterations = 10;
    config.init = core::InitMethod::kRandom;
    config.seed = 5;
    const core::KmeansResult serial = core::lloyd_serial(ds, config);

    const core::ProblemShape shape{ds.n(), config.k, ds.d()};
    for (core::Level level :
         {core::Level::kLevel1, core::Level::kLevel2, core::Level::kLevel3}) {
      if (!core::check_level(level, shape, machine).ok) {
        table.new_row()
            .add(ds.name())
            .add(std::uint64_t{ds.n()})
            .add(std::uint64_t{ds.d()})
            .add(std::uint64_t{config.k})
            .add(core::level_name(level))
            .add("-")
            .add("infeasible")
            .add("-");
        continue;
      }
      const core::KmeansResult result =
          core::run_level(level, ds, config, machine);
      char agree[32];
      std::snprintf(agree, sizeof(agree), "%.1f%%",
                    100.0 * core::assignment_agreement(serial.assignments,
                                                       result.assignments));
      table.new_row()
          .add(ds.name())
          .add(std::uint64_t{ds.n()})
          .add(std::uint64_t{ds.d()})
          .add(std::uint64_t{config.k})
          .add(core::level_name(level))
          .add(std::uint64_t{result.iterations})
          .add(agree)
          .add(result.last_iteration_cost.total_s(), 6);
    }
  }
  std::cout << table.to_text();
  std::cout << "\nEvery feasible level must show 100% agreement with the\n"
               "serial baseline — that is the library's correctness "
               "contract.\n";
  return 0;
}
