/// Capacity planner: given a problem shape (n, k, d) and a node count,
/// print which partition levels can run it, the constraint that blocks
/// the ones that cannot, and the predicted iteration time of the best
/// plan — the tool a user reaches for before queueing a job.
///
///   ./capacity_planner [n] [k] [d] [nodes]
///
/// With no arguments, walks a tour of instructive shapes, including every
/// Table II workload and the shapes at the paper's feasibility walls.

#include <cstdlib>
#include <iostream>

#include "core/hkmeans.hpp"
#include "util/units.hpp"

using namespace swhkm;

namespace {

void report(const core::ProblemShape& shape, std::size_t nodes) {
  const simarch::MachineConfig machine = simarch::MachineConfig::sw26010(nodes);
  std::cout << core::feasibility_report(shape, machine) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 5) {
    const core::ProblemShape shape{std::strtoull(argv[1], nullptr, 10),
                                   std::strtoull(argv[2], nullptr, 10),
                                   std::strtoull(argv[3], nullptr, 10)};
    report(shape, std::strtoull(argv[4], nullptr, 10));
    return 0;
  }

  std::cout << "--- Table II workloads on the paper's machines ---\n\n";
  report({65554, 256, 28}, 1);        // Kegg on one processor
  report({434874, 10000, 4}, 256);    // Road at Level 2 scale
  report({2458285, 10000, 68}, 256);  // Census at Level 2 scale
  report({1265723, 160000, 196608}, 4096);  // ILSVRC headline

  std::cout << "--- The feasibility walls ---\n\n";
  // Level 1's C1 wall: k*d just over one LDM.
  report({1000000, 120, 68}, 1);
  // Level 2's d wall at 4096 (Fig. 7).
  report({1265723, 2000, 4096}, 128);
  report({1265723, 2000, 4608}, 128);
  // Bender et al's published operating point (d=140,256, k=18).
  report({370, 18, 140256}, 128);

  std::cout << "usage: capacity_planner <n> <k> <d> <nodes>\n";
  return 0;
}
