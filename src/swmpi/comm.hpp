#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <type_traits>
#include <vector>

#include "swmpi/fault.hpp"
#include "swmpi/mailbox.hpp"
#include "telemetry/registry.hpp"
#include "util/error.hpp"

namespace swhkm::swmpi {

/// Tags >= kReservedTagBase are used internally by the collectives; user
/// point-to-point traffic must stay below it.
inline constexpr int kReservedTagBase = 1 << 24;

namespace detail {

struct World;

/// 16-byte integrity trailer Comm::send_bytes appends to every mailbox
/// payload. `seq` is the sender's per-world monotone send sequence (the
/// retransmit-store key), `crc` the CRC-32 over the body bytes as framed by
/// the sender, `magic` a sanity tag so a torn/short frame is told apart
/// from a bit-flipped one.
struct FrameTrailer {
  std::uint64_t seq;
  std::uint32_t crc;
  std::uint32_t magic;
};

inline constexpr std::uint32_t kFrameMagic = 0x53574652;  // "SWFR"

/// Bounded NACK/resend attempts the receiver makes before escalating a CRC
/// mismatch to CorruptMessageError.
inline constexpr int kMaxRetransmits = 2;

/// One sender-side retained copy of a payload the FaultPlan corrupted in
/// flight: the receiver's NACK fetches it by (source, seq). Transient
/// ("wire") corruption retains the clean pre-corruption body, so the
/// handshake recovers; persistent ("source buffer") corruption retains the
/// damaged bytes, so it cannot.
struct RetainedSend {
  int source = -1;
  std::uint64_t seq = 0;
  std::vector<std::byte> body;
};

/// Rendezvous registry used by Comm::split: every member of a new
/// sub-communicator must end up holding the *same* World object, so the
/// first member to arrive creates it and the rest look it up by a key that
/// all members can compute identically.
struct SplitRegistry {
  std::mutex mutex;
  std::map<std::vector<int>, std::shared_ptr<World>> live;
};

/// Shared state of one communicator: one mailbox per member rank.
struct World {
  explicit World(int size, FaultPlan* faults = nullptr,
                 telemetry::MetricsRegistry* metrics_registry = nullptr);

  int size;
  std::vector<std::unique_ptr<Mailbox>> boxes;
  SplitRegistry splits;

  /// Shared fault-injection schedule (not owned; null = no injection).
  /// Sub-worlds inherit the pointer so schedules reach split traffic too.
  FaultPlan* fault_plan = nullptr;

  /// Wall-clock metrics sink (not owned; null = no instrumentation).
  /// Sub-worlds inherit it, and shards are keyed by *global* rank, so a
  /// rank's traffic lands in one shard no matter which sub-communicator
  /// carried it.
  telemetry::MetricsRegistry* metrics = nullptr;

  /// How many members still have to pick this world up out of the parent's
  /// split registry (only meaningful while registered there).
  int pickups_remaining = 0;

  /// Per-member monotone send sequence counters (indexed by this world's
  /// local rank) — the frame trailer's `seq`. Atomic because a rank may
  /// send on several sub-communicators backed by the same world object
  /// only from its own thread, but telemetry-free sends must stay
  /// wait-free regardless.
  std::unique_ptr<std::atomic<std::uint64_t>[]> send_seqs;

  /// Retransmit store: only payloads the FaultPlan corrupted are retained
  /// (a clean send can never fail the CRC check), so the store is armed
  /// only when a plan is present and stays empty on clean runs. Bounded
  /// ring; the receiver's NACK looks a copy up by (source, seq).
  std::mutex resend_mutex;
  std::vector<RetainedSend> retained_sends;
  std::size_t retained_next = 0;

  void retain_send(int source, std::uint64_t seq,
                   std::span<const std::byte> body);
  bool fetch_retained(int source, std::uint64_t seq,
                      std::vector<std::byte>& out);

  /// Sub-worlds created by split(); abort_all() must reach ranks blocked in
  /// a sub-communicator's recv too. `aborted` (guarded by children_mutex)
  /// closes the race where a split registers a child *after* abort_all
  /// snapshotted the list: the late registrant observes the flag and
  /// poisons its fresh sub-world itself, so no rank can block forever in a
  /// mailbox the abort sweep never saw.
  std::mutex children_mutex;
  std::vector<std::weak_ptr<World>> children;
  bool aborted = false;

  /// Poison every mailbox (recursively) so blocked ranks unblock with a
  /// RuntimeFault instead of deadlocking after a peer died.
  void abort_all();
};

}  // namespace detail

/// A rank's handle onto a communicator — the MPI-flavoured façade of the
/// thread-backed runtime. Copyable (both copies denote the same rank).
///
/// Deadlock discipline: send() completes without waiting unless the
/// destination already holds Mailbox::kLaneCapacity undrained messages
/// from this rank (bounded SPSC rings — backpressure instead of unbounded
/// buffering); recv() blocks until a matching message arrives. Collectives
/// must be entered by every rank of the communicator in the same order.
/// That discipline keeps the bounded sends cycle-free: every message of a
/// collective op is popped by its destination during that op and a
/// receiver's drain always empties *all* of its lanes, so a lane can only
/// fill when the sender is many ops ahead of the receiver — and a rank
/// that is ahead has already sent everything earlier ops owed, so no rank
/// waiting for ring space can be part of a wait cycle. User point-to-point
/// code must not accumulate kLaneCapacity unreceived messages toward a
/// rank that never enters recv.
class Comm {
 public:
  Comm() = default;

  int rank() const { return rank_; }
  int size() const { return world_ ? world_->size : 0; }
  bool valid() const { return world_ != nullptr; }

  /// Rank in the root world this handle descends from. split() preserves
  /// it, so fault schedules and diagnostics address physical ranks no
  /// matter which sub-communicator the traffic flows through.
  int global_rank() const { return global_rank_; }

  void send_bytes(int dest, int tag, std::span<const std::byte> payload);
  std::vector<std::byte> recv_bytes(int source, int tag);

  template <typename T>
  void send(int dest, int tag, std::span<const T> payload) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag,
               std::as_bytes(std::span<const T>(payload.data(),
                                                payload.size())));
  }

  template <typename T>
  void send_value(int dest, int tag, const T& value) {
    send(dest, tag, std::span<const T>(&value, 1));
  }

  template <typename T>
  std::vector<T> recv(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> raw = recv_bytes(source, tag);
    SWHKM_REQUIRE(raw.size() % sizeof(T) == 0,
                  "received payload is not a whole number of elements");
    std::vector<T> out(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  template <typename T>
  T recv_value(int source, int tag) {
    std::vector<T> v = recv<T>(source, tag);
    SWHKM_REQUIRE(v.size() == 1, "expected a single-element message");
    return v.front();
  }

  /// Collective: partition the communicator by `color`; ranks sharing a
  /// color form a new communicator, ordered by (key, old rank). Every rank
  /// must call it; each gets the sub-communicator for its own color.
  Comm split(int color, int key);

  /// Fresh internal tag for one collective operation. All ranks call the
  /// collectives in the same order, so their sequence counters agree.
  int next_collective_tag() { return kReservedTagBase + (op_seq_++ & 0xFFFF); }

  /// Engines call this at iteration boundaries (global iteration
  /// numbering): if the world carries a FaultPlan that schedules a crash
  /// for this rank at (site, iteration), it throws InjectedFault here —
  /// the deterministic stand-in for a node dying between phases. No-op
  /// without a plan.
  void fault_point(FaultSite site, std::uint64_t iteration);

  /// Engines call this where they expose a memory region to the fault
  /// plan's deterministic bit flips (global iteration numbering): any armed
  /// flip_memory event matching (this rank, site, iteration) XORs its
  /// window into the region. Two-span form for regions stored as a pair of
  /// arrays (an accumulator's sums then counts); offsets address the
  /// concatenation. No-op without a plan.
  void memory_fault_point(MemorySite site, std::uint64_t iteration,
                          std::span<std::byte> a,
                          std::span<std::byte> b = {});

  /// This rank's metrics shard, or null when the world carries no
  /// registry. Collectives use it for their fast-path ledgers; engines may
  /// hang named metrics off it too.
  telemetry::MetricsShard* metrics_shard() const { return tshard_; }

  /// Create the root communicator for `size` ranks; runtime.cpp hands each
  /// spawned thread its rank's handle. `faults` (not owned, may be null)
  /// arms deterministic fault injection for the whole communicator tree;
  /// `metrics` (not owned, may be null) arms wall-clock instrumentation.
  static std::vector<Comm> create_world(
      int size, FaultPlan* faults = nullptr,
      telemetry::MetricsRegistry* metrics = nullptr);

  /// Poison this communicator and all its sub-communicators; any rank
  /// blocked in recv wakes up with RuntimeFault. Called by the SPMD
  /// launcher when a rank dies so the others don't deadlock.
  void abort_world();

 private:
  /// Strip and verify the integrity trailer of one popped mailbox payload.
  /// On CRC/magic mismatch runs the bounded NACK/resend handshake against
  /// the world's retransmit store and, if no clean copy materialises,
  /// throws CorruptMessageError with sender/seq/tag attribution. Shared by
  /// recv_bytes and split()'s direct rank-0 pops so *every* delivery path
  /// is covered.
  std::vector<std::byte> unframe(int source, int tag,
                                 std::vector<std::byte>&& framed);

  Comm(std::shared_ptr<detail::World> world, int rank, int global_rank)
      : world_(std::move(world)), rank_(rank), global_rank_(global_rank) {
    if (world_ != nullptr && world_->metrics != nullptr) {
      tshard_ = &world_->metrics->shard(global_rank_);
    }
  }

  std::shared_ptr<detail::World> world_;
  int rank_ = -1;
  int global_rank_ = -1;
  int op_seq_ = 0;
  telemetry::MetricsShard* tshard_ = nullptr;  ///< resolved once at creation
};

}  // namespace swhkm::swmpi
