#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace swhkm::swmpi {

/// One addressed message. `payload` is raw bytes; typed views live in
/// Comm's templated helpers.
struct Message {
  int source = -1;
  int tag = 0;
  std::vector<std::byte> payload;
};

inline constexpr int kAnySource = -1;

/// Per-rank inbound queue. Senders push from any thread; the owning rank
/// blocks in pop_matching until a message with the requested source/tag
/// arrives. Matching is out-of-order (a later-arrived matching message can
/// be taken while earlier non-matching ones wait), which is what MPI's
/// (source, tag) envelope semantics require.
class Mailbox {
 public:
  void push(Message message);

  /// Block until a message from `source` (or kAnySource) with tag `tag`
  /// is available, remove and return it.
  Message pop_matching(int source, int tag);

  /// Non-blocking variant; returns false when nothing matches right now.
  bool try_pop_matching(int source, int tag, Message& out);

  /// Watchdog variant: block like pop_matching but give up after `timeout`
  /// and return false — the caller turns that into a WatchdogTimeout. Still
  /// throws RuntimeFault immediately if the mailbox is aborted.
  bool pop_matching_for(int source, int tag,
                        std::chrono::milliseconds timeout, Message& out);

  /// Poison the mailbox: current and future pop_matching calls that find no
  /// match throw RuntimeFault instead of blocking. Used when a peer rank
  /// dies, so the SPMD job fails loudly rather than deadlocking.
  void abort();

  std::size_t pending() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable arrived_;
  std::deque<Message> queue_;
  bool aborted_ = false;
};

}  // namespace swhkm::swmpi
