#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "swmpi/spsc_ring.hpp"

namespace swhkm::swmpi {

/// One addressed message. `payload` is raw bytes; typed views live in
/// Comm's templated helpers.
struct Message {
  int source = -1;
  int tag = 0;
  std::vector<std::byte> payload;
};

inline constexpr int kAnySource = -1;

/// Which transport a Mailbox uses. kSpscRings is the production path; the
/// kMutexQueue path is the pre-ring mutex/condvar implementation kept
/// alive (with the timeout race fixed) as the A/B baseline for the
/// mailbox-stall bench cell and for cross-implementation regression tests.
enum class MailboxMode { kSpscRings, kMutexQueue };

/// Process-wide default for newly constructed mailboxes. Bench/test knob
/// only — flip it around a run to compare transports on the same shape;
/// never change it while communicators are live.
MailboxMode default_mailbox_mode();
void set_default_mailbox_mode(MailboxMode mode);

/// Per-rank inbound queue. Senders push from any thread; the owning rank
/// blocks in pop_matching until a message with the requested source/tag
/// arrives. Matching is out-of-order (a later-arrived matching message can
/// be taken while earlier non-matching ones wait), which is what MPI's
/// (source, tag) envelope semantics require.
///
/// Transport (kSpscRings): one bounded lock-free SPSC ring per sender rank
/// — each sender rank is one thread, so every (sender, receiver) pair is a
/// true single-producer/single-consumer channel. The receiver drains the
/// rings into a receiver-private stash deque and matches against the
/// stash; per-source FIFO order is preserved (ring order + in-order
/// drain), cross-source order never was guaranteed. Waiting is
/// spin-then-park: the receiver spins a short budget re-draining the
/// rings, then parks on a condvar guarded by a seq_cst doorbell handshake
/// so a concurrent push (or abort) can never be missed. push() applies
/// bounded backpressure on a full ring — it waits for the receiver to
/// drain instead of buffering unboundedly — which is deadlock-free for
/// the tag-sequenced collectives (see Comm's deadlock-discipline note).
class Mailbox {
 public:
  /// Lane count for default-constructed boxes (direct construction in
  /// tests); the runtime always passes the communicator size.
  static constexpr int kDefaultSenders = 16;
  /// Messages in flight per (sender, receiver) pair before the sender's
  /// push waits. A message occupies one slot regardless of payload size,
  /// and the collectives keep O(1) messages outstanding per peer per op,
  /// so this bounds memory without ever stalling a healthy run.
  static constexpr std::size_t kLaneCapacity = 64;

  explicit Mailbox(int num_senders = kDefaultSenders,
                   MailboxMode mode = default_mailbox_mode());

  /// Deliver a message (caller must be the single sending thread for
  /// message.source). Returns true when the push had to wait for ring
  /// space — the sender-side stall signal the telemetry ledgers record.
  /// Throws RuntimeFault when the ring is full and the mailbox is aborted
  /// (the receiver will never drain again).
  bool push(Message message);

  /// Block until a message from `source` (or kAnySource) with tag `tag`
  /// is available, remove and return it. `parked`, when non-null, is set
  /// to true if the wait fell through the spin budget to the condvar slow
  /// path (left untouched otherwise).
  Message pop_matching(int source, int tag, bool* parked = nullptr);

  /// Non-blocking variant; returns false when nothing matches right now.
  bool try_pop_matching(int source, int tag, Message& out);

  /// Watchdog variant: block like pop_matching but give up after `timeout`
  /// and return false — the caller turns that into a WatchdogTimeout. The
  /// deadline path re-checks the queue one final time after expiry, so a
  /// message that arrived while the waiter was being released can never be
  /// dropped into a spurious timeout. Still throws RuntimeFault if the
  /// mailbox is aborted. `parked` as in pop_matching.
  bool pop_matching_for(int source, int tag,
                        std::chrono::milliseconds timeout, Message& out,
                        bool* parked = nullptr);

  /// Poison the mailbox: current and future pop_matching calls that find no
  /// match throw RuntimeFault instead of blocking (already-delivered
  /// messages stay poppable). Wakes a parked receiver and any sender
  /// waiting on a full ring. Used when a peer rank dies, so the SPMD job
  /// fails loudly rather than deadlocking.
  void abort();

  /// Approximate number of delivered-but-unpopped messages. Exact when
  /// called from the owning (receiver) thread or with no concurrent
  /// activity; other threads get a snapshot (queue-depth gauge use).
  std::size_t pending() const;

 private:
  // Ring-mode internals (consumer thread only unless noted).
  bool drain_and_take(int source, int tag, Message& out);
  bool take_from_stash(int source, int tag, Message& out);
  bool pop_ring(int source, int tag,
                const std::chrono::steady_clock::time_point* deadline,
                Message& out, bool* parked);
  [[noreturn]] void throw_aborted() const;

  // Legacy-mode internals.
  bool pop_legacy(int source, int tag,
                  const std::chrono::steady_clock::time_point* deadline,
                  Message& out, bool* parked);

  MailboxMode mode_;

  // --- kSpscRings state ---
  std::vector<SpscRing<Message>> lanes_;  ///< lane index == source rank
  std::deque<Message> stash_;             ///< consumer-private overflow of
                                          ///< drained-but-unmatched messages
  std::atomic<std::uint64_t> doorbell_{0};  ///< bumped by push() and abort()
  std::atomic<bool> parked_{false};
  std::atomic<bool> aborted_{false};
  std::mutex park_mutex_;
  std::condition_variable park_cv_;

  // --- kMutexQueue state (legacy baseline) ---
  mutable std::mutex legacy_mutex_;
  std::condition_variable legacy_arrived_;
  std::deque<Message> legacy_queue_;
  bool legacy_aborted_ = false;
};

}  // namespace swhkm::swmpi
