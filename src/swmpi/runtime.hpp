#pragma once

#include <functional>

#include "swmpi/comm.hpp"
#include "swmpi/fault.hpp"

namespace swhkm::swmpi {

/// Launch `body` on `nranks` SPMD ranks (rank 0 on the calling thread,
/// the rest on fresh std::threads), join them all, and rethrow the most
/// meaningful failure if any rank failed.
///
/// When a rank throws, the whole communicator tree is poisoned so ranks
/// blocked in recv fail fast instead of deadlocking. Error preference when
/// several ranks fail: a real error (anything outside the RuntimeFault
/// family) wins over an injected fault or watchdog timeout, which wins
/// over the secondary "communicator aborted" faults the poisoning causes.
///
/// `faults` (not owned, may be null) arms deterministic fault injection:
/// the plan's schedule is consulted by every Comm of the world tree and by
/// the engines' fault_point calls.
///
/// `metrics` (not owned, may be null) arms wall-clock instrumentation of
/// the runtime: every collective and point-to-point operation of the world
/// tree records into the registry's per-(global-)rank shards. Null keeps
/// the runtime on the uninstrumented fast path.
void run_spmd(int nranks, const std::function<void(Comm&)>& body,
              FaultPlan* faults = nullptr,
              telemetry::MetricsRegistry* metrics = nullptr);

}  // namespace swhkm::swmpi
