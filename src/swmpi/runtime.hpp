#pragma once

#include <functional>

#include "swmpi/comm.hpp"

namespace swhkm::swmpi {

/// Launch `body` on `nranks` SPMD ranks (rank 0 on the calling thread,
/// the rest on fresh std::threads), join them all, and rethrow the
/// lowest-rank exception if any rank failed.
///
/// When a rank throws, the whole communicator tree is poisoned so ranks
/// blocked in recv fail fast instead of deadlocking; their secondary
/// "communicator aborted" faults are swallowed in favour of the original
/// error.
void run_spmd(int nranks, const std::function<void(Comm&)>& body);

}  // namespace swhkm::swmpi
