#include "swmpi/collectives.hpp"

#include <atomic>

namespace swhkm::swmpi {

namespace {

// Process-global schedule selection, the same A/B idiom as the mailbox
// MailboxMode toggle: relaxed atomics because the schedule is configured
// before ranks launch (run_spmd publishes with a stronger edge) and only
// read inside collectives.
std::atomic<CollectiveSchedule> g_schedule{CollectiveSchedule::kFlat};
std::atomic<int> g_ranks_per_group{1};
std::atomic<std::size_t> g_crossover_bytes{HierarchySpec{}.crossover_bytes};

}  // namespace

CollectiveSchedule default_collective_schedule() {
  return g_schedule.load(std::memory_order_relaxed);
}

void set_default_collective_schedule(CollectiveSchedule schedule) {
  g_schedule.store(schedule, std::memory_order_relaxed);
}

HierarchySpec default_hierarchy_spec() {
  HierarchySpec spec;
  spec.ranks_per_group = g_ranks_per_group.load(std::memory_order_relaxed);
  spec.crossover_bytes = g_crossover_bytes.load(std::memory_order_relaxed);
  return spec;
}

void set_default_hierarchy_spec(const HierarchySpec& spec) {
  g_ranks_per_group.store(spec.ranks_per_group, std::memory_order_relaxed);
  g_crossover_bytes.store(spec.crossover_bytes, std::memory_order_relaxed);
}

void barrier(Comm& comm) {
  detail::CollectiveScope scope(comm, telemetry::CollectiveKind::kBarrier, 0);
  const int size = comm.size();
  if (size <= 1) {
    return;
  }
  const int tag = comm.next_collective_tag();
  const std::byte token{0};
  for (int step = 1; step < size; step <<= 1) {
    const int to = (comm.rank() + step) % size;
    const int from = (comm.rank() - step % size + size) % size;
    comm.send_bytes(to, tag, std::span<const std::byte>(&token, 1));
    (void)comm.recv_bytes(from, tag);
  }
}

}  // namespace swhkm::swmpi
