#include "swmpi/collectives.hpp"

namespace swhkm::swmpi {

void barrier(Comm& comm) {
  detail::CollectiveScope scope(comm, telemetry::CollectiveKind::kBarrier, 0);
  const int size = comm.size();
  if (size <= 1) {
    return;
  }
  const int tag = comm.next_collective_tag();
  const std::byte token{0};
  for (int step = 1; step < size; step <<= 1) {
    const int to = (comm.rank() + step) % size;
    const int from = (comm.rank() - step % size + size) % size;
    comm.send_bytes(to, tag, std::span<const std::byte>(&token, 1));
    (void)comm.recv_bytes(from, tag);
  }
}

}  // namespace swhkm::swmpi
