#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace swhkm::swmpi {

/// Bounded lock-free single-producer / single-consumer ring. One instance
/// carries the traffic of exactly one (sender rank, receiver rank) pair:
/// the sender thread is the only caller of try_push, the receiver thread
/// the only caller of try_pop. Under that contract every operation is
/// wait-free — one relaxed load of the own index, one acquire load of the
/// peer's index, a slot move and one release store.
///
/// Memory ordering: the producer publishes a slot with a release store of
/// `tail_`; the consumer's acquire load of `tail_` therefore observes the
/// completed slot write. Symmetrically the consumer retires a slot with a
/// release store of `head_`, and the producer's acquire load of `head_`
/// knows the slot has been vacated before reusing it. Indices are free
/// running (mod 2^64); `tail_ - head_` is the occupancy.
///
/// The move constructor exists only so a std::vector of rings can be built
/// during communicator setup; it is not thread-safe and must never run
/// concurrently with push/pop.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity_pow2)
      : mask_(capacity_pow2 - 1), slots_(capacity_pow2) {}

  SpscRing(SpscRing&& other) noexcept
      : mask_(other.mask_), slots_(std::move(other.slots_)) {
    head_.store(other.head_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    tail_.store(other.tail_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer side. Moves from `value` and returns true when a slot was
  /// free; leaves `value` untouched and returns false on a full ring.
  bool try_push(T& value) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) > mask_) {
      return false;  // full
    }
    slots_[static_cast<std::size_t>(t) & mask_] = std::move(value);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Moves the oldest element into `out`; false when empty.
  bool try_pop(T& out) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == h) {
      return false;  // empty
    }
    out = std::move(slots_[static_cast<std::size_t>(h) & mask_]);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy — exact when the caller is the only active
  /// side, a harmless snapshot otherwise (used for queue-depth gauges).
  std::size_t size_approx() const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    return t >= h ? static_cast<std::size_t>(t - h) : 0;
  }

 private:
  std::size_t mask_;
  std::vector<T> slots_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< consumer index
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< producer index
};

}  // namespace swhkm::swmpi
