#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "swmpi/comm.hpp"

namespace swhkm::swmpi {

/// Collectives over a Comm. Every rank of the communicator must call the
/// same collective in the same order (standard MPI discipline). Reduction
/// trees are fixed binomial trees, so results are deterministic run-to-run
/// for a given rank count.

namespace detail {

/// RAII instrumentation for one collective entry: ticks the calling rank's
/// (kind → calls/bytes) ledger at construction and observes the wall
/// latency at destruction. `bytes` is the collective's logical payload
/// volume from this rank's perspective, not wire traffic — composite
/// collectives also tick their building blocks, so the per-kind counters
/// describe every layer rather than a disjoint partition. Free (two null
/// checks) when the communicator carries no metrics registry.
class CollectiveScope {
 public:
  CollectiveScope(const Comm& comm, telemetry::CollectiveKind kind,
                  std::size_t bytes) {
    telemetry::MetricsShard* shard = comm.metrics_shard();
    if (shard != nullptr) {
      stats_ = &shard->collective(kind);
      stats_->calls.add(1);
      stats_->bytes.add(bytes);
      start_ = std::chrono::steady_clock::now();
    }
  }
  CollectiveScope(const CollectiveScope&) = delete;
  CollectiveScope& operator=(const CollectiveScope&) = delete;
  ~CollectiveScope() {
    if (stats_ != nullptr) {
      stats_->wall_s.observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start_)
              .count());
    }
  }

 private:
  telemetry::CollectiveStats* stats_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace detail

/// Dissemination barrier: log2(size) rounds of token passing.
void barrier(Comm& comm);

namespace ops {
struct Plus {
  template <typename T>
  void operator()(T& inout, const T& in) const {
    inout += in;
  }
};
struct Min {
  template <typename T>
  void operator()(T& inout, const T& in) const {
    if (in < inout) {
      inout = in;
    }
  }
};
struct Max {
  template <typename T>
  void operator()(T& inout, const T& in) const {
    if (inout < in) {
      inout = in;
    }
  }
};
}  // namespace ops

/// (distance, index) pair with the tie-break-toward-lower-index ordering
/// that keeps partitioned argmin identical to a serial scan. The ordering
/// is element-wise, so one vector-shaped allreduce_minloc resolves a whole
/// tile of samples in a single barrier — the engines batch their assign
/// phase over this rather than combining per sample.
struct MinLoc {
  double value = 0;
  std::uint64_t index = 0;

  friend bool operator<(const MinLoc& a, const MinLoc& b) {
    return a.value != b.value ? a.value < b.value : a.index < b.index;
  }
};
static_assert(std::is_trivially_copyable_v<MinLoc> && sizeof(MinLoc) == 16,
              "MinLoc must stay a trivially copyable 16-byte record: tiles "
              "of them are sent through the mailbox byte transport");

/// MinLoc extended with the runner-up distance: the smallest (value, index)
/// wins as in MinLoc, and `second` tracks the smallest distance over every
/// *other* candidate seen so far. With each rank contributing the top two
/// distances of its disjoint centroid slice, the combined record holds the
/// exact global best and global second-best — which is what a Hamerly
/// lower bound needs to stay exact under the nk/nkd centroid slicing.
struct MinLoc2 {
  double value = 0;
  std::uint64_t index = 0;
  double second = 0;
};
static_assert(std::is_trivially_copyable_v<MinLoc2> && sizeof(MinLoc2) == 24,
              "MinLoc2 must stay a trivially copyable 24-byte record: tiles "
              "of them are sent through the mailbox byte transport");

/// Combine for MinLoc2: select the best (value, index) and keep `second` as
/// the minimum over every distance that is not the selected best. Pure
/// selection over the union multiset of candidates — no FP arithmetic — so
/// the operation is exact and associative; any combine tree yields the
/// same bits.
struct CombineMinLoc2 {
  void operator()(MinLoc2& inout, const MinLoc2& in) const {
    const bool in_wins = in.value != inout.value ? in.value < inout.value
                                                 : in.index < inout.index;
    if (in_wins) {
      const double runner =
          inout.value < in.second ? inout.value : in.second;
      inout.value = in.value;
      inout.index = in.index;
      inout.second = runner;
    } else if (in.value < inout.second) {
      inout.second = in.value;
    }
  }
};

namespace detail {
inline int binomial_parent(int vrank) { return vrank & (vrank - 1); }
}  // namespace detail

/// Broadcast `buf` from `root` to all ranks (binomial tree).
template <typename T>
void bcast(Comm& comm, int root, std::span<T> buf) {
  static_assert(std::is_trivially_copyable_v<T>);
  detail::CollectiveScope scope(comm, telemetry::CollectiveKind::kBcast,
                                buf.size_bytes());
  const int size = comm.size();
  if (size <= 1) {
    return;
  }
  const int tag = comm.next_collective_tag();
  const int vrank = (comm.rank() - root + size) % size;

  // Receive from the parent (clear-lowest-set-bit), then relay to children
  // vrank + m for descending powers of two m below my lowest set bit.
  int top = 1;
  while (top < size) {
    top <<= 1;
  }
  int lsb = vrank == 0 ? top : (vrank & (-vrank));
  if (vrank != 0) {
    const int parent = detail::binomial_parent(vrank);
    std::vector<T> incoming =
        comm.recv<T>((parent + root) % size, tag);
    SWHKM_REQUIRE(incoming.size() == buf.size(),
                  "bcast payload size mismatch");
    std::copy(incoming.begin(), incoming.end(), buf.begin());
  }
  for (int m = lsb >> 1; m >= 1; m >>= 1) {
    const int child = vrank + m;
    if (child < size) {
      comm.send<T>((child + root) % size, tag,
                   std::span<const T>(buf.data(), buf.size()));
    }
  }
}

/// Reduce element-wise into `buf` at `root` (binomial tree); on non-root
/// ranks `buf` is left holding intermediate partial reductions.
template <typename T, typename Op>
void reduce(Comm& comm, int root, std::span<T> buf, Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  detail::CollectiveScope scope(comm, telemetry::CollectiveKind::kReduce,
                                buf.size_bytes());
  const int size = comm.size();
  if (size <= 1) {
    return;
  }
  const int tag = comm.next_collective_tag();
  const int vrank = (comm.rank() - root + size) % size;
  for (int step = 1; step < size; step <<= 1) {
    if (vrank & step) {
      comm.send<T>((detail::binomial_parent(vrank) + root) % size, tag,
                   std::span<const T>(buf.data(), buf.size()));
      return;
    }
    const int child = vrank + step;
    if (child < size) {
      std::vector<T> incoming = comm.recv<T>((child + root) % size, tag);
      SWHKM_REQUIRE(incoming.size() == buf.size(),
                    "reduce payload size mismatch");
      for (std::size_t i = 0; i < buf.size(); ++i) {
        op(buf[i], incoming[i]);
      }
    }
  }
}

/// AllReduce: reduce to rank 0, then broadcast. Every rank ends up with the
/// identical (bit-for-bit) combined buffer.
template <typename T, typename Op>
void allreduce(Comm& comm, std::span<T> buf, Op op) {
  detail::CollectiveScope scope(comm, telemetry::CollectiveKind::kAllreduce,
                                buf.size_bytes());
  reduce(comm, 0, buf, op);
  bcast(comm, 0, buf);
}

/// Convenience: sum-allreduce.
template <typename T>
void allreduce_sum(Comm& comm, std::span<T> buf) {
  allreduce(comm, buf, ops::Plus{});
}

/// AllReduce of MinLoc pairs: after the call every rank holds, per element,
/// the smallest (value, index) contribution across ranks.
inline void allreduce_minloc(Comm& comm, std::span<MinLoc> buf) {
  allreduce(comm, buf, ops::Min{});
}

/// AllReduce of MinLoc2 records: per element, every rank ends up with the
/// global best (value, index) and the exact global second-best distance.
inline void allreduce_minloc2(Comm& comm, std::span<MinLoc2> buf) {
  allreduce(comm, buf, CombineMinLoc2{});
}

/// Split-phase allreduce for software-pipelined loops: start() posts every
/// up-tree send this rank can issue without waiting (a childless rank's
/// contribution goes into flight immediately) and reserves the op's tags;
/// finish() performs the remaining child receives, the walk to the root
/// and the broadcast down, then leaves `buf` holding the combined result.
/// The fold is byte-for-byte the root-0 binomial association of
/// allreduce() = reduce(root 0) + bcast(root 0) — same child order, same
/// operand order — so pipelined and unpipelined calls produce identical
/// bits.
///
/// Discipline: every rank must call start/finish for the same ops in the
/// same interleaved order (start t; start t+1; finish t; ... is fine —
/// tags keep concurrent ops apart). Keep the outstanding depth small: each
/// op holds at most two messages per mailbox lane, so depth stays well
/// under Mailbox::kLaneCapacity for any sane pipeline.
///
/// Instrumentation: calls/bytes and the wall histogram tick in finish(),
/// so allreduce.wall_s measures the blocking drain, not the overlapped
/// compute between the phases.
template <typename T, typename Op>
class SplitAllreduce {
 public:
  SplitAllreduce() = default;
  SplitAllreduce(const SplitAllreduce&) = delete;
  SplitAllreduce& operator=(const SplitAllreduce&) = delete;

  bool active() const { return comm_ != nullptr; }

  void start(Comm& comm, std::span<T> buf, Op op) {
    SWHKM_REQUIRE(!active(), "SplitAllreduce::start while an op is in flight");
    comm_ = &comm;
    buf_ = buf;
    op_ = op;
    reduce_tag_ = comm.next_collective_tag();
    bcast_tag_ = comm.next_collective_tag();
    resume_step_ = 0;  // 0 = up phase already complete
    const int size = comm.size();
    if (size <= 1) {
      return;
    }
    const int vrank = comm.rank();  // root is rank 0: vrank == rank
    for (int step = 1; step < size; step <<= 1) {
      if (vrank & step) {
        // Everything below this bit is already folded in (no children
        // remain), so the contribution can leave now — this send is the
        // overlap start() exists for.
        comm.send<T>(detail::binomial_parent(vrank), reduce_tag_,
                     std::span<const T>(buf_.data(), buf_.size()));
        return;
      }
      if (vrank + step < size) {
        resume_step_ = step;  // first blocking child recv: defer to finish
        return;
      }
    }
  }

  void finish() {
    SWHKM_REQUIRE(active(), "SplitAllreduce::finish without a start");
    Comm& comm = *comm_;
    detail::CollectiveScope scope(comm, telemetry::CollectiveKind::kAllreduce,
                                  buf_.size_bytes());
    const int size = comm.size();
    const int vrank = comm.rank();
    if (size > 1) {
      // Resume reduce()'s loop exactly where start() left off: identical
      // step sequence, child order and operand order keep the association.
      if (resume_step_ > 0) {
        for (int step = resume_step_; step < size; step <<= 1) {
          if (vrank & step) {
            comm.send<T>(detail::binomial_parent(vrank), reduce_tag_,
                         std::span<const T>(buf_.data(), buf_.size()));
            break;
          }
          const int child = vrank + step;
          if (child < size) {
            std::vector<T> incoming = comm.recv<T>(child, reduce_tag_);
            SWHKM_REQUIRE(incoming.size() == buf_.size(),
                          "split allreduce payload size mismatch");
            for (std::size_t i = 0; i < buf_.size(); ++i) {
              op_(buf_[i], incoming[i]);
            }
          }
        }
      }
      // Broadcast down from rank 0 — bcast()'s body with the reserved tag.
      int top = 1;
      while (top < size) {
        top <<= 1;
      }
      const int lsb = vrank == 0 ? top : (vrank & (-vrank));
      if (vrank != 0) {
        std::vector<T> incoming =
            comm.recv<T>(detail::binomial_parent(vrank), bcast_tag_);
        SWHKM_REQUIRE(incoming.size() == buf_.size(),
                      "split allreduce bcast size mismatch");
        std::copy(incoming.begin(), incoming.end(), buf_.begin());
      }
      for (int m = lsb >> 1; m >= 1; m >>= 1) {
        if (vrank + m < size) {
          comm.send<T>(vrank + m, bcast_tag_,
                       std::span<const T>(buf_.data(), buf_.size()));
        }
      }
    }
    comm_ = nullptr;
  }

 private:
  Comm* comm_ = nullptr;
  std::span<T> buf_;
  Op op_{};
  int reduce_tag_ = 0;
  int bcast_tag_ = 0;
  int resume_step_ = 0;
};

/// s-step deferred reduction: accumulate several tiles' combine records in
/// one store and ride them on a single SplitAllreduce, cutting collective
/// *rounds* by the fold factor while moving the same bytes. The combine
/// stays element-wise over the concatenated records — each element is still
/// folded in the root-0 binomial association — so deferring is bit-identical
/// to per-tile combines for any fold factor.
///
/// Protocol per span: reset(); then for each sub-tile claim(count) and fill
/// the returned span; launch(comm, op) once; overlap compute; finish();
/// read records(). claim() is only legal between reset() and launch() —
/// the store may reallocate while claiming, so spans from earlier claims
/// are invalidated by later ones (fill each claim before the next); once
/// launch() posts the buffer to the collective no further growth is
/// allowed. A span with zero claimed records skips the collective:
/// launch() is a no-op and launched() stays false, so callers can charge
/// rounds only for combines that actually hit the network.
template <typename T, typename Op>
class DeferredCombine {
 public:
  DeferredCombine() = default;
  DeferredCombine(const DeferredCombine&) = delete;
  DeferredCombine& operator=(const DeferredCombine&) = delete;

  /// Grow the backing store up front (records survive reset()) so claims
  /// inside the hot loop never pay a reallocation.
  void reserve(std::size_t records) { store_.reserve(records); }

  void reset() {
    SWHKM_REQUIRE(!active(), "DeferredCombine::reset while an op is in flight");
    store_.clear();
    launched_ = false;
  }

  /// Append `count` uninitialised record slots and return them for the
  /// caller to fill (the engines clear_scores + score into the claim).
  std::span<T> claim(std::size_t count) {
    SWHKM_REQUIRE(!active() && !launched_,
                  "DeferredCombine::claim after launch");
    const std::size_t begin = store_.size();
    store_.resize(begin + count);
    return std::span<T>(store_.data() + begin, count);
  }

  std::size_t size() const { return store_.size(); }
  bool active() const { return combine_.active(); }
  bool launched() const { return launched_; }

  /// Post the span's single collective. No-op when nothing was claimed;
  /// returns whether a collective actually launched.
  bool launch(Comm& comm, Op op) {
    SWHKM_REQUIRE(!active(), "DeferredCombine::launch while an op is in flight");
    launched_ = true;
    if (store_.empty()) {
      return false;
    }
    combine_.start(comm, std::span<T>(store_.data(), store_.size()), op);
    return true;
  }

  void finish() {
    if (combine_.active()) {
      combine_.finish();
    }
  }

  /// The combined records after finish(), in claim order.
  std::span<const T> records() const {
    return std::span<const T>(store_.data(), store_.size());
  }

 private:
  std::vector<T> store_;
  SplitAllreduce<T, Op> combine_;
  bool launched_ = false;
};

/// Gather one value per rank; every rank receives the vector indexed by
/// rank. Linear gather through rank 0 plus broadcast — collectives at this
/// granularity run once per engine setup, not per sample.
template <typename T>
std::vector<T> allgather(Comm& comm, const T& mine) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int size = comm.size();
  detail::CollectiveScope scope(
      comm, telemetry::CollectiveKind::kAllgather,
      static_cast<std::size_t>(size) * sizeof(T));
  std::vector<T> all(static_cast<std::size_t>(size));
  all[static_cast<std::size_t>(comm.rank())] = mine;
  if (size == 1) {
    return all;
  }
  const int tag = comm.next_collective_tag();
  if (comm.rank() == 0) {
    for (int r = 1; r < size; ++r) {
      all[static_cast<std::size_t>(r)] = comm.recv_value<T>(r, tag);
    }
  } else {
    comm.send_value<T>(0, tag, mine);
  }
  bcast(comm, 0, std::span<T>(all.data(), all.size()));
  return all;
}

/// Gather one value per rank at `root`; root receives the vector indexed
/// by rank, other ranks receive an empty vector.
template <typename T>
std::vector<T> gather(Comm& comm, int root, const T& mine) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int size = comm.size();
  detail::CollectiveScope scope(
      comm, telemetry::CollectiveKind::kGather,
      static_cast<std::size_t>(size) * sizeof(T));
  const int tag = comm.next_collective_tag();
  if (comm.rank() != root) {
    comm.send_value<T>(root, tag, mine);
    return {};
  }
  std::vector<T> all(static_cast<std::size_t>(size));
  all[static_cast<std::size_t>(root)] = mine;
  for (int r = 0; r < size; ++r) {
    if (r != root) {
      all[static_cast<std::size_t>(r)] = comm.recv_value<T>(r, tag);
    }
  }
  return all;
}

/// Scatter one value per rank from `root`; rank r receives values[r].
/// Non-root callers pass an empty span.
template <typename T>
T scatter(Comm& comm, int root, std::span<const T> values) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int size = comm.size();
  detail::CollectiveScope scope(
      comm, telemetry::CollectiveKind::kScatter,
      static_cast<std::size_t>(size) * sizeof(T));
  const int tag = comm.next_collective_tag();
  if (comm.rank() == root) {
    SWHKM_REQUIRE(values.size() == static_cast<std::size_t>(size),
                  "scatter needs one value per rank at the root");
    for (int r = 0; r < size; ++r) {
      if (r != root) {
        comm.send_value<T>(r, tag, values[static_cast<std::size_t>(r)]);
      }
    }
    return values[static_cast<std::size_t>(root)];
  }
  return comm.recv_value<T>(root, tag);
}

/// Personalised all-to-all: rank r sends sendbuf[q] to rank q and receives
/// what every rank addressed to it, indexed by source rank.
template <typename T>
std::vector<T> alltoall(Comm& comm, std::span<const T> sendbuf) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int size = comm.size();
  detail::CollectiveScope scope(comm, telemetry::CollectiveKind::kAlltoall,
                                sendbuf.size_bytes());
  SWHKM_REQUIRE(sendbuf.size() == static_cast<std::size_t>(size),
                "alltoall needs one value per destination");
  const int tag = comm.next_collective_tag();
  std::vector<T> recvbuf(static_cast<std::size_t>(size));
  recvbuf[static_cast<std::size_t>(comm.rank())] =
      sendbuf[static_cast<std::size_t>(comm.rank())];
  for (int q = 0; q < size; ++q) {
    if (q != comm.rank()) {
      comm.send_value<T>(q, tag, sendbuf[static_cast<std::size_t>(q)]);
    }
  }
  for (int q = 0; q < size; ++q) {
    if (q != comm.rank()) {
      recvbuf[static_cast<std::size_t>(q)] = comm.recv_value<T>(q, tag);
    }
  }
  return recvbuf;
}

/// Combined send+receive with a single peer (or two different peers) —
/// the deadlock-free building block for ring exchanges. Send never
/// blocks in this runtime, so the operation is trivially safe, but the
/// call keeps user code shaped like its MPI counterpart.
template <typename T>
std::vector<T> sendrecv(Comm& comm, int dest, std::span<const T> payload,
                        int source) {
  detail::CollectiveScope scope(comm, telemetry::CollectiveKind::kSendrecv,
                                payload.size_bytes());
  const int tag = comm.next_collective_tag();
  comm.send<T>(dest, tag, payload);
  return comm.recv<T>(source, tag);
}

/// Reduce-scatter: element-wise reduce `buf` (one block of `block` values
/// per rank, so buf.size() == block * size) and hand rank r its reduced
/// block r. The bandwidth-optimal first half of large AllReduces.
template <typename T, typename Op>
std::vector<T> reduce_scatter(Comm& comm, std::span<const T> buf,
                              std::size_t block, Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  detail::CollectiveScope scope(
      comm, telemetry::CollectiveKind::kReduceScatter, buf.size_bytes());
  const int size = comm.size();
  SWHKM_REQUIRE(buf.size() == block * static_cast<std::size_t>(size),
                "reduce_scatter needs one block per rank");
  const int tag = comm.next_collective_tag();
  // Ring algorithm: size-1 steps, each passing one partially-reduced
  // block to the right neighbour; deterministic combine order by rank.
  const int right = (comm.rank() + 1) % size;
  const int left = (comm.rank() - 1 + size) % size;
  // Step s: this rank sends block (rank - s) and receives + reduces block
  // (rank - s - 1), so after size-1 steps it holds block (rank + 1) % ...
  // Simplify with explicit working copy.
  // Offset -1 so that after size-1 steps rank r holds exactly block r,
  // matching MPI_Reduce_scatter_block semantics.
  std::vector<T> work(buf.begin(), buf.end());
  for (int step = 0; step < size - 1; ++step) {
    const int send_block = ((comm.rank() - step - 1) % size + size) % size;
    const int recv_block = ((comm.rank() - step - 2) % size + size) % size;
    comm.send<T>(right, tag,
                 std::span<const T>(work.data() + send_block * block, block));
    const std::vector<T> incoming = comm.recv<T>(left, tag);
    SWHKM_REQUIRE(incoming.size() == block, "reduce_scatter block mismatch");
    T* mine = work.data() + recv_block * block;
    for (std::size_t i = 0; i < block; ++i) {
      op(mine[i], incoming[i]);
    }
  }
  return std::vector<T>(
      work.begin() + static_cast<std::ptrdiff_t>(comm.rank() * block),
      work.begin() + static_cast<std::ptrdiff_t>((comm.rank() + 1) * block));
}

/// Reduce-scatter with ragged ranges and *binomial* summation order.
/// Element-wise, the combine association is exactly the root-0 binomial
/// tree of reduce(), so the reduced values are bit-identical to a
/// reduce-to-root followed by a scatter — unlike the ring reduce_scatter
/// above, whose rank-sequential combine order changes FP bits. Rank r
/// receives the sub-range [offsets[r], offsets[r+1]) of the reduction.
/// `offsets` must be identical on every rank, ascending, with
/// offsets.size() == size + 1 and covering buf exactly; empty ranges are
/// allowed (k < ranks).
///
/// Power-of-two sizes run a recursive-halving exchange — processing the
/// lowest rank bit first pairs (0,1),(2,3),… then (0,2),(1,3),…, which is
/// the binomial tree's own pairing, so each rank moves O(buf/2) bytes and
/// the combine work spreads over all ranks without changing a single
/// association. Other sizes fall back to binomial reduce + scatter, which
/// has the same association by construction.
///
/// This overload consumes `buf` as scratch (contents are destroyed) —
/// callers holding a freshly packed payload avoid a full-buffer copy.
template <typename T, typename Op>
std::vector<T> reduce_scatter_ranges(Comm& comm, std::span<T> buf,
                                     std::span<const std::size_t> offsets,
                                     Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  detail::CollectiveScope scope(
      comm, telemetry::CollectiveKind::kReduceScatterRanges,
      buf.size_bytes());
  const int size = comm.size();
  const int rank = comm.rank();
  SWHKM_REQUIRE(offsets.size() == static_cast<std::size_t>(size) + 1,
                "reduce_scatter_ranges needs size+1 offsets");
  SWHKM_REQUIRE(offsets.front() == 0 && offsets.back() == buf.size(),
                "reduce_scatter_ranges offsets must cover the buffer");
  if (size == 1) {
    return std::vector<T>(buf.begin(), buf.end());
  }
  const bool pow2 = (size & (size - 1)) == 0;
  if (!pow2) {
    // Binomial reduce to rank 0, then scatter the ranges. The combine
    // association is the definition of what the halving path reproduces.
    reduce(comm, 0, buf, op);
    const int tag = comm.next_collective_tag();
    if (rank == 0) {
      for (int r = 1; r < size; ++r) {
        comm.send<T>(r, tag,
                     std::span<const T>(buf.data() + offsets[r],
                                        offsets[r + 1] - offsets[r]));
      }
      return std::vector<T>(buf.begin() + static_cast<std::ptrdiff_t>(
                                              offsets[0]),
                            buf.begin() + static_cast<std::ptrdiff_t>(
                                              offsets[1]));
    }
    std::vector<T> mine = comm.recv<T>(0, tag);
    SWHKM_REQUIRE(mine.size() == offsets[rank + 1] - offsets[rank],
                  "reduce_scatter_ranges scatter size mismatch");
    return mine;
  }
  // Recursive halving, lowest bit first. Before the step for bit `s`, rank
  // r holds, for every range b with (b & (s-1)) == (r & (s-1)), the fold
  // of the 2^(steps done) ranks that share r's processed low bits — the
  // binomial subtree partial. The step exchanges the halves whose bit s
  // disagrees and combines with the lower subtree as the inout operand,
  // exactly reduce()'s operand order.
  const int tag = comm.next_collective_tag();
  std::vector<T> pack;
  for (int s = 1; s < size; s <<= 1) {
    const int peer = rank ^ s;
    pack.clear();
    for (int b = 0; b < size; ++b) {
      if ((b & (s - 1)) == (rank & (s - 1)) && (b & s) != (rank & s)) {
        pack.insert(pack.end(), buf.begin() + static_cast<std::ptrdiff_t>(
                                                  offsets[b]),
                    buf.begin() + static_cast<std::ptrdiff_t>(
                                      offsets[b + 1]));
      }
    }
    comm.send<T>(peer, tag, std::span<const T>(pack.data(), pack.size()));
    const std::vector<T> incoming = comm.recv<T>(peer, tag);
    std::size_t at = 0;
    for (int b = 0; b < size; ++b) {
      if ((b & (s - 1)) != (rank & (s - 1)) || (b & s) != (rank & s)) {
        continue;  // not a range this rank keeps after the step
      }
      T* mine = buf.data() + offsets[b];
      const std::size_t len = offsets[b + 1] - offsets[b];
      SWHKM_REQUIRE(at + len <= incoming.size(),
                    "reduce_scatter_ranges block mismatch");
      if ((rank & s) == 0) {
        for (std::size_t i = 0; i < len; ++i) {
          op(mine[i], incoming[at + i]);
        }
      } else {
        // The peer's subtree is the lower one: it must be the inout
        // operand so a non-commutative op still matches reduce().
        for (std::size_t i = 0; i < len; ++i) {
          T merged = incoming[at + i];
          op(merged, mine[i]);
          mine[i] = merged;
        }
      }
      at += len;
    }
    SWHKM_REQUIRE(at == incoming.size(),
                  "reduce_scatter_ranges payload mismatch");
  }
  return std::vector<T>(
      buf.begin() + static_cast<std::ptrdiff_t>(offsets[rank]),
      buf.begin() + static_cast<std::ptrdiff_t>(offsets[rank + 1]));
}

/// Non-destructive overload: copies `buf` into scratch and delegates.
template <typename T, typename Op>
std::vector<T> reduce_scatter_ranges(Comm& comm, std::span<const T> buf,
                                     std::span<const std::size_t> offsets,
                                     Op op) {
  std::vector<T> work(buf.begin(), buf.end());
  return reduce_scatter_ranges(comm, std::span<T>(work.data(), work.size()),
                               offsets, op);
}

/// Variable-length allgather with caller-known lengths: every rank
/// contributes `mine` (== counts[rank] elements; zero allowed) and
/// receives the rank-order concatenation of all contributions. `counts`
/// must be identical on every rank.
///
/// Power-of-two sizes run the recursive-doubling hypercube exchange —
/// log2(size) rounds, each sending the contiguous aligned group of blocks
/// the rank has assembled so far — so the latency-critical round count is
/// logarithmic. Other sizes fall back to a direct exchange (send never
/// blocks in this runtime, so the all-to-all post is deadlock-free).
template <typename T>
std::vector<T> allgatherv(Comm& comm, std::span<const T> mine,
                          std::span<const std::size_t> counts) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int size = comm.size();
  const int rank = comm.rank();
  SWHKM_REQUIRE(counts.size() == static_cast<std::size_t>(size),
                "allgatherv needs one count per rank");
  SWHKM_REQUIRE(counts[rank] == mine.size(),
                "allgatherv counts[rank] must match the contribution");
  std::vector<std::size_t> offsets(static_cast<std::size_t>(size) + 1, 0);
  for (int r = 0; r < size; ++r) {
    offsets[r + 1] = offsets[r] + counts[r];
  }
  detail::CollectiveScope scope(comm,
                                telemetry::CollectiveKind::kAllgatherv,
                                offsets.back() * sizeof(T));
  std::vector<T> all(offsets.back());
  std::copy(mine.begin(), mine.end(),
            all.begin() + static_cast<std::ptrdiff_t>(offsets[rank]));
  if (size == 1) {
    return all;
  }
  const int tag = comm.next_collective_tag();
  if ((size & (size - 1)) == 0) {
    // Recursive doubling: before the round for bit `s`, this rank holds
    // the aligned block group [rank & ~(s-1), +s) — contiguous in `all`,
    // so rounds send straight out of the output buffer without packing.
    for (int s = 1; s < size; s <<= 1) {
      const int peer = rank ^ s;
      const int base = rank & ~(s - 1);
      const int pbase = peer & ~(s - 1);
      comm.send<T>(peer, tag,
                   std::span<const T>(all.data() + offsets[base],
                                      offsets[base + s] - offsets[base]));
      const std::vector<T> incoming = comm.recv<T>(peer, tag);
      SWHKM_REQUIRE(incoming.size() == offsets[pbase + s] - offsets[pbase],
                    "allgatherv round length mismatch");
      std::copy(incoming.begin(), incoming.end(),
                all.begin() + static_cast<std::ptrdiff_t>(offsets[pbase]));
    }
    return all;
  }
  for (int q = 0; q < size; ++q) {
    if (q != rank) {
      comm.send<T>(q, tag, mine);
    }
  }
  for (int q = 0; q < size; ++q) {
    if (q == rank) {
      continue;
    }
    const std::vector<T> incoming = comm.recv<T>(q, tag);
    SWHKM_REQUIRE(incoming.size() == counts[q], "allgatherv length mismatch");
    std::copy(incoming.begin(), incoming.end(),
              all.begin() + static_cast<std::ptrdiff_t>(offsets[q]));
  }
  return all;
}

/// Length-discovering overload: one internal allgather of lengths, then
/// the known-counts exchange above.
template <typename T>
std::vector<T> allgatherv(Comm& comm, std::span<const T> mine) {
  const std::vector<std::uint64_t> lengths =
      allgather(comm, static_cast<std::uint64_t>(mine.size()));
  std::vector<std::size_t> counts(lengths.size());
  for (std::size_t r = 0; r < lengths.size(); ++r) {
    counts[r] = static_cast<std::size_t>(lengths[r]);
  }
  return allgatherv(comm, mine,
                    std::span<const std::size_t>(counts.data(),
                                                 counts.size()));
}

/// Inclusive prefix reduction: rank r receives op-fold of ranks 0..r's
/// contributions, combined in rank order (deterministic).
template <typename T, typename Op>
T scan(Comm& comm, const T& mine, Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  detail::CollectiveScope scope(comm, telemetry::CollectiveKind::kScan,
                                sizeof(T));
  const int tag = comm.next_collective_tag();
  T accumulated = mine;
  if (comm.rank() > 0) {
    const T from_left = comm.recv_value<T>(comm.rank() - 1, tag);
    accumulated = from_left;
    op(accumulated, mine);
  }
  if (comm.rank() + 1 < comm.size()) {
    comm.send_value<T>(comm.rank() + 1, tag, accumulated);
  }
  return accumulated;
}

}  // namespace swhkm::swmpi
