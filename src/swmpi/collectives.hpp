#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "swmpi/comm.hpp"
#include "telemetry/flight_recorder.hpp"

namespace swhkm::swmpi {

/// Collectives over a Comm. Every rank of the communicator must call the
/// same collective in the same order (standard MPI discipline). Reduction
/// trees are fixed binomial trees, so results are deterministic run-to-run
/// for a given rank count.

namespace detail {

/// RAII instrumentation for one collective entry: ticks the calling rank's
/// (kind → calls/bytes) ledger at construction and observes the wall
/// latency at destruction. `bytes` is the collective's logical payload
/// volume from this rank's perspective, not wire traffic — composite
/// collectives also tick their building blocks, so the per-kind counters
/// describe every layer rather than a disjoint partition. Free (two null
/// checks) when the communicator carries no metrics registry.
class CollectiveScope {
 public:
  CollectiveScope(const Comm& comm, telemetry::CollectiveKind kind,
                  std::size_t bytes) {
    telemetry::MetricsShard* shard = comm.metrics_shard();
    if (shard != nullptr) {
      stats_ = &shard->collective(kind);
      stats_->calls.add(1);
      stats_->bytes.add(bytes);
      start_ = std::chrono::steady_clock::now();
      ring_ = shard->flight();
      if (ring_ != nullptr) {
        // swmpi has no iteration concept; flight events from here carry
        // iteration 0 and are ordered by their wall timestamps instead.
        kind_ = static_cast<std::uint16_t>(kind);
        bytes_ = bytes;
        ring_->record(telemetry::FlightEventKind::kCollectiveEnter, 0, kind_,
                      bytes_);
      }
    }
  }
  CollectiveScope(const CollectiveScope&) = delete;
  CollectiveScope& operator=(const CollectiveScope&) = delete;
  ~CollectiveScope() {
    if (stats_ != nullptr) {
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start_)
              .count();
      stats_->wall_s.observe(wall_s);
      if (ring_ != nullptr) {
        ring_->record(telemetry::FlightEventKind::kCollectiveExit, 0, kind_,
                      bytes_,
                      static_cast<std::uint64_t>(wall_s * 1e6));
      }
    }
  }

 private:
  telemetry::CollectiveStats* stats_ = nullptr;
  telemetry::FlightRing* ring_ = nullptr;
  std::chrono::steady_clock::time_point start_;
  std::uint16_t kind_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace detail

/// Which schedule the reduction-shaped collectives (allreduce and friends,
/// reduce_scatter_ranges, allgatherv, SplitAllreduce/DeferredCombine) run.
/// kFlat is the original single binomial / recursive pattern over the whole
/// world and stays available as the A/B baseline, the same way the mutex
/// mailboxes stayed behind MailboxMode::kMutexQueue.
enum class CollectiveSchedule {
  kFlat,
  kHierarchical,
};

/// Shape and tuning of the two-level schedule. `ranks_per_group` is how
/// many consecutive ranks share a supernode (the engines pass
/// cgs_per_node * supernode_nodes); the intra stage folds within aligned
/// power-of-two blocks of that width, so any value — including non-powers
/// of two and values larger than the world — yields a valid grouping.
/// `crossover_bytes` is the payload size above which the inter-group stage
/// switches from the latency-optimal binomial tree to the
/// bandwidth-optimal reduce_scatter+allgather exchange; the engines derive
/// it from MachineConfig::collective_crossover_bytes() instead of
/// hard-coding it.
struct HierarchySpec {
  int ranks_per_group = 1;
  std::size_t crossover_bytes = 128 * 1024;
};

/// Process-global schedule selection, read at every collective entry. Set
/// before ranks launch (or between run_spmd invocations); toggling while
/// ranks are inside a collective is undefined.
CollectiveSchedule default_collective_schedule();
void set_default_collective_schedule(CollectiveSchedule schedule);
HierarchySpec default_hierarchy_spec();
void set_default_hierarchy_spec(const HierarchySpec& spec);

/// RAII schedule override: installs (schedule, spec), restores the previous
/// pair on destruction. The engines wrap each run_spmd in one of these so a
/// failed run cannot leak a hierarchical default into later flat tests.
class ScopedCollectiveSchedule {
 public:
  ScopedCollectiveSchedule(CollectiveSchedule schedule,
                           const HierarchySpec& spec)
      : prev_schedule_(default_collective_schedule()),
        prev_spec_(default_hierarchy_spec()) {
    set_default_collective_schedule(schedule);
    set_default_hierarchy_spec(spec);
  }
  ScopedCollectiveSchedule(const ScopedCollectiveSchedule&) = delete;
  ScopedCollectiveSchedule& operator=(const ScopedCollectiveSchedule&) =
      delete;
  ~ScopedCollectiveSchedule() {
    set_default_collective_schedule(prev_schedule_);
    set_default_hierarchy_spec(prev_spec_);
  }

 private:
  CollectiveSchedule prev_schedule_;
  HierarchySpec prev_spec_;
};

/// Dissemination barrier: log2(size) rounds of token passing.
void barrier(Comm& comm);

namespace ops {
struct Plus {
  template <typename T>
  void operator()(T& inout, const T& in) const {
    inout += in;
  }
};
struct Min {
  template <typename T>
  void operator()(T& inout, const T& in) const {
    if (in < inout) {
      inout = in;
    }
  }
};
struct Max {
  template <typename T>
  void operator()(T& inout, const T& in) const {
    if (inout < in) {
      inout = in;
    }
  }
};
}  // namespace ops

/// (distance, index) pair with the tie-break-toward-lower-index ordering
/// that keeps partitioned argmin identical to a serial scan. The ordering
/// is element-wise, so one vector-shaped allreduce_minloc resolves a whole
/// tile of samples in a single barrier — the engines batch their assign
/// phase over this rather than combining per sample.
struct MinLoc {
  double value = 0;
  std::uint64_t index = 0;

  friend bool operator<(const MinLoc& a, const MinLoc& b) {
    return a.value != b.value ? a.value < b.value : a.index < b.index;
  }
};
static_assert(std::is_trivially_copyable_v<MinLoc> && sizeof(MinLoc) == 16,
              "MinLoc must stay a trivially copyable 16-byte record: tiles "
              "of them are sent through the mailbox byte transport");

/// MinLoc extended with the runner-up distance: the smallest (value, index)
/// wins as in MinLoc, and `second` tracks the smallest distance over every
/// *other* candidate seen so far. With each rank contributing the top two
/// distances of its disjoint centroid slice, the combined record holds the
/// exact global best and global second-best — which is what a Hamerly
/// lower bound needs to stay exact under the nk/nkd centroid slicing.
struct MinLoc2 {
  double value = 0;
  std::uint64_t index = 0;
  double second = 0;
};
static_assert(std::is_trivially_copyable_v<MinLoc2> && sizeof(MinLoc2) == 24,
              "MinLoc2 must stay a trivially copyable 24-byte record: tiles "
              "of them are sent through the mailbox byte transport");

/// Combine for MinLoc2: select the best (value, index) and keep `second` as
/// the minimum over every distance that is not the selected best. Pure
/// selection over the union multiset of candidates — no FP arithmetic — so
/// the operation is exact and associative; any combine tree yields the
/// same bits.
struct CombineMinLoc2 {
  void operator()(MinLoc2& inout, const MinLoc2& in) const {
    const bool in_wins = in.value != inout.value ? in.value < inout.value
                                                 : in.index < inout.index;
    if (in_wins) {
      const double runner =
          inout.value < in.second ? inout.value : in.second;
      inout.value = in.value;
      inout.index = in.index;
      inout.second = runner;
    } else if (in.value < inout.second) {
      inout.second = in.value;
    }
  }
};

/// Fold `size` equally-shaped value streams into `out[0..len)` using the
/// fixed pairing of the root-0 binomial tree: stream r absorbs stream r+s
/// for s = 1, 2, 4, … with the lower stream always the inout operand —
/// exactly reduce()'s association, element by element. This is the one
/// shared copy of the fold order used by both the sharded update phase
/// (reduce_and_update folding shard slices across CG partials) and the
/// intra-supernode stage of the hierarchical collectives.
///
/// `peer_slice(r)` returns stream r's base pointer; streams are only read.
/// `out` may alias peer_slice(0): the first combine of stream 0 reads both
/// operands before writing each element. `scratch` must hold at least
/// `size` vectors; entries are resized as interior partials need them.
template <typename T, typename Op, typename PeerSlice>
void fold_binomial_slices(T* out, std::size_t len, int size,
                          std::vector<std::vector<T>>& scratch,
                          PeerSlice&& peer_slice, Op op) {
  if (size == 1) {
    const T* own = peer_slice(0);
    if (own != out) {
      std::copy(own, own + len, out);
    }
    return;
  }
  SWHKM_REQUIRE(scratch.size() >= static_cast<std::size_t>(size),
                "fold_binomial_slices needs one scratch slot per stream");
  // cur[r] points at the partial currently folded into stream r, or null
  // while the stream is still untouched (first combine reads the source
  // buffer directly and materialises the partial).
  std::vector<const T*> cur(static_cast<std::size_t>(size), nullptr);
  for (int s = 1; s < size; s <<= 1) {
    for (int r = 0; r + s < size; r += 2 * s) {
      const T* b = cur[r + s] != nullptr ? cur[r + s] : peer_slice(r + s);
      if (cur[r] == nullptr) {
        T* target = out;
        if (r != 0) {
          scratch[r].resize(len);
          target = scratch[r].data();
        }
        const T* a = peer_slice(r);
        for (std::size_t i = 0; i < len; ++i) {
          T v = a[i];
          op(v, b[i]);
          target[i] = v;
        }
        cur[r] = target;
      } else {
        T* target = r == 0 ? out : scratch[r].data();
        for (std::size_t i = 0; i < len; ++i) {
          op(target[i], b[i]);
        }
      }
    }
  }
}

namespace detail {
inline int binomial_parent(int vrank) { return vrank & (vrank - 1); }

inline int floor_pow2(int v) {
  int p = 1;
  while (p * 2 <= v) {
    p <<= 1;
  }
  return p;
}

inline std::uint32_t ceil_log2(int v) {
  std::uint32_t lg = 0;
  int p = 1;
  while (p < v) {
    p <<= 1;
    ++lg;
  }
  return lg;
}

/// How a rank sits in the two-level schedule. Groups are *aligned blocks*
/// of width `width = floor_pow2(ranks_per_group)`: rounding the configured
/// group width down to a power of two and aligning blocks at multiples of
/// it is what makes the nested fold bit-identical to the flat root-0
/// binomial tree for every world size — in the flat fold, every rank that
/// survives the steps below `width` is congruent to 0 mod the step, so
/// after those steps the survivors are exactly the block leaders, and the
/// remaining steps pair leaders by group index (see DESIGN.md §12).
struct HierLayout {
  int group = 0;       ///< group index
  int leader = 0;      ///< rank of this group's leader (group * width)
  int local = 0;       ///< index within the group; 0 == leader
  int group_size = 1;  ///< ranks in this group (tail group may be short)
  int num_groups = 1;
  int width = 1;       ///< aligned block width (power of two)
};

inline HierLayout hier_layout(int rank, int size, int ranks_per_group) {
  HierLayout l;
  l.width = floor_pow2(std::clamp(ranks_per_group, 1, size));
  l.group = rank / l.width;
  l.leader = l.group * l.width;
  l.local = rank - l.leader;
  l.num_groups = (size + l.width - 1) / l.width;
  l.group_size = std::min(l.width, size - l.leader);
  return l;
}

/// Every hierarchical collective reserves the same five-tag block so tag
/// consumption stays uniform across ranks regardless of each rank's role.
struct HierTags {
  int ptr = 0;      ///< member -> leader buffer-pointer publish
  int inter_a = 0;  ///< inter-group reduce / halving / exchange
  int inter_b = 0;  ///< inter-group broadcast / doubling / range scatter
  int down = 0;     ///< leader -> member result delivery
  int ack = 0;      ///< member -> leader buffer release
};

inline HierTags reserve_hier_tags(Comm& comm) {
  HierTags t;
  t.ptr = comm.next_collective_tag();
  t.inter_a = comm.next_collective_tag();
  t.inter_b = comm.next_collective_tag();
  t.down = comm.next_collective_tag();
  t.ack = comm.next_collective_tag();
  return t;
}

/// The intra stage is zero-copy: ranks of one group share an address
/// space (they are threads of one process), so a member publishes its
/// buffer *pointer* and the leader folds the member buffers in place. The
/// mailbox send/recv pair is the happens-before edge that makes the bytes
/// behind the pointer visible to the reader.
inline void publish_ptr(Comm& comm, int dest, int tag, const void* p) {
  comm.send_value<std::uintptr_t>(dest, tag,
                                  reinterpret_cast<std::uintptr_t>(p));
}

template <typename T>
const T* recv_ptr(Comm& comm, int source, int tag) {
  return reinterpret_cast<const T*>(
      comm.recv_value<std::uintptr_t>(source, tag));
}

/// Per-collective schedule telemetry, ticked once per collective by the
/// group leaders (not once per rank): which inter algorithm ran and how
/// many stages each level took. Named counters are the slow path of the
/// registry, so this only runs when telemetry is attached at all.
inline void tick_hier_counters(Comm& comm, const char* algo_counter,
                               const char* intra_counter,
                               const char* inter_counter,
                               std::uint64_t intra_rounds,
                               std::uint64_t inter_rounds) {
  telemetry::MetricsShard* shard = comm.metrics_shard();
  if (shard == nullptr) {
    return;
  }
  shard->counter(algo_counter).add(1);
  if (intra_rounds > 0) {
    shard->counter(intra_counter).add(intra_rounds);
  }
  if (inter_rounds > 0) {
    shard->counter(inter_counter).add(inter_rounds);
  }
}

/// Leader half of the intra stage: collect the member buffer pointers and
/// fold all group streams into the leader's own buffer with the shared
/// binomial association (local index j == flat rank leader + j). Members
/// stay parked in their down-phase receive, so every published pointer
/// outlives the fold.
template <typename T, typename Op>
void hier_intra_fold(Comm& comm, const HierLayout& l, const HierTags& tags,
                     std::span<T> buf, Op op) {
  std::vector<const T*> streams(static_cast<std::size_t>(l.group_size),
                                nullptr);
  streams[0] = buf.data();
  for (int j = 1; j < l.group_size; ++j) {
    streams[static_cast<std::size_t>(j)] =
        recv_ptr<T>(comm, l.leader + j, tags.ptr);
  }
  std::vector<std::vector<T>> scratch(
      static_cast<std::size_t>(l.group_size));
  fold_binomial_slices(
      buf.data(), buf.size(), l.group_size, scratch,
      [&](int r) { return streams[static_cast<std::size_t>(r)]; }, op);
}

/// Latency-optimal inter stage: binomial tree over group indices (reduce
/// to group 0's leader, broadcast back down). Group G absorbing group
/// G + step with the incoming operand on the right is exactly the flat
/// tree's steps >= width, so the association is unchanged.
template <typename T, typename Op>
void hier_inter_tree(Comm& comm, const HierLayout& l, const HierTags& tags,
                     std::span<T> buf, Op op) {
  const int ng = l.num_groups;
  const int g = l.group;
  for (int step = 1; step < ng; step <<= 1) {
    if (g & step) {
      comm.send<T>(binomial_parent(g) * l.width, tags.inter_a,
                   std::span<const T>(buf.data(), buf.size()));
      break;
    }
    if (g + step < ng) {
      std::vector<T> incoming =
          comm.recv<T>((g + step) * l.width, tags.inter_a);
      SWHKM_REQUIRE(incoming.size() == buf.size(),
                    "hier inter-tree payload size mismatch");
      for (std::size_t i = 0; i < buf.size(); ++i) {
        op(buf[i], incoming[i]);
      }
    }
  }
  int top = 1;
  while (top < ng) {
    top <<= 1;
  }
  const int lsb = g == 0 ? top : (g & (-g));
  if (g != 0) {
    std::vector<T> incoming =
        comm.recv<T>(binomial_parent(g) * l.width, tags.inter_b);
    SWHKM_REQUIRE(incoming.size() == buf.size(),
                  "hier inter-tree bcast size mismatch");
    std::copy(incoming.begin(), incoming.end(), buf.begin());
  }
  for (int m = lsb >> 1; m >= 1; m >>= 1) {
    if (g + m < ng) {
      comm.send<T>((g + m) * l.width, tags.inter_b,
                   std::span<const T>(buf.data(), buf.size()));
    }
  }
}

/// Even element partition of a buffer over `parts` owners (monotone, may
/// contain empty ranges); identical on every rank by construction.
inline std::vector<std::size_t> even_offsets(std::size_t len, int parts) {
  std::vector<std::size_t> offs(static_cast<std::size_t>(parts) + 1);
  for (int i = 0; i <= parts; ++i) {
    offs[static_cast<std::size_t>(i)] =
        len * static_cast<std::size_t>(i) / static_cast<std::size_t>(parts);
  }
  return offs;
}

/// Bandwidth-optimal inter stage (power-of-two group counts): recursive
/// halving reduce-scatter over an even element partition, then recursive
/// doubling allgather. Processing the lowest group bit first with the
/// lower subtree as the inout operand reproduces the binomial tree's
/// association element-wise — the same argument as reduce_scatter_ranges —
/// so switching algorithms by payload size never changes a bit.
template <typename T, typename Op>
void hier_inter_rsag(Comm& comm, const HierLayout& l, const HierTags& tags,
                     std::span<T> buf, Op op) {
  const int ng = l.num_groups;
  const int g = l.group;
  const std::vector<std::size_t> offs = even_offsets(buf.size(), ng);
  std::vector<T> pack;
  for (int s = 1; s < ng; s <<= 1) {
    const int peer = (g ^ s) * l.width;
    pack.clear();
    for (int b = 0; b < ng; ++b) {
      if ((b & (s - 1)) == (g & (s - 1)) && (b & s) != (g & s)) {
        pack.insert(
            pack.end(),
            buf.begin() + static_cast<std::ptrdiff_t>(offs[b]),
            buf.begin() + static_cast<std::ptrdiff_t>(offs[b + 1]));
      }
    }
    comm.send<T>(peer, tags.inter_a,
                 std::span<const T>(pack.data(), pack.size()));
    const std::vector<T> incoming = comm.recv<T>(peer, tags.inter_a);
    std::size_t at = 0;
    for (int b = 0; b < ng; ++b) {
      if ((b & (s - 1)) != (g & (s - 1)) || (b & s) != (g & s)) {
        continue;
      }
      T* mine = buf.data() + offs[b];
      const std::size_t len = offs[b + 1] - offs[b];
      SWHKM_REQUIRE(at + len <= incoming.size(),
                    "hier halving block mismatch");
      if ((g & s) == 0) {
        for (std::size_t i = 0; i < len; ++i) {
          op(mine[i], incoming[at + i]);
        }
      } else {
        for (std::size_t i = 0; i < len; ++i) {
          T merged = incoming[at + i];
          op(merged, mine[i]);
          mine[i] = merged;
        }
      }
      at += len;
    }
    SWHKM_REQUIRE(at == incoming.size(), "hier halving payload mismatch");
  }
  for (int s = 1; s < ng; s <<= 1) {
    const int peer_group = g ^ s;
    const int peer = peer_group * l.width;
    const int base = g & ~(s - 1);
    const int pbase = peer_group & ~(s - 1);
    comm.send<T>(peer, tags.inter_b,
                 std::span<const T>(buf.data() + offs[base],
                                    offs[base + s] - offs[base]));
    const std::vector<T> incoming = comm.recv<T>(peer, tags.inter_b);
    SWHKM_REQUIRE(incoming.size() == offs[pbase + s] - offs[pbase],
                  "hier doubling round length mismatch");
    std::copy(incoming.begin(), incoming.end(),
              buf.begin() + static_cast<std::ptrdiff_t>(offs[pbase]));
  }
}

/// Size-adaptive inter algorithm selection: the bandwidth schedule needs a
/// power-of-two group count (halving pairs every group each round) and
/// only pays off above the latency/bandwidth crossover.
inline bool inter_uses_rsag(const HierLayout& l, std::size_t payload_bytes,
                            std::size_t crossover_bytes) {
  return l.num_groups > 1 && payload_bytes > crossover_bytes &&
         (l.num_groups & (l.num_groups - 1)) == 0;
}

/// Blocking tail of the hierarchical allreduce: everything after the
/// member's pointer publish. Split out so SplitAllreduce can post the
/// publish in start() and run the rest in finish().
template <typename T, typename Op>
void hier_allreduce_finish(Comm& comm, const HierLayout& l,
                           const HierTags& tags, const HierarchySpec& spec,
                           std::span<T> buf, Op op) {
  if (l.local != 0) {
    // Parked here until the leader's fold + inter stage finish; the
    // publish above keeps this rank's buffer valid for the leader to read.
    const T* result = recv_ptr<T>(comm, l.leader, tags.down);
    std::copy(result, result + buf.size(), buf.begin());
    comm.send_value<std::uint8_t>(l.leader, tags.ack, 1);
    return;
  }
  hier_intra_fold(comm, l, tags, buf, op);
  const bool rsag = inter_uses_rsag(l, buf.size_bytes(), spec.crossover_bytes);
  if (l.num_groups > 1) {
    if (rsag) {
      hier_inter_rsag(comm, l, tags, buf, op);
    } else {
      hier_inter_tree(comm, l, tags, buf, op);
    }
  }
  for (int j = 1; j < l.group_size; ++j) {
    publish_ptr(comm, l.leader + j, tags.down, buf.data());
  }
  for (int j = 1; j < l.group_size; ++j) {
    (void)comm.recv_value<std::uint8_t>(l.leader + j, tags.ack);
  }
  tick_hier_counters(comm,
                     rsag ? "swmpi.hier.allreduce.algo_rsag"
                          : "swmpi.hier.allreduce.algo_tree",
                     "swmpi.hier.allreduce.intra_rounds",
                     "swmpi.hier.allreduce.inter_rounds",
                     2 * ceil_log2(l.group_size),
                     l.num_groups > 1 ? 2 * ceil_log2(l.num_groups) : 0);
}

/// Two-level allreduce: intra-group zero-copy fold into the leaders, a
/// size-adaptive inter stage among leaders, then the result pointer fans
/// back down and members copy it out. Bit-identical to the flat schedule
/// for every op and world shape (the callers' contract).
template <typename T, typename Op>
void hier_allreduce(Comm& comm, std::span<T> buf, Op op,
                    const HierarchySpec& spec) {
  const HierLayout l = hier_layout(comm.rank(), comm.size(),
                                   spec.ranks_per_group);
  const HierTags tags = reserve_hier_tags(comm);
  if (l.local != 0) {
    publish_ptr(comm, l.leader, tags.ptr, buf.data());
  }
  hier_allreduce_finish(comm, l, tags, spec, buf, op);
}

/// Two-level reduce_scatter_ranges: intra fold into the leaders, inter
/// stage over *group ranges* (each group's range is the concatenation of
/// its members' ranges), then each leader hands members their slice as
/// plain bytes — members need no ack since they only receive.
template <typename T, typename Op>
std::vector<T> hier_reduce_scatter_ranges(
    Comm& comm, std::span<T> buf, std::span<const std::size_t> offsets,
    Op op, const HierarchySpec& spec) {
  const int size = comm.size();
  const int rank = comm.rank();
  const HierLayout l = hier_layout(rank, size, spec.ranks_per_group);
  const HierTags tags = reserve_hier_tags(comm);
  if (l.local != 0) {
    publish_ptr(comm, l.leader, tags.ptr, buf.data());
    std::vector<T> mine = comm.recv<T>(l.leader, tags.down);
    SWHKM_REQUIRE(mine.size() == offsets[rank + 1] - offsets[rank],
                  "hier reduce_scatter_ranges slice size mismatch");
    return mine;
  }
  hier_intra_fold(comm, l, tags, buf, op);
  const int ng = l.num_groups;
  // Group q's range covers its member ranges: [goff(q), goff(q + 1)).
  const auto goff = [&](int q) {
    return offsets[std::min(static_cast<std::size_t>(q) *
                                static_cast<std::size_t>(l.width),
                            static_cast<std::size_t>(size))];
  };
  const bool rsag = inter_uses_rsag(l, buf.size_bytes(), spec.crossover_bytes);
  if (ng > 1) {
    const int g = l.group;
    if (rsag) {
      // Recursive halving over group ranges, lowest group bit first — the
      // flat pow2 path of reduce_scatter_ranges transposed to group space.
      std::vector<T> pack;
      for (int s = 1; s < ng; s <<= 1) {
        const int peer = (g ^ s) * l.width;
        pack.clear();
        for (int b = 0; b < ng; ++b) {
          if ((b & (s - 1)) == (g & (s - 1)) && (b & s) != (g & s)) {
            pack.insert(
                pack.end(),
                buf.begin() + static_cast<std::ptrdiff_t>(goff(b)),
                buf.begin() + static_cast<std::ptrdiff_t>(goff(b + 1)));
          }
        }
        comm.send<T>(peer, tags.inter_a,
                     std::span<const T>(pack.data(), pack.size()));
        const std::vector<T> incoming = comm.recv<T>(peer, tags.inter_a);
        std::size_t at = 0;
        for (int b = 0; b < ng; ++b) {
          if ((b & (s - 1)) != (g & (s - 1)) || (b & s) != (g & s)) {
            continue;
          }
          T* mine = buf.data() + goff(b);
          const std::size_t len = goff(b + 1) - goff(b);
          SWHKM_REQUIRE(at + len <= incoming.size(),
                        "hier group-halving block mismatch");
          if ((g & s) == 0) {
            for (std::size_t i = 0; i < len; ++i) {
              op(mine[i], incoming[at + i]);
            }
          } else {
            for (std::size_t i = 0; i < len; ++i) {
              T merged = incoming[at + i];
              op(merged, mine[i]);
              mine[i] = merged;
            }
          }
          at += len;
        }
        SWHKM_REQUIRE(at == incoming.size(),
                      "hier group-halving payload mismatch");
      }
    } else {
      // Tree reduce over group indices to group 0's leader, which then
      // sends every other leader its group range.
      for (int step = 1; step < ng; step <<= 1) {
        if (g & step) {
          comm.send<T>(binomial_parent(g) * l.width, tags.inter_a,
                       std::span<const T>(buf.data(), buf.size()));
          break;
        }
        if (g + step < ng) {
          std::vector<T> incoming =
              comm.recv<T>((g + step) * l.width, tags.inter_a);
          SWHKM_REQUIRE(incoming.size() == buf.size(),
                        "hier inter-tree payload size mismatch");
          for (std::size_t i = 0; i < buf.size(); ++i) {
            op(buf[i], incoming[i]);
          }
        }
      }
      if (g == 0) {
        for (int q = 1; q < ng; ++q) {
          comm.send<T>(q * l.width, tags.inter_b,
                       std::span<const T>(buf.data() + goff(q),
                                          goff(q + 1) - goff(q)));
        }
      } else {
        std::vector<T> range = comm.recv<T>(0, tags.inter_b);
        SWHKM_REQUIRE(range.size() == goff(g + 1) - goff(g),
                      "hier group range size mismatch");
        std::copy(range.begin(), range.end(),
                  buf.begin() + static_cast<std::ptrdiff_t>(goff(g)));
      }
    }
  }
  for (int j = 1; j < l.group_size; ++j) {
    const int r = l.leader + j;
    comm.send<T>(r, tags.down,
                 std::span<const T>(buf.data() + offsets[r],
                                    offsets[r + 1] - offsets[r]));
  }
  tick_hier_counters(
      comm,
      rsag ? "swmpi.hier.reduce_scatter_ranges.algo_rsag"
           : "swmpi.hier.reduce_scatter_ranges.algo_tree",
      "swmpi.hier.reduce_scatter_ranges.intra_rounds",
      "swmpi.hier.reduce_scatter_ranges.inter_rounds",
      ceil_log2(l.group_size),
      ng > 1 ? (rsag ? ceil_log2(ng) : ceil_log2(ng) + 1) : 0);
  return std::vector<T>(
      buf.begin() + static_cast<std::ptrdiff_t>(offsets[rank]),
      buf.begin() + static_cast<std::ptrdiff_t>(offsets[rank + 1]));
}

/// Two-level allgatherv: members publish their contribution pointers, each
/// leader assembles its group block straight from the member buffers, the
/// leaders exchange blocks (recursive doubling when the group count is a
/// power of two, direct exchange otherwise — concatenation has no
/// reduction op, so the bandwidth schedule is always the right one), and
/// the assembled result fans back down by pointer. `all` arrives with the
/// caller's own contribution already placed and leaves fully assembled.
template <typename T>
void hier_allgatherv_fill(Comm& comm, std::span<const T> mine,
                          std::span<const std::size_t> offsets,
                          std::vector<T>& all, const HierarchySpec& spec) {
  const int size = comm.size();
  const int rank = comm.rank();
  const HierLayout l = hier_layout(rank, size, spec.ranks_per_group);
  const HierTags tags = reserve_hier_tags(comm);
  if (l.local != 0) {
    publish_ptr(comm, l.leader, tags.ptr, mine.data());
    const T* result = recv_ptr<T>(comm, l.leader, tags.down);
    std::copy(result, result + all.size(), all.begin());
    comm.send_value<std::uint8_t>(l.leader, tags.ack, 1);
    return;
  }
  for (int j = 1; j < l.group_size; ++j) {
    const int r = l.leader + j;
    const T* src = recv_ptr<T>(comm, r, tags.ptr);
    std::copy(src, src + (offsets[r + 1] - offsets[r]),
              all.begin() + static_cast<std::ptrdiff_t>(offsets[r]));
  }
  const int ng = l.num_groups;
  const auto goff = [&](int q) {
    return offsets[std::min(static_cast<std::size_t>(q) *
                                static_cast<std::size_t>(l.width),
                            static_cast<std::size_t>(size))];
  };
  const bool doubling = ng > 1 && (ng & (ng - 1)) == 0;
  if (ng > 1) {
    const int g = l.group;
    if (doubling) {
      for (int s = 1; s < ng; s <<= 1) {
        const int peer_group = g ^ s;
        const int peer = peer_group * l.width;
        const int base = g & ~(s - 1);
        const int pbase = peer_group & ~(s - 1);
        comm.send<T>(peer, tags.inter_a,
                     std::span<const T>(all.data() + goff(base),
                                        goff(base + s) - goff(base)));
        const std::vector<T> incoming = comm.recv<T>(peer, tags.inter_a);
        SWHKM_REQUIRE(incoming.size() == goff(pbase + s) - goff(pbase),
                      "hier allgatherv round length mismatch");
        std::copy(incoming.begin(), incoming.end(),
                  all.begin() + static_cast<std::ptrdiff_t>(goff(pbase)));
      }
    } else {
      for (int q = 0; q < ng; ++q) {
        if (q != g) {
          comm.send<T>(q * l.width, tags.inter_a,
                       std::span<const T>(all.data() + goff(g),
                                          goff(g + 1) - goff(g)));
        }
      }
      for (int q = 0; q < ng; ++q) {
        if (q == g) {
          continue;
        }
        const std::vector<T> incoming =
            comm.recv<T>(q * l.width, tags.inter_a);
        SWHKM_REQUIRE(incoming.size() == goff(q + 1) - goff(q),
                      "hier allgatherv block length mismatch");
        std::copy(incoming.begin(), incoming.end(),
                  all.begin() + static_cast<std::ptrdiff_t>(goff(q)));
      }
    }
  }
  for (int j = 1; j < l.group_size; ++j) {
    publish_ptr(comm, l.leader + j, tags.down, all.data());
  }
  for (int j = 1; j < l.group_size; ++j) {
    (void)comm.recv_value<std::uint8_t>(l.leader + j, tags.ack);
  }
  tick_hier_counters(comm,
                     doubling ? "swmpi.hier.allgatherv.algo_doubling"
                              : "swmpi.hier.allgatherv.algo_direct",
                     "swmpi.hier.allgatherv.intra_rounds",
                     "swmpi.hier.allgatherv.inter_rounds",
                     2 * ceil_log2(l.group_size),
                     ng > 1 ? (doubling ? ceil_log2(ng)
                                        : static_cast<std::uint32_t>(1))
                            : 0);
}

}  // namespace detail

/// Broadcast `buf` from `root` to all ranks (binomial tree).
template <typename T>
void bcast(Comm& comm, int root, std::span<T> buf) {
  static_assert(std::is_trivially_copyable_v<T>);
  detail::CollectiveScope scope(comm, telemetry::CollectiveKind::kBcast,
                                buf.size_bytes());
  const int size = comm.size();
  if (size <= 1) {
    return;
  }
  const int tag = comm.next_collective_tag();
  const int vrank = (comm.rank() - root + size) % size;

  // Receive from the parent (clear-lowest-set-bit), then relay to children
  // vrank + m for descending powers of two m below my lowest set bit.
  int top = 1;
  while (top < size) {
    top <<= 1;
  }
  int lsb = vrank == 0 ? top : (vrank & (-vrank));
  if (vrank != 0) {
    const int parent = detail::binomial_parent(vrank);
    std::vector<T> incoming =
        comm.recv<T>((parent + root) % size, tag);
    SWHKM_REQUIRE(incoming.size() == buf.size(),
                  "bcast payload size mismatch");
    std::copy(incoming.begin(), incoming.end(), buf.begin());
  }
  for (int m = lsb >> 1; m >= 1; m >>= 1) {
    const int child = vrank + m;
    if (child < size) {
      comm.send<T>((child + root) % size, tag,
                   std::span<const T>(buf.data(), buf.size()));
    }
  }
}

/// Reduce element-wise into `buf` at `root` (binomial tree); on non-root
/// ranks `buf` is left holding intermediate partial reductions.
template <typename T, typename Op>
void reduce(Comm& comm, int root, std::span<T> buf, Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  detail::CollectiveScope scope(comm, telemetry::CollectiveKind::kReduce,
                                buf.size_bytes());
  const int size = comm.size();
  if (size <= 1) {
    return;
  }
  const int tag = comm.next_collective_tag();
  const int vrank = (comm.rank() - root + size) % size;
  for (int step = 1; step < size; step <<= 1) {
    if (vrank & step) {
      comm.send<T>((detail::binomial_parent(vrank) + root) % size, tag,
                   std::span<const T>(buf.data(), buf.size()));
      return;
    }
    const int child = vrank + step;
    if (child < size) {
      std::vector<T> incoming = comm.recv<T>((child + root) % size, tag);
      SWHKM_REQUIRE(incoming.size() == buf.size(),
                    "reduce payload size mismatch");
      for (std::size_t i = 0; i < buf.size(); ++i) {
        op(buf[i], incoming[i]);
      }
    }
  }
}

/// AllReduce: reduce to rank 0, then broadcast. Every rank ends up with the
/// identical (bit-for-bit) combined buffer. Under the hierarchical
/// schedule the same bits come from the two-level path instead (intra
/// zero-copy fold, size-adaptive inter stage); the flat path is the A/B
/// baseline.
template <typename T, typename Op>
void allreduce(Comm& comm, std::span<T> buf, Op op) {
  detail::CollectiveScope scope(comm, telemetry::CollectiveKind::kAllreduce,
                                buf.size_bytes());
  if (comm.size() > 1 &&
      default_collective_schedule() == CollectiveSchedule::kHierarchical) {
    detail::hier_allreduce(comm, buf, op, default_hierarchy_spec());
    return;
  }
  reduce(comm, 0, buf, op);
  bcast(comm, 0, buf);
}

/// Convenience: sum-allreduce.
template <typename T>
void allreduce_sum(Comm& comm, std::span<T> buf) {
  allreduce(comm, buf, ops::Plus{});
}

/// AllReduce of MinLoc pairs: after the call every rank holds, per element,
/// the smallest (value, index) contribution across ranks.
inline void allreduce_minloc(Comm& comm, std::span<MinLoc> buf) {
  allreduce(comm, buf, ops::Min{});
}

/// AllReduce of MinLoc2 records: per element, every rank ends up with the
/// global best (value, index) and the exact global second-best distance.
inline void allreduce_minloc2(Comm& comm, std::span<MinLoc2> buf) {
  allreduce(comm, buf, CombineMinLoc2{});
}

/// Split-phase allreduce for software-pipelined loops: start() posts every
/// up-tree send this rank can issue without waiting (a childless rank's
/// contribution goes into flight immediately) and reserves the op's tags;
/// finish() performs the remaining child receives, the walk to the root
/// and the broadcast down, then leaves `buf` holding the combined result.
/// The fold is byte-for-byte the root-0 binomial association of
/// allreduce() = reduce(root 0) + bcast(root 0) — same child order, same
/// operand order — so pipelined and unpipelined calls produce identical
/// bits.
///
/// Discipline: every rank must call start/finish for the same ops in the
/// same interleaved order (start t; start t+1; finish t; ... is fine —
/// tags keep concurrent ops apart). Keep the outstanding depth small: each
/// op holds at most two messages per mailbox lane, so depth stays well
/// under Mailbox::kLaneCapacity for any sane pipeline.
///
/// Instrumentation: calls/bytes and the wall histogram tick in finish(),
/// so allreduce.wall_s measures the blocking drain, not the overlapped
/// compute between the phases.
template <typename T, typename Op>
class SplitAllreduce {
 public:
  SplitAllreduce() = default;
  SplitAllreduce(const SplitAllreduce&) = delete;
  SplitAllreduce& operator=(const SplitAllreduce&) = delete;

  bool active() const { return comm_ != nullptr; }

  void start(Comm& comm, std::span<T> buf, Op op) {
    SWHKM_REQUIRE(!active(), "SplitAllreduce::start while an op is in flight");
    comm_ = &comm;
    buf_ = buf;
    op_ = op;
    hier_ = comm.size() > 1 && default_collective_schedule() ==
                                   CollectiveSchedule::kHierarchical;
    if (hier_) {
      // Hierarchical split-phase: a member's entire up phase is one
      // pointer publish, so its contribution goes into flight immediately
      // — the overlap start() exists for. The leader's receives all
      // block, so its whole schedule defers to finish(). `buf` must stay
      // untouched between the phases: the leader reads it in place.
      spec_ = default_hierarchy_spec();
      layout_ = detail::hier_layout(comm.rank(), comm.size(),
                                    spec_.ranks_per_group);
      tags_ = detail::reserve_hier_tags(comm);
      if (layout_.local != 0) {
        detail::publish_ptr(comm, layout_.leader, tags_.ptr, buf_.data());
      }
      return;
    }
    reduce_tag_ = comm.next_collective_tag();
    bcast_tag_ = comm.next_collective_tag();
    resume_step_ = 0;  // 0 = up phase already complete
    const int size = comm.size();
    if (size <= 1) {
      return;
    }
    const int vrank = comm.rank();  // root is rank 0: vrank == rank
    for (int step = 1; step < size; step <<= 1) {
      if (vrank & step) {
        // Everything below this bit is already folded in (no children
        // remain), so the contribution can leave now — this send is the
        // overlap start() exists for.
        comm.send<T>(detail::binomial_parent(vrank), reduce_tag_,
                     std::span<const T>(buf_.data(), buf_.size()));
        return;
      }
      if (vrank + step < size) {
        resume_step_ = step;  // first blocking child recv: defer to finish
        return;
      }
    }
  }

  void finish() {
    SWHKM_REQUIRE(active(), "SplitAllreduce::finish without a start");
    Comm& comm = *comm_;
    detail::CollectiveScope scope(comm, telemetry::CollectiveKind::kAllreduce,
                                  buf_.size_bytes());
    if (hier_) {
      detail::hier_allreduce_finish(comm, layout_, tags_, spec_, buf_, op_);
      comm_ = nullptr;
      return;
    }
    const int size = comm.size();
    const int vrank = comm.rank();
    if (size > 1) {
      // Resume reduce()'s loop exactly where start() left off: identical
      // step sequence, child order and operand order keep the association.
      if (resume_step_ > 0) {
        for (int step = resume_step_; step < size; step <<= 1) {
          if (vrank & step) {
            comm.send<T>(detail::binomial_parent(vrank), reduce_tag_,
                         std::span<const T>(buf_.data(), buf_.size()));
            break;
          }
          const int child = vrank + step;
          if (child < size) {
            std::vector<T> incoming = comm.recv<T>(child, reduce_tag_);
            SWHKM_REQUIRE(incoming.size() == buf_.size(),
                          "split allreduce payload size mismatch");
            for (std::size_t i = 0; i < buf_.size(); ++i) {
              op_(buf_[i], incoming[i]);
            }
          }
        }
      }
      // Broadcast down from rank 0 — bcast()'s body with the reserved tag.
      int top = 1;
      while (top < size) {
        top <<= 1;
      }
      const int lsb = vrank == 0 ? top : (vrank & (-vrank));
      if (vrank != 0) {
        std::vector<T> incoming =
            comm.recv<T>(detail::binomial_parent(vrank), bcast_tag_);
        SWHKM_REQUIRE(incoming.size() == buf_.size(),
                      "split allreduce bcast size mismatch");
        std::copy(incoming.begin(), incoming.end(), buf_.begin());
      }
      for (int m = lsb >> 1; m >= 1; m >>= 1) {
        if (vrank + m < size) {
          comm.send<T>(vrank + m, bcast_tag_,
                       std::span<const T>(buf_.data(), buf_.size()));
        }
      }
    }
    comm_ = nullptr;
  }

 private:
  Comm* comm_ = nullptr;
  std::span<T> buf_;
  Op op_{};
  int reduce_tag_ = 0;
  int bcast_tag_ = 0;
  int resume_step_ = 0;
  bool hier_ = false;  ///< schedule captured at start(); finish() replays it
  HierarchySpec spec_{};
  detail::HierLayout layout_{};
  detail::HierTags tags_{};
};

/// s-step deferred reduction: accumulate several tiles' combine records in
/// one store and ride them on a single SplitAllreduce, cutting collective
/// *rounds* by the fold factor while moving the same bytes. The combine
/// stays element-wise over the concatenated records — each element is still
/// folded in the root-0 binomial association — so deferring is bit-identical
/// to per-tile combines for any fold factor.
///
/// Protocol per span: reset(); then for each sub-tile claim(count) and fill
/// the returned span; launch(comm, op) once; overlap compute; finish();
/// read records(). claim() is only legal between reset() and launch() —
/// the store may reallocate while claiming, so spans from earlier claims
/// are invalidated by later ones (fill each claim before the next); once
/// launch() posts the buffer to the collective no further growth is
/// allowed. A span with zero claimed records skips the collective:
/// launch() is a no-op and launched() stays false, so callers can charge
/// rounds only for combines that actually hit the network.
template <typename T, typename Op>
class DeferredCombine {
 public:
  DeferredCombine() = default;
  DeferredCombine(const DeferredCombine&) = delete;
  DeferredCombine& operator=(const DeferredCombine&) = delete;

  /// Grow the backing store up front (records survive reset()) so claims
  /// inside the hot loop never pay a reallocation.
  void reserve(std::size_t records) { store_.reserve(records); }

  void reset() {
    SWHKM_REQUIRE(!active(), "DeferredCombine::reset while an op is in flight");
    store_.clear();
    launched_ = false;
  }

  /// Append `count` uninitialised record slots and return them for the
  /// caller to fill (the engines clear_scores + score into the claim).
  std::span<T> claim(std::size_t count) {
    SWHKM_REQUIRE(!active() && !launched_,
                  "DeferredCombine::claim after launch");
    const std::size_t begin = store_.size();
    store_.resize(begin + count);
    return std::span<T>(store_.data() + begin, count);
  }

  std::size_t size() const { return store_.size(); }
  bool active() const { return combine_.active(); }
  bool launched() const { return launched_; }

  /// Post the span's single collective. No-op when nothing was claimed;
  /// returns whether a collective actually launched.
  bool launch(Comm& comm, Op op) {
    SWHKM_REQUIRE(!active(), "DeferredCombine::launch while an op is in flight");
    launched_ = true;
    if (store_.empty()) {
      return false;
    }
    combine_.start(comm, std::span<T>(store_.data(), store_.size()), op);
    return true;
  }

  void finish() {
    if (combine_.active()) {
      combine_.finish();
    }
  }

  /// The combined records after finish(), in claim order.
  std::span<const T> records() const {
    return std::span<const T>(store_.data(), store_.size());
  }

 private:
  std::vector<T> store_;
  SplitAllreduce<T, Op> combine_;
  bool launched_ = false;
};

/// Gather one value per rank; every rank receives the vector indexed by
/// rank. Linear gather through rank 0 plus broadcast — collectives at this
/// granularity run once per engine setup, not per sample.
template <typename T>
std::vector<T> allgather(Comm& comm, const T& mine) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int size = comm.size();
  detail::CollectiveScope scope(
      comm, telemetry::CollectiveKind::kAllgather,
      static_cast<std::size_t>(size) * sizeof(T));
  std::vector<T> all(static_cast<std::size_t>(size));
  all[static_cast<std::size_t>(comm.rank())] = mine;
  if (size == 1) {
    return all;
  }
  const int tag = comm.next_collective_tag();
  if (comm.rank() == 0) {
    for (int r = 1; r < size; ++r) {
      all[static_cast<std::size_t>(r)] = comm.recv_value<T>(r, tag);
    }
  } else {
    comm.send_value<T>(0, tag, mine);
  }
  bcast(comm, 0, std::span<T>(all.data(), all.size()));
  return all;
}

/// Gather one value per rank at `root`; root receives the vector indexed
/// by rank, other ranks receive an empty vector.
template <typename T>
std::vector<T> gather(Comm& comm, int root, const T& mine) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int size = comm.size();
  detail::CollectiveScope scope(
      comm, telemetry::CollectiveKind::kGather,
      static_cast<std::size_t>(size) * sizeof(T));
  const int tag = comm.next_collective_tag();
  if (comm.rank() != root) {
    comm.send_value<T>(root, tag, mine);
    return {};
  }
  std::vector<T> all(static_cast<std::size_t>(size));
  all[static_cast<std::size_t>(root)] = mine;
  for (int r = 0; r < size; ++r) {
    if (r != root) {
      all[static_cast<std::size_t>(r)] = comm.recv_value<T>(r, tag);
    }
  }
  return all;
}

/// Scatter one value per rank from `root`; rank r receives values[r].
/// Non-root callers pass an empty span.
template <typename T>
T scatter(Comm& comm, int root, std::span<const T> values) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int size = comm.size();
  detail::CollectiveScope scope(
      comm, telemetry::CollectiveKind::kScatter,
      static_cast<std::size_t>(size) * sizeof(T));
  const int tag = comm.next_collective_tag();
  if (comm.rank() == root) {
    SWHKM_REQUIRE(values.size() == static_cast<std::size_t>(size),
                  "scatter needs one value per rank at the root");
    for (int r = 0; r < size; ++r) {
      if (r != root) {
        comm.send_value<T>(r, tag, values[static_cast<std::size_t>(r)]);
      }
    }
    return values[static_cast<std::size_t>(root)];
  }
  return comm.recv_value<T>(root, tag);
}

/// Personalised all-to-all: rank r sends sendbuf[q] to rank q and receives
/// what every rank addressed to it, indexed by source rank.
template <typename T>
std::vector<T> alltoall(Comm& comm, std::span<const T> sendbuf) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int size = comm.size();
  detail::CollectiveScope scope(comm, telemetry::CollectiveKind::kAlltoall,
                                sendbuf.size_bytes());
  SWHKM_REQUIRE(sendbuf.size() == static_cast<std::size_t>(size),
                "alltoall needs one value per destination");
  const int tag = comm.next_collective_tag();
  std::vector<T> recvbuf(static_cast<std::size_t>(size));
  recvbuf[static_cast<std::size_t>(comm.rank())] =
      sendbuf[static_cast<std::size_t>(comm.rank())];
  for (int q = 0; q < size; ++q) {
    if (q != comm.rank()) {
      comm.send_value<T>(q, tag, sendbuf[static_cast<std::size_t>(q)]);
    }
  }
  for (int q = 0; q < size; ++q) {
    if (q != comm.rank()) {
      recvbuf[static_cast<std::size_t>(q)] = comm.recv_value<T>(q, tag);
    }
  }
  return recvbuf;
}

/// Combined send+receive with a single peer (or two different peers) —
/// the deadlock-free building block for ring exchanges. Send never
/// blocks in this runtime, so the operation is trivially safe, but the
/// call keeps user code shaped like its MPI counterpart.
template <typename T>
std::vector<T> sendrecv(Comm& comm, int dest, std::span<const T> payload,
                        int source) {
  detail::CollectiveScope scope(comm, telemetry::CollectiveKind::kSendrecv,
                                payload.size_bytes());
  const int tag = comm.next_collective_tag();
  comm.send<T>(dest, tag, payload);
  return comm.recv<T>(source, tag);
}

/// Reduce-scatter: element-wise reduce `buf` (one block of `block` values
/// per rank, so buf.size() == block * size) and hand rank r its reduced
/// block r. The bandwidth-optimal first half of large AllReduces.
template <typename T, typename Op>
std::vector<T> reduce_scatter(Comm& comm, std::span<const T> buf,
                              std::size_t block, Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  detail::CollectiveScope scope(
      comm, telemetry::CollectiveKind::kReduceScatter, buf.size_bytes());
  const int size = comm.size();
  SWHKM_REQUIRE(buf.size() == block * static_cast<std::size_t>(size),
                "reduce_scatter needs one block per rank");
  const int tag = comm.next_collective_tag();
  // Ring algorithm: size-1 steps, each passing one partially-reduced
  // block to the right neighbour; deterministic combine order by rank.
  const int right = (comm.rank() + 1) % size;
  const int left = (comm.rank() - 1 + size) % size;
  // Step s: this rank sends block (rank - s) and receives + reduces block
  // (rank - s - 1), so after size-1 steps it holds block (rank + 1) % ...
  // Simplify with explicit working copy.
  // Offset -1 so that after size-1 steps rank r holds exactly block r,
  // matching MPI_Reduce_scatter_block semantics.
  std::vector<T> work(buf.begin(), buf.end());
  for (int step = 0; step < size - 1; ++step) {
    const int send_block = ((comm.rank() - step - 1) % size + size) % size;
    const int recv_block = ((comm.rank() - step - 2) % size + size) % size;
    comm.send<T>(right, tag,
                 std::span<const T>(work.data() + send_block * block, block));
    const std::vector<T> incoming = comm.recv<T>(left, tag);
    SWHKM_REQUIRE(incoming.size() == block, "reduce_scatter block mismatch");
    T* mine = work.data() + recv_block * block;
    for (std::size_t i = 0; i < block; ++i) {
      op(mine[i], incoming[i]);
    }
  }
  return std::vector<T>(
      work.begin() + static_cast<std::ptrdiff_t>(comm.rank() * block),
      work.begin() + static_cast<std::ptrdiff_t>((comm.rank() + 1) * block));
}

/// Reduce-scatter with ragged ranges and *binomial* summation order.
/// Element-wise, the combine association is exactly the root-0 binomial
/// tree of reduce(), so the reduced values are bit-identical to a
/// reduce-to-root followed by a scatter — unlike the ring reduce_scatter
/// above, whose rank-sequential combine order changes FP bits. Rank r
/// receives the sub-range [offsets[r], offsets[r+1]) of the reduction.
/// `offsets` must be identical on every rank, ascending, with
/// offsets.size() == size + 1 and covering buf exactly; empty ranges are
/// allowed (k < ranks).
///
/// Power-of-two sizes run a recursive-halving exchange — processing the
/// lowest rank bit first pairs (0,1),(2,3),… then (0,2),(1,3),…, which is
/// the binomial tree's own pairing, so each rank moves O(buf/2) bytes and
/// the combine work spreads over all ranks without changing a single
/// association. Other sizes fall back to binomial reduce + scatter, which
/// has the same association by construction.
///
/// This overload consumes `buf` as scratch (contents are destroyed) —
/// callers holding a freshly packed payload avoid a full-buffer copy.
template <typename T, typename Op>
std::vector<T> reduce_scatter_ranges(Comm& comm, std::span<T> buf,
                                     std::span<const std::size_t> offsets,
                                     Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  detail::CollectiveScope scope(
      comm, telemetry::CollectiveKind::kReduceScatterRanges,
      buf.size_bytes());
  const int size = comm.size();
  const int rank = comm.rank();
  SWHKM_REQUIRE(offsets.size() == static_cast<std::size_t>(size) + 1,
                "reduce_scatter_ranges needs size+1 offsets");
  SWHKM_REQUIRE(offsets.front() == 0 && offsets.back() == buf.size(),
                "reduce_scatter_ranges offsets must cover the buffer");
  if (size == 1) {
    return std::vector<T>(buf.begin(), buf.end());
  }
  if (default_collective_schedule() == CollectiveSchedule::kHierarchical) {
    return detail::hier_reduce_scatter_ranges(comm, buf, offsets, op,
                                              default_hierarchy_spec());
  }
  const bool pow2 = (size & (size - 1)) == 0;
  if (!pow2) {
    // Binomial reduce to rank 0, then scatter the ranges. The combine
    // association is the definition of what the halving path reproduces.
    reduce(comm, 0, buf, op);
    const int tag = comm.next_collective_tag();
    if (rank == 0) {
      for (int r = 1; r < size; ++r) {
        comm.send<T>(r, tag,
                     std::span<const T>(buf.data() + offsets[r],
                                        offsets[r + 1] - offsets[r]));
      }
      return std::vector<T>(buf.begin() + static_cast<std::ptrdiff_t>(
                                              offsets[0]),
                            buf.begin() + static_cast<std::ptrdiff_t>(
                                              offsets[1]));
    }
    std::vector<T> mine = comm.recv<T>(0, tag);
    SWHKM_REQUIRE(mine.size() == offsets[rank + 1] - offsets[rank],
                  "reduce_scatter_ranges scatter size mismatch");
    return mine;
  }
  // Recursive halving, lowest bit first. Before the step for bit `s`, rank
  // r holds, for every range b with (b & (s-1)) == (r & (s-1)), the fold
  // of the 2^(steps done) ranks that share r's processed low bits — the
  // binomial subtree partial. The step exchanges the halves whose bit s
  // disagrees and combines with the lower subtree as the inout operand,
  // exactly reduce()'s operand order.
  const int tag = comm.next_collective_tag();
  std::vector<T> pack;
  for (int s = 1; s < size; s <<= 1) {
    const int peer = rank ^ s;
    pack.clear();
    for (int b = 0; b < size; ++b) {
      if ((b & (s - 1)) == (rank & (s - 1)) && (b & s) != (rank & s)) {
        pack.insert(pack.end(), buf.begin() + static_cast<std::ptrdiff_t>(
                                                  offsets[b]),
                    buf.begin() + static_cast<std::ptrdiff_t>(
                                      offsets[b + 1]));
      }
    }
    comm.send<T>(peer, tag, std::span<const T>(pack.data(), pack.size()));
    const std::vector<T> incoming = comm.recv<T>(peer, tag);
    std::size_t at = 0;
    for (int b = 0; b < size; ++b) {
      if ((b & (s - 1)) != (rank & (s - 1)) || (b & s) != (rank & s)) {
        continue;  // not a range this rank keeps after the step
      }
      T* mine = buf.data() + offsets[b];
      const std::size_t len = offsets[b + 1] - offsets[b];
      SWHKM_REQUIRE(at + len <= incoming.size(),
                    "reduce_scatter_ranges block mismatch");
      if ((rank & s) == 0) {
        for (std::size_t i = 0; i < len; ++i) {
          op(mine[i], incoming[at + i]);
        }
      } else {
        // The peer's subtree is the lower one: it must be the inout
        // operand so a non-commutative op still matches reduce().
        for (std::size_t i = 0; i < len; ++i) {
          T merged = incoming[at + i];
          op(merged, mine[i]);
          mine[i] = merged;
        }
      }
      at += len;
    }
    SWHKM_REQUIRE(at == incoming.size(),
                  "reduce_scatter_ranges payload mismatch");
  }
  return std::vector<T>(
      buf.begin() + static_cast<std::ptrdiff_t>(offsets[rank]),
      buf.begin() + static_cast<std::ptrdiff_t>(offsets[rank + 1]));
}

/// Non-destructive overload: copies `buf` into scratch and delegates.
template <typename T, typename Op>
std::vector<T> reduce_scatter_ranges(Comm& comm, std::span<const T> buf,
                                     std::span<const std::size_t> offsets,
                                     Op op) {
  std::vector<T> work(buf.begin(), buf.end());
  return reduce_scatter_ranges(comm, std::span<T>(work.data(), work.size()),
                               offsets, op);
}

/// Variable-length allgather with caller-known lengths: every rank
/// contributes `mine` (== counts[rank] elements; zero allowed) and
/// receives the rank-order concatenation of all contributions. `counts`
/// must be identical on every rank.
///
/// Power-of-two sizes run the recursive-doubling hypercube exchange —
/// log2(size) rounds, each sending the contiguous aligned group of blocks
/// the rank has assembled so far — so the latency-critical round count is
/// logarithmic. Other sizes fall back to a direct exchange (send never
/// blocks in this runtime, so the all-to-all post is deadlock-free).
template <typename T>
std::vector<T> allgatherv(Comm& comm, std::span<const T> mine,
                          std::span<const std::size_t> counts) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int size = comm.size();
  const int rank = comm.rank();
  SWHKM_REQUIRE(counts.size() == static_cast<std::size_t>(size),
                "allgatherv needs one count per rank");
  SWHKM_REQUIRE(counts[rank] == mine.size(),
                "allgatherv counts[rank] must match the contribution");
  std::vector<std::size_t> offsets(static_cast<std::size_t>(size) + 1, 0);
  for (int r = 0; r < size; ++r) {
    offsets[r + 1] = offsets[r] + counts[r];
  }
  detail::CollectiveScope scope(comm,
                                telemetry::CollectiveKind::kAllgatherv,
                                offsets.back() * sizeof(T));
  std::vector<T> all(offsets.back());
  std::copy(mine.begin(), mine.end(),
            all.begin() + static_cast<std::ptrdiff_t>(offsets[rank]));
  if (size == 1) {
    return all;
  }
  if (default_collective_schedule() == CollectiveSchedule::kHierarchical) {
    detail::hier_allgatherv_fill(
        comm, mine,
        std::span<const std::size_t>(offsets.data(), offsets.size()), all,
        default_hierarchy_spec());
    return all;
  }
  const int tag = comm.next_collective_tag();
  if ((size & (size - 1)) == 0) {
    // Recursive doubling: before the round for bit `s`, this rank holds
    // the aligned block group [rank & ~(s-1), +s) — contiguous in `all`,
    // so rounds send straight out of the output buffer without packing.
    for (int s = 1; s < size; s <<= 1) {
      const int peer = rank ^ s;
      const int base = rank & ~(s - 1);
      const int pbase = peer & ~(s - 1);
      comm.send<T>(peer, tag,
                   std::span<const T>(all.data() + offsets[base],
                                      offsets[base + s] - offsets[base]));
      const std::vector<T> incoming = comm.recv<T>(peer, tag);
      SWHKM_REQUIRE(incoming.size() == offsets[pbase + s] - offsets[pbase],
                    "allgatherv round length mismatch");
      std::copy(incoming.begin(), incoming.end(),
                all.begin() + static_cast<std::ptrdiff_t>(offsets[pbase]));
    }
    return all;
  }
  for (int q = 0; q < size; ++q) {
    if (q != rank) {
      comm.send<T>(q, tag, mine);
    }
  }
  for (int q = 0; q < size; ++q) {
    if (q == rank) {
      continue;
    }
    const std::vector<T> incoming = comm.recv<T>(q, tag);
    SWHKM_REQUIRE(incoming.size() == counts[q], "allgatherv length mismatch");
    std::copy(incoming.begin(), incoming.end(),
              all.begin() + static_cast<std::ptrdiff_t>(offsets[q]));
  }
  return all;
}

/// Length-discovering overload: one internal allgather of lengths, then
/// the known-counts exchange above.
template <typename T>
std::vector<T> allgatherv(Comm& comm, std::span<const T> mine) {
  const std::vector<std::uint64_t> lengths =
      allgather(comm, static_cast<std::uint64_t>(mine.size()));
  std::vector<std::size_t> counts(lengths.size());
  for (std::size_t r = 0; r < lengths.size(); ++r) {
    counts[r] = static_cast<std::size_t>(lengths[r]);
  }
  return allgatherv(comm, mine,
                    std::span<const std::size_t>(counts.data(),
                                                 counts.size()));
}

/// Inclusive prefix reduction: rank r receives op-fold of ranks 0..r's
/// contributions, combined in rank order (deterministic).
template <typename T, typename Op>
T scan(Comm& comm, const T& mine, Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  detail::CollectiveScope scope(comm, telemetry::CollectiveKind::kScan,
                                sizeof(T));
  const int tag = comm.next_collective_tag();
  T accumulated = mine;
  if (comm.rank() > 0) {
    const T from_left = comm.recv_value<T>(comm.rank() - 1, tag);
    accumulated = from_left;
    op(accumulated, mine);
  }
  if (comm.rank() + 1 < comm.size()) {
    comm.send_value<T>(comm.rank() + 1, tag, accumulated);
  }
  return accumulated;
}

}  // namespace swhkm::swmpi
