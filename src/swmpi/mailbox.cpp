#include "swmpi/mailbox.hpp"

#include <algorithm>
#include <thread>

#include "util/error.hpp"

namespace swhkm::swmpi {

namespace {

bool matches(const Message& message, int source, int tag) {
  return (source == kAnySource || message.source == source) &&
         message.tag == tag;
}

/// Receiver iterations of drain-and-scan before parking, and sender
/// iterations of retry before sleeping on a full ring. Short on purpose:
/// ranks are threads and often outnumber cores, so burning a core to save
/// one condvar wakeup stops paying off quickly. On a single-core host the
/// budget drops to zero — a spinning receiver only steals the quantum the
/// producer needs to make the awaited message appear.
int receiver_spin_budget() {
  static const int budget =
      std::thread::hardware_concurrency() > 1 ? 256 : 0;
  return budget;
}

int sender_spin_budget() {
  static const int budget =
      std::thread::hardware_concurrency() > 1 ? 1024 : 1;
  return budget;
}

std::atomic<MailboxMode> g_default_mode{MailboxMode::kSpscRings};

}  // namespace

MailboxMode default_mailbox_mode() {
  return g_default_mode.load(std::memory_order_relaxed);
}

void set_default_mailbox_mode(MailboxMode mode) {
  g_default_mode.store(mode, std::memory_order_relaxed);
}

Mailbox::Mailbox(int num_senders, MailboxMode mode) : mode_(mode) {
  SWHKM_REQUIRE(num_senders >= 1, "mailbox needs at least one sender lane");
  if (mode_ == MailboxMode::kSpscRings) {
    lanes_.reserve(static_cast<std::size_t>(num_senders));
    for (int s = 0; s < num_senders; ++s) {
      lanes_.emplace_back(kLaneCapacity);
    }
  }
}

void Mailbox::throw_aborted() const {
  throw RuntimeFault("swmpi: communicator aborted while waiting for a "
                     "message (a peer rank failed)");
}

// ---------------------------------------------------------------- senders

bool Mailbox::push(Message message) {
  if (mode_ == MailboxMode::kMutexQueue) {
    {
      std::lock_guard lock(legacy_mutex_);
      legacy_queue_.push_back(std::move(message));
    }
    legacy_arrived_.notify_all();
    return false;
  }

  SWHKM_REQUIRE(message.source >= 0 &&
                    message.source < static_cast<int>(lanes_.size()),
                "message source has no mailbox lane");
  SpscRing<Message>& lane = lanes_[static_cast<std::size_t>(message.source)];
  bool waited = false;
  if (!lane.try_push(message)) {
    // Bounded backpressure: the receiver frees the whole lane on its next
    // drain, so wait for it. An aborted receiver never drains again —
    // fail the send instead of spinning forever.
    waited = true;
    int spins = 0;
    for (;;) {
      if (aborted_.load(std::memory_order_acquire)) {
        throw RuntimeFault(
            "swmpi: send to an aborted rank found its ring full (the "
            "receiver died and will never drain)");
      }
      if (lane.try_push(message)) {
        break;
      }
      if (++spins < sender_spin_budget()) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  }
  // Doorbell handshake (both sides seq_cst, so the pair of (ring publish,
  // doorbell bump) here and (parked_ store, doorbell re-read) in the
  // receiver's park path take a single total order): either this load sees
  // parked_ == true and we notify under the mutex, or the receiver's
  // pre-sleep doorbell re-read is later in that order and sees the bump —
  // no interleaving loses the wakeup.
  doorbell_.fetch_add(1, std::memory_order_seq_cst);
  if (parked_.load(std::memory_order_seq_cst)) {
    std::lock_guard lock(park_mutex_);
    park_cv_.notify_all();
  }
  return waited;
}

// --------------------------------------------------------------- receiver

bool Mailbox::take_from_stash(int source, int tag, Message& out) {
  auto it = std::find_if(stash_.begin(), stash_.end(), [&](const Message& m) {
    return matches(m, source, tag);
  });
  if (it == stash_.end()) {
    return false;
  }
  out = std::move(*it);
  stash_.erase(it);
  return true;
}

bool Mailbox::drain_and_take(int source, int tag, Message& out) {
  if (take_from_stash(source, tag, out)) {
    return true;
  }
  bool drained = false;
  for (SpscRing<Message>& lane : lanes_) {
    Message m;
    while (lane.try_pop(m)) {
      stash_.push_back(std::move(m));
      drained = true;
    }
  }
  return drained && take_from_stash(source, tag, out);
}

bool Mailbox::pop_ring(int source, int tag,
                       const std::chrono::steady_clock::time_point* deadline,
                       Message& out, bool* parked) {
  int spins = 0;
  for (;;) {
    // The doorbell ticket must be read before the drain: a push that lands
    // mid-drain either makes this drain (or the pre-sleep re-drain) find
    // it, or bumps the doorbell past `ticket` and defeats the sleep.
    const std::uint64_t ticket = doorbell_.load(std::memory_order_seq_cst);
    if (drain_and_take(source, tag, out)) {
      return true;
    }
    if (aborted_.load(std::memory_order_acquire)) {
      // The drain above already swept every delivered message into the
      // stash, so a miss here is final: abort-then-deliver still works for
      // queued messages, and only a true no-match throws.
      throw_aborted();
    }
    if (deadline != nullptr &&
        std::chrono::steady_clock::now() >= *deadline) {
      // Final re-check after expiry — the race the old mutex mailbox lost:
      // a message pushed between the last scan and the timeout return must
      // be taken, not dropped into a spurious WatchdogTimeout.
      return drain_and_take(source, tag, out);
    }
    if (spins < receiver_spin_budget()) {
      ++spins;
      std::this_thread::yield();
      continue;
    }
    // Slow path: park until a push (or abort) rings the doorbell. The
    // predicate re-reads the doorbell under seq_cst — see push() for the
    // no-lost-wakeup argument.
    if (parked != nullptr) {
      *parked = true;
    }
    parked_.store(true, std::memory_order_seq_cst);
    {
      std::unique_lock lock(park_mutex_);
      const auto woken = [&] {
        return doorbell_.load(std::memory_order_seq_cst) != ticket ||
               aborted_.load(std::memory_order_acquire);
      };
      if (deadline != nullptr) {
        park_cv_.wait_until(lock, *deadline, woken);
      } else {
        park_cv_.wait(lock, woken);
      }
    }
    parked_.store(false, std::memory_order_seq_cst);
  }
}

// ------------------------------------------------------ legacy transport

bool Mailbox::pop_legacy(int source, int tag,
                         const std::chrono::steady_clock::time_point* deadline,
                         Message& out, bool* parked) {
  std::unique_lock lock(legacy_mutex_);
  const auto take = [&] {
    auto it = std::find_if(legacy_queue_.begin(), legacy_queue_.end(),
                           [&](const Message& m) {
                             return matches(m, source, tag);
                           });
    if (it == legacy_queue_.end()) {
      return false;
    }
    out = std::move(*it);
    legacy_queue_.erase(it);
    return true;
  };
  for (;;) {
    if (take()) {
      return true;
    }
    if (legacy_aborted_) {
      throw_aborted();
    }
    if (parked != nullptr) {
      *parked = true;
    }
    if (deadline != nullptr) {
      if (legacy_arrived_.wait_until(lock, *deadline) ==
          std::cv_status::timeout) {
        // One final scan holding the lock: a push that slipped in between
        // the last predicate check and the timed-out wakeup is still
        // delivered instead of becoming a spurious WatchdogTimeout.
        return take();
      }
    } else {
      legacy_arrived_.wait(lock);
    }
  }
}

// ------------------------------------------------------------ public API

Message Mailbox::pop_matching(int source, int tag, bool* parked) {
  Message out;
  if (mode_ == MailboxMode::kMutexQueue) {
    (void)pop_legacy(source, tag, nullptr, out, parked);
  } else {
    (void)pop_ring(source, tag, nullptr, out, parked);
  }
  return out;
}

bool Mailbox::pop_matching_for(int source, int tag,
                               std::chrono::milliseconds timeout,
                               Message& out, bool* parked) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  if (mode_ == MailboxMode::kMutexQueue) {
    return pop_legacy(source, tag, &deadline, out, parked);
  }
  return pop_ring(source, tag, &deadline, out, parked);
}

bool Mailbox::try_pop_matching(int source, int tag, Message& out) {
  if (mode_ == MailboxMode::kMutexQueue) {
    std::lock_guard lock(legacy_mutex_);
    auto it = std::find_if(legacy_queue_.begin(), legacy_queue_.end(),
                           [&](const Message& m) {
                             return matches(m, source, tag);
                           });
    if (it == legacy_queue_.end()) {
      return false;
    }
    out = std::move(*it);
    legacy_queue_.erase(it);
    return true;
  }
  return drain_and_take(source, tag, out);
}

void Mailbox::abort() {
  if (mode_ == MailboxMode::kMutexQueue) {
    // Audited ordering: flag set and waiters notified while the mutex is
    // held — a waiter is either at its predicate (sees the flag) or parked
    // in wait() (reached by the notify). Nothing to reorder.
    std::lock_guard lock(legacy_mutex_);
    legacy_aborted_ = true;
    legacy_arrived_.notify_all();
    return;
  }
  // Same doorbell handshake as push(): the flag plus a doorbell bump makes
  // a parked receiver's wake predicate true, and the seq_cst pairing with
  // parked_ guarantees either we see it parked (and notify under the
  // mutex) or its pre-sleep re-read sees the bump. Senders spinning on a
  // full ring poll aborted_ directly.
  aborted_.store(true, std::memory_order_seq_cst);
  doorbell_.fetch_add(1, std::memory_order_seq_cst);
  if (parked_.load(std::memory_order_seq_cst)) {
    std::lock_guard lock(park_mutex_);
    park_cv_.notify_all();
  }
}

std::size_t Mailbox::pending() const {
  if (mode_ == MailboxMode::kMutexQueue) {
    std::lock_guard lock(legacy_mutex_);
    return legacy_queue_.size();
  }
  std::size_t n = stash_.size();
  for (const SpscRing<Message>& lane : lanes_) {
    n += lane.size_approx();
  }
  return n;
}

}  // namespace swhkm::swmpi
