#include "swmpi/mailbox.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace swhkm::swmpi {

namespace {
bool matches(const Message& message, int source, int tag) {
  return (source == kAnySource || message.source == source) &&
         message.tag == tag;
}
}  // namespace

void Mailbox::push(Message message) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(message));
  }
  arrived_.notify_all();
}

Message Mailbox::pop_matching(int source, int tag) {
  std::unique_lock lock(mutex_);
  for (;;) {
    auto it = std::find_if(queue_.begin(), queue_.end(),
                           [&](const Message& m) {
                             return matches(m, source, tag);
                           });
    if (it != queue_.end()) {
      Message out = std::move(*it);
      queue_.erase(it);
      return out;
    }
    if (aborted_) {
      throw RuntimeFault("swmpi: communicator aborted while waiting for a "
                         "message (a peer rank failed)");
    }
    arrived_.wait(lock);
  }
}

bool Mailbox::pop_matching_for(int source, int tag,
                               std::chrono::milliseconds timeout,
                               Message& out) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock lock(mutex_);
  for (;;) {
    auto it = std::find_if(queue_.begin(), queue_.end(),
                           [&](const Message& m) {
                             return matches(m, source, tag);
                           });
    if (it != queue_.end()) {
      out = std::move(*it);
      queue_.erase(it);
      return true;
    }
    if (aborted_) {
      throw RuntimeFault("swmpi: communicator aborted while waiting for a "
                         "message (a peer rank failed)");
    }
    if (arrived_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return false;
    }
  }
}

bool Mailbox::try_pop_matching(int source, int tag, Message& out) {
  std::lock_guard lock(mutex_);
  auto it = std::find_if(queue_.begin(), queue_.end(), [&](const Message& m) {
    return matches(m, source, tag);
  });
  if (it == queue_.end()) {
    return false;
  }
  out = std::move(*it);
  queue_.erase(it);
  return true;
}

void Mailbox::abort() {
  // Audited ordering: the flag is set and the waiters are notified while
  // the mutex is held. A rank in pop_matching either (a) holds the mutex
  // checking its predicate — it will observe aborted_ before it can wait —
  // or (b) is parked inside wait() having atomically released the mutex,
  // so this notify_all reaches it. Notifying after unlocking is also
  // correct for this pair, but keeping the notify inside the critical
  // section makes the no-lost-wakeup argument local to this function and
  // leaves nothing for a future refactor to reorder. (The companion race —
  // sub-communicators created *while* an abort is propagating — is closed
  // in World::abort_all / Comm::split, not here.)
  std::lock_guard lock(mutex_);
  aborted_ = true;
  arrived_.notify_all();
}

std::size_t Mailbox::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace swhkm::swmpi
