#include "swmpi/mailbox.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace swhkm::swmpi {

namespace {
bool matches(const Message& message, int source, int tag) {
  return (source == kAnySource || message.source == source) &&
         message.tag == tag;
}
}  // namespace

void Mailbox::push(Message message) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(message));
  }
  arrived_.notify_all();
}

Message Mailbox::pop_matching(int source, int tag) {
  std::unique_lock lock(mutex_);
  for (;;) {
    auto it = std::find_if(queue_.begin(), queue_.end(),
                           [&](const Message& m) {
                             return matches(m, source, tag);
                           });
    if (it != queue_.end()) {
      Message out = std::move(*it);
      queue_.erase(it);
      return out;
    }
    if (aborted_) {
      throw RuntimeFault("swmpi: communicator aborted while waiting for a "
                         "message (a peer rank failed)");
    }
    arrived_.wait(lock);
  }
}

bool Mailbox::try_pop_matching(int source, int tag, Message& out) {
  std::lock_guard lock(mutex_);
  auto it = std::find_if(queue_.begin(), queue_.end(), [&](const Message& m) {
    return matches(m, source, tag);
  });
  if (it == queue_.end()) {
    return false;
  }
  out = std::move(*it);
  queue_.erase(it);
  return true;
}

void Mailbox::abort() {
  {
    std::lock_guard lock(mutex_);
    aborted_ = true;
  }
  arrived_.notify_all();
}

std::size_t Mailbox::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace swhkm::swmpi
