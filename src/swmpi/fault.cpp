#include "swmpi/fault.hpp"

#include <algorithm>
#include <cstring>

#include "telemetry/registry.hpp"

namespace swhkm::swmpi {

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kAssign:
      return "assign";
    case FaultSite::kUpdate:
      return "update";
    case FaultSite::kCollective:
      return "collective";
  }
  return "?";
}

const char* memory_site_name(MemorySite site) {
  switch (site) {
    case MemorySite::kSnapshot:
      return "snapshot";
    case MemorySite::kTileScratch:
      return "tile_scratch";
    case MemorySite::kUpdateAccum:
      return "update_accum";
  }
  return "?";
}

namespace {

/// XOR an 8-byte window at `offset` into the concatenation a ++ b, clamping
/// to the available bytes (a window that straddles the a/b seam or the end
/// writes only the bytes that exist). The one shared damage primitive, so
/// corrupt_send and flip_memory always stay in-bounds.
void xor_window(std::span<std::byte> a, std::span<std::byte> b,
                std::size_t offset, std::uint64_t mask) {
  const auto bytes = std::as_bytes(std::span<const std::uint64_t>(&mask, 1));
  for (std::size_t i = 0; i < sizeof(mask); ++i) {
    const std::size_t pos = offset + i;
    if (pos < a.size()) {
      a[pos] ^= bytes[i];
    } else if (pos - a.size() < b.size()) {
      b[pos - a.size()] ^= bytes[i];
    }
  }
}

}  // namespace

FaultPlan& FaultPlan::crash(int rank, std::uint64_t iteration, FaultSite site,
                            int fires) {
  SWHKM_REQUIRE(rank >= 0, "crash rank must be non-negative");
  SWHKM_REQUIRE(fires == -1 || fires > 0, "fires must be positive or -1");
  std::lock_guard lock(mutex_);
  crashes_.push_back({rank, iteration, site, fires});
  return *this;
}

FaultPlan& FaultPlan::corrupt_send(int rank, std::uint64_t nth_send,
                                   std::uint64_t xor_mask) {
  return corrupt_send(rank, nth_send, xor_mask, /*offset=*/0,
                      /*persistent=*/false);
}

FaultPlan& FaultPlan::corrupt_send(int rank, std::uint64_t nth_send,
                                   std::uint64_t xor_mask, std::size_t offset,
                                   bool persistent) {
  SWHKM_REQUIRE(rank >= 0, "corrupt rank must be non-negative");
  SWHKM_REQUIRE(xor_mask != 0, "a zero XOR mask corrupts nothing");
  std::lock_guard lock(mutex_);
  sends_.push_back({rank, nth_send, xor_mask, offset, /*drop=*/false,
                    persistent, /*fired=*/false});
  return *this;
}

FaultPlan& FaultPlan::flip_memory(int rank, std::uint64_t iteration,
                                  MemorySite site, std::size_t offset,
                                  std::uint64_t xor_mask) {
  SWHKM_REQUIRE(rank >= 0, "flip rank must be non-negative");
  SWHKM_REQUIRE(xor_mask != 0, "a zero XOR mask flips nothing");
  std::lock_guard lock(mutex_);
  flips_.push_back({rank, iteration, site, offset, xor_mask, /*fired=*/false});
  return *this;
}

FaultPlan& FaultPlan::drop_send(int rank, std::uint64_t nth_send) {
  SWHKM_REQUIRE(rank >= 0, "drop rank must be non-negative");
  std::lock_guard lock(mutex_);
  sends_.push_back({rank, nth_send, 0, 0, /*drop=*/true, /*persistent=*/false,
                    /*fired=*/false});
  return *this;
}

FaultPlan& FaultPlan::watchdog(std::chrono::milliseconds timeout) {
  std::lock_guard lock(mutex_);
  watchdog_ = timeout;
  return *this;
}

std::chrono::milliseconds FaultPlan::watchdog_timeout() const {
  std::lock_guard lock(mutex_);
  return watchdog_;
}

bool FaultPlan::has_armed_drops() const {
  std::lock_guard lock(mutex_);
  return std::any_of(sends_.begin(), sends_.end(), [](const SendEvent& e) {
    return e.drop && !e.fired;
  });
}

void FaultPlan::on_fault_point(int rank, FaultSite site,
                               std::uint64_t iteration) {
  bool fire = false;
  {
    std::lock_guard lock(mutex_);
    for (CrashEvent& event : crashes_) {
      if (event.rank != rank || event.iteration != iteration ||
          event.site != site || event.remaining == 0) {
        continue;
      }
      if (event.remaining > 0) {
        --event.remaining;
      }
      ++fired_crashes_;
      fire = true;
      break;
    }
  }
  if (fire) {
    throw InjectedFault("injected fault: rank " + std::to_string(rank) +
                        " crashed at " + fault_site_name(site) +
                        " of iteration " + std::to_string(iteration));
  }
}

SendVerdict FaultPlan::on_send(int rank, std::span<std::byte> payload) {
  std::lock_guard lock(mutex_);
  const std::uint64_t seq = send_seq_[rank]++;
  SendVerdict verdict;
  for (SendEvent& event : sends_) {
    if (event.fired || event.rank != rank || event.nth != seq) {
      continue;
    }
    event.fired = true;
    if (event.drop) {
      ++fired_drops_;
      verdict.deliver = false;
      return verdict;
    }
    // XOR one clamped word: deterministic damage with a bounded blast
    // radius (tests aim it at value fields, not at indices or the
    // shared-fold pointer exchange).
    xor_window(payload, {}, event.offset, event.mask);
    verdict.corrupted = true;
    verdict.persistent = verdict.persistent || event.persistent;
    ++fired_corruptions_;
  }
  return verdict;
}

void FaultPlan::on_memory(int rank, std::uint64_t iteration, MemorySite site,
                          std::span<std::byte> a, std::span<std::byte> b) {
  std::lock_guard lock(mutex_);
  for (MemFlipEvent& event : flips_) {
    if (event.fired || event.rank != rank || event.iteration != iteration ||
        event.site != site) {
      continue;
    }
    event.fired = true;
    xor_window(a, b, event.offset, event.mask);
    ++fired_flips_;
  }
}

std::uint64_t FaultPlan::fired_crashes() const {
  std::lock_guard lock(mutex_);
  return fired_crashes_;
}

std::uint64_t FaultPlan::fired_corruptions() const {
  std::lock_guard lock(mutex_);
  return fired_corruptions_;
}

std::uint64_t FaultPlan::fired_drops() const {
  std::lock_guard lock(mutex_);
  return fired_drops_;
}

std::uint64_t FaultPlan::fired_flips() const {
  std::lock_guard lock(mutex_);
  return fired_flips_;
}

void FaultPlan::export_fired(telemetry::MetricsShard& shard) {
  std::uint64_t d_crashes = 0;
  std::uint64_t d_corruptions = 0;
  std::uint64_t d_drops = 0;
  std::uint64_t d_flips = 0;
  {
    std::lock_guard lock(mutex_);
    d_crashes = fired_crashes_ - exported_crashes_;
    d_corruptions = fired_corruptions_ - exported_corruptions_;
    d_drops = fired_drops_ - exported_drops_;
    d_flips = fired_flips_ - exported_flips_;
    exported_crashes_ = fired_crashes_;
    exported_corruptions_ = fired_corruptions_;
    exported_drops_ = fired_drops_;
    exported_flips_ = fired_flips_;
  }
  if (d_crashes > 0) {
    shard.counter("fault.fired_crashes").add(d_crashes);
  }
  if (d_corruptions > 0) {
    shard.counter("fault.fired_corruptions").add(d_corruptions);
  }
  if (d_drops > 0) {
    shard.counter("fault.fired_drops").add(d_drops);
  }
  if (d_flips > 0) {
    shard.counter("fault.fired_flips").add(d_flips);
  }
}

}  // namespace swhkm::swmpi
