#include "swmpi/fault.hpp"

#include <cstring>

namespace swhkm::swmpi {

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kAssign:
      return "assign";
    case FaultSite::kUpdate:
      return "update";
    case FaultSite::kCollective:
      return "collective";
  }
  return "?";
}

FaultPlan& FaultPlan::crash(int rank, std::uint64_t iteration, FaultSite site,
                            int fires) {
  SWHKM_REQUIRE(rank >= 0, "crash rank must be non-negative");
  SWHKM_REQUIRE(fires == -1 || fires > 0, "fires must be positive or -1");
  std::lock_guard lock(mutex_);
  crashes_.push_back({rank, iteration, site, fires});
  return *this;
}

FaultPlan& FaultPlan::corrupt_send(int rank, std::uint64_t nth_send,
                                   std::uint64_t xor_mask) {
  SWHKM_REQUIRE(rank >= 0, "corrupt rank must be non-negative");
  SWHKM_REQUIRE(xor_mask != 0, "a zero XOR mask corrupts nothing");
  std::lock_guard lock(mutex_);
  sends_.push_back({rank, nth_send, xor_mask, /*drop=*/false, /*fired=*/false});
  return *this;
}

FaultPlan& FaultPlan::drop_send(int rank, std::uint64_t nth_send) {
  SWHKM_REQUIRE(rank >= 0, "drop rank must be non-negative");
  std::lock_guard lock(mutex_);
  sends_.push_back({rank, nth_send, 0, /*drop=*/true, /*fired=*/false});
  return *this;
}

FaultPlan& FaultPlan::watchdog(std::chrono::milliseconds timeout) {
  std::lock_guard lock(mutex_);
  watchdog_ = timeout;
  return *this;
}

std::chrono::milliseconds FaultPlan::watchdog_timeout() const {
  std::lock_guard lock(mutex_);
  return watchdog_;
}

void FaultPlan::on_fault_point(int rank, FaultSite site,
                               std::uint64_t iteration) {
  bool fire = false;
  {
    std::lock_guard lock(mutex_);
    for (CrashEvent& event : crashes_) {
      if (event.rank != rank || event.iteration != iteration ||
          event.site != site || event.remaining == 0) {
        continue;
      }
      if (event.remaining > 0) {
        --event.remaining;
      }
      ++fired_crashes_;
      fire = true;
      break;
    }
  }
  if (fire) {
    throw InjectedFault("injected fault: rank " + std::to_string(rank) +
                        " crashed at " + fault_site_name(site) +
                        " of iteration " + std::to_string(iteration));
  }
}

bool FaultPlan::on_send(int rank, std::span<std::byte> payload) {
  std::lock_guard lock(mutex_);
  const std::uint64_t seq = send_seq_[rank]++;
  for (SendEvent& event : sends_) {
    if (event.fired || event.rank != rank || event.nth != seq) {
      continue;
    }
    event.fired = true;
    if (event.drop) {
      ++fired_drops_;
      return false;
    }
    // XOR the first word only: deterministic damage with a bounded blast
    // radius (tests aim it at value fields, not at indices or the
    // shared-fold pointer exchange).
    std::uint64_t word = 0;
    const std::size_t width = std::min(payload.size(), sizeof(word));
    std::memcpy(&word, payload.data(), width);
    word ^= event.mask;
    std::memcpy(payload.data(), &word, width);
    ++fired_corruptions_;
  }
  return true;
}

std::uint64_t FaultPlan::fired_crashes() const {
  std::lock_guard lock(mutex_);
  return fired_crashes_;
}

std::uint64_t FaultPlan::fired_corruptions() const {
  std::lock_guard lock(mutex_);
  return fired_corruptions_;
}

std::uint64_t FaultPlan::fired_drops() const {
  std::lock_guard lock(mutex_);
  return fired_drops_;
}

}  // namespace swhkm::swmpi
