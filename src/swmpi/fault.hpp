#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace swhkm::telemetry {
class MetricsShard;
}

namespace swhkm::swmpi {

/// Engine-visible iteration boundaries where a scheduled crash can fire.
/// The engines call Comm::fault_point at each of them, so a schedule can
/// name "rank 2 dies entering the update phase of iteration 7" exactly.
enum class FaultSite : int {
  kAssign = 0,      ///< start of an iteration, before the assign sweep
  kUpdate = 1,      ///< before entering the sharded centroid update
  kCollective = 2,  ///< before the iteration's closing tally collective
};

const char* fault_site_name(FaultSite site);

/// Engine-visible memory regions a scheduled bit flip can target — the
/// silent-data-corruption counterpart of FaultSite. The engines expose each
/// region through Comm::memory_fault_point at a deterministic spot in the
/// iteration, so a schedule names "flip bit 62 of byte 40 in rank 1's
/// update accumulator at iteration 3" exactly.
enum class MemorySite : int {
  kSnapshot = 0,     ///< the shared read-only centroid snapshot
  kTileScratch = 1,  ///< a GEMM assign scratch panel (per-rank, per-tile)
  kUpdateAccum = 2,  ///< a rank's (sums, counts) update accumulator
};

const char* memory_site_name(MemorySite site);

/// The exception a scheduled crash raises — a deliberately induced
/// RuntimeFault, distinguishable from organic runtime bugs so run_spmd's
/// error preference and the tests can tell them apart.
class InjectedFault : public RuntimeFault {
 public:
  explicit InjectedFault(const std::string& what) : RuntimeFault(what) {}
};

/// What FaultPlan::on_send decided about one outgoing payload.
struct SendVerdict {
  bool deliver = true;     ///< false: blackhole the message
  bool corrupted = false;  ///< an XOR event mutated the payload in place
  /// Corruption survives retransmission (models corruption at the source —
  /// a bad buffer — rather than on the wire): the transport's NACK/resend
  /// handshake fetches an equally corrupt copy, so detection must escalate
  /// to CorruptMessageError instead of recovering silently.
  bool persistent = false;
};

/// Deterministic, seed-free fault-injection schedule for the swmpi
/// runtime. Every event is an explicit coordinate — no randomness — so any
/// failure a test provokes reproduces byte-for-byte:
///
///   crash(r, i, site)        rank r throws InjectedFault at iteration i's
///                            `site` boundary (engines report global
///                            iteration numbers, so schedules survive
///                            checkpoint/resume legs);
///   corrupt_send(r, n, mask [, offset, persistent])
///                            the n-th payload rank r sends (counting every
///                            send the rank issues, on any communicator of
///                            the world) has the 8-byte window at `offset`
///                            XORed with `mask` (clamped to the payload;
///                            an offset past the end corrupts nothing but
///                            still counts as fired). Transient by default:
///                            the transport's retained clean copy survives,
///                            so the CRC handshake recovers; `persistent`
///                            poisons the retained copy too;
///   flip_memory(r, i, site, offset, mask)
///                            XOR the 8-byte window at `offset` of rank r's
///                            `site` region when the engine exposes it at
///                            iteration i — the deterministic DRAM bit
///                            flip. One-shot;
///   drop_send(r, n)          the n-th send from rank r is blackholed — the
///                            deterministic "mailbox stall", which the
///                            receiving rank's watchdog converts into a
///                            WatchdogTimeout (a drop schedule without a
///                            watchdog would deadlock; run_spmd rejects the
///                            combination at entry);
///   watchdog(t)              every blocking recv in the world fails with
///                            WatchdogTimeout after waiting `t`.
///
/// Ranks are *world* ranks: a rank keeps its identity inside split()
/// sub-communicators, so schedules address physical ranks, not per-comm
/// numbering. All counters and one-shot arming state live in the plan
/// object itself and persist across run_spmd invocations — an event that
/// fired during a failed leg stays disarmed when the RecoveryDriver
/// retries, exactly like a real machine whose faulted node does not fault
/// again on the re-run. Thread-safe; the same plan may be shared by every
/// rank of a world.
class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(const FaultPlan&) = delete;  // armed state is identity
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// Schedule rank `rank` to throw InjectedFault at `site` of global
  /// iteration `iteration`. `fires` bounds how many times the event can
  /// trigger across retries (-1 = every time the coordinate is reached —
  /// what the degradation tests use to make a topology permanently toxic).
  FaultPlan& crash(int rank, std::uint64_t iteration, FaultSite site,
                   int fires = 1);

  /// XOR the first 8 bytes of rank `rank`'s `nth_send`-th outgoing payload
  /// (0-based, counted across the rank's whole lifetime) with `xor_mask`.
  /// One-shot, transient (see the class comment).
  FaultPlan& corrupt_send(int rank, std::uint64_t nth_send,
                          std::uint64_t xor_mask);

  /// Generalized corruption: XOR the 8-byte window starting at byte
  /// `offset` of the payload (clamped to the payload size — a sub-8-byte
  /// tail gets a sub-8-byte XOR, and an offset at/past the end mutates
  /// nothing). `persistent` extends the damage to the transport's retained
  /// resend copy, turning silent transport recovery into an escalated
  /// CorruptMessageError. One-shot.
  FaultPlan& corrupt_send(int rank, std::uint64_t nth_send,
                          std::uint64_t xor_mask, std::size_t offset,
                          bool persistent = false);

  /// XOR the 8-byte window at `offset` of rank `rank`'s `site` memory
  /// region with `xor_mask` when the engine exposes that region at global
  /// iteration `iteration` (clamped like corrupt_send). One-shot.
  FaultPlan& flip_memory(int rank, std::uint64_t iteration, MemorySite site,
                         std::size_t offset, std::uint64_t xor_mask);

  /// Blackhole rank `rank`'s `nth_send`-th outgoing payload. One-shot.
  FaultPlan& drop_send(int rank, std::uint64_t nth_send);

  /// Arm the recv watchdog for every rank of the world (0 disables it).
  FaultPlan& watchdog(std::chrono::milliseconds timeout);
  std::chrono::milliseconds watchdog_timeout() const;

  /// True while any drop_send event is still armed (has not fired). Used by
  /// run_spmd's entry check: a drop with no watchdog deadlocks silently.
  bool has_armed_drops() const;

  // --- runtime hooks (called by Comm; not for user code) ---

  /// Throws InjectedFault when an armed crash matches (rank, site,
  /// iteration); otherwise returns.
  void on_fault_point(int rank, FaultSite site, std::uint64_t iteration);

  /// Counts the send and applies any matching corruption in place.
  SendVerdict on_send(int rank, std::span<std::byte> payload);

  /// Applies any armed flip whose (rank, iteration, site) matches. The
  /// region may be exposed as two spans (an accumulator's sums then counts
  /// arrays); offsets address their concatenation `a ++ b`.
  void on_memory(int rank, std::uint64_t iteration, MemorySite site,
                 std::span<std::byte> a, std::span<std::byte> b = {});

  // --- telemetry, for tests and the bench JSON ---
  std::uint64_t fired_crashes() const;
  std::uint64_t fired_corruptions() const;
  std::uint64_t fired_drops() const;
  std::uint64_t fired_flips() const;

  /// Add the fired_* tallies to `shard`'s named counters
  /// ("fault.fired_crashes", ".fired_corruptions", ".fired_drops",
  /// ".fired_flips"), so injection activity lands in report.json next to
  /// the detection counters instead of only behind getter methods.
  /// Idempotent across calls: only the delta since the previous export is
  /// added, so run_spmd can export after every leg of a multi-leg run.
  void export_fired(telemetry::MetricsShard& shard);

 private:
  struct CrashEvent {
    int rank;
    std::uint64_t iteration;
    FaultSite site;
    int remaining;  ///< fires left; -1 = unlimited
  };
  struct SendEvent {
    int rank;
    std::uint64_t nth;
    std::uint64_t mask;  ///< 0 with drop=true for blackholes
    std::size_t offset;  ///< first byte of the XOR window
    bool drop;
    bool persistent;
    bool fired;
  };
  struct MemFlipEvent {
    int rank;
    std::uint64_t iteration;
    MemorySite site;
    std::size_t offset;
    std::uint64_t mask;
    bool fired;
  };

  mutable std::mutex mutex_;
  std::vector<CrashEvent> crashes_;
  std::vector<SendEvent> sends_;
  std::vector<MemFlipEvent> flips_;
  std::map<int, std::uint64_t> send_seq_;  ///< per-world-rank send counter
  std::chrono::milliseconds watchdog_{0};
  std::uint64_t fired_crashes_ = 0;
  std::uint64_t fired_corruptions_ = 0;
  std::uint64_t fired_drops_ = 0;
  std::uint64_t fired_flips_ = 0;
  // export_fired watermarks: fired counts already pushed to telemetry.
  std::uint64_t exported_crashes_ = 0;
  std::uint64_t exported_corruptions_ = 0;
  std::uint64_t exported_drops_ = 0;
  std::uint64_t exported_flips_ = 0;
};

}  // namespace swhkm::swmpi
