#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace swhkm::swmpi {

/// Engine-visible iteration boundaries where a scheduled crash can fire.
/// The engines call Comm::fault_point at each of them, so a schedule can
/// name "rank 2 dies entering the update phase of iteration 7" exactly.
enum class FaultSite : int {
  kAssign = 0,      ///< start of an iteration, before the assign sweep
  kUpdate = 1,      ///< before entering the sharded centroid update
  kCollective = 2,  ///< before the iteration's closing tally collective
};

const char* fault_site_name(FaultSite site);

/// The exception a scheduled crash raises — a deliberately induced
/// RuntimeFault, distinguishable from organic runtime bugs so run_spmd's
/// error preference and the tests can tell them apart.
class InjectedFault : public RuntimeFault {
 public:
  explicit InjectedFault(const std::string& what) : RuntimeFault(what) {}
};

/// Deterministic, seed-free fault-injection schedule for the swmpi
/// runtime. Every event is an explicit coordinate — no randomness — so any
/// failure a test provokes reproduces byte-for-byte:
///
///   crash(r, i, site)        rank r throws InjectedFault at iteration i's
///                            `site` boundary (engines report global
///                            iteration numbers, so schedules survive
///                            checkpoint/resume legs);
///   corrupt_send(r, n, mask) the n-th payload rank r sends (counting every
///                            send the rank issues, on any communicator of
///                            the world) has its first 8 bytes XORed with
///                            `mask`;
///   drop_send(r, n)          the n-th send from rank r is blackholed — the
///                            deterministic "mailbox stall", which the
///                            receiving rank's watchdog converts into a
///                            WatchdogTimeout (a drop schedule without a
///                            watchdog would deadlock, so pair them);
///   watchdog(t)              every blocking recv in the world fails with
///                            WatchdogTimeout after waiting `t`.
///
/// Ranks are *world* ranks: a rank keeps its identity inside split()
/// sub-communicators, so schedules address physical ranks, not per-comm
/// numbering. All counters and one-shot arming state live in the plan
/// object itself and persist across run_spmd invocations — an event that
/// fired during a failed leg stays disarmed when the RecoveryDriver
/// retries, exactly like a real machine whose faulted node does not fault
/// again on the re-run. Thread-safe; the same plan may be shared by every
/// rank of a world.
class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(const FaultPlan&) = delete;  // armed state is identity
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// Schedule rank `rank` to throw InjectedFault at `site` of global
  /// iteration `iteration`. `fires` bounds how many times the event can
  /// trigger across retries (-1 = every time the coordinate is reached —
  /// what the degradation tests use to make a topology permanently toxic).
  FaultPlan& crash(int rank, std::uint64_t iteration, FaultSite site,
                   int fires = 1);

  /// XOR the first 8 bytes of rank `rank`'s `nth_send`-th outgoing payload
  /// (0-based, counted across the rank's whole lifetime) with `xor_mask`.
  /// One-shot.
  FaultPlan& corrupt_send(int rank, std::uint64_t nth_send,
                          std::uint64_t xor_mask);

  /// Blackhole rank `rank`'s `nth_send`-th outgoing payload. One-shot.
  FaultPlan& drop_send(int rank, std::uint64_t nth_send);

  /// Arm the recv watchdog for every rank of the world (0 disables it).
  FaultPlan& watchdog(std::chrono::milliseconds timeout);
  std::chrono::milliseconds watchdog_timeout() const;

  // --- runtime hooks (called by Comm; not for user code) ---

  /// Throws InjectedFault when an armed crash matches (rank, site,
  /// iteration); otherwise returns.
  void on_fault_point(int rank, FaultSite site, std::uint64_t iteration);

  /// Counts the send and applies any matching corruption in place.
  /// Returns false when the message must be dropped.
  bool on_send(int rank, std::span<std::byte> payload);

  // --- telemetry, for tests and the bench JSON ---
  std::uint64_t fired_crashes() const;
  std::uint64_t fired_corruptions() const;
  std::uint64_t fired_drops() const;

 private:
  struct CrashEvent {
    int rank;
    std::uint64_t iteration;
    FaultSite site;
    int remaining;  ///< fires left; -1 = unlimited
  };
  struct SendEvent {
    int rank;
    std::uint64_t nth;
    std::uint64_t mask;  ///< 0 with drop=true for blackholes
    bool drop;
    bool fired;
  };

  mutable std::mutex mutex_;
  std::vector<CrashEvent> crashes_;
  std::vector<SendEvent> sends_;
  std::map<int, std::uint64_t> send_seq_;  ///< per-world-rank send counter
  std::chrono::milliseconds watchdog_{0};
  std::uint64_t fired_crashes_ = 0;
  std::uint64_t fired_corruptions_ = 0;
  std::uint64_t fired_drops_ = 0;
};

}  // namespace swhkm::swmpi
