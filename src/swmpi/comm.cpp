#include "swmpi/comm.hpp"

#include <algorithm>

#include "telemetry/flight_recorder.hpp"
#include "util/crc32.hpp"

namespace swhkm::swmpi {

namespace detail {

/// Corrupted sends retained for resend, per world. A ring this small is
/// plenty: only FaultPlan-corrupted payloads land here, and a receiver
/// NACKs within the same collective round the send belongs to.
constexpr std::size_t kRetainedSendCapacity = 64;

World::World(int world_size, FaultPlan* faults,
             telemetry::MetricsRegistry* metrics_registry)
    : size(world_size), fault_plan(faults), metrics(metrics_registry) {
  boxes.reserve(static_cast<std::size_t>(world_size));
  for (int r = 0; r < world_size; ++r) {
    // One SPSC ring lane per (sender, receiver) pair: each box gets one
    // lane per member rank, and each member rank is one thread.
    boxes.push_back(std::make_unique<Mailbox>(world_size));
  }
  send_seqs =
      std::make_unique<std::atomic<std::uint64_t>[]>(
          static_cast<std::size_t>(world_size));
}

void World::retain_send(int source, std::uint64_t seq,
                        std::span<const std::byte> body) {
  std::lock_guard lock(resend_mutex);
  RetainedSend entry;
  entry.source = source;
  entry.seq = seq;
  entry.body.assign(body.begin(), body.end());
  if (retained_sends.size() < kRetainedSendCapacity) {
    retained_sends.push_back(std::move(entry));
  } else {
    retained_sends[retained_next] = std::move(entry);
    retained_next = (retained_next + 1) % kRetainedSendCapacity;
  }
}

bool World::fetch_retained(int source, std::uint64_t seq,
                           std::vector<std::byte>& out) {
  std::lock_guard lock(resend_mutex);
  for (const RetainedSend& entry : retained_sends) {
    if (entry.source == source && entry.seq == seq) {
      out = entry.body;
      return true;
    }
  }
  return false;
}

}  // namespace detail

void Comm::send_bytes(int dest, int tag, std::span<const std::byte> payload) {
  SWHKM_REQUIRE(valid(), "communicator is empty");
  SWHKM_REQUIRE(dest >= 0 && dest < size(), "destination rank out of range");
  Message message;
  message.source = rank_;
  message.tag = tag;
  const std::size_t body = payload.size();
  message.payload.resize(body + sizeof(detail::FrameTrailer));
  if (body > 0) {
    std::memcpy(message.payload.data(), payload.data(), body);
  }
  // Frame integrity: CRC over the *clean* body, sequence from the world's
  // per-sender counter. The trailer is appended after fault injection runs,
  // so an injected corruption always disagrees with the CRC the sender
  // framed — exactly like a wire flip under a checksummed link.
  detail::FrameTrailer trailer;
  trailer.seq = world_->send_seqs[static_cast<std::size_t>(rank_)].fetch_add(
      1, std::memory_order_relaxed);
  trailer.crc = util::crc32(payload);
  trailer.magic = detail::kFrameMagic;
  if (world_->fault_plan != nullptr) {
    const std::span<std::byte> body_span(message.payload.data(), body);
    const SendVerdict verdict =
        world_->fault_plan->on_send(global_rank_, body_span);
    if (!verdict.deliver) {
      // Scheduled drop: the peer's watchdog turns this into a fault.
      // Ledger it as a drop, not a delivery — the send counters must
      // describe traffic that actually reached a mailbox.
      if (tshard_ != nullptr) {
        tshard_->p2p_dropped.add(1);
      }
      return;
    }
    if (verdict.corrupted) {
      // Retain the resend copy the receiver's NACK will fetch: the clean
      // pre-corruption bytes for transient ("wire") damage, the corrupted
      // bytes for persistent ("source buffer") damage.
      world_->retain_send(rank_, trailer.seq,
                          verdict.persistent
                              ? std::span<const std::byte>(body_span)
                              : payload);
    }
  }
  std::memcpy(message.payload.data() + body, &trailer, sizeof(trailer));
  const bool waited =
      world_->boxes[static_cast<std::size_t>(dest)]->push(std::move(message));
  if (tshard_ != nullptr) {
    tshard_->p2p_sends.add(1);
    // Charged at the user payload size: the 16-byte trailer is transport
    // overhead, priced by the cost model's SDC cell, not part of the
    // traffic ledger tests reconcile against collective payloads.
    tshard_->p2p_send_bytes.add(body);
    if (waited) {
      tshard_->send_ring_waits.add(1);
    }
  }
}

std::vector<std::byte> Comm::unframe(int source, int tag,
                                     std::vector<std::byte>&& framed) {
  SWHKM_REQUIRE(framed.size() >= sizeof(detail::FrameTrailer),
                "swmpi: popped frame shorter than its integrity trailer");
  detail::FrameTrailer trailer;
  std::memcpy(&trailer, framed.data() + framed.size() - sizeof(trailer),
              sizeof(trailer));
  framed.resize(framed.size() - sizeof(trailer));
  const auto clean = [&](std::span<const std::byte> body) {
    return trailer.magic == detail::kFrameMagic &&
           util::crc32(body) == trailer.crc;
  };
  if (clean(framed)) {
    return std::move(framed);
  }
  if (tshard_ != nullptr) {
    tshard_->counter("swmpi.recv.crc_fail").add(1);
  }
  // Bounded NACK/resend handshake: ask the sender's retransmit store for
  // the retained copy. A transient corruption recovers on the first
  // attempt (the store holds the clean bytes); persistent source-buffer
  // corruption keeps failing the CRC and escalates.
  for (int attempt = 0; attempt < detail::kMaxRetransmits; ++attempt) {
    if (tshard_ != nullptr) {
      tshard_->counter("swmpi.send.retransmit").add(1);
    }
    std::vector<std::byte> copy;
    if (world_->fetch_retained(source, trailer.seq, copy) && clean(copy)) {
      return copy;
    }
  }
  throw CorruptMessageError(
      "swmpi: rank " + std::to_string(global_rank_) +
      " received a corrupt payload from rank " + std::to_string(source) +
      " (seq " + std::to_string(trailer.seq) + ", tag " +
      std::to_string(tag) + "): CRC mismatch survived " +
      std::to_string(detail::kMaxRetransmits) + " retransmit attempts");
}

std::vector<std::byte> Comm::recv_bytes(int source, int tag) {
  SWHKM_REQUIRE(valid(), "communicator is empty");
  SWHKM_REQUIRE(source == kAnySource || (source >= 0 && source < size()),
                "source rank out of range");
  Mailbox& box = *world_->boxes[static_cast<std::size_t>(rank_)];
  // Mailbox-side observability: queue depth at entry (how far behind this
  // rank is) and wall time blocked waiting for the match. Clock reads only
  // happen when a registry is armed.
  std::chrono::steady_clock::time_point stall_start;
  if (tshard_ != nullptr) {
    tshard_->recv_queue_depth.set(
        static_cast<std::int64_t>(box.pending()));
    stall_start = std::chrono::steady_clock::now();
  }
  const std::chrono::milliseconds timeout =
      world_->fault_plan != nullptr ? world_->fault_plan->watchdog_timeout()
                                    : std::chrono::milliseconds{0};
  const auto observe_stall = [&](bool parked) {
    if (tshard_ != nullptr) {
      const double stall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        stall_start)
              .count();
      tshard_->recv_stall_s.observe(stall_s);
      if (parked) {
        tshard_->recv_parks.add(1);
        // Flight-record the park retroactively — a park is only known at
        // wake time, so the park event gets the recv-entry timestamp and
        // the wake event carries the stalled microseconds.
        if (telemetry::FlightRing* ring = tshard_->flight()) {
          const std::uint64_t utag =
              static_cast<std::uint64_t>(static_cast<std::int64_t>(tag));
          const double wake_us = ring->now_us();
          ring->record_at(wake_us - stall_s * 1e6,
                          telemetry::FlightEventKind::kMailboxPark, 0, 0,
                          utag);
          ring->record_at(wake_us, telemetry::FlightEventKind::kMailboxWake,
                          0, 0, utag,
                          static_cast<std::uint64_t>(stall_s * 1e6));
        }
      }
    }
  };
  Message message;
  bool parked = false;
  if (timeout.count() > 0) {
    if (!box.pop_matching_for(source, tag, timeout, message, &parked)) {
      // Observe the stall *before* throwing: the histogram exists to
      // surface pathological waits, and the watchdog path is exactly the
      // pathological case — losing the sample here undercounts the tail.
      observe_stall(parked);
      throw WatchdogTimeout(
          "swmpi: rank " + std::to_string(global_rank_) +
          " waited longer than " + std::to_string(timeout.count()) +
          " ms for a message from rank " + std::to_string(source) +
          " (tag " + std::to_string(tag) + ") — peer stalled or dead");
    }
  } else {
    message = box.pop_matching(source, tag, &parked);
  }
  observe_stall(parked);
  return unframe(message.source, tag, std::move(message.payload));
}

void Comm::fault_point(FaultSite site, std::uint64_t iteration) {
  if (world_ != nullptr && world_->fault_plan != nullptr) {
    world_->fault_plan->on_fault_point(global_rank_, site, iteration);
  }
}

void Comm::memory_fault_point(MemorySite site, std::uint64_t iteration,
                              std::span<std::byte> a, std::span<std::byte> b) {
  if (world_ != nullptr && world_->fault_plan != nullptr) {
    world_->fault_plan->on_memory(global_rank_, iteration, site, a, b);
  }
}

Comm Comm::split(int color, int key) {
  SWHKM_REQUIRE(valid(), "communicator is empty");
  const int tag = next_collective_tag();

  // Exchange (color, key) through rank 0. Linear, but split happens once
  // per engine run, not per iteration.
  struct Entry {
    int color;
    int key;
    int old_rank;
  };
  std::vector<Entry> entries(static_cast<std::size_t>(size()));
  const Entry mine{color, key, rank_};
  if (rank_ == 0) {
    entries[0] = mine;
    for (int r = 1; r < size(); ++r) {
      Message m = world_->boxes[0]->pop_matching(r, tag);
      // Same unframe path as recv_bytes: split's direct pop must not be a
      // hole in the transport's integrity coverage.
      const std::vector<std::byte> body =
          unframe(m.source, tag, std::move(m.payload));
      SWHKM_REQUIRE(body.size() == sizeof(Entry), "bad split payload");
      std::memcpy(&entries[static_cast<std::size_t>(r)], body.data(),
                  sizeof(Entry));
    }
    for (int r = 1; r < size(); ++r) {
      send<Entry>(r, tag, std::span<const Entry>(entries));
    }
  } else {
    send_value<Entry>(0, tag, mine);
    entries = recv<Entry>(0, tag);
  }

  // Members of my color, ordered by (key, old rank); my new rank is my
  // position in that order.
  std::vector<Entry> members;
  for (const Entry& e : entries) {
    if (e.color == color) {
      members.push_back(e);
    }
  }
  std::sort(members.begin(), members.end(), [](const Entry& a, const Entry& b) {
    return a.key != b.key ? a.key < b.key : a.old_rank < b.old_rank;
  });
  int new_rank = -1;
  std::vector<int> registry_key;
  registry_key.push_back(tag);
  registry_key.push_back(color);
  for (std::size_t i = 0; i < members.size(); ++i) {
    registry_key.push_back(members[i].old_rank);
    if (members[i].old_rank == rank_) {
      new_rank = static_cast<int>(i);
    }
  }
  SWHKM_REQUIRE(new_rank >= 0, "split bookkeeping lost the caller");

  // Rendezvous: first member in creates the sub-world, last one out
  // removes the registry entry.
  std::shared_ptr<detail::World> sub;
  {
    std::lock_guard lock(world_->splits.mutex);
    auto it = world_->splits.live.find(registry_key);
    if (it == world_->splits.live.end()) {
      sub = std::make_shared<detail::World>(static_cast<int>(members.size()),
                                            world_->fault_plan,
                                            world_->metrics);
      sub->pickups_remaining = static_cast<int>(members.size());
      world_->splits.live.emplace(registry_key, sub);
    } else {
      sub = it->second;
    }
    if (--sub->pickups_remaining == 0) {
      world_->splits.live.erase(registry_key);
    }
  }
  bool parent_aborted;
  {
    std::lock_guard lock(world_->children_mutex);
    world_->children.push_back(sub);
    parent_aborted = world_->aborted;
  }
  if (parent_aborted) {
    // We registered after (or while) an abort sweep snapshotted the child
    // list — the sweep may never see this sub-world, so poison it here
    // before anyone can block in its mailboxes.
    sub->abort_all();
  }
  return Comm(std::move(sub), new_rank, global_rank_);
}

std::vector<Comm> Comm::create_world(int size, FaultPlan* faults,
                                     telemetry::MetricsRegistry* metrics) {
  SWHKM_REQUIRE(size >= 1, "world needs at least one rank");
  auto world = std::make_shared<detail::World>(size, faults, metrics);
  std::vector<Comm> comms;
  comms.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    comms.push_back(Comm(world, r, r));
  }
  return comms;
}

void Comm::abort_world() {
  if (!world_) {
    return;
  }
  world_->abort_all();
}

namespace detail {

void World::abort_all() {
  // Raise the flag and snapshot the children in one critical section: any
  // split() that registers a child after this point sees `aborted` and
  // poisons its own sub-world (see Comm::split), so no child can slip
  // between the snapshot and the sweep.
  std::vector<std::shared_ptr<World>> kids;
  {
    std::lock_guard lock(children_mutex);
    aborted = true;
    for (auto& weak : children) {
      if (auto strong = weak.lock()) {
        kids.push_back(std::move(strong));
      }
    }
  }
  for (auto& box : boxes) {
    box->abort();
  }
  for (auto& kid : kids) {
    kid->abort_all();
  }
}

}  // namespace detail

}  // namespace swhkm::swmpi
