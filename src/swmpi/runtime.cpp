#include "swmpi/runtime.hpp"

#include <exception>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace swhkm::swmpi {

void run_spmd(int nranks, const std::function<void(Comm&)>& body,
              FaultPlan* faults, telemetry::MetricsRegistry* metrics) {
  SWHKM_REQUIRE(nranks >= 1, "need at least one rank");
  // A blackholed send with no watchdog is an undetectable deadlock: the
  // receiver blocks forever on a message nobody will ever push. Reject the
  // schedule up front instead of hanging the test that armed it.
  SWHKM_REQUIRE(
      faults == nullptr || !faults->has_armed_drops() ||
          faults->watchdog_timeout().count() > 0,
      "a FaultPlan with armed drop_send events needs a watchdog() timeout — "
      "a dropped message with no recv watchdog deadlocks the receiver "
      "silently");
  std::vector<Comm> comms = Comm::create_world(nranks, faults, metrics);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));

  auto run_rank = [&](int rank) {
    try {
      body(comms[static_cast<std::size_t>(rank)]);
    } catch (...) {
      errors[static_cast<std::size_t>(rank)] = std::current_exception();
      // Unblock peers waiting on this rank.
      comms[static_cast<std::size_t>(rank)].abort_world();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks - 1));
  for (int rank = 1; rank < nranks; ++rank) {
    threads.emplace_back(run_rank, rank);
  }
  run_rank(0);
  for (auto& thread : threads) {
    thread.join();
  }

  // Prefer the failure that explains the run: a real error beats an
  // injected/watchdog fault (the deliberate root cause of a fault drill),
  // which beats the secondary "aborted" faults poisoned peers report.
  std::exception_ptr first_real;
  std::exception_ptr first_primary_fault;
  std::exception_ptr first_any;
  for (const auto& error : errors) {
    if (!error) {
      continue;
    }
    if (!first_any) {
      first_any = error;
    }
    try {
      std::rethrow_exception(error);
    } catch (const InjectedFault&) {
      if (!first_primary_fault) {
        first_primary_fault = error;
      }
    } catch (const WatchdogTimeout&) {
      if (!first_primary_fault) {
        first_primary_fault = error;
      }
    } catch (const CorruptMessageError&) {
      // A failed CRC handshake is the root cause of its drill, like an
      // injected crash — peers that died aborting behind it are secondary.
      if (!first_primary_fault) {
        first_primary_fault = error;
      }
    } catch (const SilentCorruptionError&) {
      // Same standing for the compute-layer SDC detectors.
      if (!first_primary_fault) {
        first_primary_fault = error;
      }
    } catch (const RuntimeFault&) {
      // likely a secondary abort; keep looking
    } catch (...) {
      if (!first_real) {
        first_real = error;
      }
    }
  }
  // Injection activity belongs in the metrics snapshot (and report.json)
  // alongside the detection counters, not only behind getters. Exported
  // before rethrowing so failed legs report what was injected into them.
  if (faults != nullptr && metrics != nullptr) {
    faults->export_fired(metrics->host_shard());
  }

  if (first_real) {
    std::rethrow_exception(first_real);
  }
  if (first_primary_fault) {
    std::rethrow_exception(first_primary_fault);
  }
  if (first_any) {
    std::rethrow_exception(first_any);
  }
}

}  // namespace swhkm::swmpi
