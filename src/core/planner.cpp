#include "core/planner.hpp"

#include <sstream>

#include "util/units.hpp"

namespace swhkm::core {

namespace {

std::optional<PlanChoice> evaluate(Level level, const ProblemShape& shape,
                                   const simarch::MachineConfig& machine,
                                   std::size_t m_group,
                                   std::size_t mprime_group,
                                   Placement placement) {
  if (!check_level(level, shape, machine, m_group, mprime_group).ok) {
    return std::nullopt;
  }
  PlanChoice choice;
  choice.plan = make_plan(level, shape, machine, m_group, mprime_group);
  choice.predicted = model_iteration(choice.plan, machine, placement);
  return choice;
}

void keep_better(std::optional<PlanChoice>& best,
                 std::optional<PlanChoice> candidate) {
  if (!candidate) {
    return;
  }
  if (!best || candidate->predicted_s() < best->predicted_s()) {
    best = std::move(candidate);
  }
}

}  // namespace

std::optional<PlanChoice> best_plan_for_level(
    Level level, const ProblemShape& shape,
    const simarch::MachineConfig& machine, Placement placement) {
  std::optional<PlanChoice> best;
  switch (level) {
    case Level::kLevel1:
      keep_better(best, evaluate(level, shape, machine, 0, 0, placement));
      break;
    case Level::kLevel2:
      for (std::size_t g : candidate_m_groups(machine)) {
        keep_better(best, evaluate(level, shape, machine, g, 0, placement));
      }
      break;
    case Level::kLevel3:
      for (std::size_t p : candidate_mprime_groups(machine)) {
        keep_better(best, evaluate(level, shape, machine, 0, p, placement));
      }
      break;
  }
  return best;
}

std::optional<PlanChoice> auto_plan(const ProblemShape& shape,
                                    const simarch::MachineConfig& machine,
                                    Placement placement) {
  std::optional<PlanChoice> best;
  for (Level level : {Level::kLevel1, Level::kLevel2, Level::kLevel3}) {
    keep_better(best, best_plan_for_level(level, shape, machine, placement));
  }
  return best;
}

std::string feasibility_report(const ProblemShape& shape,
                               const simarch::MachineConfig& machine) {
  std::ostringstream out;
  out << "shape (n=" << shape.n << ", k=" << shape.k << ", d=" << shape.d
      << ") on " << machine.summary() << "\n";
  for (Level level : {Level::kLevel1, Level::kLevel2, Level::kLevel3}) {
    const Feasibility feasible = check_level(level, shape, machine);
    out << "  " << level_name(level) << ": ";
    if (!feasible.ok) {
      out << "infeasible — " << feasible.reason << "\n";
      continue;
    }
    const auto choice = best_plan_for_level(level, shape, machine);
    if (!choice) {
      out << "infeasible for every group size\n";
      continue;
    }
    out << "feasible, predicted "
        << util::format_seconds(choice->predicted_s()) << "/iteration ["
        << choice->plan.describe() << "]\n";
  }
  const auto best = auto_plan(shape, machine);
  if (best) {
    out << "  => planner picks " << level_name(best->plan.level) << " at "
        << util::format_seconds(best->predicted_s()) << "/iteration\n";
  } else {
    out << "  => no level can run this shape on this machine\n";
  }
  return out.str();
}

}  // namespace swhkm::core
