#pragma once

#include <optional>
#include <string>

#include "core/partition.hpp"
#include "core/perf_model.hpp"

namespace swhkm::core {

/// A plan together with its modelled per-iteration cost.
struct PlanChoice {
  PartitionPlan plan;
  simarch::CostTally predicted;
  double predicted_s() const { return predicted.total_s(); }
};

/// Best plan for one level: sweeps the level's group-size knob (m_group or
/// m'_group) over all feasible candidates and keeps the one with the
/// smallest modelled iteration time. nullopt when the level cannot run the
/// shape at all.
std::optional<PlanChoice> best_plan_for_level(
    Level level, const ProblemShape& shape,
    const simarch::MachineConfig& machine,
    Placement placement = Placement::kPacked);

/// Best plan across all three levels. nullopt when nothing fits (shape
/// exceeds even C1''/C2''/C3'').
std::optional<PlanChoice> auto_plan(const ProblemShape& shape,
                                    const simarch::MachineConfig& machine,
                                    Placement placement = Placement::kPacked);

/// Human-readable per-level feasibility and prediction summary — what the
/// capacity_planner example prints.
std::string feasibility_report(const ProblemShape& shape,
                               const simarch::MachineConfig& machine);

}  // namespace swhkm::core
