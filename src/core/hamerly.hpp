#pragma once

#include "core/accel_stats.hpp"
#include "core/kmeans.hpp"
#include "data/dataset.hpp"

namespace swhkm::core {

/// Hamerly's exact accelerated k-means (SDM'10, the paper's ref [18]):
/// one upper bound plus a single second-closest lower bound per sample —
/// O(n) bound memory instead of Elkan's O(n·k), trading pruning power for
/// cache friendliness. Trajectory-identical to lloyd_serial on continuous
/// data.
KmeansResult hamerly_serial(const data::Dataset& dataset,
                            const KmeansConfig& config,
                            AccelStats* stats = nullptr);

KmeansResult hamerly_serial_from(const data::Dataset& dataset,
                                 const KmeansConfig& config,
                                 util::Matrix centroids,
                                 AccelStats* stats = nullptr);

}  // namespace swhkm::core
