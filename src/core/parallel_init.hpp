#pragma once

#include "core/kmeans.hpp"
#include "data/dataset.hpp"

namespace swhkm::core {

/// k-means|| — scalable k-means++ (Bahmani et al., VLDB'12) — run as a
/// real SPMD job over the swmpi runtime: serial k-means++ needs k
/// sequential passes over the data, which at the paper's n and k would
/// dwarf the clustering itself; k-means|| gets comparable seeding quality
/// in a handful of parallel rounds.
///
/// Each of `ranks` workers holds a block of samples; every round the
/// workers AllReduce the current seeding cost, independently oversample
/// candidates proportional to their squared distance from the seed set,
/// and AllGather the new candidates. The weighted candidate set (weights =
/// nearest-sample counts) is then reduced to k centroids with weighted
/// k-means++.
struct ParallelInitConfig {
  std::size_t k = 2;
  int ranks = 4;            ///< SPMD workers (threads)
  std::size_t rounds = 5;   ///< oversampling rounds (~log of initial cost)
  double oversample = 0;    ///< l; 0 means the standard 2k
  std::uint64_t seed = 1;
};

/// Returns a k x d centroid matrix. Deterministic in (dataset, config) —
/// including the rank count, which shapes the per-rank sampling streams.
util::Matrix parallel_init(const data::Dataset& dataset,
                           const ParallelInitConfig& config);

namespace detail {

/// Weighted k-means++ over a small candidate matrix: the reduction step of
/// k-means|| (weights = per-candidate nearest-sample counts). Deterministic
/// in (candidates, weights, seed); zero-weight candidates are never
/// selected, even when FP rounding exhausts the weighted scan. Exposed for
/// the seeding regression tests.
util::Matrix weighted_plus_plus(const util::Matrix& candidates,
                                const std::vector<double>& weights,
                                std::size_t k, std::uint64_t seed);

}  // namespace detail

}  // namespace swhkm::core
