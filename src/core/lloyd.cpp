#include "core/lloyd.hpp"

#include "core/engine_util.hpp"
#include "core/init.hpp"
#include "core/metrics.hpp"
#include "util/error.hpp"

namespace swhkm::core {

std::vector<std::uint32_t> assign_serial(const data::Dataset& dataset,
                                         const util::Matrix& centroids) {
  std::vector<std::uint32_t> labels(dataset.n());
  std::vector<detail::TileScore> tile(detail::kAssignTileSamples);
  for (std::size_t t0 = 0; t0 < dataset.n();
       t0 += detail::kAssignTileSamples) {
    const std::size_t t1 =
        std::min(dataset.n(), t0 + detail::kAssignTileSamples);
    const std::span<detail::TileScore> scores(tile.data(), t1 - t0);
    detail::clear_scores(scores);
    detail::score_tile(dataset, t0, t1, centroids, 0, centroids.rows(),
                       scores);
    for (std::size_t i = t0; i < t1; ++i) {
      labels[i] = static_cast<std::uint32_t>(scores[i - t0].index);
    }
  }
  return labels;
}

KmeansResult lloyd_serial_from(const data::Dataset& dataset,
                               const KmeansConfig& config,
                               util::Matrix centroids) {
  SWHKM_REQUIRE(centroids.rows() == config.k, "centroid count must equal k");
  SWHKM_REQUIRE(centroids.cols() == dataset.d(),
                "centroid dimensionality must match the data");
  KmeansResult result;
  result.assignments.assign(dataset.n(), 0);
  detail::UpdateAccumulator acc(config.k, dataset.d());

  std::vector<detail::TileScore> tile(detail::kAssignTileSamples);
  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    acc.reset();
    // Same cache-blocked tile kernel the engines use; the ascending-index
    // scan keeps ties and accumulation order identical to the per-sample
    // loop it replaces.
    for (std::size_t t0 = 0; t0 < dataset.n();
         t0 += detail::kAssignTileSamples) {
      const std::size_t t1 =
          std::min(dataset.n(), t0 + detail::kAssignTileSamples);
      const std::span<detail::TileScore> scores(tile.data(), t1 - t0);
      detail::clear_scores(scores);
      detail::score_tile(dataset, t0, t1, centroids, 0, config.k, scores);
      for (std::size_t i = t0; i < t1; ++i) {
        const auto j = static_cast<std::uint32_t>(scores[i - t0].index);
        result.assignments[i] = j;
        acc.add_sample(j, dataset.sample(i));
      }
    }
    const detail::UpdateOutcome outcome =
        detail::apply_update(centroids, acc.sums, acc.counts);
    const double shift = outcome.shift;
    result.empty_clusters = outcome.empty_clusters;
    result.iterations = iter + 1;
    result.history.push_back({shift, 0.0});
    if (shift <= config.tolerance) {
      result.converged = true;
      break;
    }
  }

  detail::warn_empty_clusters(result.empty_clusters, "lloyd");
  result.inertia = inertia(dataset, centroids, result.assignments);
  result.centroids = std::move(centroids);
  return result;
}

KmeansResult lloyd_serial(const data::Dataset& dataset,
                          const KmeansConfig& config) {
  return lloyd_serial_from(dataset, config,
                           init_centroids(dataset, config));
}

}  // namespace swhkm::core
