#include "core/lloyd.hpp"

#include "core/engine_util.hpp"
#include "core/init.hpp"
#include "core/metrics.hpp"
#include "util/error.hpp"

namespace swhkm::core {

std::vector<std::uint32_t> assign_serial(const data::Dataset& dataset,
                                         const util::Matrix& centroids) {
  std::vector<std::uint32_t> labels(dataset.n());
  for (std::size_t i = 0; i < dataset.n(); ++i) {
    labels[i] = detail::nearest_in_slice(dataset.sample(i), centroids, 0,
                                         centroids.rows())
                    .second;
  }
  return labels;
}

KmeansResult lloyd_serial_from(const data::Dataset& dataset,
                               const KmeansConfig& config,
                               util::Matrix centroids) {
  SWHKM_REQUIRE(centroids.rows() == config.k, "centroid count must equal k");
  SWHKM_REQUIRE(centroids.cols() == dataset.d(),
                "centroid dimensionality must match the data");
  KmeansResult result;
  result.assignments.assign(dataset.n(), 0);
  detail::UpdateAccumulator acc(config.k, dataset.d());

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    acc.reset();
    for (std::size_t i = 0; i < dataset.n(); ++i) {
      const auto x = dataset.sample(i);
      const auto [dist, j] =
          detail::nearest_in_slice(x, centroids, 0, config.k);
      (void)dist;
      result.assignments[i] = j;
      acc.add_sample(j, x);
    }
    const double shift = detail::apply_update(centroids, acc.sums, acc.counts);
    result.iterations = iter + 1;
    result.history.push_back({shift, 0.0});
    if (shift <= config.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.inertia = inertia(dataset, centroids, result.assignments);
  result.centroids = std::move(centroids);
  return result;
}

KmeansResult lloyd_serial(const data::Dataset& dataset,
                          const KmeansConfig& config) {
  return lloyd_serial_from(dataset, config,
                           init_centroids(dataset, config));
}

}  // namespace swhkm::core
