#include "core/perf_model.hpp"

#include <algorithm>

#include "simarch/regcomm.hpp"
#include "simarch/topology.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace swhkm::core {

namespace {

using simarch::CostTally;
using simarch::MachineConfig;
using simarch::RegComm;
using simarch::Topology;
using util::ceil_div;

constexpr std::size_t kMinLocBytes = 16;  // (double, uint64) argmin payload

double dbl(std::uint64_t v) { return static_cast<double>(v); }

/// Centroid traffic per flow unit and iteration, in bytes *per holder CG*,
/// for a non-resident slice: the cheaper of per-sample re-streaming and
/// tiled passes over the sample block (see header).
double streamed_centroid_bytes(std::uint64_t samples, std::uint64_t k_local,
                               std::uint64_t slice_row_elems,
                               std::uint64_t sample_row_elems,
                               std::size_t tile_rows, std::size_t elem_bytes) {
  const double per_sample =
      dbl(samples) * dbl(k_local) * dbl(slice_row_elems) * elem_bytes;
  const std::uint64_t passes = ceil_div(k_local, tile_rows);
  const double tiled =
      dbl(passes) * dbl(samples) * dbl(sample_row_elems) * elem_bytes +
      dbl(k_local) * dbl(slice_row_elems) * elem_bytes;
  return std::min(per_sample, tiled);
}

/// One rank-set AllReduce under the selected schedule: seconds plus the
/// supernode-crossing bytes that schedule moves (the flat baseline's
/// crossing comes from Topology::flat_allreduce_crossing_bytes, so both
/// sides of the A/B report a comparable crossing ledger).
struct AllreduceModel {
  double seconds = 0;
  std::uint64_t crossing_bytes = 0;
};

AllreduceModel ranks_allreduce(const Topology& topo, std::size_t bytes,
                               const std::vector<std::size_t>& ranks,
                               bool hier, std::size_t xover) {
  AllreduceModel out;
  if (hier) {
    const simarch::CollectiveCharge charge =
        topo.hier_allreduce_charge(bytes, ranks, xover);
    out.seconds = charge.seconds;
    out.crossing_bytes = charge.crossing_bytes;
  } else {
    out.seconds = topo.allreduce_time(bytes, ranks);
    out.crossing_bytes = topo.flat_allreduce_crossing_bytes(bytes, ranks);
  }
  return out;
}

/// Worst-case AllReduce time over every group of `group_size` consecutive
/// ranks (packed placement) or stride-striped ranks (scattered), plus the
/// crossing bytes summed over *all* groups (the sampled groups repeat the
/// same boundary pattern, so the sample scales by its stride).
AllreduceModel worst_group_allreduce(const Topology& topo, std::size_t bytes,
                                     std::size_t num_groups,
                                     std::size_t group_size,
                                     Placement placement, bool hier,
                                     std::size_t xover) {
  AllreduceModel out;
  std::vector<std::size_t> ranks(group_size);
  // Groups repeat the same topology pattern within a supernode; sampling
  // up to 128 evenly spaced groups sees every boundary class.
  const std::size_t step = num_groups > 128 ? num_groups / 128 : 1;
  for (std::size_t g = 0; g < num_groups; g += step) {
    for (std::size_t i = 0; i < group_size; ++i) {
      ranks[i] = placement == Placement::kPacked ? g * group_size + i
                                                 : g + i * num_groups;
    }
    const AllreduceModel one = ranks_allreduce(topo, bytes, ranks, hier, xover);
    out.seconds = std::max(out.seconds, one.seconds);
    out.crossing_bytes += one.crossing_bytes * step;
  }
  return out;
}

/// AllReduce across the same-slice holders (one rank out of each group):
/// ranks {j, j + group_size, ...} packed, or {j*num_groups ...} scattered.
/// Crossing bytes scale the sampled slice owners up to all group_size of
/// them (the pattern repeats).
AllreduceModel cross_group_allreduce(const Topology& topo, std::size_t bytes,
                                     std::size_t num_groups,
                                     std::size_t group_size,
                                     Placement placement, bool hier,
                                     std::size_t xover) {
  AllreduceModel out;
  std::vector<std::size_t> ranks(num_groups);
  std::uint64_t sampled_crossing = 0;
  std::size_t sampled = 0;
  for (std::size_t j = 0; j < group_size; ++j) {
    for (std::size_t g = 0; g < num_groups; ++g) {
      ranks[g] = placement == Placement::kPacked ? g * group_size + j
                                                 : j * num_groups + g;
    }
    const AllreduceModel one = ranks_allreduce(topo, bytes, ranks, hier, xover);
    out.seconds = std::max(out.seconds, one.seconds);
    sampled_crossing += one.crossing_bytes;
    ++sampled;
    if (group_size > 8 && j >= 8) {
      break;  // sampling the slice owners is enough; pattern repeats
    }
  }
  if (sampled > 0) {
    out.crossing_bytes = sampled_crossing * group_size / sampled;
  }
  return out;
}

CostTally model_level1(const PartitionPlan& plan, const MachineConfig& mc,
                       bool hier) {
  CostTally t;
  RegComm reg(mc, t);
  Topology topo(mc);
  const auto& s = plan.shape;
  const std::size_t eb = mc.elem_bytes;
  const std::uint64_t n_cpe = ceil_div(s.n, mc.total_cpes());

  // Per-CG DMA: every CPE streams its samples and (re)loads all centroids.
  const double sample_bytes = dbl(mc.cpes_per_cg) * dbl(n_cpe) * dbl(s.d) * eb;
  t.sample_read_s = sample_bytes / mc.dma_bandwidth +
                    dbl(n_cpe) * mc.dma_latency;
  const double centroid_bytes = dbl(mc.cpes_per_cg) * dbl(s.k) * dbl(s.d) * eb;
  t.centroid_stream_s = centroid_bytes / mc.dma_bandwidth;
  t.dma_bytes += static_cast<std::uint64_t>(
      (sample_bytes + centroid_bytes) * mc.num_cgs());

  // Assign: each CPE scores k full-width rows per sample.
  t.compute_s = dbl(n_cpe) * dbl(s.k) * mc.assign_row_seconds(s.d);
  t.flops = s.n * s.k * s.d * 2;

  // Update: intra-CG accumulator reduction, then machine-wide AllReduce.
  const std::size_t accum_bytes = (s.k * s.d + s.k) * eb;
  t.mesh_comm_s = reg.allreduce_time(accum_bytes, mc.cpes_per_cg);
  if (hier) {
    const simarch::CollectiveCharge charge = topo.hier_allreduce_charge(
        accum_bytes, 0, mc.num_cgs(), mc.collective_crossover_bytes());
    t.net_comm_s = charge.seconds;
    t.net_crossing_bytes = charge.crossing_bytes;
  } else {
    t.net_comm_s = topo.allreduce_time(accum_bytes, 0, mc.num_cgs());
    t.net_crossing_bytes =
        topo.flat_allreduce_crossing_bytes(accum_bytes, 0, mc.num_cgs());
  }
  t.net_bytes += accum_bytes * mc.num_cgs();
  t.update_s = dbl(s.k) * dbl(s.d) * 2.0 /
                   (mc.cg_flops() * mc.compute_efficiency) +
               dbl(s.k * s.d * eb) / mc.dma_bandwidth;
  return t;
}

CostTally model_level2(const PartitionPlan& plan, const MachineConfig& mc,
                       bool hier) {
  CostTally t;
  RegComm reg(mc, t);
  Topology topo(mc);
  const auto& s = plan.shape;
  const std::size_t eb = mc.elem_bytes;
  const std::size_t g = plan.m_group;
  const std::uint64_t n_grp = ceil_div(s.n, plan.num_flow_units);
  const double eff_flops = mc.cpe_flops() * mc.compute_efficiency;

  // Each sample is replicated to the m_group CPEs of its group; a CG hosts
  // cpes_per_cg/g groups, so per-CG sample traffic is cpes_per_cg * n_grp
  // rows regardless of g — but issue overhead is per transfer per CPE.
  const double sample_bytes =
      dbl(mc.cpes_per_cg) * dbl(n_grp) * dbl(s.d) * eb;
  t.sample_read_s = sample_bytes / mc.dma_bandwidth +
                    dbl(n_grp) * mc.dma_latency;
  t.dma_bytes += static_cast<std::uint64_t>(sample_bytes * mc.num_cgs());

  if (plan.ldm.resident) {
    const double slice_bytes =
        dbl(mc.cpes_per_cg) * dbl(plan.k_local) * dbl(s.d) * eb;
    t.centroid_stream_s = slice_bytes / mc.dma_bandwidth;
    t.dma_bytes += static_cast<std::uint64_t>(slice_bytes * mc.num_cgs());
  } else {
    const double per_cpe_bytes = streamed_centroid_bytes(
        n_grp, plan.k_local, s.d, s.d, plan.ldm.tile_rows, eb);
    t.centroid_stream_s =
        dbl(mc.cpes_per_cg) * per_cpe_bytes / mc.dma_bandwidth;
    t.dma_bytes += static_cast<std::uint64_t>(
        dbl(mc.cpes_per_cg) * per_cpe_bytes * mc.num_cgs());
  }

  // Every CPE scores its slice against each of its group's samples.
  t.compute_s = dbl(n_grp) * dbl(plan.k_local) * mc.assign_row_seconds(s.d);
  t.flops = s.n * s.k * s.d * 2;

  // Per-sample argmin combine across the group's CPEs (register buses,
  // groups operate in parallel), plus the update-phase reductions: same-
  // slice CPEs across the CG's groups, then the machine-wide AllReduce.
  t.mesh_comm_s = dbl(n_grp) * reg.allreduce_time(kMinLocBytes, g) +
                  reg.allreduce_time(plan.k_local * s.d * eb,
                                     mc.cpes_per_cg / g);
  const std::size_t accum_bytes = (s.k * s.d + s.k) * eb;
  if (hier) {
    const simarch::CollectiveCharge charge = topo.hier_allreduce_charge(
        accum_bytes, 0, mc.num_cgs(), mc.collective_crossover_bytes());
    t.net_comm_s = charge.seconds;
    t.net_crossing_bytes = charge.crossing_bytes;
  } else {
    t.net_comm_s = topo.allreduce_time(accum_bytes, 0, mc.num_cgs());
    t.net_crossing_bytes =
        topo.flat_allreduce_crossing_bytes(accum_bytes, 0, mc.num_cgs());
  }
  t.net_bytes += accum_bytes * mc.num_cgs();
  t.update_s = dbl(plan.k_local) * dbl(s.d) * 2.0 / eff_flops +
               dbl(s.k * s.d * eb) / mc.dma_bandwidth;
  return t;
}

CostTally model_level3(const PartitionPlan& plan, const MachineConfig& mc,
                       Placement placement, bool hier) {
  CostTally t;
  RegComm reg(mc, t);
  Topology topo(mc);
  const auto& s = plan.shape;
  const std::size_t eb = mc.elem_bytes;
  const std::size_t p = plan.mprime_group;
  const std::size_t cg_groups = plan.num_flow_units;
  const std::uint64_t n_cgg = ceil_div(s.n, cg_groups);
  const double eff_flops = mc.cpe_flops() * mc.compute_efficiency;

  // Each CG of a group reads the full sample, its 64 CPEs taking d_local
  // each; per-CG traffic is n_cgg rows of d elements.
  const double sample_bytes = dbl(n_cgg) * dbl(s.d) * eb;
  t.sample_read_s = sample_bytes / mc.dma_bandwidth +
                    dbl(n_cgg) * mc.dma_latency;
  t.dma_bytes += static_cast<std::uint64_t>(sample_bytes * mc.num_cgs());

  if (plan.ldm.resident) {
    const double slice_bytes = dbl(plan.k_local) * dbl(s.d) * eb;
    t.centroid_stream_s = slice_bytes / mc.dma_bandwidth;
    t.dma_bytes += static_cast<std::uint64_t>(slice_bytes * mc.num_cgs());
  } else {
    // Per CG: its 64 CPEs stream d_local-wide rows; aggregate row width d.
    const double per_cg_bytes = streamed_centroid_bytes(
        n_cgg, plan.k_local, s.d, s.d, plan.ldm.tile_rows, eb);
    t.centroid_stream_s = per_cg_bytes / mc.dma_bandwidth;
    t.dma_bytes +=
        static_cast<std::uint64_t>(per_cg_bytes * mc.num_cgs());
  }

  // Each CPE scores k_local rows of its narrow d_local slice per sample —
  // the per-row overhead barely amortises at small d, which is Level 3's
  // handicap left of the Fig. 7 crossover.
  t.compute_s =
      dbl(n_cgg) * dbl(plan.k_local) * mc.assign_row_seconds(plan.d_local);
  t.flops = s.n * s.k * s.d * 2;

  // Per sample: reduce k_local distance partials across the CG mesh, then
  // an argmin combine across the group's m'_group CGs over the network —
  // the d-independent cost floor that lets Level 2 win at small d.
  t.mesh_comm_s =
      dbl(n_cgg) * reg.allreduce_time(plan.k_local * eb, mc.cpes_per_cg) +
      reg.allreduce_time(plan.k_local * plan.d_local * eb, 1);
  const std::size_t xover = mc.collective_crossover_bytes();
  const AllreduceModel assign_combine = worst_group_allreduce(
      topo, kMinLocBytes, cg_groups, p, placement, hier, xover);
  t.net_comm_s = dbl(n_cgg) * assign_combine.seconds;
  t.net_crossing_bytes += n_cgg * assign_combine.crossing_bytes;
  t.net_bytes += static_cast<std::uint64_t>(dbl(n_cgg) * kMinLocBytes *
                                            dbl(p) * dbl(cg_groups));

  // Update: AllReduce the slice accumulators across same-slice CGs.
  const std::size_t accum_bytes = (plan.k_local * s.d + plan.k_local) * eb;
  const AllreduceModel update_combine = cross_group_allreduce(
      topo, accum_bytes, cg_groups, p, placement, hier, xover);
  t.net_comm_s += update_combine.seconds;
  t.net_crossing_bytes += update_combine.crossing_bytes;
  t.net_bytes += accum_bytes * mc.num_cgs();
  t.update_s = dbl(plan.k_local) * dbl(plan.d_local) * 2.0 / eff_flops +
               dbl(plan.k_local * s.d * eb) / mc.dma_bandwidth;
  return t;
}

}  // namespace

CostTally model_iteration(const PartitionPlan& plan,
                          const MachineConfig& machine, Placement placement,
                          bool hier_collectives) {
  machine.validate();
  SWHKM_REQUIRE(plan.num_cgs == machine.num_cgs() &&
                    plan.cpes_per_cg == machine.cpes_per_cg,
                "plan was made for a different machine");
  switch (plan.level) {
    case Level::kLevel1:
      return model_level1(plan, machine, hier_collectives);
    case Level::kLevel2:
      return model_level2(plan, machine, hier_collectives);
    case Level::kLevel3:
      return model_level3(plan, machine, placement, hier_collectives);
  }
  throw InvalidArgument("unknown level");
}

CostTally sdc_defense_overhead(const PartitionPlan& plan,
                               const MachineConfig& machine) {
  machine.validate();
  SWHKM_REQUIRE(plan.num_cgs == machine.num_cgs() &&
                    plan.cpes_per_cg == machine.cpes_per_cg,
                "plan was made for a different machine");
  CostTally t;
  Topology topo(machine);
  const auto& s = plan.shape;
  const std::size_t eb = machine.elem_bytes;

  // ABFT checksum chains: 1/8 of the level's assign-sweep compute, and the
  // per-rank scrub footprint (the full snapshot plus this rank's (sums,
  // counts) accumulator) streamed once — the same shapes the engines
  // charge, with the ungated full sweep standing in for the engines'
  // per-iteration unresolved count.
  double sweep_s = 0;
  std::size_t accum_bytes = 0;
  switch (plan.level) {
    case Level::kLevel1: {
      const std::uint64_t n_cpe = ceil_div(s.n, machine.total_cpes());
      sweep_s = dbl(n_cpe) * dbl(s.k) * machine.assign_row_seconds(s.d);
      accum_bytes = (s.k * s.d + s.k) * eb;
      break;
    }
    case Level::kLevel2: {
      const std::uint64_t n_grp = ceil_div(s.n, plan.num_flow_units);
      sweep_s =
          dbl(n_grp) * dbl(plan.k_local) * machine.assign_row_seconds(s.d);
      accum_bytes = (plan.k_local * s.d + plan.k_local) * eb;
      break;
    }
    case Level::kLevel3: {
      const std::uint64_t n_cgg = ceil_div(s.n, plan.num_flow_units);
      sweep_s = dbl(n_cgg) * dbl(plan.k_local) *
                machine.assign_row_seconds(plan.d_local);
      accum_bytes = (plan.k_local * s.d + plan.k_local) * eb;
      break;
    }
  }
  t.compute_s += sweep_s * 0.125;
  t.compute_s +=
      dbl(s.k * s.d * eb + accum_bytes) / machine.dma_bandwidth;

  // Scrub-verdict allgather (16 B CRC pair per CG) plus the
  // counts-conservation word, one extra network round per iteration.
  const std::uint64_t sdc_net = 16 * 2 * machine.num_cgs() + sizeof(double);
  t.net_comm_s += topo.allgather_time(sdc_net, 0, machine.num_cgs());
  t.net_bytes += sdc_net;
  t.net_rounds += 1;
  return t;
}

PaperFormulaTimes paper_formula_times(const PartitionPlan& plan,
                                      const MachineConfig& machine) {
  PaperFormulaTimes out;
  const auto& s = plan.shape;
  const double eb = static_cast<double>(machine.elem_bytes);
  const double B = machine.dma_bandwidth;
  const double R = machine.reg_bandwidth;
  const double M = machine.net_bandwidth;
  const double m = dbl(machine.total_cpes());
  switch (plan.level) {
    case Level::kLevel1:
      // T_read = (n*d/m + k*d)/B ; T_comm = (n/m)*((1+k)*d)/R
      out.t_read_s = (dbl(s.n) * dbl(s.d) / m + dbl(s.k) * dbl(s.d)) * eb / B;
      out.t_comm_s =
          dbl(s.n) / m * ((1.0 + dbl(s.k)) * dbl(s.d)) * eb / R;
      break;
    case Level::kLevel2: {
      const double g = dbl(plan.m_group);
      out.t_read_s =
          (dbl(s.n) * dbl(s.d) * g / m + dbl(s.k) / g * dbl(s.d)) * eb / B;
      out.t_comm_s = dbl(s.k) / g * eb / R +
                     dbl(s.n) * g / m * ((1.0 + dbl(s.k)) * dbl(s.d)) * eb / M;
      break;
    }
    case Level::kLevel3: {
      const double p = dbl(plan.mprime_group);
      const double cpes = dbl(machine.cpes_per_cg);
      out.t_read_s = (dbl(s.n) * dbl(s.d) * p / m +
                      dbl(s.k) / p * dbl(s.d) / cpes) *
                     eb / B;
      out.t_comm_s = (dbl(s.k) / p +
                      dbl(s.n) * p / m * ((1.0 + dbl(s.k)) * dbl(s.d))) *
                     eb / M;
      break;
    }
  }
  return out;
}

}  // namespace swhkm::core
