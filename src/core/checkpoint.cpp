#include "core/checkpoint.hpp"

#include <cstring>
#include <fstream>

#include "core/lloyd.hpp"
#include "core/metrics.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/fileio.hpp"

namespace swhkm::core {

namespace {
constexpr char kMagic[4] = {'S', 'W', 'K', 'C'};
// v2: pad[7] of the v1 header gave way to pad[3] + a CRC-32 over the
// payload (centroids then assignments), so torn or bit-flipped files are
// rejected instead of silently resuming from garbage. v1 files (no CRC)
// are rejected too: a robustness-hardened reader cannot vouch for them.
constexpr std::uint32_t kVersion = 2;

struct Header {
  char magic[4];
  std::uint32_t version;
  std::uint64_t k;
  std::uint64_t d;
  std::uint64_t n;
  std::uint64_t iterations;
  std::uint8_t converged;
  std::uint8_t pad[3];
  std::uint32_t payload_crc;
  double inertia;
};
static_assert(sizeof(Header) == 56);

std::uint32_t result_payload_crc(const KmeansResult& result) {
  const auto flat = result.centroids.flat();
  std::uint32_t crc = util::crc32(std::as_bytes(flat));
  return util::crc32(
      std::as_bytes(std::span<const std::uint32_t>(result.assignments)), crc);
}
}  // namespace

void save_checkpoint(const KmeansResult& result, const std::string& path) {
  SWHKM_REQUIRE(!result.centroids.empty(), "cannot checkpoint empty result");
  Header header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.k = result.centroids.rows();
  header.d = result.centroids.cols();
  header.n = result.assignments.size();
  header.iterations = result.iterations;
  header.converged = result.converged ? 1 : 0;
  header.payload_crc = result_payload_crc(result);
  header.inertia = result.inertia;
  // Write-to-temp + fsync + atomic rename: a crash mid-write leaves either
  // the previous checkpoint or none — never a torn file under `path`.
  util::write_file_atomic(path, std::ios::binary, [&](std::ofstream& file) {
    file.write(reinterpret_cast<const char*>(&header), sizeof(header));
    const auto flat = result.centroids.flat();
    file.write(reinterpret_cast<const char*>(flat.data()),
               static_cast<std::streamsize>(flat.size_bytes()));
    file.write(reinterpret_cast<const char*>(result.assignments.data()),
               static_cast<std::streamsize>(result.assignments.size() *
                                            sizeof(std::uint32_t)));
  });
}

KmeansResult load_checkpoint(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  SWHKM_REQUIRE(static_cast<bool>(file), "cannot open " + path + " to read");
  Header header{};
  file.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!file || std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    throw CorruptCheckpointError(path + " is not a SWKC checkpoint");
  }
  if (header.version != kVersion) {
    throw CorruptCheckpointError(path + " has unsupported checkpoint version " +
                                 std::to_string(header.version));
  }
  // Shape sanity against the real file size before any allocation. The
  // per-array bounds come first so the products cannot overflow; the
  // payload must then match the declared shapes *exactly* — checking the
  // arrays independently would accept a header whose combined size
  // exceeds (or undershoots) the file.
  file.seekg(0, std::ios::end);
  const std::uint64_t payload =
      static_cast<std::uint64_t>(file.tellg()) - sizeof(Header);
  file.seekg(sizeof(Header), std::ios::beg);
  if (header.d == 0 || header.k > payload / sizeof(float) / header.d ||
      header.n > payload / sizeof(std::uint32_t) ||
      header.k * header.d * sizeof(float) +
              header.n * sizeof(std::uint32_t) !=
          payload) {
    throw CorruptCheckpointError(path + " declares shapes that do not match "
                                        "the file size");
  }
  KmeansResult result;
  result.centroids = util::Matrix(header.k, header.d);
  const auto flat = result.centroids.flat();
  file.read(reinterpret_cast<char*>(flat.data()),
            static_cast<std::streamsize>(flat.size_bytes()));
  result.assignments.resize(header.n);
  file.read(reinterpret_cast<char*>(result.assignments.data()),
            static_cast<std::streamsize>(header.n * sizeof(std::uint32_t)));
  if (!file) {
    throw CorruptCheckpointError(path + " is truncated");
  }
  if (result_payload_crc(result) != header.payload_crc) {
    throw CorruptCheckpointError(path + " failed its payload CRC check — "
                                        "the checkpoint is corrupt");
  }
  result.iterations = header.iterations;
  result.converged = header.converged != 0;
  result.inertia = header.inertia;
  return result;
}

KmeansResult resume_lloyd(const data::Dataset& dataset,
                          const KmeansConfig& config,
                          const KmeansResult& checkpoint) {
  SWHKM_REQUIRE(checkpoint.centroids.rows() == config.k,
                "checkpoint k does not match config");
  SWHKM_REQUIRE(checkpoint.centroids.cols() == dataset.d(),
                "checkpoint dimensionality does not match dataset");
  // max_iterations is the *total* budget across the interrupted and the
  // resumed leg: deduct what the checkpoint already spent, so a resumed
  // run never does more work than an uninterrupted one.
  const std::size_t spent = checkpoint.iterations;
  if (spent >= config.max_iterations) {
    // Budget already exhausted — report the checkpoint state against this
    // dataset without running further iterations.
    KmeansResult result;
    result.centroids = checkpoint.centroids;
    result.assignments = assign_serial(dataset, result.centroids);
    result.iterations = spent;
    result.converged = checkpoint.converged;
    result.inertia = inertia(dataset, result.centroids, result.assignments);
    return result;
  }
  KmeansConfig remaining = config;
  remaining.max_iterations = config.max_iterations - spent;
  KmeansResult result =
      lloyd_serial_from(dataset, remaining, checkpoint.centroids);
  result.iterations += spent;
  return result;
}

}  // namespace swhkm::core
