#include "core/recovery.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <limits>
#include <optional>
#include <thread>
#include <utility>

#include "core/checkpoint.hpp"
#include "core/init.hpp"
#include "core/level1.hpp"
#include "core/level2.hpp"
#include "core/level3.hpp"
#include "core/planner.hpp"
#include "simarch/trace.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace swhkm::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// One degradation step: halve the node count, then the CGs per node.
/// nullopt once the machine is a single core group — nothing left to shed.
std::optional<simarch::MachineConfig> shrink(
    const simarch::MachineConfig& machine) {
  simarch::MachineConfig out = machine;
  if (out.nodes > 1) {
    out.nodes = (out.nodes + 1) / 2;
    return out;
  }
  if (out.cgs_per_node > 1) {
    out.cgs_per_node = (out.cgs_per_node + 1) / 2;
    return out;
  }
  return std::nullopt;
}

KmeansResult run_leg(Level level, const data::Dataset& dataset,
                     const KmeansConfig& config,
                     const simarch::MachineConfig& machine,
                     const PartitionPlan& plan, util::Matrix centroids) {
  switch (level) {
    case Level::kLevel1:
      return run_level1(dataset, config, machine, plan, std::move(centroids));
    case Level::kLevel2:
      return run_level2(dataset, config, machine, plan, std::move(centroids));
    case Level::kLevel3:
      return run_level3(dataset, config, machine, plan, std::move(centroids));
  }
  throw InvalidArgument("unknown level");
}

}  // namespace

RecoveryDriver::RecoveryDriver(simarch::MachineConfig machine,
                               RecoveryOptions options)
    : machine_(std::move(machine)), options_(std::move(options)) {
  machine_.validate();
  SWHKM_REQUIRE(!options_.checkpoint_path.empty(),
                "RecoveryDriver needs a checkpoint path");
}

KmeansResult RecoveryDriver::run(Level level, const data::Dataset& dataset,
                                 const KmeansConfig& config) {
  report_ = RecoveryReport{};
  const ProblemShape shape{dataset.n(), config.k, dataset.d()};
  const std::size_t cadence = std::max<std::size_t>(1, config.checkpoint_every);

  auto plan_on = [&](const simarch::MachineConfig& machine)
      -> std::optional<PartitionPlan> {
    const auto choice = best_plan_for_level(level, shape, machine);
    if (!choice) {
      return std::nullopt;
    }
    return choice->plan;
  };
  auto initial_plan = plan_on(machine_);
  if (!initial_plan) {
    throw InfeasibleError(std::string(level_name(level)) +
                          " cannot run this shape on " + machine_.summary());
  }
  PartitionPlan plan = *initial_plan;

  // Host-side recovery metrics land in the registry's host shard — the
  // driver is not an SPMD rank, but its retries and reload costs belong in
  // the same merged snapshot as the engines' counters.
  telemetry::MetricsShard* const host_shard =
      config.telemetry != nullptr ? &config.telemetry->metrics().host_shard()
                                  : nullptr;
  telemetry::FlightRing* const host_ring =
      host_shard != nullptr ? host_shard->flight() : nullptr;
  postmortems_.clear();

  util::Matrix centroids = init_centroids(dataset, config);
  std::size_t done = 0;
  bool converged = false;
  bool have_checkpoint = false;
  std::vector<IterationStats> history;
  simarch::CostTally total_cost;
  AccelStats accel;
  KmeansResult leg;
  // Failure bookkeeping for the in-flight leg: attempts burned at the
  // current topology, and the retry count / recovery wall clock to stamp
  // onto the first IterationStats of the next successful leg.
  std::size_t failed_attempts = 0;
  std::uint32_t retries_pending = 0;
  double recover_pending_s = 0;
  // Localized-SDC bookkeeping: in-memory retries burned on the in-flight
  // leg (bounded by options_.max_sdc_retries), the count to stamp onto the
  // next good leg's first IterationStats, and the inertia floor the
  // monotonicity invariant checks each finished leg against (Lloyd never
  // increases the objective, so a rise can only be an undetected
  // corruption that slipped into the published state).
  std::size_t sdc_retries_this_leg = 0;
  std::uint32_t sdc_retries_pending = 0;
  double inertia_floor = std::numeric_limits<double>::infinity();

  while (!converged && done < config.max_iterations) {
    KmeansConfig leg_config = config;
    leg_config.max_iterations = std::min(cadence, config.max_iterations - done);
    leg_config.iteration_base = done;
    const auto attempt_start = std::chrono::steady_clock::now();
    try {
      leg = run_leg(level, dataset, leg_config, machine_, plan, centroids);
      if (config.sdc_checks &&
          leg.inertia > inertia_floor + std::abs(inertia_floor) * 1e-9) {
        throw SilentCorruptionError(
            "sdc: Lloyd inertia rose across a leg (" +
            std::to_string(inertia_floor) + " -> " +
            std::to_string(leg.inertia) +
            ") — the objective is monotone, so corrupt state reached the "
            "published centroids undetected");
      }
    } catch (const RuntimeFault& fault) {
      const double wall = seconds_since(attempt_start);
      const bool sdc_fault =
          dynamic_cast<const SilentCorruptionError*>(&fault) != nullptr ||
          dynamic_cast<const CorruptMessageError*>(&fault) != nullptr;
      report_.faults += 1;
      report_.recover_wall_s += wall;
      report_.events.push_back(
          FaultEvent{done, fault.what(), wall, sdc_fault});
      recover_pending_s += wall;
      if (config.trace != nullptr) {
        config.trace->record_fault(static_cast<std::uint32_t>(done),
                                   fault.what(), wall);
      }
      if (host_shard != nullptr) {
        host_shard->counter("recovery.faults").add(1);
        host_shard->histogram("recovery.attempt_wall_s").observe(wall);
      }
      if (host_ring != nullptr) {
        host_ring->record(telemetry::FlightEventKind::kFault,
                          static_cast<std::uint32_t>(done),
                          sdc_fault ? 1 : 0);
      }
      // Forensics: freeze every rank's flight ring *now* — the dead leg's
      // threads have joined (the fault propagated out of run_spmd), and a
      // retry would start overwriting the rings with healthy events.
      if (config.telemetry != nullptr &&
          config.telemetry->metrics().flight_armed() &&
          postmortems_.size() < kMaxPostmortems) {
        telemetry::FaultPostmortem pm;
        pm.iteration = static_cast<std::uint32_t>(done);
        pm.what = fault.what();
        pm.ranks = config.telemetry->metrics().flight_snapshots();
        postmortems_.push_back(std::move(pm));
      }
      if (sdc_fault) {
        report_.sdc_detections += 1;
        if (host_shard != nullptr) {
          host_shard->counter("recovery.sdc_detections").add(1);
        }
        if (sdc_retries_this_leg < options_.max_sdc_retries) {
          // Localized recovery: the detectors fire before corrupt bits can
          // reach the published state and the engines took the centroids
          // by value, so the driver's pre-leg copy is still valid — re-run
          // just this leg in memory, no checkpoint rollback, no charge
          // against the fail-stop retry budget.
          sdc_retries_this_leg += 1;
          sdc_retries_pending += 1;
          report_.localized_retries += 1;
          if (host_shard != nullptr) {
            host_shard->counter("recovery.localized_retries").add(1);
          }
          SWHKM_INFO_AT("recovery", -1, done)
              << "localized SDC retry " << sdc_retries_this_leg
              << ": re-running the leg from the in-memory centroids";
          continue;
        }
      }
      failed_attempts += 1;
      if (failed_attempts > options_.max_retries) {
        // Retries at this topology are exhausted — shed hardware and
        // re-plan, or concede. Shrinking keeps going until the level is
        // feasible again (a halved machine can briefly be infeasible for
        // the chosen group sizes) or the floor is hit.
        bool replanned = false;
        if (options_.allow_degradation) {
          simarch::MachineConfig candidate = machine_;
          while (auto smaller = shrink(candidate)) {
            candidate = *smaller;
            if (candidate.num_cgs() < options_.min_cgs) {
              break;
            }
            if (auto next_plan = plan_on(candidate)) {
              SWHKM_INFO_AT("recovery", -1, done)
                  << "degrading from " << machine_.num_cgs() << " to "
                  << candidate.num_cgs() << " core groups";
              machine_ = candidate;
              plan = *next_plan;
              report_.replans += 1;
              report_.degraded = true;
              failed_attempts = 0;
              replanned = true;
              break;
            }
          }
        }
        if (!replanned) {
          throw;
        }
      }
      report_.retries += 1;
      retries_pending += 1;
      // Resume from the last good checkpoint — the durable anchor is the
      // authoritative state, not whatever the dead attempt left in memory.
      const auto reload_start = std::chrono::steady_clock::now();
      if (have_checkpoint) {
        KmeansResult restored = load_checkpoint(options_.checkpoint_path);
        centroids = std::move(restored.centroids);
        done = restored.iterations;
        report_.resumed_from_checkpoint = true;
      } else {
        // Fault before the first checkpoint: re-seed from scratch.
        centroids = init_centroids(dataset, config);
        done = 0;
      }
      const double reload = seconds_since(reload_start);
      SWHKM_INFO_AT("recovery", -1, done)
          << "retry " << report_.retries << ": resuming from "
          << (have_checkpoint ? "checkpoint" : "fresh seeding");
      report_.recover_wall_s += reload;
      recover_pending_s += reload;
      if (host_shard != nullptr) {
        host_shard->counter("recovery.retries").add(1);
        host_shard->histogram("recovery.reload_s").observe(reload);
      }
      sdc_retries_this_leg = 0;  // the rollback opens a fresh SDC budget
      if (options_.backoff_s > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            options_.backoff_s * static_cast<double>(failed_attempts + 1)));
      }
      continue;
    }

    // Leg finished: fold it into the run and drop a checkpoint at the
    // iteration boundary.
    done += leg.iterations;
    converged = leg.converged;
    centroids = leg.centroids;
    total_cost += leg.cost;
    accel.distance_computations += leg.accel.distance_computations;
    accel.lloyd_equivalent += leg.accel.lloyd_equivalent;
    accel.centroid_distance_computations +=
        leg.accel.centroid_distance_computations;
    if (!leg.history.empty() && retries_pending > 0) {
      leg.history.front().retries = retries_pending;
      leg.history.front().recover_s = recover_pending_s;
    }
    if (!leg.history.empty() && sdc_retries_pending > 0) {
      leg.history.front().sdc_retries = sdc_retries_pending;
    }
    history.insert(history.end(), leg.history.begin(), leg.history.end());
    retries_pending = 0;
    recover_pending_s = 0;
    failed_attempts = 0;
    sdc_retries_pending = 0;
    sdc_retries_this_leg = 0;
    inertia_floor = leg.inertia;

    KmeansResult snapshot;
    snapshot.centroids = centroids;
    snapshot.assignments = leg.assignments;
    snapshot.iterations = done;
    snapshot.converged = converged;
    snapshot.inertia = leg.inertia;
    save_checkpoint(snapshot, options_.checkpoint_path);
    have_checkpoint = true;
    if (host_ring != nullptr) {
      host_ring->record(telemetry::FlightEventKind::kCheckpointLeg,
                        static_cast<std::uint32_t>(done), 0, leg.iterations);
    }
  }

  KmeansResult result = std::move(leg);
  result.centroids = std::move(centroids);
  result.iterations = done;
  result.converged = converged;
  result.cost = total_cost;
  result.history = std::move(history);
  result.accel = accel;
  report_.final_cgs = machine_.num_cgs();

  if (!options_.report_path.empty()) {
    telemetry::RunReport rep;
    rep.run_id = std::string("recovery-") + level_name(level);
    rep.shape = shape;
    rep.level = level;
    rep.config = config;
    rep.machine_summary = machine_.summary();
    rep.plan_summary = plan.describe();
    rep.set_result(result);
    for (const FaultEvent& e : report_.events) {
      rep.faults.push_back(simarch::FaultMarker{
          static_cast<std::uint32_t>(e.iteration), e.what, e.wall_s});
    }
    rep.has_recovery = true;
    rep.recovery = report_;
    rep.postmortems = postmortems_;
    if (config.trace != nullptr) {
      rep.has_critical_path = true;
      rep.critical_path = telemetry::analyze_critical_path(*config.trace);
    }
    if (config.telemetry != nullptr) {
      rep.metrics = config.telemetry->metrics().merged();
    }
    std::ofstream out(options_.report_path);
    rep.write_json(out);
  }
  return result;
}

}  // namespace swhkm::core
