#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "util/matrix.hpp"

namespace swhkm::core {

/// The paper's objective O(C): mean squared distance from each sample to
/// its assigned centroid.
double inertia(const data::Dataset& dataset, const util::Matrix& centroids,
               const std::vector<std::uint32_t>& assignments);

/// Count of samples per cluster.
std::vector<std::size_t> cluster_sizes(
    const std::vector<std::uint32_t>& assignments, std::size_t k);

/// Fraction of samples on which two assignments agree.
double assignment_agreement(const std::vector<std::uint32_t>& a,
                            const std::vector<std::uint32_t>& b);

/// Largest per-element absolute difference between two centroid matrices.
double centroid_max_abs_diff(const util::Matrix& a, const util::Matrix& b);

/// Adjusted Rand Index between two labelings (label values need not
/// align); 1 = identical partitions, ~0 = random agreement. Used to score
/// clusterings against known generator memberships.
double adjusted_rand_index(const std::vector<std::uint32_t>& a,
                           const std::vector<std::uint32_t>& b);

/// Mean silhouette coefficient over a deterministic subsample of at most
/// `max_samples` points (full silhouette is O(n^2)). Range [-1, 1];
/// higher = tighter, better-separated clusters.
double silhouette_sampled(const data::Dataset& dataset,
                          const std::vector<std::uint32_t>& assignments,
                          std::size_t k, std::size_t max_samples = 512,
                          std::uint64_t seed = 1);

/// Davies–Bouldin index (lower is better): mean over clusters of the worst
/// (scatter_i + scatter_j) / centroid_distance_ij ratio.
double davies_bouldin(const data::Dataset& dataset,
                      const util::Matrix& centroids,
                      const std::vector<std::uint32_t>& assignments);

}  // namespace swhkm::core
