#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/kmeans.hpp"
#include "simarch/machine_config.hpp"

namespace swhkm::core {

/// The paper's feasibility constraints, in LDM *elements* (Section III).
/// These are the published algebra; the engines enforce the slightly
/// stricter engineering layout in LdmLayout below (which accounts for the
/// DMA double-buffering a real SW26010 kernel needs).
namespace paper {

/// C1: one sample + k centroids + k accumulators + k counters on one CPE.
bool c1(const ProblemShape& shape, std::size_t ldm_elems);
/// C2: 3d + 1 <= LDM — one sample must fit with working buffers.
bool c2(const ProblemShape& shape, std::size_t ldm_elems);
/// C3: 3k + 1 <= LDM — the centroid bookkeeping must fit.
bool c3(const ProblemShape& shape, std::size_t ldm_elems);
/// C1': Level 2 — aggregate over an m_group-CPE group.
bool c1_l2(const ProblemShape& shape, std::size_t ldm_elems,
           std::size_t m_group);
/// C3': 3k + 1 <= m_group * LDM, m_group <= 64.
bool c3_l2(const ProblemShape& shape, std::size_t ldm_elems,
           std::size_t m_group, std::size_t cpes_per_cg);
/// C1'': d(1+2k)+k <= m * LDM — the paper's headline breakthrough bound.
bool c1_l3(const ProblemShape& shape, std::size_t ldm_elems,
           std::size_t total_cpes);
/// C2'': 3d + 1 <= 64 * LDM.
bool c2_l3(const ProblemShape& shape, std::size_t ldm_elems,
           std::size_t cpes_per_cg);
/// C3'': 3k + 1 <= m'_group * 64 * LDM.
bool c3_l3(const ProblemShape& shape, std::size_t ldm_elems,
           std::size_t mprime_group, std::size_t cpes_per_cg);

}  // namespace paper

/// How one CPE's scratchpad is laid out under a plan — what the engines
/// actually allocate through LdmAllocator. `resident` means the full
/// centroid slice plus accumulators live in LDM; otherwise centroids are
/// streamed from main memory in tiles of `tile_rows`, triple-buffered
/// (tile in use, prefetch, accumulator writeback).
struct LdmLayout {
  bool resident = false;
  std::size_t tile_rows = 0;      ///< centroid rows per streamed tile
  std::size_t sample_elems = 0;   ///< sample buffer (d, or d_local for L3)
  std::size_t slice_elems = 0;    ///< resident centroid slice, 0 if streamed
  std::size_t scratch_elems = 0;  ///< counters / distance partials
  std::size_t total_elems = 0;    ///< peak LDM demand in elements
};

/// A fully resolved partition: which level, how centroids and dimensions
/// are split, and what each simulated CPE must hold.
struct PartitionPlan {
  Level level = Level::kLevel1;
  ProblemShape shape;

  std::size_t num_cgs = 0;      ///< CGs participating
  std::size_t cpes_per_cg = 0;

  /// Level 2: CPEs jointly holding the k centroids (1 for other levels).
  std::size_t m_group = 1;
  /// Level 3: CGs jointly holding the k centroids (1 for other levels).
  std::size_t mprime_group = 1;

  /// Parallel dataflow units the samples are block-partitioned across:
  /// CPEs (L1), CPE groups (L2), CG groups (L3).
  std::size_t num_flow_units = 0;
  /// Centroids per holder: k (L1), ceil(k/m_group) per CPE (L2),
  /// ceil(k/m'_group) per CG (L3).
  std::size_t k_local = 0;
  /// Dimensions per CPE: d for L1/L2, ceil(d/cpes_per_cg) for L3.
  std::size_t d_local = 0;

  LdmLayout ldm;

  std::string describe() const;
};

struct Feasibility {
  bool ok = false;
  std::string reason;  ///< which constraint failed, with numbers
};

/// Check whether `level` can run `shape` on `machine` with the given group
/// sizes (0 = choose the smallest workable value automatically).
Feasibility check_level(Level level, const ProblemShape& shape,
                        const simarch::MachineConfig& machine,
                        std::size_t m_group = 0, std::size_t mprime_group = 0);

/// Resolve a plan; throws InfeasibleError (with the failing constraint)
/// when the combination cannot run.
PartitionPlan make_plan(Level level, const ProblemShape& shape,
                        const simarch::MachineConfig& machine,
                        std::size_t m_group = 0, std::size_t mprime_group = 0);

/// Group sizes worth considering on this machine: divisors of cpes_per_cg
/// for m_group, divisors of num_cgs for m'_group.
std::vector<std::size_t> candidate_m_groups(
    const simarch::MachineConfig& machine);
std::vector<std::size_t> candidate_mprime_groups(
    const simarch::MachineConfig& machine);

/// Per-sample LDM scratch of the GEMM-formulated sweep, on top of the
/// argmin records: the tau-bounded candidate buffer (kGemmCandidates x 4-byte
/// ids), the cached ||x||^2 and the running top-two uppers (3 doubles), and
/// the candidate count.
inline constexpr std::size_t kGemmSampleScratchBytes = 60;

/// Validate a requested assign-phase tile size against the machine: a
/// tile's argmin records (24 bytes each — the top-two MinLoc2 width, the
/// larger of the two record kinds the engines batch) must fit the CG's
/// aggregate scratchpad, where they time-share with the plan's per-CPE
/// stream buffers. Level 3's s-step deferred reduction holds `sstep_tiles`
/// consecutive tiles' records live at once, and the GEMM sweep adds its
/// per-sample scratch plus the plan's local slice of the centroid-norm
/// cache (k_local doubles). Throws InfeasibleError (the planner's
/// rejection path — callers get a diagnosable error, not an assert) for
/// zero or oversized requests; returns the validated value otherwise.
std::size_t resolve_tile_samples(std::size_t requested,
                                 const PartitionPlan& plan,
                                 const simarch::MachineConfig& machine,
                                 std::size_t sstep_tiles = 1,
                                 bool gemm_assign = true);

/// Whether the GEMM sweep's candidate/norm scratch fits in LDM alongside
/// the tile's records. The GEMM kernel is an optimisation with
/// byte-identical output, so the engines consult this and fall back to the
/// multi-chain kernel — instead of rejecting a configuration that is
/// feasible without the scratch — when it returns false.
bool gemm_scratch_fits(std::size_t tile_samples, const PartitionPlan& plan,
                       const simarch::MachineConfig& machine,
                       std::size_t sstep_tiles = 1);

/// Largest k (resp. d) the level can handle on `machine` with the other
/// two shape parameters fixed — powers Table I and the capability bench.
std::uint64_t max_k_for_level(Level level, std::uint64_t d,
                              const simarch::MachineConfig& machine);
std::uint64_t max_d_for_level(Level level, std::uint64_t k,
                              const simarch::MachineConfig& machine);

}  // namespace swhkm::core
