#include "core/hamerly.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/engine_util.hpp"
#include "core/init.hpp"
#include "core/metrics.hpp"
#include "util/error.hpp"

namespace swhkm::core {

namespace {

double euclidean(std::span<const float> a, std::span<const float> b) {
  return std::sqrt(detail::squared_distance(a, b));
}

}  // namespace

KmeansResult hamerly_serial_from(const data::Dataset& dataset,
                                 const KmeansConfig& config,
                                 util::Matrix centroids, AccelStats* stats) {
  SWHKM_REQUIRE(centroids.rows() == config.k, "centroid count must equal k");
  SWHKM_REQUIRE(centroids.cols() == dataset.d(),
                "centroid dimensionality must match the data");
  const std::size_t n = dataset.n();
  const std::size_t k = config.k;

  AccelStats local_stats;
  AccelStats& st = stats ? *stats : local_stats;

  KmeansResult result;
  result.assignments.assign(n, 0);
  std::vector<double> upper(n, 0.0);
  std::vector<double> lower(n, 0.0);  // bound on the second-closest centroid
  std::vector<double> drift(k, 0.0);
  std::vector<double> safe(k, 0.0);  // half distance to nearest other centre
  detail::UpdateAccumulator acc(k, dataset.d());
  util::Matrix previous = centroids;

  auto scan_all = [&](std::size_t i) {
    const auto x = dataset.sample(i);
    double best = std::numeric_limits<double>::max();
    double second = std::numeric_limits<double>::max();
    std::uint32_t best_j = 0;
    for (std::uint32_t j = 0; j < k; ++j) {
      const double dist = euclidean(x, centroids.row(j));
      ++st.distance_computations;
      if (dist < best) {
        second = best;
        best = dist;
        best_j = j;
      } else if (dist < second) {
        second = dist;
      }
    }
    result.assignments[i] = best_j;
    upper[i] = best;
    lower[i] = second;
  };

  auto refresh_safe_radii = [&] {
    for (std::size_t a = 0; a < k; ++a) {
      safe[a] = std::numeric_limits<double>::max();
      for (std::size_t b = 0; b < k; ++b) {
        if (a == b) {
          continue;
        }
        if (b > a) {
          ++st.centroid_distance_computations;
        }
        safe[a] = std::min(safe[a],
                           euclidean(centroids.row(a), centroids.row(b)) / 2);
      }
    }
  };

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    acc.reset();
    st.lloyd_equivalent += static_cast<std::uint64_t>(n) * k;
    if (k > 1) {
      refresh_safe_radii();
    } else {
      safe[0] = std::numeric_limits<double>::max();
    }

    // The lower bound tracks the second-closest centroid, which is never
    // the assigned one — so it only needs to absorb the largest drift
    // among the *other* centroids. The top-two digest makes that
    // exclusion O(1) per sample.
    const detail::DriftDigest digest = detail::drift_digest(drift);

    for (std::size_t i = 0; i < n; ++i) {
      if (iter == 0) {
        scan_all(i);
      } else {
        const std::uint32_t a = result.assignments[i];
        upper[i] += drift[a];
        lower[i] -= detail::drift_excluding(digest, a);
        const double threshold = std::max(safe[a], lower[i]);
        if (upper[i] > threshold) {
          // Tighten the upper bound; rescan only if still unsafe.
          upper[i] = euclidean(dataset.sample(i), centroids.row(a));
          ++st.distance_computations;
          if (upper[i] > threshold) {
            scan_all(i);
          }
        }
      }
      acc.add_sample(result.assignments[i], dataset.sample(i));
    }

    previous = centroids;
    const detail::UpdateOutcome outcome =
        detail::apply_update(centroids, acc.sums, acc.counts);
    const double shift = outcome.shift;
    result.empty_clusters = outcome.empty_clusters;
    for (std::uint32_t j = 0; j < k; ++j) {
      drift[j] = euclidean(previous.row(j), centroids.row(j));
    }
    result.iterations = iter + 1;
    result.history.push_back({shift, 0.0});
    if (shift <= config.tolerance) {
      result.converged = true;
      break;
    }
  }

  detail::warn_empty_clusters(result.empty_clusters, "hamerly");
  result.inertia = inertia(dataset, centroids, result.assignments);
  result.centroids = std::move(centroids);
  return result;
}

KmeansResult hamerly_serial(const data::Dataset& dataset,
                            const KmeansConfig& config, AccelStats* stats) {
  return hamerly_serial_from(dataset, config, init_centroids(dataset, config),
                             stats);
}

}  // namespace swhkm::core
