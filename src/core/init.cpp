#include "core/init.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace swhkm::core {

namespace {

util::Matrix take_rows(const data::Dataset& dataset,
                       const std::vector<std::size_t>& rows) {
  util::Matrix centroids(rows.size(), dataset.d());
  for (std::size_t j = 0; j < rows.size(); ++j) {
    const auto src = dataset.sample(rows[j]);
    std::copy(src.begin(), src.end(), centroids.row(j).begin());
  }
  return centroids;
}

util::Matrix init_first_k(const data::Dataset& dataset, std::size_t k) {
  std::vector<std::size_t> rows(k);
  for (std::size_t j = 0; j < k; ++j) {
    rows[j] = j;
  }
  return take_rows(dataset, rows);
}

util::Matrix init_random(const data::Dataset& dataset, std::size_t k,
                         std::uint64_t seed) {
  // Partial Fisher-Yates over sample indices: k distinct rows.
  util::Xoshiro256 rng(seed);
  std::vector<std::size_t> indices(dataset.n());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    indices[i] = i;
  }
  std::vector<std::size_t> rows(k);
  for (std::size_t j = 0; j < k; ++j) {
    const std::size_t pick = j + rng.below(indices.size() - j);
    std::swap(indices[j], indices[pick]);
    rows[j] = indices[j];
  }
  return take_rows(dataset, rows);
}

double squared_distance(std::span<const float> a, std::span<const float> b) {
  double sum = 0;
  for (std::size_t u = 0; u < a.size(); ++u) {
    const double diff = static_cast<double>(a[u]) - static_cast<double>(b[u]);
    sum += diff * diff;
  }
  return sum;
}

util::Matrix init_plus_plus(const data::Dataset& dataset, std::size_t k,
                            std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::size_t> rows;
  rows.reserve(k);
  std::vector<char> taken(dataset.n(), 0);
  rows.push_back(rng.below(dataset.n()));
  taken[rows.back()] = 1;
  std::vector<double> nearest(dataset.n(),
                              std::numeric_limits<double>::max());
  while (rows.size() < k) {
    const auto latest = dataset.sample(rows.back());
    double total = 0;
    for (std::size_t i = 0; i < dataset.n(); ++i) {
      nearest[i] =
          std::min(nearest[i], squared_distance(dataset.sample(i), latest));
      total += nearest[i];
    }
    if (total <= 0) {
      // Degenerate data (every point coincides with some seed): fall back
      // to a row not already chosen, so the k seeds are k distinct rows —
      // the same guarantee init_random gives — instead of possibly
      // repeating an index. Terminates because k <= n.
      std::size_t pick = rng.below(dataset.n());
      while (taken[pick]) {
        pick = rng.below(dataset.n());
      }
      rows.push_back(pick);
      taken[pick] = 1;
      continue;
    }
    // Already-chosen rows have nearest == 0 and thus zero selection
    // weight, but FP edge cases (target exactly 0, or rounding leaving
    // target positive after the full scan) could still land on one — so
    // skip taken rows during the scan and keep the last untaken row as
    // the rounding fallback.
    std::size_t fallback = 0;
    for (std::size_t i = 0; i < dataset.n(); ++i) {
      if (!taken[i]) {
        fallback = i;
      }
    }
    double target = rng.uniform() * total;
    std::size_t chosen = fallback;
    for (std::size_t i = 0; i < dataset.n(); ++i) {
      if (taken[i]) {
        continue;
      }
      target -= nearest[i];
      if (target <= 0) {
        chosen = i;
        break;
      }
    }
    rows.push_back(chosen);
    taken[chosen] = 1;
  }
  return take_rows(dataset, rows);
}

}  // namespace

util::Matrix init_centroids(const data::Dataset& dataset,
                            const KmeansConfig& config) {
  SWHKM_REQUIRE(config.k > 0, "k must be positive");
  SWHKM_REQUIRE(config.k <= dataset.n(),
                "cannot seed more centroids than samples");
  switch (config.init) {
    case InitMethod::kFirstK:
      return init_first_k(dataset, config.k);
    case InitMethod::kRandom:
      return init_random(dataset, config.k, config.seed);
    case InitMethod::kPlusPlus:
      return init_plus_plus(dataset, config.k, config.seed);
  }
  throw InvalidArgument("unknown init method");
}

}  // namespace swhkm::core
