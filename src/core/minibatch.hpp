#pragma once

#include "core/kmeans.hpp"
#include "data/dataset.hpp"

namespace swhkm::core {

/// Mini-batch k-means (Sculley, WWW'10) — the streaming/approximate
/// variant the paper's related work positions against exact large-scale
/// Lloyd (Newling & Fleuret's nested mini-batch, ref [31]). Included as a
/// baseline: it trades exactness for per-iteration cost O(b·k·d), b << n.
struct MiniBatchConfig {
  std::size_t k = 2;
  std::size_t batch_size = 256;
  std::size_t iterations = 100;
  InitMethod init = InitMethod::kRandom;
  std::uint64_t seed = 1;
  /// Stop early when the batch-estimated centroid movement stays below
  /// this for `patience` consecutive iterations (0 disables).
  double tolerance = 0;
  std::size_t patience = 5;
};

/// Run mini-batch k-means. The result's assignments/inertia come from one
/// final full assignment pass with the learned centroids.
KmeansResult minibatch_kmeans(const data::Dataset& dataset,
                              const MiniBatchConfig& config);

}  // namespace swhkm::core
