#pragma once

#include <string>

#include "core/kmeans.hpp"
#include "data/streaming.hpp"

namespace swhkm::core {

/// Out-of-core Lloyd: full exact k-means over a disk-resident SWKM file,
/// never holding more than `chunk_rows` samples in memory. Produces the
/// same trajectory as lloyd_serial on the loaded dataset (same init, same
/// update, same stop rule); only the working-set size differs.
///
/// Init methods needing global data access (kRandom, kPlusPlus) draw from
/// chunks via reservoir-style reads, deterministic in the seed.
KmeansResult lloyd_out_of_core(const data::BinaryDatasetReader& reader,
                               const KmeansConfig& config,
                               std::size_t chunk_rows = 4096);

/// Label a disk-resident dataset against fixed centroids, chunk by chunk.
std::vector<std::uint32_t> assign_out_of_core(
    const data::BinaryDatasetReader& reader, const util::Matrix& centroids,
    std::size_t chunk_rows = 4096);

}  // namespace swhkm::core
