#include "core/parallel_init.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <vector>

#include "core/engine_util.hpp"
#include "swmpi/collectives.hpp"
#include "swmpi/runtime.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace swhkm::core {

namespace detail {

util::Matrix weighted_plus_plus(const util::Matrix& candidates,
                                const std::vector<double>& weights,
                                std::size_t k, std::uint64_t seed) {
  const std::size_t m = candidates.rows();
  SWHKM_REQUIRE(m >= k, "fewer candidates than centroids");
  SWHKM_REQUIRE(weights.size() == m, "one weight per candidate");
  util::Xoshiro256 rng(seed);
  std::vector<std::size_t> chosen;
  chosen.reserve(k);

  // First pick: weight-proportional. Zero-weight candidates are skipped
  // during the scan and excluded from the rounding fallback — FP edge
  // cases (target exactly 0, or rounding leaving it positive after the
  // full scan) could otherwise land on a candidate no sample maps to
  // (mirrors the init_plus_plus fix).
  double total_weight = 0;
  std::size_t last_weighted = m - 1;
  for (std::size_t c = 0; c < m; ++c) {
    total_weight += weights[c];
    if (weights[c] > 0) {
      last_weighted = c;
    }
  }
  double target = rng.uniform() * total_weight;
  std::size_t first = last_weighted;
  for (std::size_t c = 0; c < m; ++c) {
    if (weights[c] <= 0) {
      continue;
    }
    target -= weights[c];
    if (target <= 0) {
      first = c;
      break;
    }
  }
  chosen.push_back(first);

  std::vector<double> nearest(m, std::numeric_limits<double>::max());
  while (chosen.size() < k) {
    const auto latest = candidates.row(chosen.back());
    double total = 0;
    std::size_t last_massed = m - 1;
    for (std::size_t c = 0; c < m; ++c) {
      nearest[c] = std::min(
          nearest[c], squared_distance(candidates.row(c), latest));
      if (weights[c] * nearest[c] > 0) {
        total += weights[c] * nearest[c];
        last_massed = c;
      }
    }
    std::size_t pick;
    if (total > 0) {
      // Same zero-mass skip + last-positive-mass fallback as the first
      // pick above.
      double thresh = rng.uniform() * total;
      pick = last_massed;
      for (std::size_t c = 0; c < m; ++c) {
        const double mass = weights[c] * nearest[c];
        if (mass <= 0) {
          continue;
        }
        thresh -= mass;
        if (thresh <= 0) {
          pick = c;
          break;
        }
      }
    } else {
      // All remaining mass sits on already-chosen points (duplicates):
      // fall back to weight-proportional over unchosen candidates.
      pick = chosen.back();
      for (std::size_t c = 0; c < m; ++c) {
        if (std::find(chosen.begin(), chosen.end(), c) == chosen.end()) {
          pick = c;
          break;
        }
      }
    }
    chosen.push_back(pick);
  }

  util::Matrix centroids(k, candidates.cols());
  for (std::size_t j = 0; j < k; ++j) {
    const auto src = candidates.row(chosen[j]);
    std::copy(src.begin(), src.end(), centroids.row(j).begin());
  }
  return centroids;
}

}  // namespace detail

util::Matrix parallel_init(const data::Dataset& dataset,
                           const ParallelInitConfig& config) {
  SWHKM_REQUIRE(config.k >= 1, "k must be positive");
  SWHKM_REQUIRE(config.k <= dataset.n(), "cannot seed more centroids than "
                                         "samples");
  SWHKM_REQUIRE(config.ranks >= 1, "need at least one rank");
  const std::size_t d = dataset.d();
  const double oversample =
      config.oversample > 0 ? config.oversample
                            : 2.0 * static_cast<double>(config.k);

  // Rank 0 exports the (identical-on-every-rank) candidate set and the
  // global weights here after the SPMD region.
  std::vector<float> candidate_rows;
  std::vector<double> shared_weights;
  util::Xoshiro256 seed_rng(config.seed);
  const std::size_t first_candidate = seed_rng.below(dataset.n());

  swmpi::run_spmd(config.ranks, [&](swmpi::Comm& comm) {
    const auto [begin, end] = detail::block_range(
        dataset.n(), static_cast<std::size_t>(comm.size()),
        static_cast<std::size_t>(comm.rank()));
    util::Xoshiro256 rng =
        util::Xoshiro256(config.seed).split(
            static_cast<std::uint64_t>(comm.rank()) + 1);

    // Local copy of the candidate set as a growing matrix; rank-local
    // nearest-candidate distances for the block.
    std::vector<std::vector<float>> candidates;
    auto push_candidate = [&](std::size_t i) {
      const auto row = dataset.sample(i);
      candidates.emplace_back(row.begin(), row.end());
    };
    push_candidate(first_candidate);

    std::vector<double> dist_sq(end - begin,
                                std::numeric_limits<double>::max());
    auto refresh_against = [&](std::size_t from) {
      for (std::size_t i = begin; i < end; ++i) {
        for (std::size_t c = from; c < candidates.size(); ++c) {
          dist_sq[i - begin] = std::min(
              dist_sq[i - begin],
              detail::squared_distance(
                  dataset.sample(i),
                  std::span<const float>(candidates[c].data(), d)));
        }
      }
    };
    refresh_against(0);

    for (std::size_t round = 0; round < config.rounds; ++round) {
      // Global seeding cost.
      double local_cost = 0;
      for (double v : dist_sq) {
        local_cost += v;
      }
      std::vector<double> cost{local_cost};
      swmpi::allreduce_sum(comm, std::span<double>(cost));
      if (cost[0] <= 0) {
        break;  // every sample is a candidate already
      }
      // Independent oversampling: P(pick x) = min(1, l * d^2(x)/cost).
      std::vector<std::uint64_t> picked;
      for (std::size_t i = begin; i < end; ++i) {
        const double p = oversample * dist_sq[i - begin] / cost[0];
        if (rng.uniform() < p) {
          picked.push_back(i);
        }
      }
      // Share the picks in one variable-length allgather. The result is
      // the rank-major concatenation of every rank's picks — the same
      // candidate order the old per-rank point-to-point exchange produced,
      // in O(log ranks) rounds instead of O(picks x ranks) messages.
      const std::vector<std::uint64_t> all_picked = swmpi::allgatherv(
          comm, std::span<const std::uint64_t>(picked.data(), picked.size()));
      const std::size_t before = candidates.size();
      for (const std::uint64_t i : all_picked) {
        push_candidate(static_cast<std::size_t>(i));
      }
      refresh_against(before);
    }

    // Weights: how many of this rank's samples are nearest to each
    // candidate; AllReduce to global counts.
    std::vector<double> weights(candidates.size(), 0.0);
    for (std::size_t i = begin; i < end; ++i) {
      double best = std::numeric_limits<double>::max();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        const double dist = detail::squared_distance(
            dataset.sample(i),
            std::span<const float>(candidates[c].data(), d));
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      weights[best_c] += 1.0;
    }
    swmpi::allreduce_sum(comm,
                         std::span<double>(weights.data(), weights.size()));

    if (comm.rank() == 0) {
      candidate_rows.reserve(candidates.size() * d);
      for (const auto& row : candidates) {
        candidate_rows.insert(candidate_rows.end(), row.begin(), row.end());
      }
      shared_weights = weights;
    }
  });

  // Rank 0 exported the candidate set; reduce it to k centroids.
  const std::size_t m = candidate_rows.size() / d;
  util::Matrix candidates =
      util::Matrix::from_vector(m, d, std::move(candidate_rows));
  if (m < config.k) {
    // Pathological (tiny data / zero rounds): pad with random samples.
    util::Matrix padded(config.k, d);
    for (std::size_t j = 0; j < config.k; ++j) {
      const auto src = j < m ? candidates.row(j)
                             : dataset.sample(seed_rng.below(dataset.n()));
      std::copy(src.begin(), src.end(), padded.row(j).begin());
    }
    return padded;
  }
  return detail::weighted_plus_plus(candidates, shared_weights, config.k,
                                    config.seed ^ 0x5851F42D4C957F2DULL);
}

}  // namespace swhkm::core
