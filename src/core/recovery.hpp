#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/kmeans.hpp"
#include "core/partition.hpp"
#include "data/dataset.hpp"
#include "simarch/machine_config.hpp"
#include "telemetry/flight_recorder.hpp"

namespace swhkm::core {

/// Knobs of the fault-tolerant driver.
struct RecoveryOptions {
  /// Where the driver parks its iteration-boundary checkpoints (SWKC v2,
  /// written atomically). Required — recovery without a durable anchor is
  /// just a retry loop.
  std::string checkpoint_path;
  /// Failed attempts tolerated per topology before the driver degrades
  /// (or gives up): the first attempt plus `max_retries` retries.
  std::size_t max_retries = 2;
  /// Base wall-clock backoff between attempts; attempt i at a topology
  /// sleeps i * backoff_s. 0 retries immediately (the test default).
  double backoff_s = 0;
  /// When retries at the current topology are exhausted, re-plan the run
  /// on a smaller machine (halving nodes, then CGs per node) instead of
  /// giving up — the paper's machines lose nodes mid-job, the answer
  /// shouldn't die with them.
  bool allow_degradation = true;
  /// Floor for degradation: never shrink below this many core groups.
  std::size_t min_cgs = 1;
  /// Localized SDC recovery budget per leg: a leg that dies with a
  /// detected silent corruption (SilentCorruptionError /
  /// CorruptMessageError) is retried this many times *in memory* — from
  /// the driver's still-valid pre-leg centroids, no checkpoint reload, no
  /// charge against `max_retries` — before the fault falls through to the
  /// ordinary checkpoint-rollback path. Valid because the engines take
  /// their centroids by value (a corrupted attempt cannot poison the
  /// driver's copy) and every detector fires *before* corrupt bits can
  /// reach the published state.
  std::size_t max_sdc_retries = 2;
  /// When non-empty, the driver writes a telemetry::RunReport JSON here at
  /// the end of run() — config, outcome, the full fault/recovery story and
  /// the merged metrics snapshot (when config.telemetry is armed).
  std::string report_path;
};

/// One caught fault, in the order they happened.
struct FaultEvent {
  std::size_t iteration = 0;  ///< global iteration the failed leg started at
  std::string what;           ///< the fault's message
  double wall_s = 0;          ///< wall-clock seconds the failed attempt cost
  bool sdc = false;           ///< detected silent corruption (vs fail-stop)
};

/// What the driver did to finish the run.
struct RecoveryReport {
  std::size_t faults = 0;    ///< RuntimeFaults caught (injected or real)
  std::size_t retries = 0;   ///< re-attempts after a caught fault
  std::size_t replans = 0;   ///< degradations onto a smaller topology
  double recover_wall_s = 0; ///< wall seconds burned on failed attempts +
                             ///< checkpoint reloads
  std::size_t final_cgs = 0; ///< core groups of the topology that finished
  bool degraded = false;
  bool resumed_from_checkpoint = false;
  /// Silent corruptions the layered defense caught (transport CRC, scrub
  /// CRCs, counts conservation, inertia monotonicity) — the faults that
  /// would have been wrong answers without it.
  std::size_t sdc_detections = 0;
  /// Legs re-run in memory from the pre-leg centroids after a detected
  /// SDC — recovery that engaged *before* any checkpoint rollback.
  std::size_t localized_retries = 0;
  std::vector<FaultEvent> events;
};

/// Fault-tolerant wrapper around the three distributed engines: runs the
/// clustering in checkpoint-cadence legs (config.checkpoint_every
/// iterations each), writes an atomic SWKC v2 checkpoint at every leg
/// boundary, and when a leg dies with a RuntimeFault (injected crash,
/// watchdog timeout, or a real peer failure) reloads the last good
/// checkpoint and retries — degrading onto a smaller machine once retries
/// at the current topology are exhausted.
///
/// Bit-identity: every Lloyd iteration is a deterministic function of the
/// centroid snapshot, and the Hamerly gate is exact, so restarting a leg
/// from the checkpointed centroids reproduces the uninterrupted
/// trajectory bit for bit (at the same final topology). The engines take
/// their initial centroids by value, so a failed attempt cannot poison
/// the driver's state; the checkpoint file on disk stays authoritative.
class RecoveryDriver {
 public:
  RecoveryDriver(simarch::MachineConfig machine, RecoveryOptions options);

  /// Run `level` to completion under the fault policy. Throws the last
  /// fault if retries and degradation are both exhausted. The result's
  /// history is the concatenation of the legs' histories, with
  /// IterationStats::retries / recover_s stamped on the first iteration
  /// of each leg that followed a failure.
  KmeansResult run(Level level, const data::Dataset& dataset,
                   const KmeansConfig& config);

  const RecoveryReport& report() const { return report_; }

  /// Fault postmortems, one per caught RuntimeFault (capped at the first
  /// kMaxPostmortems — a permafault retry loop must not grow without
  /// bound): every rank's last flight-recorder events, snapshotted the
  /// moment the driver caught the fault, before any retry overwrote the
  /// rings. Empty when the run's telemetry had no flight recorder armed.
  const std::vector<telemetry::FaultPostmortem>& postmortems() const {
    return postmortems_;
  }
  static constexpr std::size_t kMaxPostmortems = 8;

  /// The (possibly degraded) machine the driver currently targets.
  const simarch::MachineConfig& machine() const { return machine_; }

 private:
  simarch::MachineConfig machine_;
  RecoveryOptions options_;
  RecoveryReport report_;
  std::vector<telemetry::FaultPostmortem> postmortems_;
};

}  // namespace swhkm::core
