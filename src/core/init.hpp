#pragma once

#include "core/kmeans.hpp"
#include "data/dataset.hpp"
#include "util/matrix.hpp"

namespace swhkm::core {

/// Produce the k x d initial centroid matrix for `config`. Deterministic in
/// (dataset, config) — every engine level and the serial baseline start
/// from bit-identical centroids, which is what lets the tests demand
/// identical trajectories.
util::Matrix init_centroids(const data::Dataset& dataset,
                            const KmeansConfig& config);

}  // namespace swhkm::core
