#pragma once

#include <cstdint>
#include <vector>

#include "core/accel_stats.hpp"
#include "data/dataset.hpp"
#include "simarch/cost.hpp"
#include "simarch/machine_config.hpp"
#include "util/matrix.hpp"

namespace swhkm::simarch {
class Trace;
}

namespace swhkm::swmpi {
class FaultPlan;
}

namespace swhkm::telemetry {
class Telemetry;
}

namespace swhkm::core {

/// The three partition strategies of the paper (Section III).
enum class Level : int {
  kLevel1 = 1,  ///< n-partition: every CPE holds all k centroids
  kLevel2 = 2,  ///< nk-partition: centroids split over a CPE group
  kLevel3 = 3,  ///< nkd-partition: dims over a CG, centroids over CG groups
};

const char* level_name(Level level);

/// Problem shape (n samples, k centroids, d dimensions) — what the
/// feasibility constraints and the performance model consume. Engines
/// derive it from the Dataset; benches build it directly for paper-scale
/// virtual workloads.
struct ProblemShape {
  std::uint64_t n = 0;
  std::uint64_t k = 0;
  std::uint64_t d = 0;
};

enum class InitMethod {
  kFirstK,     ///< first k samples — the deterministic test default
  kRandom,     ///< k distinct samples drawn with the seeded PRNG
  kPlusPlus,   ///< k-means++ seeding (Arthur & Vassilvitskii)
};

struct KmeansConfig {
  std::size_t k = 2;
  std::size_t max_iterations = 50;
  /// Convergence: stop when no centroid moved more than `tolerance`
  /// (Euclidean). 0 reproduces the paper's "until fixed".
  double tolerance = 1e-6;
  InitMethod init = InitMethod::kFirstK;
  std::uint64_t seed = 1;
  /// Samples per assign-phase tile in the engines (the unit one batched
  /// collective resolves). Any value is bit-identical; it trades LDM
  /// footprint against synchronisation amortisation. Validated against the
  /// machine by the planner (resolve_tile_samples); serial baselines keep
  /// the static kAssignTileSamples default and ignore this field.
  std::size_t tile_samples = 256;
  /// Bound-gated assign phase: maintain per-sample Hamerly bounds and skip
  /// the distance sweep + collective for samples provably still assigned
  /// to their centroid. Exact — trajectories stay bit-identical to serial
  /// Lloyd; off reproduces the seed engines' every-sample sweep.
  bool gate_assign = true;
  /// Double-buffered tile pipeline in the engines' assign loop: tile t+1
  /// is gated/scored while tile t's argmin combine drains (level 3 issues
  /// the combine split-phase so the wait really overlaps; levels 1/2
  /// overlap the modelled tile DMA), and the cost model moves the hidden
  /// seconds into CostTally::overlapped_*. Exact — tiles are disjoint
  /// sample ranges and the combine association is unchanged, so
  /// trajectories stay bit-identical to serial Lloyd; off restores the
  /// strictly sequential tile loop and the no-overlap cost model.
  bool pipeline_tiles = true;
  /// GEMM-formulated survivor sweep: score unresolved tiles through the
  /// ||x||^2 + ||c||^2 - 2 X C^T panel product with per-iteration cached
  /// centroid norms, exact top-two rescore of each row's tau-bounded
  /// candidate set. Exact — records are byte-identical to the multi-chain
  /// kernel and serial Lloyd (see engine_util.hpp); off restores the
  /// multi-chain (x-c)^2 kernel and its cost model.
  bool gemm_assign = true;
  /// s-step deferred reduction (Level 3 only — the other levels resolve
  /// tiles on the register bus, not the network): fold this many
  /// consecutive tiles' MinLoc/MinLoc2 partials locally and ride them on
  /// one split-phase combine, cutting per-iteration collective *rounds* by
  /// the same factor while bytes stay put. Any value is bit-identical (the
  /// combine stays element-wise over disjoint sample ranges); the record
  /// buffer footprint scales with it and is validated at config time by
  /// resolve_tile_samples. 1 reproduces the per-tile combine.
  std::size_t sstep_tiles = 1;
  /// Topology-aware hierarchical collectives: run the swmpi reduction
  /// collectives on the two-level schedule (zero-copy intra-supernode
  /// fold into per-supernode leaders, size-adaptive inter-supernode
  /// stage) and charge the topology model's hierarchical costs, with the
  /// crossover threshold derived from the machine's latency/bandwidth
  /// terms (MachineConfig::collective_crossover_bytes). Bit-identical to
  /// the flat schedule by construction (DESIGN.md §12); off restores the
  /// flat collectives and flat charges as the A/B baseline.
  bool hier_collectives = true;
  /// Layered silent-data-corruption defense in the engines: CRC scrubbing
  /// of the published centroid snapshot and the update accumulators
  /// against deterministic reference captures, ABFT checksum columns on
  /// the GEMM assign panels (mismatch triggers an exact bit-identical
  /// panel recompute — detector + corrector, never a result change), and
  /// counts-conservation (Σcounts == n) after the sharded update. Detected
  /// uncorrectable corruption raises SilentCorruptionError, which the
  /// RecoveryDriver answers with a localized (iteration-scope) retry
  /// before any checkpoint rollback. Corruption-free runs stay
  /// byte-identical with the defense on or off; the extra scrub collectives
  /// and trailer bytes are charged to the cost model only when enabled, so
  /// pinned model numbers do not move for defense-off runs. Off by default.
  bool sdc_checks = false;
  /// Optional timeline sink: engines record each rank's per-iteration
  /// phase intervals (simulated time) into it. Not owned; may be null.
  simarch::Trace* trace = nullptr;
  /// Deterministic fault-injection schedule threaded into the engines'
  /// communicator tree (not owned; null = no injection). Crash events are
  /// matched against `iteration_base + iter`, so schedules keep firing at
  /// the right global iteration across RecoveryDriver legs.
  swmpi::FaultPlan* fault_plan = nullptr;
  /// Global index of this run's first iteration. The RecoveryDriver runs
  /// engines in short legs; the base keeps fault matching and trace
  /// iteration numbering contiguous across legs. 0 for standalone runs.
  std::size_t iteration_base = 0;
  /// RecoveryDriver checkpoint cadence: a checkpoint lands every this many
  /// iterations (each leg boundary). Ignored by the engines themselves.
  std::size_t checkpoint_every = 8;
  /// Wall-clock observability session (not owned; null = every record call
  /// is a no-op). Instrumentation is always compiled in; this pointer is
  /// the gate. Results are bit-identical with telemetry on or off — the
  /// session only *observes* (tested in test_telemetry.cpp).
  telemetry::Telemetry* telemetry = nullptr;
};

/// Per-iteration trajectory record (optional diagnostics).
struct IterationStats {
  double max_centroid_shift = 0;  ///< largest Euclidean centroid movement
  double simulated_s = 0;         ///< modelled machine time this iteration
  /// Fraction of samples the bound gate resolved without a sweep (0 for
  /// the serial baselines and for every first iteration).
  double prune_rate = 0;
  /// Machine-wide collective / DMA volumes this iteration — the engines'
  /// compacted charges, so tests can pin that pruning shrinks the modelled
  /// traffic, not just the wall clock.
  std::uint64_t net_bytes = 0;
  std::uint64_t dma_bytes = 0;
  /// Machine-wide modelled assign+update flops this iteration — together
  /// with simulated_s this is the modelled FLOP rate the GEMM bench cell
  /// tracks.
  std::uint64_t flops = 0;
  /// Critical-path network collective rounds this iteration (the busiest
  /// rank's count — see CostTally::net_rounds). What the s-step deferred
  /// reduction cuts.
  std::uint64_t net_rounds = 0;
  /// Fault bookkeeping, stamped by the RecoveryDriver onto the first
  /// iteration of a leg that followed a failure: how many attempts the
  /// driver burned before this iteration ran, and the wall-clock seconds
  /// the failed attempts + checkpoint reload cost. Zero everywhere else.
  std::uint32_t retries = 0;
  double recover_s = 0;
  /// Of net_bytes, the modelled bytes that crossed a supernode boundary
  /// this iteration (CostTally::net_crossing_bytes). Appended after the
  /// older fields so existing brace-initialisers keep their meaning.
  std::uint64_t net_crossing_bytes = 0;
  /// SDC story (KmeansConfig::sdc_checks): localized iteration-scope
  /// retries the RecoveryDriver burned before this iteration ran (stamped
  /// like `retries`, zero elsewhere), and machine-wide GEMM panels the
  /// ABFT checksum caught and bit-identically recomputed this iteration.
  std::uint32_t sdc_retries = 0;
  std::uint64_t sdc_recomputed = 0;
  /// Per-phase split of simulated_s — the combined (slowest-rank-per-
  /// phase) critical-path seconds, in CostTally field order. Their sum is
  /// simulated_s exactly; report.json surfaces them per history row and
  /// the critical-path analyzer cross-checks them against the Trace.
  /// Appended after the older fields so existing brace-initialisers keep
  /// their meaning.
  double sample_read_s = 0;
  double centroid_stream_s = 0;
  double compute_s = 0;
  double mesh_comm_s = 0;
  double net_comm_s = 0;
  double update_s = 0;
};

struct KmeansResult {
  util::Matrix centroids;                   ///< k x d
  std::vector<std::uint32_t> assignments;   ///< per-sample nearest centroid
  std::size_t iterations = 0;
  bool converged = false;
  /// Clusters that received no members in the final executed iteration
  /// (their centroids are frozen in place rather than moved). Nonzero
  /// values are worth a look: the run may be stalled on dead centroids.
  std::size_t empty_clusters = 0;
  double inertia = 0;  ///< mean squared distance to assigned centroid, O(C)
  /// Simulated machine time accumulated by the engine across all
  /// iterations (zero for the serial baseline).
  simarch::CostTally cost;
  /// Simulated time of the last full iteration — the paper's metric.
  simarch::CostTally last_iteration_cost;
  /// One entry per executed iteration (shift trajectory; simulated time is
  /// zero for the serial baseline).
  std::vector<IterationStats> history;
  /// Distance-evaluation ledger of the bound-gated assign phase (zero for
  /// the serial Lloyd baseline; engines fill it whether gating is on or
  /// off, so savings() reads 0 for an ungated run).
  AccelStats accel;
};

}  // namespace swhkm::core
