#pragma once

#include "core/kmeans.hpp"
#include "core/partition.hpp"
#include "data/dataset.hpp"
#include "util/matrix.hpp"

namespace swhkm::core {

/// Level 2 engine — dataflow + centroid (nk) partition, Algorithm 2.
/// The k centroids are split across the m_group CPEs of a CPE group; each
/// group jointly scores whole samples (every member reads the sample, each
/// scores only its slice, a register-bus argmin combine picks the winner).
/// Slices too large for LDM are streamed from main memory in tiles.
KmeansResult run_level2(const data::Dataset& dataset,
                        const KmeansConfig& config,
                        const simarch::MachineConfig& machine,
                        const PartitionPlan& plan,
                        util::Matrix initial_centroids);

}  // namespace swhkm::core
