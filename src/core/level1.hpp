#pragma once

#include "core/kmeans.hpp"
#include "core/partition.hpp"
#include "data/dataset.hpp"
#include "util/matrix.hpp"

namespace swhkm::core {

/// Level 1 engine — dataflow (n) partition, Algorithm 1 of the paper.
/// Every CPE holds all k centroids and streams a contiguous block of
/// samples; updates reduce over register communication inside a CG and
/// over the network between CGs.
///
/// Runs one SPMD rank (thread) per core group; CPEs within a CG are
/// simulated sequentially with their LDM budgets enforced. `plan` must be
/// a Level-1 plan for `machine`; `initial_centroids` is consumed.
KmeansResult run_level1(const data::Dataset& dataset,
                        const KmeansConfig& config,
                        const simarch::MachineConfig& machine,
                        const PartitionPlan& plan,
                        util::Matrix initial_centroids);

}  // namespace swhkm::core
