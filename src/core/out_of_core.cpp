#include "core/out_of_core.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/engine_util.hpp"
#include "core/metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace swhkm::core {

namespace {

/// Streaming replicas of init.cpp's seeding strategies: same PRNG
/// consumption, same selections, so lloyd_out_of_core matches
/// lloyd_serial bit for bit on the same data and seed.
util::Matrix init_out_of_core(const data::BinaryDatasetReader& reader,
                              const KmeansConfig& config,
                              std::size_t chunk_rows) {
  const std::size_t n = reader.n();
  const std::size_t d = reader.d();
  const std::size_t k = config.k;
  SWHKM_REQUIRE(k > 0 && k <= n, "k must be in [1, n]");

  switch (config.init) {
    case InitMethod::kFirstK:
      return reader.read_rows(0, k);
    case InitMethod::kRandom: {
      // Same partial Fisher-Yates as init.cpp (depends only on n, seed).
      util::Xoshiro256 rng(config.seed);
      std::vector<std::size_t> indices(n);
      for (std::size_t i = 0; i < n; ++i) {
        indices[i] = i;
      }
      std::vector<std::size_t> rows(k);
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t pick = j + rng.below(indices.size() - j);
        std::swap(indices[j], indices[pick]);
        rows[j] = indices[j];
      }
      util::Matrix centroids(k, d);
      for (std::size_t j = 0; j < k; ++j) {
        const util::Matrix row = reader.read_rows(rows[j], 1);
        std::copy(row.row(0).begin(), row.row(0).end(),
                  centroids.row(j).begin());
      }
      return centroids;
    }
    case InitMethod::kPlusPlus: {
      util::Xoshiro256 rng(config.seed);
      std::vector<std::size_t> chosen;
      chosen.reserve(k);
      chosen.push_back(rng.below(n));
      // O(n) doubles of working state; samples themselves stay on disk.
      std::vector<double> nearest(n, std::numeric_limits<double>::max());
      util::Matrix centroids(k, d);
      {
        const util::Matrix row = reader.read_rows(chosen[0], 1);
        std::copy(row.row(0).begin(), row.row(0).end(),
                  centroids.row(0).begin());
      }
      while (chosen.size() < k) {
        const std::span<const float> latest =
            centroids.row(chosen.size() - 1);
        double total = 0;
        reader.for_each_chunk(
            chunk_rows, [&](const util::Matrix& chunk, std::size_t first) {
              for (std::size_t r = 0; r < chunk.rows(); ++r) {
                const std::size_t i = first + r;
                nearest[i] = std::min(
                    nearest[i],
                    detail::squared_distance(chunk.row(r), latest));
                total += nearest[i];
              }
            });
        std::size_t pick = n - 1;
        if (total <= 0) {
          pick = rng.below(n);
        } else {
          double target = rng.uniform() * total;
          for (std::size_t i = 0; i < n; ++i) {
            target -= nearest[i];
            if (target <= 0) {
              pick = i;
              break;
            }
          }
        }
        const util::Matrix row = reader.read_rows(pick, 1);
        std::copy(row.row(0).begin(), row.row(0).end(),
                  centroids.row(chosen.size()).begin());
        chosen.push_back(pick);
      }
      return centroids;
    }
  }
  throw InvalidArgument("unknown init method");
}

}  // namespace

std::vector<std::uint32_t> assign_out_of_core(
    const data::BinaryDatasetReader& reader, const util::Matrix& centroids,
    std::size_t chunk_rows) {
  SWHKM_REQUIRE(centroids.cols() == reader.d(),
                "centroid dimensionality does not match the file");
  std::vector<std::uint32_t> labels(reader.n());
  reader.for_each_chunk(
      chunk_rows, [&](const util::Matrix& chunk, std::size_t first) {
        for (std::size_t r = 0; r < chunk.rows(); ++r) {
          labels[first + r] =
              detail::nearest_in_slice(chunk.row(r), centroids, 0,
                                       centroids.rows())
                  .second;
        }
      });
  return labels;
}

KmeansResult lloyd_out_of_core(const data::BinaryDatasetReader& reader,
                               const KmeansConfig& config,
                               std::size_t chunk_rows) {
  util::Matrix centroids = init_out_of_core(reader, config, chunk_rows);
  const std::size_t k = config.k;
  const std::size_t d = reader.d();

  KmeansResult result;
  result.assignments.assign(reader.n(), 0);
  detail::UpdateAccumulator acc(k, d);

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    acc.reset();
    reader.for_each_chunk(
        chunk_rows, [&](const util::Matrix& chunk, std::size_t first) {
          for (std::size_t r = 0; r < chunk.rows(); ++r) {
            const auto x = chunk.row(r);
            const auto [dist, j] =
                detail::nearest_in_slice(x, centroids, 0, k);
            (void)dist;
            result.assignments[first + r] = j;
            acc.add_sample(j, x);
          }
        });
    const detail::UpdateOutcome outcome =
        detail::apply_update(centroids, acc.sums, acc.counts);
    const double shift = outcome.shift;
    result.empty_clusters = outcome.empty_clusters;
    result.iterations = iter + 1;
    result.history.push_back({shift, 0.0});
    if (shift <= config.tolerance) {
      result.converged = true;
      break;
    }
  }

  detail::warn_empty_clusters(result.empty_clusters, "out_of_core");

  // Final objective with one more streaming pass.
  double total = 0;
  reader.for_each_chunk(
      chunk_rows, [&](const util::Matrix& chunk, std::size_t first) {
        for (std::size_t r = 0; r < chunk.rows(); ++r) {
          total += detail::squared_distance(
              chunk.row(r), centroids.row(result.assignments[first + r]));
        }
      });
  result.inertia = reader.n() > 0
                       ? total / static_cast<double>(reader.n())
                       : 0.0;
  result.centroids = std::move(centroids);
  return result;
}

}  // namespace swhkm::core
