#pragma once

#include "core/partition.hpp"
#include "simarch/cost.hpp"
#include "simarch/machine_config.hpp"

namespace swhkm::core {

/// How CG groups map onto the machine (Level 3). The paper recommends
/// packing a CG group inside a supernode; kScattered stripes groups across
/// the machine instead, and exists as the ablation of that advice.
enum class Placement { kPacked, kScattered };

/// Analytic cost of ONE k-means iteration under `plan` — the model that
/// regenerates the paper's figures at paper scale, where the functional
/// engines cannot run. Mechanics (all derived from the plan, none fitted
/// per-figure):
///
///  sample_read      — every flow unit DMA-streams its sample block; Level 2
///                     replicates each sample across the m_group CPEs of a
///                     group, Level 3 across the m'_group CGs of a group.
///  centroid_stream  — when the centroid slice does not fit LDM (plan.ldm.
///                     resident == false), the engine runs the cheaper of
///                     (a) re-streaming the slice for every sample and
///                     (b) tiling centroids and re-reading the sample block
///                     once per tile. The tile quantisation of (b) is what
///                     produces the stepwise jumps in the Fig. 7 curves.
///  compute          — 2*k_local*d_local flops per sample per holder at
///                     compute_efficiency * peak.
///  mesh_comm        — per-sample register-communication combines inside a
///                     CG (argmin for L2, distance partials for L3) plus
///                     the intra-CG accumulator reduction.
///  net_comm         — per-sample inter-CG argmin combine (Level 3 only;
///                     this latency floor is why Level 2 wins at small d)
///                     plus the end-of-iteration accumulator AllReduce.
///  update           — centroid recomputation and writeback.
///
/// `hier_collectives` mirrors KmeansConfig::hier_collectives: when true
/// (the engines' default) the network collectives are priced through the
/// two-level topology-aware schedule (Topology::hier_*_charge, crossover
/// from MachineConfig::collective_crossover_bytes); when false they keep
/// the flat whole-world charges — the A/B baseline. Either way
/// CostTally::net_crossing_bytes reports the modeled supernode-crossing
/// traffic of the chosen schedule, so benches can show the cut directly.
/// On machines spanning a single supernode the two schedules charge
/// identical seconds (the hierarchy degenerates to the flat pattern).
simarch::CostTally model_iteration(const PartitionPlan& plan,
                                   const simarch::MachineConfig& machine,
                                   Placement placement = Placement::kPacked,
                                   bool hier_collectives = true);

/// Analytic per-iteration cost of arming the SDC defense (DESIGN.md §13),
/// mirroring exactly what the engines charge when `sdc_checks` is on: the
/// ABFT checksum chains add two extra dot evaluations per 16-row panel
/// (1/8 of the assign sweep's modeled compute), the snapshot + accumulator
/// CRC scrubs stream their bytes once at DMA bandwidth, and the
/// scrub-verdict allgather plus the counts-conservation round ride the
/// network. Additive on top of model_iteration — defense-off model numbers
/// stay pinned because model_iteration never includes it.
simarch::CostTally sdc_defense_overhead(const PartitionPlan& plan,
                                        const simarch::MachineConfig& machine);

/// The paper's own closed-form estimates (Section III analysis): T_read and
/// T_comm for the plan's level, transcribed literally. Used by the ablation
/// bench to show where the published algebra and the mechanistic model
/// diverge; not used by the planner.
struct PaperFormulaTimes {
  double t_read_s = 0;
  double t_comm_s = 0;
  double total_s() const { return t_read_s + t_comm_s; }
};
PaperFormulaTimes paper_formula_times(const PartitionPlan& plan,
                                      const simarch::MachineConfig& machine);

}  // namespace swhkm::core
