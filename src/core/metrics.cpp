#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/engine_util.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace swhkm::core {

double inertia(const data::Dataset& dataset, const util::Matrix& centroids,
               const std::vector<std::uint32_t>& assignments) {
  SWHKM_REQUIRE(assignments.size() == dataset.n(),
                "assignment count must equal n");
  if (dataset.n() == 0) {
    return 0;
  }
  double total = 0;
  for (std::size_t i = 0; i < dataset.n(); ++i) {
    total += detail::squared_distance(dataset.sample(i),
                                      centroids.row(assignments[i]));
  }
  return total / static_cast<double>(dataset.n());
}

std::vector<std::size_t> cluster_sizes(
    const std::vector<std::uint32_t>& assignments, std::size_t k) {
  std::vector<std::size_t> sizes(k, 0);
  for (std::uint32_t label : assignments) {
    SWHKM_REQUIRE(label < k, "assignment label out of range");
    ++sizes[label];
  }
  return sizes;
}

double assignment_agreement(const std::vector<std::uint32_t>& a,
                            const std::vector<std::uint32_t>& b) {
  SWHKM_REQUIRE(a.size() == b.size(), "assignment lengths differ");
  if (a.empty()) {
    return 1.0;
  }
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    same += a[i] == b[i] ? 1 : 0;
  }
  return static_cast<double>(same) / static_cast<double>(a.size());
}

double adjusted_rand_index(const std::vector<std::uint32_t>& a,
                           const std::vector<std::uint32_t>& b) {
  SWHKM_REQUIRE(a.size() == b.size(), "labelings must have equal length");
  if (a.empty()) {
    return 1.0;
  }
  const std::uint32_t ka =
      a.empty() ? 0 : *std::max_element(a.begin(), a.end()) + 1;
  const std::uint32_t kb =
      b.empty() ? 0 : *std::max_element(b.begin(), b.end()) + 1;
  // Contingency table and its marginals.
  std::vector<std::uint64_t> table(static_cast<std::size_t>(ka) * kb, 0);
  std::vector<std::uint64_t> rows(ka, 0);
  std::vector<std::uint64_t> cols(kb, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ++table[static_cast<std::size_t>(a[i]) * kb + b[i]];
    ++rows[a[i]];
    ++cols[b[i]];
  }
  auto choose2 = [](std::uint64_t x) {
    return static_cast<double>(x) * (static_cast<double>(x) - 1.0) / 2.0;
  };
  double sum_cells = 0;
  for (std::uint64_t cell : table) {
    sum_cells += choose2(cell);
  }
  double sum_rows = 0;
  for (std::uint64_t r : rows) {
    sum_rows += choose2(r);
  }
  double sum_cols = 0;
  for (std::uint64_t c : cols) {
    sum_cols += choose2(c);
  }
  const double total = choose2(a.size());
  const double expected = sum_rows * sum_cols / total;
  const double maximum = (sum_rows + sum_cols) / 2.0;
  if (maximum == expected) {
    return 1.0;  // both partitions trivial (single cluster or singletons)
  }
  return (sum_cells - expected) / (maximum - expected);
}

double silhouette_sampled(const data::Dataset& dataset,
                          const std::vector<std::uint32_t>& assignments,
                          std::size_t k, std::size_t max_samples,
                          std::uint64_t seed) {
  SWHKM_REQUIRE(assignments.size() == dataset.n(),
                "assignment count must equal n");
  SWHKM_REQUIRE(k >= 2, "silhouette needs at least two clusters");
  // Deterministic subsample.
  util::Xoshiro256 rng(seed);
  std::vector<std::size_t> pool(dataset.n());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    pool[i] = i;
  }
  const std::size_t count = std::min(max_samples, pool.size());
  for (std::size_t i = 0; i < count; ++i) {
    std::swap(pool[i], pool[i + rng.below(pool.size() - i)]);
  }
  pool.resize(count);

  double total = 0;
  std::size_t scored = 0;
  std::vector<double> mean_dist(k);
  std::vector<std::size_t> cluster_count(k);
  for (std::size_t idx = 0; idx < count; ++idx) {
    const std::size_t i = pool[idx];
    std::fill(mean_dist.begin(), mean_dist.end(), 0.0);
    std::fill(cluster_count.begin(), cluster_count.end(), 0u);
    for (std::size_t other_idx = 0; other_idx < count; ++other_idx) {
      const std::size_t j = pool[other_idx];
      if (i == j) {
        continue;
      }
      mean_dist[assignments[j]] += std::sqrt(
          detail::squared_distance(dataset.sample(i), dataset.sample(j)));
      ++cluster_count[assignments[j]];
    }
    const std::uint32_t own = assignments[i];
    if (cluster_count[own] == 0) {
      continue;  // lone sampled member: silhouette undefined, skip
    }
    const double a_i =
        mean_dist[own] / static_cast<double>(cluster_count[own]);
    double b_i = std::numeric_limits<double>::max();
    for (std::uint32_t c = 0; c < k; ++c) {
      if (c == own || cluster_count[c] == 0) {
        continue;
      }
      b_i = std::min(b_i, mean_dist[c] / static_cast<double>(cluster_count[c]));
    }
    if (b_i == std::numeric_limits<double>::max()) {
      continue;  // no other cluster present in the sample
    }
    total += (b_i - a_i) / std::max(a_i, b_i);
    ++scored;
  }
  return scored == 0 ? 0.0 : total / static_cast<double>(scored);
}

double davies_bouldin(const data::Dataset& dataset,
                      const util::Matrix& centroids,
                      const std::vector<std::uint32_t>& assignments) {
  SWHKM_REQUIRE(assignments.size() == dataset.n(),
                "assignment count must equal n");
  const std::size_t k = centroids.rows();
  SWHKM_REQUIRE(k >= 2, "Davies-Bouldin needs at least two clusters");
  std::vector<double> scatter(k, 0.0);
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t i = 0; i < dataset.n(); ++i) {
    const std::uint32_t j = assignments[i];
    scatter[j] += std::sqrt(detail::squared_distance(
        dataset.sample(i), centroids.row(j)));
    ++counts[j];
  }
  for (std::size_t j = 0; j < k; ++j) {
    if (counts[j] > 0) {
      scatter[j] /= static_cast<double>(counts[j]);
    }
  }
  double total = 0;
  std::size_t live = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (counts[i] == 0) {
      continue;
    }
    double worst = 0;
    for (std::size_t j = 0; j < k; ++j) {
      if (j == i || counts[j] == 0) {
        continue;
      }
      const double separation = std::sqrt(
          detail::squared_distance(centroids.row(i), centroids.row(j)));
      if (separation > 0) {
        worst = std::max(worst, (scatter[i] + scatter[j]) / separation);
      }
    }
    total += worst;
    ++live;
  }
  return live == 0 ? 0.0 : total / static_cast<double>(live);
}

double centroid_max_abs_diff(const util::Matrix& a, const util::Matrix& b) {
  SWHKM_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                "centroid matrices must have equal shape");
  double worst = 0;
  const auto fa = a.flat();
  const auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    worst = std::max(worst,
                     std::abs(static_cast<double>(fa[i]) - fb[i]));
  }
  return worst;
}

}  // namespace swhkm::core
