#pragma once

#include "core/kmeans.hpp"
#include "data/dataset.hpp"

namespace swhkm::core {

/// Serial Lloyd iteration — the reference the engines are validated
/// against. Assign + Update, repeated until converged or max_iterations.
KmeansResult lloyd_serial(const data::Dataset& dataset,
                          const KmeansConfig& config);

/// Same, starting from caller-provided centroids (consumed).
KmeansResult lloyd_serial_from(const data::Dataset& dataset,
                               const KmeansConfig& config,
                               util::Matrix centroids);

/// One Assign step: nearest-centroid label per sample (serial scan order).
std::vector<std::uint32_t> assign_serial(const data::Dataset& dataset,
                                         const util::Matrix& centroids);

}  // namespace swhkm::core
