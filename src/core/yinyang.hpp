#pragma once

#include "core/accel_stats.hpp"
#include "core/kmeans.hpp"
#include "data/dataset.hpp"

namespace swhkm::core {

/// Yinyang k-means (Ding et al., ICML'15) — the multi-core CPU comparator
/// of the paper's Table III. A drop-in replacement for Lloyd: it produces
/// the *same* assignments and centroids every iteration, but skips most
/// distance computations using one upper bound per sample plus per-group
/// lower bounds maintained under centroid drift.
///
/// We implement the standard formulation: centroids are clustered into
/// t = max(1, k/10) groups once at start (a few Lloyd iterations over the
/// centroids themselves); each iteration applies the global filter
/// (ub < min-group lower bound => keep assignment) and then the group
/// filter before any exact distance is evaluated.
using YinyangStats = AccelStats;

/// Run Yinyang k-means; trajectory-identical to lloyd_serial with the same
/// config (same init, same tie-breaking, same update and stop rule).
KmeansResult yinyang_serial(const data::Dataset& dataset,
                            const KmeansConfig& config,
                            YinyangStats* stats = nullptr);

/// Same, from caller-provided centroids (consumed).
KmeansResult yinyang_serial_from(const data::Dataset& dataset,
                                 const KmeansConfig& config,
                                 util::Matrix centroids,
                                 YinyangStats* stats = nullptr);

}  // namespace swhkm::core
