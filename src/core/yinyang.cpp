#include "core/yinyang.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/engine_util.hpp"
#include "core/init.hpp"
#include "core/lloyd.hpp"
#include "core/metrics.hpp"
#include "util/error.hpp"

namespace swhkm::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::max();

/// Cluster the k centroids into t groups with a few Lloyd iterations over
/// the centroid rows themselves (the standard Yinyang grouping step).
std::vector<std::uint32_t> group_centroids(const util::Matrix& centroids,
                                           std::size_t t) {
  if (t <= 1 || centroids.rows() <= t) {
    // One group, or degenerate: everything in group 0 / identity-ish.
    std::vector<std::uint32_t> groups(centroids.rows(), 0);
    if (centroids.rows() <= t) {
      for (std::size_t j = 0; j < centroids.rows(); ++j) {
        groups[j] = static_cast<std::uint32_t>(j);
      }
    }
    return groups;
  }
  data::Dataset as_dataset("centroids", centroids);
  KmeansConfig grouping;
  grouping.k = t;
  grouping.max_iterations = 5;
  grouping.init = InitMethod::kFirstK;
  return lloyd_serial(as_dataset, grouping).assignments;
}

double euclidean(std::span<const float> a, std::span<const float> b) {
  return std::sqrt(detail::squared_distance(a, b));
}

}  // namespace

KmeansResult yinyang_serial_from(const data::Dataset& dataset,
                                 const KmeansConfig& config,
                                 util::Matrix centroids,
                                 YinyangStats* stats) {
  SWHKM_REQUIRE(centroids.rows() == config.k, "centroid count must equal k");
  SWHKM_REQUIRE(centroids.cols() == dataset.d(),
                "centroid dimensionality must match the data");
  const std::size_t n = dataset.n();
  const std::size_t k = config.k;
  const std::size_t t = std::max<std::size_t>(1, k / 10);

  YinyangStats local_stats;
  YinyangStats& st = stats ? *stats : local_stats;

  const std::vector<std::uint32_t> group_of = group_centroids(centroids, t);
  const std::size_t num_groups =
      1 + (group_of.empty()
               ? 0
               : *std::max_element(group_of.begin(), group_of.end()));
  std::vector<std::vector<std::uint32_t>> members(num_groups);
  for (std::uint32_t j = 0; j < k; ++j) {
    members[group_of[j]].push_back(j);
  }

  KmeansResult result;
  result.assignments.assign(n, 0);
  std::vector<double> upper(n, 0.0);
  std::vector<double> lower(n * num_groups, kInf);
  detail::UpdateAccumulator acc(k, dataset.d());
  std::vector<double> drift(k, 0.0);
  std::vector<double> group_drift(num_groups, 0.0);
  util::Matrix previous = centroids;

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    acc.reset();
    st.lloyd_equivalent += static_cast<std::uint64_t>(n) * k;

    if (iter == 0) {
      // Exact first pass: assignment, upper bound, per-group lower bounds.
      for (std::size_t i = 0; i < n; ++i) {
        const auto x = dataset.sample(i);
        double best = kInf;
        std::uint32_t best_j = 0;
        std::vector<double> gmin1(num_groups, kInf);
        std::vector<double> gmin2(num_groups, kInf);
        for (std::uint32_t j = 0; j < k; ++j) {
          const double dist = euclidean(x, centroids.row(j));
          ++st.distance_computations;
          const std::uint32_t g = group_of[j];
          if (dist < gmin1[g]) {
            gmin2[g] = gmin1[g];
            gmin1[g] = dist;
          } else if (dist < gmin2[g]) {
            gmin2[g] = dist;
          }
          if (dist < best) {
            best = dist;
            best_j = j;
          }
        }
        result.assignments[i] = best_j;
        upper[i] = best;
        for (std::size_t g = 0; g < num_groups; ++g) {
          lower[i * num_groups + g] =
              g == group_of[best_j] ? gmin2[g] : gmin1[g];
        }
        acc.add_sample(best_j, x);
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t assigned = result.assignments[i];
        double* lb = lower.data() + i * num_groups;
        // Drift the bounds.
        double ub = upper[i] + drift[assigned];
        double global_lb = kInf;
        for (std::size_t g = 0; g < num_groups; ++g) {
          lb[g] -= group_drift[g];
          global_lb = std::min(global_lb, lb[g]);
        }
        if (ub < global_lb) {
          upper[i] = ub;  // keep assignment, bounds drifted but valid
          acc.add_sample(assigned, dataset.sample(i));
          continue;
        }
        // Tighten the upper bound.
        const auto x = dataset.sample(i);
        double best = euclidean(x, centroids.row(assigned));
        ++st.distance_computations;
        std::uint32_t best_j = assigned;
        const double exact_old = best;
        std::vector<double> gmin1(num_groups, kInf);
        std::vector<double> gmin2(num_groups, kInf);
        const std::uint32_t old_group = group_of[assigned];
        gmin1[old_group] = exact_old;
        std::vector<bool> scanned(num_groups, false);
        for (std::size_t g = 0; g < num_groups; ++g) {
          if (lb[g] >= best) {
            continue;  // group filter (best only shrinks, so this is safe)
          }
          scanned[g] = true;
          for (std::uint32_t j : members[g]) {
            if (j == assigned) {
              continue;  // already measured
            }
            const double dist = euclidean(x, centroids.row(j));
            ++st.distance_computations;
            if (dist < gmin1[g]) {
              gmin2[g] = gmin1[g];
              gmin1[g] = dist;
            } else if (dist < gmin2[g]) {
              gmin2[g] = dist;
            }
            if (dist < best) {
              best = dist;
              best_j = j;
            }
          }
        }
        // Refresh bounds for scanned groups; unscanned keep drifted values
        // (still valid), except the old group loses its exclusion if the
        // assignment moved away.
        for (std::size_t g = 0; g < num_groups; ++g) {
          if (!scanned[g]) {
            continue;
          }
          lb[g] = group_of[best_j] == g ? gmin2[g] : gmin1[g];
        }
        if (best_j != assigned && !scanned[old_group]) {
          lb[old_group] = std::min(lb[old_group], exact_old);
        }
        result.assignments[i] = best_j;
        upper[i] = best;
        acc.add_sample(best_j, x);
      }
    }

    // Update step (identical to Lloyd), then compute drifts for the next
    // round of bound maintenance.
    previous = centroids;
    const detail::UpdateOutcome outcome =
        detail::apply_update(centroids, acc.sums, acc.counts);
    const double shift = outcome.shift;
    result.empty_clusters = outcome.empty_clusters;
    for (std::uint32_t j = 0; j < k; ++j) {
      drift[j] = euclidean(previous.row(j), centroids.row(j));
    }
    for (std::size_t g = 0; g < num_groups; ++g) {
      group_drift[g] = 0;
    }
    for (std::uint32_t j = 0; j < k; ++j) {
      group_drift[group_of[j]] = std::max(group_drift[group_of[j]], drift[j]);
    }
    result.iterations = iter + 1;
    result.history.push_back({shift, 0.0});
    if (shift <= config.tolerance) {
      result.converged = true;
      break;
    }
  }

  detail::warn_empty_clusters(result.empty_clusters, "yinyang");
  result.inertia = inertia(dataset, centroids, result.assignments);
  result.centroids = std::move(centroids);
  return result;
}

KmeansResult yinyang_serial(const data::Dataset& dataset,
                            const KmeansConfig& config, YinyangStats* stats) {
  return yinyang_serial_from(dataset, config,
                             init_centroids(dataset, config), stats);
}

}  // namespace swhkm::core
