#include "core/engine_common.hpp"

#include <algorithm>
#include <string>

#include "swmpi/collectives.hpp"
#include "telemetry/registry.hpp"
#include "util/error.hpp"

namespace swhkm::core::detail {

void tick_collective_charge(telemetry::MetricsShard* shard,
                            const char* prefix,
                            const simarch::CollectiveCharge& charge) {
  if (shard == nullptr) {
    return;
  }
  const std::string base(prefix);
  const char* algo = nullptr;
  switch (charge.algo) {
    case simarch::CollectiveAlgo::kFlat:
      algo = ".algo_flat";
      break;
    case simarch::CollectiveAlgo::kBinomialTree:
      algo = ".algo_tree";
      break;
    case simarch::CollectiveAlgo::kReduceScatterAllgather:
      algo = ".algo_rsag";
      break;
  }
  shard->counter(base + algo).add(1);
  shard->counter(base + ".crossing_bytes").add(charge.crossing_bytes);
  shard->counter(base + ".intra_rounds").add(charge.intra_rounds);
  shard->counter(base + ".inter_rounds").add(charge.inter_rounds);
}

void fill_phase_stats(IterationStats& stats,
                      const simarch::CostTally& combined) {
  stats.sample_read_s = combined.sample_read_s;
  stats.centroid_stream_s = combined.centroid_stream_s;
  stats.compute_s = combined.compute_s;
  stats.mesh_comm_s = combined.mesh_comm_s;
  stats.net_comm_s = combined.net_comm_s;
  stats.update_s = combined.update_s;
}

simarch::CostTally combine_tallies(swmpi::Comm& comm,
                                   const simarch::CostTally& mine) {
  static_assert(std::is_trivially_copyable_v<simarch::CostTally>);
  const std::vector<simarch::CostTally> all = swmpi::allgather(comm, mine);
  simarch::CostTally combined = all.front();
  for (std::size_t r = 1; r < all.size(); ++r) {
    combined.max_in_place(all[r]);
  }
  return combined;
}

namespace {

/// One rank's update partials, shared by address. Valid because swmpi
/// ranks are threads of one process (runtime.hpp): the pointers published
/// by the entry allgather dereference directly on every rank.
struct PartialsRef {
  const double* sums;
  const double* counts;
};

/// (max shift, summed empty count) combined in one element-wise allreduce.
/// The empty count rides as a double: counts are small integers, exactly
/// representable, and one fused collective beats two scalar ones.
struct UpdateStats {
  double shift = 0;
  double empty = 0;
};
struct CombineUpdateStats {
  void operator()(UpdateStats& inout, const UpdateStats& in) const {
    inout.shift = inout.shift > in.shift ? inout.shift : in.shift;
    inout.empty += in.empty;
  }
};

}  // namespace

UpdateOutcome reduce_and_update(swmpi::Comm& comm, util::Matrix& centroids,
                                const UpdateAccumulator& acc,
                                std::span<double> drift_out,
                                std::uint64_t sdc_expect_count) {
  const std::size_t k = acc.k();
  const std::size_t d = acc.d();
  const int size = comm.size();
  const auto rank = static_cast<std::size_t>(comm.rank());
  SWHKM_REQUIRE(drift_out.empty() || drift_out.size() == k,
                "drift_out must be empty or hold one entry per centroid");

  // Entry barrier + partials exchange: publish each rank's accumulator by
  // address. The allgather is the happens-before edge from every rank's
  // assign-phase accumulation to every rank's fold below — nobody reads a
  // peer's partials before that peer has finished writing them. On the
  // thread-backed runtime this replaces moving the k*(d+1) payload through
  // the mailbox with direct loads from shared memory; the simulated
  // machine still pays the distributed reduce_scatter (charged by the
  // engines via the topology model).
  const std::vector<PartialsRef> refs = swmpi::allgather(
      comm, PartialsRef{acc.sums.data(), acc.counts.data()});

  // Fold this rank's shard — the contiguous sums rows and counts of
  // block_range(k, size, r) — in the root-0 binomial association, reading
  // the peers' partials in place. The fold order lives in one shared,
  // tested helper (swmpi::fold_binomial_slices) also used by the
  // hierarchical collectives' intra-supernode stage, so the association
  // the summed bits depend on exists in exactly one place.
  const auto [j_begin, j_end] =
      block_range(k, static_cast<std::size_t>(size), rank);
  const std::size_t rows = j_end - j_begin;
  std::vector<double> shard(rows * d + rows);
  std::vector<std::vector<double>> scratch(static_cast<std::size_t>(size));
  swmpi::fold_binomial_slices(
      shard.data(), rows * d, size, scratch,
      [&](int r) { return refs[r].sums + j_begin * d; }, swmpi::ops::Plus{});
  swmpi::fold_binomial_slices(
      shard.data() + rows * d, rows, size, scratch,
      [&](int r) { return refs[r].counts + j_begin; }, swmpi::ops::Plus{});

  // Counts-conservation invariant: every sample lands in exactly one
  // cluster, so after the fold the machine-wide Σcounts must equal n
  // exactly (small integers in double). The per-shard sums already exist;
  // one scalar allreduce totals them. A violation means a count was
  // corrupted between accumulation and fold — the cheap algorithmic net
  // under the CRC scrubbers, and the detector the kUpdateAccum counts
  // flips are aimed at. Collective discipline: sdc_expect_count is a
  // config-derived constant, identical on every rank.
  if (sdc_expect_count > 0) {
    double total = 0;
    for (std::size_t j = 0; j < rows; ++j) {
      total += shard[rows * d + j];
    }
    swmpi::allreduce(comm, std::span<double>(&total, 1), swmpi::ops::Plus{});
    if (total != static_cast<double>(sdc_expect_count)) {
      throw SilentCorruptionError(
          "sdc: counts conservation violated after the sharded update — "
          "sum(counts) = " +
          std::to_string(total) + " but n = " +
          std::to_string(sdc_expect_count) +
          " (an update accumulator count was corrupted)");
    }
  }

  // Parallel apply: every rank rewrites only its own rows of the shared
  // snapshot — writes are disjoint by construction. The per-row drift (if
  // requested) falls out of the same pass.
  std::vector<double> shard_drift(drift_out.empty() ? 0 : rows);
  const UpdateOutcome mine = apply_update_rows(
      centroids, j_begin, j_end,
      std::span<const double>(shard.data(), rows * d),
      std::span<const double>(shard.data() + rows * d, rows),
      drift_out.empty() ? nullptr : shard_drift.data());

  // Assemble the full drift vector on every rank: each shard owner is the
  // single writer of its rows' drifts, so the allgatherv hands all ranks
  // bit-identical copies.
  if (!drift_out.empty()) {
    std::vector<std::size_t> counts(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r) {
      const auto [rb, re] =
          block_range(k, static_cast<std::size_t>(size),
                      static_cast<std::size_t>(r));
      counts[static_cast<std::size_t>(r)] = re - rb;
    }
    const std::vector<double> all = swmpi::allgatherv(
        comm,
        std::span<const double>(shard_drift.data(), shard_drift.size()),
        std::span<const std::size_t>(counts.data(), counts.size()));
    std::copy(all.begin(), all.end(), drift_out.begin());
  }

  // Exit barrier + the run's control data: max shift and total
  // empty-cluster count in one element-wise allreduce. This is also the
  // happens-before edge that (a) publishes every rank's refreshed rows
  // before the next assign phase reads the snapshot, and (b) guarantees
  // every rank has finished reading the peers' partials before any owner
  // returns and clears its accumulator for the next iteration.
  UpdateStats stats{mine.shift, static_cast<double>(mine.empty_clusters)};
  swmpi::allreduce(comm, std::span<UpdateStats>(&stats, 1),
                   CombineUpdateStats{});
  return {stats.shift, static_cast<std::size_t>(stats.empty)};
}

void charge_sample_stream(simarch::CostTally& tally,
                          const simarch::MachineConfig& machine,
                          std::uint64_t bytes,
                          std::uint64_t critical_transfers) {
  tally.sample_read_s += static_cast<double>(bytes) / machine.dma_bandwidth +
                         static_cast<double>(critical_transfers) *
                             machine.dma_latency;
  tally.dma_bytes += bytes;
}

void charge_centroid_traffic(simarch::CostTally& tally,
                             const simarch::MachineConfig& machine,
                             const PartitionPlan& plan,
                             std::uint64_t samples_through_cg) {
  const std::size_t eb = machine.elem_bytes;
  // Level 2: every CPE of the CG keeps its own slice copy (k_local rows of
  // d). Level 3: the CG's CPEs jointly hold k_local rows of d (d_local
  // columns each), so traffic per CG is one slice.
  const std::uint64_t holders_per_cg =
      plan.level == Level::kLevel2 ? machine.cpes_per_cg : 1;
  const std::uint64_t row_elems = plan.shape.d;
  const std::uint64_t slice_bytes = static_cast<std::uint64_t>(plan.k_local) *
                                    row_elems * eb * holders_per_cg;
  std::uint64_t bytes = 0;
  if (plan.ldm.resident) {
    bytes = slice_bytes;  // one (re)load per iteration
  } else {
    const std::uint64_t per_sample =
        samples_through_cg * plan.k_local * row_elems * eb * holders_per_cg;
    const std::uint64_t passes =
        (plan.k_local + plan.ldm.tile_rows - 1) / plan.ldm.tile_rows;
    const std::uint64_t tiled =
        passes * samples_through_cg * plan.shape.d * eb *
            (plan.level == Level::kLevel2 ? machine.cpes_per_cg : 1) +
        slice_bytes;
    bytes = std::min(per_sample, tiled);
  }
  tally.centroid_stream_s +=
      static_cast<double>(bytes) / machine.dma_bandwidth;
  tally.dma_bytes += bytes;
}

void validate_ldm_layout(const PartitionPlan& plan,
                         const simarch::MachineConfig& machine) {
  simarch::LdmAllocator ldm(machine.ldm_bytes);
  const std::size_t eb = machine.elem_bytes;
  ldm.alloc("sample", plan.ldm.sample_elems * eb);
  if (plan.ldm.slice_elems > 0) {
    ldm.alloc(plan.ldm.resident ? "centroid slice + accumulators"
                                : "centroid stream buffers",
              plan.ldm.slice_elems * eb);
  }
  ldm.alloc("scratch", plan.ldm.scratch_elems * eb);
  // Destructor discards; reaching here means the layout fits.
}

}  // namespace swhkm::core::detail
