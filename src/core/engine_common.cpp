#include "core/engine_common.hpp"

#include <algorithm>

#include "swmpi/collectives.hpp"
#include "util/error.hpp"

namespace swhkm::core::detail {

simarch::CostTally combine_tallies(swmpi::Comm& comm,
                                   const simarch::CostTally& mine) {
  static_assert(std::is_trivially_copyable_v<simarch::CostTally>);
  const std::vector<simarch::CostTally> all = swmpi::allgather(comm, mine);
  simarch::CostTally combined = all.front();
  for (std::size_t r = 1; r < all.size(); ++r) {
    combined.max_in_place(all[r]);
  }
  return combined;
}

double reduce_and_update(swmpi::Comm& comm, util::Matrix& centroids,
                         UpdateAccumulator& acc) {
  // Reduce-to-root instead of allreduce: the sums only need to exist where
  // the single shared snapshot is rewritten. The reduce half is the same
  // binomial tree allreduce used, so the summation order — and therefore
  // the centroid bits — are unchanged from the per-rank-copy engines.
  swmpi::reduce(comm, 0, std::span<double>(acc.sums.data(), acc.sums.size()),
                swmpi::ops::Plus{});
  swmpi::reduce(comm, 0,
                std::span<double>(acc.counts.data(), acc.counts.size()),
                swmpi::ops::Plus{});
  double shift = 0;
  if (comm.rank() == 0) {
    shift = apply_update(centroids, acc.sums, acc.counts);
  }
  // Broadcasting the shift is also the happens-before edge that publishes
  // the refreshed snapshot to every rank (mailbox transfers synchronise).
  swmpi::bcast(comm, 0, std::span<double>(&shift, 1));
  return shift;
}

void charge_sample_stream(simarch::CostTally& tally,
                          const simarch::MachineConfig& machine,
                          std::uint64_t bytes,
                          std::uint64_t critical_transfers) {
  tally.sample_read_s += static_cast<double>(bytes) / machine.dma_bandwidth +
                         static_cast<double>(critical_transfers) *
                             machine.dma_latency;
  tally.dma_bytes += bytes;
}

void charge_centroid_traffic(simarch::CostTally& tally,
                             const simarch::MachineConfig& machine,
                             const PartitionPlan& plan,
                             std::uint64_t samples_through_cg) {
  const std::size_t eb = machine.elem_bytes;
  // Level 2: every CPE of the CG keeps its own slice copy (k_local rows of
  // d). Level 3: the CG's CPEs jointly hold k_local rows of d (d_local
  // columns each), so traffic per CG is one slice.
  const std::uint64_t holders_per_cg =
      plan.level == Level::kLevel2 ? machine.cpes_per_cg : 1;
  const std::uint64_t row_elems = plan.shape.d;
  const std::uint64_t slice_bytes = static_cast<std::uint64_t>(plan.k_local) *
                                    row_elems * eb * holders_per_cg;
  std::uint64_t bytes = 0;
  if (plan.ldm.resident) {
    bytes = slice_bytes;  // one (re)load per iteration
  } else {
    const std::uint64_t per_sample =
        samples_through_cg * plan.k_local * row_elems * eb * holders_per_cg;
    const std::uint64_t passes =
        (plan.k_local + plan.ldm.tile_rows - 1) / plan.ldm.tile_rows;
    const std::uint64_t tiled =
        passes * samples_through_cg * plan.shape.d * eb *
            (plan.level == Level::kLevel2 ? machine.cpes_per_cg : 1) +
        slice_bytes;
    bytes = std::min(per_sample, tiled);
  }
  tally.centroid_stream_s +=
      static_cast<double>(bytes) / machine.dma_bandwidth;
  tally.dma_bytes += bytes;
}

void validate_ldm_layout(const PartitionPlan& plan,
                         const simarch::MachineConfig& machine) {
  simarch::LdmAllocator ldm(machine.ldm_bytes);
  const std::size_t eb = machine.elem_bytes;
  ldm.alloc("sample", plan.ldm.sample_elems * eb);
  if (plan.ldm.slice_elems > 0) {
    ldm.alloc(plan.ldm.resident ? "centroid slice + accumulators"
                                : "centroid stream buffers",
              plan.ldm.slice_elems * eb);
  }
  ldm.alloc("scratch", plan.ldm.scratch_elems * eb);
  // Destructor discards; reaching here means the layout fits.
}

}  // namespace swhkm::core::detail
