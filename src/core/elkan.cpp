#include "core/elkan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/engine_util.hpp"
#include "core/init.hpp"
#include "core/metrics.hpp"
#include "util/error.hpp"

namespace swhkm::core {

namespace {

double euclidean(std::span<const float> a, std::span<const float> b) {
  return std::sqrt(detail::squared_distance(a, b));
}

}  // namespace

KmeansResult elkan_serial_from(const data::Dataset& dataset,
                               const KmeansConfig& config,
                               util::Matrix centroids, AccelStats* stats) {
  SWHKM_REQUIRE(centroids.rows() == config.k, "centroid count must equal k");
  SWHKM_REQUIRE(centroids.cols() == dataset.d(),
                "centroid dimensionality must match the data");
  const std::size_t n = dataset.n();
  const std::size_t k = config.k;

  AccelStats local_stats;
  AccelStats& st = stats ? *stats : local_stats;

  KmeansResult result;
  result.assignments.assign(n, 0);
  std::vector<double> upper(n, 0.0);
  std::vector<double> lower(n * k, 0.0);
  std::vector<double> drift(k, 0.0);
  // Half inter-centroid separations and per-centroid "safe radius" s(c).
  std::vector<double> half_cc(k * k, 0.0);
  std::vector<double> safe(k, 0.0);
  detail::UpdateAccumulator acc(k, dataset.d());
  util::Matrix previous = centroids;

  auto refresh_centroid_geometry = [&] {
    for (std::size_t a = 0; a < k; ++a) {
      safe[a] = std::numeric_limits<double>::max();
      for (std::size_t b = 0; b < k; ++b) {
        if (a == b) {
          continue;
        }
        if (b > a) {
          const double d = euclidean(centroids.row(a), centroids.row(b));
          ++st.centroid_distance_computations;
          half_cc[a * k + b] = d / 2.0;
          half_cc[b * k + a] = d / 2.0;
        }
        safe[a] = std::min(safe[a], half_cc[a * k + b]);
      }
    }
    if (k == 1) {
      safe[0] = std::numeric_limits<double>::max();
    }
  };

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    acc.reset();
    st.lloyd_equivalent += static_cast<std::uint64_t>(n) * k;
    refresh_centroid_geometry();

    if (iter == 0) {
      for (std::size_t i = 0; i < n; ++i) {
        const auto x = dataset.sample(i);
        double best = std::numeric_limits<double>::max();
        std::uint32_t best_j = 0;
        for (std::uint32_t j = 0; j < k; ++j) {
          const double dist = euclidean(x, centroids.row(j));
          ++st.distance_computations;
          lower[i * k + j] = dist;
          if (dist < best) {
            best = dist;
            best_j = j;
          }
        }
        result.assignments[i] = best_j;
        upper[i] = best;
        acc.add_sample(best_j, x);
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t a = result.assignments[i];
        double* lb = lower.data() + i * k;
        double ub = upper[i] + drift[a];
        for (std::uint32_t j = 0; j < k; ++j) {
          lb[j] = std::max(0.0, lb[j] - drift[j]);
        }
        bool tight = false;
        if (ub > safe[a]) {
          const auto x = dataset.sample(i);
          for (std::uint32_t j = 0; j < k; ++j) {
            if (j == a || ub <= lb[j] || ub <= half_cc[a * k + j]) {
              continue;
            }
            if (!tight) {
              ub = euclidean(x, centroids.row(a));
              ++st.distance_computations;
              lb[a] = ub;
              tight = true;
              if (ub <= lb[j] || ub <= half_cc[a * k + j]) {
                continue;
              }
            }
            const double dist = euclidean(x, centroids.row(j));
            ++st.distance_computations;
            lb[j] = dist;
            if (dist < ub) {
              a = j;
              ub = dist;
            }
          }
        }
        result.assignments[i] = a;
        upper[i] = ub;
        acc.add_sample(a, dataset.sample(i));
      }
    }

    previous = centroids;
    const detail::UpdateOutcome outcome =
        detail::apply_update(centroids, acc.sums, acc.counts);
    const double shift = outcome.shift;
    result.empty_clusters = outcome.empty_clusters;
    for (std::uint32_t j = 0; j < k; ++j) {
      drift[j] = euclidean(previous.row(j), centroids.row(j));
    }
    result.iterations = iter + 1;
    result.history.push_back({shift, 0.0});
    if (shift <= config.tolerance) {
      result.converged = true;
      break;
    }
  }

  detail::warn_empty_clusters(result.empty_clusters, "elkan");
  result.inertia = inertia(dataset, centroids, result.assignments);
  result.centroids = std::move(centroids);
  return result;
}

KmeansResult elkan_serial(const data::Dataset& dataset,
                          const KmeansConfig& config, AccelStats* stats) {
  return elkan_serial_from(dataset, config, init_centroids(dataset, config),
                           stats);
}

}  // namespace swhkm::core
