#include "core/partition.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/units.hpp"

namespace swhkm::core {

using util::ceil_div;

const char* level_name(Level level) {
  switch (level) {
    case Level::kLevel1:
      return "Level 1 (n-partition)";
    case Level::kLevel2:
      return "Level 2 (nk-partition)";
    case Level::kLevel3:
      return "Level 3 (nkd-partition)";
  }
  return "unknown level";
}

namespace paper {

bool c1(const ProblemShape& shape, std::size_t ldm_elems) {
  return shape.d * (1 + 2 * shape.k) + shape.k <= ldm_elems;
}

bool c2(const ProblemShape& shape, std::size_t ldm_elems) {
  return 3 * shape.d + 1 <= ldm_elems;
}

bool c3(const ProblemShape& shape, std::size_t ldm_elems) {
  return 3 * shape.k + 1 <= ldm_elems;
}

bool c1_l2(const ProblemShape& shape, std::size_t ldm_elems,
           std::size_t m_group) {
  return shape.d * (1 + 2 * shape.k) + shape.k <= m_group * ldm_elems;
}

bool c3_l2(const ProblemShape& shape, std::size_t ldm_elems,
           std::size_t m_group, std::size_t cpes_per_cg) {
  return m_group <= cpes_per_cg &&
         3 * shape.k + 1 <= m_group * ldm_elems;
}

bool c1_l3(const ProblemShape& shape, std::size_t ldm_elems,
           std::size_t total_cpes) {
  return shape.d * (1 + 2 * shape.k) + shape.k <= total_cpes * ldm_elems;
}

bool c2_l3(const ProblemShape& shape, std::size_t ldm_elems,
           std::size_t cpes_per_cg) {
  return 3 * shape.d + 1 <= cpes_per_cg * ldm_elems;
}

bool c3_l3(const ProblemShape& shape, std::size_t ldm_elems,
           std::size_t mprime_group, std::size_t cpes_per_cg) {
  return 3 * shape.k + 1 <= mprime_group * cpes_per_cg * ldm_elems;
}

}  // namespace paper

namespace {

/// Resident layout: sample + centroid slice + accumulator slice + counters.
/// Returns nullopt when it does not fit.
std::optional<LdmLayout> resident_layout(std::size_t sample_elems,
                                         std::size_t k_local,
                                         std::size_t ldm_elems) {
  LdmLayout layout;
  layout.resident = true;
  layout.sample_elems = sample_elems;
  layout.slice_elems = 2 * k_local * sample_elems;  // slice + accumulators
  layout.scratch_elems = k_local;
  layout.total_elems =
      layout.sample_elems + layout.slice_elems + layout.scratch_elems;
  if (layout.total_elems > ldm_elems) {
    return std::nullopt;
  }
  layout.tile_rows = k_local;
  return layout;
}

/// Streaming layout: sample + three stream buffers (active tile, prefetch,
/// accumulator writeback) of tile_rows centroid rows each, plus
/// `scratch_elems` of resident bookkeeping (Level 3 keeps its k_local
/// distance partials in LDM to reduce them over the mesh; Level 2 keeps
/// its running argmin in registers and counters in main memory, so 0).
/// tile_rows is maximised; nullopt when even one row does not fit.
std::optional<LdmLayout> streaming_layout(std::size_t sample_elems,
                                          std::size_t k_local,
                                          std::size_t scratch_elems,
                                          std::size_t ldm_elems) {
  LdmLayout layout;
  layout.resident = false;
  layout.sample_elems = sample_elems;
  layout.scratch_elems = scratch_elems;
  if (layout.sample_elems + layout.scratch_elems >= ldm_elems) {
    return std::nullopt;
  }
  const std::size_t stream_budget =
      ldm_elems - layout.sample_elems - layout.scratch_elems;
  const std::size_t tile_rows = stream_budget / (3 * sample_elems);
  if (tile_rows == 0) {
    return std::nullopt;
  }
  layout.tile_rows = std::min(std::max<std::size_t>(tile_rows, 1), k_local);
  layout.slice_elems = 3 * layout.tile_rows * sample_elems;
  layout.total_elems =
      layout.sample_elems + layout.slice_elems + layout.scratch_elems;
  return layout;
}

/// Main-memory budget per node: the node's share of the dataset (stored
/// once, distributed — group members stream/broadcast each other's blocks
/// during the assign phase, which the sample_read term prices) plus the
/// centroid/accumulator state its CGs own. This — not aggregate LDM — is
/// what really bounds streamed plans.
bool ddr_feasible(const ProblemShape& shape,
                  const simarch::MachineConfig& machine,
                  std::uint64_t centroid_bytes_per_node, std::string* why) {
  const std::uint64_t dataset_share =
      ceil_div(shape.n * shape.d * machine.elem_bytes, machine.nodes);
  const std::uint64_t need = dataset_share + centroid_bytes_per_node;
  if (need > machine.ddr_bytes_per_node) {
    if (why) {
      *why = "node DDR exceeded: dataset share + centroid state needs " +
             std::to_string(need) + " bytes of " +
             std::to_string(machine.ddr_bytes_per_node);
    }
    return false;
  }
  return true;
}

/// Centroid + accumulator + counter bytes a node keeps in DDR: one shared
/// copy of all k for Levels 1/2 (every CG scores every centroid), one
/// slice per CG for Level 3.
std::uint64_t full_centroid_state_bytes(const ProblemShape& shape,
                                        const simarch::MachineConfig& m) {
  return 2 * shape.k * shape.d * m.elem_bytes + shape.k * 8;
}

std::uint64_t sliced_centroid_state_bytes(const ProblemShape& shape,
                                          const simarch::MachineConfig& m,
                                          std::size_t k_local) {
  return m.cgs_per_node *
         (2 * static_cast<std::uint64_t>(k_local) * shape.d * m.elem_bytes +
          k_local * 8);
}

std::vector<std::size_t> divisors(std::size_t value) {
  std::vector<std::size_t> out;
  for (std::size_t x = 1; x <= value; ++x) {
    if (value % x == 0) {
      out.push_back(x);
    }
  }
  return out;
}

std::string shape_string(const ProblemShape& shape) {
  std::ostringstream out;
  out << "(n=" << shape.n << ", k=" << shape.k << ", d=" << shape.d << ")";
  return out.str();
}

Feasibility ok() { return {true, ""}; }

Feasibility fail(const std::string& reason) { return {false, reason}; }

Feasibility try_level1(const ProblemShape& shape,
                       const simarch::MachineConfig& machine,
                       PartitionPlan* plan) {
  const std::size_t ldm = machine.ldm_elems();
  if (!paper::c2(shape, ldm)) {
    return fail("C2 violated: 3d+1 = " + std::to_string(3 * shape.d + 1) +
                " > LDM = " + std::to_string(ldm) + " elements");
  }
  if (!paper::c3(shape, ldm)) {
    return fail("C3 violated: 3k+1 = " + std::to_string(3 * shape.k + 1) +
                " > LDM = " + std::to_string(ldm) + " elements");
  }
  if (!paper::c1(shape, ldm)) {
    return fail("C1 violated: d(1+2k)+k = " +
                std::to_string(shape.d * (1 + 2 * shape.k) + shape.k) +
                " > LDM = " + std::to_string(ldm) + " elements");
  }
  const auto layout = resident_layout(shape.d, shape.k, ldm);
  if (!layout) {
    return fail("Level 1 engineering layout (with DMA buffers) does not fit "
                "LDM for " + shape_string(shape));
  }
  std::string ddr_why;
  if (!ddr_feasible(shape, machine, full_centroid_state_bytes(shape, machine),
                    &ddr_why)) {
    return fail(ddr_why);
  }
  if (plan) {
    plan->level = Level::kLevel1;
    plan->m_group = 1;
    plan->mprime_group = 1;
    plan->num_flow_units = machine.total_cpes();
    plan->k_local = shape.k;
    plan->d_local = shape.d;
    plan->ldm = *layout;
  }
  return ok();
}

Feasibility try_level2(const ProblemShape& shape,
                       const simarch::MachineConfig& machine,
                       std::size_t m_group, PartitionPlan* plan) {
  const std::size_t ldm = machine.ldm_elems();
  if (machine.cpes_per_cg % m_group != 0) {
    return fail("m_group = " + std::to_string(m_group) +
                " does not divide cpes_per_cg = " +
                std::to_string(machine.cpes_per_cg));
  }
  if (!paper::c2(shape, ldm)) {
    return fail("C2' violated: 3d+1 = " + std::to_string(3 * shape.d + 1) +
                " > LDM = " + std::to_string(ldm) +
                " elements (a whole sample must fit one CPE)");
  }
  if (!paper::c3_l2(shape, ldm, m_group, machine.cpes_per_cg)) {
    return fail("C3' violated: 3k+1 = " + std::to_string(3 * shape.k + 1) +
                " > m_group*LDM = " + std::to_string(m_group * ldm));
  }
  const std::size_t k_local = ceil_div(shape.k, m_group);
  auto layout = resident_layout(shape.d, k_local, ldm);
  if (!layout) {
    // Streamed Level 2 keeps its argmin in registers and counters in main
    // memory, so no resident scratch beyond the stream buffers.
    layout = streaming_layout(shape.d, k_local, 0, ldm);
  }
  if (!layout) {
    return fail("Level 2 layout infeasible: sample (d=" +
                std::to_string(shape.d) + ") plus stream buffers exceed LDM "
                "= " + std::to_string(ldm) + " elements");
  }
  std::string ddr_why;
  if (!ddr_feasible(shape, machine, full_centroid_state_bytes(shape, machine),
                    &ddr_why)) {
    return fail(ddr_why);
  }
  if (plan) {
    plan->level = Level::kLevel2;
    plan->m_group = m_group;
    plan->mprime_group = 1;
    plan->num_flow_units =
        machine.num_cgs() * (machine.cpes_per_cg / m_group);
    plan->k_local = k_local;
    plan->d_local = shape.d;
    plan->ldm = *layout;
  }
  return ok();
}

Feasibility try_level3(const ProblemShape& shape,
                       const simarch::MachineConfig& machine,
                       std::size_t mprime_group, PartitionPlan* plan) {
  const std::size_t ldm = machine.ldm_elems();
  if (machine.num_cgs() % mprime_group != 0) {
    return fail("m'_group = " + std::to_string(mprime_group) +
                " does not divide the CG count " +
                std::to_string(machine.num_cgs()));
  }
  if (!paper::c2_l3(shape, ldm, machine.cpes_per_cg)) {
    return fail("C2'' violated: 3d+1 = " + std::to_string(3 * shape.d + 1) +
                " > 64*LDM = " +
                std::to_string(machine.cpes_per_cg * ldm));
  }
  if (!paper::c3_l3(shape, ldm, mprime_group, machine.cpes_per_cg)) {
    return fail("C3'' violated: 3k+1 = " + std::to_string(3 * shape.k + 1) +
                " > m'_group*64*LDM = " +
                std::to_string(mprime_group * machine.cpes_per_cg * ldm));
  }
  // Note: the paper's aggregate C1'' (with the 2k accumulator term) is NOT
  // enforced here — the paper's own Fig. 8 operating points exceed it,
  // which implies the implementation keeps accumulators in main memory.
  // paper::c1_l3 stays available for reporting; feasibility is gated on
  // the per-CPE layout plus node DDR capacity instead.
  const std::size_t d_local = ceil_div(shape.d, machine.cpes_per_cg);
  const std::size_t k_local = ceil_div(shape.k, mprime_group);
  auto layout = resident_layout(d_local, k_local, ldm);
  if (!layout) {
    // Streamed Level 3 must keep k_local distance partials resident for
    // the per-sample mesh reduction.
    layout = streaming_layout(d_local, k_local, k_local, ldm);
  }
  if (!layout) {
    return fail("Level 3 layout infeasible: d_local=" +
                std::to_string(d_local) + ", k_local=" +
                std::to_string(k_local) + " exceed LDM = " +
                std::to_string(ldm) + " elements");
  }
  std::string ddr_why;
  if (!ddr_feasible(shape, machine,
                    sliced_centroid_state_bytes(shape, machine, k_local),
                    &ddr_why)) {
    return fail(ddr_why);
  }
  if (plan) {
    plan->level = Level::kLevel3;
    plan->m_group = 1;
    plan->mprime_group = mprime_group;
    plan->num_flow_units = machine.num_cgs() / mprime_group;
    plan->k_local = k_local;
    plan->d_local = d_local;
    plan->ldm = *layout;
  }
  return ok();
}

/// Smallest group size for which the level is feasible (0 when none).
std::size_t auto_m_group(const ProblemShape& shape,
                         const simarch::MachineConfig& machine) {
  for (std::size_t candidate : candidate_m_groups(machine)) {
    if (try_level2(shape, machine, candidate, nullptr).ok) {
      return candidate;
    }
  }
  return 0;
}

std::size_t auto_mprime_group(const ProblemShape& shape,
                              const simarch::MachineConfig& machine) {
  for (std::size_t candidate : candidate_mprime_groups(machine)) {
    if (try_level3(shape, machine, candidate, nullptr).ok) {
      return candidate;
    }
  }
  return 0;
}

}  // namespace

std::vector<std::size_t> candidate_m_groups(
    const simarch::MachineConfig& machine) {
  return divisors(machine.cpes_per_cg);
}

std::vector<std::size_t> candidate_mprime_groups(
    const simarch::MachineConfig& machine) {
  return divisors(machine.num_cgs());
}

Feasibility check_level(Level level, const ProblemShape& shape,
                        const simarch::MachineConfig& machine,
                        std::size_t m_group, std::size_t mprime_group) {
  machine.validate();
  if (shape.n == 0 || shape.k == 0 || shape.d == 0) {
    return fail("shape must have positive n, k, d");
  }
  switch (level) {
    case Level::kLevel1:
      return try_level1(shape, machine, nullptr);
    case Level::kLevel2: {
      if (m_group == 0) {
        m_group = auto_m_group(shape, machine);
        if (m_group == 0) {
          // Report the largest candidate's failure — the most permissive
          // group size names the binding constraint.
          const Feasibility best_effort =
              try_level2(shape, machine, machine.cpes_per_cg, nullptr);
          return fail("no m_group in [1, " +
                      std::to_string(machine.cpes_per_cg) +
                      "] makes Level 2 feasible for " + shape_string(shape) +
                      "; at m_group=" + std::to_string(machine.cpes_per_cg) +
                      ": " + best_effort.reason);
        }
      }
      return try_level2(shape, machine, m_group, nullptr);
    }
    case Level::kLevel3: {
      if (mprime_group == 0) {
        mprime_group = auto_mprime_group(shape, machine);
        if (mprime_group == 0) {
          const Feasibility best_effort =
              try_level3(shape, machine, machine.num_cgs(), nullptr);
          return fail("no m'_group in [1, " +
                      std::to_string(machine.num_cgs()) +
                      "] makes Level 3 feasible for " + shape_string(shape) +
                      "; at m'_group=" + std::to_string(machine.num_cgs()) +
                      ": " + best_effort.reason);
        }
      }
      return try_level3(shape, machine, mprime_group, nullptr);
    }
  }
  return fail("unknown level");
}

PartitionPlan make_plan(Level level, const ProblemShape& shape,
                        const simarch::MachineConfig& machine,
                        std::size_t m_group, std::size_t mprime_group) {
  machine.validate();
  SWHKM_REQUIRE(shape.n > 0 && shape.k > 0 && shape.d > 0,
                "shape must have positive n, k, d");
  PartitionPlan plan;
  plan.shape = shape;
  plan.num_cgs = machine.num_cgs();
  plan.cpes_per_cg = machine.cpes_per_cg;

  Feasibility result;
  switch (level) {
    case Level::kLevel1:
      result = try_level1(shape, machine, &plan);
      break;
    case Level::kLevel2:
      if (m_group == 0) {
        m_group = auto_m_group(shape, machine);
      }
      result = m_group == 0
                   ? fail("no feasible m_group for " + shape_string(shape))
                   : try_level2(shape, machine, m_group, &plan);
      break;
    case Level::kLevel3:
      if (mprime_group == 0) {
        mprime_group = auto_mprime_group(shape, machine);
      }
      result = mprime_group == 0
                   ? fail("no feasible m'_group for " + shape_string(shape))
                   : try_level3(shape, machine, mprime_group, &plan);
      break;
  }
  if (!result.ok) {
    throw InfeasibleError(std::string(level_name(level)) + " cannot run " +
                          shape_string(shape) + ": " + result.reason);
  }
  return plan;
}

std::string PartitionPlan::describe() const {
  std::ostringstream out;
  out << level_name(level) << " for " << shape_string(shape) << ": "
      << num_cgs << " CG x " << cpes_per_cg << " CPE";
  if (level == Level::kLevel2) {
    out << ", m_group=" << m_group;
  }
  if (level == Level::kLevel3) {
    out << ", m'_group=" << mprime_group;
  }
  out << ", flow units=" << num_flow_units << ", k_local=" << k_local
      << ", d_local=" << d_local
      << (ldm.resident ? ", centroids resident"
                       : ", centroids streamed (tile_rows=" +
                             std::to_string(ldm.tile_rows) + ")")
      << ", LDM peak " << ldm.total_elems << " elems";
  return out.str();
}

std::size_t resolve_tile_samples(std::size_t requested,
                                 const PartitionPlan& plan,
                                 const simarch::MachineConfig& machine,
                                 std::size_t sstep_tiles, bool gemm_assign) {
  constexpr std::size_t kScoreBytes = 24;  // sizeof(swmpi::MinLoc2)
  if (sstep_tiles == 0) {
    throw InfeasibleError(
        "sstep_tiles=0: the s-step deferred reduction must fold at least "
        "one tile per combine (1 reproduces the per-tile combine)");
  }
  // Only Level 3 defers combines, so only there do sstep_tiles tiles'
  // records stay live at once.
  const std::size_t live_tiles =
      plan.level == Level::kLevel3 ? sstep_tiles : 1;
  const std::size_t record_bytes = requested * kScoreBytes * live_tiles;
  const std::size_t gemm_bytes =
      gemm_assign ? requested * kGemmSampleScratchBytes +
                        static_cast<std::size_t>(plan.k_local) * sizeof(double)
                  : 0;
  const std::size_t need = record_bytes + gemm_bytes;
  const std::size_t budget = plan.cpes_per_cg * machine.ldm_bytes;
  if (requested == 0 || need > budget) {
    throw InfeasibleError(
        "tile_samples=" + std::to_string(requested) + " needs " +
        std::to_string(record_bytes) + " bytes of argmin records (" +
        std::to_string(live_tiles) + " live tile(s))" +
        (gemm_bytes > 0 ? " + " + std::to_string(gemm_bytes) +
                              " bytes of GEMM candidate/norm scratch"
                        : std::string()) +
        ", but the CG's aggregate LDM holds " + std::to_string(budget) +
        " bytes (" + std::to_string(plan.cpes_per_cg) + " CPE x " +
        std::to_string(machine.ldm_bytes) + "); request a smaller tile");
  }
  return requested;
}

bool gemm_scratch_fits(std::size_t tile_samples, const PartitionPlan& plan,
                       const simarch::MachineConfig& machine,
                       std::size_t sstep_tiles) {
  try {
    resolve_tile_samples(tile_samples, plan, machine, sstep_tiles, true);
    return true;
  } catch (const InfeasibleError&) {
    return false;
  }
}

std::uint64_t max_k_for_level(Level level, std::uint64_t d,
                              const simarch::MachineConfig& machine) {
  std::uint64_t lo = 0;
  std::uint64_t hi = std::uint64_t{1} << 40;
  // Largest k with check_level ok; feasibility is monotone decreasing in k.
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo + 1) / 2;
    const ProblemShape shape{1024, mid, d};
    if (check_level(level, shape, machine).ok) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

std::uint64_t max_d_for_level(Level level, std::uint64_t k,
                              const simarch::MachineConfig& machine) {
  std::uint64_t lo = 0;
  std::uint64_t hi = std::uint64_t{1} << 40;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo + 1) / 2;
    const ProblemShape shape{1024, k, mid};
    if (check_level(level, shape, machine).ok) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

}  // namespace swhkm::core
