#pragma once

/// swhkm — Large-Scale Hierarchical k-means for Heterogeneous Many-Core
/// Supercomputers (SC'18) on a simulated Sunway TaihuLight.
///
/// Umbrella header: include this to get the whole public API.
///
///   simarch::MachineConfig machine = simarch::MachineConfig::sw26010(128);
///   core::HierarchicalKmeans km(machine);
///   core::KmeansConfig config{.k = 2000};
///   core::KmeansResult r = km.fit(dataset, config);   // auto-planned level
///
/// The engines run the real clustering on real data (validated against
/// serial Lloyd) while charging simulated Sunway time to r.cost; paper-
/// scale shapes that cannot be materialised go through core::auto_plan /
/// core::model_iteration directly.

#include <optional>

#include "core/checkpoint.hpp"
#include "core/elkan.hpp"
#include "core/hamerly.hpp"
#include "core/init.hpp"
#include "core/kmeans.hpp"
#include "core/level1.hpp"
#include "core/level2.hpp"
#include "core/level3.hpp"
#include "core/lloyd.hpp"
#include "core/metrics.hpp"
#include "core/minibatch.hpp"
#include "core/out_of_core.hpp"
#include "core/parallel_init.hpp"
#include "core/partition.hpp"
#include "core/perf_model.hpp"
#include "core/planner.hpp"
#include "core/recovery.hpp"
#include "core/yinyang.hpp"
#include "data/dataset.hpp"
#include "data/image.hpp"
#include "data/io.hpp"
#include "data/normalize.hpp"
#include "data/streaming.hpp"
#include "data/synthetic.hpp"
#include "simarch/machine_config.hpp"

namespace swhkm::core {

/// Run one specific level on a dataset (plan resolved internally; group
/// sizes 0 mean "smallest feasible"). Use best_plan_for_level + run_plan
/// for model-optimal group sizes.
KmeansResult run_level(Level level, const data::Dataset& dataset,
                       const KmeansConfig& config,
                       const simarch::MachineConfig& machine,
                       std::size_t m_group = 0, std::size_t mprime_group = 0);

/// Run a resolved plan.
KmeansResult run_plan(const PartitionPlan& plan, const data::Dataset& dataset,
                      const KmeansConfig& config,
                      const simarch::MachineConfig& machine);

/// The top-level façade: owns a machine description, picks the best
/// feasible level per problem, and runs it.
class HierarchicalKmeans {
 public:
  explicit HierarchicalKmeans(simarch::MachineConfig machine);

  const simarch::MachineConfig& machine() const { return machine_; }

  /// Cluster with the planner-chosen level.
  KmeansResult fit(const data::Dataset& dataset,
                   const KmeansConfig& config) const;

  /// Cluster with a forced level (model-optimal group size within it).
  KmeansResult fit_level(Level level, const data::Dataset& dataset,
                         const KmeansConfig& config) const;

  /// What would the planner do for this shape? (No data needed.)
  std::optional<PlanChoice> plan(const ProblemShape& shape) const;

 private:
  simarch::MachineConfig machine_;
};

}  // namespace swhkm::core
