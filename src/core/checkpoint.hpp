#pragma once

#include <string>

#include "core/kmeans.hpp"

namespace swhkm::core {

/// Checkpoint a clustering run to disk and resume it later — long
/// large-scale jobs on a shared machine get preempted, and re-running 50
/// iterations at 18 s each is real money. Format "SWKC" v2: versioned
/// binary header carrying a CRC-32 over the payload, centroid matrix,
/// assignments, iteration counter. The file is written to a temp name,
/// fsync'd, and atomically renamed into place so a crash mid-save cannot
/// leave a torn checkpoint at `path`.
void save_checkpoint(const KmeansResult& result, const std::string& path);

/// Load a checkpoint; throws CorruptCheckpointError on anything malformed
/// — bad magic, stale version, shape/file-size mismatch, truncation, or a
/// payload CRC mismatch.
KmeansResult load_checkpoint(const std::string& path);

/// Continue Lloyd iterations from a checkpoint's centroids for up to
/// `config.max_iterations` more rounds (the checkpoint's own iteration
/// count is added to the result's).
KmeansResult resume_lloyd(const data::Dataset& dataset,
                          const KmeansConfig& config,
                          const KmeansResult& checkpoint);

}  // namespace swhkm::core
