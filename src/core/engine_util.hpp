#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "data/dataset.hpp"
#include "util/log.hpp"
#include "util/matrix.hpp"

namespace swhkm::core::detail {

/// Squared Euclidean distance in double precision — the one distance kernel
/// shared by the serial baseline and every engine level, so trajectories
/// can only diverge through summation *order*, never through arithmetic.
inline double squared_distance(std::span<const float> x,
                               std::span<const float> c) {
  double sum = 0;
  for (std::size_t u = 0; u < x.size(); ++u) {
    const double diff = static_cast<double>(x[u]) - static_cast<double>(c[u]);
    sum += diff * diff;
  }
  return sum;
}

/// Partial distance over a dimension slice [u_begin, u_end): the Level 3
/// per-CPE kernel.
inline double partial_squared_distance(std::span<const float> x,
                                       std::span<const float> c,
                                       std::size_t u_begin,
                                       std::size_t u_end) {
  double sum = 0;
  for (std::size_t u = u_begin; u < u_end; ++u) {
    const double diff = static_cast<double>(x[u]) - static_cast<double>(c[u]);
    sum += diff * diff;
  }
  return sum;
}

/// Scan centroids [j_begin, j_end) for the nearest one; ties break toward
/// the smaller index, matching a serial left-to-right scan.
inline std::pair<double, std::uint32_t> nearest_in_slice(
    std::span<const float> x, const util::Matrix& centroids,
    std::size_t j_begin, std::size_t j_end) {
  double best = std::numeric_limits<double>::max();
  std::uint32_t best_j = 0;
  for (std::size_t j = j_begin; j < j_end; ++j) {
    const double dist = squared_distance(x, centroids.row(j));
    if (dist < best) {
      best = dist;
      best_j = static_cast<std::uint32_t>(j);
    }
  }
  return {best, best_j};
}

/// Samples per assign-phase tile. A tile is the unit the engines batch
/// their argmin state over: one collective (Level 3) or one accumulation
/// sweep per tile instead of per sample. Any value gives bit-identical
/// results (the tile argmin preserves the left-to-right tie-break); 256
/// keeps a tile's MinLoc buffer at 4 KiB while amortising the per-batch
/// synchronisation far past the point of diminishing returns.
inline constexpr std::size_t kAssignTileSamples = 256;

/// Centroid rows scored per cache block inside a tile sweep: the block
/// stays hot in L1 while the tile's samples stream past it, and each row
/// gets an independent accumulation chain (see score_tile) — 16 chains
/// saturate the FP pipes without spilling vector registers.
inline constexpr std::size_t kCentroidRowBlock = 16;

/// Local (distance, centroid-index) argmin record. Layout-compatible with
/// swmpi::MinLoc so Level 3 can hand a tile of these straight to the
/// batched allreduce; the tile kernels are templated so serial callers do
/// not need the swmpi headers.
struct TileScore {
  double value = 0;
  std::uint64_t index = 0;
};

/// Argmin record that also tracks the runner-up distance — the local half
/// of swmpi::MinLoc2. The bound-gated engines need the exact second-closest
/// distance to seed the Hamerly lower bound after a full sweep.
struct TileScore2 {
  double value = 0;
  std::uint64_t index = 0;
  double second = 0;
};

/// Detects records carrying a runner-up slot (TileScore2 / swmpi::MinLoc2);
/// the tile kernels stay a single template over both record widths.
template <typename MinLocT>
concept HasSecond = requires(MinLocT r) { r.second; };

/// Reset a tile's argmin records to "no centroid seen": +inf distance and
/// a sentinel index that loses every tie (ranks with an empty centroid
/// slice contribute exactly this to the Level 3 combine).
template <typename MinLocT>
inline void clear_scores(std::span<MinLocT> scores) {
  for (MinLocT& s : scores) {
    s.value = std::numeric_limits<double>::max();
    s.index = std::numeric_limits<std::uint64_t>::max();
    if constexpr (HasSecond<MinLocT>) {
      s.second = std::numeric_limits<double>::max();
    }
  }
}

/// Offer one (distance, centroid) candidate to an argmin record. Strict
/// `<` everywhere: ties resolve toward the smaller index (candidates
/// arrive in ascending j), and an equal-to-best distance lands in the
/// runner-up slot — the same top-two semantics as a serial left-to-right
/// scan.
template <typename MinLocT>
inline void offer_score(MinLocT& rec, double value, std::uint64_t index) {
  if constexpr (HasSecond<MinLocT>) {
    if (value < rec.value) {
      rec.second = rec.value;
      rec.value = value;
      rec.index = index;
    } else if (value < rec.second) {
      rec.second = value;
    }
  } else {
    if (value < rec.value) {
      rec.value = value;
      rec.index = index;
    }
  }
}

/// One sample against one full u-major centroid panel: runs
/// kCentroidRowBlock independent accumulation chains, each summing
/// (x[u]-c[u])^2 in ascending u with separate sub/mul/add — the exact
/// operation sequence of squared_distance, so every distance is
/// bit-identical to the serial kernel.
inline void sample_block_chains_generic(const float* __restrict__ x,
                                        const double* __restrict__ panel,
                                        std::size_t d,
                                        double* __restrict__ acc) {
  // __restrict__ matters: without it the compiler must assume acc aliases
  // panel, which forces a store per chain step and blocks vectorisation.
  for (std::size_t u = 0; u < d; ++u) {
    const double xu = static_cast<double>(x[u]);
    const double* row = panel + u * kCentroidRowBlock;
    for (std::size_t jj = 0; jj < kCentroidRowBlock; ++jj) {
      const double diff = xu - row[jj];
      acc[jj] += diff * diff;
    }
  }
}

#if defined(__x86_64__) && defined(__GNUC__)
#define SWHKM_KERNEL_DISPATCH 1
/// AVX2 build of the same source. 4-wide doubles are the same IEEE
/// operations as scalar, and the avx2 target has no FMA instructions, so
/// the compiler cannot contract diff*diff into acc (which would change
/// rounding) — results stay bit-identical to the generic build. Targets
/// with FMA (avx512f etc.) are deliberately NOT used for this reason.
__attribute__((target("avx2"))) inline void sample_block_chains_avx2(
    const float* __restrict__ x, const double* __restrict__ panel,
    std::size_t d, double* __restrict__ acc) {
  for (std::size_t u = 0; u < d; ++u) {
    const double xu = static_cast<double>(x[u]);
    const double* row = panel + u * kCentroidRowBlock;
    for (std::size_t jj = 0; jj < kCentroidRowBlock; ++jj) {
      const double diff = xu - row[jj];
      acc[jj] += diff * diff;
    }
  }
}

using SampleBlockFn = void (*)(const float*, const double*, std::size_t,
                               double*);
inline SampleBlockFn resolve_sample_block_chains() {
  if (__builtin_cpu_supports("avx2")) {
    return &sample_block_chains_avx2;
  }
  return &sample_block_chains_generic;
}
/// Resolved once per process; both candidates are bit-identical.
inline const SampleBlockFn sample_block_chains = resolve_sample_block_chains();
#else
inline constexpr auto sample_block_chains = &sample_block_chains_generic;
#endif

/// Score centroids [j_begin, j_end) against `count` samples named by
/// `sample_index(0..count-1)` and combine into `scores` (one record per
/// sample, caller-initialised — see clear_scores). Shared by the serial
/// baseline and all three engines, through the score_tile /
/// score_tile_ids entry points below.
///
/// Structure: centroid rows are processed in blocks of kCentroidRowBlock,
/// each block transposed into a u-major double panel that stays hot in L1
/// while the tile's samples stream past it. Per sample the block runs one
/// independent accumulation chain per centroid (sample_block_chains),
/// which hides FP add latency — the seed's one-distance-at-a-time loop
/// was serial-dependency bound, not flop bound.
///
/// Bit-exactness: each chain is the exact operation sequence of
/// squared_distance (see sample_block_chains; float->double conversion is
/// value-preserving, and no FMA contraction on any dispatched target) —
/// and blocks visit centroid indices in ascending order with a strict
/// `<`, resolving ties toward the smaller index like the serial
/// left-to-right scan in nearest_in_slice. Trajectories therefore cannot
/// diverge.
template <typename MinLocT, typename SampleIndexFn>
inline void score_tile_gen(const data::Dataset& dataset,
                           SampleIndexFn sample_index, std::size_t count,
                           const util::Matrix& centroids, std::size_t j_begin,
                           std::size_t j_end, std::span<MinLocT> scores) {
  const std::size_t d = centroids.cols();
  std::vector<double> panel(kCentroidRowBlock * d);
  for (std::size_t jb = j_begin; jb < j_end; jb += kCentroidRowBlock) {
    const std::size_t bw = std::min(j_end - jb, kCentroidRowBlock);
    for (std::size_t u = 0; u < d; ++u) {
      for (std::size_t jj = 0; jj < bw; ++jj) {
        panel[u * bw + jj] =
            static_cast<double>(centroids.at(jb + jj, u));
      }
    }
    for (std::size_t t = 0; t < count; ++t) {
      const auto x = dataset.sample(sample_index(t));
      double acc[kCentroidRowBlock] = {};
      if (bw == kCentroidRowBlock) {
        sample_block_chains(x.data(), panel.data(), d, acc);
      } else {
        for (std::size_t u = 0; u < d; ++u) {
          const double xu = static_cast<double>(x[u]);
          const double* row = panel.data() + u * bw;
          for (std::size_t jj = 0; jj < bw; ++jj) {
            const double diff = xu - row[jj];
            acc[jj] += diff * diff;
          }
        }
      }
      MinLocT& best = scores[t];
      for (std::size_t jj = 0; jj < bw; ++jj) {
        offer_score(best, acc[jj], jb + jj);
      }
    }
  }
}

/// Contiguous-range entry point (the seed's signature).
template <typename MinLocT>
inline void score_tile(const data::Dataset& dataset, std::size_t i_begin,
                       std::size_t i_end, const util::Matrix& centroids,
                       std::size_t j_begin, std::size_t j_end,
                       std::span<MinLocT> scores) {
  score_tile_gen(
      dataset, [i_begin](std::size_t t) { return i_begin + t; },
      i_end - i_begin, centroids, j_begin, j_end, scores);
}

/// Compacted entry point: score only the samples listed in `ids` (the
/// unresolved survivors of the bound gate), scores[t] belonging to
/// ids[t]. The gather indirection costs one extra load per sample; the
/// panel-blocked sweep and its bit-exactness argument are unchanged.
template <typename MinLocT>
inline void score_tile_ids(const data::Dataset& dataset,
                           std::span<const std::uint32_t> ids,
                           const util::Matrix& centroids, std::size_t j_begin,
                           std::size_t j_end, std::span<MinLocT> scores) {
  score_tile_gen(
      dataset, [ids](std::size_t t) { return static_cast<std::size_t>(ids[t]); },
      ids.size(), centroids, j_begin, j_end, scores);
}

// ---------------------------------------------------------------------------
// GEMM-formulated distance sweep
//
// ||x - c||^2 = ||x||^2 + ||c||^2 - 2 x.c recast over the same u-major
// centroid panel as the multi-chain kernel, but accumulating dot products
// (one mul+add per element instead of sub+mul+add) with the centroid norms
// cached across tiles. The GEMM value g_j is *only a candidate selector*:
// each row's exact top-two record is formed by rescoring a tau-bounded
// candidate set with squared_distance, so the records — including every
// tie-break — are byte-identical to the serial left-to-right scan.
// ---------------------------------------------------------------------------

/// Per-row candidate capacity of the GEMM selector. Overflow (more than
/// this many centroids within tau of the running top-two) falls back to an
/// exact full-slice sweep for that row — the adversarial coincident-
/// centroid case, where the GEMM path would rescore everything anyway.
inline constexpr std::size_t kGemmCandidates = 8;

/// ||c||^2 of one row in double: ascending-u sum of exact float squares
/// (a float's square is exact in double), the canonical norm the cache and
/// the selector share.
inline double row_squared_norm(std::span<const float> c) {
  double sum = 0;
  for (std::size_t u = 0; u < c.size(); ++u) {
    const double cu = static_cast<double>(c[u]);
    sum += cu * cu;
  }
  return sum;
}

/// Per-iteration cache of centroid squared norms for the GEMM selector.
///
/// Invalidation contract: a cached norm is stale exactly when the stored
/// float row changed. The sharded update publishes per-centroid drift
/// computed from the *stored float positions* (see apply_update_rows), so
/// drift[j] == 0 implies every coordinate's double diff was exactly 0.0 —
/// i.e. the stored bits are unchanged up to -0.0 vs +0.0, whose squares
/// are the same +0.0 — and the cached norm is still bit-exact. Gated runs
/// therefore refresh only the drifted rows; ungated runs (no drift
/// published) recompute every norm each iteration.
struct CentroidNormCache {
  std::vector<double> norms;
  bool valid = false;

  /// Full recompute; returns the number of rows refreshed.
  std::size_t refresh_full(const util::Matrix& centroids) {
    norms.resize(centroids.rows());
    for (std::size_t j = 0; j < centroids.rows(); ++j) {
      norms[j] = row_squared_norm(centroids.row(j));
    }
    valid = true;
    return centroids.rows();
  }

  /// Refresh only the rows whose published drift is nonzero (plus a full
  /// recompute when the cache is cold or the shape moved). Returns the
  /// number of rows refreshed — what the engines charge to the cost model.
  std::size_t refresh_from_drift(const util::Matrix& centroids,
                                 std::span<const double> drift) {
    if (!valid || norms.size() != centroids.rows() ||
        drift.size() != centroids.rows()) {
      return refresh_full(centroids);
    }
    std::size_t refreshed = 0;
    for (std::size_t j = 0; j < centroids.rows(); ++j) {
      if (drift[j] > 0) {
        norms[j] = row_squared_norm(centroids.row(j));
        ++refreshed;
      }
    }
    return refreshed;
  }

  void invalidate() { valid = false; }
};

/// One sample against one u-major centroid panel, dot-product form:
/// kCentroidRowBlock independent chains of acc[jj] += x[u] * c[u]. Float
/// products are exact in double; only the summation rounds.
inline void dot_block_chains_generic(const float* __restrict__ x,
                                     const double* __restrict__ panel,
                                     std::size_t d,
                                     double* __restrict__ acc) {
  for (std::size_t u = 0; u < d; ++u) {
    const double xu = static_cast<double>(x[u]);
    const double* row = panel + u * kCentroidRowBlock;
    for (std::size_t jj = 0; jj < kCentroidRowBlock; ++jj) {
      acc[jj] += xu * row[jj];
    }
  }
}

#if defined(SWHKM_KERNEL_DISPATCH)
/// AVX2 build of the dot chains. The GEMM value is only a candidate
/// selector (exactness comes from the rescore), but the avx2-without-FMA
/// convention of sample_block_chains is kept anyway so both dispatch
/// targets produce identical selector values — one fewer degree of
/// freedom when debugging a divergence.
__attribute__((target("avx2"))) inline void dot_block_chains_avx2(
    const float* __restrict__ x, const double* __restrict__ panel,
    std::size_t d, double* __restrict__ acc) {
  for (std::size_t u = 0; u < d; ++u) {
    const double xu = static_cast<double>(x[u]);
    const double* row = panel + u * kCentroidRowBlock;
    for (std::size_t jj = 0; jj < kCentroidRowBlock; ++jj) {
      acc[jj] += xu * row[jj];
    }
  }
}

inline SampleBlockFn resolve_dot_block_chains() {
  if (__builtin_cpu_supports("avx2")) {
    return &dot_block_chains_avx2;
  }
  return &dot_block_chains_generic;
}
inline const SampleBlockFn dot_block_chains = resolve_dot_block_chains();
#else
inline constexpr auto dot_block_chains = &dot_block_chains_generic;
#endif

/// ABFT instrumentation of the GEMM tile sweep (KmeansConfig::sdc_checks).
///
/// `flip` (optional) exposes each freshly-built scratch panel to the fault
/// plan's deterministic flip_memory events — the injection side. `check`
/// arms the checksum-column defense: per block the clean panel's column
/// sums chk[u] = sum_jj panel[u*bw+jj] (and an absolute-value twin for the
/// error bound) are captured *before* the flip hook runs, and per sample
/// sum_jj dots[jj] is compared against x . chk — two floating-point
/// evaluations of the same real bilinear form, whose spread is bounded by
/// the summation-error tolerance below. A mismatch means the panel no
/// longer holds the centroid bits it was built from: the panel is rebuilt
/// from the (authoritative, separately-scrubbed) centroid matrix and the
/// sample's dots recomputed through the *same* kernel — detector plus
/// bit-identical corrector, so a caught flip changes no result bytes, only
/// the `detected`/`recomputed` tallies.
struct GemmSdcHooks {
  std::function<void(std::span<std::byte>)> flip;
  bool check = false;
  std::uint64_t detected = 0;    ///< checksum mismatches observed
  std::uint64_t recomputed = 0;  ///< panels rebuilt + samples rescored
};

/// Forward-error radius of the GEMM value: |g_j - d_j| <= tau_j where d_j
/// is the exact-kernel (squared_distance) value. Both are floating-point
/// evaluations of the same real quantity; the summation bounds give
/// |g - d| <~ (4d + 11) eps (||x||^2 + ||c||^2), and 16 (d + 2) keeps a
/// >= 3x margin at every d >= 1.
inline double gemm_tau_scale(std::size_t d) {
  return 16.0 * static_cast<double>(d + 2) *
         std::numeric_limits<double>::epsilon();
}

/// GEMM-selected, exactly-rescored tile sweep: same contract as
/// score_tile_gen (centroids [j_begin, j_end) against `count` samples,
/// records combined into caller-cleared `scores`), byte-identical output.
///
/// Pass 1 (selector): per sample, stream the u-major dot panels and form
/// g_j = ||x||^2 + ||c_j||^2 - 2 x.c_j with error radius tau_j. A running
/// top-two of the uppers (g + tau) gives U2; any j with g_j - tau_j <= U2
/// is appended to the row's candidate list (ascending j by construction).
/// The running U2 only tightens, so the list is a superset of every j
/// whose exact distance can reach the final top-two.
///
/// Pass 2 (exact rescore): each row's candidates are offered to its record
/// via squared_distance in ascending j — the serial operation sequence and
/// tie-break. Omitted centroids satisfy d_j > U2_final >= (exact second
/// smallest), so they cannot change value, index or second; the record is
/// therefore byte-identical to a full serial scan, independently of which
/// dot kernel the dispatcher picked. Candidate overflow (more than
/// kGemmCandidates) falls back to an exact sweep of the whole slice for
/// that row.
template <typename MinLocT, typename SampleIndexFn>
inline void score_tile_gemm_gen(const data::Dataset& dataset,
                                SampleIndexFn sample_index, std::size_t count,
                                const util::Matrix& centroids,
                                std::span<const double> norms,
                                std::size_t j_begin, std::size_t j_end,
                                std::span<MinLocT> scores,
                                GemmSdcHooks* sdc = nullptr) {
  const std::size_t d = centroids.cols();
  const double tau_scale = gemm_tau_scale(d);
  std::vector<double> panel(kCentroidRowBlock * d);
  std::vector<double> nx(count);
  std::vector<double> u1(count, std::numeric_limits<double>::max());
  std::vector<double> u2(count, std::numeric_limits<double>::max());
  std::vector<std::uint32_t> cand(count * kGemmCandidates);
  std::vector<std::uint32_t> cand_n(count, 0);
  // ABFT checksum column of the current panel and its absolute-value twin
  // (the error-bound magnitude). Captured from the clean panel before the
  // flip hook can damage it.
  std::vector<double> chk;
  std::vector<double> chkabs;
  for (std::size_t t = 0; t < count; ++t) {
    nx[t] = row_squared_norm(dataset.sample(sample_index(t)));
  }
  for (std::size_t jb = j_begin; jb < j_end; jb += kCentroidRowBlock) {
    const std::size_t bw = std::min(j_end - jb, kCentroidRowBlock);
    const auto build_panel = [&] {
      for (std::size_t u = 0; u < d; ++u) {
        for (std::size_t jj = 0; jj < bw; ++jj) {
          panel[u * bw + jj] = static_cast<double>(centroids.at(jb + jj, u));
        }
      }
    };
    const auto capture_checksums = [&] {
      chk.assign(d, 0.0);
      chkabs.assign(d, 0.0);
      for (std::size_t u = 0; u < d; ++u) {
        for (std::size_t jj = 0; jj < bw; ++jj) {
          const double v = panel[u * bw + jj];
          chk[u] += v;
          chkabs[u] += std::abs(v);
        }
      }
    };
    build_panel();
    if (sdc != nullptr && sdc->check) {
      capture_checksums();
    }
    if (sdc != nullptr && sdc->flip) {
      sdc->flip(std::as_writable_bytes(
          std::span<double>(panel.data(), bw * d)));
    }
    for (std::size_t t = 0; t < count; ++t) {
      const auto x = dataset.sample(sample_index(t));
      double dots[kCentroidRowBlock] = {};
      const auto sweep_dots = [&] {
        if (bw == kCentroidRowBlock) {
          dot_block_chains(x.data(), panel.data(), d, dots);
        } else {
          for (std::size_t u = 0; u < d; ++u) {
            const double xu = static_cast<double>(x[u]);
            const double* row = panel.data() + u * bw;
            for (std::size_t jj = 0; jj < bw; ++jj) {
              dots[jj] += xu * row[jj];
            }
          }
        }
      };
      sweep_dots();
      if (sdc != nullptr && sdc->check) {
        // sum_jj dots[jj] and x . chk are two summation orders of the same
        // real bilinear form sum_{u,jj} x[u] * panel[u*bw+jj]; their spread
        // is bounded by (d + bw) roundings against the absolute-value
        // magnitude, with a 64x margin. A violation means the panel's bits
        // are not the centroid bits the checksum saw — rebuild and rescore
        // this sample through the identical kernel (bit-identical repair;
        // samples after this one see the clean panel too).
        double got = 0;
        for (std::size_t jj = 0; jj < bw; ++jj) {
          got += dots[jj];
        }
        double ref = 0;
        double mag = 0;
        for (std::size_t u = 0; u < d; ++u) {
          const double xu = static_cast<double>(x[u]);
          ref += xu * chk[u];
          mag += std::abs(xu) * chkabs[u];
        }
        const double tol = 64.0 * static_cast<double>(d + bw) *
                           std::numeric_limits<double>::epsilon() * mag;
        if (!(std::abs(got - ref) <= tol)) {
          ++sdc->detected;
          build_panel();
          capture_checksums();
          std::fill(dots, dots + kCentroidRowBlock, 0.0);
          sweep_dots();
          ++sdc->recomputed;
        }
      }
      for (std::size_t jj = 0; jj < bw; ++jj) {
        const std::size_t j = jb + jj;
        const double scale = nx[t] + norms[j];
        const double g = scale - 2.0 * dots[jj];
        const double tau = tau_scale * scale;
        const double up = g + tau;
        if (up < u1[t]) {
          u2[t] = u1[t];
          u1[t] = up;
        } else if (up < u2[t]) {
          u2[t] = up;
        }
        // A MinLoc record only needs the exact winner, so U1 suffices; the
        // top-two records screen against U2.
        const double bar = HasSecond<MinLocT> ? u2[t] : u1[t];
        if (g - tau <= bar) {
          if (cand_n[t] < kGemmCandidates) {
            cand[t * kGemmCandidates + cand_n[t]] =
                static_cast<std::uint32_t>(j);
          }
          ++cand_n[t];  // past capacity: counts on as the overflow marker
        }
      }
    }
  }
  for (std::size_t t = 0; t < count; ++t) {
    MinLocT& rec = scores[t];
    const auto x = dataset.sample(sample_index(t));
    if (cand_n[t] > kGemmCandidates) {
      for (std::size_t j = j_begin; j < j_end; ++j) {
        offer_score(rec, squared_distance(x, centroids.row(j)), j);
      }
      continue;
    }
    for (std::size_t c = 0; c < cand_n[t]; ++c) {
      const std::size_t j = cand[t * kGemmCandidates + c];
      offer_score(rec, squared_distance(x, centroids.row(j)), j);
    }
  }
}

/// Contiguous-range GEMM entry point (mirrors score_tile).
template <typename MinLocT>
inline void score_tile_gemm(const data::Dataset& dataset, std::size_t i_begin,
                            std::size_t i_end, const util::Matrix& centroids,
                            std::span<const double> norms, std::size_t j_begin,
                            std::size_t j_end, std::span<MinLocT> scores,
                            GemmSdcHooks* sdc = nullptr) {
  score_tile_gemm_gen(
      dataset, [i_begin](std::size_t t) { return i_begin + t; },
      i_end - i_begin, centroids, norms, j_begin, j_end, scores, sdc);
}

/// Compacted GEMM entry point (mirrors score_tile_ids).
template <typename MinLocT>
inline void score_tile_ids_gemm(const data::Dataset& dataset,
                                std::span<const std::uint32_t> ids,
                                const util::Matrix& centroids,
                                std::span<const double> norms,
                                std::size_t j_begin, std::size_t j_end,
                                std::span<MinLocT> scores,
                                GemmSdcHooks* sdc = nullptr) {
  score_tile_gemm_gen(
      dataset,
      [ids](std::size_t t) { return static_cast<std::size_t>(ids[t]); },
      ids.size(), centroids, norms, j_begin, j_end, scores, sdc);
}

/// Top-two centroid drifts of one update, with the argmax. What a Hamerly
/// lower-bound update needs: a sample assigned to the fastest-moving
/// centroid only has to defend against the *second* fastest mover, every
/// other sample against the fastest (Hamerly 2010, the "other centroids"
/// refinement).
struct DriftDigest {
  double max1 = 0;          ///< largest drift
  double max2 = 0;          ///< largest drift over the other centroids
  std::size_t argmax = 0;   ///< smallest index attaining max1
};

inline DriftDigest drift_digest(std::span<const double> drift) {
  DriftDigest digest;
  for (std::size_t j = 0; j < drift.size(); ++j) {
    if (drift[j] > digest.max1) {
      digest.max2 = digest.max1;
      digest.max1 = drift[j];
      digest.argmax = j;
    } else if (drift[j] > digest.max2) {
      digest.max2 = drift[j];
    }
  }
  return digest;
}

/// Max drift over centroids other than `j`. On a tie for the maximum the
/// strict `>` above leaves the duplicate in max2, so the exclusion stays
/// exact.
inline double drift_excluding(const DriftDigest& digest, std::size_t j) {
  return j == digest.argmax ? digest.max2 : digest.max1;
}

/// Half the distance from each centroid to its nearest other centroid —
/// Hamerly's "safe radius": a sample strictly closer to its centroid than
/// this cannot have any other centroid nearer. Depends only on the shared
/// snapshot every rank already holds (the update phase publishes all
/// refreshed rows), so every rank computes identical bits with no
/// exchange. k == 1 leaves the single radius at +inf, like the serial
/// baseline.
inline void compute_safe_radii(const util::Matrix& centroids,
                               std::vector<double>& safe) {
  const std::size_t k = centroids.rows();
  safe.assign(k, std::numeric_limits<double>::max());
  // Each pair once — (a[u]-b[u])^2 == (b[u]-a[u])^2 exactly in IEEE, so
  // the symmetric reuse is bit-identical to two directed scans and matches
  // the engines' k(k-1)/2-row charge.
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = a + 1; b < k; ++b) {
      const double half =
          std::sqrt(squared_distance(centroids.row(a), centroids.row(b))) / 2;
      safe[a] = std::min(safe[a], half);
      safe[b] = std::min(safe[b], half);
    }
  }
}

/// Gate one tile of samples [t0, t1): advance each sample's Hamerly bounds
/// by this iteration's drift (upper chases the assigned centroid, lower
/// retreats by the worst *other* mover) and append the ids that remain
/// unresolved to `ids` (caller-cleared). A sample is resolved — provably
/// still assigned to its current centroid — only under a strict
/// upper < max(safe[a], lower): strictness means a skip implies the argmin
/// is unique and unchanged (upper < safe[a] makes every rival strictly
/// farther by the triangle inequality; upper < lower beats the true
/// second-closest), so the left-to-right tie-break — and with it exact
/// Lloyd bit-identity — survives coincident centroids. When `tighten` is
/// set, a sample failing the bound test gets one exact distance to its
/// assigned centroid (replacing the drift-inflated upper) and a second
/// chance — worth one row where a sweep costs k. Levels 1/2 enable it (the
/// assigned centroid's full row is local to the slice owner); Level 3
/// does not (the row is split over the group, so the test would cost the
/// very exchange it tries to skip). All inputs are deterministic,
/// globally-consistent quantities (assignments from the replicated argmin,
/// drift from the published allgather, radii from the shared snapshot), so
/// every rank gating the same samples builds the identical compaction with
/// no exchange. Returns the number of tightening distances spent.
inline std::size_t gate_tile(const data::Dataset& dataset,
                             const util::Matrix& centroids, std::size_t t0,
                             std::size_t t1,
                             std::span<const std::uint32_t> assignments,
                             std::span<const double> drift,
                             const DriftDigest& digest,
                             std::span<const double> safe,
                             std::span<double> upper, std::span<double> lower,
                             bool tighten, std::vector<std::uint32_t>& ids) {
  std::size_t tightened = 0;
  for (std::size_t i = t0; i < t1; ++i) {
    const std::uint32_t a = assignments[i];
    upper[i] += drift[a];
    lower[i] -= drift_excluding(digest, a);
    const double threshold = std::max(safe[a], lower[i]);
    if (upper[i] < threshold) {
      continue;
    }
    if (tighten) {
      upper[i] =
          std::sqrt(squared_distance(dataset.sample(i), centroids.row(a)));
      ++tightened;
      if (upper[i] < threshold) {
        continue;
      }
    }
    ids.push_back(static_cast<std::uint32_t>(i));
  }
  return tightened;
}

/// Refresh a sample's bounds from a freshly swept top-two record: both
/// become exact (sqrt of the squared best / second-best distances).
template <typename MinLocT>
  requires HasSecond<MinLocT>
inline void refresh_bounds(const MinLocT& rec, double& upper, double& lower) {
  upper = std::sqrt(rec.value);
  lower = std::sqrt(rec.second);
}

/// Flat k x d accumulator plus per-centroid counts, in double.
struct UpdateAccumulator {
  explicit UpdateAccumulator(std::size_t k, std::size_t d)
      : k_(k), d_(d), sums(k * d, 0.0), counts(k, 0.0) {}

  void add_sample(std::uint32_t j, std::span<const float> x) {
    double* row = sums.data() + static_cast<std::size_t>(j) * d_;
    for (std::size_t u = 0; u < d_; ++u) {
      row[u] += static_cast<double>(x[u]);
    }
    counts[j] += 1.0;
  }

  /// Add only the [u_begin, u_end) dimension slice (Level 3 owner CPEs).
  void add_sample_slice(std::uint32_t j, std::span<const float> x,
                        std::size_t u_begin, std::size_t u_end) {
    double* row = sums.data() + static_cast<std::size_t>(j) * d_;
    for (std::size_t u = u_begin; u < u_end; ++u) {
      row[u] += static_cast<double>(x[u]);
    }
  }

  void reset() {
    sums.assign(sums.size(), 0.0);
    counts.assign(counts.size(), 0.0);
  }

  std::size_t k() const { return k_; }
  std::size_t d() const { return d_; }

  std::size_t k_;
  std::size_t d_;
  std::vector<double> sums;
  std::vector<double> counts;
};

/// What one update pass did: the largest Euclidean centroid shift, plus
/// how many clusters had no members and were frozen in place. Surfacing
/// the empty count (instead of silently freezing) is what makes a stalled
/// run diagnosable.
struct UpdateOutcome {
  double shift = 0;
  std::size_t empty_clusters = 0;
};

/// Move centroid rows [j_begin, j_end) to the mean of their assigned
/// samples, where `sums`/`counts` hold *just those rows* ((j_end-j_begin)
/// x d and (j_end-j_begin) entries) — the per-shard kernel of the sharded
/// update phase. A row with no samples keeps its position (the
/// empty-cluster rule every level shares) and is counted. Each row's
/// arithmetic is independent, and max/sqrt commute, so sharding the rows
/// over ranks and max-combining the shifts is bit-identical to one full
/// k-row pass.
/// When `row_drift` is non-null it receives, per row, the Euclidean
/// distance the stored centroid moved ((j_end - j_begin) entries; 0 for a
/// frozen empty row). The per-row sum is the ascending-u accumulation of
/// squared float-position diffs in double — the exact operation sequence
/// of sqrt(squared_distance(old_row, new_row)) — so published drifts are
/// bit-identical to a recomputation from a kept copy of the old snapshot.
inline UpdateOutcome apply_update_rows(util::Matrix& centroids,
                                       std::size_t j_begin, std::size_t j_end,
                                       std::span<const double> sums,
                                       std::span<const double> counts,
                                       double* row_drift = nullptr) {
  const std::size_t d = centroids.cols();
  double worst_shift_sq = 0;
  std::size_t empty = 0;
  for (std::size_t j = j_begin; j < j_end; ++j) {
    if (counts[j - j_begin] <= 0) {
      ++empty;
      if (row_drift != nullptr) {
        row_drift[j - j_begin] = 0.0;
      }
      continue;
    }
    double shift_sq = 0;
    const double inv = 1.0 / counts[j - j_begin];
    std::span<float> row = centroids.row(j);
    const double* sum_row = sums.data() + (j - j_begin) * d;
    for (std::size_t u = 0; u < d; ++u) {
      const float previous = row[u];
      row[u] = static_cast<float>(sum_row[u] * inv);
      // Shift is measured between *stored* (float) positions: a stable
      // centroid must report exactly zero movement, or float rounding
      // residue would keep the run from ever converging.
      const double diff =
          static_cast<double>(row[u]) - static_cast<double>(previous);
      shift_sq += diff * diff;
    }
    if (row_drift != nullptr) {
      row_drift[j - j_begin] = shift_sq > 0 ? std::sqrt(shift_sq) : 0.0;
    }
    worst_shift_sq = worst_shift_sq > shift_sq ? worst_shift_sq : shift_sq;
  }
  return {worst_shift_sq > 0 ? std::sqrt(worst_shift_sq) : 0.0, empty};
}

/// Full-range update over all k rows (serial baselines and single-shard
/// callers).
inline UpdateOutcome apply_update(util::Matrix& centroids,
                                  std::span<const double> sums,
                                  std::span<const double> counts) {
  return apply_update_rows(centroids, 0, centroids.rows(), sums, counts);
}

/// One warning per run (not per iteration) when the final update froze
/// empty clusters — the classic cause of a k-means run stalling below the
/// requested k. Callers pass the engine name so logs identify the run.
inline void warn_empty_clusters(std::size_t count, const char* engine) {
  if (count > 0) {
    SWHKM_WARN_AT(engine, -1, -1)
        << count
        << " empty cluster(s) kept their previous position in the "
           "final iteration; consider k-means|| seeding or smaller k";
  }
}

/// Contiguous block [begin, end) of `total` items for worker `index` of
/// `workers` — the dataflow partition rule all levels share. Remainder
/// items go to the lowest-index workers.
inline std::pair<std::size_t, std::size_t> block_range(std::size_t total,
                                                       std::size_t workers,
                                                       std::size_t index) {
  const std::size_t base = total / workers;
  const std::size_t extra = total % workers;
  const std::size_t begin =
      index * base + (index < extra ? index : extra);
  const std::size_t length = base + (index < extra ? 1 : 0);
  return {begin, begin + length};
}

}  // namespace swhkm::core::detail
