#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "util/matrix.hpp"

namespace swhkm::core::detail {

/// Squared Euclidean distance in double precision — the one distance kernel
/// shared by the serial baseline and every engine level, so trajectories
/// can only diverge through summation *order*, never through arithmetic.
inline double squared_distance(std::span<const float> x,
                               std::span<const float> c) {
  double sum = 0;
  for (std::size_t u = 0; u < x.size(); ++u) {
    const double diff = static_cast<double>(x[u]) - static_cast<double>(c[u]);
    sum += diff * diff;
  }
  return sum;
}

/// Partial distance over a dimension slice [u_begin, u_end): the Level 3
/// per-CPE kernel.
inline double partial_squared_distance(std::span<const float> x,
                                       std::span<const float> c,
                                       std::size_t u_begin,
                                       std::size_t u_end) {
  double sum = 0;
  for (std::size_t u = u_begin; u < u_end; ++u) {
    const double diff = static_cast<double>(x[u]) - static_cast<double>(c[u]);
    sum += diff * diff;
  }
  return sum;
}

/// Scan centroids [j_begin, j_end) for the nearest one; ties break toward
/// the smaller index, matching a serial left-to-right scan.
inline std::pair<double, std::uint32_t> nearest_in_slice(
    std::span<const float> x, const util::Matrix& centroids,
    std::size_t j_begin, std::size_t j_end) {
  double best = std::numeric_limits<double>::max();
  std::uint32_t best_j = 0;
  for (std::size_t j = j_begin; j < j_end; ++j) {
    const double dist = squared_distance(x, centroids.row(j));
    if (dist < best) {
      best = dist;
      best_j = static_cast<std::uint32_t>(j);
    }
  }
  return {best, best_j};
}

/// Flat k x d accumulator plus per-centroid counts, in double.
struct UpdateAccumulator {
  explicit UpdateAccumulator(std::size_t k, std::size_t d)
      : k_(k), d_(d), sums(k * d, 0.0), counts(k, 0.0) {}

  void add_sample(std::uint32_t j, std::span<const float> x) {
    double* row = sums.data() + static_cast<std::size_t>(j) * d_;
    for (std::size_t u = 0; u < d_; ++u) {
      row[u] += static_cast<double>(x[u]);
    }
    counts[j] += 1.0;
  }

  /// Add only the [u_begin, u_end) dimension slice (Level 3 owner CPEs).
  void add_sample_slice(std::uint32_t j, std::span<const float> x,
                        std::size_t u_begin, std::size_t u_end) {
    double* row = sums.data() + static_cast<std::size_t>(j) * d_;
    for (std::size_t u = u_begin; u < u_end; ++u) {
      row[u] += static_cast<double>(x[u]);
    }
  }

  void reset() {
    sums.assign(sums.size(), 0.0);
    counts.assign(counts.size(), 0.0);
  }

  std::size_t k() const { return k_; }
  std::size_t d() const { return d_; }

  std::size_t k_;
  std::size_t d_;
  std::vector<double> sums;
  std::vector<double> counts;
};

/// Move centroids to the mean of their assigned samples; a centroid with no
/// samples keeps its position (the empty-cluster rule every level shares).
/// Returns the largest Euclidean shift of any centroid.
inline double apply_update(util::Matrix& centroids,
                           std::span<const double> sums,
                           std::span<const double> counts) {
  const std::size_t k = centroids.rows();
  const std::size_t d = centroids.cols();
  double worst_shift_sq = 0;
  for (std::size_t j = 0; j < k; ++j) {
    if (counts[j] <= 0) {
      continue;
    }
    double shift_sq = 0;
    const double inv = 1.0 / counts[j];
    std::span<float> row = centroids.row(j);
    const double* sum_row = sums.data() + j * d;
    for (std::size_t u = 0; u < d; ++u) {
      const float previous = row[u];
      row[u] = static_cast<float>(sum_row[u] * inv);
      // Shift is measured between *stored* (float) positions: a stable
      // centroid must report exactly zero movement, or float rounding
      // residue would keep the run from ever converging.
      const double diff =
          static_cast<double>(row[u]) - static_cast<double>(previous);
      shift_sq += diff * diff;
    }
    worst_shift_sq = worst_shift_sq > shift_sq ? worst_shift_sq : shift_sq;
  }
  return worst_shift_sq > 0 ? std::sqrt(worst_shift_sq) : 0.0;
}

/// Contiguous block [begin, end) of `total` items for worker `index` of
/// `workers` — the dataflow partition rule all levels share. Remainder
/// items go to the lowest-index workers.
inline std::pair<std::size_t, std::size_t> block_range(std::size_t total,
                                                       std::size_t workers,
                                                       std::size_t index) {
  const std::size_t base = total / workers;
  const std::size_t extra = total % workers;
  const std::size_t begin =
      index * base + (index < extra ? index : extra);
  const std::size_t length = base + (index < extra ? 1 : 0);
  return {begin, begin + length};
}

}  // namespace swhkm::core::detail
