#include "core/level2.hpp"

#include <algorithm>

#include "core/engine_common.hpp"
#include "core/metrics.hpp"
#include "simarch/regcomm.hpp"
#include "simarch/topology.hpp"
#include "simarch/trace.hpp"
#include "swmpi/collectives.hpp"
#include "swmpi/runtime.hpp"
#include "telemetry/telemetry.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"

namespace swhkm::core {

KmeansResult run_level2(const data::Dataset& dataset,
                        const KmeansConfig& config,
                        const simarch::MachineConfig& machine,
                        const PartitionPlan& plan,
                        util::Matrix initial_centroids) {
  SWHKM_REQUIRE(plan.level == Level::kLevel2, "plan is not a Level 2 plan");
  SWHKM_REQUIRE(plan.shape.n == dataset.n() && plan.shape.d == dataset.d() &&
                    plan.shape.k == config.k,
                "plan shape does not match the dataset/config");
  detail::validate_ldm_layout(plan, machine);

  const std::size_t num_cgs = machine.num_cgs();
  const std::size_t cpes = machine.cpes_per_cg;
  const std::size_t g = plan.m_group;
  const std::size_t groups_per_cg = cpes / g;
  const std::size_t flow_units = plan.num_flow_units;
  const std::size_t k = config.k;
  const std::size_t d = dataset.d();
  const std::size_t k_local = plan.k_local;
  const std::size_t eb = machine.elem_bytes;
  // See level1: too-small LDM downgrades the (bit-identical) GEMM kernel
  // rather than rejecting a tile that fits without its scratch.
  const bool gemm_enabled =
      config.gemm_assign &&
      gemm_scratch_fits(config.tile_samples, plan, machine,
                        config.sstep_tiles);
  const std::size_t tile_samples = resolve_tile_samples(
      config.tile_samples, plan, machine, config.sstep_tiles, gemm_enabled);
  if (config.gemm_assign && !gemm_enabled) {
    SWHKM_WARN << "level2: GEMM scratch for tile_samples="
               << config.tile_samples
               << " overflows LDM; using the chain kernel (bit-identical)";
  }
  const simarch::Topology topo(machine);
  // Hierarchical-collective schedule (see level1.cpp): supernode-wide
  // intra groups, machine-derived crossover, RAII runtime install.
  const bool hier = config.hier_collectives;
  const std::size_t xover = machine.collective_crossover_bytes();
  const swmpi::ScopedCollectiveSchedule collective_guard(
      hier ? swmpi::CollectiveSchedule::kHierarchical
           : swmpi::CollectiveSchedule::kFlat,
      {static_cast<int>(machine.cgs_per_node * machine.supernode_nodes),
       xover});

  KmeansResult result;
  result.assignments.assign(dataset.n(), 0);

  // One shared read-only centroid snapshot for all ranks (refreshed only
  // at the bulk-synchronous iteration edge inside reduce_and_update), so
  // centroid memory is O(k*d) per run instead of per rank.
  util::Matrix centroids = std::move(initial_centroids);
  std::size_t iterations = 0;
  bool converged = false;
  std::size_t empty_clusters = 0;
  simarch::CostTally total_cost;
  simarch::CostTally last_cost;
  std::vector<IterationStats> history;

  telemetry::Telemetry* const tel = config.telemetry;

  swmpi::run_spmd(static_cast<int>(num_cgs), [&](swmpi::Comm& world) {
    const std::size_t cg = static_cast<std::size_t>(world.rank());
    // Engine-side metric handles, resolved once per rank (name lookup is
    // the slow path). sim.* ledgers tick on cg 0 only, mirroring the
    // history rows they reconcile against.
    telemetry::MetricsShard* const tshard =
        tel != nullptr ? &tel->metrics().shard(world.global_rank()) : nullptr;
    telemetry::FlightRing* const flight =
        tshard != nullptr ? tshard->flight() : nullptr;
    telemetry::Counter* const pruned_ctr =
        tshard != nullptr ? &tshard->counter("engine.gate.pruned_samples")
                          : nullptr;
    telemetry::Counter* const swept_ctr =
        tshard != nullptr ? &tshard->counter("engine.gate.swept_samples")
                          : nullptr;
    telemetry::Histogram* const survivor_hist =
        tshard != nullptr ? &tshard->histogram("engine.gate.survivor_tile")
                          : nullptr;
    telemetry::Histogram* const overlap_hist =
        tshard != nullptr ? &tshard->histogram("engine.pipeline.overlap_s")
                          : nullptr;
    telemetry::Counter* const sim_net =
        tshard != nullptr && cg == 0 ? &tshard->counter("sim.net_bytes")
                                     : nullptr;
    telemetry::Counter* const sim_dma =
        tshard != nullptr && cg == 0 ? &tshard->counter("sim.dma_bytes")
                                     : nullptr;
    const bool spans_on = tel != nullptr && tel->config().wall_spans;
    double rank_clock = 0;
    detail::UpdateAccumulator acc(k, d);
    const std::size_t accum_bytes = (k * d + k) * eb;
    const bool gate = config.gate_assign;
    const bool pipeline = config.pipeline_tiles;
    const bool gemm = gemm_enabled;
    // SDC defense (KmeansConfig::sdc_checks) — see level1.cpp for the full
    // protocol: snapshot/accumulator CRC scrubbing, ABFT checksum columns
    // on the GEMM panels, counts conservation in the sharded update.
    const bool sdc = config.sdc_checks;
    std::uint64_t sdc_iter = 0;
    std::uint32_t snap_crc = 0;
    bool snap_crc_valid = false;
    detail::GemmSdcHooks gemm_sdc;
    if (sdc) {
      gemm_sdc.check = true;
      gemm_sdc.flip = [&world, &sdc_iter](std::span<std::byte> bytes) {
        world.memory_fault_point(swmpi::MemorySite::kTileScratch, sdc_iter,
                                 bytes);
      };
    }
    detail::GemmSdcHooks* const gemm_hooks = sdc ? &gemm_sdc : nullptr;
    // Per-iteration ||c||^2 cache for the GEMM-formulated sweep (see
    // level1.cpp): gated iterations refresh only the drift-marked rows.
    detail::CentroidNormCache norm_cache;

    // Double-buffered tile slots (see level1.cpp): tile t+1 stages into
    // the spare buffer before tile t's merge retires; ascending retire
    // order keeps the accumulator's summation order and the centroid bits.
    struct TileSlot {
      std::size_t t0 = 0;
      std::size_t t1 = 0;
      bool valid = false;
      std::vector<std::uint32_t> ids;
      std::vector<detail::TileScore2> scores;
    };
    TileSlot slots[2];
    for (TileSlot& s : slots) {
      s.scores.resize(tile_samples);
      if (gate) {
        s.ids.reserve(tile_samples);
      }
    }

    // Bound-gated assign state (per rank; only this rank's flow units'
    // blocks are ever touched) — see level1.cpp.
    std::vector<double> upper;
    std::vector<double> lower;
    std::vector<double> drift;
    std::vector<double> safe;
    if (gate) {
      upper.assign(dataset.n(), 0.0);
      lower.assign(dataset.n(), 0.0);
      drift.assign(k, 0.0);
    }
    std::uint64_t distance_comps = 0;
    std::uint64_t lloyd_equivalent = 0;

    for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
      // Global iteration index: the RecoveryDriver runs this engine in
      // legs, and fault schedules / trace rows are addressed globally.
      const std::uint64_t global_iter = config.iteration_base + iter;
      if (flight != nullptr) {
        flight->record(telemetry::FlightEventKind::kIterationStart,
                       static_cast<std::uint32_t>(global_iter), 0, 0, 0,
                       rank_clock);
      }
      world.fault_point(swmpi::FaultSite::kAssign, global_iter);
      if (sdc) {
        // Snapshot scrub: capture / barrier / flip point / barrier /
        // verify — see level1.cpp for the ordering argument.
        sdc_iter = global_iter;
        const std::span<float> snap = centroids.flat();
        if (!snap_crc_valid) {
          snap_crc = util::crc32(std::as_bytes(snap));
          snap_crc_valid = true;
        }
        swmpi::barrier(world);
        world.memory_fault_point(swmpi::MemorySite::kSnapshot, global_iter,
                                 std::as_writable_bytes(snap));
        swmpi::barrier(world);
        if (util::crc32(std::as_bytes(snap)) != snap_crc) {
          if (tshard != nullptr) {
            tshard->counter("sdc.snapshot.crc_fail").add(1);
          }
          throw SilentCorruptionError(
              "sdc: centroid snapshot CRC mismatch at iteration " +
              std::to_string(global_iter) +
              " — published centroid bits were corrupted in memory");
        }
      }
      const double assign_start_us = spans_on ? tel->now_us() : 0.0;
      acc.reset();
      simarch::CostTally tally;
      simarch::RegComm reg(machine, tally);
      const std::uint64_t abft_recomputed_before = gemm_sdc.recomputed;

      const bool gating = gate && iter > 0;
      const detail::DriftDigest digest =
          gating ? detail::drift_digest(drift) : detail::DriftDigest{};
      if (gating) {
        detail::compute_safe_radii(centroids, safe);
      }
      std::size_t norm_rows = 0;
      if (gemm) {
        norm_rows = gating ? norm_cache.refresh_from_drift(centroids, drift)
                           : norm_cache.refresh_full(centroids);
        tally.compute_s += static_cast<double>(norm_rows) *
                           machine.gemm_row_seconds(d);
        // Norm refresh seconds are charged above, but its O(k d) products
        // stay out of `flops`, which keeps its exact 2nkd distance-work
        // meaning (FlopAccountingMatches2nkd) and prices the FLOP *rate*
        // from the panel product alone.
      }
      const std::span<const double> norms(norm_cache.norms.data(),
                                          norm_cache.norms.size());

      // Assign: each CPE group of this CG takes one flow unit's block;
      // every member CPE reads the whole sample (replication factor g) and
      // scores its centroid slice, with the group's register-bus argmin
      // combine selecting the winner (priced below). The g slices tile
      // [0, k) contiguously, so functionally the combine is one ascending
      // scan of all centroids — done here a tile of samples at a time
      // through the shared cache-blocked kernel. The bound gate compacts
      // each tile first: a gated sample skips the replicated read, the
      // slice sweep and the register combine, and is accumulated by its
      // stored assignment's owner from a single read. The merge walks the
      // tile in ascending i, so the fused sums keep the exact summation
      // order of the ungated sweep.
      std::uint64_t sample_bytes = 0;
      std::uint64_t max_group_samples = 0;
      std::uint64_t max_group_unresolved = 0;
      std::uint64_t max_group_tightened = 0;
      std::uint64_t rank_samples = 0;
      std::uint64_t rank_unresolved = 0;
      std::uint64_t rank_tightened = 0;
      for (std::size_t grp = 0; grp < groups_per_cg; ++grp) {
        const std::size_t flow_unit = cg * groups_per_cg + grp;
        const auto [begin, end] =
            detail::block_range(dataset.n(), flow_units, flow_unit);
        std::uint64_t group_unresolved = 0;
        std::uint64_t group_tightened = 0;

        // Stage tile [t0, t1): gate + score it into the slot's buffers.
        auto stage = [&](TileSlot& s, std::size_t t0, std::size_t t1) {
          s.t0 = t0;
          s.t1 = t1;
          s.valid = true;
          if (flight != nullptr) {
            flight->record(telemetry::FlightEventKind::kTileStart,
                           static_cast<std::uint32_t>(global_iter), 0, t0,
                           t1);
          }
          if (!gating) {
            const std::span<detail::TileScore2> scores(s.scores.data(),
                                                       t1 - t0);
            detail::clear_scores(scores);
            if (gemm) {
              detail::score_tile_gemm(dataset, t0, t1, centroids, norms, 0, k,
                                      scores, gemm_hooks);
            } else {
              detail::score_tile(dataset, t0, t1, centroids, 0, k, scores);
            }
            return;
          }
          s.ids.clear();
          // Tightening is local here: the sample is already replicated to
          // the group and the assigned centroid's full row lives in one
          // member's slice; the verdict rides the register bus.
          group_tightened += detail::gate_tile(
              dataset, centroids, t0, t1, result.assignments, drift, digest,
              safe, upper, lower, /*tighten=*/true, s.ids);
          if (survivor_hist != nullptr) {
            survivor_hist->observe(static_cast<double>(s.ids.size()));
          }
          if (!s.ids.empty()) {
            const std::span<detail::TileScore2> scores(s.scores.data(),
                                                       s.ids.size());
            detail::clear_scores(scores);
            const std::span<const std::uint32_t> ids(s.ids.data(),
                                                     s.ids.size());
            if (gemm) {
              detail::score_tile_ids_gemm(dataset, ids, centroids, norms, 0,
                                          k, scores, gemm_hooks);
            } else {
              detail::score_tile_ids(dataset, ids, centroids, 0, k, scores);
            }
          }
        };

        // Retire tile [s.t0, s.t1): merge in ascending-i order.
        auto retire = [&](TileSlot& s) {
          if (!gating) {
            const std::span<const detail::TileScore2> scores(s.scores.data(),
                                                             s.t1 - s.t0);
            for (std::size_t i = s.t0; i < s.t1; ++i) {
              const detail::TileScore2& rec = scores[i - s.t0];
              const auto best_j = static_cast<std::uint32_t>(rec.index);
              result.assignments[i] = best_j;
              if (gate) {
                detail::refresh_bounds(rec, upper[i], lower[i]);
              }
              acc.add_sample(best_j, dataset.sample(i));
            }
            group_unresolved += s.t1 - s.t0;
            s.valid = false;
            if (flight != nullptr) {
              flight->record(telemetry::FlightEventKind::kTileEnd,
                             static_cast<std::uint32_t>(global_iter), 0,
                             s.t0, s.t1);
            }
            return;
          }
          const std::span<const detail::TileScore2> scores(s.scores.data(),
                                                           s.ids.size());
          std::size_t pos = 0;
          for (std::size_t i = s.t0; i < s.t1; ++i) {
            std::uint32_t best_j;
            if (pos < s.ids.size() && s.ids[pos] == i) {
              const detail::TileScore2& rec = scores[pos];
              best_j = static_cast<std::uint32_t>(rec.index);
              result.assignments[i] = best_j;
              detail::refresh_bounds(rec, upper[i], lower[i]);
              ++pos;
            } else {
              best_j = result.assignments[i];
            }
            acc.add_sample(best_j, dataset.sample(i));
          }
          group_unresolved += s.ids.size();
          s.valid = false;
          if (flight != nullptr) {
            flight->record(telemetry::FlightEventKind::kTileEnd,
                           static_cast<std::uint32_t>(global_iter), 0, s.t0,
                           s.t1);
          }
        };

        int cur = 0;
        for (std::size_t t0 = begin; t0 < end; t0 += tile_samples) {
          const std::size_t t1 = std::min(end, t0 + tile_samples);
          stage(slots[cur], t0, t1);
          if (!pipeline) {
            retire(slots[cur]);
            continue;
          }
          TileSlot& prev = slots[cur ^ 1];
          if (prev.valid) {
            retire(prev);
          }
          cur ^= 1;
        }
        if (pipeline && slots[cur ^ 1].valid) {
          retire(slots[cur ^ 1]);
        }
        const std::uint64_t count = end - begin;
        // Unresolved samples pay the replicated read (every member CPE of
        // the group needs the vector to score its slice); gated ones are
        // read once by the accumulating owner.
        sample_bytes += gating ? group_unresolved * d * eb * g +
                                     (count - group_unresolved) * d * eb
                               : count * d * eb * g;
        rank_samples += count;
        rank_unresolved += group_unresolved;
        rank_tightened += group_tightened;
        max_group_samples = std::max(max_group_samples, count);
        max_group_unresolved =
            std::max(max_group_unresolved, group_unresolved);
        max_group_tightened =
            std::max(max_group_tightened, group_tightened);
      }
      if (spans_on) {
        tel->spans().record("assign", static_cast<std::uint32_t>(cg),
                            static_cast<std::uint32_t>(global_iter),
                            assign_start_us, tel->now_us() - assign_start_us);
      }
      if (swept_ctr != nullptr) {
        swept_ctr->add(rank_unresolved);
        pruned_ctr->add(rank_samples - rank_unresolved);
      }
      const double sample_read_before = tally.sample_read_s;
      detail::charge_sample_stream(tally, machine, sample_bytes,
                                   max_group_samples);
      const double sample_dma_s = tally.sample_read_s - sample_read_before;
      const double centroid_stream_before = tally.centroid_stream_s;
      if (!gating || max_group_unresolved > 0) {
        detail::charge_centroid_traffic(tally, machine, plan,
                                        max_group_unresolved);
      }
      const double centroid_dma_s =
          tally.centroid_stream_s - centroid_stream_before;
      // Swept survivor slice-rows run at the active kernel's rate; tighten
      // rows are always single-row exact distances (multi-chain).
      const double sweep_compute_s =
          static_cast<double>(max_group_unresolved * k_local) *
              (gemm ? machine.gemm_row_seconds(d)
                    : machine.assign_row_seconds(d)) +
          static_cast<double>(max_group_tightened) *
              machine.assign_row_seconds(d);
      tally.compute_s += sweep_compute_s;

      // Tile pipeline overlap (see level1.cpp): tile t+1's replicated
      // sample read and centroid re-stream land under tile t's slice
      // sweep; hidden seconds move into overlapped_dma_s.
      const double tile_dma_s = sample_dma_s + centroid_dma_s;
      if (pipeline && max_group_samples > tile_samples && tile_dma_s > 0) {
        const std::size_t ntiles =
            (max_group_samples + tile_samples - 1) / tile_samples;
        const double window = sweep_compute_s *
                              static_cast<double>(ntiles - 1) /
                              static_cast<double>(ntiles);
        const double hidden = std::min(tile_dma_s, window);
        const double f = hidden / tile_dma_s;
        tally.sample_read_s -= f * sample_dma_s;
        tally.centroid_stream_s -= f * centroid_dma_s;
        tally.overlapped_dma_s += hidden;
        if (overlap_hist != nullptr) {
          overlap_hist->observe(hidden);
        }
      }
      tally.flops += (rank_unresolved * k + rank_tightened) * 2 * d;
      if (gating) {
        // Safe radii: k(k-1)/2 centroid-pair rows from the shared
        // snapshot, recomputed by every CG each iteration.
        tally.compute_s += static_cast<double>(k * (k - 1) / 2) *
                           machine.assign_row_seconds(d);
        tally.flops += k * (k - 1) * d;
      }
      tally.pruned_samples += rank_samples - rank_unresolved;
      distance_comps += rank_unresolved * k + rank_tightened;
      lloyd_equivalent += rank_samples * k;
      if (sdc) {
        // Modeled SDC overhead (see level1.cpp): ABFT checksum chains at
        // 1/8 of the sweep rate, one streaming pass for the snapshot +
        // accumulator scrubs, frame trailers + the conservation allreduce
        // on the network. Charged only when the defense is armed.
        tally.compute_s += static_cast<double>(rank_unresolved) *
                           (gemm ? machine.gemm_row_seconds(d)
                                 : machine.assign_row_seconds(d)) *
                           0.125;
        tally.compute_s += static_cast<double>(k * d * eb + accum_bytes) /
                           machine.dma_bandwidth;
        const std::uint64_t sdc_net = 16 * 2 * num_cgs + sizeof(double);
        tally.net_comm_s += topo.allgather_time(sdc_net, 0, num_cgs);
        tally.net_bytes += sdc_net;
        tally.net_rounds += 1;  // the counts-conservation allreduce
        tally.sdc_recomputed += gemm_sdc.recomputed - abft_recomputed_before;
        if (tshard != nullptr &&
            gemm_sdc.recomputed != abft_recomputed_before) {
          tshard->counter("sdc.abft.detected")
              .add(gemm_sdc.recomputed - abft_recomputed_before);
        }
      }

      // Per-sample argmin combine on the register buses (groups of a CG
      // run in parallel; charge the busiest group) — compacted to the
      // unresolved samples — then the update-phase reductions: same-slice
      // CPEs across the CG's groups, and the machine-wide sharded phase —
      // reduce_scatter of the fused accumulator, per-CG shard apply, then
      // one allgather publishing the refreshed rows with the (shift,
      // empties) stats riding as a 16-byte per-rank header (plus the
      // k-double drift vector when gating).
      // Gated runs combine the 24-byte top-two record (the runner-up must
      // survive the slice combine to seed the lower bound); ungated runs
      // keep the seed's 16-byte argmin. Each tightening distance is one
      // double broadcast from the slice owner over the same bus.
      reg.account_allreduce(gate ? 24 : 16, g, max_group_unresolved);
      reg.account_allreduce(8, g, max_group_tightened);
      reg.account_allreduce(k_local * d * eb, groups_per_cg);
      const std::size_t publish_bytes =
          k * d * eb + 16 * num_cgs + (gate ? k * sizeof(double) : 0);
      if (hier) {
        const simarch::CollectiveCharge rs =
            topo.hier_reduce_scatter_charge(accum_bytes, 0, num_cgs, xover);
        const simarch::CollectiveCharge ag =
            topo.hier_allgather_charge(publish_bytes, 0, num_cgs);
        tally.net_comm_s += rs.seconds + ag.seconds;
        tally.net_crossing_bytes += rs.crossing_bytes + ag.crossing_bytes;
        if (cg == 0) {
          detail::tick_collective_charge(tshard, "sim.collective.update_rs",
                                         rs);
          detail::tick_collective_charge(tshard, "sim.collective.update_ag",
                                         ag);
        }
      } else {
        tally.net_comm_s +=
            topo.reduce_scatter_time(accum_bytes, 0, num_cgs) +
            topo.allgather_time(publish_bytes, 0, num_cgs);
      }
      tally.net_bytes += accum_bytes + publish_bytes;
      tally.net_rounds += 2;  // reduce_scatter + allgather

      world.fault_point(swmpi::FaultSite::kUpdate, global_iter);
      if (sdc) {
        // Accumulator scrub (see level1.cpp): CRC covers the sums only;
        // counts flips fall to the Σcounts == n guard in the fold.
        const std::span<double> sums(acc.sums.data(), acc.sums.size());
        const std::span<double> counts(acc.counts.data(), acc.counts.size());
        const std::uint32_t sums_crc = util::crc32(std::as_bytes(sums));
        world.memory_fault_point(swmpi::MemorySite::kUpdateAccum, global_iter,
                                 std::as_writable_bytes(sums),
                                 std::as_writable_bytes(counts));
        if (util::crc32(std::as_bytes(sums)) != sums_crc) {
          if (tshard != nullptr) {
            tshard->counter("sdc.accum.crc_fail").add(1);
          }
          throw SilentCorruptionError(
              "sdc: update accumulator CRC mismatch on rank " +
              std::to_string(world.global_rank()) + " at iteration " +
              std::to_string(global_iter) +
              " — accumulator sums were corrupted before the fold");
        }
      }
      const double update_start_us = spans_on ? tel->now_us() : 0.0;
      const detail::UpdateOutcome outcome = detail::reduce_and_update(
          world, centroids, acc,
          gate ? std::span<double>(drift.data(), drift.size())
               : std::span<double>{},
          sdc ? dataset.n() : 0);
      if (sdc) {
        snap_crc = util::crc32(std::as_bytes(centroids.flat()));
        snap_crc_valid = true;
      }
      if (spans_on) {
        tel->spans().record("update", static_cast<std::uint32_t>(cg),
                            static_cast<std::uint32_t>(global_iter),
                            update_start_us, tel->now_us() - update_start_us);
      }
      const double shift = outcome.shift;
      const auto [u_begin, u_end] = detail::block_range(k, num_cgs, cg);
      const std::size_t shard_rows = u_end - u_begin;
      tally.update_s +=
          static_cast<double>(2 * shard_rows * d) /
              (machine.cg_flops() * machine.compute_efficiency) +
          static_cast<double>(shard_rows * d * eb) / machine.dma_bandwidth;

      if (config.trace != nullptr) {
        config.trace->record_iteration(static_cast<std::uint32_t>(cg),
                                       static_cast<std::uint32_t>(global_iter),
                                       rank_clock, tally);
      }
      world.fault_point(swmpi::FaultSite::kCollective, global_iter);
      const simarch::CostTally combined =
          detail::combine_tallies(world, tally);
      rank_clock += combined.total_s();  // bulk-synchronous iteration edge
      if (flight != nullptr) {
        flight->record(telemetry::FlightEventKind::kIterationEnd,
                       static_cast<std::uint32_t>(global_iter), 0, 0, 0,
                       rank_clock);
      }
      if (cg == 0) {
        total_cost += combined;
        last_cost = combined;
        iterations = iter + 1;
        empty_clusters = outcome.empty_clusters;
        history.push_back({shift, combined.total_s(),
                           static_cast<double>(combined.pruned_samples) /
                               static_cast<double>(dataset.n()),
                           combined.net_bytes, combined.dma_bytes,
                           combined.flops, combined.net_rounds});
        history.back().net_crossing_bytes = combined.net_crossing_bytes;
        history.back().sdc_recomputed = combined.sdc_recomputed;
        detail::fill_phase_stats(history.back(), combined);
        if (sim_net != nullptr) {
          sim_net->add(combined.net_bytes);
          sim_dma->add(combined.dma_bytes);
        }
      }
      if (shift <= config.tolerance) {
        if (cg == 0) {
          converged = true;
        }
        break;
      }
    }

    // Every rank leaves the loop at the same iteration (shift is
    // replicated), so one closing collective folds the per-rank distance
    // ledgers.
    std::uint64_t counters[2] = {distance_comps, lloyd_equivalent};
    swmpi::allreduce_sum(world, std::span<std::uint64_t>(counters, 2));
    if (cg == 0) {
      result.accel.distance_computations = counters[0];
      result.accel.lloyd_equivalent = counters[1];
    }
  }, config.fault_plan,
      tel != nullptr && tel->config().swmpi ? &tel->metrics() : nullptr);

  detail::warn_empty_clusters(empty_clusters, "level2");
  result.centroids = std::move(centroids);
  result.iterations = iterations;
  result.converged = converged;
  if (config.gate_assign && iterations > 1) {
    // Safe-radius maintenance: k(k-1)/2 centroid pairs per gated
    // iteration, counted once (the per-rank copies are replicas).
    result.accel.centroid_distance_computations =
        (iterations - 1) * config.k * (config.k - 1) / 2;
  }
  result.empty_clusters = empty_clusters;
  result.cost = total_cost;
  result.last_iteration_cost = last_cost;
  result.history = std::move(history);
  result.inertia = inertia(dataset, result.centroids, result.assignments);
  return result;
}

}  // namespace swhkm::core
