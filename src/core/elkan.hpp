#pragma once

#include "core/accel_stats.hpp"
#include "core/kmeans.hpp"
#include "data/dataset.hpp"

namespace swhkm::core {

/// Elkan's exact accelerated k-means (ICML'03): one upper bound plus a
/// full n x k matrix of lower bounds, pruned with triangle inequalities
/// against inter-centroid separations. The strongest pruner of the exact
/// family at moderate k, at the price of O(n·k) bound memory — which is
/// precisely the memory/k trade the paper's Level 2/3 partitions are
/// about, making it the natural single-node foil.
///
/// Trajectory-identical to lloyd_serial on continuous data (exact ties
/// may resolve differently; they have probability zero for float data).
KmeansResult elkan_serial(const data::Dataset& dataset,
                          const KmeansConfig& config,
                          AccelStats* stats = nullptr);

KmeansResult elkan_serial_from(const data::Dataset& dataset,
                               const KmeansConfig& config,
                               util::Matrix centroids,
                               AccelStats* stats = nullptr);

}  // namespace swhkm::core
