#pragma once

#include "core/engine_util.hpp"
#include "core/kmeans.hpp"
#include "core/partition.hpp"
#include "data/dataset.hpp"
#include "simarch/cost.hpp"
#include "simarch/ldm.hpp"
#include "swmpi/comm.hpp"
#include "util/matrix.hpp"

namespace swhkm::core::detail {

/// Combine per-rank (per-CG) iteration tallies into the machine-level
/// iteration cost: time components take the slowest rank (critical path),
/// volume counters sum. Collective; every rank receives the result.
simarch::CostTally combine_tallies(swmpi::Comm& comm,
                                   const simarch::CostTally& mine);

/// Sum accumulators and counts across all ranks and move the *shared*
/// centroid snapshot to the new means. Every rank passes a reference to
/// the same owning Matrix (one copy per run, not per rank); only rank 0
/// writes it, at the bulk-synchronous iteration edge, and the returned
/// shift doubles as the release: non-root ranks receive it only after the
/// update is complete, so their next assign phase reads the refreshed
/// snapshot, and rank 0 starts writing only after every rank has (at
/// least transitively) handed over its partials — i.e. finished reading
/// the previous snapshot. Bit-deterministic: the binomial reduce tree is
/// the same one the former per-rank allreduce used.
double reduce_and_update(swmpi::Comm& comm, util::Matrix& centroids,
                         UpdateAccumulator& acc);

/// Charge a per-CG sample stream: `bytes` through the CG's DMA at
/// bandwidth B, plus `critical_transfers` issue overheads (transfers on
/// the longest per-CPE chain; issue overlaps across CPEs).
void charge_sample_stream(simarch::CostTally& tally,
                          const simarch::MachineConfig& machine,
                          std::uint64_t bytes,
                          std::uint64_t critical_transfers);

/// Charge centroid traffic for one iteration on one CG under `plan`:
/// a single slice (re)load when resident, otherwise the cheaper of
/// per-sample re-streaming and tiled sample passes (mirrors the perf
/// model's streamed_centroid_bytes policy).
void charge_centroid_traffic(simarch::CostTally& tally,
                             const simarch::MachineConfig& machine,
                             const PartitionPlan& plan,
                             std::uint64_t samples_through_cg);

/// Validate that the plan's LDM layout actually fits by allocating it
/// through the scratchpad allocator — throws CapacityError on a planner
/// bug rather than silently pretending.
void validate_ldm_layout(const PartitionPlan& plan,
                         const simarch::MachineConfig& machine);

}  // namespace swhkm::core::detail
