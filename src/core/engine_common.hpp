#pragma once

#include "core/engine_util.hpp"
#include "core/kmeans.hpp"
#include "core/partition.hpp"
#include "data/dataset.hpp"
#include "simarch/cost.hpp"
#include "simarch/ldm.hpp"
#include "simarch/topology.hpp"
#include "swmpi/comm.hpp"
#include "util/matrix.hpp"

namespace swhkm::telemetry {
class MetricsShard;
}

namespace swhkm::core::detail {

/// Combine per-rank (per-CG) iteration tallies into the machine-level
/// iteration cost: time components take the slowest rank (critical path),
/// volume counters sum. Collective; every rank receives the result.
simarch::CostTally combine_tallies(swmpi::Comm& comm,
                                   const simarch::CostTally& mine);

/// Sharded update phase: sum accumulators and counts across all ranks and
/// move the *shared* centroid snapshot to the new means, with every rank
/// doing 1/size of the work. Every rank passes a reference to the same
/// owning Matrix (one copy per run, not per rank).
///
/// Shape: a reduce_scatter of the fused (sums, counts) partials hands rank
/// r the contiguous centroid-row shard block_range(k, size, r); each rank
/// applies apply_update_rows to its own rows of the shared snapshot in
/// parallel; one collective publishes the refreshed rows and the (max
/// shift, summed empty-cluster) stats.
///
/// Realization on the thread-backed runtime: ranks are threads, so the
/// reduce_scatter is a zero-copy binomial fold — an allgather publishes
/// each accumulator by address and every rank folds its own shard reading
/// the peers' partials in place (the same shared-memory idiom the engines
/// use for the centroid snapshot). A message-passing deployment would call
/// swmpi::reduce_scatter_ranges + allgatherv instead (same bits — the
/// collectives are tested bit-identical to the fold); the engines charge
/// the distributed cost either way through the topology model.
///
/// Bit-deterministic AND bit-identical to the former root-serialized
/// update: the fold combines per element in the root-0 binomial
/// association — the exact tree the old two-reduce path used — sharding
/// cannot change any element's association, each row's division is
/// rank-independent, and max/sqrt commute for the shift.
///
/// Publication: rank r writes only its own rows, so the writes are
/// disjoint; the entry allgather orders every assign-phase write before
/// any fold read, and the closing stats allreduce orders every row write
/// before the next assign phase reads the snapshot — and before any owner
/// reuses its accumulator.
///
/// Drift publication: when `drift_out` is non-empty (k entries, same on
/// every rank — collective discipline), each rank computes the Euclidean
/// movement of its own shard rows while applying them (0 for frozen empty
/// rows) and an allgatherv assembles the full per-centroid drift vector on
/// every rank. Drift is computed exactly once, where the rows are updated,
/// so all ranks hold bit-identical drifts — the determinism the replicated
/// bound gate rests on. The engines charge the extra k doubles to the
/// publish allgather in the topology model.
/// Counts-conservation guard (KmeansConfig::sdc_checks): when
/// `sdc_expect_count` is nonzero it is the dataset's sample count, and the
/// folded per-shard counts are summed machine-wide (one extra scalar
/// allreduce) and required to equal it exactly — counts are small integers,
/// exactly representable in double, so Σcounts != n can only mean a count
/// was corrupted between accumulation and fold. Violation throws
/// SilentCorruptionError on every rank. 0 disables the guard (and the extra
/// collective), keeping defense-off charges untouched.
UpdateOutcome reduce_and_update(swmpi::Comm& comm, util::Matrix& centroids,
                                const UpdateAccumulator& acc,
                                std::span<double> drift_out = {},
                                std::uint64_t sdc_expect_count = 0);

/// Charge a per-CG sample stream: `bytes` through the CG's DMA at
/// bandwidth B, plus `critical_transfers` issue overheads (transfers on
/// the longest per-CPE chain; issue overlaps across CPEs).
void charge_sample_stream(simarch::CostTally& tally,
                          const simarch::MachineConfig& machine,
                          std::uint64_t bytes,
                          std::uint64_t critical_transfers);

/// Charge centroid traffic for one iteration on one CG under `plan`:
/// a single slice (re)load when resident, otherwise the cheaper of
/// per-sample re-streaming and tiled sample passes (mirrors the perf
/// model's streamed_centroid_bytes policy).
void charge_centroid_traffic(simarch::CostTally& tally,
                             const simarch::MachineConfig& machine,
                             const PartitionPlan& plan,
                             std::uint64_t samples_through_cg);

/// Export one modeled hierarchical-collective charge through telemetry:
/// under `prefix` (e.g. "sim.collective.update_rs") ticks the chosen
/// algorithm's counter (`.algo_flat` / `.algo_tree` / `.algo_rsag` /
/// `.algo_doubling`), the supernode-crossing bytes, and the per-stage
/// round counts. Call on the ledger rank (cg 0) only, mirroring the
/// sim.* counters; no-op when `shard` is null.
void tick_collective_charge(telemetry::MetricsShard* shard,
                            const char* prefix,
                            const simarch::CollectiveCharge& charge);

/// Copy the combined tally's critical-path phase seconds onto a history
/// row. The six fields sum to combined.total_s() == stats.simulated_s by
/// construction — report.json surfaces them per iteration and the
/// critical-path analyzer cross-checks them against the Trace.
void fill_phase_stats(IterationStats& stats, const simarch::CostTally& combined);

/// Validate that the plan's LDM layout actually fits by allocating it
/// through the scratchpad allocator — throws CapacityError on a planner
/// bug rather than silently pretending.
void validate_ldm_layout(const PartitionPlan& plan,
                         const simarch::MachineConfig& machine);

}  // namespace swhkm::core::detail
