#include "core/level3.hpp"

#include <algorithm>

#include "core/engine_common.hpp"
#include "core/metrics.hpp"
#include "simarch/regcomm.hpp"
#include "simarch/topology.hpp"
#include "simarch/trace.hpp"
#include "swmpi/collectives.hpp"
#include "swmpi/runtime.hpp"
#include "util/error.hpp"

namespace swhkm::core {

KmeansResult run_level3(const data::Dataset& dataset,
                        const KmeansConfig& config,
                        const simarch::MachineConfig& machine,
                        const PartitionPlan& plan,
                        util::Matrix initial_centroids) {
  SWHKM_REQUIRE(plan.level == Level::kLevel3, "plan is not a Level 3 plan");
  SWHKM_REQUIRE(plan.shape.n == dataset.n() && plan.shape.d == dataset.d() &&
                    plan.shape.k == config.k,
                "plan shape does not match the dataset/config");
  detail::validate_ldm_layout(plan, machine);

  const std::size_t num_cgs = machine.num_cgs();
  const std::size_t cpes = machine.cpes_per_cg;
  const std::size_t p = plan.mprime_group;
  const std::size_t cg_groups = plan.num_flow_units;
  const std::size_t k = config.k;
  const std::size_t d = dataset.d();
  const std::size_t k_local = plan.k_local;
  const std::size_t d_local = plan.d_local;
  const std::size_t eb = machine.elem_bytes;
  const simarch::Topology topo(machine);

  KmeansResult result;
  result.assignments.assign(dataset.n(), 0);

  // One shared read-only centroid snapshot for all ranks (refreshed only
  // at the bulk-synchronous iteration edge inside reduce_and_update), so
  // centroid memory is O(k*d) per run instead of per rank.
  util::Matrix centroids = std::move(initial_centroids);
  std::size_t iterations = 0;
  bool converged = false;
  std::size_t empty_clusters = 0;
  simarch::CostTally total_cost;
  simarch::CostTally last_cost;
  std::vector<IterationStats> history;

  swmpi::run_spmd(static_cast<int>(num_cgs), [&](swmpi::Comm& world) {
    const std::size_t cg = static_cast<std::size_t>(world.rank());
    const std::size_t group = cg / p;        // CG-group index (flow unit)
    const std::size_t within = cg % p;       // slice holder index
    swmpi::Comm group_comm =
        world.split(static_cast<int>(group), static_cast<int>(within));

    // This CG's centroid slice [j_begin, j_end) for the assign phase.
    const std::size_t j_begin = std::min(within * k_local, k);
    const std::size_t j_end = std::min(k, j_begin + k_local);
    const double group_combine_time = topo.allreduce_time(16, group * p, p);
    const std::size_t accum_bytes = (k * d + k) * eb;

    double rank_clock = 0;
    // Full k x d accumulator (rows outside this rank's slice stay zero) so
    // the world reduce keeps the seed engines' exact summation tree —
    // shrinking it to k_local rows would change the association order and
    // with it the centroid bits.
    detail::UpdateAccumulator acc(k, d);
    std::vector<swmpi::MinLoc> tile(detail::kAssignTileSamples);

    for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
      acc.reset();
      simarch::CostTally tally;
      simarch::RegComm reg(machine, tally);

      const auto [begin, end] =
          detail::block_range(dataset.n(), cg_groups, group);
      const std::uint64_t count = end - begin;

      // Assign: every CG of the group reads each sample (its CPEs taking
      // d_local dims each) and scores its own slice, a tile of samples at
      // a time; one batched argmin combine then resolves the whole tile —
      // one group barrier per tile instead of per sample. The simulated
      // cost below still prices the paper's per-sample combine; only the
      // wall-clock synchronisation is batched. The winner's slice owner
      // accumulates, in the same ascending-i order as before.
      for (std::size_t t0 = begin; t0 < end;
           t0 += detail::kAssignTileSamples) {
        const std::size_t t1 =
            std::min(end, t0 + detail::kAssignTileSamples);
        const std::span<swmpi::MinLoc> scores(tile.data(), t1 - t0);
        detail::clear_scores(scores);
        if (j_begin < j_end) {
          detail::score_tile(dataset, t0, t1, centroids, j_begin, j_end,
                             scores);
        }
        swmpi::allreduce_minloc(group_comm, scores);
        for (std::size_t i = t0; i < t1; ++i) {
          const auto winner =
              static_cast<std::uint32_t>(scores[i - t0].index);
          if (winner >= j_begin && winner < j_end) {
            acc.add_sample(winner, dataset.sample(i));
          }
          if (within == 0) {
            result.assignments[i] = winner;
          }
        }
      }

      detail::charge_sample_stream(tally, machine, count * d * eb, count);
      detail::charge_centroid_traffic(tally, machine, plan, count);
      tally.compute_s += static_cast<double>(count) *
                         static_cast<double>(k_local) *
                         machine.assign_row_seconds(d_local);
      tally.flops += count * 2 * (j_end - j_begin) * d;

      // Per-sample mesh reduce of the CPEs' distance partials, then the
      // per-sample network argmin across the CG group.
      reg.account_allreduce(k_local * eb, cpes, count);
      tally.net_comm_s += static_cast<double>(count) * group_combine_time;
      tally.net_bytes += count * 16 * (p - 1);

      // Update: the machine-wide sharded phase — reduce_scatter of the
      // fused accumulator (each sample was accumulated exactly once
      // machine-wide, so the world collective is the functional truth),
      // per-CG shard apply, then one allgather publishing the refreshed
      // rows with the (shift, empties) stats riding as a 16-byte per-rank
      // header.
      const std::size_t publish_bytes = k * d * eb + 16 * num_cgs;
      tally.net_comm_s += topo.reduce_scatter_time(accum_bytes, 0, num_cgs) +
                          topo.allgather_time(publish_bytes, 0, num_cgs);
      tally.net_bytes += accum_bytes + publish_bytes;
      const detail::UpdateOutcome outcome =
          detail::reduce_and_update(world, centroids, acc);
      const double shift = outcome.shift;
      const auto [u_begin, u_end] = detail::block_range(k, num_cgs, cg);
      const std::size_t shard_rows = u_end - u_begin;
      tally.update_s +=
          static_cast<double>(2 * shard_rows * d) /
              (machine.cg_flops() * machine.compute_efficiency) +
          static_cast<double>(shard_rows * d * eb) / machine.dma_bandwidth;

      if (config.trace != nullptr) {
        config.trace->record_iteration(static_cast<std::uint32_t>(cg),
                                       static_cast<std::uint32_t>(iter),
                                       rank_clock, tally);
      }
      const simarch::CostTally combined =
          detail::combine_tallies(world, tally);
      rank_clock += combined.total_s();  // bulk-synchronous iteration edge
      if (cg == 0) {
        total_cost += combined;
        last_cost = combined;
        iterations = iter + 1;
        empty_clusters = outcome.empty_clusters;
        history.push_back({shift, combined.total_s()});
      }
      if (shift <= config.tolerance) {
        if (cg == 0) {
          converged = true;
        }
        break;
      }
    }
  });

  detail::warn_empty_clusters(empty_clusters, "level3");
  result.centroids = std::move(centroids);
  result.iterations = iterations;
  result.converged = converged;
  result.empty_clusters = empty_clusters;
  result.cost = total_cost;
  result.last_iteration_cost = last_cost;
  result.history = std::move(history);
  result.inertia = inertia(dataset, result.centroids, result.assignments);
  return result;
}

}  // namespace swhkm::core
