#include "core/level3.hpp"

#include <algorithm>

#include "core/engine_common.hpp"
#include "core/metrics.hpp"
#include "simarch/regcomm.hpp"
#include "simarch/topology.hpp"
#include "simarch/trace.hpp"
#include "swmpi/collectives.hpp"
#include "swmpi/runtime.hpp"
#include "telemetry/telemetry.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"

namespace swhkm::core {

KmeansResult run_level3(const data::Dataset& dataset,
                        const KmeansConfig& config,
                        const simarch::MachineConfig& machine,
                        const PartitionPlan& plan,
                        util::Matrix initial_centroids) {
  SWHKM_REQUIRE(plan.level == Level::kLevel3, "plan is not a Level 3 plan");
  SWHKM_REQUIRE(plan.shape.n == dataset.n() && plan.shape.d == dataset.d() &&
                    plan.shape.k == config.k,
                "plan shape does not match the dataset/config");
  detail::validate_ldm_layout(plan, machine);

  const std::size_t num_cgs = machine.num_cgs();
  const std::size_t cpes = machine.cpes_per_cg;
  const std::size_t p = plan.mprime_group;
  const std::size_t cg_groups = plan.num_flow_units;
  const std::size_t k = config.k;
  const std::size_t d = dataset.d();
  const std::size_t k_local = plan.k_local;
  const std::size_t d_local = plan.d_local;
  const std::size_t eb = machine.elem_bytes;
  // See level1: too-small LDM downgrades the (bit-identical) GEMM kernel
  // rather than rejecting a tile that fits without its scratch.
  const bool gemm_enabled =
      config.gemm_assign &&
      gemm_scratch_fits(config.tile_samples, plan, machine,
                        config.sstep_tiles);
  const std::size_t tile_samples = resolve_tile_samples(
      config.tile_samples, plan, machine, config.sstep_tiles, gemm_enabled);
  if (config.gemm_assign && !gemm_enabled) {
    SWHKM_WARN << "level3: GEMM scratch for tile_samples="
               << config.tile_samples
               << " overflows LDM; using the chain kernel (bit-identical)";
  }
  // s-step deferred reduction: one combine launch per span of `sstep`
  // consecutive tiles instead of one per tile. The fold stays element-wise
  // over disjoint sample ranges, so any span size is bit-identical; only
  // the collective *round* count moves.
  const std::size_t sstep = config.sstep_tiles;
  const std::size_t span_samples = tile_samples * sstep;
  const simarch::Topology topo(machine);
  // Hierarchical-collective schedule (see level1.cpp): supernode-wide
  // intra groups, machine-derived crossover, RAII runtime install.
  const bool hier = config.hier_collectives;
  const std::size_t xover = machine.collective_crossover_bytes();
  const swmpi::ScopedCollectiveSchedule collective_guard(
      hier ? swmpi::CollectiveSchedule::kHierarchical
           : swmpi::CollectiveSchedule::kFlat,
      {static_cast<int>(machine.cgs_per_node * machine.supernode_nodes),
       xover});

  KmeansResult result;
  result.assignments.assign(dataset.n(), 0);

  // One shared read-only centroid snapshot for all ranks (refreshed only
  // at the bulk-synchronous iteration edge inside reduce_and_update), so
  // centroid memory is O(k*d) per run instead of per rank.
  util::Matrix centroids = std::move(initial_centroids);
  std::size_t iterations = 0;
  bool converged = false;
  std::size_t empty_clusters = 0;
  simarch::CostTally total_cost;
  simarch::CostTally last_cost;
  std::vector<IterationStats> history;

  telemetry::Telemetry* const tel = config.telemetry;

  swmpi::run_spmd(static_cast<int>(num_cgs), [&](swmpi::Comm& world) {
    const std::size_t cg = static_cast<std::size_t>(world.rank());
    // Engine-side metric handles, resolved once per rank (name lookup is
    // the slow path). Gate counters tick on every rank — replicated gate
    // work is real per-rank work — while the sim.* ledgers tick on cg 0
    // only, mirroring the history rows they reconcile against.
    telemetry::MetricsShard* const tshard =
        tel != nullptr ? &tel->metrics().shard(world.global_rank()) : nullptr;
    telemetry::FlightRing* const flight =
        tshard != nullptr ? tshard->flight() : nullptr;
    telemetry::Counter* const pruned_ctr =
        tshard != nullptr ? &tshard->counter("engine.gate.pruned_samples")
                          : nullptr;
    telemetry::Counter* const swept_ctr =
        tshard != nullptr ? &tshard->counter("engine.gate.swept_samples")
                          : nullptr;
    telemetry::Histogram* const survivor_hist =
        tshard != nullptr ? &tshard->histogram("engine.gate.survivor_tile")
                          : nullptr;
    telemetry::Histogram* const overlap_hist =
        tshard != nullptr ? &tshard->histogram("engine.pipeline.overlap_s")
                          : nullptr;
    telemetry::Counter* const sim_net =
        tshard != nullptr && cg == 0 ? &tshard->counter("sim.net_bytes")
                                     : nullptr;
    telemetry::Counter* const sim_dma =
        tshard != nullptr && cg == 0 ? &tshard->counter("sim.dma_bytes")
                                     : nullptr;
    const bool spans_on = tel != nullptr && tel->config().wall_spans;
    const std::size_t group = cg / p;        // CG-group index (flow unit)
    const std::size_t within = cg % p;       // slice holder index
    swmpi::Comm group_comm =
        world.split(static_cast<int>(group), static_cast<int>(within));

    // This CG's centroid slice [j_begin, j_end) for the assign phase.
    const std::size_t j_begin = std::min(within * k_local, k);
    const std::size_t j_end = std::min(k, j_begin + k_local);
    // Group argmin combine price per sample: tiny payloads, so the
    // hierarchical charge's size-adaptive stage always lands on the
    // binomial tree (and degenerates to the exact flat charge whenever the
    // group sits inside one supernode — every group at paper placements).
    const simarch::CollectiveCharge group_charge =
        topo.hier_allreduce_charge(16, group * p, p, xover);
    const double group_combine_time =
        hier ? group_charge.seconds : topo.allreduce_time(16, group * p, p);
    // Gated tiles carry MinLoc2 records — 8 bytes per sample more than the
    // plain argmin, the price of the exact global runner-up distance.
    const simarch::CollectiveCharge group_charge2 =
        topo.hier_allreduce_charge(sizeof(swmpi::MinLoc2), group * p, p,
                                   xover);
    const double group_combine_time2 =
        hier ? group_charge2.seconds
             : topo.allreduce_time(sizeof(swmpi::MinLoc2), group * p, p);
    const std::size_t accum_bytes = (k * d + k) * eb;

    double rank_clock = 0;
    // Full k x d accumulator (rows outside this rank's slice stay zero) so
    // the world reduce keeps the seed engines' exact summation tree —
    // shrinking it to k_local rows would change the association order and
    // with it the centroid bits.
    detail::UpdateAccumulator acc(k, d);
    const bool gate = config.gate_assign;
    const bool gemm = gemm_enabled;
    // SDC defense (KmeansConfig::sdc_checks) — see level1.cpp for the full
    // protocol. Scrub barriers and flip points run on `world` (the group
    // split only covers the assign-phase argmin): the snapshot and the
    // accumulators are machine-wide state, and the barrier must order the
    // injected write against *every* rank's reads.
    const bool sdc = config.sdc_checks;
    std::uint64_t sdc_iter = 0;
    std::uint32_t snap_crc = 0;
    bool snap_crc_valid = false;
    detail::GemmSdcHooks gemm_sdc;
    if (sdc) {
      gemm_sdc.check = true;
      gemm_sdc.flip = [&world, &sdc_iter](std::span<std::byte> bytes) {
        world.memory_fault_point(swmpi::MemorySite::kTileScratch, sdc_iter,
                                 bytes);
      };
    }
    detail::GemmSdcHooks* const gemm_hooks = sdc ? &gemm_sdc : nullptr;
    // Per-iteration ||c||^2 cache for the GEMM-formulated slice sweep (see
    // level1.cpp): gated iterations refresh only the drift-marked rows.
    detail::CentroidNormCache norm_cache;
    // Double-buffered span slots: the pipelined loop stages span t+1
    // (gate + score each sub-tile, one deferred-combine launch) while span
    // t's combine drains. Two slots is exactly the depth the overlap
    // needs; the retire order stays ascending, so the accumulator's
    // summation order — and with it the centroid bits — cannot move.
    struct SpanSlot {
      std::size_t t0 = 0;
      std::size_t t1 = 0;
      bool valid = false;
      std::vector<std::uint32_t> ids;
      swmpi::DeferredCombine<swmpi::MinLoc, swmpi::ops::Min> dc1;
      swmpi::DeferredCombine<swmpi::MinLoc2, swmpi::CombineMinLoc2> dc2;
    };
    SpanSlot slots[2];
    for (SpanSlot& s : slots) {
      if (gate) {
        s.dc2.reserve(span_samples);
        s.ids.reserve(span_samples);
      } else {
        s.dc1.reserve(span_samples);
      }
    }
    const bool pipeline = config.pipeline_tiles;

    // Bound-gated assign state. Every rank of the group keeps a *private*
    // replica of the bounds and assignments for the group's samples: the
    // gate inputs (combined MinLoc2 records, published drift) are
    // replicated bit-identically, so the replicas never diverge and every
    // rank computes the same tile compaction with no extra exchange — and
    // no rank ever reads a vector another rank writes.
    std::vector<double> upper;
    std::vector<double> lower;
    std::vector<double> drift;
    std::vector<double> safe;
    std::vector<std::uint32_t> local_assign;
    if (gate) {
      upper.assign(dataset.n(), 0.0);
      lower.assign(dataset.n(), 0.0);
      drift.assign(k, 0.0);
      local_assign.assign(dataset.n(), 0);
    }
    std::uint64_t distance_comps = 0;
    std::uint64_t lloyd_equivalent = 0;

    for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
      // Global iteration index: the RecoveryDriver runs this engine in
      // legs, and fault schedules / trace rows are addressed globally.
      const std::uint64_t global_iter = config.iteration_base + iter;
      if (flight != nullptr) {
        flight->record(telemetry::FlightEventKind::kIterationStart,
                       static_cast<std::uint32_t>(global_iter), 0, 0, 0,
                       rank_clock);
      }
      world.fault_point(swmpi::FaultSite::kAssign, global_iter);
      if (sdc) {
        // Snapshot scrub: capture / barrier / flip point / barrier /
        // verify — see level1.cpp for the ordering argument.
        sdc_iter = global_iter;
        const std::span<float> snap = centroids.flat();
        if (!snap_crc_valid) {
          snap_crc = util::crc32(std::as_bytes(snap));
          snap_crc_valid = true;
        }
        swmpi::barrier(world);
        world.memory_fault_point(swmpi::MemorySite::kSnapshot, global_iter,
                                 std::as_writable_bytes(snap));
        swmpi::barrier(world);
        if (util::crc32(std::as_bytes(snap)) != snap_crc) {
          if (tshard != nullptr) {
            tshard->counter("sdc.snapshot.crc_fail").add(1);
          }
          throw SilentCorruptionError(
              "sdc: centroid snapshot CRC mismatch at iteration " +
              std::to_string(global_iter) +
              " — published centroid bits were corrupted in memory");
        }
      }
      const double assign_start_us = spans_on ? tel->now_us() : 0.0;
      acc.reset();
      simarch::CostTally tally;
      simarch::RegComm reg(machine, tally);
      const std::uint64_t abft_recomputed_before = gemm_sdc.recomputed;

      const auto [begin, end] =
          detail::block_range(dataset.n(), cg_groups, group);
      const std::uint64_t count = end - begin;
      const bool gating = gate && iter > 0;
      const detail::DriftDigest digest =
          gating ? detail::drift_digest(drift) : detail::DriftDigest{};
      if (gating) {
        detail::compute_safe_radii(centroids, safe);
      }
      std::size_t norm_rows = 0;
      if (gemm) {
        norm_rows = gating ? norm_cache.refresh_from_drift(centroids, drift)
                           : norm_cache.refresh_full(centroids);
        tally.compute_s += static_cast<double>(norm_rows) *
                           machine.gemm_row_seconds(d);
        // Norm refresh seconds are charged above, but its O(k d) products
        // stay out of `flops`, which keeps its exact 2nkd distance-work
        // meaning (FlopAccountingMatches2nkd) and prices the FLOP *rate*
        // from the panel product alone.
      }
      const std::span<const double> norms(norm_cache.norms.data(),
                                          norm_cache.norms.size());

      // Assign: every CG of the group reads each unresolved sample (its
      // CPEs taking d_local dims each) and scores its own slice, a tile of
      // samples at a time; one batched argmin combine then resolves the
      // whole compacted tile — and a fully-gated tile skips the collective
      // outright (every rank computed the same empty compaction, so the
      // collective discipline holds). The simulated cost below still
      // prices the paper's per-sample combine; only the wall-clock
      // synchronisation is batched. The winner's slice owner accumulates,
      // in the same ascending-i order as before — resolved samples under
      // their stored assignment — so the fused sums keep the exact
      // summation order of the ungated sweep.
      std::uint64_t unresolved = 0;
      std::uint64_t owned_resolved = 0;
      double drain_first_us = -1.0;
      double drain_wall_us = 0.0;

      // Stage span [t0, t1): gate + score each of its sub-tiles into the
      // slot's deferred-combine store, then *launch* the span's single
      // argmin combine (the binomial up-phase send posts without waiting)
      // so the drain can overlap the next span's sweep. Sub-tiles claim
      // records in ascending order, so the combined store maps 1:1 onto
      // the span's survivors in ascending i.
      auto stage = [&](SpanSlot& s, std::size_t t0, std::size_t t1) {
        s.t0 = t0;
        s.t1 = t1;
        s.valid = true;
        if (flight != nullptr) {
          flight->record(telemetry::FlightEventKind::kTileStart,
                         static_cast<std::uint32_t>(global_iter), 0, t0, t1);
        }
        if (!gate) {
          s.dc1.reset();
          for (std::size_t sub0 = t0; sub0 < t1; sub0 += tile_samples) {
            const std::size_t sub1 = std::min(t1, sub0 + tile_samples);
            const std::span<swmpi::MinLoc> scores = s.dc1.claim(sub1 - sub0);
            detail::clear_scores(scores);
            if (j_begin < j_end) {
              if (gemm) {
                detail::score_tile_gemm(dataset, sub0, sub1, centroids, norms,
                                        j_begin, j_end, scores, gemm_hooks);
              } else {
                detail::score_tile(dataset, sub0, sub1, centroids, j_begin,
                                   j_end, scores);
              }
            }
          }
          if (s.dc1.launch(group_comm, swmpi::ops::Min{}) && p > 1) {
            tally.net_rounds += 1;
          }
          return;
        }
        s.ids.clear();
        s.dc2.reset();
        for (std::size_t sub0 = t0; sub0 < t1; sub0 += tile_samples) {
          const std::size_t sub1 = std::min(t1, sub0 + tile_samples);
          const std::size_t before = s.ids.size();
          if (!gating) {
            for (std::size_t i = sub0; i < sub1; ++i) {
              s.ids.push_back(static_cast<std::uint32_t>(i));
            }
          } else {
            // No tightening at this level: the assigned centroid's row is
            // dimension-split across the group's CPEs and slice-split
            // across its CGs, so one exact distance would cost the combine
            // the gate exists to skip. Bounds + safe radii only.
            detail::gate_tile(dataset, centroids, sub0, sub1, local_assign,
                              drift, digest, safe, upper, lower,
                              /*tighten=*/false, s.ids);
          }
          const std::size_t fresh = s.ids.size() - before;
          if (survivor_hist != nullptr && gating) {
            survivor_hist->observe(static_cast<double>(fresh));
          }
          if (fresh == 0) {
            continue;
          }
          const std::span<swmpi::MinLoc2> scores = s.dc2.claim(fresh);
          detail::clear_scores(scores);
          if (j_begin < j_end) {
            const std::span<const std::uint32_t> ids(s.ids.data() + before,
                                                     fresh);
            if (gemm) {
              detail::score_tile_ids_gemm(dataset, ids, centroids, norms,
                                          j_begin, j_end, scores, gemm_hooks);
            } else {
              detail::score_tile_ids(dataset, ids, centroids, j_begin, j_end,
                                     scores);
            }
          }
        }
        // A fully-gated span claimed nothing: launch() skips the
        // collective (every rank computed the same empty compaction, so
        // the collective discipline holds) and no round is charged.
        if (s.dc2.launch(group_comm, swmpi::CombineMinLoc2{}) && p > 1) {
          tally.net_rounds += 1;
        }
      };

      // Retire span [s.t0, s.t1): drain its combine, then merge the
      // resolved winners in ascending-i order (the bit-identity invariant).
      auto retire = [&](SpanSlot& s) {
        if (!gate) {
          if (s.dc1.active()) {
            const double t_us = spans_on ? tel->now_us() : 0.0;
            s.dc1.finish();
            if (spans_on) {
              if (drain_first_us < 0) {
                drain_first_us = t_us;
              }
              drain_wall_us += tel->now_us() - t_us;
            }
          }
          const std::span<const swmpi::MinLoc> scores = s.dc1.records();
          for (std::size_t i = s.t0; i < s.t1; ++i) {
            const auto winner =
                static_cast<std::uint32_t>(scores[i - s.t0].index);
            if (winner >= j_begin && winner < j_end) {
              acc.add_sample(winner, dataset.sample(i));
            }
            if (within == 0) {
              result.assignments[i] = winner;
            }
          }
          unresolved += s.t1 - s.t0;
          s.valid = false;
          if (flight != nullptr) {
            flight->record(telemetry::FlightEventKind::kTileEnd,
                           static_cast<std::uint32_t>(global_iter), 0, s.t0,
                           s.t1);
          }
          return;
        }
        if (s.dc2.active()) {
          const double t_us = spans_on ? tel->now_us() : 0.0;
          s.dc2.finish();
          if (spans_on) {
            if (drain_first_us < 0) {
              drain_first_us = t_us;
            }
            drain_wall_us += tel->now_us() - t_us;
          }
        }
        const std::span<const swmpi::MinLoc2> scores = s.dc2.records();
        std::size_t pos = 0;
        for (std::size_t i = s.t0; i < s.t1; ++i) {
          std::uint32_t winner;
          if (pos < s.ids.size() && s.ids[pos] == i) {
            const swmpi::MinLoc2& rec = scores[pos];
            winner = static_cast<std::uint32_t>(rec.index);
            local_assign[i] = winner;
            detail::refresh_bounds(rec, upper[i], lower[i]);
            if (within == 0) {
              result.assignments[i] = winner;
            }
            ++pos;
          } else {
            winner = local_assign[i];
            if (winner >= j_begin && winner < j_end) {
              ++owned_resolved;
            }
          }
          if (winner >= j_begin && winner < j_end) {
            acc.add_sample(winner, dataset.sample(i));
          }
        }
        unresolved += s.ids.size();
        s.valid = false;
        if (flight != nullptr) {
          flight->record(telemetry::FlightEventKind::kTileEnd,
                         static_cast<std::uint32_t>(global_iter), 0, s.t0,
                         s.t1);
        }
      };

      int cur = 0;
      for (std::size_t t0 = begin; t0 < end; t0 += span_samples) {
        const std::size_t t1 = std::min(end, t0 + span_samples);
        stage(slots[cur], t0, t1);
        if (!pipeline) {
          retire(slots[cur]);
          continue;
        }
        // Span t-1 retires only after span t is staged: its combine kept
        // draining under this span's gate + sweep, and this span's combine
        // is already in flight before we block.
        SpanSlot& prev = slots[cur ^ 1];
        if (prev.valid) {
          retire(prev);
        }
        cur ^= 1;
      }
      if (pipeline && slots[cur ^ 1].valid) {
        retire(slots[cur ^ 1]);
      }
      if (spans_on && drain_first_us >= 0 && p > 1) {
        tel->spans().record("combine_drain", static_cast<std::uint32_t>(cg),
                            static_cast<std::uint32_t>(global_iter),
                            drain_first_us, drain_wall_us);
      }
      if (spans_on) {
        tel->spans().record("assign", static_cast<std::uint32_t>(cg),
                            static_cast<std::uint32_t>(global_iter),
                            assign_start_us, tel->now_us() - assign_start_us);
      }
      if (swept_ctr != nullptr) {
        swept_ctr->add(unresolved);
        pruned_ctr->add(count - unresolved);
      }

      // DMA: unresolved samples stream into every CG of the group; a
      // resolved sample is read only by the CG owning its assigned slice
      // (for the accumulator).
      const std::uint64_t streamed = gate ? unresolved + owned_resolved
                                          : count;
      detail::charge_sample_stream(tally, machine, streamed * d * eb,
                                   streamed);
      const double centroid_stream_before = tally.centroid_stream_s;
      if (!gate || unresolved > 0) {
        detail::charge_centroid_traffic(tally, machine, plan, unresolved);
      }
      const double tile_dma_s =
          tally.centroid_stream_s - centroid_stream_before;
      const double sweep_compute_s =
          static_cast<double>(unresolved) * static_cast<double>(k_local) *
          (gemm ? machine.gemm_row_seconds(d_local)
                : machine.assign_row_seconds(d_local));
      tally.compute_s += sweep_compute_s;
      tally.flops += unresolved * 2 * (j_end - j_begin) * d;
      if (gating) {
        // Safe radii: k(k-1)/2 centroid-pair rows from the shared
        // snapshot, recomputed by every CG each iteration.
        tally.compute_s += static_cast<double>(k * (k - 1) / 2) *
                           machine.assign_row_seconds(d);
        tally.flops += k * (k - 1) * d;
      }
      // The group's ranks gate the same samples, so only the slice-0 rank
      // reports the prune count (volume counters sum across ranks).
      if (within == 0) {
        tally.pruned_samples += count - unresolved;
      }
      distance_comps += unresolved * (j_end - j_begin);
      lloyd_equivalent += count * (j_end - j_begin);
      if (sdc) {
        // Modeled SDC overhead (see level1.cpp): ABFT checksum chains at
        // 1/8 of the slice-sweep rate, one streaming pass for the snapshot
        // + accumulator scrubs, frame trailers + the conservation allreduce
        // on the network. Charged only when the defense is armed.
        tally.compute_s += static_cast<double>(unresolved) *
                           (gemm ? machine.gemm_row_seconds(d_local)
                                 : machine.assign_row_seconds(d_local)) *
                           0.125;
        tally.compute_s += static_cast<double>(k * d * eb + accum_bytes) /
                           machine.dma_bandwidth;
        const std::uint64_t sdc_net = 16 * 2 * num_cgs + sizeof(double);
        tally.net_comm_s += topo.allgather_time(sdc_net, 0, num_cgs);
        tally.net_bytes += sdc_net;
        tally.net_rounds += 1;  // the counts-conservation allreduce
        tally.sdc_recomputed += gemm_sdc.recomputed - abft_recomputed_before;
        if (tshard != nullptr &&
            gemm_sdc.recomputed != abft_recomputed_before) {
          tshard->counter("sdc.abft.detected")
              .add(gemm_sdc.recomputed - abft_recomputed_before);
        }
      }

      // Per-sample mesh reduce of the CPEs' distance partials, then the
      // per-sample network argmin across the CG group — both compacted to
      // the unresolved samples.
      reg.account_allreduce(k_local * eb, cpes, unresolved);
      const double tile_net_s =
          static_cast<double>(unresolved) *
          (gate ? group_combine_time2 : group_combine_time);
      tally.net_comm_s += tile_net_s;
      tally.net_bytes +=
          unresolved * (gate ? sizeof(swmpi::MinLoc2) : sizeof(swmpi::MinLoc)) *
          (p - 1);
      if (hier) {
        const simarch::CollectiveCharge& gc =
            gate ? group_charge2 : group_charge;
        tally.net_crossing_bytes += unresolved * gc.crossing_bytes;
        if (cg == 0 && p > 1 && unresolved > 0) {
          detail::tick_collective_charge(tshard, "sim.collective.group_argmin",
                                         gc);
        }
      }

      // Tile pipeline overlap: all but the first tile's combine drain (and
      // centroid reload) issue under another tile's distance sweep, so up
      // to a (T-1)/T share of the sweep hides that traffic. The combine is
      // hidden first (it is the phase the split-phase start/finish really
      // overlaps); leftover window hides the modelled centroid re-stream.
      // Hidden seconds move into the overlapped_* ledgers — total_s()
      // shrinks by exactly what the pipeline bought.
      if (pipeline && count > span_samples) {
        const std::size_t ntiles =
            (count + span_samples - 1) / span_samples;
        const double window = sweep_compute_s *
                              static_cast<double>(ntiles - 1) /
                              static_cast<double>(ntiles);
        const double hide_net = std::min(tile_net_s, window);
        const double hide_dma = std::min(tile_dma_s, window - hide_net);
        tally.net_comm_s -= hide_net;
        tally.overlapped_net_s += hide_net;
        tally.centroid_stream_s -= hide_dma;
        tally.overlapped_dma_s += hide_dma;
        if (overlap_hist != nullptr) {
          overlap_hist->observe(hide_net + hide_dma);
        }
      }

      // Update: the machine-wide sharded phase — reduce_scatter of the
      // fused accumulator (each sample was accumulated exactly once
      // machine-wide, so the world collective is the functional truth),
      // per-CG shard apply, then one allgather publishing the refreshed
      // rows with the (shift, empties) stats riding as a 16-byte per-rank
      // header (plus the k-double drift vector when gating).
      const std::size_t publish_bytes =
          k * d * eb + 16 * num_cgs + (gate ? k * sizeof(double) : 0);
      if (hier) {
        const simarch::CollectiveCharge rs =
            topo.hier_reduce_scatter_charge(accum_bytes, 0, num_cgs, xover);
        const simarch::CollectiveCharge ag =
            topo.hier_allgather_charge(publish_bytes, 0, num_cgs);
        tally.net_comm_s += rs.seconds + ag.seconds;
        tally.net_crossing_bytes += rs.crossing_bytes + ag.crossing_bytes;
        if (cg == 0) {
          detail::tick_collective_charge(tshard, "sim.collective.update_rs",
                                         rs);
          detail::tick_collective_charge(tshard, "sim.collective.update_ag",
                                         ag);
        }
      } else {
        tally.net_comm_s +=
            topo.reduce_scatter_time(accum_bytes, 0, num_cgs) +
            topo.allgather_time(publish_bytes, 0, num_cgs);
      }
      tally.net_bytes += accum_bytes + publish_bytes;
      tally.net_rounds += 2;  // reduce_scatter + allgather
      world.fault_point(swmpi::FaultSite::kUpdate, global_iter);
      if (sdc) {
        // Accumulator scrub (see level1.cpp): CRC covers the sums only;
        // counts flips fall to the Σcounts == n guard in the fold.
        const std::span<double> sums(acc.sums.data(), acc.sums.size());
        const std::span<double> counts(acc.counts.data(), acc.counts.size());
        const std::uint32_t sums_crc = util::crc32(std::as_bytes(sums));
        world.memory_fault_point(swmpi::MemorySite::kUpdateAccum, global_iter,
                                 std::as_writable_bytes(sums),
                                 std::as_writable_bytes(counts));
        if (util::crc32(std::as_bytes(sums)) != sums_crc) {
          if (tshard != nullptr) {
            tshard->counter("sdc.accum.crc_fail").add(1);
          }
          throw SilentCorruptionError(
              "sdc: update accumulator CRC mismatch on rank " +
              std::to_string(world.global_rank()) + " at iteration " +
              std::to_string(global_iter) +
              " — accumulator sums were corrupted before the fold");
        }
      }
      const double update_start_us = spans_on ? tel->now_us() : 0.0;
      const detail::UpdateOutcome outcome = detail::reduce_and_update(
          world, centroids, acc,
          gate ? std::span<double>(drift.data(), drift.size())
               : std::span<double>{},
          sdc ? dataset.n() : 0);
      if (sdc) {
        snap_crc = util::crc32(std::as_bytes(centroids.flat()));
        snap_crc_valid = true;
      }
      if (spans_on) {
        tel->spans().record("update", static_cast<std::uint32_t>(cg),
                            static_cast<std::uint32_t>(global_iter),
                            update_start_us, tel->now_us() - update_start_us);
      }
      const double shift = outcome.shift;
      const auto [u_begin, u_end] = detail::block_range(k, num_cgs, cg);
      const std::size_t shard_rows = u_end - u_begin;
      tally.update_s +=
          static_cast<double>(2 * shard_rows * d) /
              (machine.cg_flops() * machine.compute_efficiency) +
          static_cast<double>(shard_rows * d * eb) / machine.dma_bandwidth;

      if (config.trace != nullptr) {
        config.trace->record_iteration(static_cast<std::uint32_t>(cg),
                                       static_cast<std::uint32_t>(global_iter),
                                       rank_clock, tally);
      }
      world.fault_point(swmpi::FaultSite::kCollective, global_iter);
      const simarch::CostTally combined =
          detail::combine_tallies(world, tally);
      rank_clock += combined.total_s();  // bulk-synchronous iteration edge
      if (flight != nullptr) {
        flight->record(telemetry::FlightEventKind::kIterationEnd,
                       static_cast<std::uint32_t>(global_iter), 0, 0, 0,
                       rank_clock);
      }
      if (cg == 0) {
        total_cost += combined;
        last_cost = combined;
        iterations = iter + 1;
        empty_clusters = outcome.empty_clusters;
        history.push_back({shift, combined.total_s(),
                           static_cast<double>(combined.pruned_samples) /
                               static_cast<double>(dataset.n()),
                           combined.net_bytes, combined.dma_bytes,
                           combined.flops, combined.net_rounds});
        history.back().net_crossing_bytes = combined.net_crossing_bytes;
        history.back().sdc_recomputed = combined.sdc_recomputed;
        detail::fill_phase_stats(history.back(), combined);
        if (sim_net != nullptr) {
          sim_net->add(combined.net_bytes);
          sim_dma->add(combined.dma_bytes);
        }
      }
      if (shift <= config.tolerance) {
        if (cg == 0) {
          converged = true;
        }
        break;
      }
    }

    // Every rank leaves the loop at the same iteration (shift is
    // replicated), so one closing collective folds the per-rank distance
    // ledgers. Slice widths tile [0, k) within each group, so the sum is
    // exactly swept-samples x k.
    std::uint64_t counters[2] = {distance_comps, lloyd_equivalent};
    swmpi::allreduce_sum(world, std::span<std::uint64_t>(counters, 2));
    if (cg == 0) {
      result.accel.distance_computations = counters[0];
      result.accel.lloyd_equivalent = counters[1];
    }
  }, config.fault_plan,
      tel != nullptr && tel->config().swmpi ? &tel->metrics() : nullptr);

  detail::warn_empty_clusters(empty_clusters, "level3");
  result.centroids = std::move(centroids);
  result.iterations = iterations;
  result.converged = converged;
  if (config.gate_assign && iterations > 1) {
    // Safe-radius maintenance: k(k-1)/2 centroid pairs per gated
    // iteration, counted once (the per-rank copies are replicas).
    result.accel.centroid_distance_computations =
        (iterations - 1) * config.k * (config.k - 1) / 2;
  }
  result.empty_clusters = empty_clusters;
  result.cost = total_cost;
  result.last_iteration_cost = last_cost;
  result.history = std::move(history);
  result.inertia = inertia(dataset, result.centroids, result.assignments);
  return result;
}

}  // namespace swhkm::core
