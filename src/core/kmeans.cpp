#include "core/kmeans.hpp"

#include "core/hkmeans.hpp"
#include "core/init.hpp"
#include "core/level1.hpp"
#include "core/level2.hpp"
#include "core/level3.hpp"
#include "core/planner.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace swhkm::core {

KmeansResult run_level(Level level, const data::Dataset& dataset,
                       const KmeansConfig& config,
                       const simarch::MachineConfig& machine,
                       std::size_t m_group, std::size_t mprime_group) {
  const ProblemShape shape{dataset.n(), config.k, dataset.d()};
  const PartitionPlan plan =
      make_plan(level, shape, machine, m_group, mprime_group);
  return run_plan(plan, dataset, config, machine);
}

KmeansResult run_plan(const PartitionPlan& plan, const data::Dataset& dataset,
                      const KmeansConfig& config,
                      const simarch::MachineConfig& machine) {
  util::Matrix centroids = init_centroids(dataset, config);
  switch (plan.level) {
    case Level::kLevel1:
      return run_level1(dataset, config, machine, plan, std::move(centroids));
    case Level::kLevel2:
      return run_level2(dataset, config, machine, plan, std::move(centroids));
    case Level::kLevel3:
      return run_level3(dataset, config, machine, plan, std::move(centroids));
  }
  throw InvalidArgument("unknown level");
}

HierarchicalKmeans::HierarchicalKmeans(simarch::MachineConfig machine)
    : machine_(std::move(machine)) {
  machine_.validate();
}

KmeansResult HierarchicalKmeans::fit(const data::Dataset& dataset,
                                     const KmeansConfig& config) const {
  const ProblemShape shape{dataset.n(), config.k, dataset.d()};
  const auto choice = auto_plan(shape, machine_);
  if (!choice) {
    throw InfeasibleError("no partition level can run (n=" +
                          std::to_string(shape.n) + ", k=" +
                          std::to_string(shape.k) + ", d=" +
                          std::to_string(shape.d) + ") on " +
                          machine_.summary());
  }
  SWHKM_INFO << "planner chose " << choice->plan.describe();
  return run_plan(choice->plan, dataset, config, machine_);
}

KmeansResult HierarchicalKmeans::fit_level(Level level,
                                           const data::Dataset& dataset,
                                           const KmeansConfig& config) const {
  const ProblemShape shape{dataset.n(), config.k, dataset.d()};
  const auto choice = best_plan_for_level(level, shape, machine_);
  if (!choice) {
    throw InfeasibleError(std::string(level_name(level)) +
                          " cannot run this shape on " + machine_.summary());
  }
  return run_plan(choice->plan, dataset, config, machine_);
}

std::optional<PlanChoice> HierarchicalKmeans::plan(
    const ProblemShape& shape) const {
  return auto_plan(shape, machine_);
}

}  // namespace swhkm::core
