#include "core/minibatch.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/engine_util.hpp"
#include "core/init.hpp"
#include "core/lloyd.hpp"
#include "core/metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace swhkm::core {

KmeansResult minibatch_kmeans(const data::Dataset& dataset,
                              const MiniBatchConfig& config) {
  SWHKM_REQUIRE(config.k > 0 && config.k <= dataset.n(),
                "k must be in [1, n]");
  SWHKM_REQUIRE(config.batch_size > 0, "batch size must be positive");

  KmeansConfig seeding;
  seeding.k = config.k;
  seeding.init = config.init;
  seeding.seed = config.seed;
  util::Matrix centroids = init_centroids(dataset, seeding);

  util::Xoshiro256 rng(config.seed ^ 0xB5297A4D3F84D5B5ULL);
  const std::size_t batch = std::min(config.batch_size, dataset.n());
  const std::size_t d = dataset.d();
  std::vector<double> per_center_counts(config.k, 0.0);
  std::vector<std::size_t> batch_indices(batch);

  KmeansResult result;
  std::size_t calm_iterations = 0;
  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    for (std::size_t b = 0; b < batch; ++b) {
      batch_indices[b] = rng.below(dataset.n());
    }
    // Assign the batch against the frozen centroids, then apply the
    // per-centre decayed updates (the cached-assignment variant).
    double shift_sq_max = 0;
    std::vector<std::uint32_t> batch_labels(batch);
    for (std::size_t b = 0; b < batch; ++b) {
      batch_labels[b] =
          detail::nearest_in_slice(dataset.sample(batch_indices[b]),
                                   centroids, 0, config.k)
              .second;
    }
    for (std::size_t b = 0; b < batch; ++b) {
      const std::uint32_t j = batch_labels[b];
      per_center_counts[j] += 1.0;
      const double eta = 1.0 / per_center_counts[j];
      const auto x = dataset.sample(batch_indices[b]);
      std::span<float> row = centroids.row(j);
      double step_sq = 0;
      for (std::size_t u = 0; u < d; ++u) {
        const double delta = eta * (static_cast<double>(x[u]) - row[u]);
        row[u] = static_cast<float>(row[u] + delta);
        step_sq += delta * delta;
      }
      shift_sq_max = std::max(shift_sq_max, step_sq);
    }
    const double shift = std::sqrt(shift_sq_max);
    result.iterations = iter + 1;
    result.history.push_back({shift, 0.0});
    if (config.tolerance > 0) {
      calm_iterations = shift <= config.tolerance ? calm_iterations + 1 : 0;
      if (calm_iterations >= config.patience) {
        result.converged = true;
        break;
      }
    }
  }

  // Final full pass for reporting.
  result.assignments = assign_serial(dataset, centroids);
  result.inertia = inertia(dataset, centroids, result.assignments);
  result.centroids = std::move(centroids);
  return result;
}

}  // namespace swhkm::core
