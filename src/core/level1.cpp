#include "core/level1.hpp"

#include <algorithm>

#include "core/engine_common.hpp"
#include "core/metrics.hpp"
#include "simarch/regcomm.hpp"
#include "simarch/topology.hpp"
#include "simarch/trace.hpp"
#include "swmpi/runtime.hpp"
#include "util/error.hpp"

namespace swhkm::core {

KmeansResult run_level1(const data::Dataset& dataset,
                        const KmeansConfig& config,
                        const simarch::MachineConfig& machine,
                        const PartitionPlan& plan,
                        util::Matrix initial_centroids) {
  SWHKM_REQUIRE(plan.level == Level::kLevel1, "plan is not a Level 1 plan");
  SWHKM_REQUIRE(plan.shape.n == dataset.n() && plan.shape.d == dataset.d() &&
                    plan.shape.k == config.k,
                "plan shape does not match the dataset/config");
  detail::validate_ldm_layout(plan, machine);

  const std::size_t num_cgs = machine.num_cgs();
  const std::size_t cpes = machine.cpes_per_cg;
  const std::size_t total_cpes = machine.total_cpes();
  const std::size_t k = config.k;
  const std::size_t d = dataset.d();
  const std::size_t eb = machine.elem_bytes;
  const simarch::Topology topo(machine);

  KmeansResult result;
  result.assignments.assign(dataset.n(), 0);

  // One shared read-only centroid snapshot for all ranks (refreshed only
  // at the bulk-synchronous iteration edge inside reduce_and_update), so
  // centroid memory is O(k*d) per run instead of per rank.
  util::Matrix centroids = std::move(initial_centroids);
  std::size_t iterations = 0;
  bool converged = false;
  std::size_t empty_clusters = 0;
  simarch::CostTally total_cost;
  simarch::CostTally last_cost;
  std::vector<IterationStats> history;

  swmpi::run_spmd(static_cast<int>(num_cgs), [&](swmpi::Comm& world) {
    const std::size_t cg = static_cast<std::size_t>(world.rank());
    double rank_clock = 0;
    detail::UpdateAccumulator acc(k, d);
    std::vector<detail::TileScore> tile(detail::kAssignTileSamples);
    const std::size_t accum_bytes = (k * d + k) * eb;

    for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
      acc.reset();
      simarch::CostTally tally;
      simarch::RegComm reg(machine, tally);

      // Every CPE (re)loads the full centroid set.
      tally.centroid_stream_s +=
          static_cast<double>(cpes * k * d * eb) / machine.dma_bandwidth;
      tally.dma_bytes += cpes * k * d * eb;

      // Assign: each CPE streams its block and scores all k centroids, a
      // tile of samples at a time through the shared cache-blocked kernel
      // (ascending-index scan, so ties and accumulation order match the
      // per-sample loop it replaces exactly).
      std::uint64_t sample_bytes = 0;
      std::uint64_t max_cpe_samples = 0;
      std::uint64_t rank_samples = 0;
      for (std::size_t cpe = 0; cpe < cpes; ++cpe) {
        const auto [begin, end] =
            detail::block_range(dataset.n(), total_cpes, cg * cpes + cpe);
        for (std::size_t t0 = begin; t0 < end;
             t0 += detail::kAssignTileSamples) {
          const std::size_t t1 =
              std::min(end, t0 + detail::kAssignTileSamples);
          const std::span<detail::TileScore> scores(tile.data(), t1 - t0);
          detail::clear_scores(scores);
          detail::score_tile(dataset, t0, t1, centroids, 0, k, scores);
          for (std::size_t i = t0; i < t1; ++i) {
            const auto j = static_cast<std::uint32_t>(scores[i - t0].index);
            result.assignments[i] = j;
            acc.add_sample(j, dataset.sample(i));
          }
        }
        const std::uint64_t count = end - begin;
        sample_bytes += count * d * eb;
        rank_samples += count;
        max_cpe_samples = std::max(max_cpe_samples, count);
      }
      detail::charge_sample_stream(tally, machine, sample_bytes,
                                   max_cpe_samples);
      tally.compute_s += static_cast<double>(max_cpe_samples) *
                         static_cast<double>(k) *
                         machine.assign_row_seconds(d);
      tally.flops += rank_samples * 2 * k * d;

      // Update: register-comm reduce inside the CG, then the machine-wide
      // sharded phase — reduce_scatter of the fused accumulator, every CG
      // applying its own shard of rows, then one allgather publishing the
      // refreshed rows with the (shift, empties) stats riding as a 16-byte
      // per-rank header. The collectives are charged to net_comm_s;
      // update_s only covers this CG's shard.
      reg.account_allreduce(accum_bytes, cpes);
      const std::size_t publish_bytes = k * d * eb + 16 * num_cgs;
      tally.net_comm_s += topo.reduce_scatter_time(accum_bytes, 0, num_cgs) +
                          topo.allgather_time(publish_bytes, 0, num_cgs);
      tally.net_bytes += accum_bytes + publish_bytes;
      const detail::UpdateOutcome outcome =
          detail::reduce_and_update(world, centroids, acc);
      const double shift = outcome.shift;
      const auto [u_begin, u_end] = detail::block_range(k, num_cgs, cg);
      const std::size_t shard_rows = u_end - u_begin;
      tally.update_s +=
          static_cast<double>(2 * shard_rows * d) /
              (machine.cg_flops() * machine.compute_efficiency) +
          static_cast<double>(shard_rows * d * eb) / machine.dma_bandwidth;

      if (config.trace != nullptr) {
        config.trace->record_iteration(static_cast<std::uint32_t>(cg),
                                       static_cast<std::uint32_t>(iter),
                                       rank_clock, tally);
      }
      const simarch::CostTally combined =
          detail::combine_tallies(world, tally);
      rank_clock += combined.total_s();  // bulk-synchronous iteration edge
      if (cg == 0) {
        total_cost += combined;
        last_cost = combined;
        iterations = iter + 1;
        empty_clusters = outcome.empty_clusters;
        history.push_back({shift, combined.total_s()});
      }
      if (shift <= config.tolerance) {
        if (cg == 0) {
          converged = true;
        }
        break;
      }
    }
  });

  detail::warn_empty_clusters(empty_clusters, "level1");
  result.centroids = std::move(centroids);
  result.iterations = iterations;
  result.converged = converged;
  result.empty_clusters = empty_clusters;
  result.cost = total_cost;
  result.last_iteration_cost = last_cost;
  result.history = std::move(history);
  result.inertia = inertia(dataset, result.centroids, result.assignments);
  return result;
}

}  // namespace swhkm::core
