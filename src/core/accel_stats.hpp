#pragma once

#include <cstdint>

namespace swhkm::core {

/// Work counters shared by the accelerated exact k-means baselines
/// (Yinyang, Elkan, Hamerly). All three produce Lloyd-identical
/// trajectories; what differs is how many distances they avoid.
struct AccelStats {
  /// Exact point-centroid distance evaluations performed.
  std::uint64_t distance_computations = 0;
  /// Point-centroid evaluations plain Lloyd would have performed
  /// (n * k per iteration).
  std::uint64_t lloyd_equivalent = 0;
  /// Centroid-centroid evaluations spent maintaining bounds (Elkan and
  /// Hamerly recompute inter-centroid separations every iteration; Yinyang
  /// pays a one-off grouping instead). Not part of savings(): the point-
  /// centroid count is the standard figure of merit.
  std::uint64_t centroid_distance_computations = 0;

  double savings() const {
    return lloyd_equivalent == 0
               ? 0.0
               : 1.0 - static_cast<double>(distance_computations) /
                           static_cast<double>(lloyd_equivalent);
  }
};

}  // namespace swhkm::core
