#pragma once

#include "core/kmeans.hpp"
#include "core/partition.hpp"
#include "data/dataset.hpp"
#include "util/matrix.hpp"

namespace swhkm::core {

/// Level 3 engine — the paper's contribution: dataflow + centroid +
/// dimension (nkd) partition, Algorithm 3. Each sample's d dimensions are
/// spread over the 64 CPEs of a core group; the k centroids are spread
/// over the m'_group CGs of a CG group; the dataflow is split across CG
/// groups. Per sample, a CG reduces its CPEs' distance partials over the
/// register buses, then the CG group combines per-CG argmins over the
/// network — the communication structure that frees k*d from any single
/// memory while costing a per-sample network combine (the trade Figs. 7-9
/// measure).
KmeansResult run_level3(const data::Dataset& dataset,
                        const KmeansConfig& config,
                        const simarch::MachineConfig& machine,
                        const PartitionPlan& plan,
                        util::Matrix initial_centroids);

}  // namespace swhkm::core
