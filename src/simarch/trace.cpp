#include "simarch/trace.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/json.hpp"

namespace swhkm::simarch {

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kSampleRead:
      return "sample_read";
    case Phase::kCentroidStream:
      return "centroid_stream";
    case Phase::kCompute:
      return "compute";
    case Phase::kMeshComm:
      return "mesh_comm";
    case Phase::kNetComm:
      return "net_comm";
    case Phase::kUpdate:
      return "update";
  }
  return "unknown";
}

void Trace::record_iteration(std::uint32_t cg, std::uint32_t iteration,
                             double iteration_start, const CostTally& tally) {
  const double durations[kPhaseCount] = {
      tally.sample_read_s, tally.centroid_stream_s, tally.compute_s,
      tally.mesh_comm_s,   tally.net_comm_s,        tally.update_s,
  };
  std::lock_guard lock(mutex_);
  double clock = iteration_start;
  for (int p = 0; p < kPhaseCount; ++p) {
    if (durations[p] <= 0) {
      continue;
    }
    events_.push_back(TraceEvent{cg, iteration, static_cast<Phase>(p), clock,
                                 durations[p]});
    clock += durations[p];
  }
}

void Trace::record_fault(std::uint32_t iteration, const std::string& what,
                         double wall_s) {
  std::lock_guard lock(mutex_);
  faults_.push_back(FaultMarker{iteration, what, wall_s});
}

std::vector<FaultMarker> Trace::fault_markers() const {
  std::lock_guard lock(mutex_);
  return faults_;
}

std::size_t Trace::event_count() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Trace::events() const {
  std::vector<TraceEvent> copy;
  {
    std::lock_guard lock(mutex_);
    copy = events_;
  }
  std::sort(copy.begin(), copy.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.cg != b.cg ? a.cg < b.cg : a.start_s < b.start_s;
            });
  return copy;
}

std::vector<double> Trace::phase_totals() const {
  std::vector<double> totals(kPhaseCount, 0.0);
  std::lock_guard lock(mutex_);
  for (const TraceEvent& event : events_) {
    totals[static_cast<int>(event.phase)] += event.duration_s;
  }
  return totals;
}

double Trace::makespan() const {
  std::lock_guard lock(mutex_);
  double latest = 0;
  for (const TraceEvent& event : events_) {
    latest = std::max(latest, event.start_s + event.duration_s);
  }
  return latest;
}

double Trace::imbalance(std::uint32_t iteration) const {
  std::lock_guard lock(mutex_);
  // Per-rank total duration within the iteration.
  std::vector<std::pair<std::uint32_t, double>> per_rank;
  for (const TraceEvent& event : events_) {
    if (event.iteration != iteration) {
      continue;
    }
    auto it = std::find_if(per_rank.begin(), per_rank.end(),
                           [&](const auto& entry) {
                             return entry.first == event.cg;
                           });
    if (it == per_rank.end()) {
      per_rank.emplace_back(event.cg, event.duration_s);
    } else {
      it->second += event.duration_s;
    }
  }
  if (per_rank.empty()) {
    // Same sentinel as the zero-mean case below: an iteration the trace
    // knows nothing about is indistinguishable from a perfectly balanced
    // one, and 1.0 is the "no imbalance observed" identity either way.
    return 1.0;
  }
  double worst = 0;
  double sum = 0;
  for (const auto& [cg, seconds] : per_rank) {
    worst = std::max(worst, seconds);
    sum += seconds;
  }
  const double mean = sum / static_cast<double>(per_rank.size());
  return mean > 0 ? worst / mean : 1.0;
}

std::string Trace::to_csv() const {
  std::ostringstream out;
  out << "cg,iteration,phase,start_s,duration_s\n";
  for (const TraceEvent& event : events()) {
    // Round-trip formatting: ostream's default 6 significant digits
    // aliases neighbouring starts on long timelines.
    out << event.cg << ',' << event.iteration << ','
        << phase_name(event.phase) << ','
        << util::format_double(event.start_s) << ','
        << util::format_double(event.duration_s) << '\n';
  }
  return out.str();
}

void Trace::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
  faults_.clear();
}

}  // namespace swhkm::simarch
