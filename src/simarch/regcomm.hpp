#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "simarch/cost.hpp"
#include "simarch/machine_config.hpp"

namespace swhkm::simarch {

/// Register communication across the 8x8 CPE mesh of one core group.
///
/// The SW26010 exposes row and column buses that let CPEs exchange register
/// payloads without touching memory; the paper leans on them for intra-CG
/// AllReduce (quoted 3-4x faster than DMA/MPI paths). This class provides
/// the collective patterns the k-means engines need, functionally (over the
/// per-CPE buffers the engine owns) plus simulated-time accounting.
///
/// Cost model for a mesh collective over p CPEs on an r x c mesh:
///   row phase then column phase => (r-1)+(c-1) hop latencies each way,
///   with the payload crossing the bus at bandwidth R. AllReduce is
///   reduce + broadcast, so the payload term appears twice.
class RegComm {
 public:
  RegComm(const MachineConfig& config, CostTally& tally)
      : config_(&config), tally_(&tally) {}

  /// Element-wise sum across per-CPE buffers; afterwards every buffer holds
  /// the total. All buffers must have the same extent. `bufs` holds one
  /// span per participating CPE (a whole CG or an m_group slice of it).
  void allreduce_sum(std::span<const std::span<double>> bufs);

  /// Combine (value, index) contributions, one per CPE; returns the pair
  /// with minimal value, ties broken toward the smaller index (this is what
  /// makes partitioned argmin agree with the serial scan).
  std::pair<double, std::uint64_t> allreduce_min_pair(
      std::span<const std::pair<double, std::uint64_t>> contributions);

  /// Charge the time of broadcasting `bytes` from one CPE to `participants`
  /// mesh neighbours (data is assumed already shared in the functional
  /// engine's address space).
  void account_broadcast(std::size_t bytes, std::size_t participants);

  /// Charge an allreduce of `bytes` over `participants` CPEs, `times` times
  /// (data already shared in the functional engine's address space).
  void account_allreduce(std::size_t bytes, std::size_t participants,
                         std::size_t times = 1);

  /// Model: seconds for an allreduce of `bytes` over `participants` CPEs.
  double allreduce_time(std::size_t bytes, std::size_t participants) const;

  /// Model: seconds for a one-to-all broadcast of `bytes`.
  double broadcast_time(std::size_t bytes, std::size_t participants) const;

 private:
  /// Hop count of the two-phase (row, then column) pattern for p CPEs.
  std::size_t mesh_hops(std::size_t participants) const;

  const MachineConfig* config_;
  CostTally* tally_;
};

}  // namespace swhkm::simarch
