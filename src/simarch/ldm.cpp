#include "simarch/ldm.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/units.hpp"

namespace swhkm::simarch {

LdmAllocator::LdmAllocator(std::size_t capacity_bytes)
    : capacity_(capacity_bytes) {}

void LdmAllocator::alloc(const std::string& name, std::size_t bytes) {
  if (used_ + bytes > capacity_) {
    std::ostringstream msg;
    msg << "LDM overflow allocating '" << name << "' ("
        << util::format_bytes(bytes) << "): " << util::format_bytes(used_)
        << " of " << util::format_bytes(capacity_) << " already used";
    if (!blocks_.empty()) {
      msg << "; live blocks:";
      for (const auto& block : blocks_) {
        msg << " " << block.name << "=" << util::format_bytes(block.bytes);
      }
    }
    throw CapacityError(msg.str());
  }
  blocks_.push_back({name, bytes});
  used_ += bytes;
  if (used_ > high_water_) {
    high_water_ = used_;
  }
}

void LdmAllocator::free(const std::string& name) {
  if (blocks_.empty()) {
    throw RuntimeFault("LDM free('" + name + "') with no live blocks");
  }
  if (blocks_.back().name != name) {
    throw RuntimeFault("LDM free('" + name +
                       "') violates stack discipline; top block is '" +
                       blocks_.back().name + "'");
  }
  used_ -= blocks_.back().bytes;
  blocks_.pop_back();
}

void LdmAllocator::reset() {
  blocks_.clear();
  used_ = 0;
}

std::string LdmAllocator::layout() const {
  std::ostringstream out;
  out << util::format_bytes(used_) << "/" << util::format_bytes(capacity_)
      << " used (peak " << util::format_bytes(high_water_) << ")";
  for (const auto& block : blocks_) {
    out << "\n  " << block.name << ": " << util::format_bytes(block.bytes);
  }
  return out.str();
}

}  // namespace swhkm::simarch
